// Benchmarks regenerating the paper's tables and figures. Each benchmark
// exercises the real kernel behind one exhibit and reports the figure's
// headline quantity via b.ReportMetric; the full row/series generator with
// paper-style output is cmd/bench (go run ./cmd/bench).
package aggregathor

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"testing"
	"time"

	"aggregathor/internal/attack"
	"aggregathor/internal/core"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/simnet"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

func randGrads(seed int64, n, d int) []tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]tensor.Vector, n)
	for i := range out {
		v := tensor.NewVector(d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// BenchmarkTable1_ModelParams builds the Table-1 CNN and reports its
// parameter count (paper: ≈1.75M).
func BenchmarkTable1_ModelParams(b *testing.B) {
	var params int
	for i := 0; i < b.N; i++ {
		n := nn.NewCIFARCNN(rand.New(rand.NewSource(1)))
		params = n.NumParams()
	}
	b.ReportMetric(float64(params), "params")
}

// fig3Curve executes the Figure-3 configuration for one aggregator. Batch
// 250 matches Figure 3(a), the paper's headline setting.
func fig3Curve(b *testing.B, aggregator string, f int) *core.Result {
	b.Helper()
	res, err := core.Run(core.Config{
		Workers: 19, F: f, Aggregator: aggregator,
		Optimizer: "momentum", LR: 0.1, Batch: 250,
		Steps: 80, EvalEvery: 2, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// fig3Run returns (simulated seconds to half of vanilla TF's final accuracy
// — the paper's common target — and this config's final accuracy).
func fig3Run(b *testing.B, aggregator string, f int) (float64, float64) {
	b.Helper()
	tf := fig3Curve(b, "tf", 0)
	target := tf.AccuracyVsTime.MaxValue() / 2
	res := fig3Curve(b, aggregator, f)
	t, ok := res.AccuracyVsTime.TimeToValue(target)
	if !ok {
		b.Fatalf("%s never reached TF's half accuracy", aggregator)
	}
	return t.Seconds(), res.FinalAccuracy
}

// BenchmarkFig3_Overhead reproduces the Figure-3 overhead measurement:
// time to half of final accuracy per aggregator (paper: MULTI-KRUM +19%,
// BULYAN +43% over vanilla TF).
func BenchmarkFig3_Overhead(b *testing.B) {
	configs := []struct {
		name string
		f    int
	}{
		{"tf", 0}, {"average", 0}, {"median", 0}, {"multi-krum", 4}, {"bulyan", 4}, {"draco", 4},
	}
	var baseline float64
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var tHalf, acc float64
			for i := 0; i < b.N; i++ {
				tHalf, acc = fig3Run(b, cfg.name, cfg.f)
			}
			if cfg.name == "tf" {
				baseline = tHalf
			}
			b.ReportMetric(tHalf, "sim_s_to_half_acc")
			b.ReportMetric(acc, "final_accuracy")
			if baseline > 0 {
				b.ReportMetric(tHalf/baseline, "slowdown_vs_tf")
			}
		})
	}
}

// BenchmarkFig4_LatencyBreakdown measures real GAR aggregation time (n=19,
// d=200k to keep the bench loop sane) and reports the modelled per-epoch
// aggregation share at full Table-1 scale (paper: median 35%, multi-krum
// 27%, bulyan 52%).
func BenchmarkFig4_LatencyBreakdown(b *testing.B) {
	const n, dBench, dFull = 19, 200_000, 1_756_426
	for _, cfg := range []struct {
		name string
		f    int
	}{
		{"median", 0}, {"multi-krum", 4}, {"bulyan", 4},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			rule, err := gar.New(cfg.name, cfg.f)
			if err != nil {
				b.Fatal(err)
			}
			grads := randGrads(4, n, dBench)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := rule.Aggregate(grads); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sim := simnet.Grid5000(n, dFull)
			sim.AggTime = simnet.ModelAggregation(cfg.name, n, cfg.f, dFull)
			round := sim.SimulateRound(100)
			share := round.Aggregate.Seconds() / round.Total().Seconds()
			b.ReportMetric(share, "aggregation_share")
		})
	}
}

// BenchmarkFig5a_ThroughputCNN reproduces the Figure-5(a) scan: throughput
// at 18 workers per aggregator on the Table-1 CNN cost profile.
func BenchmarkFig5a_ThroughputCNN(b *testing.B) {
	counts := []int{2, 6, 10, 14, 18}
	for _, cfg := range []struct {
		name string
		f    int
	}{
		{"average", 0}, {"median", 0},
		{"multi-krum", 1}, {"multi-krum", 4},
		{"bulyan", 1}, {"bulyan", 2},
		{"draco", 1}, {"draco", 4},
	} {
		cfg := cfg
		b.Run(fmt.Sprintf("%s_f%d", cfg.name, cfg.f), func(b *testing.B) {
			var tp map[int]float64
			for i := 0; i < b.N; i++ {
				tp = core.ThroughputScan(cfg.name, cfg.f, counts, 1_756_426, nn.CIFARCNNFlopsPerSample, 100)
			}
			b.ReportMetric(tp[18], "batches_per_s_n18")
			b.ReportMetric(tp[2], "batches_per_s_n2")
		})
	}
}

// BenchmarkFig5b_ThroughputResNet reproduces Figure 5(b): at ResNet50 cost,
// gradient computation dominates and the GAR curves converge.
func BenchmarkFig5b_ThroughputResNet(b *testing.B) {
	counts := []int{2, 6, 10, 14, 18}
	for _, cfg := range []struct {
		name string
		f    int
	}{
		{"average", 0}, {"median", 0}, {"multi-krum", 1}, {"bulyan", 1}, {"draco", 1},
	} {
		cfg := cfg
		b.Run(fmt.Sprintf("%s_f%d", cfg.name, cfg.f), func(b *testing.B) {
			var tp map[int]float64
			for i := 0; i < b.N; i++ {
				tp = core.ThroughputScan(cfg.name, cfg.f, counts, nn.ResNet50ParamCount, nn.ResNet50FlopsPerSample, 32)
			}
			b.ReportMetric(tp[18], "batches_per_s_n18")
		})
	}
}

// BenchmarkFig6_ImpactOfF reproduces Figure 6: convergence with f=1 vs f=4.
func BenchmarkFig6_ImpactOfF(b *testing.B) {
	for _, cfg := range []struct {
		name string
		f    int
	}{
		{"multi-krum", 1}, {"multi-krum", 4}, {"bulyan", 1}, {"bulyan", 4},
	} {
		cfg := cfg
		b.Run(fmt.Sprintf("%s_f%d", cfg.name, cfg.f), func(b *testing.B) {
			var acc, simT float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Workers: 19, F: cfg.f, Aggregator: cfg.name,
					Optimizer: "momentum", LR: 0.1, Batch: 32,
					Steps: 80, EvalEvery: 20, Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy
				last, _ := res.AccuracyVsTime.Last()
				simT = last.Time.Seconds()
			}
			b.ReportMetric(acc, "final_accuracy")
			b.ReportMetric(simT, "sim_s_total")
		})
	}
}

// BenchmarkFig7_CorruptedData reproduces Figure 7: one corrupted-data worker
// under averaging vs AggregaThor(f=1).
func BenchmarkFig7_CorruptedData(b *testing.B) {
	for _, cfg := range []struct {
		label, agg string
		f          int
	}{
		{"tf_averaging", "average", 0},
		{"aggregathor_f1", "multi-krum", 1},
	} {
		cfg := cfg
		b.Run(cfg.label, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Workers: 19, F: cfg.f, Aggregator: cfg.agg,
					Optimizer: "momentum", LR: 0.1, Batch: 32,
					Steps: 80, EvalEvery: 20, Seed: 6,
					CorruptData: []int{2},
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy
			}
			b.ReportMetric(acc, "final_accuracy")
		})
	}
}

// BenchmarkFig8a_UDPNoDrop reproduces Figure 8(a): the three §3.3 recoup
// strategies at 0% artificial drop all behave alike.
func BenchmarkFig8a_UDPNoDrop(b *testing.B) {
	for _, cfg := range []struct {
		label  string
		agg    string
		f      int
		recoup transport.RecoupPolicy
	}{
		{"tf_drop_gradient", "average", 0, transport.DropGradient},
		{"selective_average", "selective-average", 0, transport.FillNaN},
		{"aggregathor_f8", "multi-krum", 8, transport.FillRandom},
	} {
		cfg := cfg
		b.Run(cfg.label, func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				res, err := core.Run(core.Config{
					Workers: 19, F: cfg.f, Aggregator: cfg.agg,
					Optimizer: "momentum", LR: 0.1, Batch: 32,
					Steps: 80, EvalEvery: 20, Seed: 7,
					UDPLinks: 8, DropRate: 0, Recoup: cfg.recoup,
					Protocol: simnet.UDP,
				})
				if err != nil {
					b.Fatal(err)
				}
				acc = res.FinalAccuracy
			}
			b.ReportMetric(acc, "final_accuracy")
		})
	}
}

// BenchmarkFig8b_UDPDrop10 reproduces Figure 8(b): at a 10% drop rate the
// lossy UDP clock beats the congestion-collapsed TCP clock (paper: ≥6×
// faster to 30% accuracy).
func BenchmarkFig8b_UDPDrop10(b *testing.B) {
	run := func(proto simnet.Protocol, udpLinks int, recoup transport.RecoupPolicy) *core.Result {
		res, err := core.Run(core.Config{
			Workers: 19, F: 8, Aggregator: "multi-krum",
			Optimizer: "momentum", LR: 0.1, Batch: 32,
			Steps: 80, EvalEvery: 20, Seed: 8,
			UDPLinks: udpLinks, DropRate: 0.10, Recoup: recoup,
			Protocol: proto,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	b.Run("aggregathor_lossyMPI", func(b *testing.B) {
		var simT float64
		for i := 0; i < b.N; i++ {
			res := run(simnet.UDP, 8, transport.FillRandom)
			last, _ := res.AccuracyVsTime.Last()
			simT = last.Time.Seconds()
		}
		b.ReportMetric(simT, "sim_s_total")
	})
	b.Run("tf_gRPC", func(b *testing.B) {
		var simT float64
		for i := 0; i < b.N; i++ {
			res := run(simnet.TCP, 0, transport.DropGradient)
			last, _ := res.AccuracyVsTime.Last()
			simT = last.Time.Seconds()
		}
		b.ReportMetric(simT, "sim_s_total")
	})
}

// BenchmarkCost_GARComplexity measures the real O(n²d) aggregation kernels
// across n and d (the §4.2 cost analysis).
func BenchmarkCost_GARComplexity(b *testing.B) {
	for _, name := range []string{"average", "median", "multi-krum", "bulyan"} {
		for _, n := range []int{7, 19} {
			for _, d := range []int{10_000, 100_000} {
				name, n, d := name, n, d
				f := 1
				if n >= 19 {
					f = 4
				}
				b.Run(fmt.Sprintf("%s/n%d/d%d", name, n, d), func(b *testing.B) {
					rule, err := gar.New(name, f)
					if err != nil {
						b.Fatal(err)
					}
					grads := randGrads(9, n, d)
					b.SetBytes(int64(n * d * 8))
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := rule.Aggregate(grads); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkByz_StrongVsWeak quantifies §4.3: the omniscient attack's
// deviation of the target coordinate under MULTI-KRUM (weak) vs BULYAN
// (strong).
func BenchmarkByz_StrongVsWeak(b *testing.B) {
	n, f, d := 19, 4, 256
	rng := rand.New(rand.NewSource(9))
	honest := make([]tensor.Vector, n-f)
	for i := range honest {
		v := tensor.NewVector(d)
		for j := range v {
			v[j] = 1 + rng.NormFloat64()*0.2
		}
		honest[i] = v
	}
	ctx := &attack.Context{Honest: honest, N: n, F: f, Dim: d, Rng: rng}
	forged := attack.Omniscient{TargetCoord: 0}.Forge(ctx)
	grads := append(append([]tensor.Vector{}, honest...), forged, forged, forged, forged)
	honestMean := tensor.Mean(honest)

	for _, cfg := range []struct {
		name string
		rule gar.GAR
	}{
		{"multi-krum", gar.NewMultiKrum(f)},
		{"bulyan", gar.NewBulyan(f)},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var dev float64
			for i := 0; i < b.N; i++ {
				out, err := cfg.rule.Aggregate(grads)
				if err != nil {
					b.Fatal(err)
				}
				dev = out[0] - honestMean[0]
				if dev < 0 {
					dev = -dev
				}
			}
			b.ReportMetric(dev, "target_coord_deviation")
		})
	}
}

// BenchmarkAblation_BulyanReuse compares the paper's distance-matrix-reuse
// optimisation against the naive re-distance Bulyan.
func BenchmarkAblation_BulyanReuse(b *testing.B) {
	grads := randGrads(10, 19, 50_000)
	for _, cfg := range []struct {
		name string
		rule gar.GAR
	}{
		{"optimized", gar.NewBulyan(4)},
		{"naive", &gar.Bulyan{NumByzantine: 4, Naive: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cfg.rule.Aggregate(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_ParallelDistances compares parallel vs sequential
// pairwise distance computation in MULTI-KRUM.
func BenchmarkAblation_ParallelDistances(b *testing.B) {
	grads := randGrads(11, 19, 100_000)
	for _, cfg := range []struct {
		name string
		rule gar.GAR
	}{
		{"parallel", gar.NewMultiKrum(4)},
		{"sequential", &gar.MultiKrum{NumByzantine: 4, Sequential: true}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := cfg.rule.Aggregate(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_BlockedDistances compares the three pairwise-distance
// schedules — the cache-blocked engine, the row-parallel streaming kernel,
// and the sequential streaming kernel — at the paper's n=19 for the Fig-4
// bench dimension and the full Table-1 dimension. Each sub-benchmark feeds
// its measured kernel time into the Fig-4 latency model (Grid5000 round at
// full scale) and reports the implied aggregation share of a round.
func BenchmarkAblation_BlockedDistances(b *testing.B) {
	const n, dFull = 19, 1_756_426
	for _, d := range []int{200_000, dFull} {
		grads := randGrads(15, n, d)
		for _, cfg := range []struct {
			name string
			run  func() [][]float64
		}{
			{"blocked", func() [][]float64 {
				var ws gar.Workspace
				return gar.BlockedPairwiseSquaredDistances(grads, &ws, false)
			}},
			{"row-parallel", func() [][]float64 { return gar.PairwiseSquaredDistances(grads, false) }},
			{"sequential", func() [][]float64 { return gar.PairwiseSquaredDistances(grads, true) }},
		} {
			cfg := cfg
			b.Run(fmt.Sprintf("%s/d%d", cfg.name, d), func(b *testing.B) {
				b.SetBytes(int64(n * d * 8))
				for i := 0; i < b.N; i++ {
					cfg.run()
				}
				b.StopTimer()
				perRound := time.Duration(float64(b.Elapsed()) / float64(b.N) * float64(dFull) / float64(d))
				sim := simnet.Grid5000(n, dFull)
				sim.AggTime = perRound
				round := sim.SimulateRound(100)
				b.ReportMetric(round.Aggregate.Seconds()/round.Total().Seconds(), "fig4_agg_share")
			})
		}
	}
}

// BenchmarkAblation_SelectMedian compares the selection/sorting-network
// median kernel against the previous sort.Float64s path over per-coordinate
// columns at the paper's n=19 and a wide n=99 deployment. The measured
// per-column cost is extrapolated to the Table-1 dimension and reported as
// the modelled Fig-4 median-GAR seconds.
func BenchmarkAblation_SelectMedian(b *testing.B) {
	const cols, dFull = 100_000, 1_756_426
	for _, n := range []int{19, 99} {
		data := make([]float64, cols*n)
		rng := rand.New(rand.NewSource(16))
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		scratch := make([]float64, n)
		net := tensor.SortNetPairs(n)
		for _, cfg := range []struct {
			name string
			run  func(col []float64) float64
		}{
			{"quickselect", func(col []float64) float64 {
				copy(scratch, col)
				return tensor.MedianInPlace(scratch)
			}},
			{"sortnet", func(col []float64) float64 {
				copy(scratch, col)
				ctx := tensor.ColumnKernelCtx{Col: scratch, Net: net}
				return tensor.MedianKernel(&ctx, 0, 0)
			}},
			{"sort", func(col []float64) float64 {
				copy(scratch, col)
				sort.Float64s(scratch)
				mid := n / 2
				if n%2 == 1 {
					return scratch[mid]
				}
				return scratch[mid-1]/2 + scratch[mid]/2
			}},
		} {
			cfg := cfg
			b.Run(fmt.Sprintf("%s/n%d", cfg.name, n), func(b *testing.B) {
				var sink float64
				for i := 0; i < b.N; i++ {
					col := data[(i%cols)*n : (i%cols+1)*n]
					sink = cfg.run(col)
				}
				b.StopTimer()
				_ = sink
				perCol := float64(b.Elapsed()) / float64(b.N)
				b.ReportMetric(perCol, "ns_per_column")
				b.ReportMetric(perCol*dFull/1e9, "fig4_median_agg_s")
			})
		}
	}
}

// BenchmarkAblation_Workspace quantifies the zero-allocation workspace path
// against the fresh-allocation Aggregate for the hot rules.
func BenchmarkAblation_Workspace(b *testing.B) {
	const n, d = 19, 100_000
	grads := randGrads(17, n, d)
	for _, cfg := range []struct {
		name string
		rule gar.GAR
	}{
		{"median", gar.Median{}},
		{"multi-krum", gar.NewMultiKrum(4)},
		{"bulyan", gar.NewBulyan(4)},
	} {
		cfg := cfg
		b.Run("fresh/"+cfg.name, func(b *testing.B) {
			b.SetBytes(int64(n * d * 8))
			for i := 0; i < b.N; i++ {
				if _, err := cfg.rule.Aggregate(grads); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("workspace/"+cfg.name, func(b *testing.B) {
			ws := gar.NewWorkspace()
			b.SetBytes(int64(n * d * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gar.AggregateInto(ws, cfg.rule, grads); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_RecoupPolicy measures the lossy pipe under the three
// §3.3 recoup policies at 10% drop.
func BenchmarkAblation_RecoupPolicy(b *testing.B) {
	for _, policy := range []transport.RecoupPolicy{
		transport.DropGradient, transport.FillNaN, transport.FillRandom,
	} {
		policy := policy
		b.Run(policy.String(), func(b *testing.B) {
			pipe := transport.NewLossyPipe(transport.Codec{Float32: true}, transport.DefaultMTU, 0.10, policy, 12)
			grad := randGrads(13, 1, 100_000)[0]
			b.SetBytes(int64(len(grad) * 4))
			delivered := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg := &transport.GradientMsg{Worker: 0, Step: i, Grad: grad}
				if _, ok := pipe.Transfer(msg); ok {
					delivered++
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(delivered)/float64(b.N), "delivery_rate")
		})
	}
}

// BenchmarkAblation_WireFormat compares float32 vs float64 gradient encoding.
func BenchmarkAblation_WireFormat(b *testing.B) {
	grad := randGrads(14, 1, 100_000)[0]
	msg := &transport.GradientMsg{Worker: 0, Step: 0, Grad: grad}
	for _, cfg := range []struct {
		name  string
		codec transport.Codec
	}{
		{"float32", transport.Codec{Float32: true}},
		{"float64", transport.Codec{}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.SetBytes(int64(len(grad) * cfg.codec.BytesPerCoord()))
			for i := 0; i < b.N; i++ {
				buf := cfg.codec.EncodeGradient(msg)
				if _, err := cfg.codec.DecodeGradient(buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTransport_GradientTransfer times complete d=200k gradient
// transfers over a loopback UDP socket pair — split, encode, write, read,
// decode, reassemble — across the wire-format × syscall-batching grid. One
// transfer is in flight at a time so the kernel receive buffer bounds the
// burst and the loopback path stays loss-free. Bytes/s counts the in-memory
// gradient payload (d × 8) so the float32 wire shows up as a genuine
// end-to-end speedup, not a smaller numerator.
func BenchmarkTransport_GradientTransfer(b *testing.B) {
	grad := randGrads(18, 1, 200_000)[0]
	for _, cfg := range []struct {
		name    string
		codec   transport.Codec
		batched bool
	}{
		{"f64-unbatched", transport.Codec{}, false},
		{"f64-batched", transport.Codec{}, true},
		{"f32-batched", transport.Codec{Float32: true}, true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			recv, err := transport.ListenUDP("127.0.0.1:0", cfg.codec, transport.DropGradient, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer recv.Close()
			send, err := transport.DialUDP(recv.Addr(), cfg.codec, transport.DefaultMTU, 0, 1)
			if err != nil {
				b.Fatal(err)
			}
			defer send.Close()
			send.SetBatching(cfg.batched)
			msg := &transport.GradientMsg{Worker: 1, Grad: grad}
			b.SetBytes(int64(len(grad) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				msg.Step = i
				if err := send.SendGradient(msg); err != nil {
					b.Fatal(err)
				}
				got, err := recv.RecvGradient(10 * time.Second)
				if err != nil {
					b.Fatal(err)
				}
				if got.Step != i || got.Grad.Dim() != grad.Dim() {
					b.Fatalf("transfer corrupted at step %d (step %d, dim %d)",
						i, got.Step, got.Grad.Dim())
				}
			}
		})
	}
}

// BenchmarkTransport_SendAllocs pins the zero-copy encode contract: the
// send path alone — split, encode into the reusable arena, sendmmsg —
// performs zero steady-state allocations. Datagrams land on a raw-drain
// sink that reads and discards without decoding (Read, not ReadFromUDP,
// which would allocate a *UDPAddr per datagram and pollute the count).
// The reported allocs/op must be 0.
func BenchmarkTransport_SendAllocs(b *testing.B) {
	grad := randGrads(19, 1, 200_000)[0]
	codec := transport.Codec{Float32: true}
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		b.Fatal(err)
	}
	defer sink.Close()
	go func() {
		buf := make([]byte, 65536)
		for {
			if _, err := sink.Read(buf); err != nil {
				return
			}
		}
	}()
	send, err := transport.DialUDP(sink.LocalAddr().String(), codec, transport.DefaultMTU, 0, 1)
	if err != nil {
		b.Fatal(err)
	}
	defer send.Close()
	msg := &transport.GradientMsg{Worker: 1, Grad: grad}
	if err := send.SendGradient(msg); err != nil { // warm the arena
		b.Fatal(err)
	}
	b.SetBytes(int64(len(grad) * 8))
	b.ReportMetric(float64(codec.PacketsPerTransfer(len(grad), transport.DefaultMTU)), "pkts/op")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		msg.Step = i
		if err := send.SendGradient(msg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_SelectionSize quantifies the appendix's slowdown claim:
// convergence goes as O(1/√m), so Krum (m=1) needs more steps than
// Multi-Krum at the maximal m = n−f−2 to reach the same target. Reported as
// steps-to-target for each selection size.
func BenchmarkAblation_SelectionSize(b *testing.B) {
	// Comparison on the aggregation statistics: the variance of the
	// aggregate around the honest mean shrinks as 1/m (the O(1/√m)
	// convergence law in squared form).
	rng := rand.New(rand.NewSource(14))
	n, f, d := 19, 4, 512
	honest := make([]tensor.Vector, n)
	for i := range honest {
		v := tensor.NewVector(d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		honest[i] = v
	}
	for _, m := range []int{1, 4, 13} {
		m := m
		b.Run(fmt.Sprintf("m%d", m), func(b *testing.B) {
			rule := &gar.MultiKrum{NumByzantine: f, M: m}
			var variance float64
			for i := 0; i < b.N; i++ {
				out, err := rule.Aggregate(honest)
				if err != nil {
					b.Fatal(err)
				}
				variance = out.SquaredNorm() / float64(d)
			}
			b.ReportMetric(variance, "aggregate_variance")
		})
	}
}
