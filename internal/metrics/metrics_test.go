package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Name = "acc"
	if _, ok := s.Last(); ok {
		t.Fatal("empty series must have no last point")
	}
	s.Add(time.Second, 1, 0.3)
	s.Add(2*time.Second, 2, 0.5)
	if s.Len() != 2 {
		t.Fatalf("len %d", s.Len())
	}
	last, ok := s.Last()
	if !ok || last.Value != 0.5 || last.Step != 2 {
		t.Fatalf("last %+v", last)
	}
	if s.MaxValue() != 0.5 {
		t.Fatalf("max %v", s.MaxValue())
	}
}

func TestTimeToValue(t *testing.T) {
	var s Series
	s.Add(time.Second, 1, 0.2)
	s.Add(2*time.Second, 2, 0.4)
	s.Add(3*time.Second, 3, 0.6)
	tt, ok := s.TimeToValue(0.4)
	if !ok || tt != 2*time.Second {
		t.Fatalf("TimeToValue(0.4) = %v, %v", tt, ok)
	}
	if _, ok := s.TimeToValue(0.9); ok {
		t.Fatal("unreachable value must report !ok")
	}
	st, ok := s.StepToValue(0.6)
	if !ok || st != 3 {
		t.Fatalf("StepToValue = %d, %v", st, ok)
	}
}

func TestValueAtTime(t *testing.T) {
	var s Series
	s.Add(time.Second, 1, 0.2)
	s.Add(3*time.Second, 2, 0.6)
	if v, ok := s.ValueAtTime(2 * time.Second); !ok || v != 0.2 {
		t.Fatalf("ValueAtTime(2s) = %v, %v", v, ok)
	}
	if _, ok := s.ValueAtTime(500 * time.Millisecond); ok {
		t.Fatal("before first point must report !ok")
	}
	if v, _ := s.ValueAtTime(time.Minute); v != 0.6 {
		t.Fatal("after last point must hold last value")
	}
}

func TestSeriesTSV(t *testing.T) {
	var s Series
	s.Name = "accuracy"
	s.Add(1500*time.Millisecond, 7, 0.25)
	out := s.TSV()
	if !strings.Contains(out, "# accuracy") {
		t.Fatal("missing header")
	}
	if !strings.Contains(out, "1.500\t7\t0.250000") {
		t.Fatalf("row format wrong:\n%s", out)
	}
}

func TestBreakdown(t *testing.T) {
	b := Breakdown{Name: "bulyan", ComputeComm: 480 * time.Millisecond, Aggregation: 520 * time.Millisecond}
	if b.Total() != time.Second {
		t.Fatalf("total %v", b.Total())
	}
	if share := b.AggregationShare(); share != 0.52 {
		t.Fatalf("share %v, want 0.52", share)
	}
	var zero Breakdown
	if zero.AggregationShare() != 0 {
		t.Fatal("zero breakdown share must be 0")
	}
}

func TestThroughput(t *testing.T) {
	var th Throughput
	if th.GradientsPerSecond() != 0 || th.BatchesPerSecond() != 0 {
		t.Fatal("empty throughput must be 0")
	}
	th.Observe(19, time.Second)
	th.Observe(19, time.Second)
	if got := th.GradientsPerSecond(); got != 19 {
		t.Fatalf("gradients/s %v, want 19", got)
	}
	if got := th.BatchesPerSecond(); got != 1 {
		t.Fatalf("batches/s %v, want 1", got)
	}
}

func TestTableRendering(t *testing.T) {
	out := Table("Fig 4", map[string][]string{
		"tf":     {"1.0", "0.0"},
		"bulyan": {"0.48", "0.52"},
	}, []string{"compute", "agg"})
	if !strings.Contains(out, "== Fig 4 ==") {
		t.Fatal("missing title")
	}
	// Sorted: bulyan row before tf row.
	if strings.Index(out, "bulyan") > strings.Index(out, "tf") {
		t.Fatal("rows must be sorted by label")
	}
	if !strings.Contains(out, "compute") || !strings.Contains(out, "agg") {
		t.Fatal("missing header columns")
	}
}
