// Package metrics implements the paper's evaluation instruments: the
// throughput meter (gradients received per second at the aggregator), the
// top-1 cross-accuracy series against both time and model updates, and the
// per-epoch latency breakdown separating aggregation time from
// computation+communication time (Figure 4).
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Point is one sample of a time series: a simulated timestamp, the model
// update index, and the measured value.
type Point struct {
	Time  time.Duration
	Step  int
	Value float64
}

// Series is an append-only sequence of points with a name, the unit of
// figure data in this reproduction.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(t time.Duration, step int, v float64) {
	s.Points = append(s.Points, Point{Time: t, Step: step, Value: v})
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the final point; ok is false for an empty series.
func (s *Series) Last() (Point, bool) {
	if len(s.Points) == 0 {
		return Point{}, false
	}
	return s.Points[len(s.Points)-1], true
}

// MaxValue returns the largest value seen, or 0 for an empty series.
func (s *Series) MaxValue() float64 {
	var m float64
	for i, p := range s.Points {
		if i == 0 || p.Value > m {
			m = p.Value
		}
	}
	return m
}

// TimeToValue returns the first simulated time at which the series reaches
// v; ok is false if it never does. This is the paper's "time to reach X% of
// final accuracy" readout.
func (s *Series) TimeToValue(v float64) (time.Duration, bool) {
	for _, p := range s.Points {
		if p.Value >= v {
			return p.Time, true
		}
	}
	return 0, false
}

// StepToValue returns the first model-update index reaching v.
func (s *Series) StepToValue(v float64) (int, bool) {
	for _, p := range s.Points {
		if p.Value >= v {
			return p.Step, true
		}
	}
	return 0, false
}

// ValueAtTime returns the last recorded value at or before t (step-function
// interpolation); ok is false if the series starts after t.
func (s *Series) ValueAtTime(t time.Duration) (float64, bool) {
	var out float64
	found := false
	for _, p := range s.Points {
		if p.Time > t {
			break
		}
		out = p.Value
		found = true
	}
	return out, found
}

// TSV renders the series as "time_s\tstep\tvalue" rows for plotting.
func (s *Series) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%.3f\t%d\t%.6f\n", p.Time.Seconds(), p.Step, p.Value)
	}
	return b.String()
}

// Breakdown is the Figure-4 latency decomposition for one configuration.
type Breakdown struct {
	Name string
	// ComputeComm is gradient computation + transfer time per epoch.
	ComputeComm time.Duration
	// Aggregation is the GAR execution time per epoch.
	Aggregation time.Duration
}

// Total returns the full per-epoch latency.
func (b Breakdown) Total() time.Duration { return b.ComputeComm + b.Aggregation }

// AggregationShare returns the fraction of the epoch spent aggregating —
// the paper reports 35% (Median), 27% (Multi-Krum), 52% (Bulyan).
func (b Breakdown) AggregationShare() float64 {
	total := b.Total()
	if total == 0 {
		return 0
	}
	return float64(b.Aggregation) / float64(total)
}

// Throughput accumulates the aggregator-side gradient arrival rate.
type Throughput struct {
	gradients int
	batches   int
	elapsed   time.Duration
}

// Observe records one aggregation round: n gradients arrived and the
// simulated round duration.
func (t *Throughput) Observe(gradients int, roundTime time.Duration) {
	t.gradients += gradients
	t.batches++
	t.elapsed += roundTime
}

// GradientsPerSecond returns the paper's throughput metric: total gradients
// received per simulated second.
func (t *Throughput) GradientsPerSecond() float64 {
	if t.elapsed == 0 {
		return 0
	}
	return float64(t.gradients) / t.elapsed.Seconds()
}

// BatchesPerSecond returns model updates per simulated second (the Figure-5
// y-axis).
func (t *Throughput) BatchesPerSecond() float64 {
	if t.elapsed == 0 {
		return 0
	}
	return float64(t.batches) / t.elapsed.Seconds()
}

// Table renders aligned rows (label → columns) for harness output, sorted
// by label for stable golden output.
func Table(title string, rows map[string][]string, header []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", title)
	fmt.Fprintf(&b, "%-28s", "config")
	for _, h := range header {
		fmt.Fprintf(&b, "%16s", h)
	}
	b.WriteByte('\n')
	labels := make([]string, 0, len(rows))
	for label := range rows {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Fprintf(&b, "%-28s", label)
		for _, cell := range rows[label] {
			fmt.Fprintf(&b, "%16s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
