package scenario

import (
	"bytes"
	"testing"
)

// TestUDPCampaignJSONDeterministic extends the engine's acceptance gate to
// the lossy-datagram backend: a campaign whose cells run over real UDP
// sockets — including cells at 10% packet loss — must still produce
// byte-identical JSON across repeated executions and across serial vs
// parallel pools. Lossy rounds are reproducible because the drop schedule
// and the recoup values are pure functions of (seed, step, worker), and the
// perfect-link udp cells must equal their in-process twins exactly.
func TestUDPCampaignJSONDeterministic(t *testing.T) {
	spec := UDPSmokeSpec()
	spec.Steps = 8
	spec.EvalEvery = 4

	hasLossy := false
	for _, n := range spec.Networks {
		if n.Backend == "udp" && n.DropRate > 0 {
			hasLossy = true
		}
	}
	if !hasLossy {
		t.Fatal("udp smoke spec has no lossy udp-backend network")
	}

	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawFirst, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rawSecond, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSecond) {
		t.Fatal("two executions of the udp-backend spec produced different JSON")
	}

	spec.Parallelism = 1
	serial, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawSerial, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSerial) {
		t.Fatal("serial execution of the udp-backend spec differs from parallel execution")
	}

	// The perfect-network parity guarantee at campaign level: for every
	// (gar, attack, seed) cell the dropRate-0 udp backend's numbers must
	// equal the in-process backend's — same seeds, same gradients, same
	// trajectory. Lossy cells are asserted reproducible above, not equal to
	// the perfect-link cells (loss changes the trajectory by design).
	byCell := map[string]Result{}
	for _, res := range first.Results {
		if res.Run.Network.Name == "in-process" {
			key := res.Run.GAR + "/" + res.Run.Attack
			byCell[key] = res
		}
	}
	compared := 0
	for _, res := range first.Results {
		if res.Run.Network.Backend != "udp" || res.Run.Network.DropRate != 0 {
			continue
		}
		ref, ok := byCell[res.Run.GAR+"/"+res.Run.Attack]
		if !ok {
			t.Fatalf("no in-process twin for %s", res.Run.ID)
		}
		if res.Error != ref.Error {
			t.Fatalf("%s: error %q vs in-process %q", res.Run.ID, res.Error, ref.Error)
		}
		if res.FinalAccuracy != ref.FinalAccuracy || res.FinalLoss != ref.FinalLoss {
			t.Fatalf("%s: accuracy/loss (%v, %v) diverged from in-process twin (%v, %v)",
				res.Run.ID, res.FinalAccuracy, res.FinalLoss, ref.FinalAccuracy, ref.FinalLoss)
		}
		if res.StepsToThreshold != ref.StepsToThreshold || res.Diverged != ref.Diverged ||
			res.SkippedRounds != ref.SkippedRounds {
			t.Fatalf("%s: readouts diverged from in-process twin", res.Run.ID)
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no perfect-link udp cells compared")
	}

	// Lossy cells must actually differ from their perfect-link twins
	// somewhere — otherwise the drop schedule is silently not applied.
	lossDiffers := false
	perfectUDP := map[string]Result{}
	for _, res := range first.Results {
		if res.Run.Network.Backend == "udp" && res.Run.Network.DropRate == 0 {
			perfectUDP[res.Run.GAR+"/"+res.Run.Attack] = res
		}
	}
	for _, res := range first.Results {
		if res.Run.Network.Backend != "udp" || res.Run.Network.DropRate == 0 {
			continue
		}
		ref, ok := perfectUDP[res.Run.GAR+"/"+res.Run.Attack]
		if !ok {
			continue
		}
		if res.FinalAccuracy != ref.FinalAccuracy || res.FinalLoss != ref.FinalLoss {
			lossDiffers = true
		}
	}
	if !lossDiffers {
		t.Fatal("every lossy cell equals its perfect-link twin; drop injection is not reaching the wire")
	}
}

// TestNetworkValidationUDP pins the new validation surface: the udp backend
// composes with dropRate/recoup but not with the in-memory pipe knob, and
// the tcp backend rejects dropRate (reliable transport — loss there would
// silently only touch the simulated clock).
func TestNetworkValidationUDP(t *testing.T) {
	base := func(n Network) *Spec {
		s := Spec{Networks: []Network{n}}
		s.ApplyDefaults()
		return &s
	}
	if err := base(Network{Name: "u", Backend: "udp", DropRate: 0.2, Recoup: "fill-nan"}).Validate(); err != nil {
		t.Fatalf("valid udp network rejected: %v", err)
	}
	if err := base(Network{Name: "u", Backend: "udp", UDPLinks: 2}).Validate(); err == nil {
		t.Fatal("udp backend with udpLinks accepted")
	}
	if err := base(Network{Name: "t", Backend: "tcp", DropRate: 0.1}).Validate(); err == nil {
		t.Fatal("tcp backend with dropRate accepted")
	}
	if err := base(Network{Name: "x", Backend: "grpc"}).Validate(); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
