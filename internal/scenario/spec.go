// Package scenario is the campaign engine of the reproduction: it expands a
// declarative sweep specification — the cross-product of gradient aggregation
// rule, Byzantine attack, cluster shape (worker count and declared f) and
// network condition — into deterministic per-seed training runs, executes
// them on a bounded worker pool, and reports structured per-run results plus
// a text summary ranking rules per attack.
//
// Determinism is a design requirement, not an accident: every run is fully
// seeded, aggregation cost comes from the analytic simnet model, and results
// are ordered by expansion index, so two executions of the same spec produce
// byte-identical JSON. That property is what lets future performance or
// robustness PRs diff campaign outputs directly.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"aggregathor/internal/attack"
	"aggregathor/internal/cluster"
	"aggregathor/internal/core"
	"aggregathor/internal/gar"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/simnet"
	"aggregathor/internal/transport"
)

// AttackNone is the baseline "attack" name: no Byzantine workers.
const AttackNone = "none"

// Cluster is one point on the cluster-shape axis: n workers with declared
// Byzantine tolerance f. For attacking runs the last F workers are Byzantine.
type Cluster struct {
	Workers int `json:"workers"`
	F       int `json:"f"`
}

// Network is one point on the network-condition axis.
type Network struct {
	// Name labels the condition in run IDs and reports ("in-process",
	// "lossy-udp", "tcp-distributed", ...). Required and unique within a
	// spec.
	Name string `json:"name"`
	// Backend selects the deployment substrate for this cell: "" or
	// "in-process" runs the simulated cluster, "tcp" runs a real
	// socket-distributed cluster.TCPCluster on localhost (every model
	// broadcast and gradient travels the wire), "udp" runs a real
	// lossy datagram-distributed cluster.UDPCluster — gradients chunked
	// into UDP packets with seeded drop injection at dropRate and §3.3
	// recoup of the lost coordinates. The socket backends are incompatible
	// with udpLinks (the in-memory pipe knob).
	Backend string `json:"backend,omitempty"`
	// UDPLinks is how many worker links run over the in-memory lossy UDP
	// pipe; -1 means every link. 0 (the default) is the in-process perfect
	// transport.
	UDPLinks int `json:"udpLinks,omitempty"`
	// DropRate is the per-packet loss probability in [0, 1), applied on
	// in-memory UDP pipe links and on the udp backend's real datagrams.
	DropRate float64 `json:"dropRate,omitempty"`
	// Recoup selects the lost-coordinate policy on lossy links:
	// drop-gradient | fill-nan | fill-random (default).
	Recoup string `json:"recoup,omitempty"`
	// ModelDropRate is the per-packet loss probability in [0, 1) on
	// server→worker model broadcasts (footnote 12's unreliable model
	// channel). Requires backend "udp"; which packets drop is a pure
	// function of (seed, step, worker) via ps.ModelDropSeed, so
	// lossy-model campaigns stay byte-reproducible.
	ModelDropRate float64 `json:"modelDropRate,omitempty"`
	// WireFormat selects the coordinate width on this cell's lossy links:
	// "" or "float64" (default, lossless) or "float32" (half the gradient
	// bytes, deterministic rounding). Applies to the udp backend's real
	// datagrams and to in-memory lossy pipes (udpLinks); reliable cells
	// reject "float32" instead of silently training on float64.
	WireFormat string `json:"wireFormat,omitempty"`
	// ModelRecoup selects the worker policy for torn model broadcasts:
	// "skip" (default — consume and sit the round out) or "stale" (train
	// on the last complete model and submit a stale-tagged gradient,
	// opening the staleness axis). Requires backend "udp".
	ModelRecoup string `json:"modelRecoup,omitempty"`
	// Quorum, when positive, enables asynchronous rounds on this cell: the
	// server aggregates as soon as that many gradients (fresh or
	// admitted-stale) are in, instead of blocking on all n slots; rounds
	// below quorum are skipped. 0 means all n workers.
	Quorum int `json:"quorum,omitempty"`
	// Staleness is the asynchronous staleness bound τ: gradients tagged up
	// to τ steps behind the round are admitted, older ones dropped and
	// counted.
	Staleness int `json:"staleness,omitempty"`
	// SlowWorkers is the per-(step, worker) probability in [0, 1) that the
	// deterministic ps.SlowSeed schedule marks a worker slow (training on a
	// model 1..τ steps old, or sitting the round out when its lag breaches
	// τ). Evaluated at both endpoints, so asynchronous cells stay
	// byte-reproducible. Requires staleness >= 1.
	SlowWorkers float64 `json:"slowWorkers,omitempty"`
	// Churn, when present with a positive rate, enables the deterministic
	// worker crash/rejoin schedule on this cell: live workers crash with
	// the seeded per-(step, worker) probability, tear their sockets down,
	// and rejoin downSteps rounds later through the bounded-backoff
	// dialer, at most maxRejoins times each. Requires backend "tcp" or
	// "udp"; incompatible with asynchronous rounds, lossy model broadcasts
	// and informed attacks. A churn cell's crash/rejoin/belowBound
	// counters are exact pure functions of the seed, so churn campaigns
	// stay byte-reproducible.
	Churn *Churn `json:"churn,omitempty"`
	// Protocol costs the simulated clock as "tcp" (default) or "udp".
	Protocol string `json:"protocol,omitempty"`
	// RTTMicros overrides the simulated link round-trip time in
	// microseconds (the latency knob); 0 keeps the Grid5000 default.
	RTTMicros int `json:"rttMicros,omitempty"`
}

// Churn is the worker crash/rejoin schedule of one network cell — the
// scenario-level spelling of ps.ChurnConfig.
type Churn struct {
	// Rate is the per-(step, worker) crash probability in [0, 1); 0
	// disables churn (and then downSteps/maxRejoins must be 0 too, so a
	// half-disabled schedule fails loudly instead of silently sweeping
	// churn-free).
	Rate float64 `json:"rate"`
	// DownSteps is how many rounds a crashed worker stays away before its
	// scheduled rejoin (>= 1 when rate > 0).
	DownSteps int `json:"downSteps,omitempty"`
	// MaxRejoins caps how many times one worker may rejoin; a crash past
	// the cap is permanent.
	MaxRejoins int `json:"maxRejoins,omitempty"`
}

// churnConfig maps the cell's churn knobs onto the parameter service's
// ChurnConfig (zero value when the cell has no churn block).
func (n Network) churnConfig() ps.ChurnConfig {
	if n.Churn == nil {
		return ps.ChurnConfig{}
	}
	return ps.ChurnConfig{Rate: n.Churn.Rate, DownSteps: n.Churn.DownSteps, MaxRejoins: n.Churn.MaxRejoins}
}

// churnEnabled reports whether this cell runs the worker-churn schedule.
func (n Network) churnEnabled() bool { return n.churnConfig().Enabled() }

// Spec is a declarative campaign: the axes of the sweep plus the shared
// training configuration. Zero-valued fields take the documented defaults
// (see ApplyDefaults).
type Spec struct {
	// Name labels the campaign in reports.
	Name string `json:"name"`
	// Experiment is the model+dataset preset (core.Experiments).
	Experiment string `json:"experiment"`
	// GARs lists the aggregation rules to sweep; empty means every rule in
	// the gar registry.
	GARs []string `json:"gars"`
	// Attacks lists the Byzantine attacks to sweep; "none" is the honest
	// baseline. Empty means "none" plus every attack in the registry.
	Attacks []string `json:"attacks"`
	// Clusters lists the (workers, f) shapes to sweep.
	Clusters []Cluster `json:"clusters"`
	// Networks lists the network conditions to sweep.
	Networks []Network `json:"networks"`
	// Seeds lists the per-run base seeds; each (gar, attack, cluster,
	// network) cell runs once per seed.
	Seeds []int64 `json:"seeds"`
	// Steps is the number of model updates per run.
	Steps int `json:"steps"`
	// Batch is the per-worker mini-batch size.
	Batch int `json:"batch"`
	// Optimizer is the update rule name.
	Optimizer string `json:"optimizer"`
	// LR is the learning rate.
	LR float64 `json:"learningRate"`
	// EvalEvery evaluates accuracy every k steps.
	EvalEvery int `json:"evalEvery"`
	// Threshold is the accuracy level for the steps-to-threshold readout.
	Threshold float64 `json:"accuracyThreshold"`
	// Parallelism bounds the engine's worker pool; 0 means NumCPU.
	Parallelism int `json:"parallelism,omitempty"`
	// IncludeWallTime opts into the per-run measured aggregation wall-time
	// column (Result.MeasuredAggWallNS). The measurement is real host wall
	// clock and therefore NOT deterministic: it is excluded from the
	// byte-reproducibility guarantee, which covers every other field.
	IncludeWallTime bool `json:"includeWallTime,omitempty"`
}

// Run is one expanded cell of the campaign cross-product.
type Run struct {
	// Index is the position in expansion order (and in Campaign.Results).
	Index int `json:"index"`
	// ID is the human-readable run key.
	ID      string  `json:"id"`
	GAR     string  `json:"gar"`
	Attack  string  `json:"attack"`
	Cluster Cluster `json:"cluster"`
	Network Network `json:"network"`
	Seed    int64   `json:"seed"`
}

// ApplyDefaults fills unset fields in place with the campaign defaults:
// every registered GAR, "none" plus every registered attack, one 11-worker
// f=2 cluster, the in-process perfect network, seed 1, and a short
// features-mlp training config.
func (s *Spec) ApplyDefaults() {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if s.Experiment == "" {
		s.Experiment = "features-mlp"
	}
	if len(s.GARs) == 0 {
		s.GARs = gar.Names()
	}
	if len(s.Attacks) == 0 {
		s.Attacks = append([]string{AttackNone}, attack.Names()...)
	}
	if len(s.Clusters) == 0 {
		s.Clusters = []Cluster{{Workers: 11, F: 2}}
	}
	if len(s.Networks) == 0 {
		s.Networks = []Network{{Name: "in-process"}}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if s.Steps == 0 {
		s.Steps = 20
	}
	if s.Batch == 0 {
		s.Batch = 16
	}
	if s.Optimizer == "" {
		s.Optimizer = "rmsprop"
	}
	if s.LR == 0 {
		s.LR = 1e-3
	}
	if s.EvalEvery == 0 {
		s.EvalEvery = 5
	}
	if s.Threshold == 0 {
		s.Threshold = 0.5
	}
}

// Validate checks every axis value against the registries and physical
// bounds. It assumes ApplyDefaults has run.
func (s *Spec) Validate() error {
	if _, err := core.LookupExperiment(s.Experiment); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	known := map[string]bool{}
	for _, name := range gar.Names() {
		known[name] = true
	}
	for _, g := range s.GARs {
		if !known[g] {
			return fmt.Errorf("scenario: unknown GAR %q (available: %v)", g, gar.Names())
		}
	}
	knownAtk := map[string]bool{AttackNone: true}
	for _, name := range attack.Names() {
		knownAtk[name] = true
	}
	for _, a := range s.Attacks {
		if !knownAtk[a] {
			return fmt.Errorf("scenario: unknown attack %q (available: none, %v)", a, attack.Names())
		}
	}
	for i, c := range s.Clusters {
		if c.Workers < 1 {
			return fmt.Errorf("scenario: cluster %d has %d workers", i, c.Workers)
		}
		if c.F < 0 || c.F >= c.Workers {
			return fmt.Errorf("scenario: cluster %d has f=%d outside [0, %d)", i, c.F, c.Workers)
		}
	}
	seen := map[string]bool{}
	for i, n := range s.Networks {
		if n.Name == "" {
			return fmt.Errorf("scenario: network %d has no name", i)
		}
		if seen[n.Name] {
			return fmt.Errorf("scenario: duplicate network name %q", n.Name)
		}
		seen[n.Name] = true
		if _, err := n.backend(); err != nil {
			return err
		}
		if (n.Backend == core.BackendTCP || n.Backend == core.BackendUDP) && n.UDPLinks != 0 {
			return fmt.Errorf("scenario: network %q combines the %s backend with udpLinks", n.Name, n.Backend)
		}
		if n.Backend == core.BackendTCP && n.DropRate != 0 {
			return fmt.Errorf("scenario: network %q sets dropRate on the tcp backend (loss needs backend \"udp\" or udpLinks)", n.Name)
		}
		if n.DropRate < 0 || n.DropRate >= 1 {
			return fmt.Errorf("scenario: network %q drop rate %v outside [0, 1)", n.Name, n.DropRate)
		}
		if n.ModelDropRate < 0 || n.ModelDropRate >= 1 {
			return fmt.Errorf("scenario: network %q model drop rate %v outside [0, 1)", n.Name, n.ModelDropRate)
		}
		if (n.ModelDropRate != 0 || n.ModelRecoup != "") && n.Backend != core.BackendUDP {
			return fmt.Errorf("scenario: network %q sets modelDropRate/modelRecoup without backend \"udp\" (lossy model broadcasts are a udp-backend feature)", n.Name)
		}
		if _, err := n.modelRecoupPolicy(); err != nil {
			return err
		}
		if n.Quorum < 0 || n.Staleness < 0 {
			return fmt.Errorf("scenario: network %q quorum=%d staleness=%d must be >= 0", n.Name, n.Quorum, n.Staleness)
		}
		if n.SlowWorkers < 0 || n.SlowWorkers >= 1 {
			return fmt.Errorf("scenario: network %q slowWorkers %v outside [0, 1)", n.Name, n.SlowWorkers)
		}
		if n.SlowWorkers > 0 && n.Staleness == 0 {
			return fmt.Errorf("scenario: network %q sets slowWorkers without staleness >= 1 (a slow worker lags at least one step)", n.Name)
		}
		if n.asyncEnabled() && (n.ModelDropRate != 0 || n.ModelRecoup != "") {
			return fmt.Errorf("scenario: network %q: %w (quorum/staleness/slowWorkers with modelDropRate/modelRecoup)", n.Name, ps.ErrAsyncModelLoss)
		}
		if err := n.churnConfig().Validate(); err != nil {
			return fmt.Errorf("scenario: network %q: %w", n.Name, err)
		}
		if n.churnEnabled() {
			if n.Backend != core.BackendTCP && n.Backend != core.BackendUDP {
				return fmt.Errorf("scenario: network %q sets churn without backend \"tcp\" or \"udp\" (the in-process simulator has no sockets to crash)", n.Name)
			}
			if n.asyncEnabled() {
				return fmt.Errorf("scenario: network %q: %w", n.Name, ps.ErrChurnAsync)
			}
			if n.ModelDropRate != 0 || n.ModelRecoup != "" {
				return fmt.Errorf("scenario: network %q: %w", n.Name, ps.ErrChurnModelLoss)
			}
		}
		wire, err := transport.ParseWireFormat(n.WireFormat)
		if err != nil {
			return fmt.Errorf("scenario: network %q: %w", n.Name, err)
		}
		if wire.Float32 && n.Backend != core.BackendUDP && n.UDPLinks == 0 {
			return fmt.Errorf("scenario: network %q sets wireFormat %q without backend \"udp\" or udpLinks (reliable links always carry float64)",
				n.Name, transport.WireFloat32)
		}
		if n.UDPLinks < -1 {
			return fmt.Errorf("scenario: network %q udpLinks %d", n.Name, n.UDPLinks)
		}
		if _, err := n.recoupPolicy(); err != nil {
			return err
		}
		if _, err := n.protocol(); err != nil {
			return err
		}
		if n.RTTMicros < 0 {
			return fmt.Errorf("scenario: network %q negative rttMicros", n.Name)
		}
	}
	// An informed attack recomputes the honest workers' gradients from the
	// run seed assuming every peer samples once per round on the broadcast
	// model. Three regimes break that oracle — churn (a crashed worker's
	// sampler stream pauses), the slow schedule (peers train stale) and
	// lossy model broadcasts (peers follow their own downlink schedule).
	// The ps and cluster constructors re-check per cell — rejecting the
	// sweep combination here fails the campaign before any cell runs,
	// instead of scattering the same failure across every Result.Error row.
	if a, ok := s.informedAttack(); ok {
		for _, n := range s.Networks {
			switch {
			case n.churnEnabled():
				return fmt.Errorf("scenario: attack %q on churn network %q: %w", a, n.Name, ps.ErrInformedChurn)
			case n.SlowWorkers > 0:
				return fmt.Errorf("scenario: attack %q on slow-schedule network %q: %w", a, n.Name, ps.ErrInformedSlow)
			case n.ModelDropRate != 0 || n.ModelRecoup != "":
				return fmt.Errorf("scenario: attack %q on lossy-model network %q: %w", a, n.Name, ps.ErrInformedModelLoss)
			}
		}
	}
	if _, err := opt.New(s.Optimizer, opt.Fixed{Rate: s.LR}); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	if s.Steps < 1 || s.Batch < 1 || s.EvalEvery < 1 {
		return fmt.Errorf("scenario: steps=%d batch=%d evalEvery=%d must all be >= 1",
			s.Steps, s.Batch, s.EvalEvery)
	}
	if s.Parallelism < 0 {
		return fmt.Errorf("scenario: negative parallelism")
	}
	return nil
}

// Expand enumerates the campaign cross-product in deterministic order:
// GAR (outermost) → attack → cluster → network → seed.
// informedAttack returns the first swept attack that recomputes honest
// gradients (an attack.Informed with RequiresHonest), if any. Unknown
// attack names are skipped: Validate rejected them earlier.
func (s *Spec) informedAttack() (string, bool) {
	for _, a := range s.Attacks {
		if a == AttackNone {
			continue
		}
		atk, err := attack.New(a)
		if err != nil {
			continue
		}
		if inf, ok := atk.(attack.Informed); ok && inf.RequiresHonest() {
			return a, true
		}
	}
	return "", false
}

func (s *Spec) Expand() []Run {
	runs := make([]Run, 0, len(s.GARs)*len(s.Attacks)*len(s.Clusters)*len(s.Networks)*len(s.Seeds))
	for _, g := range s.GARs {
		for _, a := range s.Attacks {
			for _, c := range s.Clusters {
				for _, n := range s.Networks {
					for _, seed := range s.Seeds {
						runs = append(runs, Run{
							Index:   len(runs),
							ID:      fmt.Sprintf("%s/%s/n%d-f%d/%s/seed%d", g, a, c.Workers, c.F, n.Name, seed),
							GAR:     g,
							Attack:  a,
							Cluster: c,
							Network: n,
							Seed:    seed,
						})
					}
				}
			}
		}
	}
	return runs
}

// backend parses the network's deployment substrate (default in-process).
// The returned string is the core.Config.Backend value for the cell.
func (n Network) backend() (string, error) {
	switch n.Backend {
	case "", core.BackendInProcess:
		return core.BackendInProcess, nil
	case core.BackendTCP:
		return core.BackendTCP, nil
	case core.BackendUDP:
		return core.BackendUDP, nil
	default:
		return "", fmt.Errorf("scenario: network %q unknown backend %q (want %s|%s|%s)",
			n.Name, n.Backend, core.BackendInProcess, core.BackendTCP, core.BackendUDP)
	}
}

// recoupPolicy parses the network's recoup policy name (default fill-random).
func (n Network) recoupPolicy() (transport.RecoupPolicy, error) {
	switch n.Recoup {
	case "", "fill-random":
		return transport.FillRandom, nil
	case "fill-nan":
		return transport.FillNaN, nil
	case "drop-gradient":
		return transport.DropGradient, nil
	default:
		return 0, fmt.Errorf("scenario: network %q unknown recoup policy %q (want drop-gradient|fill-nan|fill-random)", n.Name, n.Recoup)
	}
}

// modelRecoupPolicy parses the network's torn-model-broadcast policy name
// (default skip).
func (n Network) modelRecoupPolicy() (cluster.ModelRecoupPolicy, error) {
	switch n.ModelRecoup {
	case "", "skip":
		return cluster.ModelRecoupSkip, nil
	case "stale":
		return cluster.ModelRecoupStale, nil
	default:
		return 0, fmt.Errorf("scenario: network %q unknown model recoup policy %q (want skip|stale)", n.Name, n.ModelRecoup)
	}
}

// protocol parses the network's clock-costing protocol (default tcp).
func (n Network) protocol() (simnet.Protocol, error) {
	switch n.Protocol {
	case "", "tcp":
		return simnet.TCP, nil
	case "udp":
		return simnet.UDP, nil
	default:
		return 0, fmt.Errorf("scenario: network %q unknown protocol %q (want tcp|udp)", n.Name, n.Protocol)
	}
}

// asyncEnabled reports whether this cell runs asynchronous rounds.
func (n Network) asyncEnabled() bool {
	return n.Quorum > 0 || n.Staleness > 0 || n.SlowWorkers > 0
}

// udpLinks resolves the -1 = "all workers" convention.
func (n Network) udpLinks(workers int) int {
	if n.UDPLinks < 0 {
		return workers
	}
	return n.UDPLinks
}

// rtt returns the configured RTT override as a duration (0 = default).
func (n Network) rtt() time.Duration {
	return time.Duration(n.RTTMicros) * time.Microsecond
}

// ParseSpec decodes a JSON spec, applies defaults and validates. Unknown
// fields are rejected so a typoed axis name fails loudly instead of silently
// sweeping the default.
func ParseSpec(raw []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parsing spec: %w", err)
	}
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a JSON spec file.
func LoadSpec(path string) (*Spec, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return ParseSpec(raw)
}

// SmokeSpec returns the built-in demonstration campaign used by the
// cmd/scenario default invocation, the Makefile smoke target and the
// determinism test: 4 GARs × (1 baseline + 3 attacks) × 2 network conditions
// on one 11-worker f=2 cluster.
func SmokeSpec() Spec {
	s := Spec{
		Name:       "smoke",
		Experiment: "features-mlp",
		GARs:       []string{"average", "median", "multi-krum", "bulyan"},
		Attacks:    []string{AttackNone, "random", "reversed", "little-is-enough"},
		Clusters:   []Cluster{{Workers: 11, F: 2}},
		Networks: []Network{
			{Name: "in-process"},
			{Name: "lossy-udp", UDPLinks: -1, DropRate: 0.1, Recoup: "fill-random", Protocol: "udp"},
		},
		Seeds:     []int64{1},
		Steps:     60,
		Batch:     32,
		LR:        5e-3,
		EvalEvery: 10,
		Threshold: 0.25,
	}
	s.ApplyDefaults()
	return s
}

// UDPSmokeSpec returns the built-in lossy-datagram demonstration campaign
// (cmd/scenario -builtin udp-smoke): the same cells swept in-process, over
// real UDP sockets on a perfect link (dropRate 0 — must reproduce the
// in-process trajectories bit-for-bit), and over real UDP sockets at 10%
// seeded packet loss with fill-random recoup (the AggregaThor deployment of
// §3.3). The lossy cells stay byte-reproducible because the drop schedule
// and recoup values are pure functions of (seed, step, worker).
func UDPSmokeSpec() Spec {
	s := Spec{
		Name:       "udp-smoke",
		Experiment: "features-mlp",
		GARs:       []string{"median", "multi-krum"},
		Attacks:    []string{AttackNone, "reversed", "non-finite"},
		Clusters:   []Cluster{{Workers: 7, F: 1}},
		Networks: []Network{
			{Name: "in-process"},
			{Name: "udp-distributed", Backend: "udp"},
			{Name: "udp-lossy", Backend: "udp", DropRate: 0.1, Recoup: "fill-random", Protocol: "udp"},
		},
		Seeds:     []int64{1},
		Steps:     30,
		Batch:     16,
		LR:        5e-3,
		EvalEvery: 10,
		Threshold: 0.25,
	}
	s.ApplyDefaults()
	return s
}

// WireSmokeSpec returns the built-in wire-format demonstration campaign
// (cmd/scenario -builtin wire-smoke): the udp-smoke cells swept in-process,
// over real UDP sockets on both coordinate widths (float64 and float32, on
// perfect and 10%-lossy links), so the accuracy cost of halving the
// gradient bytes can be read directly from the report's wire-format delta
// section. Float32 cells stay byte-reproducible: the rounding is
// deterministic and the drop schedule is a pure function of
// (seed, step, worker).
func WireSmokeSpec() Spec {
	s := Spec{
		Name:       "wire-smoke",
		Experiment: "features-mlp",
		GARs:       []string{"median", "multi-krum"},
		Attacks:    []string{AttackNone, "reversed", "non-finite"},
		Clusters:   []Cluster{{Workers: 7, F: 1}},
		Networks: []Network{
			{Name: "in-process"},
			{Name: "udp-f64", Backend: "udp"},
			{Name: "udp-f32", Backend: "udp", WireFormat: "float32"},
			{Name: "udp-f64-lossy", Backend: "udp", DropRate: 0.1, Recoup: "fill-random", Protocol: "udp"},
			{Name: "udp-f32-lossy", Backend: "udp", WireFormat: "float32", DropRate: 0.1, Recoup: "fill-random", Protocol: "udp"},
		},
		Seeds:     []int64{1},
		Steps:     30,
		Batch:     16,
		LR:        5e-3,
		EvalEvery: 10,
		Threshold: 0.25,
	}
	s.ApplyDefaults()
	return s
}

// ModelLossSmokeSpec returns the built-in lossy-model-broadcast
// demonstration campaign (cmd/scenario -builtin model-loss-smoke): the
// udp-smoke cells swept in-process, over real UDP sockets with a perfect
// model channel (must reproduce the in-process trajectories bit-for-bit),
// and with 10% seeded downlink loss on the model broadcasts under both
// torn-broadcast policies — skip (torn workers sit the round out and their
// slots are recouped) and stale (torn workers train on their last complete
// model and the server accepts the stale-tagged gradients), plus a cell
// combining model loss with 10% gradient loss. All cells stay
// byte-reproducible because the downlink schedule (ps.ModelDropSeed) is a
// pure function of (seed, step, worker) evaluated at both endpoints.
func ModelLossSmokeSpec() Spec {
	s := Spec{
		Name:       "model-loss-smoke",
		Experiment: "features-mlp",
		GARs:       []string{"median", "multi-krum"},
		Attacks:    []string{AttackNone, "reversed", "non-finite"},
		Clusters:   []Cluster{{Workers: 7, F: 1}},
		Networks: []Network{
			{Name: "in-process"},
			{Name: "udp-model-perfect", Backend: "udp", ModelRecoup: "stale"},
			{Name: "udp-model-lossy-skip", Backend: "udp", ModelDropRate: 0.1, Protocol: "udp"},
			{Name: "udp-model-lossy-stale", Backend: "udp", ModelDropRate: 0.1, ModelRecoup: "stale", Protocol: "udp"},
			{Name: "udp-both-lossy-stale", Backend: "udp", DropRate: 0.1, Recoup: "fill-random",
				ModelDropRate: 0.1, ModelRecoup: "stale", Protocol: "udp"},
		},
		Seeds:     []int64{1},
		Steps:     30,
		Batch:     16,
		LR:        5e-3,
		EvalEvery: 10,
		Threshold: 0.25,
	}
	s.ApplyDefaults()
	return s
}

// AsyncSmokeSpec returns the built-in asynchronous-round demonstration
// campaign (cmd/scenario -builtin async-smoke): the udp-smoke cells swept
// through the bounded-staleness quorum mode. A plain lockstep baseline, a
// lockstep cell gated by the deterministic slow-worker schedule (every slot
// still required, so a scheduled-dropped worker skips the whole round), and
// quorum-6-of-7 cells with staleness bound τ=2 on all three backends — the
// straggler contrast the async mode exists to show, read directly from the
// report's async section (rounds/sec, admitted-stale and dropped-too-stale
// per cell). A lossy-uplink async cell composes the quorum mode with 10%
// gradient packet loss. Every cell stays byte-reproducible because the slow
// schedule (ps.SlowSeed) is a pure function of (seed, step, worker) evaluated
// at both endpoints.
func AsyncSmokeSpec() Spec {
	s := Spec{
		Name:       "async-smoke",
		Experiment: "features-mlp",
		GARs:       []string{"median", "multi-krum"},
		Attacks:    []string{AttackNone, "reversed", "non-finite"},
		Clusters:   []Cluster{{Workers: 7, F: 1}},
		Networks: []Network{
			{Name: "lockstep-in-process"},
			{Name: "lockstep-slow", Staleness: 2, SlowWorkers: 0.25},
			{Name: "async-in-process", Quorum: 6, Staleness: 2, SlowWorkers: 0.25},
			{Name: "async-tcp", Backend: "tcp", Quorum: 6, Staleness: 2, SlowWorkers: 0.25},
			{Name: "async-udp", Backend: "udp", Quorum: 6, Staleness: 2, SlowWorkers: 0.25},
			{Name: "async-udp-lossy", Backend: "udp", Quorum: 6, Staleness: 2, SlowWorkers: 0.25,
				DropRate: 0.1, Recoup: "fill-random", Protocol: "udp"},
		},
		Seeds:     []int64{1},
		Steps:     30,
		Batch:     16,
		LR:        5e-3,
		EvalEvery: 10,
		Threshold: 0.25,
	}
	s.ApplyDefaults()
	return s
}

// ChurnSmokeSpec returns the built-in worker-churn demonstration campaign
// (cmd/scenario -builtin churn-smoke): the tcp-smoke cells swept through the
// deterministic crash/rejoin schedule. A steady in-process baseline, then
// churn at rate 0.08 (down 2 rounds, at most 2 rejoins per worker — at seed
// 1 the 30-step schedule produces 18 crashes, 13 rejoins and 4 permanent
// departures) on both socket backends, plus a lossy-uplink churn cell
// composing the schedule with 10% gradient packet loss. The multi-krum cells
// additionally exercise graceful GAR degradation: rounds the schedule drags
// below the n >= 2f+3 resilience bound are skipped and counted
// (belowBoundRounds), never aggregated. The loss-free tcp and udp churn
// cells produce identical counters and trajectories — the schedule is
// evaluated at both endpoints from the seed, never from socket timing — and
// every cell stays byte-reproducible across reruns.
func ChurnSmokeSpec() Spec {
	churn := &Churn{Rate: 0.08, DownSteps: 2, MaxRejoins: 2}
	s := Spec{
		Name:       "churn-smoke",
		Experiment: "features-mlp",
		GARs:       []string{"median", "multi-krum"},
		Attacks:    []string{AttackNone, "reversed", "non-finite"},
		Clusters:   []Cluster{{Workers: 7, F: 1}},
		Networks: []Network{
			{Name: "steady-in-process"},
			{Name: "churn-tcp", Backend: "tcp", Churn: churn},
			{Name: "churn-udp", Backend: "udp", Churn: churn},
			{Name: "churn-udp-lossy", Backend: "udp", Churn: churn,
				DropRate: 0.1, Recoup: "fill-random", Protocol: "udp"},
		},
		Seeds:     []int64{1},
		Steps:     30,
		Batch:     16,
		LR:        5e-3,
		EvalEvery: 10,
		Threshold: 0.25,
	}
	s.ApplyDefaults()
	return s
}

// DistributedSmokeSpec returns the built-in socket-distributed demonstration
// campaign (cmd/scenario -builtin tcp-smoke): the same cells swept both
// in-process and over real localhost TCP sockets, so the two backends'
// trajectories can be diffed cell-for-cell — identical seeds must produce
// identical loss/accuracy numbers on the perfect-network cells.
func DistributedSmokeSpec() Spec {
	s := Spec{
		Name:       "tcp-smoke",
		Experiment: "features-mlp",
		GARs:       []string{"median", "multi-krum"},
		Attacks:    []string{AttackNone, "reversed", "non-finite"},
		Clusters:   []Cluster{{Workers: 7, F: 1}},
		Networks: []Network{
			{Name: "in-process"},
			{Name: "tcp-distributed", Backend: "tcp"},
		},
		Seeds:     []int64{1},
		Steps:     30,
		Batch:     16,
		LR:        5e-3,
		EvalEvery: 10,
		Threshold: 0.25,
	}
	s.ApplyDefaults()
	return s
}
