package scenario

import (
	"bytes"
	"testing"
)

// TestAsyncCampaignJSONDeterministic is the campaign acceptance gate for
// asynchronous rounds: the async-smoke spec — lockstep baseline, slow-gated
// lockstep, quorum cells on all three backends and a lossy-uplink quorum
// cell — must produce byte-identical JSON across repeated executions and
// across serial vs parallel pools, and the async readout must behave: only
// async-enabled cells report rounds/sec, lockstep cells surface zero
// staleness, and the slow schedule actually engages somewhere.
func TestAsyncCampaignJSONDeterministic(t *testing.T) {
	spec := AsyncSmokeSpec()
	spec.Steps = 8
	spec.EvalEvery = 4

	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawFirst, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rawSecond, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSecond) {
		t.Fatal("two executions of the async-smoke spec produced different JSON")
	}
	spec.Parallelism = 1
	serial, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawSerial, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSerial) {
		t.Fatal("serial execution of the async-smoke spec differs from parallel execution")
	}

	// Readout semantics. The plain lockstep cells must surface no async
	// numbers at all; every async-enabled cell must report a positive
	// rounds/sec; and the slow schedule must engage somewhere (admitted-stale
	// and dropped-too-stale both nonzero across the campaign, with the
	// scheduled sit-outs surfacing as skipped rounds on the slow-gated
	// lockstep cell).
	staleTotal, droppedTotal, slowGatedSkips := 0, 0, 0
	for _, res := range first.Results {
		if res.Error != "" {
			t.Fatalf("%s: cell failed: %s", res.Run.ID, res.Error)
		}
		asyncCell := res.Run.Network.Quorum > 0 || res.Run.Network.Staleness > 0 || res.Run.Network.SlowWorkers > 0
		if !asyncCell {
			if res.AdmittedStale != 0 || res.DroppedTooStale != 0 || res.RoundsPerSec != 0 {
				t.Fatalf("%s: lockstep cell surfaced async readouts: stale=%d dropped=%d rounds/s=%v",
					res.Run.ID, res.AdmittedStale, res.DroppedTooStale, res.RoundsPerSec)
			}
			continue
		}
		if res.RoundsPerSec <= 0 {
			t.Fatalf("%s: async cell reports rounds/sec %v, want > 0", res.Run.ID, res.RoundsPerSec)
		}
		staleTotal += res.AdmittedStale
		droppedTotal += res.DroppedTooStale
		if res.Run.Network.Name == "lockstep-slow" {
			slowGatedSkips += res.SkippedRounds
		}
	}
	if staleTotal == 0 || droppedTotal == 0 {
		t.Fatalf("campaign admitted %d stale and dropped %d slots; the slow schedule is not engaging", staleTotal, droppedTotal)
	}
	if slowGatedSkips == 0 {
		t.Fatal("the slow-gated lockstep cells skipped no rounds; scheduled sit-outs are not gating them")
	}

	// The same schedule on the same seed must count identically on every
	// backend: the three quorum-6 loss-free cells of one (gar, attack) pair
	// report the same admitted-stale/dropped-too-stale/skipped totals.
	type counts struct{ stale, dropped, skipped int }
	byBackend := map[string]map[string]counts{}
	for _, res := range first.Results {
		n := res.Run.Network.Name
		if n != "async-in-process" && n != "async-tcp" && n != "async-udp" {
			continue
		}
		key := res.Run.GAR + "/" + res.Run.Attack
		if byBackend[key] == nil {
			byBackend[key] = map[string]counts{}
		}
		byBackend[key][n] = counts{res.AdmittedStale, res.DroppedTooStale, res.SkippedRounds}
	}
	for key, cells := range byBackend {
		ref, ok := cells["async-in-process"]
		if !ok || len(cells) != 3 {
			t.Fatalf("%s: expected all three loss-free async backends, got %v", key, cells)
		}
		for name, got := range cells {
			if got != ref {
				t.Fatalf("%s: %s counted %+v, in-process counted %+v", key, name, got, ref)
			}
		}
	}
}

// TestNetworkValidationAsync pins the async validation surface: quorum and
// staleness are non-negative, slow-worker rates live in [0, 1) and need a
// staleness window, and the async mode refuses to compose with lossy model
// broadcasts.
func TestNetworkValidationAsync(t *testing.T) {
	base := func(n Network) *Spec {
		// Blind attacks only: sweeping the informed family against a slow
		// schedule is itself a validation error (informed_test.go).
		s := Spec{Networks: []Network{n}, Attacks: []string{AttackNone, "reversed"}}
		s.ApplyDefaults()
		return &s
	}
	if err := base(Network{Name: "a", Quorum: 6, Staleness: 2, SlowWorkers: 0.25}).Validate(); err != nil {
		t.Fatalf("valid async network rejected: %v", err)
	}
	if err := base(Network{Name: "a", Backend: "udp", Quorum: 6, Staleness: 2, SlowWorkers: 0.25, DropRate: 0.1, Recoup: "fill-random"}).Validate(); err != nil {
		t.Fatalf("valid lossy-uplink async network rejected: %v", err)
	}
	if err := base(Network{Name: "a", Quorum: -1}).Validate(); err == nil {
		t.Fatal("negative quorum accepted")
	}
	if err := base(Network{Name: "a", Staleness: -1}).Validate(); err == nil {
		t.Fatal("negative staleness accepted")
	}
	if err := base(Network{Name: "a", Staleness: 2, SlowWorkers: 1.0}).Validate(); err == nil {
		t.Fatal("slowWorkers 1.0 accepted")
	}
	if err := base(Network{Name: "a", Staleness: 2, SlowWorkers: -0.1}).Validate(); err == nil {
		t.Fatal("negative slowWorkers accepted")
	}
	if err := base(Network{Name: "a", Quorum: 6, SlowWorkers: 0.25}).Validate(); err == nil {
		t.Fatal("slowWorkers without a staleness window accepted")
	}
	if err := base(Network{Name: "a", Backend: "udp", Quorum: 6, ModelDropRate: 0.1}).Validate(); err == nil {
		t.Fatal("async composed with lossy model broadcasts accepted")
	}
	if err := base(Network{Name: "a", Backend: "udp", Quorum: 6, ModelRecoup: "stale"}).Validate(); err == nil {
		t.Fatal("async composed with the stale model recoup accepted")
	}
}
