package scenario

import (
	"fmt"
	"runtime"
	"sync"

	"aggregathor/internal/core"
)

// Result is the structured outcome of one campaign run. Every field is a
// deterministic function of the spec and the run seed (aggregation cost comes
// from the analytic simnet model, never the host's wall clock), which is what
// makes campaign JSON byte-reproducible.
type Result struct {
	Run Run `json:"run"`

	// FinalAccuracy is the last test-set evaluation.
	FinalAccuracy float64 `json:"finalAccuracy"`
	// FinalLoss is the mean honest training loss at the last evaluation.
	FinalLoss float64 `json:"finalLoss"`
	// StepsToThreshold is the first model-update index whose evaluation
	// reached the spec's accuracy threshold; -1 if never reached.
	StepsToThreshold int `json:"stepsToThreshold"`
	// SimTimeToThresholdNS is the simulated time of that evaluation in
	// nanoseconds; -1 if never reached.
	SimTimeToThresholdNS int64 `json:"simTimeToThresholdNs"`
	// AggTimePerRoundNS is the server-side aggregation cost per round from
	// the analytic model, in nanoseconds.
	AggTimePerRoundNS int64 `json:"aggTimePerRoundNs"`
	// RoundTimeNS is the full simulated round duration in nanoseconds.
	RoundTimeNS int64 `json:"roundTimeNs"`
	// SkippedRounds counts rounds lost to the GAR quorum check.
	SkippedRounds int `json:"skippedRounds"`
	// Diverged is true when the model parameters went non-finite.
	Diverged bool `json:"diverged"`
	// Hijacked is true when a remote parameter write succeeded.
	Hijacked bool `json:"hijacked"`
	// Error records an infeasible run (e.g. n below the GAR's minimum for
	// the declared f) instead of aborting the campaign.
	Error string `json:"error,omitempty"`
}

// Campaign is a fully executed spec: the expanded runs in expansion order,
// each with its result.
type Campaign struct {
	Spec    Spec     `json:"spec"`
	Results []Result `json:"results"`
}

// Execute expands the spec and runs every cell on a bounded worker pool.
// Results are ordered by expansion index regardless of completion order. An
// infeasible cell records its error in the result; only spec-level problems
// return an error.
func Execute(s Spec) (*Campaign, error) {
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	runs := s.Expand()
	if len(runs) == 0 {
		return nil, fmt.Errorf("scenario: spec %q expands to zero runs", s.Name)
	}
	par := s.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(runs) {
		par = len(runs)
	}
	results := make([]Result, len(runs))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = executeRun(&s, runs[i])
		}(i)
	}
	wg.Wait()
	// Parallelism is an execution knob, not a sweep axis: strip it from the
	// echoed spec so the pool size can never leak into the byte-reproducible
	// campaign JSON.
	s.Parallelism = 0
	return &Campaign{Spec: s, Results: results}, nil
}

// executeRun maps one campaign cell onto a core experiment and distils the
// run's series into the structured result.
func executeRun(s *Spec, r Run) Result {
	out := Result{Run: r, StepsToThreshold: -1, SimTimeToThresholdNS: -1}

	// The last F workers are the Byzantine ones (UDP links are assigned
	// from the front, so lossy-link and Byzantine roles overlap only when
	// the whole cluster is lossy).
	attacks := map[int]string{}
	if r.Attack != AttackNone {
		for w := r.Cluster.Workers - r.Cluster.F; w < r.Cluster.Workers; w++ {
			attacks[w] = r.Attack
		}
	}
	policy, err := r.Network.recoupPolicy()
	if err != nil {
		out.Error = err.Error()
		return out
	}
	proto, err := r.Network.protocol()
	if err != nil {
		out.Error = err.Error()
		return out
	}
	cfg := core.Config{
		Experiment: s.Experiment,
		Aggregator: r.GAR,
		F:          r.Cluster.F,
		Workers:    r.Cluster.Workers,
		Batch:      s.Batch,
		Optimizer:  s.Optimizer,
		LR:         s.LR,
		Steps:      s.Steps,
		EvalEvery:  s.EvalEvery,
		Attacks:    attacks,
		UDPLinks:   r.Network.udpLinks(r.Cluster.Workers),
		DropRate:   r.Network.DropRate,
		Recoup:     policy,
		Protocol:   proto,
		RTT:        r.Network.rtt(),
		Seed:       r.Seed,
	}
	res, err := core.Run(cfg)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.FinalAccuracy = res.FinalAccuracy
	if p, ok := res.LossVsStep.Last(); ok {
		out.FinalLoss = p.Value
	}
	if step, ok := res.AccuracyVsStep.StepToValue(s.Threshold); ok {
		out.StepsToThreshold = step
	}
	if t, ok := res.AccuracyVsTime.TimeToValue(s.Threshold); ok {
		out.SimTimeToThresholdNS = t.Nanoseconds()
	}
	out.AggTimePerRoundNS = res.Breakdown.Aggregation.Nanoseconds()
	out.RoundTimeNS = res.Breakdown.Total().Nanoseconds()
	out.SkippedRounds = res.SkippedRounds
	out.Diverged = res.Diverged
	out.Hijacked = res.Hijacked
	return out
}
