package scenario

import (
	"fmt"
	"runtime"
	"sync"

	"aggregathor/internal/core"
	"aggregathor/internal/gar"
	"aggregathor/internal/simnet"
)

// Result is the structured outcome of one campaign run. Every field is a
// deterministic function of the spec and the run seed (aggregation cost comes
// from the analytic simnet model, never the host's wall clock), which is what
// makes campaign JSON byte-reproducible.
type Result struct {
	Run Run `json:"run"`

	// FinalAccuracy is the last test-set evaluation.
	FinalAccuracy float64 `json:"finalAccuracy"`
	// FinalLoss is the mean honest training loss at the last evaluation.
	FinalLoss float64 `json:"finalLoss"`
	// StepsToThreshold is the first model-update index whose evaluation
	// reached the spec's accuracy threshold; -1 if never reached.
	StepsToThreshold int `json:"stepsToThreshold"`
	// SimTimeToThresholdNS is the simulated time of that evaluation in
	// nanoseconds; -1 if never reached.
	SimTimeToThresholdNS int64 `json:"simTimeToThresholdNs"`
	// AggTimePerRoundNS is the server-side aggregation cost per round from
	// the analytic model, in nanoseconds.
	AggTimePerRoundNS int64 `json:"aggTimePerRoundNs"`
	// RoundTimeNS is the full simulated round duration in nanoseconds.
	RoundTimeNS int64 `json:"roundTimeNs"`
	// SkippedRounds counts rounds lost to the GAR quorum check.
	SkippedRounds int `json:"skippedRounds"`
	// StaleGradients counts gradients the server accepted from stale-model
	// submissions across the run (udp backend, lossy model broadcasts with
	// modelRecoup "stale") — the staleness readout of the model-loss axis.
	StaleGradients int `json:"staleGradients"`
	// AdmittedStale counts gradients aggregated across the run that were
	// computed against a model up to τ steps old, per the asynchronous
	// slow-worker schedule (cells with quorum/staleness/slowWorkers set).
	AdmittedStale int `json:"admittedStale,omitempty"`
	// DroppedTooStale counts slots the asynchronous schedule dropped
	// because the scheduled lag exceeded the staleness bound τ.
	DroppedTooStale int `json:"droppedTooStale,omitempty"`
	// Crashes counts scheduled worker crashes across the run (cells with a
	// churn block). Like every churn counter it is an exact pure function
	// of the seed, and it is omitted when zero so pre-churn campaign JSON
	// stays byte-identical.
	Crashes int `json:"crashes,omitempty"`
	// Rejoins counts scheduled rejoins the membership tracker admitted.
	Rejoins int `json:"rejoins,omitempty"`
	// ReconnectAttempts counts dial attempts rejoining workers spent in the
	// bounded backoff ladder (equal to Rejoins on a loopback fabric).
	ReconnectAttempts int `json:"reconnectAttempts,omitempty"`
	// BelowBoundRounds counts rounds skipped because churn left fewer live
	// workers than the GAR's Byzantine-resilience bound n >= 2f+3.
	BelowBoundRounds int `json:"belowBoundRounds,omitempty"`
	// RoundsPerSec is the effective model-update rate against the simulated
	// clock — aggregated (non-skipped) rounds per simulated second. Only
	// reported for asynchronous cells, where it is the headline readout:
	// a lockstep cell gated by slow workers skips rounds, a quorum cell
	// keeps aggregating without them.
	RoundsPerSec float64 `json:"roundsPerSec,omitempty"`
	// MeasuredAggWallNS is the real measured wall time of one aggregation
	// at the run's model dimension, in nanoseconds. Only present when the
	// spec sets includeWallTime; it is host wall clock and therefore the
	// one field excluded from the byte-reproducibility guarantee.
	MeasuredAggWallNS int64 `json:"measuredAggWallNs,omitempty"`

	// modelDim carries the trained model's parameter count from the pool
	// phase to the serial wall-time measurement phase (not marshalled).
	modelDim int
	// Diverged is true when the model parameters went non-finite.
	Diverged bool `json:"diverged"`
	// Hijacked is true when a remote parameter write succeeded.
	Hijacked bool `json:"hijacked"`
	// Error records an infeasible run (e.g. n below the GAR's minimum for
	// the declared f) instead of aborting the campaign.
	Error string `json:"error,omitempty"`
}

// Campaign is a fully executed spec: the expanded runs in expansion order,
// each with its result.
type Campaign struct {
	Spec    Spec     `json:"spec"`
	Results []Result `json:"results"`
}

// Execute expands the spec and runs every cell on a bounded worker pool.
// Results are ordered by expansion index regardless of completion order. An
// infeasible cell records its error in the result; only spec-level problems
// return an error.
func Execute(s Spec) (*Campaign, error) {
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	runs := s.Expand()
	if len(runs) == 0 {
		return nil, fmt.Errorf("scenario: spec %q expands to zero runs", s.Name)
	}
	par := s.Parallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}
	if par > len(runs) {
		par = len(runs)
	}
	results := make([]Result, len(runs))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i := range runs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = executeRun(&s, runs[i])
		}(i)
	}
	wg.Wait()
	// Wall-time measurements run serially after the pool drains so no
	// concurrent training run contends for the cores being timed — the
	// numbers are meant to be comparable across commits, not artefacts of
	// the pool schedule.
	if s.IncludeWallTime {
		for i := range results {
			if results[i].Error == "" {
				results[i].MeasuredAggWallNS = measureAggWall(results[i].Run, results[i].modelDim)
			}
		}
	}
	// Parallelism is an execution knob, not a sweep axis: strip it from the
	// echoed spec so the pool size can never leak into the byte-reproducible
	// campaign JSON.
	s.Parallelism = 0
	return &Campaign{Spec: s, Results: results}, nil
}

// executeRun maps one campaign cell onto a core experiment and distils the
// run's series into the structured result.
func executeRun(s *Spec, r Run) Result {
	out := Result{Run: r, StepsToThreshold: -1, SimTimeToThresholdNS: -1}

	// The last F workers are the Byzantine ones (UDP links are assigned
	// from the front, so lossy-link and Byzantine roles overlap only when
	// the whole cluster is lossy).
	attacks := map[int]string{}
	if r.Attack != AttackNone {
		for w := r.Cluster.Workers - r.Cluster.F; w < r.Cluster.Workers; w++ {
			attacks[w] = r.Attack
		}
	}
	policy, err := r.Network.recoupPolicy()
	if err != nil {
		out.Error = err.Error()
		return out
	}
	modelPolicy, err := r.Network.modelRecoupPolicy()
	if err != nil {
		out.Error = err.Error()
		return out
	}
	proto, err := r.Network.protocol()
	if err != nil {
		out.Error = err.Error()
		return out
	}
	backend, err := r.Network.backend()
	if err != nil {
		out.Error = err.Error()
		return out
	}
	cfg := core.Config{
		Experiment:    s.Experiment,
		Backend:       backend,
		Aggregator:    r.GAR,
		F:             r.Cluster.F,
		Workers:       r.Cluster.Workers,
		Batch:         s.Batch,
		Optimizer:     s.Optimizer,
		LR:            s.LR,
		Steps:         s.Steps,
		EvalEvery:     s.EvalEvery,
		Attacks:       attacks,
		UDPLinks:      r.Network.udpLinks(r.Cluster.Workers),
		WireFormat:    r.Network.WireFormat,
		DropRate:      r.Network.DropRate,
		Recoup:        policy,
		ModelDropRate: r.Network.ModelDropRate,
		ModelRecoup:   modelPolicy,
		Protocol:      proto,
		RTT:           r.Network.rtt(),
		Quorum:        r.Network.Quorum,
		Staleness:     r.Network.Staleness,
		SlowWorkers:   r.Network.SlowWorkers,
		Seed:          r.Seed,
	}
	if churn := r.Network.churnConfig(); churn.Enabled() {
		cfg.ChurnRate = churn.Rate
		cfg.ChurnDownSteps = churn.DownSteps
		cfg.ChurnMaxRejoins = churn.MaxRejoins
	}
	res, err := core.Run(cfg)
	if err != nil {
		out.Error = err.Error()
		return out
	}
	out.FinalAccuracy = res.FinalAccuracy
	if p, ok := res.LossVsStep.Last(); ok {
		out.FinalLoss = p.Value
	}
	if step, ok := res.AccuracyVsStep.StepToValue(s.Threshold); ok {
		out.StepsToThreshold = step
	}
	if t, ok := res.AccuracyVsTime.TimeToValue(s.Threshold); ok {
		out.SimTimeToThresholdNS = t.Nanoseconds()
	}
	out.AggTimePerRoundNS = res.Breakdown.Aggregation.Nanoseconds()
	out.RoundTimeNS = res.Breakdown.Total().Nanoseconds()
	out.SkippedRounds = res.SkippedRounds
	out.StaleGradients = res.StaleGradients
	out.AdmittedStale = res.AdmittedStale
	out.DroppedTooStale = res.DroppedTooStale
	out.Crashes = res.Crashes
	out.Rejoins = res.Rejoins
	out.ReconnectAttempts = res.ReconnectAttempts
	out.BelowBoundRounds = res.BelowBoundRounds
	// The effective round rate is only reported for asynchronous cells so
	// pre-async campaign JSON stays byte-identical. It divides aggregated
	// (non-skipped) rounds by total simulated time: a lockstep cell gated by
	// a slow schedule loses rounds to the quorum check, an async quorum cell
	// keeps updating — the contrast this axis exists to show.
	if r.Network.asyncEnabled() && s.Steps > 0 && out.RoundTimeNS > 0 {
		simSeconds := float64(s.Steps) * float64(out.RoundTimeNS) * 1e-9
		out.RoundsPerSec = float64(s.Steps-res.SkippedRounds) / simSeconds
	}
	out.Diverged = res.Diverged
	out.Hijacked = res.Hijacked
	out.modelDim = res.ModelDim
	return out
}

// measureAggWall times one real execution of the run's GAR at the trained
// model's dimension. The result is host wall clock — useful for comparing
// aggregation overheads across commits, but inherently non-deterministic,
// which is why it rides behind the spec's opt-in includeWallTime flag, is
// excluded from determinism comparisons, and is measured serially after the
// training pool has drained. 0 means the measurement was not possible (e.g.
// the cell was infeasible for the rule).
func measureAggWall(r Run, dim int) int64 {
	rule, err := gar.New(r.GAR, r.Cluster.F)
	if err != nil || dim <= 0 {
		return 0
	}
	d, err := simnet.MeasureAggregation(rule, r.Cluster.Workers, dim, 1, r.Seed)
	if err != nil {
		return 0
	}
	if ns := d.Nanoseconds(); ns > 0 {
		return ns
	}
	// Clamp to 1ns so "measured" is distinguishable from "absent" even on
	// coarse clocks.
	return 1
}
