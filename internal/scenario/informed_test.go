package scenario

import (
	"errors"
	"testing"

	"aggregathor/internal/ps"
)

// TestInformedAttackSlowNetworkRejected pins the spec-level informed ×
// slow-schedule guard. The ps and cluster constructors already reject the
// combination (an informed attack recomputes honest gradients from the
// broadcast model, which a slow schedule invalidates), but until the
// guard-parity sweep this spec slid through Validate and every cell of the
// campaign failed into its Result.Error JSON row instead of failing loudly
// before any cell ran.
func TestInformedAttackSlowNetworkRejected(t *testing.T) {
	s := Spec{
		Networks: []Network{{Name: "a", Quorum: 6, Staleness: 2, SlowWorkers: 0.25}},
		Attacks:  []string{AttackNone, "omniscient"},
	}
	s.ApplyDefaults()
	err := s.Validate()
	if !errors.Is(err, ps.ErrInformedSlow) {
		t.Fatalf("informed attack swept against a slow-schedule network: got %v, want ErrInformedSlow", err)
	}
	blind := Spec{
		Networks: []Network{{Name: "a", Quorum: 6, Staleness: 2, SlowWorkers: 0.25}},
		Attacks:  []string{AttackNone, "reversed"},
	}
	blind.ApplyDefaults()
	if err := blind.Validate(); err != nil {
		t.Fatalf("blind attack swept against a slow-schedule network rejected: %v", err)
	}
}

// TestInformedAttackModelLossNetworkRejected pins the spec-level informed ×
// lossy-model-broadcast guard — the third leg of the informed-oracle family
// (slow, churn, model-loss), previously enforced only by the UDP cluster
// constructor.
func TestInformedAttackModelLossNetworkRejected(t *testing.T) {
	s := Spec{
		Networks: []Network{{Name: "a", Backend: "udp", ModelDropRate: 0.1}},
		Attacks:  []string{AttackNone, "omniscient"},
	}
	s.ApplyDefaults()
	err := s.Validate()
	if !errors.Is(err, ps.ErrInformedModelLoss) {
		t.Fatalf("informed attack swept against a lossy-model network: got %v, want ErrInformedModelLoss", err)
	}
	blind := Spec{
		Networks: []Network{{Name: "a", Backend: "udp", ModelDropRate: 0.1}},
		Attacks:  []string{AttackNone, "reversed"},
	}
	blind.ApplyDefaults()
	if err := blind.Validate(); err != nil {
		t.Fatalf("blind attack swept against a lossy-model network rejected: %v", err)
	}
}
