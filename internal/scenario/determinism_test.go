package scenario

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestCampaignJSONDeterministic is the acceptance gate for the engine: a
// campaign spanning at least 4 GARs × 3 attacks × 2 network conditions,
// executed twice with the same spec and seeds, must produce byte-identical
// JSON. The grid is the built-in smoke campaign with a shortened training
// budget (the grid shape, not the step count, is what the guarantee covers).
func TestCampaignJSONDeterministic(t *testing.T) {
	spec := SmokeSpec()
	spec.Steps = 8
	spec.EvalEvery = 4

	if len(spec.GARs) < 4 {
		t.Fatalf("smoke spec has %d GARs, want >= 4", len(spec.GARs))
	}
	attacks := 0
	for _, a := range spec.Attacks {
		if a != AttackNone {
			attacks++
		}
	}
	if attacks < 3 {
		t.Fatalf("smoke spec has %d attacks, want >= 3", attacks)
	}
	if len(spec.Networks) < 2 {
		t.Fatalf("smoke spec has %d network conditions, want >= 2", len(spec.Networks))
	}

	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawFirst, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rawSecond, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSecond) {
		t.Fatal("two executions of the same spec produced different JSON")
	}

	// A third execution with a serial pool must also match byte-for-byte:
	// neither result values, result order, nor the echoed spec may depend
	// on the pool size (parallelism is an execution knob, not an axis).
	spec.Parallelism = 1
	serial, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawSerial, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSerial) {
		t.Fatal("serial execution produced different results than parallel execution")
	}

	// The JSON must round-trip: campaign files are the interchange format
	// future PRs diff against.
	var decoded Campaign
	if err := json.Unmarshal(rawFirst, &decoded); err != nil {
		t.Fatalf("campaign JSON does not round-trip: %v", err)
	}
	if len(decoded.Results) != len(first.Results) {
		t.Fatalf("round-trip lost results: %d != %d", len(decoded.Results), len(first.Results))
	}
	expanded := spec.Expand()
	if len(first.Results) != len(expanded) {
		t.Fatalf("campaign has %d results for %d expanded runs", len(first.Results), len(expanded))
	}
	for i, res := range first.Results {
		if res.Run.ID != expanded[i].ID {
			t.Fatalf("result %d is %q, expansion order says %q", i, res.Run.ID, expanded[i].ID)
		}
	}
}
