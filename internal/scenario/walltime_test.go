package scenario

import (
	"bytes"
	"testing"
)

// TestIncludeWallTimeKeepsDeterministicFieldsStable covers the opt-in
// measured aggregation wall-time column: enabling it must populate
// MeasuredAggWallNS on every feasible run while leaving every other field
// byte-stable across executions — the measurement is the single
// non-deterministic column, not a leak into the rest of the report.
func TestIncludeWallTimeKeepsDeterministicFieldsStable(t *testing.T) {
	spec := SmokeSpec()
	spec.GARs = []string{"average", "multi-krum"}
	spec.Attacks = []string{AttackNone, "reversed"}
	spec.Networks = []Network{{Name: "in-process"}}
	spec.Steps = 6
	spec.EvalEvery = 3
	spec.IncludeWallTime = true

	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range first.Results {
		if res.Error == "" && res.MeasuredAggWallNS <= 0 {
			t.Fatalf("run %d (%s): includeWallTime set but MeasuredAggWallNS = %d",
				i, res.Run.ID, res.MeasuredAggWallNS)
		}
	}

	// Strip the one declared-non-deterministic column, then the two
	// executions must be byte-identical.
	strip := func(c *Campaign) []byte {
		clone := *c
		clone.Results = append([]Result(nil), c.Results...)
		for i := range clone.Results {
			clone.Results[i].MeasuredAggWallNS = 0
		}
		raw, err := clone.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	if !bytes.Equal(strip(first), strip(second)) {
		t.Fatal("deterministic fields changed when includeWallTime was enabled")
	}

	// The spec echo must carry the flag so a stripped comparison is
	// reproducible from the JSON alone.
	if !first.Spec.IncludeWallTime {
		t.Fatal("campaign spec echo lost includeWallTime")
	}
}
