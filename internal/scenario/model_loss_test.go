package scenario

import (
	"bytes"
	"testing"
)

// TestModelLossCampaignJSONDeterministic extends the campaign acceptance
// gate to lossy model broadcasts (footnote 12): cells with 10% scheduled
// downlink loss — under both the skip and the stale recoup policy — must
// produce byte-identical JSON across repeated executions and across serial
// vs parallel pools, the modelDropRate-0 udp cells must equal their
// in-process twins exactly, and the staleness readout must behave: stale
// cells report stale gradients, skip and perfect cells report none.
func TestModelLossCampaignJSONDeterministic(t *testing.T) {
	spec := ModelLossSmokeSpec()
	spec.Steps = 8
	spec.EvalEvery = 4

	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawFirst, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rawSecond, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSecond) {
		t.Fatal("two executions of the model-loss spec produced different JSON")
	}
	spec.Parallelism = 1
	serial, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawSerial, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSerial) {
		t.Fatal("serial execution of the model-loss spec differs from parallel execution")
	}

	// Perfect-model-channel parity: the modelDropRate-0 udp cells (even
	// with the stale policy configured) must equal their in-process twins.
	byCell := map[string]Result{}
	for _, res := range first.Results {
		if res.Run.Network.Name == "in-process" {
			byCell[res.Run.GAR+"/"+res.Run.Attack] = res
		}
	}
	compared := 0
	for _, res := range first.Results {
		if res.Run.Network.Backend != "udp" || res.Run.Network.ModelDropRate != 0 || res.Run.Network.DropRate != 0 {
			continue
		}
		ref, ok := byCell[res.Run.GAR+"/"+res.Run.Attack]
		if !ok {
			t.Fatalf("no in-process twin for %s", res.Run.ID)
		}
		if res.Error != ref.Error {
			t.Fatalf("%s: error %q vs in-process %q", res.Run.ID, res.Error, ref.Error)
		}
		if res.FinalAccuracy != ref.FinalAccuracy || res.FinalLoss != ref.FinalLoss {
			t.Fatalf("%s: accuracy/loss (%v, %v) diverged from in-process twin (%v, %v)",
				res.Run.ID, res.FinalAccuracy, res.FinalLoss, ref.FinalAccuracy, ref.FinalLoss)
		}
		if res.StaleGradients != 0 {
			t.Fatalf("%s: %d stale gradients on a loss-free model channel", res.Run.ID, res.StaleGradients)
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no perfect-model-channel udp cells compared")
	}

	// The staleness axis must actually engage: at least one stale-policy
	// lossy cell reports stale gradients; skip cells never do; and lossy
	// model broadcasts must change some trajectory vs the perfect channel.
	staleSeen, lossDiffers := false, false
	perfect := map[string]Result{}
	for _, res := range first.Results {
		if res.Run.Network.Name == "udp-model-perfect" {
			perfect[res.Run.GAR+"/"+res.Run.Attack] = res
		}
	}
	for _, res := range first.Results {
		if res.Run.Network.ModelDropRate == 0 {
			continue
		}
		switch res.Run.Network.ModelRecoup {
		case "stale":
			if res.StaleGradients > 0 {
				staleSeen = true
			}
		default: // skip
			if res.StaleGradients != 0 {
				t.Fatalf("%s: skip policy reported %d stale gradients", res.Run.ID, res.StaleGradients)
			}
		}
		if ref, ok := perfect[res.Run.GAR+"/"+res.Run.Attack]; ok {
			if res.FinalAccuracy != ref.FinalAccuracy || res.FinalLoss != ref.FinalLoss {
				lossDiffers = true
			}
		}
	}
	if !staleSeen {
		t.Fatal("no stale-policy cell reported stale gradients; the staleness axis is not engaging")
	}
	if !lossDiffers {
		t.Fatal("every lossy-model cell equals its perfect-channel twin; downlink drops are not reaching the wire")
	}
}

// TestNetworkValidationModelLoss pins the model-loss validation surface:
// the knobs compose only with the udp backend, rates stay in [0, 1), and
// recoup names parse strictly.
func TestNetworkValidationModelLoss(t *testing.T) {
	base := func(n Network) *Spec {
		// Blind attacks only: sweeping the informed family against a lossy
		// model channel is itself a validation error (informed_test.go).
		s := Spec{Networks: []Network{n}, Attacks: []string{AttackNone, "reversed"}}
		s.ApplyDefaults()
		return &s
	}
	if err := base(Network{Name: "m", Backend: "udp", ModelDropRate: 0.2, ModelRecoup: "stale"}).Validate(); err != nil {
		t.Fatalf("valid lossy-model network rejected: %v", err)
	}
	if err := base(Network{Name: "m", Backend: "udp", ModelDropRate: 0.2}).Validate(); err != nil {
		t.Fatalf("lossy-model network with default (skip) recoup rejected: %v", err)
	}
	if err := base(Network{Name: "m", Backend: "tcp", ModelDropRate: 0.2}).Validate(); err == nil {
		t.Fatal("tcp backend with modelDropRate accepted")
	}
	if err := base(Network{Name: "m", ModelDropRate: 0.2}).Validate(); err == nil {
		t.Fatal("in-process network with modelDropRate accepted")
	}
	if err := base(Network{Name: "m", ModelRecoup: "stale"}).Validate(); err == nil {
		t.Fatal("in-process network with modelRecoup accepted")
	}
	if err := base(Network{Name: "m", Backend: "udp", ModelDropRate: 1.0}).Validate(); err == nil {
		t.Fatal("modelDropRate 1.0 accepted")
	}
	if err := base(Network{Name: "m", Backend: "udp", ModelDropRate: -0.1}).Validate(); err == nil {
		t.Fatal("negative modelDropRate accepted")
	}
	if err := base(Network{Name: "m", Backend: "udp", ModelRecoup: "retransmit"}).Validate(); err == nil {
		t.Fatal("unknown modelRecoup policy accepted")
	}
}
