package scenario

import (
	"bytes"
	"testing"
)

// TestTCPCampaignJSONDeterministic extends the engine's acceptance gate to
// the socket-distributed backend: a campaign whose cells run over real
// localhost TCP connections must still produce byte-identical JSON across
// repeated executions and across serial vs parallel pools. Socket rounds are
// reproducible because gradients are slotted by worker id, worker seeds
// derive from the run seed, and the float64 wire codec is lossless.
func TestTCPCampaignJSONDeterministic(t *testing.T) {
	spec := DistributedSmokeSpec()
	spec.Steps = 8
	spec.EvalEvery = 4

	hasTCP := false
	for _, n := range spec.Networks {
		if n.Backend == "tcp" {
			hasTCP = true
		}
	}
	if !hasTCP {
		t.Fatal("distributed smoke spec has no tcp-backend network")
	}

	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawFirst, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rawSecond, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSecond) {
		t.Fatal("two executions of the tcp-backend spec produced different JSON")
	}

	spec.Parallelism = 1
	serial, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawSerial, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSerial) {
		t.Fatal("serial execution of the tcp-backend spec differs from parallel execution")
	}

	// The perfect-network parity guarantee at campaign level: for every
	// (gar, attack, seed) cell the tcp backend's numbers must equal the
	// in-process backend's — same seeds, same gradients, same trajectory.
	byCell := map[string]Result{}
	for _, res := range first.Results {
		if res.Run.Network.Name == "in-process" {
			key := res.Run.GAR + "/" + res.Run.Attack
			byCell[key] = res
		}
	}
	compared := 0
	for _, res := range first.Results {
		if res.Run.Network.Backend != "tcp" {
			continue
		}
		ref, ok := byCell[res.Run.GAR+"/"+res.Run.Attack]
		if !ok {
			t.Fatalf("no in-process twin for %s", res.Run.ID)
		}
		if res.Error != ref.Error {
			t.Fatalf("%s: error %q vs in-process %q", res.Run.ID, res.Error, ref.Error)
		}
		if res.FinalAccuracy != ref.FinalAccuracy || res.FinalLoss != ref.FinalLoss {
			t.Fatalf("%s: accuracy/loss (%v, %v) diverged from in-process twin (%v, %v)",
				res.Run.ID, res.FinalAccuracy, res.FinalLoss, ref.FinalAccuracy, ref.FinalLoss)
		}
		if res.StepsToThreshold != ref.StepsToThreshold || res.Diverged != ref.Diverged ||
			res.SkippedRounds != ref.SkippedRounds {
			t.Fatalf("%s: readouts diverged from in-process twin", res.Run.ID)
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no tcp cells compared")
	}
}
