package scenario

import (
	"bytes"
	"strings"
	"testing"
)

// TestWireCampaignJSONDeterministic extends the byte-reproducibility gate to
// the wire-format axis: a campaign sweeping float64 and float32 udp cells —
// perfect and lossy — must produce byte-identical JSON across executions,
// the float32 knob must actually reach the wire (a float32 cell differs
// from its float64 twin in the loss readout), and the summary must carry
// the wire-format delta section.
func TestWireCampaignJSONDeterministic(t *testing.T) {
	spec := WireSmokeSpec()
	spec.Steps = 8
	spec.EvalEvery = 4

	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawFirst, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rawSecond, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSecond) {
		t.Fatal("two executions of the wire-format spec produced different JSON")
	}

	// The float32 knob must be live: a perfect-link float32 cell and its
	// float64 twin share the seed and the drop schedule, so any difference
	// is the coordinate rounding — and there must be one somewhere, or the
	// axis is silently ignored.
	byCell := map[string]Result{}
	for _, res := range first.Results {
		if res.Run.Network.Name == "udp-f64" {
			byCell[res.Run.GAR+"/"+res.Run.Attack] = res
		}
	}
	compared, differs := 0, false
	for _, res := range first.Results {
		if res.Run.Network.Name != "udp-f32" {
			continue
		}
		ref, ok := byCell[res.Run.GAR+"/"+res.Run.Attack]
		if !ok {
			t.Fatalf("no float64 twin for %s", res.Run.ID)
		}
		if res.Error != "" || ref.Error != "" {
			t.Fatalf("%s: unexpected error (%q / %q)", res.Run.ID, res.Error, ref.Error)
		}
		if res.FinalLoss != ref.FinalLoss || res.FinalAccuracy != ref.FinalAccuracy {
			differs = true
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no float32 cells compared")
	}
	if !differs {
		t.Fatal("every float32 cell equals its float64 twin bit-for-bit; the wire-format axis is not reaching the wire")
	}

	summary := first.Summary()
	if !strings.Contains(summary, "== wire formats ==") {
		t.Fatalf("summary missing the wire-format delta section:\n%s", summary)
	}
	if !strings.Contains(summary, "udp-f32") || !strings.Contains(summary, "float32") {
		t.Fatalf("wire-format section missing the float32 rows:\n%s", summary)
	}
}

// TestNetworkValidationWireFormat pins the wire-format validation surface:
// float32 needs a lossy wire (udp backend or in-memory udpLinks), float64
// and the empty default are accepted everywhere, unknown names fail.
func TestNetworkValidationWireFormat(t *testing.T) {
	base := func(n Network) *Spec {
		s := Spec{Networks: []Network{n}}
		s.ApplyDefaults()
		return &s
	}
	if err := base(Network{Name: "u", Backend: "udp", WireFormat: "float32"}).Validate(); err != nil {
		t.Fatalf("float32 on the udp backend rejected: %v", err)
	}
	if err := base(Network{Name: "p", UDPLinks: -1, WireFormat: "float32"}).Validate(); err != nil {
		t.Fatalf("float32 on in-memory lossy pipes rejected: %v", err)
	}
	if err := base(Network{Name: "i", WireFormat: "float64"}).Validate(); err != nil {
		t.Fatalf("explicit float64 default rejected: %v", err)
	}
	if err := base(Network{Name: "i", WireFormat: "float32"}).Validate(); err == nil {
		t.Fatal("float32 without a lossy wire accepted")
	}
	if err := base(Network{Name: "t", Backend: "tcp", WireFormat: "float32"}).Validate(); err == nil {
		t.Fatal("float32 on the tcp backend accepted")
	}
	if err := base(Network{Name: "x", Backend: "udp", WireFormat: "float16"}).Validate(); err == nil {
		t.Fatal("unknown wire format accepted")
	}
}
