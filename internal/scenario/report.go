package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// JSON renders the campaign as indented JSON. The encoding is deterministic:
// structs marshal in field order, results are in expansion order, and every
// numeric field is a pure function of the spec and seeds — two executions of
// the same spec produce byte-identical output.
func (c *Campaign) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding campaign: %w", err)
	}
	return append(out, '\n'), nil
}

// garStanding aggregates one rule's runs under one attack.
type garStanding struct {
	gar       string
	runs      int
	errored   int
	diverged  int
	skipped   int
	accSum    float64
	worstAcc  float64
	aggNSSum  int64
	reachedTh int
}

// mean returns the mean final accuracy over scored (non-errored) runs.
func (g *garStanding) mean() float64 {
	n := g.runs - g.errored
	if n <= 0 {
		return math.Inf(-1) // rules with no feasible run rank last
	}
	return g.accSum / float64(n)
}

// Summary renders the human-readable campaign digest: for every attack a
// table ranking the aggregation rules by mean final accuracy across clusters,
// networks and seeds (a diverged run scores its recorded accuracy, typically
// the pre-divergence evaluation; an infeasible run is excluded and counted).
func (c *Campaign) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q: %d runs (%d GARs x %d attacks x %d clusters x %d networks x %d seeds)\n",
		c.Spec.Name, len(c.Results),
		len(c.Spec.GARs), len(c.Spec.Attacks), len(c.Spec.Clusters), len(c.Spec.Networks), len(c.Spec.Seeds))
	fmt.Fprintf(&b, "experiment %s, %d steps, batch %d, accuracy threshold %.2f\n",
		c.Spec.Experiment, c.Spec.Steps, c.Spec.Batch, c.Spec.Threshold)

	for _, atk := range c.Spec.Attacks {
		standings := map[string]*garStanding{}
		for _, res := range c.Results {
			if res.Run.Attack != atk {
				continue
			}
			st, ok := standings[res.Run.GAR]
			if !ok {
				st = &garStanding{gar: res.Run.GAR, worstAcc: math.Inf(1)}
				standings[res.Run.GAR] = st
			}
			st.runs++
			if res.Error != "" {
				st.errored++
				continue
			}
			st.accSum += res.FinalAccuracy
			if res.FinalAccuracy < st.worstAcc {
				st.worstAcc = res.FinalAccuracy
			}
			if res.Diverged {
				st.diverged++
			}
			st.skipped += res.SkippedRounds
			st.aggNSSum += res.AggTimePerRoundNS
			if res.StepsToThreshold >= 0 {
				st.reachedTh++
			}
		}
		if len(standings) == 0 {
			continue
		}
		ranked := make([]*garStanding, 0, len(standings))
		for _, st := range standings {
			ranked = append(ranked, st)
		}
		sort.Slice(ranked, func(i, j int) bool {
			mi, mj := ranked[i].mean(), ranked[j].mean()
			if mi != mj {
				return mi > mj
			}
			return ranked[i].gar < ranked[j].gar
		})
		fmt.Fprintf(&b, "\n== attack: %s ==\n", atk)
		fmt.Fprintf(&b, "%-4s %-24s %10s %10s %9s %8s %8s %12s\n",
			"rank", "gar", "mean-acc", "worst-acc", "reach-th", "diverge", "skipped", "agg-ms/rnd")
		for i, st := range ranked {
			scored := st.runs - st.errored
			meanAcc, worst := "-", "-"
			aggMS := "-"
			if scored > 0 {
				meanAcc = fmt.Sprintf("%.4f", st.mean())
				worst = fmt.Sprintf("%.4f", st.worstAcc)
				aggMS = fmt.Sprintf("%.3f", float64(st.aggNSSum)/float64(scored)/1e6)
			}
			fmt.Fprintf(&b, "%-4d %-24s %10s %10s %6d/%-2d %8d %8d %12s\n",
				i+1, st.gar, meanAcc, worst,
				st.reachedTh, scored, st.diverged, st.skipped, aggMS)
			if st.errored > 0 {
				fmt.Fprintf(&b, "     %-24s (%d infeasible run(s) excluded)\n", "", st.errored)
			}
		}
	}

	if errs := c.errorLines(); len(errs) > 0 {
		fmt.Fprintf(&b, "\n== infeasible runs ==\n")
		for _, line := range errs {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// errorLines lists errored runs in expansion order.
func (c *Campaign) errorLines() []string {
	var out []string
	for _, res := range c.Results {
		if res.Error != "" {
			out = append(out, fmt.Sprintf("%s: %s", res.Run.ID, res.Error))
		}
	}
	return out
}
