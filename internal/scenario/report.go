package scenario

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// JSON renders the campaign as indented JSON. The encoding is deterministic:
// structs marshal in field order, results are in expansion order, and every
// numeric field is a pure function of the spec and seeds — two executions of
// the same spec produce byte-identical output.
func (c *Campaign) JSON() ([]byte, error) {
	out, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: encoding campaign: %w", err)
	}
	return append(out, '\n'), nil
}

// garStanding aggregates one rule's runs under one attack.
type garStanding struct {
	gar       string
	runs      int
	errored   int
	diverged  int
	skipped   int
	accSum    float64
	worstAcc  float64
	aggNSSum  int64
	reachedTh int
}

// mean returns the mean final accuracy over scored (non-errored) runs.
func (g *garStanding) mean() float64 {
	n := g.runs - g.errored
	if n <= 0 {
		return math.Inf(-1) // rules with no feasible run rank last
	}
	return g.accSum / float64(n)
}

// Summary renders the human-readable campaign digest: for every attack a
// table ranking the aggregation rules by mean final accuracy across clusters,
// networks and seeds (a diverged run scores its recorded accuracy, typically
// the pre-divergence evaluation; an infeasible run is excluded and counted).
func (c *Campaign) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q: %d runs (%d GARs x %d attacks x %d clusters x %d networks x %d seeds)\n",
		c.Spec.Name, len(c.Results),
		len(c.Spec.GARs), len(c.Spec.Attacks), len(c.Spec.Clusters), len(c.Spec.Networks), len(c.Spec.Seeds))
	fmt.Fprintf(&b, "experiment %s, %d steps, batch %d, accuracy threshold %.2f\n",
		c.Spec.Experiment, c.Spec.Steps, c.Spec.Batch, c.Spec.Threshold)

	for _, atk := range c.Spec.Attacks {
		standings := map[string]*garStanding{}
		// ranked is built in first-seen order (which follows the
		// deterministic expansion order of c.Results), never by ranging
		// the standings map, so the stable sort below starts from a
		// reproducible permutation.
		var ranked []*garStanding
		for _, res := range c.Results {
			if res.Run.Attack != atk {
				continue
			}
			st, ok := standings[res.Run.GAR]
			if !ok {
				st = &garStanding{gar: res.Run.GAR, worstAcc: math.Inf(1)}
				standings[res.Run.GAR] = st
				ranked = append(ranked, st)
			}
			st.runs++
			if res.Error != "" {
				st.errored++
				continue
			}
			st.accSum += res.FinalAccuracy
			if res.FinalAccuracy < st.worstAcc {
				st.worstAcc = res.FinalAccuracy
			}
			if res.Diverged {
				st.diverged++
			}
			st.skipped += res.SkippedRounds
			st.aggNSSum += res.AggTimePerRoundNS
			if res.StepsToThreshold >= 0 {
				st.reachedTh++
			}
		}
		if len(ranked) == 0 {
			continue
		}
		sort.SliceStable(ranked, func(i, j int) bool {
			mi, mj := ranked[i].mean(), ranked[j].mean()
			if mi != mj {
				return mi > mj
			}
			return ranked[i].gar < ranked[j].gar
		})
		fmt.Fprintf(&b, "\n== attack: %s ==\n", atk)
		fmt.Fprintf(&b, "%-4s %-24s %10s %10s %9s %8s %8s %12s\n",
			"rank", "gar", "mean-acc", "worst-acc", "reach-th", "diverge", "skipped", "agg-ms/rnd")
		for i, st := range ranked {
			scored := st.runs - st.errored
			meanAcc, worst := "-", "-"
			aggMS := "-"
			if scored > 0 {
				meanAcc = fmt.Sprintf("%.4f", st.mean())
				worst = fmt.Sprintf("%.4f", st.worstAcc)
				aggMS = fmt.Sprintf("%.3f", float64(st.aggNSSum)/float64(scored)/1e6)
			}
			fmt.Fprintf(&b, "%-4d %-24s %10s %10s %6d/%-2d %8d %8d %12s\n",
				i+1, st.gar, meanAcc, worst,
				st.reachedTh, scored, st.diverged, st.skipped, aggMS)
			if st.errored > 0 {
				fmt.Fprintf(&b, "     %-24s (%d infeasible run(s) excluded)\n", "", st.errored)
			}
		}
	}

	if wire := c.wireSection(); wire != "" {
		b.WriteString(wire)
	}

	if async := c.asyncSection(); async != "" {
		b.WriteString(async)
	}

	if churn := c.churnSection(); churn != "" {
		b.WriteString(churn)
	}

	if errs := c.errorLines(); len(errs) > 0 {
		fmt.Fprintf(&b, "\n== infeasible runs ==\n")
		for _, line := range errs {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	return b.String()
}

// wireSection renders the wire-format accuracy-delta digest: networks that
// are identical in every condition except name and coordinate width are
// paired, and for each pair group the mean final accuracy per format is
// printed with its delta against the group's float64 baseline — the
// accuracy price of halving the gradient bytes, read straight off the
// campaign. Groups with fewer than two formats are omitted; the section
// disappears entirely when the spec sweeps a single wire format.
func (c *Campaign) wireSection() string {
	// Group networks by their condition modulo Name/WireFormat. Marshalling
	// the stripped struct gives a canonical key (struct field order).
	groups := map[string][]Network{}
	var order []string
	for _, n := range c.Spec.Networks {
		stripped := n
		stripped.Name = ""
		stripped.WireFormat = ""
		raw, err := json.Marshal(stripped)
		if err != nil {
			return ""
		}
		key := string(raw)
		if _, ok := groups[key]; !ok {
			order = append(order, key)
		}
		groups[key] = append(groups[key], n)
	}

	var b strings.Builder
	for _, key := range order {
		nets := groups[key]
		formats := map[string]bool{}
		for _, n := range nets {
			formats[wireName(n.WireFormat)] = true
		}
		if len(formats) < 2 {
			continue
		}
		if b.Len() == 0 {
			fmt.Fprintf(&b, "\n== wire formats ==\n")
			fmt.Fprintf(&b, "%-24s %-10s %10s %10s %6s\n", "network", "wire", "mean-acc", "delta", "runs")
		}
		baseline := math.NaN()
		for _, n := range nets {
			if wireName(n.WireFormat) == "float64" {
				baseline, _ = c.networkMeanAccuracy(n.Name)
				break
			}
		}
		for _, n := range nets {
			mean, scored := c.networkMeanAccuracy(n.Name)
			meanStr, deltaStr := "-", "-"
			if scored > 0 {
				meanStr = fmt.Sprintf("%.4f", mean)
				if wireName(n.WireFormat) != "float64" && !math.IsNaN(baseline) {
					deltaStr = fmt.Sprintf("%+.4f", mean-baseline)
				}
			}
			fmt.Fprintf(&b, "%-24s %-10s %10s %10s %6d\n",
				n.Name, wireName(n.WireFormat), meanStr, deltaStr, scored)
		}
	}
	return b.String()
}

// asyncSection renders the asynchronous-round digest: for every network cell
// with quorum/staleness/slowWorkers set, the effective round rate against the
// simulated clock plus the staleness bookkeeping — gradients admitted stale,
// slots dropped as too stale, and rounds lost to the quorum gate — summed
// over the cell's runs. Reading the rounds/sec column across a lockstep-slow
// cell and its quorum twin is the straggler contrast the mode exists to show.
// The section disappears when no network runs asynchronously.
func (c *Campaign) asyncSection() string {
	var b strings.Builder
	for _, n := range c.Spec.Networks {
		if !n.asyncEnabled() {
			continue
		}
		var rpsSum float64
		var admitted, dropped, skipped, scored int
		for _, res := range c.Results {
			if res.Run.Network.Name != n.Name || res.Error != "" {
				continue
			}
			scored++
			rpsSum += res.RoundsPerSec
			admitted += res.AdmittedStale
			dropped += res.DroppedTooStale
			skipped += res.SkippedRounds
		}
		if b.Len() == 0 {
			fmt.Fprintf(&b, "\n== asynchronous rounds ==\n")
			fmt.Fprintf(&b, "%-24s %7s %3s %6s %10s %9s %9s %8s %6s\n",
				"network", "quorum", "tau", "slow", "rounds/s", "adm-stale", "too-stale", "skipped", "runs")
		}
		quorum := "all"
		if n.Quorum > 0 {
			quorum = fmt.Sprintf("%d", n.Quorum)
		}
		rps := "-"
		if scored > 0 {
			rps = fmt.Sprintf("%.2f", rpsSum/float64(scored))
		}
		fmt.Fprintf(&b, "%-24s %7s %3d %6.2f %10s %9d %9d %8d %6d\n",
			n.Name, quorum, n.Staleness, n.SlowWorkers, rps, admitted, dropped, skipped, scored)
	}
	return b.String()
}

// churnSection renders the worker-churn digest: for every network cell with
// a churn schedule, the crash/rejoin/reconnect bookkeeping plus the rounds
// skipped below the GAR's resilience bound, summed over the cell's runs.
// Every number is a pure function of the seed — reruns print this section
// byte-identically. The section disappears when no network churns.
func (c *Campaign) churnSection() string {
	var b strings.Builder
	for _, n := range c.Spec.Networks {
		if !n.churnEnabled() {
			continue
		}
		var crashes, rejoins, attempts, below, scored int
		for _, res := range c.Results {
			if res.Run.Network.Name != n.Name || res.Error != "" {
				continue
			}
			scored++
			crashes += res.Crashes
			rejoins += res.Rejoins
			attempts += res.ReconnectAttempts
			below += res.BelowBoundRounds
		}
		if b.Len() == 0 {
			fmt.Fprintf(&b, "\n== worker churn ==\n")
			fmt.Fprintf(&b, "%-24s %6s %5s %8s %8s %8s %9s %12s %6s\n",
				"network", "rate", "down", "max-rej", "crashes", "rejoined", "redials", "below-bound", "runs")
		}
		fmt.Fprintf(&b, "%-24s %6.2f %5d %8d %8d %8d %9d %12d %6d\n",
			n.Name, n.Churn.Rate, n.Churn.DownSteps, n.Churn.MaxRejoins,
			crashes, rejoins, attempts, below, scored)
	}
	return b.String()
}

// wireName canonicalises the wire-format label ("" means float64).
func wireName(w string) string {
	if w == "" {
		return "float64"
	}
	return w
}

// networkMeanAccuracy returns the mean final accuracy over the scored
// (non-errored) runs of one network condition, and how many were scored.
func (c *Campaign) networkMeanAccuracy(network string) (float64, int) {
	var sum float64
	var n int
	for _, res := range c.Results {
		if res.Run.Network.Name != network || res.Error != "" {
			continue
		}
		sum += res.FinalAccuracy
		n++
	}
	if n == 0 {
		return math.NaN(), 0
	}
	return sum / float64(n), n
}

// errorLines lists errored runs in expansion order.
func (c *Campaign) errorLines() []string {
	var out []string
	for _, res := range c.Results {
		if res.Error != "" {
			out = append(out, fmt.Sprintf("%s: %s", res.Run.ID, res.Error))
		}
	}
	return out
}
