package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"aggregathor/internal/ps"
)

// churnReplay recomputes one churn cell's campaign counters straight from the
// schedule: crashes, admitted rejoins, and rounds whose scheduled participant
// count sits below minWorkers (0 = no bound). The engine's numbers must equal
// this pure function of the seed exactly.
func churnReplay(churn ps.ChurnConfig, seed int64, steps, workers, minWorkers int) (crashes, rejoins, below int) {
	for s := 0; s < steps; s++ {
		part := 0
		for w := 0; w < workers; w++ {
			switch churn.Phase(seed, s, w) {
			case ps.ChurnCrash:
				crashes++
			case ps.ChurnRejoin:
				rejoins++
				part++
			case ps.ChurnLive:
				part++
			}
		}
		if minWorkers > 0 && part < minWorkers {
			below++
		}
	}
	return crashes, rejoins, below
}

// TestChurnCampaignJSONDeterministic is the campaign acceptance gate for
// worker churn: the churn-smoke spec — steady in-process baseline, the
// crash/rejoin schedule on both socket backends, and a lossy-uplink churn
// cell — must produce byte-identical JSON across repeated executions and
// across serial vs parallel pools; every churn counter must equal the
// independent schedule replay exactly; steady cells must surface no churn
// numbers; and the loss-free tcp and udp churn cells of one (gar, attack)
// pair must report identical rows (the schedule lives in the seed, not in
// socket timing).
func TestChurnCampaignJSONDeterministic(t *testing.T) {
	spec := ChurnSmokeSpec()
	spec.Steps = 12
	spec.EvalEvery = 6

	first, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawFirst, err := first.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rawSecond, err := second.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSecond) {
		t.Fatal("two executions of the churn-smoke spec produced different JSON")
	}
	spec.Parallelism = 1
	serial, err := Execute(spec)
	if err != nil {
		t.Fatal(err)
	}
	rawSerial, err := serial.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawFirst, rawSerial) {
		t.Fatal("serial execution of the churn-smoke spec differs from parallel execution")
	}

	// Counter semantics. Steady cells report nothing; every churn cell's
	// crash/rejoin/reconnect/below-bound counters equal the schedule replay.
	// The below-bound count is GAR-dependent: multi-krum f=1 enforces
	// n >= 2f+3 = 5 live workers, median has no resilience bound.
	minWorkers := map[string]int{"multi-krum": 5, "median": 0}
	churnRuns := 0
	for _, res := range first.Results {
		if res.Error != "" {
			t.Fatalf("%s: cell failed: %s", res.Run.ID, res.Error)
		}
		if res.Run.Network.Churn == nil {
			if res.Crashes != 0 || res.Rejoins != 0 || res.ReconnectAttempts != 0 || res.BelowBoundRounds != 0 {
				t.Fatalf("%s: steady cell surfaced churn counters: crashes=%d rejoins=%d attempts=%d below=%d",
					res.Run.ID, res.Crashes, res.Rejoins, res.ReconnectAttempts, res.BelowBoundRounds)
			}
			continue
		}
		churnRuns++
		churn := res.Run.Network.churnConfig()
		minW, ok := minWorkers[res.Run.GAR]
		if !ok {
			t.Fatalf("%s: no expected resilience bound for GAR %q", res.Run.ID, res.Run.GAR)
		}
		crashes, rejoins, below := churnReplay(churn, res.Run.Seed, spec.Steps, res.Run.Cluster.Workers, minW)
		if crashes == 0 || rejoins == 0 {
			t.Fatalf("dead fixture: schedule has %d crashes / %d rejoins in %d steps", crashes, rejoins, spec.Steps)
		}
		if res.Crashes != crashes || res.Rejoins != rejoins || res.BelowBoundRounds != below {
			t.Fatalf("%s: counters diverge from schedule replay: crashes %d (want %d), rejoins %d (want %d), below-bound %d (want %d)",
				res.Run.ID, res.Crashes, crashes, res.Rejoins, rejoins, res.BelowBoundRounds, below)
		}
		if res.ReconnectAttempts != res.Rejoins {
			t.Fatalf("%s: %d reconnect attempts for %d rejoins; the backoff ladder should land first-dial on loopback",
				res.Run.ID, res.ReconnectAttempts, res.Rejoins)
		}
	}
	if churnRuns == 0 {
		t.Fatal("churn-smoke campaign executed no churn cells")
	}

	// The loss-free churn cells must agree across backends row-for-row.
	type row struct {
		acc                              float64
		crashes, rejoins, attempts, below int
	}
	byBackend := map[string]map[string]row{}
	for _, res := range first.Results {
		n := res.Run.Network.Name
		if n != "churn-tcp" && n != "churn-udp" {
			continue
		}
		key := res.Run.GAR + "/" + res.Run.Attack
		if byBackend[key] == nil {
			byBackend[key] = map[string]row{}
		}
		byBackend[key][n] = row{res.FinalAccuracy, res.Crashes, res.Rejoins, res.ReconnectAttempts, res.BelowBoundRounds}
	}
	for key, cells := range byBackend {
		if len(cells) != 2 {
			t.Fatalf("%s: expected both loss-free churn backends, got %v", key, cells)
		}
		if cells["churn-tcp"] != cells["churn-udp"] {
			t.Fatalf("%s: churn cells diverge across backends: tcp %+v vs udp %+v", key, cells["churn-tcp"], cells["churn-udp"])
		}
	}
}

// TestChurnZeroRateBitParity pins the no-op guarantee of the churn axis: a
// network cell carrying an explicit churn block with rate 0 must reproduce
// the result rows of the identical cell without any churn block, byte for
// byte — on the plain udp cells and on the asynchronous cells alike. This is
// what lets churn ride into existing campaign specs without perturbing their
// recorded trajectories.
func TestChurnZeroRateBitParity(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec func() Spec
	}{
		{"udp-smoke", UDPSmokeSpec},
		{"async-smoke", AsyncSmokeSpec},
	} {
		t.Run(tc.name, func(t *testing.T) {
			base := tc.spec()
			base.Steps = 6
			base.EvalEvery = 3
			withZero := tc.spec()
			withZero.Steps = 6
			withZero.EvalEvery = 3
			for i := range withZero.Networks {
				withZero.Networks[i].Churn = &Churn{Rate: 0}
			}
			plain, err := Execute(base)
			if err != nil {
				t.Fatal(err)
			}
			zeroed, err := Execute(withZero)
			if err != nil {
				t.Fatal(err)
			}
			// The spec echo necessarily differs (one carries churn blocks);
			// the results must not. Strip the echoed network from each row so
			// the comparison is about trajectories and counters only.
			strip := func(c *Campaign) []byte {
				rows := make([]Result, len(c.Results))
				copy(rows, c.Results)
				for i := range rows {
					rows[i].Run.Network.Churn = nil
				}
				raw, err := json.Marshal(rows)
				if err != nil {
					t.Fatal(err)
				}
				return raw
			}
			if !bytes.Equal(strip(plain), strip(zeroed)) {
				t.Fatalf("%s: churn rate 0 perturbed the campaign results", tc.name)
			}
		})
	}
}

// TestNetworkValidationChurn pins the churn validation surface: the schedule
// needs a socket backend, refuses to compose with asynchronous rounds, lossy
// model broadcasts and informed attacks, and half-disabled blocks fail
// loudly.
func TestNetworkValidationChurn(t *testing.T) {
	// The default attack sweep includes informed attacks, which churn rejects
	// by design — pin a blind sweep so these cases probe the network axis.
	base := func(n Network) *Spec {
		s := Spec{Networks: []Network{n}, Attacks: []string{AttackNone}}
		s.ApplyDefaults()
		return &s
	}
	valid := Churn{Rate: 0.05, DownSteps: 2, MaxRejoins: 2}
	if err := base(Network{Name: "a", Backend: "tcp", Churn: &valid}).Validate(); err != nil {
		t.Fatalf("valid tcp churn network rejected: %v", err)
	}
	if err := base(Network{Name: "a", Backend: "udp", Churn: &valid, DropRate: 0.1, Recoup: "fill-random"}).Validate(); err != nil {
		t.Fatalf("valid lossy-uplink churn network rejected: %v", err)
	}
	if err := base(Network{Name: "a", Churn: &valid}).Validate(); err == nil {
		t.Fatal("churn on the in-process backend accepted")
	}
	err := base(Network{Name: "a", Backend: "tcp", Churn: &valid, Quorum: 6, Staleness: 2}).Validate()
	if !errors.Is(err, ps.ErrChurnAsync) {
		t.Fatalf("churn composed with async rounds: got %v, want ErrChurnAsync", err)
	}
	err = base(Network{Name: "a", Backend: "udp", Churn: &valid, ModelDropRate: 0.1}).Validate()
	if !errors.Is(err, ps.ErrChurnModelLoss) {
		t.Fatalf("churn composed with lossy model broadcasts: got %v, want ErrChurnModelLoss", err)
	}
	err = base(Network{Name: "a", Backend: "udp", Churn: &valid, ModelRecoup: "stale"}).Validate()
	if !errors.Is(err, ps.ErrChurnModelLoss) {
		t.Fatalf("churn composed with the stale model recoup: got %v, want ErrChurnModelLoss", err)
	}
	if err := base(Network{Name: "a", Backend: "tcp", Churn: &Churn{Rate: 1.0, DownSteps: 2, MaxRejoins: 2}}).Validate(); err == nil {
		t.Fatal("churn rate 1.0 accepted")
	}
	if err := base(Network{Name: "a", Backend: "tcp", Churn: &Churn{Rate: 0.05}}).Validate(); err == nil {
		t.Fatal("churn without downSteps accepted")
	}
	if err := base(Network{Name: "a", Backend: "tcp", Churn: &Churn{DownSteps: 2}}).Validate(); err == nil {
		t.Fatal("half-disabled churn block (downSteps without rate) accepted")
	}
	// Informed attacks recompute honest gradients from the seed; the churn
	// schedule breaks that oracle, so the sweep combination is rejected at
	// the spec level before any cell runs.
	s := Spec{
		Networks: []Network{{Name: "a", Backend: "tcp", Churn: &valid}},
		Attacks:  []string{AttackNone, "omniscient"},
	}
	s.ApplyDefaults()
	if err := s.Validate(); err == nil {
		t.Fatal("informed attack swept against a churn network accepted")
	}
	blind := Spec{
		Networks: []Network{{Name: "a", Backend: "tcp", Churn: &valid}},
		Attacks:  []string{AttackNone, "reversed"},
	}
	blind.ApplyDefaults()
	if err := blind.Validate(); err != nil {
		t.Fatalf("blind attack swept against a churn network rejected: %v", err)
	}
}
