package scenario

import (
	"strings"
	"testing"

	"aggregathor/internal/attack"
	"aggregathor/internal/gar"
)

func TestApplyDefaultsCoversRegistries(t *testing.T) {
	var s Spec
	s.ApplyDefaults()
	if err := s.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	if len(s.GARs) != len(gar.Names()) {
		t.Errorf("default GAR axis %d rules, registry has %d", len(s.GARs), len(gar.Names()))
	}
	if len(s.Attacks) != len(attack.Names())+1 {
		t.Errorf("default attack axis %d entries, want registry+none = %d",
			len(s.Attacks), len(attack.Names())+1)
	}
	if s.Attacks[0] != AttackNone {
		t.Errorf("default attack axis must lead with the %q baseline, got %q", AttackNone, s.Attacks[0])
	}
	if len(s.Clusters) == 0 || len(s.Networks) == 0 || len(s.Seeds) == 0 {
		t.Fatalf("default axes empty: %+v", s)
	}
}

func TestExpandOrderAndCount(t *testing.T) {
	s := Spec{
		GARs:     []string{"average", "median"},
		Attacks:  []string{AttackNone, "reversed"},
		Clusters: []Cluster{{Workers: 5, F: 1}, {Workers: 7, F: 1}},
		Networks: []Network{{Name: "a"}, {Name: "b"}},
		Seeds:    []int64{1, 2, 3},
	}
	s.ApplyDefaults()
	runs := s.Expand()
	want := 2 * 2 * 2 * 2 * 3
	if len(runs) != want {
		t.Fatalf("expanded %d runs, want %d", len(runs), want)
	}
	for i, r := range runs {
		if r.Index != i {
			t.Fatalf("run %d has index %d", i, r.Index)
		}
	}
	// Seed is the innermost axis, GAR the outermost.
	if runs[0].Seed != 1 || runs[1].Seed != 2 || runs[2].Seed != 3 {
		t.Errorf("seed must vary innermost: %v %v %v", runs[0].Seed, runs[1].Seed, runs[2].Seed)
	}
	if runs[0].GAR != "average" || runs[len(runs)-1].GAR != "median" {
		t.Errorf("GAR must vary outermost: first %q last %q", runs[0].GAR, runs[len(runs)-1].GAR)
	}
	if runs[0].ID != "average/none/n5-f1/a/seed1" {
		t.Errorf("run ID format changed: %q", runs[0].ID)
	}
}

func TestValidateRejections(t *testing.T) {
	base := func() Spec {
		s := Spec{}
		s.ApplyDefaults()
		return s
	}
	cases := map[string]func(*Spec){
		"unknown gar":       func(s *Spec) { s.GARs = []string{"nope"} },
		"unknown attack":    func(s *Spec) { s.Attacks = []string{"nope"} },
		"zero workers":      func(s *Spec) { s.Clusters = []Cluster{{Workers: 0}} },
		"f >= n":            func(s *Spec) { s.Clusters = []Cluster{{Workers: 3, F: 3}} },
		"unnamed network":   func(s *Spec) { s.Networks = []Network{{}} },
		"duplicate network": func(s *Spec) { s.Networks = []Network{{Name: "x"}, {Name: "x"}} },
		"drop rate 1":       func(s *Spec) { s.Networks = []Network{{Name: "x", DropRate: 1}} },
		"bad recoup":        func(s *Spec) { s.Networks = []Network{{Name: "x", Recoup: "nope"}} },
		"bad protocol":      func(s *Spec) { s.Networks = []Network{{Name: "x", Protocol: "quic"}} },
		"negative rtt":      func(s *Spec) { s.Networks = []Network{{Name: "x", RTTMicros: -1}} },
		"bad experiment":    func(s *Spec) { s.Experiment = "nope" },
		"bad optimizer":     func(s *Spec) { s.Optimizer = "nope" },
	}
	for name, mutate := range cases {
		s := base()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	if _, err := ParseSpec([]byte(`{"gars": ["average"], "atacks": ["random"]}`)); err == nil {
		t.Fatal("typoed field accepted")
	}
	s, err := ParseSpec([]byte(`{
		"name": "mini",
		"gars": ["average"],
		"attacks": ["none"],
		"clusters": [{"workers": 5, "f": 1}],
		"networks": [{"name": "in-process"}],
		"seeds": [7],
		"steps": 2, "batch": 4
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "mini" || s.Seeds[0] != 7 || s.Optimizer != "rmsprop" {
		t.Fatalf("parsed spec %+v", s)
	}
}

func TestExecuteRecordsInfeasibleRuns(t *testing.T) {
	s := Spec{
		GARs:     []string{"bulyan"},
		Attacks:  []string{AttackNone},
		Clusters: []Cluster{{Workers: 7, F: 2}}, // bulyan needs 4f+3 = 11
		Networks: []Network{{Name: "in-process"}},
		Steps:    2,
		Batch:    4,
	}
	c, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Results) != 1 {
		t.Fatalf("got %d results", len(c.Results))
	}
	if c.Results[0].Error == "" {
		t.Fatal("infeasible bulyan run must record an error")
	}
	if !strings.Contains(c.Summary(), "infeasible") {
		t.Error("summary must surface infeasible runs")
	}
}

func TestExecuteSmallCampaignLearns(t *testing.T) {
	s := Spec{
		Name:      "learns",
		GARs:      []string{"multi-krum"},
		Attacks:   []string{AttackNone, "reversed"},
		Clusters:  []Cluster{{Workers: 11, F: 2}},
		Networks:  []Network{{Name: "in-process"}},
		Seeds:     []int64{1},
		Steps:     40,
		Batch:     32,
		LR:        5e-3,
		EvalEvery: 10,
		Threshold: 0.2,
	}
	c, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range c.Results {
		if res.Error != "" {
			t.Fatalf("%s: %v", res.Run.ID, res.Error)
		}
		if res.AggTimePerRoundNS <= 0 || res.RoundTimeNS <= res.AggTimePerRoundNS {
			t.Errorf("%s: implausible timing agg=%dns round=%dns",
				res.Run.ID, res.AggTimePerRoundNS, res.RoundTimeNS)
		}
	}
	baseline := c.Results[0]
	if baseline.Run.Attack != AttackNone {
		t.Fatalf("expansion order changed: first run %q", baseline.Run.ID)
	}
	if baseline.FinalAccuracy < 0.15 {
		t.Errorf("honest multi-krum run failed to learn: accuracy %.3f", baseline.FinalAccuracy)
	}
	if baseline.StepsToThreshold < 0 {
		t.Errorf("honest run never reached threshold; accuracy %.3f", baseline.FinalAccuracy)
	}
	if baseline.SimTimeToThresholdNS <= 0 {
		t.Errorf("threshold sim time not recorded: %d", baseline.SimTimeToThresholdNS)
	}
}

func TestSummaryRanksPerAttack(t *testing.T) {
	s := Spec{
		GARs:     []string{"average", "median"},
		Attacks:  []string{AttackNone, "random"},
		Clusters: []Cluster{{Workers: 5, F: 1}},
		Networks: []Network{{Name: "in-process"}},
		Steps:    4,
		Batch:    8,
	}
	c, err := Execute(s)
	if err != nil {
		t.Fatal(err)
	}
	sum := c.Summary()
	for _, want := range []string{"== attack: none ==", "== attack: random ==", "average", "median", "mean-acc"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
