// Package opt implements the update rules exposed by the original runner's
// --optimizer flag (sgd, momentum via sgd, adadelta, adagrad, adam, rmsprop
// — the paper's default is RMSProp with lr 1e-3) plus the --learning-rate
// schedules (fixed, polynomial, exponential) and L1/L2 regularisation.
//
// An Optimizer consumes the aggregated gradient chosen by the GAR and
// updates the flat parameter vector in place: Equation 2's descent step.
package opt

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"aggregathor/internal/tensor"
)

// Schedule yields the learning rate for a given step.
type Schedule interface {
	// LR returns the learning rate at the given step (0-based).
	LR(step int) float64
}

// Fixed is a constant learning rate.
type Fixed struct{ Rate float64 }

// LR implements Schedule.
func (f Fixed) LR(int) float64 { return f.Rate }

// Polynomial decays from Initial to Final over Steps steps with the given
// Power, then stays at Final (tf.train.polynomial_decay).
type Polynomial struct {
	Initial, Final float64
	Steps          int
	Power          float64
}

// LR implements Schedule.
func (p Polynomial) LR(step int) float64 {
	if p.Steps <= 0 {
		return p.Initial
	}
	s := step
	if s > p.Steps {
		s = p.Steps
	}
	power := p.Power
	if power == 0 {
		power = 1
	}
	frac := 1 - float64(s)/float64(p.Steps)
	return (p.Initial-p.Final)*math.Pow(frac, power) + p.Final
}

// Exponential decays Initial by Rate every DecaySteps steps
// (tf.train.exponential_decay, continuous form).
type Exponential struct {
	Initial    float64
	Rate       float64
	DecaySteps int
}

// LR implements Schedule.
func (e Exponential) LR(step int) float64 {
	if e.DecaySteps <= 0 {
		return e.Initial
	}
	return e.Initial * math.Pow(e.Rate, float64(step)/float64(e.DecaySteps))
}

// Optimizer applies aggregated gradients to the flat parameter vector.
// Implementations keep per-parameter state (moments) sized lazily on first
// Step.
type Optimizer interface {
	// Name returns the registry name.
	Name() string
	// Step updates params in place using grad at the given step index.
	Step(step int, params, grad tensor.Vector)
	// Reset clears accumulated state (fresh training run).
	Reset()
}

// SGD is plain stochastic gradient descent with optional momentum.
type SGD struct {
	Schedule Schedule
	Momentum float64
	velocity tensor.Vector
}

// Name implements Optimizer.
func (s *SGD) Name() string {
	if s.Momentum != 0 {
		return "momentum"
	}
	return "sgd"
}

// Step implements Optimizer.
func (s *SGD) Step(step int, params, grad tensor.Vector) {
	lr := s.Schedule.LR(step)
	if s.Momentum == 0 {
		params.Axpy(-lr, grad)
		return
	}
	if s.velocity == nil {
		s.velocity = tensor.NewVector(params.Dim())
	}
	for i := range params {
		s.velocity[i] = s.Momentum*s.velocity[i] + grad[i]
		params[i] -= lr * s.velocity[i]
	}
}

// Reset implements Optimizer.
func (s *SGD) Reset() { s.velocity = nil }

// RMSProp divides the gradient by a running average of its recent magnitude
// (Tieleman & Hinton 2012) — the paper's evaluation default with lr 1e-3.
type RMSProp struct {
	Schedule Schedule
	Decay    float64 // 0 means 0.9
	Epsilon  float64 // 0 means 1e-10 (the TensorFlow default)
	ms       tensor.Vector
}

// Name implements Optimizer.
func (r *RMSProp) Name() string { return "rmsprop" }

// Step implements Optimizer.
func (r *RMSProp) Step(step int, params, grad tensor.Vector) {
	decay := r.Decay
	if decay == 0 {
		decay = 0.9
	}
	eps := r.Epsilon
	if eps == 0 {
		eps = 1e-10
	}
	if r.ms == nil {
		r.ms = tensor.NewVector(params.Dim())
	}
	lr := r.Schedule.LR(step)
	for i := range params {
		r.ms[i] = decay*r.ms[i] + (1-decay)*grad[i]*grad[i]
		params[i] -= lr * grad[i] / (math.Sqrt(r.ms[i]) + eps)
	}
}

// Reset implements Optimizer.
func (r *RMSProp) Reset() { r.ms = nil }

// Adam is the Kingma & Ba adaptive-moment optimizer.
type Adam struct {
	Schedule     Schedule
	Beta1, Beta2 float64 // 0 means 0.9 / 0.999
	Epsilon      float64 // 0 means 1e-8
	m, v         tensor.Vector
	t            int
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(step int, params, grad tensor.Vector) {
	b1, b2 := a.Beta1, a.Beta2
	if b1 == 0 {
		b1 = 0.9
	}
	if b2 == 0 {
		b2 = 0.999
	}
	eps := a.Epsilon
	if eps == 0 {
		eps = 1e-8
	}
	if a.m == nil {
		a.m = tensor.NewVector(params.Dim())
		a.v = tensor.NewVector(params.Dim())
	}
	a.t++
	lr := a.Schedule.LR(step)
	c1 := 1 - math.Pow(b1, float64(a.t))
	c2 := 1 - math.Pow(b2, float64(a.t))
	for i := range params {
		a.m[i] = b1*a.m[i] + (1-b1)*grad[i]
		a.v[i] = b2*a.v[i] + (1-b2)*grad[i]*grad[i]
		mh := a.m[i] / c1
		vh := a.v[i] / c2
		params[i] -= lr * mh / (math.Sqrt(vh) + eps)
	}
}

// Reset implements Optimizer.
func (a *Adam) Reset() { a.m, a.v, a.t = nil, nil, 0 }

// Adagrad accumulates squared gradients for per-parameter rate adaptation.
type Adagrad struct {
	Schedule Schedule
	Epsilon  float64 // 0 means 1e-10
	accum    tensor.Vector
}

// Name implements Optimizer.
func (a *Adagrad) Name() string { return "adagrad" }

// Step implements Optimizer.
func (a *Adagrad) Step(step int, params, grad tensor.Vector) {
	eps := a.Epsilon
	if eps == 0 {
		eps = 1e-10
	}
	if a.accum == nil {
		a.accum = tensor.NewVector(params.Dim())
	}
	lr := a.Schedule.LR(step)
	for i := range params {
		a.accum[i] += grad[i] * grad[i]
		params[i] -= lr * grad[i] / (math.Sqrt(a.accum[i]) + eps)
	}
}

// Reset implements Optimizer.
func (a *Adagrad) Reset() { a.accum = nil }

// Adadelta is Zeiler's schedule-free variant; Schedule scales the computed
// step (1.0 to match the original formulation).
type Adadelta struct {
	Schedule Schedule
	Rho      float64 // 0 means 0.95
	Epsilon  float64 // 0 means 1e-6
	eg, ex   tensor.Vector
}

// Name implements Optimizer.
func (a *Adadelta) Name() string { return "adadelta" }

// Step implements Optimizer.
func (a *Adadelta) Step(step int, params, grad tensor.Vector) {
	rho := a.Rho
	if rho == 0 {
		rho = 0.95
	}
	eps := a.Epsilon
	if eps == 0 {
		eps = 1e-6
	}
	if a.eg == nil {
		a.eg = tensor.NewVector(params.Dim())
		a.ex = tensor.NewVector(params.Dim())
	}
	lr := a.Schedule.LR(step)
	for i := range params {
		a.eg[i] = rho*a.eg[i] + (1-rho)*grad[i]*grad[i]
		dx := -math.Sqrt(a.ex[i]+eps) / math.Sqrt(a.eg[i]+eps) * grad[i]
		a.ex[i] = rho*a.ex[i] + (1-rho)*dx*dx
		params[i] += lr * dx
	}
}

// Reset implements Optimizer.
func (a *Adadelta) Reset() { a.eg, a.ex = nil, nil }

// Regularize adds the L1/L2 penalty gradients to grad in place, mirroring
// the runner's --l1-regularize / --l2-regularize flags.
func Regularize(grad, params tensor.Vector, l1, l2 float64) {
	if l1 == 0 && l2 == 0 {
		return
	}
	for i := range grad {
		if l2 != 0 {
			grad[i] += 2 * l2 * params[i]
		}
		if l1 != 0 {
			switch {
			case params[i] > 0:
				grad[i] += l1
			case params[i] < 0:
				grad[i] -= l1
			}
		}
	}
}

// ClipNorm rescales grad in place so its L2 norm does not exceed maxNorm
// (no-op for maxNorm <= 0 or already-small gradients). Gradient clipping is
// a standard stabiliser for the steep early phase of training; note it is
// NOT a Byzantine defence — a clipped malicious gradient is still malicious.
func ClipNorm(grad tensor.Vector, maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	norm := grad.Norm()
	if norm > maxNorm {
		grad.Scale(maxNorm / norm)
	}
}

// Factory builds an optimizer from a schedule.
type Factory func(s Schedule) Optimizer

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named optimizer factory; duplicates and empty names panic.
func Register(name string, factory Factory) {
	if name == "" || factory == nil {
		panic("opt: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("opt: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New builds the named optimizer over the given schedule.
func New(name string, s Schedule) (Optimizer, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("opt: unknown optimizer %q (available: %v)", name, Names())
	}
	return factory(s), nil
}

// Names returns the sorted registered optimizer names.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("sgd", func(s Schedule) Optimizer { return &SGD{Schedule: s} })
	Register("momentum", func(s Schedule) Optimizer { return &SGD{Schedule: s, Momentum: 0.9} })
	Register("rmsprop", func(s Schedule) Optimizer { return &RMSProp{Schedule: s} })
	Register("adam", func(s Schedule) Optimizer { return &Adam{Schedule: s} })
	Register("adagrad", func(s Schedule) Optimizer { return &Adagrad{Schedule: s} })
	Register("adadelta", func(s Schedule) Optimizer { return &Adadelta{Schedule: s} })
}
