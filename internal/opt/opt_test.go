package opt

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

// quadratic is the test objective f(x) = ||x - target||²/2, gradient
// x - target: every optimizer must drive x to target.
func quadratic(target tensor.Vector) func(x tensor.Vector) tensor.Vector {
	return func(x tensor.Vector) tensor.Vector {
		g := x.Clone()
		g.Sub(target)
		return g
	}
}

func runOptimizer(o Optimizer, steps int) float64 {
	target := tensor.Vector{3, -2, 0.5}
	grad := quadratic(target)
	x := tensor.Vector{0, 0, 0}
	for s := 0; s < steps; s++ {
		o.Step(s, x, grad(x))
	}
	return tensor.Distance(x, target)
}

func TestAllOptimizersConvergeOnQuadratic(t *testing.T) {
	cases := []struct {
		name  string
		build func() Optimizer
		steps int
		tol   float64
	}{
		{"sgd", func() Optimizer { return &SGD{Schedule: Fixed{0.1}} }, 200, 1e-6},
		{"momentum", func() Optimizer { return &SGD{Schedule: Fixed{0.05}, Momentum: 0.9} }, 300, 1e-6},
		{"rmsprop", func() Optimizer { return &RMSProp{Schedule: Fixed{0.05}} }, 1500, 1e-2},
		{"adam", func() Optimizer { return &Adam{Schedule: Fixed{0.1}} }, 1500, 1e-2},
		{"adagrad", func() Optimizer { return &Adagrad{Schedule: Fixed{0.5}} }, 2000, 1e-2},
		{"adadelta", func() Optimizer { return &Adadelta{Schedule: Fixed{1.0}, Rho: 0.9} }, 4000, 0.2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if dist := runOptimizer(tc.build(), tc.steps); dist > tc.tol {
				t.Fatalf("%s ended %v from optimum (tol %v)", tc.name, dist, tc.tol)
			}
		})
	}
}

func TestSGDStepIsExact(t *testing.T) {
	o := &SGD{Schedule: Fixed{0.5}}
	x := tensor.Vector{1, 2}
	o.Step(0, x, tensor.Vector{2, -4})
	if x[0] != 0 || x[1] != 4 {
		t.Fatalf("got %v, want [0 4]", x)
	}
}

func TestMomentumAccumulates(t *testing.T) {
	o := &SGD{Schedule: Fixed{1}, Momentum: 0.5}
	x := tensor.Vector{0}
	o.Step(0, x, tensor.Vector{1}) // v=1, x=-1
	o.Step(1, x, tensor.Vector{1}) // v=1.5, x=-2.5
	if x[0] != -2.5 {
		t.Fatalf("got %v, want -2.5", x[0])
	}
}

func TestOptimizerReset(t *testing.T) {
	o := &Adam{Schedule: Fixed{0.1}}
	x := tensor.Vector{1}
	o.Step(0, x, tensor.Vector{1})
	o.Reset()
	if o.m != nil || o.v != nil || o.t != 0 {
		t.Fatal("Reset did not clear Adam state")
	}
	s := &SGD{Schedule: Fixed{0.1}, Momentum: 0.9}
	s.Step(0, x, tensor.Vector{1})
	s.Reset()
	if s.velocity != nil {
		t.Fatal("Reset did not clear SGD velocity")
	}
}

func TestFixedSchedule(t *testing.T) {
	s := Fixed{0.01}
	if s.LR(0) != 0.01 || s.LR(1000) != 0.01 {
		t.Fatal("fixed schedule not fixed")
	}
}

func TestPolynomialSchedule(t *testing.T) {
	s := Polynomial{Initial: 1, Final: 0.1, Steps: 100, Power: 1}
	if s.LR(0) != 1 {
		t.Fatalf("LR(0) = %v", s.LR(0))
	}
	if got := s.LR(50); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("LR(50) = %v, want 0.55", got)
	}
	if s.LR(100) != 0.1 {
		t.Fatalf("LR(100) = %v", s.LR(100))
	}
	if s.LR(500) != 0.1 {
		t.Fatalf("LR past end = %v, want clamp at final", s.LR(500))
	}
}

func TestExponentialSchedule(t *testing.T) {
	s := Exponential{Initial: 1, Rate: 0.5, DecaySteps: 10}
	if s.LR(0) != 1 {
		t.Fatalf("LR(0) = %v", s.LR(0))
	}
	if got := s.LR(10); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("LR(10) = %v, want 0.5", got)
	}
	if got := s.LR(20); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("LR(20) = %v, want 0.25", got)
	}
}

func TestScheduleDegenerateSteps(t *testing.T) {
	if (Polynomial{Initial: 2}).LR(5) != 2 {
		t.Fatal("polynomial with Steps=0 should hold initial")
	}
	if (Exponential{Initial: 2}).LR(5) != 2 {
		t.Fatal("exponential with DecaySteps=0 should hold initial")
	}
}

func TestRegularizeL2(t *testing.T) {
	grad := tensor.Vector{0, 0}
	params := tensor.Vector{3, -2}
	Regularize(grad, params, 0, 0.5)
	if grad[0] != 3 || grad[1] != -2 {
		t.Fatalf("L2 grad %v, want [3 -2]", grad)
	}
}

func TestRegularizeL1(t *testing.T) {
	grad := tensor.Vector{0, 0, 0}
	params := tensor.Vector{3, -2, 0}
	Regularize(grad, params, 0.1, 0)
	if grad[0] != 0.1 || grad[1] != -0.1 || grad[2] != 0 {
		t.Fatalf("L1 grad %v", grad)
	}
}

func TestRegularizeNoopWhenZero(t *testing.T) {
	grad := tensor.Vector{1}
	Regularize(grad, tensor.Vector{5}, 0, 0)
	if grad[0] != 1 {
		t.Fatal("zero regularisation must not touch grad")
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{"sgd", "momentum", "rmsprop", "adam", "adagrad", "adadelta"} {
		o, err := New(name, Fixed{0.1})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if o.Name() != name {
			t.Fatalf("Name() = %q, want %q", o.Name(), name)
		}
	}
	if _, err := New("lbfgs", Fixed{1}); err == nil {
		t.Fatal("want error for unknown optimizer")
	}
	if len(Names()) < 6 {
		t.Fatalf("Names() = %v", Names())
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("sgd", func(s Schedule) Optimizer { return &SGD{Schedule: s} })
}

func TestOptimizersAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	grads := make([]tensor.Vector, 50)
	for i := range grads {
		grads[i] = tensor.Vector{rng.NormFloat64(), rng.NormFloat64()}
	}
	for _, name := range Names() {
		run := func() tensor.Vector {
			o, err := New(name, Fixed{0.01})
			if err != nil {
				t.Fatal(err)
			}
			x := tensor.Vector{1, 1}
			for s, g := range grads {
				o.Step(s, x, g)
			}
			return x
		}
		a, b := run(), run()
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("%s is nondeterministic", name)
		}
	}
}

func TestClipNorm(t *testing.T) {
	g := tensor.Vector{3, 4} // norm 5
	ClipNorm(g, 2.5)
	if math.Abs(g.Norm()-2.5) > 1e-12 {
		t.Fatalf("clipped norm %v, want 2.5", g.Norm())
	}
	if math.Abs(g[0]/g[1]-0.75) > 1e-12 {
		t.Fatal("clipping must preserve direction")
	}
	h := tensor.Vector{1, 0}
	ClipNorm(h, 5)
	if h[0] != 1 {
		t.Fatal("small gradients must pass unchanged")
	}
	ClipNorm(h, 0) // no-op
	if h[0] != 1 {
		t.Fatal("maxNorm 0 must be a no-op")
	}
}
