package gar

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

func TestBulyanRequiresEnoughWorkers(t *testing.T) {
	b := NewBulyan(4) // needs n >= 19
	grads := make([]tensor.Vector, 18)
	for i := range grads {
		grads[i] = tensor.Vector{1}
	}
	if _, err := b.Aggregate(grads); !errors.Is(err, ErrTooFewWorkers) {
		t.Fatalf("want ErrTooFewWorkers, got %v", err)
	}
}

func TestBulyanThetaBeta(t *testing.T) {
	b := NewBulyan(4)
	if got := b.Theta(19); got != 11 {
		t.Fatalf("Theta(19) = %d, want 11", got)
	}
	if got := b.Beta(19); got != 3 {
		t.Fatalf("Beta(19) = %d, want 3", got)
	}
}

// Bulyan's selection phase may admit Byzantine gradients in late iterations
// (once the active set shrinks to 2f+1 a colluding clique can score well);
// the guarantee is that at most f of the θ selected are Byzantine and the
// median phase neutralises them. Assert exactly that.
func TestBulyanBoundsByzantineInfluence(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	n, f, d := 19, 4, 20
	grads := honestCloud(rng, n-f, d, constVec(d, 1), 0.05)
	for i := 0; i < f; i++ {
		grads = append(grads, constVec(d, -1e7))
	}
	b := NewBulyan(f)
	sel, err := b.Select(grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != b.Theta(n) {
		t.Fatalf("selected %d, want %d", len(sel), b.Theta(n))
	}
	byzSelected := 0
	for _, idx := range sel {
		if idx >= n-f {
			byzSelected++
		}
	}
	if byzSelected > f {
		t.Fatalf("%d Byzantine gradients selected, tolerance is %d", byzSelected, f)
	}
	out, err := b.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		if math.Abs(out[j]-1) > 0.5 {
			t.Fatalf("output dragged to %v at coordinate %d", out[j], j)
		}
	}
}

func TestBulyanToleratesNaNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n, f, d := 7, 1, 12
	grads := honestCloud(rng, n-f, d, constVec(d, 0.5), 0.05)
	grads = append(grads, constVec(d, math.NaN()))
	out, err := NewBulyan(f).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsFinite() {
		t.Fatalf("non-finite output: %v", out)
	}
}

func TestBulyanOptimizedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for iter := 0; iter < 10; iter++ {
		f := rng.Intn(2) + 1
		n := 4*f + 3 + rng.Intn(4)
		d := rng.Intn(16) + 4
		grads := honestCloud(rng, n, d, constVec(d, 0), 1)
		opt := NewBulyan(f)
		naive := &Bulyan{NumByzantine: f, Naive: true}
		a, err := opt.Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		b, err := naive.Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < d; j++ {
			if math.Abs(a[j]-b[j]) > 1e-9 {
				t.Fatalf("iter %d coord %d: optimized %v vs naive %v", iter, j, a[j], b[j])
			}
		}
	}
}

func TestBulyanSequentialMatchesParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	n, f, d := 19, 4, 2048 // d above the parallel-coordinate threshold
	grads := honestCloud(rng, n, d, constVec(d, 0), 1)
	par, err := NewBulyan(f).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := (&Bulyan{NumByzantine: f, Sequential: true}).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		if par[j] != seq[j] {
			t.Fatalf("coord %d: parallel %v vs sequential %v", j, par[j], seq[j])
		}
	}
}

// Strong-resilience shape (Definition 2): each output coordinate lies within
// the range of correct-gradient values in that coordinate, even under the
// coordinate-sniping attack that defeats weak GARs.
func TestBulyanCoordinateBoundedUnderAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	n, f, d := 19, 4, 10
	honest := honestCloud(rng, n-f, d, constVec(d, 1), 0.1)
	// Byzantine vectors: match honest statistics in all coordinates but
	// blow up one coordinate moderately (the "dimensional leeway" attack).
	grads := append([]tensor.Vector{}, honest...)
	for i := 0; i < f; i++ {
		v := honest[i].Clone()
		v[0] += 3 // larger than the honest sigma but not absurd
		grads = append(grads, v)
	}
	out, err := NewBulyan(f).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, g := range honest {
		lo = math.Min(lo, g[0])
		hi = math.Max(hi, g[0])
	}
	// Bulyan's median-then-closest-average keeps coordinate 0 within the
	// honest range (+/- slack for the averaged closest values).
	if out[0] < lo-0.5 || out[0] > hi+0.5 {
		t.Fatalf("coordinate 0 escaped honest range: %v not in [%v, %v]", out[0], lo, hi)
	}
}

func TestBulyanPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	n, f, d := 11, 2, 6
	grads := honestCloud(rng, n, d, constVec(d, 0), 1)
	b := NewBulyan(f)
	base, err := b.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 10; iter++ {
		perm := rng.Perm(n)
		shuffled := make([]tensor.Vector, n)
		for i, p := range perm {
			shuffled[i] = grads[p]
		}
		got, err := b.Aggregate(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < d; j++ {
			if math.Abs(got[j]-base[j]) > 1e-9 {
				t.Fatalf("permutation changed output at coord %d", j)
			}
		}
	}
}

func TestBulyanSelectionOrderIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	grads := honestCloud(rng, 7, 4, constVec(4, 0), 1)
	b := NewBulyan(1)
	first, err := b.Select(grads)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := b.Select(grads)
		if err != nil {
			t.Fatal(err)
		}
		for k := range first {
			if first[k] != again[k] {
				t.Fatalf("non-deterministic selection: %v vs %v", first, again)
			}
		}
	}
}
