package gar

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

func TestGeoMedianOnCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	grads := honestCloud(rng, 6, 8, constVec(8, 2), 0.1)
	grads = append(grads, constVec(8, 1e9)) // one far Byzantine
	g := NewGeoMedian(1)
	out, err := g.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 8; j++ {
		if math.Abs(out[j]-2) > 0.5 {
			t.Fatalf("geometric median dragged to %v at coord %d", out[j], j)
		}
	}
}

func TestGeoMedianTooFewWorkers(t *testing.T) {
	g := NewGeoMedian(2) // needs n >= 5
	if _, err := g.Aggregate([]tensor.Vector{{1}, {2}}); !errors.Is(err, ErrTooFewWorkers) {
		t.Fatalf("want ErrTooFewWorkers, got %v", err)
	}
}

func TestGeoMedianExcludesNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	grads := honestCloud(rng, 5, 4, constVec(4, 1), 0.05)
	grads = append(grads, constVec(4, math.NaN()), constVec(4, math.Inf(1)))
	out, err := NewGeoMedian(2).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsFinite() {
		t.Fatalf("non-finite output %v", out)
	}
	for j := 0; j < 4; j++ {
		if math.Abs(out[j]-1) > 0.3 {
			t.Fatalf("coord %d drifted: %v", j, out[j])
		}
	}
}

func TestGeoMedianAllNonFiniteIsNullUpdate(t *testing.T) {
	grads := []tensor.Vector{constVec(3, math.NaN()), constVec(3, math.Inf(1)), constVec(3, math.NaN())}
	out, err := NewGeoMedian(1).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if out.Norm() != 0 {
		t.Fatalf("want null update, got %v", out)
	}
}

func TestGeoMedianExactOnDataPoint(t *testing.T) {
	// With an iterate landing on a data point, the rule returns that point
	// rather than dividing by zero.
	grads := []tensor.Vector{{0, 0}, {0, 0}, {0, 0}}
	out, err := NewGeoMedian(1).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || out[1] != 0 {
		t.Fatalf("got %v", out)
	}
}

func TestGeoMedianMinimizesDistanceSum(t *testing.T) {
	// The Weiszfeld result must beat the arithmetic mean on the summed
	// distance objective when an outlier is present.
	rng := rand.New(rand.NewSource(62))
	grads := honestCloud(rng, 8, 5, constVec(5, 0), 1)
	grads = append(grads, constVec(5, 500))
	med, err := NewGeoMedian(1).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	mean := tensor.Mean(grads)
	sum := func(y tensor.Vector) float64 {
		var s float64
		for _, g := range grads {
			s += tensor.Distance(g, y)
		}
		return s
	}
	if sum(med) >= sum(mean) {
		t.Fatalf("geometric median (%v) did not beat mean (%v) on distance sum", sum(med), sum(mean))
	}
}

func TestMeanAroundMedian(t *testing.T) {
	// n=5, f=1: per coordinate, average the 4 values closest to the
	// median.
	grads := []tensor.Vector{{0}, {1}, {2}, {3}, {1000}}
	out, err := NewMeanAroundMedian(1).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1.5) > 1e-12 { // mean of {0,1,2,3}
		t.Fatalf("got %v, want 1.5", out[0])
	}
}

func TestMeanAroundMedianTooFew(t *testing.T) {
	m := NewMeanAroundMedian(2)
	if _, err := m.Aggregate([]tensor.Vector{{1}, {2}, {3}}); !errors.Is(err, ErrTooFewWorkers) {
		t.Fatalf("want ErrTooFewWorkers, got %v", err)
	}
}

func TestMeanAroundMedianNaNTolerant(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	grads := honestCloud(rng, 6, 6, constVec(6, 1), 0.05)
	grads = append(grads, constVec(6, math.NaN()))
	out, err := NewMeanAroundMedian(1).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsFinite() {
		t.Fatalf("non-finite output %v", out)
	}
}

func TestMedianFamilyRegistry(t *testing.T) {
	for _, name := range []string{"geometric-median", "mean-around-median"} {
		g, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("Name() = %q", g.Name())
		}
		if _, err := New(name, -1); err == nil {
			t.Fatalf("New(%q, -1) accepted", name)
		}
	}
}

func TestMedianFamilyByzantineInfo(t *testing.T) {
	if NewGeoMedian(3).MinWorkers() != 7 {
		t.Fatal("geo median min workers")
	}
	if NewMeanAroundMedian(3).MinWorkers() != 7 {
		t.Fatal("mean-around-median min workers")
	}
}

// Property: mean-around-median stays within the per-coordinate range of the
// honest values when f vectors are wild.
func TestQuickMeanAroundMedianBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for iter := 0; iter < 60; iter++ {
		f := rng.Intn(2) + 1
		n := 2*f + 1 + rng.Intn(6)
		d := rng.Intn(6) + 1
		honest := honestCloud(rng, n-f, d, constVec(d, 0), 1)
		grads := append([]tensor.Vector{}, honest...)
		for i := 0; i < f; i++ {
			grads = append(grads, constVec(d, 1e6*(rng.Float64()*2-1)))
		}
		out, err := NewMeanAroundMedian(f).Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < d; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, g := range honest {
				lo = math.Min(lo, g[j])
				hi = math.Max(hi, g[j])
			}
			// One wild value can enter the averaged window only if
			// it is closer to the median than an honest value —
			// impossible at 1e6 away. Allow tiny numerical slack.
			if out[j] < lo-1e-9 || out[j] > hi+1e-9 {
				t.Fatalf("iter %d coord %d: %v outside honest [%v, %v]", iter, j, out[j], lo, hi)
			}
		}
	}
}

func TestGenericBulyanRegistryComposites(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	n, f, d := 7, 1, 6
	grads := honestCloud(rng, n-f, d, constVec(d, 1), 0.05)
	grads = append(grads, constVec(d, -1e7))
	for _, name := range []string{"bulyan-median", "bulyan-geometric-median"} {
		g, err := New(name, f)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		out, err := g.Aggregate(grads)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for j := 0; j < d; j++ {
			if math.Abs(out[j]-1) > 0.5 {
				t.Fatalf("%s coord %d dragged to %v", name, j, out[j])
			}
		}
		if _, err := New(name, -1); err == nil {
			t.Fatalf("New(%q, -1) accepted", name)
		}
	}
}
