package gar

import (
	"fmt"

	"aggregathor/internal/tensor"
)

// GeoMedian approximates the geometric median (the minimiser of the sum of
// Euclidean distances) with Weiszfeld iterations — the high-dimensional
// median underlying several of the related-work rules (Xie et al. 2018's
// geometric-median variant). It is weakly Byzantine-resilient for f < n/2.
//
// Gradients with non-finite coordinates are excluded before iterating (their
// distance is +Inf, so they carry no pull anyway but would poison the
// arithmetic).
type GeoMedian struct {
	// NumByzantine is the declared tolerance f (< n/2).
	NumByzantine int
	// MaxIter bounds the Weiszfeld iterations; 0 means 50.
	MaxIter int
	// Tol is the convergence threshold on iterate movement; 0 means 1e-9.
	Tol float64
}

// NewGeoMedian returns a geometric-median rule tolerating f Byzantine
// workers.
func NewGeoMedian(f int) *GeoMedian { return &GeoMedian{NumByzantine: f} }

// Name implements GAR.
func (g *GeoMedian) Name() string { return "geometric-median" }

// F implements ByzantineInfo.
func (g *GeoMedian) F() int { return g.NumByzantine }

// MinWorkers implements ByzantineInfo: n ≥ 2f+1.
func (g *GeoMedian) MinWorkers() int { return 2*g.NumByzantine + 1 }

// Aggregate implements GAR.
func (g *GeoMedian) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(g, grads)
}

// AggregateInto implements WorkspaceGAR: the Weiszfeld iterations alternate
// between the workspace's two iterate buffers and the finite-gradient filter
// reuses its list, so a warm aggregation allocates nothing.
func (g *GeoMedian) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	if len(grads) < g.MinWorkers() {
		return nil, fmt.Errorf("%w: geometric-median(f=%d) needs n >= %d, got %d",
			ErrTooFewWorkers, g.NumByzantine, g.MinWorkers(), len(grads))
	}
	finite := ws.ensureFinite(len(grads))
	for _, v := range grads {
		if v.IsFinite() {
			//aggrevet:alloc appends into ensureFinite capacity; 0 steady-state allocs pinned by TestWorkspaceZeroSteadyStateAllocs
			finite = append(finite, v)
		}
	}
	d := grads[0].Dim()
	out := ws.ensureOut(d)
	if len(finite) == 0 {
		// Every vector is poisoned; a null update is the only safe
		// total answer.
		out.Zero()
		return out, nil
	}
	maxIter := g.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	tol := g.Tol
	if tol == 0 {
		tol = 1e-9
	}
	y, next := ws.ensureIter(d)
	tensor.MeanInto(y, finite)
	for iter := 0; iter < maxIter; iter++ {
		next.Zero()
		var wsum float64
		for _, x := range finite {
			dist := tensor.Distance(x, y)
			if dist < 1e-12 {
				// The iterate sits on a data point; Weiszfeld is
				// singular here and the point is already (near-)
				// optimal for our purposes.
				copy(out, x)
				return out, nil
			}
			w := 1 / dist
			next.Axpy(w, x)
			wsum += w
		}
		next.Scale(1 / wsum)
		moved := tensor.Distance(next, y)
		y, next = next, y
		if moved < tol {
			break
		}
	}
	copy(out, y)
	return out, nil
}

// MeanAroundMedian is the "mean-around-median" rule of Xie et al. 2018: per
// coordinate, average the n−f values closest to the coordinate median.
// Weakly Byzantine-resilient for 2f < n.
type MeanAroundMedian struct {
	// NumByzantine is the declared tolerance f.
	NumByzantine int
}

// NewMeanAroundMedian returns the rule with tolerance f.
func NewMeanAroundMedian(f int) *MeanAroundMedian {
	return &MeanAroundMedian{NumByzantine: f}
}

// Name implements GAR.
func (m *MeanAroundMedian) Name() string { return "mean-around-median" }

// F implements ByzantineInfo.
func (m *MeanAroundMedian) F() int { return m.NumByzantine }

// MinWorkers implements ByzantineInfo: n ≥ 2f+1.
func (m *MeanAroundMedian) MinWorkers() int { return 2*m.NumByzantine + 1 }

// Aggregate implements GAR.
func (m *MeanAroundMedian) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(m, grads)
}

// AggregateInto implements WorkspaceGAR: the median/closest-average pass is
// the same blocked column-engine kernel Bulyan's second phase uses, tiled
// and parallel over coordinate ranges.
func (m *MeanAroundMedian) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	n := len(grads)
	if n < m.MinWorkers() {
		return nil, fmt.Errorf("%w: mean-around-median(f=%d) needs n >= %d, got %d",
			ErrTooFewWorkers, m.NumByzantine, m.MinWorkers(), n)
	}
	out := ws.ensureOut(grads[0].Dim())
	ws.cols.Run(out, grads, n-m.NumByzantine, tensor.MeanAroundMedianKernel, true)
	return out, nil
}

func init() {
	Register("geometric-median", func(f int) (GAR, error) {
		if f < 0 {
			return nil, fmt.Errorf("gar: geometric-median requires f >= 0, got %d", f)
		}
		return NewGeoMedian(f), nil
	})
	Register("mean-around-median", func(f int) (GAR, error) {
		if f < 0 {
			return nil, fmt.Errorf("gar: mean-around-median requires f >= 0, got %d", f)
		}
		return NewMeanAroundMedian(f), nil
	})
	// Generic BULYAN composites over the other weak rules (§2.3: the
	// construction works over any weakly Byzantine-resilient GAR).
	Register("bulyan-median", func(f int) (GAR, error) {
		if f < 0 {
			return nil, fmt.Errorf("gar: bulyan-median requires f >= 0, got %d", f)
		}
		return NewGenericBulyan(Median{}, f), nil
	})
	Register("bulyan-geometric-median", func(f int) (GAR, error) {
		if f < 0 {
			return nil, fmt.Errorf("gar: bulyan-geometric-median requires f >= 0, got %d", f)
		}
		return NewGenericBulyan(NewGeoMedian(f), f), nil
	})
}
