package gar

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

// honestCloud returns n gradients drawn around a common mean g with noise
// sigma — the IID correct-worker model from the paper's analysis.
func honestCloud(rng *rand.Rand, n, d int, mean tensor.Vector, sigma float64) []tensor.Vector {
	out := make([]tensor.Vector, n)
	for i := range out {
		v := tensor.NewVector(d)
		for j := 0; j < d; j++ {
			v[j] = mean[j] + rng.NormFloat64()*sigma
		}
		out[i] = v
	}
	return out
}

func constVec(d int, x float64) tensor.Vector {
	v := tensor.NewVector(d)
	v.Fill(x)
	return v
}

func TestAverageAggregate(t *testing.T) {
	got, err := Average{}.Aggregate([]tensor.Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := (Average{}).Aggregate(nil); !errors.Is(err, ErrNoGradients) {
		t.Fatalf("want ErrNoGradients, got %v", err)
	}
	if _, err := (Average{}).Aggregate([]tensor.Vector{{1}, {1, 2}}); err == nil {
		t.Fatal("want dimension mismatch error")
	}
}

func TestAverageDoesNotMutateInputs(t *testing.T) {
	a, b := tensor.Vector{1, 2}, tensor.Vector{3, 4}
	if _, err := (Average{}).Aggregate([]tensor.Vector{a, b}); err != nil {
		t.Fatal(err)
	}
	if a[0] != 1 || b[0] != 3 {
		t.Fatal("inputs mutated")
	}
}

func TestSelectiveAverageSkipsNaN(t *testing.T) {
	nan := math.NaN()
	got, err := SelectiveAverage{}.Aggregate([]tensor.Vector{{nan, 4}, {2, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 {
		t.Fatalf("got %v", got)
	}
}

func TestMedianAggregate(t *testing.T) {
	got, err := Median{}.Aggregate([]tensor.Vector{{1}, {100}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("got %v, want 2", got[0])
	}
}

func TestMedianResistsSingleOutlier(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := 10
	mean := constVec(d, 1)
	grads := honestCloud(rng, 8, d, mean, 0.1)
	grads = append(grads, constVec(d, 1e12)) // Byzantine blowup
	got, err := Median{}.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		if math.Abs(got[j]-1) > 1 {
			t.Fatalf("median dragged to %v at coordinate %d", got[j], j)
		}
	}
}

func TestTrimmedMeanAggregate(t *testing.T) {
	tm := TrimmedMean{Beta: 1}
	got, err := tm.Aggregate([]tensor.Vector{{0}, {1}, {2}, {3}, {1e9}})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Fatalf("got %v, want 2", got[0])
	}
}

func TestTrimmedMeanTooFewWorkers(t *testing.T) {
	tm := TrimmedMean{Beta: 2}
	if _, err := tm.Aggregate([]tensor.Vector{{1}, {2}, {3}}); !errors.Is(err, ErrTooFewWorkers) {
		t.Fatalf("want ErrTooFewWorkers, got %v", err)
	}
}

func TestGARNames(t *testing.T) {
	cases := []struct {
		g    GAR
		want string
	}{
		{Average{}, "average"},
		{SelectiveAverage{}, "selective-average"},
		{Median{}, "median"},
		{TrimmedMean{Beta: 1}, "trimmed-mean"},
		{NewKrum(1), "krum"},
		{NewMultiKrum(1), "multi-krum"},
		{NewBulyan(1), "bulyan"},
	}
	for _, tc := range cases {
		if got := tc.g.Name(); got != tc.want {
			t.Errorf("Name() = %q, want %q", got, tc.want)
		}
	}
}

func TestByzantineInfoContracts(t *testing.T) {
	cases := []struct {
		name    string
		info    ByzantineInfo
		f, minN int
	}{
		{"multi-krum", NewMultiKrum(4), 4, 11},
		{"bulyan", NewBulyan(4), 4, 19},
		{"bulyan-f1", NewBulyan(1), 1, 7},
		{"trimmed-mean", TrimmedMean{Beta: 3}, 3, 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.info.F(); got != tc.f {
				t.Errorf("F() = %d, want %d", got, tc.f)
			}
			if got := tc.info.MinWorkers(); got != tc.minN {
				t.Errorf("MinWorkers() = %d, want %d", got, tc.minN)
			}
		})
	}
}
