package gar

import (
	"fmt"
	"math"
	"runtime"
	"sort"

	"aggregathor/internal/tensor"
)

// MultiKrum implements the MULTI-KRUM rule from the paper (§2.3 and the
// appendix): each gradient is scored by the sum of squared distances to its
// n−f−2 closest neighbours, and the rule returns the average of the m
// smallest-scoring gradients.
//
// Requirements (Theorem 1): n ≥ 2f+3 and 1 ≤ m ≤ n−f−2 for weak Byzantine
// resilience. With m = 1 this is the original Krum rule of Blanchard et al.
//
// The distance computation — the O(n²d) hot path — runs on the cache-
// blocked engine (BlockedPairwiseSquaredDistances): coordinate blocks swept
// once across the whole upper triangle, parallel over block indexes,
// matching the paper's "fast, memory scarce implementation ... fully
// parallelizing each of the computational-heavy steps".
type MultiKrum struct {
	// NumByzantine is f, the number of Byzantine workers tolerated.
	NumByzantine int
	// M is the selection size m. If 0, the maximal safe value n−f−2 is
	// used at aggregation time ("adaptive" Multi-Krum).
	M int
	// Sequential confines the blocked distance sweep to the calling
	// goroutine (the result is bit-identical either way). It exists for
	// the ablation benchmark; production use should leave it false.
	Sequential bool
}

// NewMultiKrum returns a MULTI-KRUM rule tolerating f Byzantine workers with
// the adaptive (maximal) selection size m = n−f−2.
func NewMultiKrum(f int) *MultiKrum { return &MultiKrum{NumByzantine: f} }

// NewKrum returns the original Krum rule (m = 1) tolerating f Byzantine
// workers.
func NewKrum(f int) *MultiKrum { return &MultiKrum{NumByzantine: f, M: 1} }

// Name implements GAR.
func (k *MultiKrum) Name() string {
	if k.M == 1 {
		return "krum"
	}
	return "multi-krum"
}

// F implements ByzantineInfo.
func (k *MultiKrum) F() int { return k.NumByzantine }

// MinWorkers implements ByzantineInfo: MULTI-KRUM requires n ≥ 2f+3.
func (k *MultiKrum) MinWorkers() int { return 2*k.NumByzantine + 3 }

// EffectiveM returns the selection size used for n workers: the configured M,
// or the maximal safe value n−f−2 when M is 0.
func (k *MultiKrum) EffectiveM(n int) int {
	if k.M > 0 {
		return k.M
	}
	return n - k.NumByzantine - 2
}

// Aggregate implements GAR.
func (k *MultiKrum) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(k, grads)
}

// AggregateInto implements WorkspaceGAR: blocked distances, selection-based
// scoring and the selected-set mean all run on workspace buffers.
func (k *MultiKrum) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	sel, err := k.selectInto(ws, grads)
	if err != nil {
		return nil, err
	}
	picked := ws.ensurePicked(len(sel))
	for _, idx := range sel {
		//aggrevet:alloc appends into ensurePicked capacity; 0 steady-state allocs pinned by TestWorkspaceZeroSteadyStateAllocs
		picked = append(picked, grads[idx])
	}
	out := ws.ensureOut(grads[0].Dim())
	tensor.MeanInto(out, picked)
	return out, nil
}

// Select returns the indexes of the m smallest-scoring gradients, ordered by
// ascending score. It validates the n ≥ 2f+3 and m ≤ n−f−2 requirements.
func (k *MultiKrum) Select(grads []tensor.Vector) ([]int, error) {
	var ws Workspace
	return k.selectInto(&ws, grads)
}

// selectInto is Select on workspace buffers; the returned slice aliases ws.
func (k *MultiKrum) selectInto(ws *Workspace, grads []tensor.Vector) ([]int, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	n := len(grads)
	f := k.NumByzantine
	if n < k.MinWorkers() {
		return nil, fmt.Errorf("%w: multi-krum(f=%d) needs n >= %d, got %d",
			ErrTooFewWorkers, f, k.MinWorkers(), n)
	}
	m := k.EffectiveM(n)
	if m < 1 || m > n-f-2 {
		return nil, fmt.Errorf("gar: multi-krum m=%d out of range [1, %d] for n=%d f=%d",
			m, n-f-2, n, f)
	}
	dist := BlockedPairwiseSquaredDistances(grads, ws, k.Sequential)
	scores := krumScoresInto(ws, dist, n, f)
	return tensor.SmallestKInto(ws.ensureSelIdx(n), scores, m), nil
}

// Scores returns the Krum score of every gradient (sum of squared distances
// to the n−f−2 closest neighbours). Exposed for tests and diagnostics.
func (k *MultiKrum) Scores(grads []tensor.Vector) ([]float64, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	n := len(grads)
	if n < k.MinWorkers() {
		return nil, fmt.Errorf("%w: multi-krum(f=%d) needs n >= %d, got %d",
			ErrTooFewWorkers, k.NumByzantine, k.MinWorkers(), n)
	}
	var ws Workspace
	dist := BlockedPairwiseSquaredDistances(grads, &ws, k.Sequential)
	return krumScoresInto(&ws, dist, n, k.NumByzantine), nil
}

// PairwiseSquaredDistances computes the symmetric n×n matrix of squared
// Euclidean distances, with non-finite coordinates saturating to +Inf. When
// sequential is false the upper triangle is partitioned across
// min(GOMAXPROCS, n) goroutines.
//
// This is the row-streaming reference kernel: each gradient is re-read once
// per pair. The hot path uses BlockedPairwiseSquaredDistances, which
// produces the same matrix (within per-pair summation-order ulps, with
// identical non-finite saturation) from cache-blocked sweeps; this form is
// kept as the equivalence-test reference and the ablation baseline.
func PairwiseSquaredDistances(grads []tensor.Vector, sequential bool) [][]float64 {
	n := len(grads)
	dist := make([][]float64, n)
	backing := make([]float64, n*n)
	for i := range dist {
		dist[i] = backing[i*n : (i+1)*n]
	}
	fill := func(i int) {
		for j := i + 1; j < n; j++ {
			d := tensor.SquaredDistance(grads[i], grads[j])
			dist[i][j] = d
			dist[j][i] = d
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if sequential || workers <= 1 || n < 4 {
		for i := 0; i < n; i++ {
			fill(i)
		}
		return dist
	}
	// Rows have decreasing cost (row i does n-1-i distance computations),
	// so hand out rows via the pool's shared atomic counter rather than
	// fixed block splits — lock-free work stealing keeps every worker busy
	// until the triangle is exhausted without serialising the steal on a
	// mutex.
	tensor.ParallelFor(n, workers, func(_, i int) { fill(i) })
	return dist
}

// KrumScores derives the per-gradient Krum score from a pairwise squared
// distance matrix: the sum of the n−f−2 smallest distances to other
// gradients. Scores that would be NaN are saturated to +Inf.
func KrumScores(dist [][]float64, n, f int) []float64 {
	k := n - f - 2
	scores := make([]float64, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, dist[i][j])
			}
		}
		sort.Float64s(row)
		var s float64
		// NaNs sort first in sort.Float64s; skip them (they only arise
		// if a caller hand-built the matrix — SquaredDistance never
		// returns NaN).
		lo := 0
		for lo < len(row) && math.IsNaN(row[lo]) {
			lo++
		}
		hi := lo + k
		if hi > len(row) {
			hi = len(row)
		}
		for _, d := range row[lo:hi] {
			s += d
		}
		if math.IsNaN(s) {
			s = math.Inf(1)
		}
		scores[i] = s
	}
	return scores
}
