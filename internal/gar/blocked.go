package gar

import (
	"math"
	"runtime"

	"aggregathor/internal/tensor"
)

// This file implements the cache-blocked pairwise distance engine, the
// O(n²d) heart of MULTI-KRUM and BULYAN (§4.2 of the paper). The previous
// kernel streamed each full gradient n−1 times: at the Table-1 scale every
// 14MB vector was re-read from DRAM once per pair, so the pass was memory-
// bandwidth bound. The blocked engine partitions the d coordinates into
// L2-sized blocks and accumulates partial squared distances for the whole
// upper triangle one block at a time — each vector block is read once per
// sweep and stays cache-resident across its n−1 pair visits.
//
// Determinism: every block writes its partial sums into a fixed slot of the
// partials array, and the final per-pair reduction adds those slots in
// ascending block order. The result is therefore a pure function of the
// input, bit-identical across GOMAXPROCS settings and run-to-run — the
// property the campaign byte-reproducibility suites pin down.

const (
	// distBlockCoords is the block width: 2048 coordinates × 8 bytes =
	// 16KB per vector block, so a full n≈19 sweep touches ≈300KB — sized
	// to sit in L2 while the n(n−1)/2 pair visits replay it.
	distBlockCoords = 2048
	// distParallelMin is the dimension below which the sweep stays on the
	// calling goroutine.
	distParallelMin = 1 << 15
)

// blockDistance2 accumulates the squared distances from block a to two
// blocks at once. The sweep is load-throughput bound — a one-pair kernel
// issues two loads per coordinate-pair — so sharing each a-load across two
// pairs (six loads per four coordinate-pairs) is the main lever; wider
// lane counts measure slower on amd64 (register spills). Each pair keeps
// two independent accumulators (even/odd coordinates) combined in a fixed
// order, so every distance is a pure function of its two vector blocks
// alone: permutation-equivariant and bit-identical for any GOMAXPROCS,
// tiling position, or run.
func blockDistance2(a, b0, b1 []float64) (r0, r1 float64) {
	n := len(a)
	b0 = b0[:n] // bounds-check elimination for the paired loads
	b1 = b1[:n]
	var s00, s01, s10, s11 float64
	i := 0
	for ; i+2 <= n; i += 2 {
		x, y := a[i], a[i+1]
		d := x - b0[i]
		e := y - b0[i+1]
		s00 += d * d
		s01 += e * e
		d = x - b1[i]
		e = y - b1[i+1]
		s10 += d * d
		s11 += e * e
	}
	for ; i < n; i++ {
		x := a[i]
		d0 := x - b0[i]
		s00 += d0 * d0
		d1 := x - b1[i]
		s10 += d1 * d1
	}
	return s00 + s01, s10 + s11
}

// distSweep accumulates block b's partial squared distances for the whole
// upper triangle into its fixed partials slot.
func distSweep(partials []float64, grads []tensor.Vector, b, n, nPairs, d int) {
	lo := b * distBlockCoords
	hi := lo + distBlockCoords
	if hi > d {
		hi = d
	}
	out := partials[b*nPairs:]
	p := 0
	for i := 0; i < n; i++ {
		bi := grads[i][lo:hi]
		j := i + 1
		for ; j+2 <= n; j += 2 {
			out[p], out[p+1] = blockDistance2(bi, grads[j][lo:hi], grads[j+1][lo:hi])
			p += 2
		}
		// A tail pair replays the same 2-lane kernel with a duplicated
		// argument so every pair sees the identical accumulation
		// structure regardless of its sweep position.
		if j < n {
			bj := grads[j][lo:hi]
			out[p], _ = blockDistance2(bi, bj, bj)
			p++
		}
	}
}

// BlockedPairwiseSquaredDistances computes the same symmetric n×n squared
// Euclidean distance matrix as PairwiseSquaredDistances — non-finite
// coordinates saturating each affected pair to +Inf — through the cache-
// blocked engine. The matrix aliases ws and is valid until the workspace's
// next distance computation. sequential confines the sweep to the calling
// goroutine; the output is bit-identical either way (and run-to-run, for
// any GOMAXPROCS).
//
// The per-pair sums associate per block rather than left-to-right, so
// values may differ from PairwiseSquaredDistances in the last ulps; the
// saturation semantics (NaN→+Inf, ±Inf propagation) are preserved exactly.
func BlockedPairwiseSquaredDistances(grads []tensor.Vector, ws *Workspace, sequential bool) [][]float64 {
	n := len(grads)
	dist := ws.ensureDist(n)
	for i := range dist {
		for j := range dist[i] {
			dist[i][j] = 0
		}
	}
	if n < 2 {
		return dist
	}
	d := grads[0].Dim()
	nPairs := n * (n - 1) / 2
	nBlocks := (d + distBlockCoords - 1) / distBlockCoords
	if nBlocks == 0 {
		return dist
	}
	partials := ws.ensurePartials(nBlocks * nPairs)

	workers := runtime.GOMAXPROCS(0)
	if workers > nBlocks {
		workers = nBlocks
	}
	if sequential || workers <= 1 || d < distParallelMin {
		// The sequential schedule is a plain loop (no closure) so the
		// steady-state workspace path stays allocation-free.
		for b := 0; b < nBlocks; b++ {
			distSweep(partials, grads, b, n, nPairs, d)
		}
	} else {
		tensor.ParallelFor(nBlocks, workers, func(_, b int) {
			distSweep(partials, grads, b, n, nPairs, d)
		})
	}

	// Reduce the block partials in ascending block order — a fixed
	// association independent of which goroutine computed which block.
	p := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var s float64
			for b := 0; b < nBlocks; b++ {
				s += partials[b*nPairs+p]
			}
			if math.IsNaN(s) {
				s = math.Inf(1)
			}
			dist[i][j] = s
			dist[j][i] = s
			p++
		}
	}
	return dist
}

// krumScoresInto computes the Krum scores from a distance matrix into the
// workspace, bit-identically to the exported KrumScores reference but with
// a selection kernel instead of a full sort and zero allocations: per row,
// select the k smallest finite-ordered entries, sort only that prefix, and
// sum it ascending.
func krumScoresInto(ws *Workspace, dist [][]float64, n, f int) []float64 {
	k := n - f - 2
	scores, row := ws.ensureScores(n)
	for i := 0; i < n; i++ {
		r := row[:0]
		nn := 0
		for j := 0; j < n; j++ {
			if j != i {
				x := dist[i][j]
				if math.IsNaN(x) {
					nn++
				}
				r = append(r, x)
			}
		}
		// NaNs order first (as in sort.Float64s) and are skipped; the
		// summed window is the k smallest non-NaN entries, ascending.
		hi := nn + k
		if hi > len(r) {
			hi = len(r)
		}
		if hi < nn {
			hi = nn
		}
		tensor.SelectSmallestFloat(r, hi)
		var s float64
		for _, d := range r[nn:hi] {
			s += d
		}
		if math.IsNaN(s) {
			s = math.Inf(1)
		}
		scores[i] = s
	}
	return scores
}
