package gar

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"aggregathor/internal/tensor"
)

// Bulyan implements the BULYAN rule (El Mhamdi et al. 2018) as packaged by
// the paper: θ = n−2f iterations of the underlying MULTI-KRUM selection each
// extract one gradient, then each output coordinate is the average of the
// β = θ−2f values closest to the coordinate-wise median of the extracted set.
//
// Requirements (Theorem 2): n ≥ 4f+3 for strong Byzantine resilience.
//
// The implementation follows the paper's optimisation: the O(n²d) pairwise
// distance matrix is computed once on the first iteration, and subsequent
// iterations only recompute scores over the shrinking active set ("the next
// iterations only update the scores"). The coordinate-wise median/average
// pass is parallelised over coordinate ranges. Setting Naive recomputes
// distances from scratch every iteration — kept for the ablation benchmark.
type Bulyan struct {
	// NumByzantine is f, the number of Byzantine workers tolerated.
	NumByzantine int
	// Naive disables the distance-matrix reuse optimisation.
	Naive bool
	// Sequential disables both the parallel distance computation and the
	// parallel coordinate-wise pass.
	Sequential bool
}

// NewBulyan returns a BULYAN rule tolerating f Byzantine workers, using
// MULTI-KRUM as the underlying selection rule.
func NewBulyan(f int) *Bulyan { return &Bulyan{NumByzantine: f} }

// Name implements GAR.
func (b *Bulyan) Name() string { return "bulyan" }

// F implements ByzantineInfo.
func (b *Bulyan) F() int { return b.NumByzantine }

// MinWorkers implements ByzantineInfo: BULYAN requires n ≥ 4f+3.
func (b *Bulyan) MinWorkers() int { return 4*b.NumByzantine + 3 }

// Theta returns the number of selection iterations for n workers: n−2f.
func (b *Bulyan) Theta(n int) int { return n - 2*b.NumByzantine }

// Beta returns the per-coordinate averaging width for n workers: θ−2f.
func (b *Bulyan) Beta(n int) int { return b.Theta(n) - 2*b.NumByzantine }

// Aggregate implements GAR.
func (b *Bulyan) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	sel, err := b.Select(grads)
	if err != nil {
		return nil, err
	}
	picked := make([]tensor.Vector, len(sel))
	for i, idx := range sel {
		picked[i] = grads[idx]
	}
	return b.coordinateAggregate(picked, b.Beta(len(grads))), nil
}

// Select runs the θ = n−2f Multi-Krum extraction iterations and returns the
// indexes of the extracted gradients, in extraction order.
func (b *Bulyan) Select(grads []tensor.Vector) ([]int, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	n := len(grads)
	f := b.NumByzantine
	if n < b.MinWorkers() {
		return nil, fmt.Errorf("%w: bulyan(f=%d) needs n >= %d, got %d",
			ErrTooFewWorkers, f, b.MinWorkers(), n)
	}
	theta := b.Theta(n)
	if b.Naive {
		return b.selectNaive(grads, theta)
	}

	// Distance matrix computed once; iterations below only rescore.
	dist := PairwiseSquaredDistances(grads, b.Sequential)
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	selected := make([]int, 0, theta)
	row := make([]float64, 0, n)
	for len(selected) < theta {
		na := len(active)
		k := na - f - 2
		if k < 1 {
			// Fewer than f+3 candidates remain; Krum scoring is no
			// longer defined, so fall back to closest-to-centroid
			// ordering over cached distances (sum of all distances).
			k = na - 1
		}
		bestIdx, bestScore := -1, math.Inf(1)
		for ai, gi := range active {
			row = row[:0]
			for aj, gj := range active {
				if ai != aj {
					row = append(row, dist[gi][gj])
				}
			}
			sort.Float64s(row)
			var s float64
			hi := k
			if hi > len(row) {
				hi = len(row)
			}
			for _, d := range row[:hi] {
				s += d
			}
			if math.IsNaN(s) {
				s = math.Inf(1)
			}
			// First candidate always seeds the selection so that an
			// all-+Inf field (every candidate poisoned) still breaks
			// ties lexicographically, exactly as selectNaive does.
			if bestIdx < 0 || s < bestScore ||
				(s == bestScore && lexLess(grads[gi], grads[active[bestIdx]])) {
				bestIdx, bestScore = ai, s
			}
		}
		selected = append(selected, active[bestIdx])
		active = append(active[:bestIdx], active[bestIdx+1:]...)
	}
	return selected, nil
}

// selectNaive is the unoptimised reference path: a fresh Krum (m=1) over the
// remaining vectors each iteration, recomputing all pairwise distances.
func (b *Bulyan) selectNaive(grads []tensor.Vector, theta int) ([]int, error) {
	f := b.NumByzantine
	remaining := make([]int, len(grads))
	for i := range remaining {
		remaining[i] = i
	}
	selected := make([]int, 0, theta)
	for len(selected) < theta {
		sub := make([]tensor.Vector, len(remaining))
		for i, idx := range remaining {
			sub[i] = grads[idx]
		}
		dist := PairwiseSquaredDistances(sub, b.Sequential)
		na := len(sub)
		k := na - f - 2
		if k < 1 {
			k = na - 1
		}
		scores := make([]float64, na)
		row := make([]float64, 0, na)
		for i := 0; i < na; i++ {
			row = row[:0]
			for j := 0; j < na; j++ {
				if j != i {
					row = append(row, dist[i][j])
				}
			}
			sort.Float64s(row)
			var s float64
			hi := k
			if hi > len(row) {
				hi = len(row)
			}
			for _, d := range row[:hi] {
				s += d
			}
			if math.IsNaN(s) {
				s = math.Inf(1)
			}
			scores[i] = s
		}
		best := 0
		for i := 1; i < na; i++ {
			if scores[i] < scores[best] ||
				(scores[i] == scores[best] && lexLess(sub[i], sub[best])) {
				best = i
			}
		}
		selected = append(selected, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return selected, nil
}

// lexLess orders vectors lexicographically, treating NaN as larger than any
// number. Score ties in the selection loops are broken with this ordering so
// that the extracted set does not depend on the order gradients arrived from
// the network — mutually-nearest pairs produce exactly tied Krum scores in
// the final Bulyan iteration (where the neighbour count reaches f−1).
func lexLess(a, b tensor.Vector) bool {
	for i := range a {
		av, bv := a[i], b[i]
		switch {
		case av == bv:
			continue
		case math.IsNaN(av):
			return false
		case math.IsNaN(bv):
			return true
		default:
			return av < bv
		}
	}
	return false
}

// coordinateAggregate performs the second BULYAN phase: for each coordinate,
// take the median of the selected vectors and average the beta values
// closest to it. The coordinate loop is split across GOMAXPROCS goroutines.
func (b *Bulyan) coordinateAggregate(picked []tensor.Vector, beta int) tensor.Vector {
	if beta < 1 {
		beta = 1
	}
	if beta > len(picked) {
		beta = len(picked)
	}
	d := picked[0].Dim()
	out := tensor.NewVector(d)
	process := func(lo, hi int) {
		col := make([]float64, len(picked))
		for j := lo; j < hi; j++ {
			for i, v := range picked {
				col[i] = v[j]
			}
			med := tensor.Median(col)
			if math.IsNaN(med) {
				out[j] = 0 // every selected value was NaN: null update
				continue
			}
			closest := tensor.ClosestToPivot(col, med, beta)
			var s float64
			var cnt int
			for _, idx := range closest {
				if !math.IsNaN(col[idx]) && !math.IsInf(col[idx], 0) {
					s += col[idx]
					cnt++
				}
			}
			if cnt == 0 {
				out[j] = med
			} else {
				out[j] = s / float64(cnt)
			}
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if b.Sequential || workers <= 1 || d < 1024 {
		process(0, d)
		return out
	}
	chunk := (d + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < d; lo += chunk {
		hi := lo + chunk
		if hi > d {
			hi = d
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			process(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}
