package gar

import (
	"fmt"
	"math"
	"sort"

	"aggregathor/internal/tensor"
)

// Bulyan implements the BULYAN rule (El Mhamdi et al. 2018) as packaged by
// the paper: θ = n−2f iterations of the underlying MULTI-KRUM selection each
// extract one gradient, then each output coordinate is the average of the
// β = θ−2f values closest to the coordinate-wise median of the extracted set.
//
// Requirements (Theorem 2): n ≥ 4f+3 for strong Byzantine resilience.
//
// The implementation follows the paper's optimisation — "the next iterations
// only update the scores" — done properly: the O(n²d) pairwise distance
// matrix is computed once by the cache-blocked engine, each gradient keeps
// its distances-to-others as a sorted row, and when an iteration extracts a
// gradient the remaining rows just delete one value (binary search + shift)
// instead of being rebuilt and re-sorted. Scores stay bit-identical to the
// re-sorting implementation because each is the ascending sum of the same
// shrinking multiset. The coordinate-wise median/average pass runs on the
// shared blocked column engine. Setting Naive recomputes distances from
// scratch every iteration — kept for the ablation benchmark.
type Bulyan struct {
	// NumByzantine is f, the number of Byzantine workers tolerated.
	NumByzantine int
	// Naive disables the distance-matrix reuse optimisation.
	Naive bool
	// Sequential confines the blocked distance sweep and the coordinate-
	// wise pass to the calling goroutine (bit-identical output either way).
	Sequential bool
}

// NewBulyan returns a BULYAN rule tolerating f Byzantine workers, using
// MULTI-KRUM as the underlying selection rule.
func NewBulyan(f int) *Bulyan { return &Bulyan{NumByzantine: f} }

// Name implements GAR.
func (b *Bulyan) Name() string { return "bulyan" }

// F implements ByzantineInfo.
func (b *Bulyan) F() int { return b.NumByzantine }

// MinWorkers implements ByzantineInfo: BULYAN requires n ≥ 4f+3.
func (b *Bulyan) MinWorkers() int { return 4*b.NumByzantine + 3 }

// Theta returns the number of selection iterations for n workers: n−2f.
func (b *Bulyan) Theta(n int) int { return n - 2*b.NumByzantine }

// Beta returns the per-coordinate averaging width for n workers: θ−2f.
func (b *Bulyan) Beta(n int) int { return b.Theta(n) - 2*b.NumByzantine }

// Aggregate implements GAR.
func (b *Bulyan) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(b, grads)
}

// AggregateInto implements WorkspaceGAR.
func (b *Bulyan) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	sel, err := b.selectInto(ws, grads)
	if err != nil {
		return nil, err
	}
	picked := ws.ensurePicked(len(grads))
	for _, idx := range sel {
		//aggrevet:alloc appends into ensurePicked capacity; 0 steady-state allocs pinned by TestWorkspaceZeroSteadyStateAllocs
		picked = append(picked, grads[idx])
	}
	return b.coordinateAggregateInto(ws, picked, b.Beta(len(grads))), nil
}

// Select runs the θ = n−2f Multi-Krum extraction iterations and returns the
// indexes of the extracted gradients, in extraction order.
func (b *Bulyan) Select(grads []tensor.Vector) ([]int, error) {
	var ws Workspace
	return b.selectInto(&ws, grads)
}

// selectInto is Select on workspace buffers; the returned slice aliases ws.
func (b *Bulyan) selectInto(ws *Workspace, grads []tensor.Vector) ([]int, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	n := len(grads)
	f := b.NumByzantine
	if n < b.MinWorkers() {
		return nil, fmt.Errorf("%w: bulyan(f=%d) needs n >= %d, got %d",
			ErrTooFewWorkers, f, b.MinWorkers(), n)
	}
	theta := b.Theta(n)
	if b.Naive {
		return b.selectNaive(grads, theta)
	}

	// Distance matrix computed once; each gradient's distances to the
	// others are kept as a sorted row so iterations only read prefixes and
	// delete single values.
	dist := BlockedPairwiseSquaredDistances(grads, ws, b.Sequential)
	rows, active, selected := ws.ensureBulyan(n)
	for i := 0; i < n; i++ {
		r := rows[i][:0]
		for j := 0; j < n; j++ {
			if j != i {
				r = append(r, dist[i][j])
			}
		}
		tensor.SortFloats(r)
		rows[i] = r
	}
	for i := range active {
		active[i] = i
	}
	for len(selected) < theta {
		na := len(active)
		k := na - f - 2
		if k < 1 {
			// Fewer than f+3 candidates remain; Krum scoring is no
			// longer defined, so fall back to closest-to-centroid
			// ordering over cached distances (sum of all distances).
			k = na - 1
		}
		bestIdx, bestScore := -1, math.Inf(1)
		for ai, gi := range active {
			r := rows[gi]
			hi := k
			if hi > len(r) {
				hi = len(r)
			}
			var s float64
			for _, d := range r[:hi] {
				s += d
			}
			if math.IsNaN(s) {
				s = math.Inf(1)
			}
			// First candidate always seeds the selection so that an
			// all-+Inf field (every candidate poisoned) still breaks
			// ties lexicographically, exactly as selectNaive does.
			if bestIdx < 0 || s < bestScore ||
				(s == bestScore && lexLess(grads[gi], grads[active[bestIdx]])) {
				bestIdx, bestScore = ai, s
			}
		}
		gBest := active[bestIdx]
		selected = append(selected, gBest)
		active = append(active[:bestIdx], active[bestIdx+1:]...)
		// The extracted gradient leaves the active set: delete its
		// distance from every remaining sorted row. SquaredDistance
		// never yields NaN (it saturates to +Inf), so binary search over
		// the sorted row always finds the exact value.
		for _, gi := range active {
			r := rows[gi]
			v := dist[gi][gBest]
			pos := sort.SearchFloat64s(r, v)
			copy(r[pos:], r[pos+1:])
			rows[gi] = r[:len(r)-1]
		}
	}
	return selected, nil
}

// selectNaive is the unoptimised reference path: a fresh Krum (m=1) over the
// remaining vectors each iteration, recomputing all pairwise distances with
// the same blocked kernel as the optimised path (so the two paths see
// identical per-pair values and stay selection-equivalent).
func (b *Bulyan) selectNaive(grads []tensor.Vector, theta int) ([]int, error) {
	f := b.NumByzantine
	var ws Workspace
	remaining := make([]int, len(grads))
	for i := range remaining {
		remaining[i] = i
	}
	selected := make([]int, 0, theta)
	for len(selected) < theta {
		sub := make([]tensor.Vector, len(remaining))
		for i, idx := range remaining {
			sub[i] = grads[idx]
		}
		dist := BlockedPairwiseSquaredDistances(sub, &ws, b.Sequential)
		na := len(sub)
		k := na - f - 2
		if k < 1 {
			k = na - 1
		}
		scores := make([]float64, na)
		row := make([]float64, 0, na)
		for i := 0; i < na; i++ {
			row = row[:0]
			for j := 0; j < na; j++ {
				if j != i {
					row = append(row, dist[i][j])
				}
			}
			tensor.SortFloats(row)
			var s float64
			hi := k
			if hi > len(row) {
				hi = len(row)
			}
			for _, d := range row[:hi] {
				s += d
			}
			if math.IsNaN(s) {
				s = math.Inf(1)
			}
			scores[i] = s
		}
		best := 0
		for i := 1; i < na; i++ {
			if scores[i] < scores[best] ||
				(scores[i] == scores[best] && lexLess(sub[i], sub[best])) {
				best = i
			}
		}
		selected = append(selected, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return selected, nil
}

// lexLess orders vectors lexicographically, treating NaN as larger than any
// number. Score ties in the selection loops are broken with this ordering so
// that the extracted set does not depend on the order gradients arrived from
// the network — mutually-nearest pairs produce exactly tied Krum scores in
// the final Bulyan iteration (where the neighbour count reaches f−1).
func lexLess(a, b tensor.Vector) bool {
	for i := range a {
		av, bv := a[i], b[i]
		switch {
		case av == bv:
			continue
		case math.IsNaN(av):
			return false
		case math.IsNaN(bv):
			return true
		default:
			return av < bv
		}
	}
	return false
}

// coordinateAggregate performs the second BULYAN phase: for each coordinate,
// take the median of the selected vectors and average the beta values
// closest to it. Runs on a transient workspace; the hot path uses
// coordinateAggregateInto.
func (b *Bulyan) coordinateAggregate(picked []tensor.Vector, beta int) tensor.Vector {
	var ws Workspace
	return b.coordinateAggregateInto(&ws, picked, beta)
}

// coordinateAggregateInto runs the median/closest-average pass on the shared
// blocked column engine, tiled and parallel over coordinate ranges.
func (b *Bulyan) coordinateAggregateInto(ws *Workspace, picked []tensor.Vector, beta int) tensor.Vector {
	if beta < 1 {
		beta = 1
	}
	if beta > len(picked) {
		beta = len(picked)
	}
	out := ws.ensureOut(picked[0].Dim())
	ws.cols.Run(out, picked, beta, tensor.MeanAroundMedianKernel, !b.Sequential)
	return out
}
