package gar

import (
	"aggregathor/internal/tensor"
)

// Workspace is the reusable scratch arena of the aggregation hot path. The
// paper's Figure 4 shows aggregation eating 27–52% of each round at the
// Table-1 scale, and a large share of the Go kernels' cost was allocator
// traffic: a fresh n×n distance matrix, per-coordinate column buffers and
// index slices, and a fresh output vector on every Aggregate call.
//
// A Workspace owns all of those buffers: the pairwise distance matrix and
// its blocked partial accumulators, score and selection scratch, the
// column-pass tile engine, Bulyan's sorted score rows, and the output
// vector. Rules that implement WorkspaceGAR aggregate through it with zero
// steady-state heap allocations. The zero value is ready to use; buffers
// grow on demand and are retained.
//
// A Workspace is not safe for concurrent use; give each trainer (parameter
// server loop, socket cluster, benchmark goroutine) its own. The vector
// returned by AggregateInto aliases the workspace and is only valid until
// the next call — callers that retain it across rounds must Clone it.
type Workspace struct {
	distBacking []float64
	dist        [][]float64
	partials    []float64

	scores []float64
	row    []float64
	selIdx []int
	picked []tensor.Vector
	out    tensor.Vector

	cols tensor.ColumnEngine

	// Bulyan's incremental rescoring state: per-gradient sorted distance
	// rows plus the active/selected index lists.
	rowsBacking []float64
	rows        [][]float64
	active      []int
	selected    []int

	// Weiszfeld state for the geometric median: the finite-gradient filter
	// list and the two alternating iterate buffers.
	finite []tensor.Vector
	iterA  tensor.Vector
	iterB  tensor.Vector

	// Generic BULYAN's shrinking candidate list. Its inner rule aggregates
	// through a dedicated nested workspace (lazily allocated, then retained)
	// so the outer loop's state can never be clobbered by whichever rule
	// sits underneath — including another workspace-backed composite.
	remaining []tensor.Vector
	inner     *Workspace
}

// NewWorkspace returns an empty workspace. Equivalent to &Workspace{}; the
// constructor exists for call-site readability.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensureDist returns the n×n distance matrix, reusing the backing array.
func (ws *Workspace) ensureDist(n int) [][]float64 {
	if cap(ws.distBacking) < n*n {
		ws.distBacking = make([]float64, n*n)
	}
	if len(ws.dist) != n {
		ws.dist = make([][]float64, n)
		for i := range ws.dist {
			ws.dist[i] = ws.distBacking[i*n : (i+1)*n]
		}
	}
	return ws.dist
}

// ensurePartials returns a float scratch of the given length.
func (ws *Workspace) ensurePartials(n int) []float64 {
	if cap(ws.partials) < n {
		ws.partials = make([]float64, n)
	}
	return ws.partials[:n]
}

// ensureScores returns score scratch of length n plus a row buffer.
func (ws *Workspace) ensureScores(n int) (scores, row []float64) {
	if cap(ws.scores) < n {
		ws.scores = make([]float64, n)
		ws.row = make([]float64, n)
	}
	return ws.scores[:n], ws.row[:n]
}

// ensureSelIdx returns index scratch with capacity n.
func (ws *Workspace) ensureSelIdx(n int) []int {
	if cap(ws.selIdx) < n {
		ws.selIdx = make([]int, n)
	}
	return ws.selIdx[:n]
}

// ensurePicked returns an empty vector list with capacity n.
func (ws *Workspace) ensurePicked(n int) []tensor.Vector {
	if cap(ws.picked) < n {
		ws.picked = make([]tensor.Vector, 0, n)
	}
	return ws.picked[:0]
}

// ensureOut returns the d-dimensional output vector (contents undefined).
func (ws *Workspace) ensureOut(d int) tensor.Vector {
	if cap(ws.out) < d {
		ws.out = tensor.NewVector(d)
	}
	return ws.out[:d]
}

// ensureFinite returns an empty vector list with capacity n for the
// finite-gradient filter.
func (ws *Workspace) ensureFinite(n int) []tensor.Vector {
	if cap(ws.finite) < n {
		ws.finite = make([]tensor.Vector, 0, n)
	}
	return ws.finite[:0]
}

// ensureIter returns the two d-dimensional Weiszfeld iterate buffers
// (contents undefined).
func (ws *Workspace) ensureIter(d int) (a, b tensor.Vector) {
	if cap(ws.iterA) < d {
		ws.iterA = tensor.NewVector(d)
		ws.iterB = tensor.NewVector(d)
	}
	return ws.iterA[:d], ws.iterB[:d]
}

// ensureRemaining returns an empty vector list with capacity n for generic
// BULYAN's shrinking candidate set.
func (ws *Workspace) ensureRemaining(n int) []tensor.Vector {
	if cap(ws.remaining) < n {
		ws.remaining = make([]tensor.Vector, 0, n)
	}
	return ws.remaining[:0]
}

// ensureInner returns the nested workspace used for a composite rule's inner
// aggregation, allocating it on first use.
func (ws *Workspace) ensureInner() *Workspace {
	if ws.inner == nil {
		ws.inner = NewWorkspace()
	}
	return ws.inner
}

// ensureBulyan returns the sorted-row state for n gradients: n empty rows
// of capacity n, the active index list (length n, uninitialised) and the
// empty selected list.
func (ws *Workspace) ensureBulyan(n int) (rows [][]float64, active, selected []int) {
	if cap(ws.rowsBacking) < n*n {
		ws.rowsBacking = make([]float64, n*n)
	}
	if len(ws.rows) != n {
		ws.rows = make([][]float64, n)
	}
	for i := range ws.rows {
		ws.rows[i] = ws.rowsBacking[i*n : i*n : (i+1)*n]
	}
	if cap(ws.active) < n {
		ws.active = make([]int, n)
		ws.selected = make([]int, n)
	}
	return ws.rows, ws.active[:n], ws.selected[:0]
}

// WorkspaceGAR is implemented by rules whose kernels run through a
// Workspace. AggregateInto must behave exactly like Aggregate — same
// validation, bit-identical output — except that the returned vector aliases
// the workspace instead of being freshly allocated.
type WorkspaceGAR interface {
	GAR
	AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error)
}

// AggregateInto aggregates through the rule's workspace kernels when the
// rule implements WorkspaceGAR, falling back to the plain allocating
// Aggregate otherwise (or when ws is nil). The returned vector may alias ws.
func AggregateInto(ws *Workspace, rule GAR, grads []tensor.Vector) (tensor.Vector, error) {
	if ws != nil {
		if wg, ok := rule.(WorkspaceGAR); ok {
			return wg.AggregateInto(ws, grads)
		}
	}
	return rule.Aggregate(grads)
}

// aggregateFresh runs rule's workspace kernel on a transient workspace and
// returns the (freshly allocated, caller-owned) result: the implementation
// behind the plain Aggregate methods of the workspace-backed rules.
func aggregateFresh(rule WorkspaceGAR, grads []tensor.Vector) (tensor.Vector, error) {
	var ws Workspace
	return rule.AggregateInto(&ws, grads)
}
