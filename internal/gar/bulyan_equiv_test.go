package gar

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

// randomGrads draws n random gradients of dimension d. With ties, some
// vectors are exact duplicates (mutually-nearest pairs produce exactly tied
// Krum scores — the case the lexicographic tie-break exists for), and with
// poison, some vectors carry non-finite coordinates.
func randomGrads(rng *rand.Rand, n, d int, ties bool, poison int) []tensor.Vector {
	grads := make([]tensor.Vector, n)
	for i := range grads {
		v := tensor.NewVector(d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		grads[i] = v
	}
	if ties {
		for i := 1; i < n; i += 3 {
			grads[i] = grads[i-1].Clone()
		}
	}
	for i := 0; i < poison && i < n; i++ {
		v := grads[n-1-i]
		for j := range v {
			switch rng.Intn(3) {
			case 0:
				v[j] = math.NaN()
			case 1:
				v[j] = math.Inf(1)
			default:
				v[j] = math.Inf(-1)
			}
		}
	}
	return grads
}

// TestBulyanSelectMatchesNaive drives the optimised distance-reuse selection
// and the reference from-scratch selection across randomized (n, f, d) cases
// and asserts they extract identical index sequences — including under exact
// ties and non-finite poisoning.
func TestBulyanSelectMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := 0
	for _, f := range []int{0, 1, 2} {
		for _, extra := range []int{0, 1, 3, 6} {
			n := 4*f + 3 + extra
			for _, d := range []int{1, 3, 17} {
				for _, ties := range []bool{false, true} {
					for _, poison := range []int{0, f, n} {
						for rep := 0; rep < 3; rep++ {
							cases++
							grads := randomGrads(rng, n, d, ties, poison)
							b := NewBulyan(f)
							got, err := b.Select(grads)
							if err != nil {
								t.Fatalf("n=%d f=%d d=%d: Select: %v", n, f, d, err)
							}
							want, err := b.selectNaive(grads, b.Theta(n))
							if err != nil {
								t.Fatalf("n=%d f=%d d=%d: selectNaive: %v", n, f, d, err)
							}
							if len(got) != len(want) {
								t.Fatalf("n=%d f=%d d=%d ties=%v poison=%d: %d vs %d selections",
									n, f, d, ties, poison, len(got), len(want))
							}
							for i := range got {
								if got[i] != want[i] {
									t.Fatalf("n=%d f=%d d=%d ties=%v poison=%d: selection %d: optimised %v, naive %v",
										n, f, d, ties, poison, i, got, want)
								}
							}
						}
					}
				}
			}
		}
	}
	if cases < 100 {
		t.Fatalf("only %d cases exercised", cases)
	}
}

// TestBulyanNaiveFlagAggregates sanity-checks that the Naive flag routes
// through selectNaive and produces the same aggregate.
func TestBulyanNaiveFlagAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grads := randomGrads(rng, 11, 5, true, 2)
	fast := NewBulyan(2)
	naive := &Bulyan{NumByzantine: 2, Naive: true}
	a, err := fast.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	b, err := naive.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("coordinate %d: optimised %v, naive %v", i, a[i], b[i])
		}
	}
}
