package gar

import (
	"fmt"
	"sort"
	"sync"
)

// Factory builds a GAR from the Byzantine tolerance f requested on the
// command line (mirroring AggregaThor's --aggregator flag; rules that ignore
// f, like average, discard it).
type Factory func(f int) (GAR, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named GAR factory. Registering an empty name or a
// duplicate name panics: both indicate a programming error at init time.
// Mirrors the paper's "adding a new GAR boils down to adding a script to a
// directory" extensibility claim.
func Register(name string, factory Factory) {
	if name == "" || factory == nil {
		panic("gar: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("gar: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New builds the named GAR with Byzantine tolerance f.
func New(name string, f int) (GAR, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("gar: unknown aggregator %q (available: %v)", name, Names())
	}
	return factory(f)
}

// Names returns the sorted list of registered GAR names.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("average", func(int) (GAR, error) { return Average{}, nil })
	Register("selective-average", func(int) (GAR, error) { return SelectiveAverage{}, nil })
	Register("median", func(int) (GAR, error) { return Median{}, nil })
	Register("trimmed-mean", func(f int) (GAR, error) {
		if f < 0 {
			return nil, fmt.Errorf("gar: trimmed-mean requires f >= 0, got %d", f)
		}
		return TrimmedMean{Beta: f}, nil
	})
	Register("krum", func(f int) (GAR, error) {
		if f < 0 {
			return nil, fmt.Errorf("gar: krum requires f >= 0, got %d", f)
		}
		return NewKrum(f), nil
	})
	Register("multi-krum", func(f int) (GAR, error) {
		if f < 0 {
			return nil, fmt.Errorf("gar: multi-krum requires f >= 0, got %d", f)
		}
		return NewMultiKrum(f), nil
	})
	Register("bulyan", func(f int) (GAR, error) {
		if f < 0 {
			return nil, fmt.Errorf("gar: bulyan requires f >= 0, got %d", f)
		}
		return NewBulyan(f), nil
	})
}
