// Package gar implements the gradient aggregation rules (GARs) at the heart
// of the AggregaThor paper: the weakly Byzantine-resilient MULTI-KRUM rule,
// the strongly Byzantine-resilient BULYAN rule, and the comparison baselines
// (plain averaging, coordinate-wise median, trimmed mean, selective
// averaging).
//
// A GAR maps the n gradient estimates submitted by the workers at one
// synchronous step to the single gradient the parameter server applies
// (Equation 4 in the paper). Byzantine workers may submit arbitrary vectors,
// including vectors containing NaN or ±Inf coordinates; every rule in this
// package is total over such inputs — non-finite coordinates saturate
// distances to +Inf so poisoned gradients rank as maximally distant rather
// than derailing the selection.
package gar

import (
	"errors"
	"fmt"

	"aggregathor/internal/tensor"
)

// GAR is a gradient aggregation rule. Aggregate must not mutate the input
// gradients and must return a fresh vector.
type GAR interface {
	// Name returns the registry name of the rule (e.g. "multi-krum").
	Name() string
	// Aggregate combines n worker gradients into the applied gradient.
	// It returns an error when the input set violates the rule's
	// requirements (e.g. n too small for the declared f).
	Aggregate(grads []tensor.Vector) (tensor.Vector, error)
}

// ByzantineInfo is implemented by rules that tolerate a declared number of
// Byzantine workers.
type ByzantineInfo interface {
	// F returns the number of Byzantine workers the rule was configured
	// to tolerate.
	F() int
	// MinWorkers returns the smallest n for which the rule is defined at
	// its configured f.
	MinWorkers() int
}

// ErrTooFewWorkers is wrapped by Aggregate when n is below the rule's
// requirement for its configured f.
var ErrTooFewWorkers = errors.New("gar: too few workers for configured f")

// ErrNoGradients is returned when Aggregate is called with no gradients.
var ErrNoGradients = errors.New("gar: no gradients to aggregate")

func checkUniform(grads []tensor.Vector) error {
	if len(grads) == 0 {
		return ErrNoGradients
	}
	d := grads[0].Dim()
	for i, g := range grads {
		if g.Dim() != d {
			return fmt.Errorf("gar: gradient %d has dimension %d, want %d", i, g.Dim(), d)
		}
	}
	return nil
}

// Average is the non-Byzantine-resilient baseline GAR: the coordinate-wise
// mean of all submitted gradients. This mirrors vanilla TensorFlow's
// tf.train.SyncReplicasOptimizer behaviour.
type Average struct{}

// Name implements GAR.
func (Average) Name() string { return "average" }

// Aggregate implements GAR.
func (a Average) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(a, grads)
}

// AggregateInto implements WorkspaceGAR.
func (Average) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	out := ws.ensureOut(grads[0].Dim())
	tensor.MeanInto(out, grads)
	return out, nil
}

// SelectiveAverage is the §3.3 "selective averaging" rule: a coordinate-wise
// mean that skips NaN coordinates. It tolerates lossy transports that mark
// lost coordinates with NaN, but is NOT Byzantine-resilient.
type SelectiveAverage struct{}

// Name implements GAR.
func (SelectiveAverage) Name() string { return "selective-average" }

// Aggregate implements GAR.
func (s SelectiveAverage) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(s, grads)
}

// AggregateInto implements WorkspaceGAR: the NaN-skipping mean runs on the
// blocked column engine, tiled and parallel over coordinate ranges.
func (SelectiveAverage) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	out := ws.ensureOut(grads[0].Dim())
	ws.cols.Run(out, grads, 0, tensor.NaNMeanKernel, true)
	return out, nil
}

// Median is the coordinate-wise median rule evaluated in the paper as the
// alternative weakly Byzantine-resilient GAR (Xie et al. 2018). It uses only
// "one gradient" of information per coordinate, which raises estimator
// variance — the cause of its small-batch convergence failure in Figure 3.
type Median struct{}

// Name implements GAR.
func (Median) Name() string { return "median" }

// Aggregate implements GAR.
func (m Median) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(m, grads)
}

// AggregateInto implements WorkspaceGAR: the per-coordinate median runs as
// a selection (not a sort) on the blocked column engine.
func (Median) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	out := ws.ensureOut(grads[0].Dim())
	ws.cols.Run(out, grads, 0, tensor.MedianKernel, true)
	return out, nil
}

// TrimmedMean is the coordinate-wise trimmed mean rule (Yin et al. 2018):
// drop the b largest and b smallest values per coordinate, average the rest.
type TrimmedMean struct {
	// Beta is the per-side trim count b; the rule requires n > 2b.
	Beta int
}

// Name implements GAR.
func (t TrimmedMean) Name() string { return "trimmed-mean" }

// F implements ByzantineInfo: a trim of b per side tolerates b Byzantine
// workers.
func (t TrimmedMean) F() int { return t.Beta }

// MinWorkers implements ByzantineInfo.
func (t TrimmedMean) MinWorkers() int { return 2*t.Beta + 1 }

// Aggregate implements GAR.
func (t TrimmedMean) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(t, grads)
}

// AggregateInto implements WorkspaceGAR: the per-coordinate trim runs as a
// selection (not a sort) on the blocked column engine.
func (t TrimmedMean) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	if len(grads) < t.MinWorkers() {
		return nil, fmt.Errorf("%w: trimmed-mean(b=%d) needs n >= %d, got %d",
			ErrTooFewWorkers, t.Beta, t.MinWorkers(), len(grads))
	}
	out := ws.ensureOut(grads[0].Dim())
	ws.cols.Run(out, grads, t.Beta, tensor.TrimmedMeanKernel, true)
	return out, nil
}
