package gar

import (
	"math"
	"runtime"
	"testing"

	"aggregathor/internal/tensor"
)

// workspaceRules enumerates every WorkspaceGAR with an f that is valid at
// n=11 workers.
func workspaceRules(t *testing.T) []GAR {
	t.Helper()
	rules := []GAR{
		Average{},
		SelectiveAverage{},
		Median{},
		TrimmedMean{Beta: 2},
		NewMeanAroundMedian(2),
		NewKrum(2),
		NewMultiKrum(2),
		NewBulyan(2),
		NewGeoMedian(2),
		NewGenericBulyan(Median{}, 2),
		NewGenericBulyan(NewGeoMedian(2), 2),
	}
	for _, r := range rules {
		if _, ok := r.(WorkspaceGAR); !ok {
			t.Fatalf("%s does not implement WorkspaceGAR", r.Name())
		}
	}
	return rules
}

func vecEq(a, b tensor.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] && !(math.IsNaN(a[i]) && math.IsNaN(b[i])) {
			return false
		}
	}
	return true
}

// TestAggregateIntoMatchesAggregate: the workspace path must be
// bit-identical to the fresh-allocation path for every rule, over clean,
// sparsely-poisoned and densely-poisoned inputs — while the SAME workspace
// is reused across all rules and cases, which is exactly how the trainer
// loops drive it.
func TestAggregateIntoMatchesAggregate(t *testing.T) {
	ws := NewWorkspace()
	for _, rule := range workspaceRules(t) {
		for _, tc := range []struct {
			seed int64
			n, d int
			pBad float64
		}{
			{21, 11, 257, 0},
			{22, 11, 1024, 0.02},
			{23, 11, 100, 0.7},
			{24, 15, 4097, 0},
		} {
			grads := randVectors(tc.seed, tc.n, tc.d, tc.pBad)
			want, errWant := rule.Aggregate(grads)
			got, errGot := AggregateInto(ws, rule, grads)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("%s seed %d: error mismatch: %v vs %v", rule.Name(), tc.seed, errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			if !vecEq(got, want) {
				t.Fatalf("%s seed %d: workspace aggregate diverges from plain Aggregate", rule.Name(), tc.seed)
			}
		}
	}
}

// plainAverage is a deliberately workspace-less rule: it implements GAR but
// not WorkspaceGAR, standing in for third-party rules that only provide the
// allocating path (every built-in rule now has a workspace kernel).
type plainAverage struct{}

func (plainAverage) Name() string { return "plain-average" }

func (plainAverage) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	return tensor.Mean(grads), nil
}

// TestAggregateIntoFallback: rules without workspace kernels (and nil
// workspaces) must route through plain Aggregate.
func TestAggregateIntoFallback(t *testing.T) {
	grads := randVectors(25, 11, 64, 0)
	plain := plainAverage{}
	want, err := plain.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AggregateInto(NewWorkspace(), plain, grads)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEq(got, want) {
		t.Fatal("fallback path diverges from Aggregate")
	}
	got, err = AggregateInto(nil, Median{}, grads)
	if err != nil {
		t.Fatal(err)
	}
	want, _ = Median{}.Aggregate(grads)
	if !vecEq(got, want) {
		t.Fatal("nil-workspace path diverges from Aggregate")
	}
}

// TestWorkspaceZeroSteadyStateAllocs pins the tentpole allocation claim:
// once warm, a workspace-backed aggregation performs zero heap allocations.
// The dimensions sit below the parallel thresholds — the sequential kernels
// are the steady-state contract; parallel sweeps additionally pay O(workers)
// goroutine spawns.
func TestWorkspaceZeroSteadyStateAllocs(t *testing.T) {
	const n, d = 11, 2048
	grads := randVectors(26, n, d, 0)
	for _, rule := range workspaceRules(t) {
		ws := NewWorkspace()
		wg := rule.(WorkspaceGAR)
		if _, err := wg.AggregateInto(ws, grads); err != nil { // warm the arena
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(10, func() {
			if _, err := wg.AggregateInto(ws, grads); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per warm workspace aggregation, want 0", rule.Name(), allocs)
		}
	}
}

// TestWorkspaceReuseAcrossShapes: a single workspace must survive changing
// n and d between calls (the TCP/UDP trainers see varying survivor counts
// every round).
func TestWorkspaceReuseAcrossShapes(t *testing.T) {
	ws := NewWorkspace()
	rule := NewMultiKrum(1)
	for _, shape := range []struct{ n, d int }{
		{7, 100}, {11, 5000}, {5, 10}, {19, 2500}, {7, 100},
	} {
		grads := randVectors(int64(27+shape.n), shape.n, shape.d, 0.01)
		want, err := rule.Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AggregateInto(ws, rule, grads)
		if err != nil {
			t.Fatal(err)
		}
		if !vecEq(got, want) {
			t.Fatalf("n=%d d=%d: reused workspace diverges", shape.n, shape.d)
		}
	}
}

// TestWorkspaceRulesGOMAXPROCSParity: every parallel kernel path (blocked
// distances, column engine) must produce bit-identical aggregates at
// GOMAXPROCS=1 and GOMAXPROCS=8, above the parallel thresholds.
func TestWorkspaceRulesGOMAXPROCSParity(t *testing.T) {
	const n, d = 19, 2*distParallelMin + 13
	grads := randVectors(28, n, d, 0.001)
	rules := []GAR{Median{}, TrimmedMean{Beta: 4}, NewMeanAroundMedian(4),
		SelectiveAverage{}, NewMultiKrum(4), NewBulyan(4),
		NewGeoMedian(4), NewGenericBulyan(Median{}, 4)}
	for _, rule := range rules {
		run := func(procs int) tensor.Vector {
			old := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(old)
			out, err := AggregateInto(NewWorkspace(), rule, grads)
			if err != nil {
				t.Fatal(err)
			}
			return out.Clone()
		}
		a, b := run(1), run(8)
		if !vecEq(a, b) {
			t.Errorf("%s: aggregate depends on GOMAXPROCS", rule.Name())
		}
	}
}

// TestMeanAroundMedianInfiniteMiddles: a column whose two middle ranks are
// -Inf and +Inf makes the median itself NaN (midpoint of opposite
// infinities) with no NaN in the input; the kernel must emit the null
// update, as the sort-based implementation did, not propagate NaN into the
// parameters.
func TestMeanAroundMedianInfiniteMiddles(t *testing.T) {
	inf := math.Inf(1)
	grads := []tensor.Vector{{-inf}, {-inf}, {inf}, {inf}}
	for _, rule := range []GAR{NewMeanAroundMedian(1), NewGenericBulyan(Median{}, 0)} {
		out, err := rule.Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 0 {
			t.Errorf("%s: coordinate with ±Inf middles aggregated to %v, want 0", rule.Name(), out[0])
		}
	}
}

// TestBulyanIncrementalMatchesNaive: the incremental sorted-row rescoring
// must extract exactly the same gradients as the naive re-distance path.
func TestBulyanIncrementalMatchesNaive(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		n, f int
		pBad float64
	}{
		{29, 7, 1, 0},
		{30, 11, 2, 0},
		{31, 19, 4, 0},
		{32, 11, 2, 0.05},
		{33, 11, 2, 0.9},
	} {
		grads := randVectors(tc.seed, tc.n, 300, tc.pBad)
		opt := NewBulyan(tc.f)
		naive := &Bulyan{NumByzantine: tc.f, Naive: true}
		a, err := opt.Select(grads)
		if err != nil {
			t.Fatal(err)
		}
		b, err := naive.Select(grads)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("seed %d: selection sizes differ: %v vs %v", tc.seed, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: incremental selection %v != naive %v", tc.seed, a, b)
			}
		}
	}
}
