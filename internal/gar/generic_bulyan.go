package gar

import (
	"fmt"
	"math"

	"aggregathor/internal/tensor"
)

// GenericBulyan is the paper's general BULYAN construction: "robustly
// aggregates n vectors by iterating several times over a second (underlying)
// Byzantine-resilient GAR. In each loop, BULYAN extracts the gradient(s)
// selected by the underlying GAR" — any weakly Byzantine-resilient rule can
// sit underneath, not just MULTI-KRUM.
//
// Each of the θ = n−2f iterations runs Inner on the remaining vectors and
// moves the remaining vector closest to Inner's output into the selection
// set; the second phase is the same coordinate-wise median/closest-average
// as the optimised Bulyan. The optimised implementation (type Bulyan)
// exploits MULTI-KRUM's structure to reuse the distance matrix; this generic
// form trades that for composability and is benchmarked against it in the
// ablation suite.
type GenericBulyan struct {
	// Inner is the underlying weakly Byzantine-resilient GAR.
	Inner GAR
	// NumByzantine is f; requires n ≥ 4f+3.
	NumByzantine int
}

// NewGenericBulyan wraps inner in the generic BULYAN loop.
func NewGenericBulyan(inner GAR, f int) *GenericBulyan {
	return &GenericBulyan{Inner: inner, NumByzantine: f}
}

// Name implements GAR.
func (b *GenericBulyan) Name() string {
	return fmt.Sprintf("bulyan[%s]", b.Inner.Name())
}

// F implements ByzantineInfo.
func (b *GenericBulyan) F() int { return b.NumByzantine }

// MinWorkers implements ByzantineInfo.
func (b *GenericBulyan) MinWorkers() int { return 4*b.NumByzantine + 3 }

// Aggregate implements GAR.
func (b *GenericBulyan) Aggregate(grads []tensor.Vector) (tensor.Vector, error) {
	return aggregateFresh(b, grads)
}

// AggregateInto implements WorkspaceGAR. The inner rule aggregates through
// the workspace's nested inner workspace, so the outer loop's shrinking
// candidate list and selection survive whatever buffers the underlying rule
// touches; each proposal aliases that inner workspace and is consumed before
// the next iteration overwrites it.
func (b *GenericBulyan) AggregateInto(ws *Workspace, grads []tensor.Vector) (tensor.Vector, error) {
	if b.Inner == nil {
		return nil, fmt.Errorf("gar: generic bulyan has no underlying GAR")
	}
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	n := len(grads)
	f := b.NumByzantine
	if n < b.MinWorkers() {
		return nil, fmt.Errorf("%w: bulyan[%s](f=%d) needs n >= %d, got %d",
			ErrTooFewWorkers, b.Inner.Name(), f, b.MinWorkers(), n)
	}
	theta := n - 2*f
	remaining := ws.ensureRemaining(n)
	//aggrevet:alloc appends into ensureRemaining capacity; 0 steady-state allocs pinned by TestWorkspaceZeroSteadyStateAllocs
	remaining = append(remaining, grads...)
	selected := ws.ensurePicked(theta)
	inner := ws.ensureInner()
	for len(selected) < theta {
		proposal, err := AggregateInto(inner, b.Inner, remaining)
		if err != nil {
			// The shrinking set may fall below Inner's requirement
			// (e.g. multi-krum needs 2f+3); fall back to the
			// remaining set's coordinate median as the proposal,
			// which stays Byzantine-bounded.
			proposal = inner.ensureOut(grads[0].Dim())
			inner.cols.Run(proposal, remaining, 0, tensor.MedianKernel, true)
		}
		best, bestDist := -1, math.Inf(1)
		for i, v := range remaining {
			d := tensor.SquaredDistance(v, proposal)
			if d < bestDist || (d == bestDist && best >= 0 && lexLess(v, remaining[best])) {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			best = 0 // every distance +Inf: all-poisoned remainder
		}
		//aggrevet:alloc appends into ensurePicked capacity; 0 steady-state allocs pinned by TestWorkspaceZeroSteadyStateAllocs
		selected = append(selected, remaining[best])
		//aggrevet:alloc element removal: the append writes into remaining's own backing array and never grows it
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	beta := theta - 2*f
	//aggrevet:alloc stack value receiver, never escapes (pinned by the -escape baseline)
	helper := Bulyan{NumByzantine: f}
	return helper.coordinateAggregateInto(ws, selected, beta), nil
}
