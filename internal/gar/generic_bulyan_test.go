package gar

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

func TestGenericBulyanOverMultiKrum(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	n, f, d := 19, 4, 16
	grads := honestCloud(rng, n-f, d, constVec(d, 1), 0.1)
	for i := 0; i < f; i++ {
		grads = append(grads, constVec(d, -1e8))
	}
	gb := NewGenericBulyan(NewMultiKrum(f), f)
	out, err := gb.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		if math.Abs(out[j]-1) > 0.5 {
			t.Fatalf("coord %d dragged to %v", j, out[j])
		}
	}
}

func TestGenericBulyanOverMedian(t *testing.T) {
	// The paper's composability claim: any weak GAR can sit underneath.
	rng := rand.New(rand.NewSource(71))
	n, f, d := 11, 2, 8
	grads := honestCloud(rng, n-f, d, constVec(d, 0.5), 0.05)
	for i := 0; i < f; i++ {
		grads = append(grads, constVec(d, 1e7))
	}
	gb := NewGenericBulyan(Median{}, f)
	out, err := gb.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		if math.Abs(out[j]-0.5) > 0.3 {
			t.Fatalf("coord %d dragged to %v", j, out[j])
		}
	}
}

func TestGenericBulyanOverGeoMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	n, f, d := 11, 2, 8
	grads := honestCloud(rng, n-f, d, constVec(d, -1), 0.05)
	for i := 0; i < f; i++ {
		grads = append(grads, constVec(d, 1e7))
	}
	gb := NewGenericBulyan(NewGeoMedian(f), f)
	out, err := gb.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		if math.Abs(out[j]+1) > 0.3 {
			t.Fatalf("coord %d dragged to %v", j, out[j])
		}
	}
}

func TestGenericBulyanRequirements(t *testing.T) {
	gb := NewGenericBulyan(NewMultiKrum(1), 1) // needs n >= 7
	grads := []tensor.Vector{{1}, {2}, {3}}
	if _, err := gb.Aggregate(grads); !errors.Is(err, ErrTooFewWorkers) {
		t.Fatalf("want ErrTooFewWorkers, got %v", err)
	}
	empty := &GenericBulyan{NumByzantine: 0}
	if _, err := empty.Aggregate(grads); err == nil {
		t.Fatal("nil inner GAR accepted")
	}
}

func TestGenericBulyanNaNTolerant(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n, f, d := 7, 1, 6
	grads := honestCloud(rng, n-f, d, constVec(d, 1), 0.05)
	grads = append(grads, constVec(d, math.NaN()))
	gb := NewGenericBulyan(NewMultiKrum(f), f)
	out, err := gb.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsFinite() {
		t.Fatalf("non-finite output: %v", out)
	}
}

func TestGenericBulyanCloseToOptimizedBulyan(t *testing.T) {
	// Same phase-2 over (possibly different) extracted sets: on a clean
	// homogeneous cloud the two outputs must land near the same point.
	rng := rand.New(rand.NewSource(74))
	n, f, d := 19, 4, 10
	grads := honestCloud(rng, n, d, constVec(d, 0), 0.5)
	a, err := NewGenericBulyan(NewMultiKrum(f), f).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBulyan(f).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if dist := tensor.Distance(a, b); dist > 1.0 {
		t.Fatalf("generic and optimized bulyan far apart: %v", dist)
	}
}

func TestGenericBulyanName(t *testing.T) {
	gb := NewGenericBulyan(Median{}, 1)
	if gb.Name() != "bulyan[median]" {
		t.Fatalf("name %q", gb.Name())
	}
	if gb.MinWorkers() != 7 || gb.F() != 1 {
		t.Fatal("byzantine info wrong")
	}
}
