package gar

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

// propertyCase binds one registry rule to a cluster shape every rule in the
// registry can operate at: n = 11, f = 2 (bulyan's 4f+3 floor).
type propertyCase struct {
	name string
	rule GAR
	// poison is how many Byzantine inputs the rule is expected to absorb
	// without emitting non-finite coordinates. Rules exposing ByzantineInfo
	// declare it themselves; coordinate-wise median tolerates any minority;
	// plain averaging and NaN-skipping averaging tolerate none (averaging
	// is the paper's non-resilient baseline by design).
	poison int
	// nanOnly restricts the poison payload to NaN (selective-average skips
	// NaN by contract but has no defence against ±Inf).
	nanOnly bool
}

const (
	propN = 11
	propF = 2
	propD = 13
)

func propertyCases(t *testing.T) []propertyCase {
	t.Helper()
	var cases []propertyCase
	for _, name := range Names() {
		rule, err := New(name, propF)
		if err != nil {
			t.Fatalf("building %s(f=%d): %v", name, propF, err)
		}
		c := propertyCase{name: name, rule: rule}
		if info, ok := rule.(ByzantineInfo); ok {
			if min := info.MinWorkers(); min > propN {
				t.Fatalf("%s(f=%d) needs %d workers, property grid has %d", name, propF, min, propN)
			}
			c.poison = info.F()
		}
		switch name {
		case "median":
			c.poison = propF // any minority of poisoned columns
		case "selective-average":
			c.poison = propF
			c.nanOnly = true
		}
		cases = append(cases, c)
	}
	if len(cases) < 7 {
		t.Fatalf("registry shrank to %d rules", len(cases))
	}
	return cases
}

// honestGrads draws n finite random gradients.
func honestGrads(rng *rand.Rand, n, d int) []tensor.Vector {
	out := make([]tensor.Vector, n)
	for i := range out {
		v := tensor.NewVector(d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// almostEqual compares coordinates with a relative tolerance: selection rules
// are bit-exact under permutation, but rules that average accept reordered
// floating-point summation.
func almostEqual(a, b tensor.Vector) bool {
	if a.Dim() != b.Dim() {
		return false
	}
	for i := range a {
		diff := math.Abs(a[i] - b[i])
		scale := math.Max(1, math.Max(math.Abs(a[i]), math.Abs(b[i])))
		if diff > 1e-9*scale {
			return false
		}
	}
	return true
}

// TestRegistryPermutationInvariance: the aggregate may not depend on the
// order gradients arrived from the network.
func TestRegistryPermutationInvariance(t *testing.T) {
	for _, tc := range propertyCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			for rep := 0; rep < 5; rep++ {
				grads := honestGrads(rng, propN, propD)
				base, err := tc.rule.Aggregate(grads)
				if err != nil {
					t.Fatal(err)
				}
				perm := make([]tensor.Vector, propN)
				for i, p := range rng.Perm(propN) {
					perm[i] = grads[p]
				}
				permuted, err := tc.rule.Aggregate(perm)
				if err != nil {
					t.Fatal(err)
				}
				if !almostEqual(base, permuted) {
					t.Fatalf("rep %d: aggregate changed under permutation\n base %v\n perm %v", rep, base, permuted)
				}
			}
		})
	}
}

// TestRegistryUnanimity: when every worker submits the same gradient, the
// rule must return (numerically) that gradient.
func TestRegistryUnanimity(t *testing.T) {
	for _, tc := range propertyCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(202))
			g := tensor.NewVector(propD)
			for j := range g {
				g[j] = rng.NormFloat64() * 3
			}
			grads := make([]tensor.Vector, propN)
			for i := range grads {
				grads[i] = g.Clone()
			}
			out, err := tc.rule.Aggregate(grads)
			if err != nil {
				t.Fatal(err)
			}
			if !almostEqual(out, g) {
				t.Fatalf("unanimous input not returned:\n want %v\n got  %v", g, out)
			}
			// The input gradients must not have been mutated.
			for i, v := range grads {
				for j := range v {
					if v[j] != g[j] {
						t.Fatalf("input gradient %d mutated at coordinate %d", i, j)
					}
				}
			}
		})
	}
}

// TestRegistryNonFiniteContainment: with up to the rule's tolerated count of
// NaN/±Inf-poisoned inputs, no non-finite coordinate may reach the output.
func TestRegistryNonFiniteContainment(t *testing.T) {
	payloads := map[string]func(rng *rand.Rand) float64{
		"nan":  func(*rand.Rand) float64 { return math.NaN() },
		"+inf": func(*rand.Rand) float64 { return math.Inf(1) },
		"-inf": func(*rand.Rand) float64 { return math.Inf(-1) },
		"mixed": func(rng *rand.Rand) float64 {
			switch rng.Intn(3) {
			case 0:
				return math.NaN()
			case 1:
				return math.Inf(1)
			default:
				return math.Inf(-1)
			}
		},
	}
	for _, tc := range propertyCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			for payloadName, payload := range payloads {
				if tc.nanOnly && payloadName != "nan" {
					continue
				}
				rng := rand.New(rand.NewSource(303))
				for rep := 0; rep < 3; rep++ {
					grads := honestGrads(rng, propN, propD)
					for i := 0; i < tc.poison; i++ {
						v := grads[propN-1-i]
						for j := range v {
							v[j] = payload(rng)
						}
					}
					out, err := tc.rule.Aggregate(grads)
					if err != nil {
						t.Fatalf("payload %s rep %d: %v", payloadName, rep, err)
					}
					if !out.IsFinite() {
						t.Fatalf("payload %s rep %d (%d poisoned of %d): non-finite output %v",
							payloadName, rep, tc.poison, propN, out)
					}
				}
			}
		})
	}
}
