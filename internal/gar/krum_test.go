package gar

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aggregathor/internal/tensor"
)

func TestMultiKrumRequiresEnoughWorkers(t *testing.T) {
	mk := NewMultiKrum(4) // needs n >= 11
	grads := make([]tensor.Vector, 10)
	for i := range grads {
		grads[i] = tensor.Vector{1}
	}
	if _, err := mk.Aggregate(grads); !errors.Is(err, ErrTooFewWorkers) {
		t.Fatalf("want ErrTooFewWorkers, got %v", err)
	}
}

func TestMultiKrumEffectiveM(t *testing.T) {
	mk := NewMultiKrum(4)
	if got := mk.EffectiveM(19); got != 13 { // n-f-2 = 19-4-2
		t.Fatalf("EffectiveM(19) = %d, want 13", got)
	}
	mk.M = 5
	if got := mk.EffectiveM(19); got != 5 {
		t.Fatalf("explicit M: got %d, want 5", got)
	}
}

func TestMultiKrumRejectsOversizedM(t *testing.T) {
	mk := &MultiKrum{NumByzantine: 1, M: 10} // n=7 allows m <= 4
	grads := make([]tensor.Vector, 7)
	for i := range grads {
		grads[i] = tensor.Vector{float64(i)}
	}
	if _, err := mk.Aggregate(grads); err == nil {
		t.Fatal("want error for m > n-f-2")
	}
}

// With f Byzantine gradients placed far away, MULTI-KRUM must never select
// them (the core weak-resilience selection property).
func TestMultiKrumExcludesFarByzantine(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, f, d := 19, 4, 30
	mean := constVec(d, 0.5)
	grads := honestCloud(rng, n-f, d, mean, 0.05)
	for i := 0; i < f; i++ {
		grads = append(grads, constVec(d, 1e6+float64(i)))
	}
	mk := NewMultiKrum(f)
	sel, err := mk.Select(grads)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != mk.EffectiveM(n) {
		t.Fatalf("selected %d, want %d", len(sel), mk.EffectiveM(n))
	}
	for _, idx := range sel {
		if idx >= n-f {
			t.Fatalf("Byzantine gradient %d selected", idx)
		}
	}
}

func TestMultiKrumExcludesNaNGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	n, f, d := 11, 2, 10
	grads := honestCloud(rng, n-f, d, constVec(d, 1), 0.1)
	nanVec := constVec(d, math.NaN())
	infVec := constVec(d, math.Inf(1))
	grads = append(grads, nanVec, infVec)
	mk := NewMultiKrum(f)
	out, err := mk.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsFinite() {
		t.Fatalf("aggregate contains non-finite values: %v", out)
	}
	sel, err := mk.Select(grads)
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range sel {
		if idx >= n-f {
			t.Fatalf("non-finite gradient %d selected", idx)
		}
	}
}

func TestKrumSelectsMedianLikeGradient(t *testing.T) {
	// Krum (m=1) must pick a vector near the cluster centre, not the
	// outlier.
	grads := []tensor.Vector{
		{1.0}, {1.1}, {0.9}, {1.05}, {0.95}, {1.02}, {50.0},
	}
	k := NewKrum(1)
	out, err := k.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 0.2 {
		t.Fatalf("Krum picked %v, want near 1", out[0])
	}
}

func TestMultiKrumOutputInConvexHull(t *testing.T) {
	// With no Byzantine vectors, the output is an average of selected
	// gradients, hence within [min, max] coordinate-wise.
	rng := rand.New(rand.NewSource(44))
	n, f, d := 11, 2, 5
	grads := honestCloud(rng, n, d, constVec(d, 2), 1)
	out, err := NewMultiKrum(f).Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < d; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, g := range grads {
			lo = math.Min(lo, g[j])
			hi = math.Max(hi, g[j])
		}
		if out[j] < lo-1e-12 || out[j] > hi+1e-12 {
			t.Fatalf("coordinate %d: %v outside [%v, %v]", j, out[j], lo, hi)
		}
	}
}

func TestParallelMatchesSequentialDistances(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	grads := honestCloud(rng, 17, 64, constVec(64, 0), 1)
	par := PairwiseSquaredDistances(grads, false)
	seq := PairwiseSquaredDistances(grads, true)
	for i := range par {
		for j := range par[i] {
			if par[i][j] != seq[i][j] {
				t.Fatalf("distance mismatch at (%d,%d): %v vs %v", i, j, par[i][j], seq[i][j])
			}
		}
	}
}

func TestKrumScoresSymmetricCluster(t *testing.T) {
	// Four identical vectors: all scores are zero.
	grads := []tensor.Vector{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	dist := PairwiseSquaredDistances(grads, true)
	scores := KrumScores(dist, len(grads), 1)
	for i, s := range scores {
		if s != 0 {
			t.Fatalf("score[%d] = %v, want 0", i, s)
		}
	}
}

// Property (Theorem 1 shape): for any m in [1, n-f-2] and any placement of f
// far-away Byzantine vectors, no Byzantine vector is selected.
func TestQuickMultiKrumSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		f := r.Intn(3) + 1
		n := 2*f + 3 + r.Intn(6)
		m := r.Intn(n-f-2) + 1
		d := r.Intn(20) + 2
		honest := honestCloud(r, n-f, d, constVec(d, 1), 0.1)
		grads := append([]tensor.Vector{}, honest...)
		for i := 0; i < f; i++ {
			grads = append(grads, constVec(d, 1e9*(r.Float64()+1)))
		}
		// Shuffle so Byzantine positions are arbitrary.
		perm := r.Perm(len(grads))
		shuffled := make([]tensor.Vector, len(grads))
		byz := make(map[int]bool)
		for newIdx, oldIdx := range perm {
			shuffled[newIdx] = grads[oldIdx]
			if oldIdx >= n-f {
				byz[newIdx] = true
			}
		}
		mk := &MultiKrum{NumByzantine: f, M: m}
		sel, err := mk.Select(shuffled)
		if err != nil {
			return false
		}
		for _, idx := range sel {
			if byz[idx] {
				return false
			}
		}
		return len(sel) == m
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

// Property: MULTI-KRUM is permutation-equivariant — shuffling the input
// gradients does not change the aggregated output.
func TestQuickMultiKrumPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for iter := 0; iter < 40; iter++ {
		n, f, d := 11, 2, 8
		grads := honestCloud(rng, n, d, constVec(d, 0), 1)
		mk := NewMultiKrum(f)
		base, err := mk.Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		perm := rng.Perm(n)
		shuffled := make([]tensor.Vector, n)
		for i, p := range perm {
			shuffled[i] = grads[p]
		}
		got, err := mk.Aggregate(shuffled)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < d; j++ {
			if math.Abs(got[j]-base[j]) > 1e-9 {
				t.Fatalf("permutation changed output at coord %d: %v vs %v", j, got[j], base[j])
			}
		}
	}
}

// Property: with zero Byzantine workers and m = n, MULTI-KRUM with f=0
// averages a superset; specifically for f=0, m=n-2 selection is an average of
// honest gradients and must stay within the honest bounding box.
func TestQuickMultiKrumBoundingBox(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for iter := 0; iter < 40; iter++ {
		n := rng.Intn(8) + 5
		d := rng.Intn(10) + 1
		grads := honestCloud(rng, n, d, constVec(d, 0), 2)
		mk := NewMultiKrum(0)
		out, err := mk.Aggregate(grads)
		if err != nil {
			t.Fatal(err)
		}
		for j := 0; j < d; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, g := range grads {
				lo = math.Min(lo, g[j])
				hi = math.Max(hi, g[j])
			}
			if out[j] < lo-1e-12 || out[j] > hi+1e-12 {
				t.Fatalf("outside hull at coord %d", j)
			}
		}
	}
}
