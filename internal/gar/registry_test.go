package gar

import (
	"testing"
)

func TestRegistryBuiltins(t *testing.T) {
	for _, name := range []string{
		"average", "selective-average", "median", "trimmed-mean",
		"krum", "multi-krum", "bulyan",
	} {
		g, err := New(name, 1)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Fatalf("New(%q).Name() = %q", name, g.Name())
		}
	}
}

func TestRegistryUnknown(t *testing.T) {
	if _, err := New("no-such-gar", 0); err == nil {
		t.Fatal("want error for unknown GAR")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	if len(names) < 7 {
		t.Fatalf("expected at least 7 builtin GARs, got %v", names)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	Register("average", func(int) (GAR, error) { return Average{}, nil })
}

func TestRegisterEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty name")
		}
	}()
	Register("", nil)
}

func TestRegistryNegativeF(t *testing.T) {
	for _, name := range []string{"krum", "multi-krum", "bulyan", "trimmed-mean"} {
		if _, err := New(name, -1); err == nil {
			t.Fatalf("New(%q, -1) should fail", name)
		}
	}
}
