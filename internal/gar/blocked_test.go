package gar

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"aggregathor/internal/tensor"
)

func randVectors(seed int64, n, d int, pBad float64) []tensor.Vector {
	rng := rand.New(rand.NewSource(seed))
	out := make([]tensor.Vector, n)
	for i := range out {
		v := tensor.NewVector(d)
		for j := range v {
			if pBad > 0 && rng.Float64() < pBad {
				switch rng.Intn(3) {
				case 0:
					v[j] = math.NaN()
				case 1:
					v[j] = math.Inf(1)
				default:
					v[j] = math.Inf(-1)
				}
			} else {
				v[j] = rng.NormFloat64()
			}
		}
		out[i] = v
	}
	return out
}

// TestBlockedDistancesMatchReference: the blocked engine must agree with the
// row-streaming reference within 1e-12 relative tolerance on finite values
// (the per-pair sums associate per block, so the last ulps may differ) and
// exactly on non-finite saturation.
func TestBlockedDistancesMatchReference(t *testing.T) {
	for _, tc := range []struct {
		seed int64
		n, d int
		pBad float64
	}{
		{1, 7, 500, 0},
		{2, 19, 5000, 0},
		{3, 19, 3*distBlockCoords + 17, 0}, // multiple blocks + ragged tail
		{4, 12, 4096, 0.01},                // sparse poison
		{5, 9, 1000, 0.5},                  // dense poison
		{6, 5, 1, 0},                       // single coordinate
		{7, 3, 0, 0},                       // zero-dimensional
	} {
		grads := randVectors(tc.seed, tc.n, tc.d, tc.pBad)
		want := PairwiseSquaredDistances(grads, true)
		var ws Workspace
		got := BlockedPairwiseSquaredDistances(grads, &ws, false)
		for i := 0; i < tc.n; i++ {
			for j := 0; j < tc.n; j++ {
				w, g := want[i][j], got[i][j]
				if math.IsInf(w, 1) || math.IsInf(g, 1) {
					if w != g {
						t.Fatalf("seed %d: saturation mismatch at (%d,%d): blocked %v, reference %v",
							tc.seed, i, j, g, w)
					}
					continue
				}
				if math.IsNaN(w) || math.IsNaN(g) {
					t.Fatalf("seed %d: NaN leaked at (%d,%d): blocked %v, reference %v", tc.seed, i, j, g, w)
				}
				diff := math.Abs(w - g)
				if diff > 1e-12*math.Max(math.Abs(w), 1) {
					t.Fatalf("seed %d: (%d,%d): blocked %v vs reference %v (diff %g)", tc.seed, i, j, g, w, diff)
				}
			}
		}
	}
}

// TestBlockedDistancesDeterministic: two runs over the same input, and the
// sequential vs parallel schedules, must agree bit-for-bit.
func TestBlockedDistancesDeterministic(t *testing.T) {
	grads := randVectors(8, 19, 2*distParallelMin+31, 0.001)
	var ws1, ws2, ws3 Workspace
	a := BlockedPairwiseSquaredDistances(grads, &ws1, false)
	b := BlockedPairwiseSquaredDistances(grads, &ws2, false)
	c := BlockedPairwiseSquaredDistances(grads, &ws3, true)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] && !(math.IsNaN(a[i][j]) && math.IsNaN(b[i][j])) {
				t.Fatalf("rerun diverges at (%d,%d)", i, j)
			}
			if a[i][j] != c[i][j] && !(math.IsNaN(a[i][j]) && math.IsNaN(c[i][j])) {
				t.Fatalf("sequential schedule diverges at (%d,%d): %v vs %v", i, j, a[i][j], c[i][j])
			}
		}
	}
}

// TestBlockedDistancesGOMAXPROCSParity pins the tentpole determinism claim:
// kernel outputs are independent of the scheduler width.
func TestBlockedDistancesGOMAXPROCSParity(t *testing.T) {
	grads := randVectors(9, 19, 2*distParallelMin+7, 0)
	run := func(procs int) [][]float64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		var ws Workspace
		dist := BlockedPairwiseSquaredDistances(grads, &ws, false)
		out := make([][]float64, len(dist))
		for i := range dist {
			out[i] = append([]float64(nil), dist[i]...)
		}
		return out
	}
	a, b := run(1), run(8)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("GOMAXPROCS changes dist[%d][%d]: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
}

// TestBlockedDistancesPermutationEquivariant: each distance must be a pure
// function of the two vectors — independent of where the pair falls in the
// sweep tiling.
func TestBlockedDistancesPermutationEquivariant(t *testing.T) {
	grads := randVectors(10, 11, 4096, 0)
	var ws Workspace
	base := BlockedPairwiseSquaredDistances(grads, &ws, false)
	baseCopy := make([][]float64, len(base))
	for i := range base {
		baseCopy[i] = append([]float64(nil), base[i]...)
	}
	perm := rand.New(rand.NewSource(11)).Perm(len(grads))
	permuted := make([]tensor.Vector, len(grads))
	for i, p := range perm {
		permuted[i] = grads[p]
	}
	var ws2 Workspace
	got := BlockedPairwiseSquaredDistances(permuted, &ws2, false)
	for i := range perm {
		for j := range perm {
			if got[i][j] != baseCopy[perm[i]][perm[j]] {
				t.Fatalf("permutation changes dist(%d,%d): %v vs %v",
					perm[i], perm[j], got[i][j], baseCopy[perm[i]][perm[j]])
			}
		}
	}
}

// TestKrumScoresSelectionMatchesReference: the selection-based scoring must
// be bit-identical to the exported sort-based KrumScores over random and
// adversarial (NaN/±Inf-laced) distance matrices.
func TestKrumScoresSelectionMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 2000; trial++ {
		n := 5 + rng.Intn(30)
		f := rng.Intn((n - 3) / 2)
		dist := make([][]float64, n)
		for i := range dist {
			dist[i] = make([]float64, n)
		}
		pBad := []float64{0, 0.1, 0.6}[trial%3]
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				var v float64
				if rng.Float64() < pBad {
					if rng.Intn(2) == 0 {
						v = math.Inf(1)
					} else {
						v = math.NaN() // only hand-built matrices carry NaN
					}
				} else {
					v = rng.Float64() * 10
				}
				dist[i][j] = v
				dist[j][i] = v
			}
		}
		want := KrumScores(dist, n, f)
		var ws Workspace
		got := krumScoresInto(&ws, dist, n, f)
		for i := range want {
			if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
				t.Fatalf("trial %d (n=%d f=%d): score[%d] = %v, reference %v", trial, n, f, i, got[i], want[i])
			}
		}
	}
}
