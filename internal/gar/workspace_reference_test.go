package gar

import (
	"math"
	"testing"

	"aggregathor/internal/tensor"
)

// This file pins the workspace kernels of GeoMedian and GenericBulyan to the
// allocating implementations they replaced: referenceGeoMedian and
// referenceGenericBulyan are verbatim copies of the pre-workspace Aggregate
// bodies, and the tests require the new paths to match them bit-for-bit over
// clean and poisoned inputs. If a kernel rewrite ever changes a single ULP,
// these tests say so before any campaign JSON does.

// referenceGeoMedian is the pre-workspace GeoMedian.Aggregate: fresh mean,
// fresh iterate buffer, Clone on every return.
func referenceGeoMedian(g *GeoMedian, grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	if len(grads) < g.MinWorkers() {
		return nil, errTooFew
	}
	finite := make([]tensor.Vector, 0, len(grads))
	for _, v := range grads {
		if v.IsFinite() {
			finite = append(finite, v)
		}
	}
	if len(finite) == 0 {
		return tensor.NewVector(grads[0].Dim()), nil
	}
	maxIter := g.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	tol := g.Tol
	if tol == 0 {
		tol = 1e-9
	}
	y := tensor.Mean(finite)
	next := tensor.NewVector(y.Dim())
	for iter := 0; iter < maxIter; iter++ {
		next.Zero()
		var wsum float64
		for _, x := range finite {
			d := tensor.Distance(x, y)
			if d < 1e-12 {
				return x.Clone(), nil
			}
			w := 1 / d
			next.Axpy(w, x)
			wsum += w
		}
		next.Scale(1 / wsum)
		moved := tensor.Distance(next, y)
		y, next = next, y
		if moved < tol {
			break
		}
	}
	return y.Clone(), nil
}

// referenceGenericBulyan is the pre-workspace GenericBulyan.Aggregate: fresh
// remaining/selected slices, inner rule driven through its allocating
// Aggregate, coordinate-median fallback via tensor.CoordinateMedian.
func referenceGenericBulyan(b *GenericBulyan, grads []tensor.Vector) (tensor.Vector, error) {
	if err := checkUniform(grads); err != nil {
		return nil, err
	}
	n := len(grads)
	f := b.NumByzantine
	if n < b.MinWorkers() {
		return nil, errTooFew
	}
	theta := n - 2*f
	remaining := make([]tensor.Vector, len(grads))
	copy(remaining, grads)
	selected := make([]tensor.Vector, 0, theta)
	for len(selected) < theta {
		proposal, err := b.Inner.Aggregate(remaining)
		if err != nil {
			proposal = tensor.CoordinateMedian(remaining)
		}
		best, bestDist := -1, math.Inf(1)
		for i, v := range remaining {
			d := tensor.SquaredDistance(v, proposal)
			if d < bestDist || (d == bestDist && best >= 0 && lexLess(v, remaining[best])) {
				best, bestDist = i, d
			}
		}
		if best < 0 {
			best = 0
		}
		selected = append(selected, remaining[best])
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	beta := theta - 2*f
	helper := &Bulyan{NumByzantine: f}
	return helper.coordinateAggregate(selected, beta), nil
}

// errTooFew is a sentinel for the reference paths: the tests only compare
// error presence with the real implementations, not messages.
var errTooFew = ErrTooFewWorkers

// TestGeoMedianMatchesReference: the workspace Weiszfeld kernel must be
// bit-identical to the retired allocating implementation, including the
// all-poisoned null update and the singular on-a-data-point early exit.
func TestGeoMedianMatchesReference(t *testing.T) {
	ws := NewWorkspace()
	for _, tc := range []struct {
		seed int64
		n, d int
		pBad float64
	}{
		{41, 11, 257, 0},
		{42, 11, 1024, 0.02},
		{43, 11, 100, 0.7},
		{44, 5, 4097, 0},
		{45, 7, 64, 0.99},
	} {
		g := NewGeoMedian(2)
		grads := randVectors(tc.seed, tc.n, tc.d, tc.pBad)
		want, errWant := referenceGeoMedian(g, grads)
		got, errGot := AggregateInto(ws, g, grads)
		if (errWant == nil) != (errGot == nil) {
			t.Fatalf("seed %d: error mismatch: %v vs %v", tc.seed, errWant, errGot)
		}
		if errWant != nil {
			continue
		}
		if !vecEq(got, want) {
			t.Fatalf("seed %d: workspace geometric median diverges from reference", tc.seed)
		}
	}
	// Singularity path: the iterate lands exactly on a duplicated data
	// point, which the reference answers with that point.
	dup := tensor.Vector{1, 2, 3}
	grads := []tensor.Vector{dup.Clone(), dup.Clone(), dup.Clone(), dup.Clone(), dup.Clone()}
	g := NewGeoMedian(2)
	want, _ := referenceGeoMedian(g, grads)
	got, err := AggregateInto(ws, g, grads)
	if err != nil {
		t.Fatal(err)
	}
	if !vecEq(got, want) {
		t.Fatal("singular Weiszfeld case diverges from reference")
	}
}

// TestGenericBulyanMatchesReference: the workspace composite loop — nested
// inner workspace, reused candidate list, column-engine median fallback —
// must extract and aggregate bit-identically to the retired implementation,
// for both registered inner rules and for an inner whose minimum triggers
// the fallback during the shrink.
func TestGenericBulyanMatchesReference(t *testing.T) {
	ws := NewWorkspace()
	inners := []GAR{Median{}, NewGeoMedian(2), NewMultiKrum(2)}
	for _, inner := range inners {
		for _, tc := range []struct {
			seed int64
			n, d int
			pBad float64
		}{
			{51, 11, 257, 0},
			{52, 11, 1024, 0.02},
			{53, 11, 100, 0.7},
			{54, 15, 513, 0.01},
		} {
			b := NewGenericBulyan(inner, 2)
			grads := randVectors(tc.seed, tc.n, tc.d, tc.pBad)
			want, errWant := referenceGenericBulyan(b, grads)
			got, errGot := AggregateInto(ws, b, grads)
			if (errWant == nil) != (errGot == nil) {
				t.Fatalf("%s seed %d: error mismatch: %v vs %v", b.Name(), tc.seed, errWant, errGot)
			}
			if errWant != nil {
				continue
			}
			if !vecEq(got, want) {
				t.Fatalf("%s seed %d: workspace generic bulyan diverges from reference", b.Name(), tc.seed)
			}
		}
	}
}
