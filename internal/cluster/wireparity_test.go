package cluster

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/nn"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// TestAttackWireParity is the codec/RNG-threading drift detector: for every
// registered attack, the forged gradient a Byzantine worker delivers over a
// real TCP connection must be bit-identical to the in-process Forge output
// for the same run seed and context. The expected side replicates the exact
// pipeline an in-process ps.Cluster runs (honest peers' gradients in
// ascending worker order, the worker's own honest gradient, the attack RNG
// derived via ps.AttackSeed); the actual side exercises the real
// runTCPClusterWorker code path and the real wire. Two rounds are compared
// so stateful attacks (stale) and RNG advancement are covered too.
func TestAttackWireParity(t *testing.T) {
	const (
		workers = 5
		byzID   = 3
		batch   = 8
		seed    = 11
		rounds  = 2
	)
	ds := data.SyntheticFeatures(120, 6, 3, 9)
	ds.MinMaxScale()
	factory := func() *nn.Network {
		return nn.NewMLP(6, []int{8}, 3, rand.New(rand.NewSource(10)))
	}
	params := factory().ParamsVector()

	for _, name := range attack.Names() {
		t.Run(name, func(t *testing.T) {
			// Expected: the in-process forge pipeline, computed locally.
			expAtk, err := attack.New(name)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(ps.AttackSeed(seed, byzID)))
			replica := factory()
			replica.SetParamsVector(params)
			ownSampler := data.NewUniformSampler(ds, ps.SamplerSeed(seed, byzID))
			var peerIDs []int
			peerSamplers := map[int]*data.UniformSampler{}
			for p := 0; p < workers; p++ {
				if p == byzID {
					continue
				}
				peerIDs = append(peerIDs, p)
				peerSamplers[p] = data.NewUniformSampler(ds, ps.SamplerSeed(seed, p))
			}
			expected := make([]tensor.Vector, rounds)
			for step := 0; step < rounds; step++ {
				x, y := ownSampler.Sample(batch)
				_, own := replica.Gradient(x, y)
				own = own.Clone()
				var honest []tensor.Vector
				for _, p := range peerIDs {
					px, py := peerSamplers[p].Sample(batch)
					_, g := replica.Gradient(px, py)
					honest = append(honest, g.Clone())
				}
				expected[step] = expAtk.Forge(&attack.Context{
					Step:   step,
					Honest: honest,
					Own:    own,
					N:      workers,
					F:      1,
					Dim:    own.Dim(),
					Rng:    rng,
				})
			}

			// Actual: the real worker main loop over a real socket.
			cfg := &TCPClusterConfig{
				ModelFactory: factory,
				Workers:      workers,
				Batch:        batch,
				Train:        ds,
				Byzantine:    map[int]string{byzID: name},
				Seed:         seed,
			}
			ln, err := transport.ListenTCP("127.0.0.1:0", cfg.Codec)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()
			done := make(chan error, 1)
			go func() { done <- runTCPClusterWorker(ln.Addr(), byzID, cfg) }()
			conn, err := ln.Accept()
			if err != nil {
				t.Fatal(err)
			}
			for step := 0; step < rounds; step++ {
				if err := conn.SendModel(&transport.ModelMsg{Step: step, Params: params}); err != nil {
					t.Fatal(err)
				}
				msg, err := conn.RecvGradient()
				if err != nil {
					t.Fatal(err)
				}
				if msg.Worker != byzID || msg.Step != step {
					t.Fatalf("wire submission identifies as worker %d step %d", msg.Worker, msg.Step)
				}
				want := expected[step]
				if msg.Grad.Dim() != want.Dim() {
					t.Fatalf("step %d: wire gradient dim %d, want %d", step, msg.Grad.Dim(), want.Dim())
				}
				for i := range want {
					// Bit comparison: NaN payloads must survive the wire
					// and RNG streams must not drift by even one draw.
					if math.Float64bits(msg.Grad[i]) != math.Float64bits(want[i]) {
						t.Fatalf("step %d: coordinate %d drifted over the wire: %v vs in-process %v",
							step, i, msg.Grad[i], want[i])
					}
				}
			}
			conn.Close()
			if err := <-done; err != nil {
				t.Fatalf("worker exited with %v", err)
			}
		})
	}
}
