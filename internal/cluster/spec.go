// Package cluster reproduces AggregaThor's deploy/run tooling: cluster
// specifications (job → task addresses, the runner.py --server JSON),
// policy-based device selection, and a real TCP-distributed training driver
// in which the parameter server and every worker speak the transport wire
// protocol over sockets (the "Distributed deployment" path of the artifact
// appendix).
package cluster

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Canonical job names from the paper's execution graph (Figure 2).
const (
	JobPS      = "ps"
	JobWorkers = "workers"
	JobEval    = "eval"
)

// Spec maps job names to task addresses, mirroring
// --server '{"local": ["127.0.0.1:7000"]}'.
type Spec struct {
	Jobs map[string][]string
}

// ParseSpec decodes the runner-style JSON cluster description.
func ParseSpec(raw string) (*Spec, error) {
	var jobs map[string][]string
	if err := json.Unmarshal([]byte(raw), &jobs); err != nil {
		return nil, fmt.Errorf("cluster: parsing spec: %w", err)
	}
	s := &Spec{Jobs: jobs}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// Validate checks the spec is non-empty with unique, non-empty addresses.
func (s *Spec) Validate() error {
	if len(s.Jobs) == 0 {
		return fmt.Errorf("cluster: empty spec")
	}
	seen := map[string]string{}
	// Validate jobs in sorted order so which violation is reported first —
	// an error string that can reach campaign JSON — is deterministic.
	jobs := make([]string, 0, len(s.Jobs))
	for job := range s.Jobs {
		jobs = append(jobs, job)
	}
	sort.Strings(jobs)
	for _, job := range jobs {
		tasks := s.Jobs[job]
		if job == "" {
			return fmt.Errorf("cluster: empty job name")
		}
		if len(tasks) == 0 {
			return fmt.Errorf("cluster: job %q has no tasks", job)
		}
		for i, addr := range tasks {
			if addr == "" {
				return fmt.Errorf("cluster: job %q task %d has empty address", job, i)
			}
			if prev, dup := seen[addr]; dup {
				return fmt.Errorf("cluster: address %q used by both %q and %q", addr, prev, job)
			}
			seen[addr] = job
		}
	}
	return nil
}

// Tasks returns the addresses of a job (nil if absent).
func (s *Spec) Tasks(job string) []string { return s.Jobs[job] }

// JobNames returns the sorted job names.
func (s *Spec) JobNames() []string {
	names := make([]string, 0, len(s.Jobs))
	for j := range s.Jobs {
		names = append(names, j)
	}
	sort.Strings(names)
	return names
}

// DeviceKind distinguishes accelerator classes for placement policies.
type DeviceKind int

const (
	// CPU is a general-purpose device.
	CPU DeviceKind = iota
	// GPU is an accelerator device.
	GPU
)

// Device is one schedulable compute device in the cluster.
type Device struct {
	Job  string
	Task int
	Kind DeviceKind
}

// String renders the TensorFlow-style device path.
func (d Device) String() string {
	kind := "cpu"
	if d.Kind == GPU {
		kind = "gpu"
	}
	return fmt.Sprintf("/job:%s/task:%d/device:%s", d.Job, d.Task, kind)
}

// PlacementPolicy assigns operations to devices — the paper's "automatic,
// policy-based device selection and cluster-wide allocation".
type PlacementPolicy interface {
	// Name identifies the policy.
	Name() string
	// Assign picks a device for the op from the candidate list, which is
	// guaranteed non-empty.
	Assign(op string, candidates []Device) Device
}

// RoundRobin cycles through candidates in order, spreading ops evenly.
type RoundRobin struct {
	next int
}

// Name implements PlacementPolicy.
func (r *RoundRobin) Name() string { return "round-robin" }

// Assign implements PlacementPolicy.
func (r *RoundRobin) Assign(op string, candidates []Device) Device {
	d := candidates[r.next%len(candidates)]
	r.next++
	return d
}

// PreferGPU picks the first GPU candidate, falling back to the first CPU —
// the default policy for gradient computation ops.
type PreferGPU struct{}

// Name implements PlacementPolicy.
func (PreferGPU) Name() string { return "prefer-gpu" }

// Assign implements PlacementPolicy.
func (PreferGPU) Assign(op string, candidates []Device) Device {
	for _, d := range candidates {
		if d.Kind == GPU {
			return d
		}
	}
	return candidates[0]
}

// Allocation maps operation names to devices for one training graph.
type Allocation map[string]Device

// Allocate places the standard synchronous-training ops (Figure 2): model
// variables and aggregation on the ps job, per-worker inference/gradient
// ops on the workers job, accuracy on the eval job.
func Allocate(spec *Spec, policy PlacementPolicy, workers int, gpus map[string][]bool) (Allocation, error) {
	psTasks := spec.Tasks(JobPS)
	wkTasks := spec.Tasks(JobWorkers)
	evTasks := spec.Tasks(JobEval)
	if psTasks == nil || wkTasks == nil {
		return nil, fmt.Errorf("cluster: spec must define %q and %q jobs (have %v)", JobPS, JobWorkers, spec.JobNames())
	}
	evJob := JobEval
	if evTasks == nil {
		evTasks = psTasks // evaluation co-located with the server
		evJob = JobPS
	}
	devices := func(job string, tasks []string) []Device {
		out := make([]Device, 0, len(tasks))
		for i := range tasks {
			kind := CPU
			if flags := gpus[job]; i < len(flags) && flags[i] {
				kind = GPU
			}
			out = append(out, Device{Job: job, Task: i, Kind: kind})
		}
		return out
	}
	alloc := Allocation{}
	psDevs := devices(JobPS, psTasks)
	alloc["variables"] = psDevs[0]
	alloc["aggregation"] = psDevs[0]
	alloc["apply_gradient"] = psDevs[0]
	wkDevs := devices(JobWorkers, wkTasks)
	for w := 0; w < workers; w++ {
		alloc[fmt.Sprintf("worker_%d/gradient", w)] = policy.Assign("gradient", wkDevs)
	}
	evDevs := devices(evJob, evTasks)
	alloc["accuracy"] = evDevs[0]
	return alloc, nil
}

// sortedIDs returns a worker map's keys in ascending order. Validation
// walks Byzantine/Unresponsive maps through this helper so that which
// violation is reported first — an error string that can reach campaign
// JSON — never depends on Go's randomized map iteration order.
func sortedIDs[V any](m map[int]V) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
