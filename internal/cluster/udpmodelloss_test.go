package cluster

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/transport"
)

// TestUDPClusterModelLossDeterministic is the construction-level determinism
// gate for footnote 12: with 20% scheduled loss on the model downlink AND
// 15% on the gradient uplink, two same-seed deployments produce bit-identical
// parameters (drop schedules, stale tags and recoup values are all pure
// functions of (seed, step, worker)), a different seed diverges, and stale
// submissions actually happened.
func TestUDPClusterModelLossDeterministic(t *testing.T) {
	run := func(seed int64) ([]float64, int) {
		cl, _, _ := udpFixture(t, UDPClusterConfig{
			DropRate:      0.15,
			Recoup:        transport.FillRandom,
			ModelDropRate: 0.2,
			ModelRecoup:   ModelRecoupStale,
			Byzantine:     map[int]string{4: "random"},
			Seed:          seed,
			MTU:           128, // several packets per transfer: loss really bites
		})
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		stale := 0
		for i := 0; i < 15; i++ {
			sr, err := cl.Step()
			if err != nil {
				t.Fatal(err)
			}
			stale += sr.Stale
		}
		return cl.Params(), stale
	}
	a, staleA := run(3)
	b, staleB := run(3)
	c, _ := run(4)
	if staleA == 0 {
		t.Fatal("20% model loss with stale recoup produced no stale submission in 15 rounds")
	}
	if staleA != staleB {
		t.Fatalf("same-seed runs saw %d vs %d stale submissions", staleA, staleB)
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("same-seed lossy-model runs diverged at parameter %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical parameters; the model-drop seed is not threaded")
	}
}

// TestUDPClusterModelLossZeroRateParity pins the acceptance criterion that
// modelDropRate 0 runs are bit-identical to the pre-lossy-model behaviour:
// configuring the stale policy with a loss-free model channel must not
// perturb a single bit of the trajectory.
func TestUDPClusterModelLossZeroRateParity(t *testing.T) {
	run := func(policy ModelRecoupPolicy) []float64 {
		cl, _, _ := udpFixture(t, UDPClusterConfig{
			DropRate:    0.15,
			Recoup:      transport.FillRandom,
			ModelRecoup: policy,
			Byzantine:   map[int]string{4: "reversed"},
			Seed:        13,
			MTU:         128,
		})
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 10; i++ {
			sr, err := cl.Step()
			if err != nil {
				t.Fatal(err)
			}
			if sr.Stale != 0 {
				t.Fatalf("round %d reported %d stale slots on a loss-free model channel", i, sr.Stale)
			}
		}
		return cl.Params()
	}
	base, stale := run(ModelRecoupSkip), run(ModelRecoupStale)
	for i := range base {
		if math.Float64bits(base[i]) != math.Float64bits(stale[i]) {
			t.Fatalf("stale policy at modelDropRate 0 changed parameter %d: %v vs %v", i, base[i], stale[i])
		}
	}
}

// TestUDPClusterModelRecoupSkipVsStale pins the two torn-broadcast policies:
// under skip (with DropGradient recoup) torn workers sit rounds out and the
// received count shrinks; under stale (with FillRandom recoup) every slot is
// present every round and the stale counter reports the substitutions.
func TestUDPClusterModelRecoupSkipVsStale(t *testing.T) {
	t.Run("skip", func(t *testing.T) {
		cl, _, _ := udpFixture(t, UDPClusterConfig{
			GAR:           gar.Average{},
			ModelDropRate: 0.25,
			ModelRecoup:   ModelRecoupSkip,
			Recoup:        transport.DropGradient,
			Seed:          7,
			MTU:           128,
		})
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		sawLoss, stale := false, 0
		for i := 0; i < 10; i++ {
			sr, err := cl.Step()
			if err != nil {
				t.Fatal(err)
			}
			if sr.Received < 5 {
				sawLoss = true
			}
			stale += sr.Stale
		}
		if !sawLoss {
			t.Fatal("25% model loss with skip recoup never shrank a round — the downlink schedule is not applied")
		}
		if stale != 0 {
			t.Fatalf("skip policy reported %d stale submissions", stale)
		}
	})
	t.Run("stale", func(t *testing.T) {
		cl, _, _ := udpFixture(t, UDPClusterConfig{
			GAR:           gar.NewMultiKrum(1),
			ModelDropRate: 0.25,
			ModelRecoup:   ModelRecoupStale,
			Recoup:        transport.FillRandom,
			Seed:          7,
			MTU:           128,
		})
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		stale := 0
		for i := 0; i < 10; i++ {
			sr, err := cl.Step()
			if err != nil {
				t.Fatal(err)
			}
			if sr.Received != 5 {
				t.Fatalf("round %d received %d, want 5 (stale recoup keeps every slot present)", i, sr.Received)
			}
			stale += sr.Stale
		}
		if stale == 0 {
			t.Fatal("25% model loss with stale recoup reported no stale submission in 10 rounds")
		}
		if !cl.Params().IsFinite() {
			t.Fatal("stale recoup poisoned the parameters")
		}
	})
}

// TestUDPClusterModelLossByzantineMatrix is the stale-recoup Byzantine cell:
// {multi-krum, median} × {reversed, non-finite} with 5% model-broadcast loss
// and 10% gradient loss — hostile gradients, lost coordinates AND stale-model gradients
// all absorbed by the same Byzantine-resilient GAR. Training must stay
// finite and still converge on the recouped, partially stale rounds.
func TestUDPClusterModelLossByzantineMatrix(t *testing.T) {
	newRule := func(name string) gar.GAR {
		rule, err := gar.New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rule
	}
	for _, rule := range []string{"multi-krum", "median"} {
		for _, atk := range []string{"reversed", "non-finite"} {
			rule, atk := rule, atk
			t.Run(rule+"/"+atk, func(t *testing.T) {
				t.Parallel()
				ds := data.SyntheticFeatures(300, 10, 3, 50)
				ds.MinMaxScale()
				train, test := ds.Split(0.8)
				factory := func() *nn.Network {
					return nn.NewMLP(10, []int{16}, 3, rand.New(rand.NewSource(51)))
				}
				cl, err := NewUDPCluster(UDPClusterConfig{
					Addr:          "127.0.0.1:0",
					ModelFactory:  factory,
					Workers:       7,
					GAR:           newRule(rule),
					Optimizer:     &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
					Batch:         32,
					Train:         train,
					Byzantine:     map[int]string{6: atk},
					DropRate:      0.10,
					Recoup:        transport.FillRandom,
					ModelDropRate: 0.05,
					ModelRecoup:   ModelRecoupStale,
					MTU:           256,
					Seed:          13,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := cl.Start(); err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				stale := 0
				for i := 0; i < 150; i++ {
					sr, err := cl.Step()
					if err != nil {
						t.Fatal(err)
					}
					if sr.Received != 7 {
						t.Fatalf("round %d received %d gradients, want 7", i, sr.Received)
					}
					stale += sr.Stale
				}
				if stale == 0 {
					t.Fatal("no stale submission in 150 lossy-model rounds")
				}
				params := cl.Params()
				if !params.IsFinite() {
					t.Fatalf("%s let non-finite parameters through under %s with lossy model broadcasts", rule, atk)
				}
				model := factory()
				model.SetParamsVector(params)
				if acc := model.Accuracy(test.X, test.Y); acc < 0.7 {
					t.Fatalf("%s under %s with lossy channels converged to accuracy %v", rule, atk, acc)
				}
			})
		}
	}
}

// TestUDPClusterModelLossRejectsInformedAttacks pins the oracle-soundness
// guard: informed (omniscient-family) attacks recompute the honest workers'
// gradients from the shared seed, which assumes every honest worker samples
// once per round on the broadcast model — exactly what lossy model
// broadcasts break. The combination must be rejected, while blind attacks
// (and informed attacks on a loss-free model channel) stay accepted.
func TestUDPClusterModelLossRejectsInformedAttacks(t *testing.T) {
	ds := data.SyntheticFeatures(30, 4, 2, 5)
	factory := func() *nn.Network { return nn.NewMLP(4, nil, 2, rand.New(rand.NewSource(6))) }
	base := UDPClusterConfig{
		Addr: "127.0.0.1:0", ModelFactory: factory, Workers: 5,
		GAR: gar.Average{}, Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch: 4, Train: ds,
	}
	for _, atk := range []string{"omniscient", "little-is-enough", "mimic", "negative-sum", "stale"} {
		cfg := base
		cfg.ModelDropRate = 0.1
		cfg.Byzantine = map[int]string{4: atk}
		if _, err := NewUDPCluster(cfg); err == nil {
			t.Fatalf("informed attack %q accepted with lossy model broadcasts", atk)
		}
		cfg.ModelDropRate = 0
		if _, err := NewUDPCluster(cfg); err != nil {
			t.Fatalf("informed attack %q rejected on a loss-free model channel: %v", atk, err)
		}
	}
	for _, atk := range []string{"random", "reversed", "non-finite"} {
		cfg := base
		cfg.ModelDropRate = 0.1
		cfg.Byzantine = map[int]string{4: atk}
		if _, err := NewUDPCluster(cfg); err != nil {
			t.Fatalf("blind attack %q rejected with lossy model broadcasts: %v", atk, err)
		}
	}
}

// TestUDPClusterModelEndpointHostileSpam is the worker-endpoint twin of the
// server's hostile-datagram cell: spoofed model packets claiming distinct
// future steps (each would pin a model-sized partial pre-fix) and
// gradient-tagged garbage are sprayed at a worker's model endpoint
// mid-training. Training must complete unharmed and the worker-side
// reassembler must stay bounded.
func TestUDPClusterModelEndpointHostileSpam(t *testing.T) {
	cl, _, _ := udpFixture(t, UDPClusterConfig{Seed: 7})
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	dim := cl.Params().Dim()
	hostile, err := transport.DialUDP(cl.modelRecvs[1].Addr(), transport.Codec{}, transport.DefaultMTU, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer hostile.Close()
	junk := make([]float64, dim)
	for i := 0; i < 5; i++ {
		// Distinct far-future model steps, each a PARTIAL packet claiming
		// the full dimension (pre-fix every one pinned a model-sized
		// partial forever), plus gradient-tagged spam.
		for s := 0; s < 8; s++ {
			partial := &transport.Packet{
				Worker: transport.ModelWorkerID, Step: 1000 + i*8 + s,
				Dim: dim, Offset: 0, Coords: junk[:1],
			}
			if err := hostile.SendPacket(partial); err != nil {
				t.Fatal(err)
			}
		}
		if err := hostile.SendGradient(&transport.GradientMsg{Worker: 2, Step: i, Grad: junk}); err != nil {
			t.Fatal(err)
		}
		sr, err := cl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Received != 5 {
			t.Fatalf("round %d received %d, want 5 despite model-endpoint spam", i, sr.Received)
		}
	}
	if !cl.Params().IsFinite() {
		t.Fatal("model-endpoint spam corrupted the parameters")
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	// Workers have exited: inspect their reassemblers without racing them.
	for id, r := range cl.modelRecvs {
		if r.Pending() > transport.DefaultModelWindow+1 {
			t.Fatalf("worker %d pins %d model partials after spam, want <= %d",
				id, r.Pending(), transport.DefaultModelWindow+1)
		}
	}
}
