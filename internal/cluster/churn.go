package cluster

import (
	"fmt"
	"time"

	"aggregathor/internal/attack"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// Worker churn plumbing shared by both socket backends: the bounded
// retry/backoff reconnect dialers a crashed worker comes back through, the
// TCP rejoin handshake frame, and the churn-specific validation guards.
// The schedule itself (who crashes when, who rejoins when) lives in
// ps.ChurnConfig / ps.MembershipTracker and is evaluated at both endpoints;
// nothing here draws randomness.

// Reconnect backoff ladder: a deterministic doubling schedule from
// reconnectBaseDelay, capped at reconnectMaxDelay, for at most
// reconnectMaxAttempts dials. On the scheduled path the first dial succeeds
// (the server's listener outlives every scheduled downtime), so the ladder
// only pays out when something is genuinely wrong — and then it terminates
// loudly instead of retrying forever.
const (
	reconnectMaxAttempts = 5
	reconnectBaseDelay   = 10 * time.Millisecond
	reconnectMaxDelay    = 500 * time.Millisecond
)

// dialTCPWithBackoff dials the server through the bounded backoff ladder and
// reports how many attempts the connect took — the count the rejoin
// handshake carries to the server's MembershipTracker.
func dialTCPWithBackoff(addr string, codec transport.Codec) (*transport.TCPConn, int, error) {
	var lastErr error
	delay := reconnectBaseDelay
	for attempt := 1; attempt <= reconnectMaxAttempts; attempt++ {
		conn, err := transport.DialTCP(addr, codec)
		if err == nil {
			return conn, attempt, nil
		}
		lastErr = err
		if attempt < reconnectMaxAttempts {
			reconnectPause(delay)
			delay *= 2
			if delay > reconnectMaxDelay {
				delay = reconnectMaxDelay
			}
		}
	}
	return nil, reconnectMaxAttempts, fmt.Errorf("cluster: reconnect to %s failed after %d attempts (backoff %v doubling to %v): %w",
		addr, reconnectMaxAttempts, reconnectBaseDelay, reconnectMaxDelay, lastErr)
}

// dialUDPWithBackoff is dialTCPWithBackoff's datagram twin: it re-dials the
// worker's gradient sender toward the server's gradient endpoint. UDP
// "connects" locally, so on any healthy host the first attempt succeeds —
// the ladder guards against transient local socket exhaustion.
func dialUDPWithBackoff(addr string, codec transport.Codec, mtu int) (*transport.UDPSender, int, error) {
	var lastErr error
	delay := reconnectBaseDelay
	for attempt := 1; attempt <= reconnectMaxAttempts; attempt++ {
		// Gradient loss is injected by the shared schedule, not the
		// sender's own rng: drop rate 0, as on the Start dial path.
		//aggrevet:lineage drop rate 0: the sender's rng is never drawn, loss comes from the shared seeded schedule
		send, err := transport.DialUDP(addr, codec, mtu, 0, 0)
		if err == nil {
			return send, attempt, nil
		}
		lastErr = err
		if attempt < reconnectMaxAttempts {
			reconnectPause(delay)
			delay *= 2
			if delay > reconnectMaxDelay {
				delay = reconnectMaxDelay
			}
		}
	}
	return nil, reconnectMaxAttempts, fmt.Errorf("cluster: reconnect gradient sender to %s failed after %d attempts (backoff %v doubling to %v): %w",
		addr, reconnectMaxAttempts, reconnectBaseDelay, reconnectMaxDelay, lastErr)
}

// rejoinHello builds the handshake frame a reconnecting TCP worker sends
// first on its fresh connection: its id, the step it is scheduled to rejoin
// at, and (in the Loss field) how many dial attempts the reconnect took.
// The gradient payload is a 1-coordinate placeholder — the server reads the
// metadata and discards the frame; it never reaches aggregation.
func rejoinHello(worker, rejoinStep, attempts int) *transport.GradientMsg {
	return &transport.GradientMsg{
		Worker: worker,
		Step:   rejoinStep,
		Loss:   float64(attempts),
		Grad:   tensor.Vector{0},
	}
}

// churnParticipates reports whether a phase submits a gradient this round
// (live or rejoining). Crashed and down workers' slots are dropped by
// design: never awaited, never recouped — the churn twin of the async
// schedule's too-stale drop.
func churnParticipates(p ps.ChurnPhase) bool {
	return p == ps.ChurnLive || p == ps.ChurnRejoin
}

// rejectInformedWithChurn enforces the informed-attack × churn-schedule
// incompatibility at cluster construction: an informed attack recomputes the
// honest workers' gradients from the run seed assuming every peer samples
// once per round — a churn schedule breaks that oracle, because a crashed
// honest worker's sampler stream pauses while it is down and the shared-seed
// replica cannot track membership (mirroring rejectInformedWithSlow and the
// informed × lossy-model-broadcast rule).
func rejectInformedWithChurn(byzantine map[int]string, churn ps.ChurnConfig) error {
	if !churn.Enabled() {
		return nil
	}
	for _, id := range sortedIDs(byzantine) {
		name := byzantine[id]
		atk, err := attack.New(name)
		if err != nil {
			continue // reported by the caller's own attack validation
		}
		if inf, ok := atk.(attack.Informed); ok && inf.RequiresHonest() {
			return fmt.Errorf("cluster: attack %q on worker %d (churn rate %v): %w",
				name, id, churn.Rate, ps.ErrInformedChurn)
		}
	}
	return nil
}
