package cluster

import (
	"net"
	"math"
	"math/rand"
	"testing"
	"time"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/transport"
)

// udpFixture builds a small 5-worker deployment over real UDP sockets.
func udpFixture(t *testing.T, cfg UDPClusterConfig) (*UDPCluster, *data.Dataset, func() *nn.Network) {
	t.Helper()
	ds := data.SyntheticFeatures(120, 6, 3, 9)
	ds.MinMaxScale()
	factory := func() *nn.Network {
		return nn.NewMLP(6, []int{8}, 3, rand.New(rand.NewSource(10)))
	}
	cfg.Addr = "127.0.0.1:0"
	cfg.ModelFactory = factory
	cfg.Train = ds
	if cfg.Workers == 0 {
		cfg.Workers = 5
	}
	if cfg.Batch == 0 {
		cfg.Batch = 8
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}}
	}
	if cfg.GAR == nil {
		cfg.GAR = gar.NewMultiKrum(1)
	}
	cl, err := NewUDPCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cl, ds, factory
}

// TestUDPClusterDeterministicLossyRounds is the construction-level
// determinism gate: two deployments with the same seed at 15% packet loss
// produce bit-identical parameters after the same number of rounds — the
// drop schedule and the recoup values are pure functions of
// (seed, step, worker) — and a different seed diverges.
func TestUDPClusterDeterministicLossyRounds(t *testing.T) {
	run := func(seed int64) []float64 {
		cl, _, _ := udpFixture(t, UDPClusterConfig{
			DropRate:  0.15,
			Recoup:    transport.FillRandom,
			Byzantine: map[int]string{4: "random"},
			Seed:      seed,
			MTU:       128, // several packets per gradient: loss really bites
		})
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 15; i++ {
			if _, err := cl.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return cl.Params()
	}
	a, b, c := run(3), run(3), run(4)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("same-seed lossy runs diverged at parameter %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical parameters; the seed is not threaded")
	}
}

// TestUDPClusterLosslessMatchesTCP pins cross-backend parity at the cluster
// layer: at dropRate 0 a UDP deployment and a TCP deployment of the same
// configuration produce bit-identical parameters (both reduce to the same
// worker gradient streams slotted by id).
func TestUDPClusterLosslessMatchesTCP(t *testing.T) {
	ds := data.SyntheticFeatures(120, 6, 3, 9)
	ds.MinMaxScale()
	factory := func() *nn.Network {
		return nn.NewMLP(6, []int{8}, 3, rand.New(rand.NewSource(10)))
	}
	runUDP := func() []float64 {
		cl, err := NewUDPCluster(UDPClusterConfig{
			Addr: "127.0.0.1:0", ModelFactory: factory, Workers: 5,
			GAR: gar.NewMultiKrum(1), Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}},
			Batch: 8, Train: ds, Byzantine: map[int]string{4: "reversed"}, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 10; i++ {
			if _, err := cl.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return cl.Params()
	}
	runTCP := func() []float64 {
		cl, err := NewTCPCluster(TCPClusterConfig{
			Addr: "127.0.0.1:0", ModelFactory: factory, Workers: 5,
			GAR: gar.NewMultiKrum(1), Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}},
			Batch: 8, Train: ds, Byzantine: map[int]string{4: "reversed"}, Seed: 13,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 10; i++ {
			if _, err := cl.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return cl.Params()
	}
	u, tc := runUDP(), runTCP()
	for i := range u {
		if math.Float64bits(u[i]) != math.Float64bits(tc[i]) {
			t.Fatalf("udp and tcp backends diverged at parameter %d: %v vs %v", i, u[i], tc[i])
		}
	}
}

// TestUDPClusterRecoupPolicies covers the three §3.3 policies against real
// in-flight loss: DropGradient shrinks the received count on rounds with
// whole-gradient losses, FillNaN hands non-finite slots to a containing GAR,
// FillRandom keeps every slot present and finite.
func TestUDPClusterRecoupPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy transport.RecoupPolicy
		rule   gar.GAR
	}{
		{name: "drop-gradient", policy: transport.DropGradient, rule: gar.Average{}},
		{name: "fill-nan", policy: transport.FillNaN, rule: gar.SelectiveAverage{}},
		{name: "fill-random", policy: transport.FillRandom, rule: gar.NewMultiKrum(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl, _, _ := udpFixture(t, UDPClusterConfig{
				GAR:      tc.rule,
				DropRate: 0.3,
				Recoup:   tc.policy,
				Seed:     7,
				MTU:      128,
			})
			if err := cl.Start(); err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			sawLoss := false
			for i := 0; i < 10; i++ {
				sr, err := cl.Step()
				if err != nil {
					t.Fatal(err)
				}
				if tc.policy == transport.DropGradient {
					if sr.Received < 5 {
						sawLoss = true
					}
				} else if sr.Received != 5 {
					t.Fatalf("round %d received %d, want 5 (lost coordinates recouped in place)", i, sr.Received)
				}
			}
			if tc.policy == transport.DropGradient && !sawLoss {
				t.Fatal("30% packet loss never dropped a whole gradient across 10 rounds — drop schedule not applied")
			}
			if tc.policy != transport.FillNaN && !cl.Params().IsFinite() {
				t.Fatalf("%s let the recoup poison the parameters", tc.name)
			}
		})
	}
}

// TestUDPClusterStragglerRoundTimeout: an unresponsive worker costs the
// deployment exactly one collection deadline — it is suspected afterwards —
// and training proceeds on the surviving quorum.
func TestUDPClusterStragglerRoundTimeout(t *testing.T) {
	cl, _, _ := udpFixture(t, UDPClusterConfig{
		Workers:      5,
		Unresponsive: map[int]bool{2: true},
		RoundTimeout: 250 * time.Millisecond,
		Seed:         7,
	})
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	sr, err := cl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("first round returned in %v, before the deadline", elapsed)
	}
	if sr.Received != 4 {
		t.Fatalf("first round received %d gradients, want 4 (straggler timed out, DropGradient recoup)", sr.Received)
	}
	for i := 1; i < 5; i++ {
		roundStart := time.Now()
		sr, err = cl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Received != 4 {
			t.Fatalf("round %d received %d gradients, want 4", i, sr.Received)
		}
		if time.Since(roundStart) >= 250*time.Millisecond {
			t.Fatalf("round %d paid the deadline again despite suspicion", i)
		}
	}
	if !cl.Params().IsFinite() {
		t.Fatal("parameters went non-finite")
	}
}

// TestUDPClusterSurvivesHostileDatagrams is the server-side robustness cell:
// raw garbage, out-of-range worker ids, wrong dimensions and the
// conflicting-Dim crasher packets are sprayed at the gradient endpoint
// mid-round, and training must complete unharmed — no panic, no corruption.
func TestUDPClusterSurvivesHostileDatagrams(t *testing.T) {
	cl, _, _ := udpFixture(t, UDPClusterConfig{Seed: 7})
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hostile, err := transport.DialUDP(cl.recv.Addr(), transport.Codec{}, transport.DefaultMTU, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer hostile.Close()
	dim := cl.Params().Dim()
	spray := func(step int) {
		// Out-of-range worker id.
		hostile.SendGradient(&transport.GradientMsg{Worker: 1 << 20, Step: step, Grad: make([]float64, 3)})
		// Wrong dimension for the deployment on a valid id.
		wrong := &transport.Packet{Worker: 1, Step: step, Dim: dim + 5, Offset: 0, Coords: make([]float64, 2)}
		hostile.SendPacket(wrong)
		// The conflicting-Dim crasher pair on a stale step (spoofing an
		// honest id on the live step would merely stall that worker to the
		// deadline; the reassembler-level rejection has its own regression
		// tests in transport).
		small := &transport.Packet{Worker: 0, Step: step - 1, Dim: dim, Offset: 0, Coords: make([]float64, 1)}
		big := &transport.Packet{Worker: 0, Step: step - 1, Dim: 1 << 20, Offset: 1 << 19, Coords: make([]float64, 4)}
		hostile.SendPacket(small)
		hostile.SendPacket(big)
	}
	for i := 0; i < 5; i++ {
		spray(i)
		sr, err := cl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Received != 5 {
			t.Fatalf("round %d received %d, want 5 despite hostile datagrams", i, sr.Received)
		}
	}
	if !cl.Params().IsFinite() {
		t.Fatal("hostile datagrams corrupted the parameters")
	}
}

// TestUDPClusterTrainerSurface pins the ps.Trainer contract details the
// training loop relies on.
func TestUDPClusterTrainerSurface(t *testing.T) {
	var _ ps.Trainer = (*UDPCluster)(nil)
	ds := data.SyntheticFeatures(60, 4, 2, 5)
	factory := func() *nn.Network { return nn.NewMLP(4, nil, 2, rand.New(rand.NewSource(6))) }
	cl, err := NewUDPCluster(UDPClusterConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      3,
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        4,
		Train:        ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Step(); err == nil {
		t.Fatal("Step before Start succeeded")
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		sr, err := cl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Step != i {
			t.Fatalf("round %d reported step %d", i, sr.Step)
		}
		if sr.Received != 3 || sr.Skipped || sr.Hijacked {
			t.Fatalf("unexpected step result %+v", sr)
		}
	}
	if cl.StepCount() != 2 {
		t.Fatalf("step count %d", cl.StepCount())
	}
	got := cl.Model().ParamsVector()
	want := cl.Params()
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("Model() out of sync with Params()")
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	if _, err := cl.Step(); err == nil {
		t.Fatal("Step after Close succeeded")
	}
}

// TestUDPClusterConfigValidation pins the constructor's rejection surface.
func TestUDPClusterConfigValidation(t *testing.T) {
	ds := data.SyntheticFeatures(30, 4, 2, 5)
	factory := func() *nn.Network { return nn.NewMLP(4, nil, 2, rand.New(rand.NewSource(6))) }
	base := UDPClusterConfig{
		Addr: "127.0.0.1:0", ModelFactory: factory, Workers: 3,
		GAR: gar.Average{}, Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch: 4, Train: ds,
	}
	mutate := []func(*UDPClusterConfig){
		func(c *UDPClusterConfig) { c.DropRate = 1.0 },
		func(c *UDPClusterConfig) { c.DropRate = -0.1 },
		func(c *UDPClusterConfig) { c.ModelDropRate = 1.0 },
		func(c *UDPClusterConfig) { c.ModelDropRate = -0.1 },
		func(c *UDPClusterConfig) { c.ModelRecoup = ModelRecoupPolicy(9) },
		func(c *UDPClusterConfig) { c.MTU = 100000 },
		// Below the packet header + one coordinate: CoordsPerPacket would
		// clamp to 1 and every datagram would silently exceed the budget.
		func(c *UDPClusterConfig) { c.MTU = 16 },
		func(c *UDPClusterConfig) { c.MTU = c.Codec.MinMTU() - 1 },
		func(c *UDPClusterConfig) { c.Workers = 0 },
		func(c *UDPClusterConfig) { c.Byzantine = map[int]string{5: "reversed"} },
		func(c *UDPClusterConfig) { c.Byzantine = map[int]string{0: "no-such-attack"} },
		func(c *UDPClusterConfig) { c.Unresponsive = map[int]bool{9: true} },
		func(c *UDPClusterConfig) { c.GAR = gar.NewMultiKrum(2) }, // needs 7 workers
	}
	for i, m := range mutate {
		cfg := base
		m(&cfg)
		if _, err := NewUDPCluster(cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

// TestUDPClusterSurvivesGradientSpoofCensorship is the cluster-layer
// failing-first regression test for the spoof-censorship bug: a Byzantine
// peer spoofing ONE datagram per honest worker — correct worker id, step
// and dimension, garbage Loss metadata — ahead of the round's honest
// packets used to pin the partials' metadata, so every honest packet was
// rejected as a "metadata conflict" and every round was skipped with zero
// gradients (DropGradient recoup): one datagram per worker censored the
// whole deployment. With evict-and-rebuild in the reassembler the honest
// packets evict the spoofed partials and the rounds complete normally.
func TestUDPClusterSurvivesGradientSpoofCensorship(t *testing.T) {
	cl, _, _ := udpFixture(t, UDPClusterConfig{
		Workers:      3,
		GAR:          gar.Average{},
		Recoup:       transport.DropGradient,
		Seed:         11,
		RoundTimeout: 2 * time.Second,
	})
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	hostile, err := transport.DialUDP(cl.recv.Addr(), transport.Codec{}, transport.DefaultMTU, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	defer hostile.Close()
	dim := cl.Params().Dim()
	for step := 0; step < 4; step++ {
		// The spoofs are written before Step broadcasts the model, so they
		// are guaranteed to sit in the server's socket buffer ahead of any
		// honest gradient for this round.
		for id := 0; id < 3; id++ {
			spoof := &transport.Packet{
				Worker: id, Step: step, Loss: 999.25, Dim: dim, Offset: 0,
				Coords: make([]float64, 1),
			}
			if err := hostile.SendPacket(spoof); err != nil {
				t.Fatal(err)
			}
		}
		sr, err := cl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Skipped || sr.Received != 3 {
			t.Fatalf("step %d: received %d (skipped=%v) — spoofed datagrams censored honest workers",
				step, sr.Received, sr.Skipped)
		}
		if sr.Loss > 500 {
			t.Fatalf("step %d: spoofed loss metadata leaked into the round mean (%v)", step, sr.Loss)
		}
	}
	if ev := cl.recv.Reassembler().Evictions(); ev == 0 {
		t.Fatal("no evictions recorded; the spoofs never raced the honest packets and the test lost its teeth")
	}
}

// nonLoopbackIPv4 returns a routable non-loopback IPv4 address of this
// host, or "" when the environment offers none (air-gapped CI).
func nonLoopbackIPv4(t *testing.T) string {
	t.Helper()
	addrs, err := net.InterfaceAddrs()
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		ipn, ok := a.(*net.IPNet)
		if !ok || ipn.IP.IsLoopback() {
			continue
		}
		if v4 := ipn.IP.To4(); v4 != nil {
			return v4.String()
		}
	}
	return ""
}

// TestUDPClusterWorkerBindHostFollowsServer is the regression test for the
// hardcoded loopback model bind: with the server's gradient endpoint on a
// non-loopback interface, every worker's model endpoint must bind the
// interface its gradient socket dials the server through — binding
// "127.0.0.1" there (the old behaviour) silently confines the backend to
// one host, because a remote server cannot reach a loopback-bound endpoint.
func TestUDPClusterWorkerBindHostFollowsServer(t *testing.T) {
	host := nonLoopbackIPv4(t)
	if host == "" {
		t.Skip("no non-loopback IPv4 interface available")
	}
	cl, _, _ := udpFixture(t, UDPClusterConfig{Workers: 3, GAR: gar.Average{}, Seed: 5})
	cl.cfg.Addr = net.JoinHostPort(host, "0")
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for id, r := range cl.modelRecvs {
		got, _, err := net.SplitHostPort(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if got != host {
			t.Fatalf("worker %d model endpoint bound %q, want the gradient-dial interface %q", id, got, host)
		}
	}
	// The deployment must actually train over the non-loopback path.
	for i := 0; i < 3; i++ {
		sr, err := cl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Received != 3 {
			t.Fatalf("step %d: received %d, want 3", i, sr.Received)
		}
	}
}

// TestUDPClusterWorkerBindHostKnob pins the explicit configuration path:
// WorkerBindHost overrides the derived host.
func TestUDPClusterWorkerBindHostKnob(t *testing.T) {
	cl, _, _ := udpFixture(t, UDPClusterConfig{Workers: 2, GAR: gar.Average{}, Seed: 5})
	cl.cfg.WorkerBindHost = "127.0.0.1"
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for id, r := range cl.modelRecvs {
		got, _, err := net.SplitHostPort(r.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if got != "127.0.0.1" {
			t.Fatalf("worker %d model endpoint bound %q, want the configured 127.0.0.1", id, got)
		}
	}
}
