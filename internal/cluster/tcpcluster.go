package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// TCPClusterConfig describes a socket-distributed synchronous deployment:
// one parameter server and n worker goroutines, each speaking the transport
// wire protocol over its own TCP connection. Unlike the one-shot TCPTrain
// helper, a TCPCluster is driven round-by-round through the ps.Trainer
// surface, which is what lets core.runTraining and the scenario campaign
// engine treat a socket deployment exactly like an in-process one.
type TCPClusterConfig struct {
	// Addr is the server bind address ("127.0.0.1:0" picks a free port).
	Addr string
	// ModelFactory builds the network replicas.
	ModelFactory func() *nn.Network
	// Workers is n.
	Workers int
	// GAR aggregates each round.
	GAR gar.GAR
	// Optimizer applies updates.
	Optimizer opt.Optimizer
	// Batch is the per-worker mini-batch.
	Batch int
	// Train provides worker samplers.
	Train *data.Dataset
	// Codec selects the wire coordinate width.
	Codec transport.Codec
	// RoundTimeout bounds the collection phase (the paper's fix for
	// TensorFlow waiting indefinitely on unresponsive nodes). Zero means
	// 30 seconds.
	RoundTimeout time.Duration
	// Byzantine maps worker ids to attack names. A Byzantine worker forges
	// its wire submission; omniscient attacks are honoured by recomputing
	// the honest gradients from the shared run seed (see tcpWorker).
	Byzantine map[int]string
	// Unresponsive marks worker ids that receive broadcasts but never
	// submit a gradient — the paper's unresponsive node, which vanilla
	// TensorFlow waits on forever and AggregaThor bounds with the round
	// timeout.
	Unresponsive map[int]bool
	// Seed is the run seed. Worker sampler and attack RNG seeds are
	// derived from it with the same ps.SamplerSeed/ps.AttackSeed formulas
	// the in-process backend uses, so identical configurations produce
	// identical gradient streams over either backend.
	Seed int64
	// L1, L2 are the regularisation weights.
	L1, L2 float64
	// Recoup selects the policy for slots whose gradient missed the round
	// deadline: DropGradient (default) proceeds without them, FillNaN
	// submits a non-finite vector in their place (the GAR must contain
	// it), FillRandom substitutes a seed-derived random vector. All three
	// are deterministic functions of (seed, step, worker id).
	Recoup transport.RecoupPolicy
	// Async configures asynchronous bounded-staleness rounds. The slow
	// schedule is evaluated at both endpoints (ps.SlowSeed), so the server
	// knows which step tag every slot will carry — a round settles the
	// moment the scheduled quorum is in, with no deadline involved.
	Async ps.AsyncConfig
	// Churn configures the deterministic worker crash/rejoin schedule
	// (ps.ChurnSeed), evaluated at both endpoints: a scheduled worker
	// receives the broadcast, tears its connection down without
	// submitting, and reconnects through the backoff dialer at its
	// scheduled rejoin round — the server's MembershipTracker knows which
	// slots can never arrive and settles rounds without deadline waits.
	// Incompatible with Async, Unresponsive and informed attacks.
	Churn ps.ChurnConfig

	// testAbruptClose (tests only) makes the given worker close its
	// connection without submitting as soon as it receives the broadcast
	// for the given step — the abrupt, unscheduled mid-round disconnect
	// the dead-marking path must absorb by settling the round via recoup
	// instead of wedging until RoundTimeout.
	testAbruptClose map[int]int
}

// recvEvent is one message from a connection reader: a gradient, or the
// reader's terminal error. worker is the id the connection last identified
// itself as, -1 if it died before sending anything.
type recvEvent struct {
	msg    *transport.GradientMsg
	worker int
	err    error
}

// TCPCluster is a running socket-distributed deployment that implements
// ps.Trainer: Start accepts the workers once, then each Step broadcasts the
// model, collects id-slotted gradients under the round timeout, aggregates
// and applies the optimizer.
type TCPCluster struct {
	cfg        TCPClusterConfig
	ln         *transport.TCPListener
	conns      []*transport.TCPConn
	inbox      chan recvEvent
	workerWG   sync.WaitGroup
	readerWG   sync.WaitGroup
	workerErrs chan error

	server *nn.Network
	params tensor.Vector
	ws     *gar.Workspace // per-cluster aggregation scratch arena
	step   int

	// dead marks identified workers whose connection is gone; suspected
	// marks workers that missed a round deadline and are no longer waited
	// for (a late gradient for the current step re-admits them).
	dead      map[int]bool
	suspected map[int]bool

	// Churn state (nil/unused when the schedule is disabled): the
	// membership tracker, the handshake channel the churn accept loop
	// feeds, a stash for handshakes that arrived ahead of their scheduled
	// rejoin round, a stop signal for in-flight handshake readers, and the
	// accept-loop waitgroup.
	membership  *ps.MembershipTracker
	rejoinCh    chan tcpRejoin
	rejoinStash []tcpRejoin
	stop        chan struct{}
	acceptWG    sync.WaitGroup

	started bool
	closed  bool
}

// tcpRejoin pairs a freshly accepted reconnect with its handshake frame.
type tcpRejoin struct {
	conn  *transport.TCPConn
	hello *transport.GradientMsg
}

var _ ps.Trainer = (*TCPCluster)(nil)

// NewTCPCluster validates the configuration and builds the (not yet
// listening) cluster. Attack names are resolved here so a misconfigured
// deployment fails before any socket is opened.
func NewTCPCluster(cfg TCPClusterConfig) (*TCPCluster, error) {
	if cfg.ModelFactory == nil || cfg.GAR == nil || cfg.Optimizer == nil || cfg.Train == nil {
		return nil, errors.New("cluster: TCPCluster config missing required field")
	}
	if cfg.Workers <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("cluster: bad sizes workers=%d batch=%d", cfg.Workers, cfg.Batch)
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	if info, ok := cfg.GAR.(gar.ByzantineInfo); ok {
		if cfg.Workers < info.MinWorkers() {
			return nil, fmt.Errorf("cluster: %s(f=%d) needs %d workers, got %d",
				cfg.GAR.Name(), info.F(), info.MinWorkers(), cfg.Workers)
		}
	}
	for _, id := range sortedIDs(cfg.Byzantine) {
		if id < 0 || id >= cfg.Workers {
			return nil, fmt.Errorf("cluster: Byzantine worker id %d outside [0, %d)", id, cfg.Workers)
		}
		if _, err := attack.New(cfg.Byzantine[id]); err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", id, err)
		}
	}
	for _, id := range sortedIDs(cfg.Unresponsive) {
		if id < 0 || id >= cfg.Workers {
			return nil, fmt.Errorf("cluster: unresponsive worker id %d outside [0, %d)", id, cfg.Workers)
		}
	}
	if err := cfg.Async.Validate(cfg.Workers); err != nil {
		return nil, err
	}
	if err := rejectInformedWithSlow(cfg.Byzantine, cfg.Async); err != nil {
		return nil, err
	}
	if err := cfg.Churn.Validate(); err != nil {
		return nil, err
	}
	if cfg.Churn.Enabled() {
		if cfg.Async.Enabled() {
			return nil, fmt.Errorf("cluster: %w (quorum %d with churn rate %v)",
				ps.ErrChurnAsync, cfg.Async.Quorum, cfg.Churn.Rate)
		}
		if ids := sortedIDs(cfg.Unresponsive); len(ids) > 0 {
			return nil, fmt.Errorf("cluster: unresponsive worker %d cannot compose with churn: it never identifies on the wire, so a scheduled teardown cannot be told from a failure", ids[0])
		}
		if err := rejectInformedWithChurn(cfg.Byzantine, cfg.Churn); err != nil {
			return nil, err
		}
	}
	c := &TCPCluster{
		cfg:        cfg,
		server:     cfg.ModelFactory(),
		workerErrs: make(chan error, cfg.Workers),
		dead:       map[int]bool{},
		suspected:  map[int]bool{},
		ws:         gar.NewWorkspace(),
	}
	if cfg.Churn.Enabled() {
		c.membership = ps.NewMembershipTracker(cfg.Churn, cfg.Seed, cfg.Workers)
		c.rejoinCh = make(chan tcpRejoin, cfg.Workers)
		c.stop = make(chan struct{})
	}
	c.params = c.server.ParamsVector()
	return c, nil
}

// Start binds the listener, launches the worker goroutines and accepts their
// connections. It must be called exactly once before Step.
func (c *TCPCluster) Start() error {
	if c.started {
		return errors.New("cluster: Start called twice")
	}
	if c.closed {
		return errors.New("cluster: Start after Close")
	}
	ln, err := transport.ListenTCP(c.cfg.Addr, c.cfg.Codec)
	if err != nil {
		return err
	}
	c.ln = ln
	for id := 0; id < c.cfg.Workers; id++ {
		c.workerWG.Add(1)
		go func(id int) {
			defer c.workerWG.Done()
			if err := runTCPClusterWorker(ln.Addr(), id, &c.cfg); err != nil {
				c.workerErrs <- fmt.Errorf("worker %d: %w", id, err)
			}
		}(id)
	}
	// Accept every worker, but watch for worker startup failures (a dial
	// error) so a worker that never connects fails Start instead of
	// leaving Accept waiting forever for the nth connection.
	type acceptResult struct {
		conn *transport.TCPConn
		err  error
	}
	acceptCh := make(chan acceptResult, c.cfg.Workers)
	//aggrevet:goro exits after n accepts or the first error; abortStart closes the listener to unblock a pending Accept
	go func() {
		for i := 0; i < c.cfg.Workers; i++ {
			conn, err := ln.Accept()
			acceptCh <- acceptResult{conn: conn, err: err}
			if err != nil {
				return
			}
		}
	}()
	c.conns = make([]*transport.TCPConn, 0, c.cfg.Workers)
	for len(c.conns) < c.cfg.Workers {
		//aggrevet:select startup-only race: a ready workerErrs means the run is already doomed, and either order reaches the same abort
		select {
		case r := <-acceptCh:
			if r.err != nil {
				c.abortStart()
				return r.err
			}
			c.conns = append(c.conns, r.conn)
		case err := <-c.workerErrs:
			c.abortStart()
			return fmt.Errorf("cluster: worker failed during startup: %w", err)
		}
	}
	// One persistent reader per connection: gradients from every round —
	// including late straggler submissions — funnel into the inbox, where
	// Step slots them by self-declared worker id.
	c.inbox = make(chan recvEvent, 2*c.cfg.Workers)
	for _, conn := range c.conns {
		c.startReader(conn, -1)
	}
	if c.cfg.Churn.Enabled() {
		c.acceptRejoins()
	}
	c.started = true
	return nil
}

// startReader launches the persistent reader for one connection. worker is
// the id the connection is already known to speak for (-1 for the initial
// anonymous accepts; the rejoin handshake identifies reconnects up front).
func (c *TCPCluster) startReader(conn *transport.TCPConn, worker int) {
	c.readerWG.Add(1)
	go func() {
		defer c.readerWG.Done()
		for {
			msg, err := conn.RecvGradient()
			if err != nil {
				c.inbox <- recvEvent{worker: worker, err: err}
				return
			}
			worker = msg.Worker
			c.inbox <- recvEvent{msg: msg, worker: msg.Worker}
		}
	}()
}

// acceptRejoins keeps the listener accepting after startup (churn only): a
// crashed worker dials back through the backoff ladder whenever its schedule
// says, sends the rejoin handshake as its first frame, and the connection is
// handed to Step — which admits it through the MembershipTracker at the
// scheduled rejoin round. The loop exits when Close releases the listener.
func (c *TCPCluster) acceptRejoins() {
	c.acceptWG.Add(1)
	go func() {
		defer c.acceptWG.Done()
		for {
			conn, err := c.ln.Accept()
			if err != nil {
				return // listener closed: shutdown
			}
			c.acceptWG.Add(1)
			go func() {
				defer c.acceptWG.Done()
				hello, err := conn.RecvGradient()
				if err != nil {
					conn.Close()
					return
				}
				select {
				case c.rejoinCh <- tcpRejoin{conn: conn, hello: hello}:
				case <-c.stop:
					conn.Close()
				}
			}()
		}
	}()
}

// abortStart tears a failed startup down completely: accepted connections
// are closed (unblocking their workers' RecvModel), the listener is closed
// (unblocking the accept goroutine), and the worker goroutines are waited
// for — no leak per failed deployment, and the later deferred Close stays a
// safe no-op.
func (c *TCPCluster) abortStart() {
	c.closed = true
	for _, conn := range c.conns {
		conn.Close()
	}
	c.ln.Close()
	c.workerWG.Wait()
}

// Step runs one synchronous round over the sockets.
func (c *TCPCluster) Step() (*ps.StepResult, error) {
	if !c.started {
		return nil, errors.New("cluster: Step before Start")
	}
	if c.closed {
		return nil, errors.New("cluster: Step after Close")
	}
	n := c.cfg.Workers
	res := &ps.StepResult{Step: c.step}

	// Asynchronous schedule: the same ps.SlowSeed evaluation the workers
	// perform, so the server knows which step tag every slot will carry
	// this round and which slots will never be filled (expect -1).
	var expect []int
	if c.cfg.Async.Enabled() {
		expect = make([]int, n)
		for id := range expect {
			expect[id] = c.cfg.Async.ExpectedTag(c.cfg.Seed, c.step, id)
			if expect[id] < 0 {
				res.DroppedStale++
			}
		}
	}

	// Churn schedule: the same ps.ChurnSeed evaluation the workers
	// perform. Scheduled rejoins are admitted before the broadcast so a
	// reconnected worker receives this round's model; crashed and down
	// workers' slots are dropped by design — never awaited, never
	// recouped.
	var phases []ps.ChurnPhase
	if c.membership != nil {
		phases = c.membership.BeginRound(c.step)
		if err := c.admitRejoins(); err != nil {
			return nil, err
		}
		res.Crashes = c.membership.RoundCrashes()
		res.Rejoins = c.membership.RoundRejoins()
		res.ReconnectAttempts = c.membership.RoundReconnectAttempts()
	}

	// Broadcast phase (parallel sends). Suspected workers are included — a
	// straggler that recovers can rejoin the round. Sends to dead
	// connections fail harmlessly; their readers already reported.
	var sendWG sync.WaitGroup
	var liveSends int64
	var liveMu sync.Mutex
	for _, conn := range c.conns {
		sendWG.Add(1)
		go func(conn *transport.TCPConn) {
			defer sendWG.Done()
			if err := conn.SendModel(&transport.ModelMsg{Step: c.step, Params: c.params}); err == nil {
				liveMu.Lock()
				liveSends++
				liveMu.Unlock()
			}
		}(conn)
	}
	sendWG.Wait()
	if liveSends == 0 {
		return nil, fmt.Errorf("cluster: no live worker connections at step %d", c.step)
	}

	// Collection phase: wait for every live, unsuspected worker's gradient
	// or the round deadline, whichever comes first. Gradients are slotted
	// by self-declared worker id — accept order is a race, and aggregating
	// in a scheduling-dependent order would make even all-honest
	// distributed runs non-reproducible (floating-point summation is
	// order-sensitive).
	grads := make([]tensor.Vector, n)
	losses := make([]float64, n)
	got := make([]bool, n)
	outstanding := func() int {
		m := 0
		for id := 0; id < n; id++ {
			if expect != nil && expect[id] < 0 {
				continue // scheduled too-stale: the slot will never fill
			}
			if phases != nil && !churnParticipates(phases[id]) {
				continue // scheduled crash/down: the slot will never fill
			}
			if !got[id] && !c.dead[id] && !c.suspected[id] {
				m++
			}
		}
		return m
	}
	timer := newRoundTimer(c.cfg.RoundTimeout)
	defer timer.Stop()
	for outstanding() > 0 {
		//aggrevet:select a ready timer means a missed deadline that aborts the round loudly; healthy gathers never race it
		select {
		case ev := <-c.inbox:
			if ev.err != nil {
				if ev.worker < 0 {
					// A connection that dies before its worker ever
					// identified itself is a deployment failure (a healthy
					// worker only disconnects after the server hangs up),
					// not Byzantine behaviour to tolerate.
					return nil, fmt.Errorf("cluster: worker connection lost before first gradient at step %d: %w",
						c.step, c.workerFailure(ev.err))
				}
				if c.membership != nil && c.membership.Churned(ev.worker) {
					// A scheduled teardown: the worker closed its side per
					// the churn schedule (or its pre-crash connection's
					// reader is winding down). Not a death — it rejoins on
					// a fresh connection at its scheduled round.
					continue
				}
				c.dead[ev.worker] = true
				continue
			}
			msg := ev.msg
			if msg.Worker < 0 || msg.Worker >= n {
				return nil, fmt.Errorf("cluster: gradient from out-of-range worker id %d", msg.Worker)
			}
			want := c.step
			if expect != nil {
				want = expect[msg.Worker]
			}
			if msg.Step != want {
				if msg.Step < c.step {
					continue // stale straggler submission from an earlier round
				}
				return nil, fmt.Errorf("cluster: gradient for future step %d at step %d", msg.Step, c.step)
			}
			if got[msg.Worker] {
				// A lying worker reusing another id must fail loudly, not
				// silently shrink the honest set.
				return nil, fmt.Errorf("cluster: duplicate gradient for worker id %d at step %d", msg.Worker, c.step)
			}
			if msg.Step < c.step {
				res.AdmittedStale++
			}
			got[msg.Worker] = true
			grads[msg.Worker] = msg.Grad
			losses[msg.Worker] = msg.Loss
			delete(c.suspected, msg.Worker) // recovered straggler rejoins the quorum
		case <-timer.C:
			// Deadline: the round proceeds with whatever arrived (the
			// paper's bounded waiting). Missing workers are suspected and
			// not waited for in later rounds, so one unresponsive node
			// costs one timeout, not one per round.
			for id := 0; id < n; id++ {
				if !got[id] && !c.dead[id] && !c.suspected[id] {
					c.suspected[id] = true
				}
			}
		}
	}

	// Recoup phase: absent slots are handled by the configured policy, a
	// deterministic function of (seed, step, worker id).
	received := make([]tensor.Vector, 0, n)
	for id := 0; id < n; id++ {
		if got[id] {
			received = append(received, grads[id])
			continue
		}
		if expect != nil && expect[id] < 0 {
			continue // scheduled too-stale: dropped by design, never recouped
		}
		if phases != nil && !churnParticipates(phases[id]) {
			continue // scheduled crash/down: dropped by design, never recouped
		}
		if v := c.recoupSlot(id); v != nil {
			received = append(received, v)
		}
	}
	res.Received = len(received)

	// Mean honest loss (diagnostic only; Byzantine losses are excluded).
	var lossSum float64
	var lossN int
	for id := 0; id < n; id++ {
		if !got[id] {
			continue
		}
		if _, byz := c.cfg.Byzantine[id]; byz {
			continue
		}
		lossSum += losses[id]
		lossN++
	}
	if lossN > 0 {
		res.Loss = lossSum / float64(lossN)
	}

	// Quorum gate: an asynchronous round below the scheduled quorum is
	// skipped rather than waited on, mirroring the in-process Cluster.
	if c.cfg.Async.Enabled() && len(received) < c.cfg.Async.EffectiveQuorum(n) {
		res.Skipped = true
		c.step++
		return res, nil
	}

	// Below-bound gate: when churn shrinks live membership under the
	// GAR's Byzantine safety bound (n_live < MinWorkers, e.g. 2f+3 for
	// Krum-family rules), aggregating would be unsafe — the rule's
	// resilience proof no longer holds for the configured f. The round is
	// skipped explicitly, without calling the GAR, and counted.
	if c.membership != nil {
		if info, ok := c.cfg.GAR.(gar.ByzantineInfo); ok && c.membership.Live() < info.MinWorkers() {
			res.BelowBound = true
			res.Skipped = true
			c.step++
			return res, nil
		}
	}

	// Aggregation + descent phase, mirroring the in-process Cluster: a
	// round whose survivor count violates the GAR's quorum is skipped, not
	// deadlocked.
	agg, err := gar.AggregateInto(c.ws, c.cfg.GAR, received)
	if err != nil {
		if errors.Is(err, gar.ErrTooFewWorkers) || errors.Is(err, gar.ErrNoGradients) {
			res.Skipped = true
			c.step++
			return res, nil
		}
		return nil, fmt.Errorf("cluster: aggregation at step %d: %w", c.step, err)
	}
	opt.Regularize(agg, c.params, c.cfg.L1, c.cfg.L2)
	c.cfg.Optimizer.Step(c.step, c.params, agg)
	c.server.SetParamsVector(c.params)
	c.step++
	return res, nil
}

// admitRejoins installs this round's scheduled reconnects before the
// broadcast, so a rejoined worker receives the current model. A worker
// dials back (and hands its handshake to the accept loop) the moment it
// crashes, not at its rejoin round, so early handshakes wait in the stash;
// a handshake that fails to appear by the round timeout is a loud error —
// the schedule said the worker would be back.
func (c *TCPCluster) admitRejoins() error {
	stash := c.rejoinStash[:0]
	for _, rj := range c.rejoinStash {
		if rj.hello.Step < c.step {
			rj.conn.Close()
			return fmt.Errorf("cluster: stale rejoin handshake for worker %d (step %d) at step %d",
				rj.hello.Worker, rj.hello.Step, c.step)
		}
		if rj.hello.Step == c.step {
			if err := c.installRejoin(rj); err != nil {
				return err
			}
			continue
		}
		stash = append(stash, rj)
	}
	c.rejoinStash = stash
	if c.membership.PendingRejoins() == 0 {
		return nil
	}
	timer := newRoundTimer(c.cfg.RoundTimeout)
	defer timer.Stop()
	for c.membership.PendingRejoins() > 0 {
		//aggrevet:select a ready timer means a missed rejoin deadline that aborts the round loudly; healthy rejoins never race it
		select {
		case rj := <-c.rejoinCh:
			if rj.hello.Step > c.step {
				c.rejoinStash = append(c.rejoinStash, rj)
				continue
			}
			if err := c.installRejoin(rj); err != nil {
				return err
			}
		case <-timer.C:
			return fmt.Errorf("cluster: %d scheduled rejoin handshake(s) missing at step %d after %v",
				c.membership.PendingRejoins(), c.step, c.cfg.RoundTimeout)
		}
	}
	return nil
}

// installRejoin offers one handshake to the MembershipTracker and, on
// admission, installs the fresh connection: it joins the broadcast set and
// gets a persistent reader pre-identified by the handshake.
func (c *TCPCluster) installRejoin(rj tcpRejoin) error {
	hello := rj.hello
	if v := c.membership.Admit(hello.Worker, hello.Step, int(hello.Loss)); v != ps.RejoinAdmit {
		rj.conn.Close()
		return fmt.Errorf("cluster: rejoin handshake for worker %d (step %d) rejected at step %d: %v",
			hello.Worker, hello.Step, c.step, v)
	}
	delete(c.dead, hello.Worker)
	delete(c.suspected, hello.Worker)
	c.conns = append(c.conns, rj.conn)
	c.startReader(rj.conn, hello.Worker)
	return nil
}

// recoupSlot produces the stand-in gradient for a slot that missed the round
// deadline, per the configured recoup policy. nil means the slot is dropped.
func (c *TCPCluster) recoupSlot(id int) tensor.Vector {
	switch c.cfg.Recoup {
	case transport.FillNaN:
		v := tensor.NewVector(c.params.Dim())
		for i := range v {
			v[i] = math.NaN()
		}
		return v
	case transport.FillRandom:
		rng := rand.New(rand.NewSource(ps.RecoupSeed(c.cfg.Seed, c.step, id)))
		v := tensor.NewVector(c.params.Dim())
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	default: // DropGradient: proceed without the slot
		return nil
	}
}

// workerFailure surfaces the root cause of an anonymous connection loss: the
// failing worker goroutine reports its error just after closing its
// connection, so wait briefly for it before falling back to the read error.
func (c *TCPCluster) workerFailure(readErr error) error {
	//aggrevet:select error-path only: the run already failed, the window merely improves root-cause attribution
	select {
	case err := <-c.workerErrs:
		return err
	case <-failureReportWindow(200 * time.Millisecond):
		return readErr
	}
}

// Model returns the server's evaluation replica, synchronised with the
// current parameters.
func (c *TCPCluster) Model() *nn.Network { return c.server }

// Params returns a copy of the current model parameters.
func (c *TCPCluster) Params() tensor.Vector { return c.params.Clone() }

// StepCount returns the number of rounds run so far.
func (c *TCPCluster) StepCount() int { return c.step }

// Close hangs up every worker connection, waits for the workers and readers
// to exit, and releases the listener. It is idempotent.
func (c *TCPCluster) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if c.stop != nil {
		close(c.stop) // release hello goroutines blocked on rejoinCh
	}
	if !c.started {
		if c.ln != nil {
			c.ln.Close()
		}
		return nil
	}
	for _, conn := range c.conns {
		conn.Close()
	}
	for _, rj := range c.rejoinStash {
		rj.conn.Close()
	}
	// Drain reader events until every reader has exited, so none blocks on
	// a full inbox while shutting down; workers exit on the closed
	// connection (post-shutdown read errors are expected, not surfaced).
	done := make(chan struct{})
	go func() {
		c.readerWG.Wait()
		close(done)
	}()
	for drained := false; !drained; {
		//aggrevet:select shutdown drain: received events are discarded, so resolution order cannot reach results
		select {
		case <-c.inbox:
		case <-done:
			drained = true
		}
	}
	err := c.ln.Close() // unblocks the rejoin accept loop, if any
	c.acceptWG.Wait()
	// Handshakes that arrived after the last admitted round still own live
	// connections; hang those up so their workers' RecvModel returns.
	for churnDrained := false; !churnDrained; {
		select {
		case rj := <-c.rejoinCh:
			rj.conn.Close()
		default:
			churnDrained = true
		}
	}
	c.workerWG.Wait()
	return err
}

// workerSpec extracts the backend-independent worker description (shared
// with the UDP backend — see worker.go).
func (cfg *TCPClusterConfig) workerSpec() workerSpec {
	return workerSpec{
		ModelFactory: cfg.ModelFactory,
		Train:        cfg.Train,
		Batch:        cfg.Batch,
		Workers:      cfg.Workers,
		Byzantine:    cfg.Byzantine,
		Unresponsive: cfg.Unresponsive,
		Seed:         cfg.Seed,
		Async:        cfg.Async,
	}
}

// runTCPClusterWorker is the worker main loop: dial, then model→gradient
// until the server hangs up. Under a churn schedule the worker evaluates
// the same seeded draws as the server: on a scheduled crash it tears the
// socket down without a goodbye, dials back through the bounded backoff
// ladder, and opens the fresh connection with a rejoin handshake the server
// holds until the scheduled rejoin round.
func runTCPClusterWorker(addr string, id int, cfg *TCPClusterConfig) error {
	conn, err := transport.DialTCP(addr, cfg.Codec)
	if err != nil {
		return err
	}
	defer func() { conn.Close() }()
	w, err := newClusterWorker(id, cfg.workerSpec())
	if err != nil {
		return err
	}
	for {
		model, err := conn.RecvModel()
		if err != nil {
			return nil // server hung up: normal termination
		}
		if cfg.Churn.Enabled() {
			switch cfg.Churn.Phase(cfg.Seed, model.Step, id) {
			case ps.ChurnCrash:
				conn.Close() // abrupt teardown: no goodbye, no submission
				if cfg.Churn.Permanent(cfg.Seed, model.Step, id) {
					return nil // rejoin budget exhausted: gone for good
				}
				// Dial back immediately; the handshake waits server-side
				// until the scheduled rejoin round admits it.
				fresh, attempts, err := dialTCPWithBackoff(addr, cfg.Codec)
				if err != nil {
					return err
				}
				conn = fresh
				hello := rejoinHello(id, model.Step+cfg.Churn.DownSteps, attempts)
				if err := conn.SendGradient(hello); err != nil {
					return err
				}
				continue
			case ps.ChurnDown:
				continue // defensive: a down worker holds no connection
			}
		}
		if s, ok := cfg.testAbruptClose[id]; ok && model.Step == s {
			conn.Close() // test hook: vanish between broadcast and submit
			return nil
		}
		if cfg.Unresponsive[id] {
			continue // consume the broadcast, never answer (crashed node)
		}
		sub := w.roundSubmission(model)
		if sub == nil {
			continue // scheduled too-stale: the worker sits the round out
		}
		if err := conn.SendGradient(sub); err != nil {
			return err
		}
	}
}
