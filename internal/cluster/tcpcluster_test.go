package cluster

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/transport"
)

// matrixDeployment builds the shared fixture for the distributed Byzantine
// matrix: a 7-worker localhost cluster (enough for bulyan at f=1) over a
// 3-class synthetic feature task.
func matrixDeployment(t *testing.T, rule gar.GAR, byz map[int]string, unresponsive map[int]bool, timeout time.Duration) (*TCPCluster, *data.Dataset, func() *nn.Network) {
	t.Helper()
	ds := data.SyntheticFeatures(300, 10, 3, 50)
	ds.MinMaxScale()
	train, test := ds.Split(0.8)
	factory := func() *nn.Network {
		return nn.NewMLP(10, []int{16}, 3, rand.New(rand.NewSource(51)))
	}
	cl, err := NewTCPCluster(TCPClusterConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      7,
		GAR:          rule,
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
		Train:        train,
		Byzantine:    byz,
		Unresponsive: unresponsive,
		RoundTimeout: timeout,
		Seed:         13,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, test, factory
}

// TestTCPClusterByzantineMatrix is the end-to-end distributed matrix:
// {krum, multi-krum, bulyan, median, average} × {non-finite, reversed,
// omniscient} over real sockets, one Byzantine worker among seven. The
// robust rules must keep training convergent; plain averaging must be
// poisoned by the blind attacks (the omniscient construction deliberately
// stays inside the acceptance envelope, so poisoning plain averaging is not
// part of its contract and only convergence of the robust rules is
// asserted).
func TestTCPClusterByzantineMatrix(t *testing.T) {
	newRule := func(name string) gar.GAR {
		rule, err := gar.New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rule
	}
	type cell struct {
		rule, attack string
		// wantPoisoned asserts training was destroyed (non-finite
		// parameters or near-chance accuracy); otherwise convergence is
		// asserted.
		wantPoisoned bool
	}
	var cells []cell
	for _, rule := range []string{"krum", "multi-krum", "bulyan", "median"} {
		for _, atk := range []string{"non-finite", "reversed", "omniscient"} {
			cells = append(cells, cell{rule: rule, attack: atk})
		}
	}
	cells = append(cells,
		cell{rule: "average", attack: "non-finite", wantPoisoned: true},
		cell{rule: "average", attack: "reversed", wantPoisoned: true},
	)

	for _, tc := range cells {
		t.Run(tc.rule+"/"+tc.attack, func(t *testing.T) {
			t.Parallel()
			steps := 100
			if tc.wantPoisoned {
				steps = 60 // enough rounds for the poisoned ascent to destroy the model
			}
			cl, test, factory := matrixDeployment(t, newRule(tc.rule), map[int]string{6: tc.attack}, nil, 0)
			if err := cl.Start(); err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for i := 0; i < steps; i++ {
				if _, err := cl.Step(); err != nil {
					t.Fatal(err)
				}
			}
			params := cl.Params()
			if tc.wantPoisoned {
				// Poisoning manifests as non-finite parameters (NaN
				// payloads survive averaging) or as a saturated model
				// collapsed to constant predictions (~majority-class
				// accuracy, far below the ≥0.80 the robust rules reach).
				if params.IsFinite() {
					model := factory()
					model.SetParamsVector(params)
					if acc := model.Accuracy(test.X, test.Y); acc > 0.6 {
						t.Fatalf("averaging should be poisoned under %s, got accuracy %v", tc.attack, acc)
					}
				}
				return
			}
			if !params.IsFinite() {
				t.Fatalf("%s let non-finite parameters through under %s", tc.rule, tc.attack)
			}
			model := factory()
			model.SetParamsVector(params)
			if acc := model.Accuracy(test.X, test.Y); acc < 0.7 {
				t.Fatalf("%s under %s converged to accuracy %v", tc.rule, tc.attack, acc)
			}
		})
	}
}

// TestTCPClusterStragglerRoundTimeout is the matrix's round-timeout cell: an
// unresponsive worker (the paper's node vanilla TensorFlow would wait on
// forever) costs the deployment exactly one collection deadline — it is
// suspected afterwards — and training converges on the surviving quorum,
// Byzantine worker included.
func TestTCPClusterStragglerRoundTimeout(t *testing.T) {
	cl, test, factory := matrixDeployment(t, gar.NewMultiKrum(1),
		map[int]string{6: "non-finite"}, map[int]bool{4: true}, 250*time.Millisecond)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	start := time.Now()
	sr, err := cl.Step()
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Fatalf("first round returned in %v, before the deadline", elapsed)
	}
	if sr.Received != 6 {
		t.Fatalf("first round received %d gradients, want 6 (one straggler timed out)", sr.Received)
	}
	for i := 1; i < 80; i++ {
		sr, err = cl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Received != 6 {
			t.Fatalf("round %d received %d gradients, want 6", i, sr.Received)
		}
		if sr.Skipped {
			t.Fatalf("round %d skipped despite a 6-worker quorum", i)
		}
	}
	params := cl.Params()
	if !params.IsFinite() {
		t.Fatal("parameters went non-finite")
	}
	model := factory()
	model.SetParamsVector(params)
	if acc := model.Accuracy(test.X, test.Y); acc < 0.7 {
		t.Fatalf("straggler cell converged to accuracy %v", acc)
	}
}

// TestTCPClusterRecoupPolicies covers the timed-out-slot recoup policies:
// FillNaN substitutes a non-finite vector for the missing slot (so the GAR
// must contain it — selective averaging does), FillRandom substitutes a
// seed-derived random vector, and both keep the slot in the received count.
func TestTCPClusterRecoupPolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy transport.RecoupPolicy
		rule   gar.GAR
	}{
		{name: "fill-nan", policy: transport.FillNaN, rule: gar.SelectiveAverage{}},
		{name: "fill-random", policy: transport.FillRandom, rule: gar.NewMultiKrum(1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := data.SyntheticFeatures(120, 6, 3, 9)
			ds.MinMaxScale()
			factory := func() *nn.Network {
				return nn.NewMLP(6, []int{8}, 3, rand.New(rand.NewSource(10)))
			}
			cl, err := NewTCPCluster(TCPClusterConfig{
				Addr:         "127.0.0.1:0",
				ModelFactory: factory,
				Workers:      5,
				GAR:          tc.rule,
				Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
				Batch:        8,
				Train:        ds,
				Unresponsive: map[int]bool{2: true},
				RoundTimeout: 200 * time.Millisecond,
				Recoup:       tc.policy,
				Seed:         7,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := cl.Start(); err != nil {
				t.Fatal(err)
			}
			defer cl.Close()
			for i := 0; i < 3; i++ {
				sr, err := cl.Step()
				if err != nil {
					t.Fatal(err)
				}
				if sr.Received != 5 {
					t.Fatalf("round %d received %d, want 5 (missing slot recouped)", i, sr.Received)
				}
			}
			if !cl.Params().IsFinite() {
				t.Fatalf("%s let the recouped slot poison the parameters", tc.rule.Name())
			}
		})
	}
}

// TestTCPClusterDeterministicRounds pins round-level reproducibility at the
// cluster layer: two socket deployments with the same seed produce
// bit-identical parameters after the same number of rounds, and a third with
// a different seed diverges (the seed actually threads through).
func TestTCPClusterDeterministicRounds(t *testing.T) {
	run := func(seed int64) []float64 {
		ds := data.SyntheticFeatures(120, 6, 3, 9)
		ds.MinMaxScale()
		factory := func() *nn.Network {
			return nn.NewMLP(6, []int{8}, 3, rand.New(rand.NewSource(10)))
		}
		cl, err := NewTCPCluster(TCPClusterConfig{
			Addr:         "127.0.0.1:0",
			ModelFactory: factory,
			Workers:      5,
			GAR:          gar.NewMultiKrum(1),
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}},
			Batch:        8,
			Train:        ds,
			Byzantine:    map[int]string{4: "random"},
			Seed:         seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < 15; i++ {
			if _, err := cl.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return cl.Params()
	}
	a, b, c := run(3), run(3), run(4)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("same-seed runs diverged at parameter %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical parameters; the seed is not threaded")
	}
}

// TestTCPClusterTrainerSurface pins the ps.Trainer contract details the
// training loop relies on: Step before Start fails, StepResult.Step counts
// rounds, and Model stays synchronised with the aggregated parameters.
func TestTCPClusterTrainerSurface(t *testing.T) {
	var _ ps.Trainer = (*TCPCluster)(nil)
	ds := data.SyntheticFeatures(60, 4, 2, 5)
	factory := func() *nn.Network { return nn.NewMLP(4, nil, 2, rand.New(rand.NewSource(6))) }
	cl, err := NewTCPCluster(TCPClusterConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      3,
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        4,
		Train:        ds,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Step(); err == nil {
		t.Fatal("Step before Start succeeded")
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 2; i++ {
		sr, err := cl.Step()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Step != i {
			t.Fatalf("round %d reported step %d", i, sr.Step)
		}
		if sr.Received != 3 || sr.Skipped || sr.Hijacked {
			t.Fatalf("unexpected step result %+v", sr)
		}
	}
	if cl.StepCount() != 2 {
		t.Fatalf("step count %d", cl.StepCount())
	}
	got := cl.Model().ParamsVector()
	want := cl.Params()
	for i := range want {
		if got[i] != want[i] {
			t.Fatal("Model() out of sync with Params()")
		}
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.Close(); err != nil {
		t.Fatal("Close is not idempotent")
	}
	if _, err := cl.Step(); err == nil {
		t.Fatal("Step after Close succeeded")
	}
}
