package cluster

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// TestUDPClusterChurnByzantineMatrix layers the churn schedule onto the
// paper's headline lossy configuration: {multi-krum, median} ×
// {non-finite, reversed} over real UDP sockets at 10% seeded packet loss
// with fill-random recoup, one Byzantine worker among seven, workers
// crashing and rejoining on the seeded schedule. Three assertions per cell:
// every round's received count equals the schedule's participant count
// exactly (fill-random recoups every participating slot; crashed/down slots
// are dropped by design), the cumulative crash/rejoin counters equal the
// independent schedule replay, and training still converges.
func TestUDPClusterChurnByzantineMatrix(t *testing.T) {
	churn := ps.ChurnConfig{Rate: 0.03, DownSteps: 2, MaxRejoins: 5}
	const seed, steps, workers = 13, 120, 7
	wantCrashes, wantRejoins, _ := churnExpectation(churn, seed, steps, workers, 0)
	if wantCrashes == 0 || wantRejoins == 0 {
		t.Fatalf("dead fixture: schedule has %d crashes / %d rejoins", wantCrashes, wantRejoins)
	}
	participants := make([]int, steps)
	for s := 0; s < steps; s++ {
		for w := 0; w < workers; w++ {
			if churnParticipates(churn.Phase(seed, s, w)) {
				participants[s]++
			}
		}
	}
	newRule := func(name string) gar.GAR {
		rule, err := gar.New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rule
	}
	for _, rule := range []string{"multi-krum", "median"} {
		for _, atk := range []string{"non-finite", "reversed"} {
			rule, atk := rule, atk
			t.Run(rule+"/"+atk, func(t *testing.T) {
				t.Parallel()
				ds := data.SyntheticFeatures(300, 10, 3, 50)
				ds.MinMaxScale()
				train, test := ds.Split(0.8)
				factory := func() *nn.Network {
					return nn.NewMLP(10, []int{16}, 3, rand.New(rand.NewSource(51)))
				}
				cl, err := NewUDPCluster(UDPClusterConfig{
					Addr:         "127.0.0.1:0",
					ModelFactory: factory,
					Workers:      workers,
					GAR:          newRule(rule),
					Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}},
					Batch:        32,
					Train:        train,
					Byzantine:    map[int]string{6: atk},
					DropRate:     0.10,
					Recoup:       transport.FillRandom,
					MTU:          256, // several packets per gradient: loss really bites
					Churn:        churn,
					Seed:         seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := cl.Start(); err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				var crashes, rejoins, attempts int
				for i := 0; i < steps; i++ {
					sr, err := cl.Step()
					if err != nil {
						t.Fatal(err)
					}
					if sr.Received != participants[i] {
						t.Fatalf("round %d received %d gradients, want %d scheduled participants", i, sr.Received, participants[i])
					}
					crashes += sr.Crashes
					rejoins += sr.Rejoins
					attempts += sr.ReconnectAttempts
				}
				if crashes != wantCrashes || rejoins != wantRejoins || attempts != wantRejoins {
					t.Fatalf("counters diverge from schedule replay: crashes %d (want %d), rejoins %d (want %d), attempts %d (want %d)",
						crashes, wantCrashes, rejoins, wantRejoins, attempts, wantRejoins)
				}
				params := cl.Params()
				if !params.IsFinite() {
					t.Fatalf("%s let non-finite parameters through under %s at 10%% loss with churn", rule, atk)
				}
				model := factory()
				model.SetParamsVector(params)
				if acc := model.Accuracy(test.X, test.Y); acc < 0.7 {
					t.Fatalf("%s under %s at 10%% loss with churn converged to accuracy %v", rule, atk, acc)
				}
			})
		}
	}
}

// TestUDPClusterChurnMatchesTCP pins cross-backend determinism under churn:
// the same seed and schedule over a loss-free UDP deployment and a TCP
// deployment must produce bit-identical parameter trajectories — the churn
// twin of TestUDPClusterLosslessMatchesTCP. Both endpoints of both backends
// evaluate the same ps.ChurnSeed draws, so which rounds each worker misses
// is backend-independent.
func TestUDPClusterChurnMatchesTCP(t *testing.T) {
	churn := ps.ChurnConfig{Rate: 0.05, DownSteps: 2, MaxRejoins: 3}
	const seed, steps = 13, 40
	ds := data.SyntheticFeatures(120, 6, 3, 9)
	ds.MinMaxScale()
	factory := func() *nn.Network {
		return nn.NewMLP(6, []int{8}, 3, rand.New(rand.NewSource(10)))
	}
	type roundCounters struct {
		crashes, rejoins int
		belowBound       bool
	}
	type backend interface {
		Start() error
		Step() (*ps.StepResult, error)
		Params() tensor.Vector
		Close() error
	}
	run := func(mk func() (backend, error)) ([]float64, []roundCounters) {
		cl, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		counters := make([]roundCounters, steps)
		for i := 0; i < steps; i++ {
			sr, err := cl.Step()
			if err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
			counters[i] = roundCounters{crashes: sr.Crashes, rejoins: sr.Rejoins, belowBound: sr.BelowBound}
		}
		return cl.Params(), counters
	}
	u, uc := run(func() (backend, error) {
		cl, err := NewUDPCluster(UDPClusterConfig{
			Addr: "127.0.0.1:0", ModelFactory: factory, Workers: 5,
			GAR: gar.NewMultiKrum(1), Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}},
			Batch: 8, Train: ds, Byzantine: map[int]string{4: "reversed"},
			Churn: churn, Seed: seed,
		})
		return cl, err
	})
	tc, tcc := run(func() (backend, error) {
		cl, err := NewTCPCluster(TCPClusterConfig{
			Addr: "127.0.0.1:0", ModelFactory: factory, Workers: 5,
			GAR: gar.NewMultiKrum(1), Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}},
			Batch: 8, Train: ds, Byzantine: map[int]string{4: "reversed"},
			Churn: churn, Seed: seed,
		})
		return cl, err
	})
	for i := range uc {
		if uc[i] != tcc[i] {
			t.Fatalf("step %d counters diverge across backends: udp %+v vs tcp %+v", i, uc[i], tcc[i])
		}
	}
	for i := range u {
		if math.Float64bits(u[i]) != math.Float64bits(tc[i]) {
			t.Fatalf("udp and tcp churn trajectories diverged at parameter %d: %v vs %v", i, u[i], tc[i])
		}
	}
}
