package cluster

import (
	"fmt"
	"time"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// TCPTrainConfig describes a one-shot socket-distributed training session on
// localhost (or any reachable addresses). It is the fixed-step convenience
// surface over TCPClusterConfig; new code that needs round-by-round control
// (the scenario campaign engine, core's training loop) should build a
// TCPCluster directly.
type TCPTrainConfig struct {
	// Addr is the server bind address ("127.0.0.1:0" picks a free port).
	Addr string
	// ModelFactory builds the network replicas.
	ModelFactory func() *nn.Network
	// Workers is n.
	Workers int
	// GAR aggregates each round.
	GAR gar.GAR
	// Optimizer applies updates.
	Optimizer opt.Optimizer
	// Batch is the per-worker mini-batch.
	Batch int
	// Train provides worker samplers (seeded per worker id).
	Train *data.Dataset
	// Steps is the number of synchronous rounds to run.
	Steps int
	// Codec selects the wire coordinate width.
	Codec transport.Codec
	// RoundTimeout bounds the collection phase (the paper's fix for
	// TensorFlow waiting indefinitely on unresponsive nodes).
	RoundTimeout time.Duration
	// Byzantine maps worker ids to attack names ("random", "non-finite",
	// "reversed", ...): those workers forge their wire submissions. The
	// GAR must tolerate them for training to converge.
	Byzantine map[int]string
	// Seed drives worker sampler and attack randomness.
	Seed int64
}

// TCPTrain runs a fully socket-distributed synchronous training session and
// returns the trained parameters. Workers run as goroutines with their own
// connections; every model broadcast and gradient travels the wire.
func TCPTrain(cfg TCPTrainConfig) (tensor.Vector, error) {
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("cluster: bad step count %d", cfg.Steps)
	}
	cl, err := NewTCPCluster(TCPClusterConfig{
		Addr:         cfg.Addr,
		ModelFactory: cfg.ModelFactory,
		Workers:      cfg.Workers,
		GAR:          cfg.GAR,
		Optimizer:    cfg.Optimizer,
		Batch:        cfg.Batch,
		Train:        cfg.Train,
		Codec:        cfg.Codec,
		RoundTimeout: cfg.RoundTimeout,
		Byzantine:    cfg.Byzantine,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	defer cl.Close()
	for step := 0; step < cfg.Steps; step++ {
		if _, err := cl.Step(); err != nil {
			return nil, err
		}
	}
	return cl.Params(), nil
}
