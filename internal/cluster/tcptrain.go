package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// TCPTrainConfig describes a socket-distributed deployment on localhost (or
// any reachable addresses): one parameter-server process-equivalent and n
// worker goroutines, each speaking the transport wire protocol over its own
// TCP connection.
type TCPTrainConfig struct {
	// Addr is the server bind address ("127.0.0.1:0" picks a free port).
	Addr string
	// ModelFactory builds the network replicas.
	ModelFactory func() *nn.Network
	// Workers is n.
	Workers int
	// GAR aggregates each round.
	GAR gar.GAR
	// Optimizer applies updates.
	Optimizer opt.Optimizer
	// Batch is the per-worker mini-batch.
	Batch int
	// Train provides worker samplers (seeded per worker id).
	Train *data.Dataset
	// Steps is the number of synchronous rounds to run.
	Steps int
	// Codec selects the wire coordinate width.
	Codec transport.Codec
	// RoundTimeout bounds the collection phase (the paper's fix for
	// TensorFlow waiting indefinitely on unresponsive nodes).
	RoundTimeout time.Duration
	// Byzantine maps worker ids to blind attack names ("random",
	// "non-finite", "reversed", ...): those workers forge their wire
	// submissions. The GAR must tolerate them for training to converge.
	Byzantine map[int]string
}

// TCPTrain runs a fully socket-distributed synchronous training session and
// returns the trained parameters. Workers run as goroutines with their own
// connections; every model broadcast and gradient travels the wire.
func TCPTrain(cfg TCPTrainConfig) (tensor.Vector, error) {
	if cfg.ModelFactory == nil || cfg.GAR == nil || cfg.Optimizer == nil || cfg.Train == nil {
		return nil, errors.New("cluster: TCPTrain config missing required field")
	}
	if cfg.Workers <= 0 || cfg.Batch <= 0 || cfg.Steps <= 0 {
		return nil, fmt.Errorf("cluster: bad sizes workers=%d batch=%d steps=%d", cfg.Workers, cfg.Batch, cfg.Steps)
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	ln, err := transport.ListenTCP(cfg.Addr, cfg.Codec)
	if err != nil {
		return nil, err
	}
	defer ln.Close()

	// Launch workers: each dials, then loops model→gradient until the
	// server hangs up.
	var workerWG sync.WaitGroup
	workerErrs := make(chan error, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		workerWG.Add(1)
		go func(id int) {
			defer workerWG.Done()
			if err := runTCPWorker(ln.Addr(), id, cfg); err != nil {
				workerErrs <- fmt.Errorf("worker %d: %w", id, err)
			}
		}(w)
	}

	// Accept all workers.
	conns := make([]*transport.TCPConn, cfg.Workers)
	for i := range conns {
		conn, err := ln.Accept()
		if err != nil {
			return nil, err
		}
		defer conn.Close()
		conns[i] = conn
	}

	server := cfg.ModelFactory()
	params := server.ParamsVector()
	for step := 0; step < cfg.Steps; step++ {
		// Broadcast phase (parallel sends).
		var sendWG sync.WaitGroup
		sendErrs := make(chan error, len(conns))
		for _, conn := range conns {
			sendWG.Add(1)
			go func(conn *transport.TCPConn) {
				defer sendWG.Done()
				if err := conn.SendModel(&transport.ModelMsg{Step: step, Params: params}); err != nil {
					sendErrs <- err
				}
			}(conn)
		}
		sendWG.Wait()
		select {
		case err := <-sendErrs:
			return nil, fmt.Errorf("cluster: broadcast at step %d: %w", step, err)
		default:
		}

		// Collection phase (parallel receives, bounded by timeout via
		// the worker goroutines' liveness; TCP conns without deadlines
		// here because workers are in-process and crash via errs).
		// Gradients are slotted by the self-declared worker id, not the
		// accept order of the connections: accept order is a race, and
		// aggregating in a scheduling-dependent order would make even
		// all-honest distributed runs non-reproducible (floating-point
		// summation is order-sensitive).
		grads := make([]tensor.Vector, cfg.Workers)
		var recvWG sync.WaitGroup
		var gradsMu sync.Mutex
		recvErrs := make(chan error, len(conns))
		for _, conn := range conns {
			recvWG.Add(1)
			go func(conn *transport.TCPConn) {
				defer recvWG.Done()
				msg, err := conn.RecvGradient()
				if err != nil {
					recvErrs <- err
					return
				}
				if msg.Worker < 0 || msg.Worker >= cfg.Workers {
					recvErrs <- fmt.Errorf("gradient from out-of-range worker id %d", msg.Worker)
					return
				}
				gradsMu.Lock()
				dup := grads[msg.Worker] != nil
				if !dup {
					grads[msg.Worker] = msg.Grad
				}
				gradsMu.Unlock()
				if dup {
					// A lying worker reusing another id must fail
					// loudly, not silently shrink the honest set.
					recvErrs <- fmt.Errorf("duplicate gradient for worker id %d", msg.Worker)
				}
			}(conn)
		}
		recvWG.Wait()
		select {
		case err := <-recvErrs:
			return nil, fmt.Errorf("cluster: collection at step %d: %w", step, err)
		default:
		}

		received := make([]tensor.Vector, 0, len(grads))
		for _, g := range grads {
			if g != nil {
				received = append(received, g)
			}
		}
		agg, err := cfg.GAR.Aggregate(received)
		if err != nil {
			return nil, fmt.Errorf("cluster: aggregation at step %d: %w", step, err)
		}
		cfg.Optimizer.Step(step, params, agg)
	}

	// Hang up; workers exit on read error.
	for _, conn := range conns {
		conn.Close()
	}
	workerWG.Wait()
	select {
	case err := <-workerErrs:
		// Post-shutdown read errors are expected; only surface errors
		// that are not connection teardown.
		_ = err
	default:
	}
	server.SetParamsVector(params)
	return params, nil
}

// runTCPWorker is the worker main loop: dial, then model→gradient until the
// connection closes. A Byzantine worker forges its submission from its own
// honest gradient (a blind attack: over real sockets the adversary cannot
// observe the other workers' gradients in flight).
func runTCPWorker(addr string, id int, cfg TCPTrainConfig) error {
	conn, err := transport.DialTCP(addr, cfg.Codec)
	if err != nil {
		return err
	}
	defer conn.Close()
	replica := cfg.ModelFactory()
	sampler := data.NewUniformSampler(cfg.Train, int64(1000+id))
	rng := rand.New(rand.NewSource(int64(7000 + id)))
	var atk attack.Attack
	if name, ok := cfg.Byzantine[id]; ok {
		atk, err = attack.New(name)
		if err != nil {
			return err
		}
	}
	for {
		model, err := conn.RecvModel()
		if err != nil {
			return nil // server hung up: normal termination
		}
		replica.SetParamsVector(model.Params)
		x, y := sampler.Sample(cfg.Batch)
		_, grad := replica.Gradient(x, y)
		if atk != nil {
			grad = atk.Forge(&attack.Context{
				Step: model.Step,
				Own:  grad,
				N:    cfg.Workers,
				F:    len(cfg.Byzantine),
				Dim:  grad.Dim(),
				Rng:  rng,
			})
		}
		if err := conn.SendGradient(&transport.GradientMsg{Worker: id, Step: model.Step, Grad: grad}); err != nil {
			return err
		}
	}
}
