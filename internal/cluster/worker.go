package cluster

import (
	"fmt"
	"math/rand"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/nn"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// workerSpec is the backend-independent description of one cluster worker:
// everything a node needs to turn a model broadcast into a wire submission,
// regardless of whether that submission then travels a TCP stream or a burst
// of UDP datagrams. Both socket backends derive it from their configs so the
// gradient streams — and therefore the trajectories — are identical across
// transports.
type workerSpec struct {
	ModelFactory func() *nn.Network
	Train        *data.Dataset
	Batch        int
	Workers      int
	Byzantine    map[int]string
	Unresponsive map[int]bool
	Seed         int64
	Async        ps.AsyncConfig
}

// clusterWorker is one worker node's state: its model replica, seeded
// sampler, attack RNG, and — for Byzantine workers — the omniscient oracle.
type clusterWorker struct {
	id      int
	spec    workerSpec
	replica *nn.Network
	sampler data.Sampler
	rng     *rand.Rand
	atk     attack.Attack

	// Omniscient oracle. The paper's threat model (§3.1) gives colluders
	// every correct gradient before the server sees them (arbitrarily fast
	// channels). Over real sockets there is nothing in flight to observe,
	// so the adversary recomputes them instead: knowing the run seed, the
	// dataset and the model, it replicates every honest worker's sampler
	// and derives the exact gradients the server is about to receive. This
	// keeps informed attacks (omniscient, little-is-enough, ...) available
	// over the wire and bit-identical to the in-process backend.
	peers        []int
	peerReplica  *nn.Network
	peerSamplers map[int]data.Sampler

	// hist retains the last τ+1 complete model broadcasts so a round the
	// slow schedule marks stale can train on the model from lag steps ago —
	// the socket-side twin of the in-process Cluster's history ring.
	hist []tensor.Vector
}

func newClusterWorker(id int, spec workerSpec) (*clusterWorker, error) {
	w := &clusterWorker{
		id:      id,
		spec:    spec,
		replica: spec.ModelFactory(),
		sampler: data.NewUniformSampler(spec.Train, ps.SamplerSeed(spec.Seed, id)),
		rng:     rand.New(rand.NewSource(ps.AttackSeed(spec.Seed, id))),
	}
	if spec.Async.Enabled() && spec.Async.Staleness > 0 {
		w.hist = make([]tensor.Vector, spec.Async.Staleness+1)
	}
	if name, ok := spec.Byzantine[id]; ok {
		atk, err := attack.New(name)
		if err != nil {
			return nil, err
		}
		w.atk = atk
		w.peerReplica = spec.ModelFactory()
		w.peerSamplers = map[int]data.Sampler{}
		for p := 0; p < spec.Workers; p++ {
			if _, byz := spec.Byzantine[p]; byz || spec.Unresponsive[p] {
				continue
			}
			w.peers = append(w.peers, p)
			w.peerSamplers[p] = data.NewUniformSampler(spec.Train, ps.SamplerSeed(spec.Seed, p))
		}
	}
	return w, nil
}

// submission computes the worker's wire submission for one broadcast: the
// honest gradient and loss, with Byzantine workers forging through the same
// attack.Context the in-process backend builds.
func (w *clusterWorker) submission(model *transport.ModelMsg) *transport.GradientMsg {
	w.replica.SetParamsVector(model.Params)
	x, y := w.sampler.Sample(w.spec.Batch)
	loss, grad := w.replica.Gradient(x, y)
	if w.atk != nil {
		var honest []tensor.Vector
		if len(w.peers) > 0 {
			w.peerReplica.SetParamsVector(model.Params)
			for _, p := range w.peers {
				px, py := w.peerSamplers[p].Sample(w.spec.Batch)
				_, pg := w.peerReplica.Gradient(px, py)
				honest = append(honest, pg.Clone())
			}
		}
		grad = w.atk.Forge(&attack.Context{
			Step:   model.Step,
			Honest: honest,
			Own:    grad,
			N:      w.spec.Workers,
			F:      len(w.spec.Byzantine),
			Dim:    grad.Dim(),
			Rng:    w.rng,
		})
	}
	return &transport.GradientMsg{Worker: w.id, Step: model.Step, Loss: loss, Grad: grad}
}

// roundSubmission resolves the asynchronous slow-worker schedule for one
// model broadcast and computes the wire submission: a fresh worker trains on
// the broadcast model, a scheduled-slow worker on the model it retained lag
// steps ago (submitting with that older step tag, which is exactly the tag
// the server's schedule evaluation expects), and a worker whose scheduled lag
// breaches the staleness bound returns nil — it sits the round out entirely,
// so the server never waits for the slot. Without an async configuration this
// is a plain submission, byte-identical to the lockstep path.
func (w *clusterWorker) roundSubmission(model *transport.ModelMsg) *transport.GradientMsg {
	if w.hist != nil {
		w.hist[model.Step%len(w.hist)] = model.Params.Clone()
	}
	if !w.spec.Async.Enabled() {
		return w.submission(model)
	}
	tag := w.spec.Async.ExpectedTag(w.spec.Seed, model.Step, w.id)
	switch {
	case tag < 0:
		return nil
	case tag == model.Step:
		return w.submission(model)
	default:
		return w.submission(&transport.ModelMsg{Step: tag, Params: w.hist[tag%len(w.hist)]})
	}
}

// rejectInformedWithSlow enforces the informed-attack × slow-schedule
// incompatibility at cluster construction: an informed attack recomputes the
// honest workers' gradients from the broadcast model, which assumes every
// peer trained fresh — a slow-worker schedule breaks that oracle (mirroring
// the informed × lossy-model-broadcast rule on the UDP backend).
func rejectInformedWithSlow(byzantine map[int]string, async ps.AsyncConfig) error {
	if async.SlowRate <= 0 {
		return nil
	}
	for _, id := range sortedIDs(byzantine) {
		name := byzantine[id]
		atk, err := attack.New(name)
		if err != nil {
			continue // reported by the caller's own attack validation
		}
		if inf, ok := atk.(attack.Informed); ok && inf.RequiresHonest() {
			return fmt.Errorf("cluster: attack %q on worker %d (slowRate %v): %w",
				name, id, async.SlowRate, ps.ErrInformedSlow)
		}
	}
	return nil
}
