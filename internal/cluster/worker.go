package cluster

import (
	"math/rand"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/nn"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// workerSpec is the backend-independent description of one cluster worker:
// everything a node needs to turn a model broadcast into a wire submission,
// regardless of whether that submission then travels a TCP stream or a burst
// of UDP datagrams. Both socket backends derive it from their configs so the
// gradient streams — and therefore the trajectories — are identical across
// transports.
type workerSpec struct {
	ModelFactory func() *nn.Network
	Train        *data.Dataset
	Batch        int
	Workers      int
	Byzantine    map[int]string
	Unresponsive map[int]bool
	Seed         int64
}

// clusterWorker is one worker node's state: its model replica, seeded
// sampler, attack RNG, and — for Byzantine workers — the omniscient oracle.
type clusterWorker struct {
	id      int
	spec    workerSpec
	replica *nn.Network
	sampler data.Sampler
	rng     *rand.Rand
	atk     attack.Attack

	// Omniscient oracle. The paper's threat model (§3.1) gives colluders
	// every correct gradient before the server sees them (arbitrarily fast
	// channels). Over real sockets there is nothing in flight to observe,
	// so the adversary recomputes them instead: knowing the run seed, the
	// dataset and the model, it replicates every honest worker's sampler
	// and derives the exact gradients the server is about to receive. This
	// keeps informed attacks (omniscient, little-is-enough, ...) available
	// over the wire and bit-identical to the in-process backend.
	peers        []int
	peerReplica  *nn.Network
	peerSamplers map[int]data.Sampler
}

func newClusterWorker(id int, spec workerSpec) (*clusterWorker, error) {
	w := &clusterWorker{
		id:      id,
		spec:    spec,
		replica: spec.ModelFactory(),
		sampler: data.NewUniformSampler(spec.Train, ps.SamplerSeed(spec.Seed, id)),
		rng:     rand.New(rand.NewSource(ps.AttackSeed(spec.Seed, id))),
	}
	if name, ok := spec.Byzantine[id]; ok {
		atk, err := attack.New(name)
		if err != nil {
			return nil, err
		}
		w.atk = atk
		w.peerReplica = spec.ModelFactory()
		w.peerSamplers = map[int]data.Sampler{}
		for p := 0; p < spec.Workers; p++ {
			if _, byz := spec.Byzantine[p]; byz || spec.Unresponsive[p] {
				continue
			}
			w.peers = append(w.peers, p)
			w.peerSamplers[p] = data.NewUniformSampler(spec.Train, ps.SamplerSeed(spec.Seed, p))
		}
	}
	return w, nil
}

// submission computes the worker's wire submission for one broadcast: the
// honest gradient and loss, with Byzantine workers forging through the same
// attack.Context the in-process backend builds.
func (w *clusterWorker) submission(model *transport.ModelMsg) *transport.GradientMsg {
	w.replica.SetParamsVector(model.Params)
	x, y := w.sampler.Sample(w.spec.Batch)
	loss, grad := w.replica.Gradient(x, y)
	if w.atk != nil {
		var honest []tensor.Vector
		if len(w.peers) > 0 {
			w.peerReplica.SetParamsVector(model.Params)
			for _, p := range w.peers {
				px, py := w.peerSamplers[p].Sample(w.spec.Batch)
				_, pg := w.peerReplica.Gradient(px, py)
				honest = append(honest, pg.Clone())
			}
		}
		grad = w.atk.Forge(&attack.Context{
			Step:   model.Step,
			Honest: honest,
			Own:    grad,
			N:      w.spec.Workers,
			F:      len(w.spec.Byzantine),
			Dim:    grad.Dim(),
			Rng:    w.rng,
		})
	}
	return &transport.GradientMsg{Worker: w.id, Step: model.Step, Loss: loss, Grad: grad}
}
