package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// UDPClusterConfig describes a socket-distributed synchronous deployment
// whose gradients travel real UDP datagrams — the lossyMPI deployment of
// §3.3: one parameter server, n worker goroutines, every gradient chunked
// into MTU-sized packets, and an artificial per-packet drop schedule standing
// in for the paper's tc-based loss injection. Lost coordinates are recouped
// by the configured policy and absorbed by the Byzantine-resilient GAR
// upstairs, which is the paper's headline systems bet.
type UDPClusterConfig struct {
	// Addr is the server's gradient-endpoint bind address ("127.0.0.1:0"
	// picks a free port). Each worker additionally binds its own model
	// endpoint on a kernel-chosen port.
	Addr string
	// ModelFactory builds the network replicas.
	ModelFactory func() *nn.Network
	// Workers is n.
	Workers int
	// GAR aggregates each round.
	GAR gar.GAR
	// Optimizer applies updates.
	Optimizer opt.Optimizer
	// Batch is the per-worker mini-batch.
	Batch int
	// Train provides worker samplers.
	Train *data.Dataset
	// Codec selects the wire coordinate width (zero value = lossless
	// float64, which is what the bit-for-bit parity guarantee needs).
	Codec transport.Codec
	// MTU is the datagram payload budget; zero means transport.DefaultMTU.
	MTU int
	// RoundTimeout bounds the collection phase. Zero means 30 seconds. With
	// artificial loss the deadline almost never fires: the drop schedule is
	// a shared pure function of (seed, step, worker), so the server knows
	// exactly which packets will never arrive and recoups a slot the moment
	// its surviving packets are all in. The timeout only pays for genuinely
	// unresponsive workers, as on the TCP backend.
	RoundTimeout time.Duration
	// DropRate is the per-packet artificial loss probability in [0, 1),
	// applied to worker→server gradient datagrams. Model broadcasts travel
	// loss-free (the paper treats an unreliable model channel as a separate
	// extension, footnote 12). Which packets drop is decided by
	// udpDropSchedule — keyed on (Seed, step, worker), never on a
	// per-sender stream — so lossy rounds are deterministic by
	// construction.
	DropRate float64
	// Recoup selects the policy for coordinates lost in flight and for
	// slots that miss the round deadline: DropGradient (default) discards
	// the gradient, FillNaN marks lost coordinates NaN (the GAR must
	// contain them), FillRandom substitutes seed-derived random values —
	// the AggregaThor way. All three are deterministic functions of
	// (Seed, step, worker id).
	Recoup transport.RecoupPolicy
	// Byzantine maps worker ids to attack names (same semantics as the TCP
	// backend; omniscient attacks recompute honest peers from the shared
	// seed).
	Byzantine map[int]string
	// Unresponsive marks worker ids that receive broadcasts but never
	// submit a gradient.
	Unresponsive map[int]bool
	// Seed is the run seed; sampler, attack, drop-schedule and recoup
	// randomness all derive from it through the shared ps formulas.
	Seed int64
	// L1, L2 are the regularisation weights.
	L1, L2 float64
}

// udpWorkerIdleTimeout bounds a worker's wait for the next model broadcast.
// The normal exit path is the server closing the worker's model socket; the
// timeout is a backstop against a server that vanished without Close.
const udpWorkerIdleTimeout = time.Hour

// UDPCluster is a running lossy-datagram deployment that implements
// ps.Trainer: Start binds the sockets and launches the workers, then each
// Step broadcasts the model, collects id-slotted gradients packet by packet
// through the transport reassembler, recoups scheduled losses per the
// policy, aggregates and applies the optimizer.
type UDPCluster struct {
	cfg          UDPClusterConfig
	recv         *transport.UDPReceiver   // gradient endpoint (server)
	modelRecvs   []*transport.UDPReceiver // per-worker model endpoints
	modelSenders []*transport.UDPSender   // server → worker model channels
	gradSenders  []*transport.UDPSender   // worker → server gradient channels
	workerWG     sync.WaitGroup
	workerErrs   chan error

	server *nn.Network
	params tensor.Vector
	ws     *gar.Workspace // per-cluster aggregation scratch arena
	step   int

	// suspected marks workers that missed a round deadline and are no
	// longer waited for (a completed gradient for the current step
	// re-admits them).
	suspected map[int]bool

	started bool
	closed  bool
}

var _ ps.Trainer = (*UDPCluster)(nil)

// NewUDPCluster validates the configuration and builds the (not yet
// listening) cluster.
func NewUDPCluster(cfg UDPClusterConfig) (*UDPCluster, error) {
	if cfg.ModelFactory == nil || cfg.GAR == nil || cfg.Optimizer == nil || cfg.Train == nil {
		return nil, errors.New("cluster: UDPCluster config missing required field")
	}
	if cfg.Workers <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("cluster: bad sizes workers=%d batch=%d", cfg.Workers, cfg.Batch)
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		return nil, fmt.Errorf("cluster: drop rate %v out of [0,1)", cfg.DropRate)
	}
	if cfg.MTU == 0 {
		cfg.MTU = transport.DefaultMTU
	}
	if cfg.MTU < 0 || cfg.MTU > 65507 {
		return nil, fmt.Errorf("cluster: mtu %d outside (0, 65507]", cfg.MTU)
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	if info, ok := cfg.GAR.(gar.ByzantineInfo); ok {
		if cfg.Workers < info.MinWorkers() {
			return nil, fmt.Errorf("cluster: %s(f=%d) needs %d workers, got %d",
				cfg.GAR.Name(), info.F(), info.MinWorkers(), cfg.Workers)
		}
	}
	for id, name := range cfg.Byzantine {
		if id < 0 || id >= cfg.Workers {
			return nil, fmt.Errorf("cluster: Byzantine worker id %d outside [0, %d)", id, cfg.Workers)
		}
		if _, err := attack.New(name); err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", id, err)
		}
	}
	for id := range cfg.Unresponsive {
		if id < 0 || id >= cfg.Workers {
			return nil, fmt.Errorf("cluster: unresponsive worker id %d outside [0, %d)", id, cfg.Workers)
		}
	}
	c := &UDPCluster{
		cfg:        cfg,
		server:     cfg.ModelFactory(),
		workerErrs: make(chan error, cfg.Workers),
		suspected:  map[int]bool{},
		ws:         gar.NewWorkspace(),
	}
	c.params = c.server.ParamsVector()
	return c, nil
}

// workerSpec extracts the backend-independent worker description (shared
// with the TCP backend — see worker.go).
func (cfg *UDPClusterConfig) workerSpec() workerSpec {
	return workerSpec{
		ModelFactory: cfg.ModelFactory,
		Train:        cfg.Train,
		Batch:        cfg.Batch,
		Workers:      cfg.Workers,
		Byzantine:    cfg.Byzantine,
		Unresponsive: cfg.Unresponsive,
		Seed:         cfg.Seed,
	}
}

// udpDropSchedule returns the artificial-loss mask for the count packets of
// worker's gradient at step: mask[i] is true when packet i is dropped before
// the socket write. The mask is a pure function of (seed, step, worker) —
// both endpoints evaluate it, the worker to drop and the server to know
// which packets will never arrive — which is what makes lossy rounds
// deterministic (byte-identical campaign JSON at any drop rate) and
// deadline-free (a slot is recouped the moment its surviving packets are all
// in, not when a timer fires).
func udpDropSchedule(seed int64, step, worker, count int, rate float64) []bool {
	mask := make([]bool, count)
	if rate <= 0 {
		return mask
	}
	rng := rand.New(rand.NewSource(ps.DropSeed(seed, step, worker)))
	for i := range mask {
		mask[i] = rng.Float64() < rate
	}
	return mask
}

// Start binds the server's gradient endpoint and one model endpoint per
// worker, then launches the worker goroutines. It must be called exactly
// once before Step.
func (c *UDPCluster) Start() error {
	if c.started {
		return errors.New("cluster: Start called twice")
	}
	if c.closed {
		return errors.New("cluster: Start after Close")
	}
	recv, err := transport.ListenUDP(c.cfg.Addr, c.cfg.Codec, c.cfg.Recoup, c.cfg.Seed)
	if err != nil {
		return err
	}
	c.recv = recv
	// The deployment's exact dimension is known: a spoofed header must not
	// make any endpoint allocate beyond it.
	recv.Reassembler().SetMaxDim(c.params.Dim())
	for id := 0; id < c.cfg.Workers; id++ {
		mrecv, err := transport.ListenUDP("127.0.0.1:0", c.cfg.Codec, transport.DropGradient, 0)
		if err != nil {
			c.abortStart()
			return err
		}
		mrecv.Reassembler().SetMaxDim(c.params.Dim())
		c.modelRecvs = append(c.modelRecvs, mrecv)
		// Model broadcasts travel loss-free: drop rate 0 on the sender.
		msend, err := transport.DialUDP(mrecv.Addr(), c.cfg.Codec, c.cfg.MTU, 0, 0)
		if err != nil {
			c.abortStart()
			return err
		}
		c.modelSenders = append(c.modelSenders, msend)
		// Gradient loss is injected by the shared schedule, not the
		// sender's own rng: drop rate 0 here too.
		gsend, err := transport.DialUDP(recv.Addr(), c.cfg.Codec, c.cfg.MTU, 0, 0)
		if err != nil {
			c.abortStart()
			return err
		}
		c.gradSenders = append(c.gradSenders, gsend)
	}
	workers := make([]*clusterWorker, c.cfg.Workers)
	for id := 0; id < c.cfg.Workers; id++ {
		w, err := newClusterWorker(id, c.cfg.workerSpec())
		if err != nil {
			c.abortStart()
			return err
		}
		workers[id] = w
	}
	for id := 0; id < c.cfg.Workers; id++ {
		c.workerWG.Add(1)
		go func(id int) {
			defer c.workerWG.Done()
			if err := c.runWorker(workers[id], c.modelRecvs[id], c.gradSenders[id]); err != nil {
				c.workerErrs <- fmt.Errorf("worker %d: %w", id, err)
			}
		}(id)
	}
	c.started = true
	return nil
}

// abortStart releases every socket a failed Start opened. No worker
// goroutine has launched yet when it runs, so there is nothing to wait for.
func (c *UDPCluster) abortStart() {
	c.closed = true
	for _, s := range c.gradSenders {
		s.Close()
	}
	for _, s := range c.modelSenders {
		s.Close()
	}
	for _, r := range c.modelRecvs {
		r.Close()
	}
	c.recv.Close()
}

// runWorker is the worker main loop: model broadcast in, scheduled-loss
// gradient datagrams out, until the server closes the model socket.
func (c *UDPCluster) runWorker(w *clusterWorker, mrecv *transport.UDPReceiver, send *transport.UDPSender) error {
	for {
		model, err := mrecv.RecvModel(udpWorkerIdleTimeout)
		if err != nil {
			return nil // socket closed by the server: normal termination
		}
		if c.cfg.Unresponsive[w.id] {
			continue // consume the broadcast, never answer (crashed node)
		}
		msg := w.submission(model)
		pkts := c.cfg.Codec.Split(msg, c.cfg.MTU)
		drop := udpDropSchedule(c.cfg.Seed, model.Step, w.id, len(pkts), c.cfg.DropRate)
		for i := range pkts {
			if drop[i] {
				continue // the tc stand-in: this datagram "was lost"
			}
			if err := send.SendPacket(&pkts[i]); err != nil {
				return err
			}
		}
	}
}

// Step runs one synchronous round over the datagram sockets.
func (c *UDPCluster) Step() (*ps.StepResult, error) {
	if !c.started {
		return nil, errors.New("cluster: Step before Start")
	}
	if c.closed {
		return nil, errors.New("cluster: Step after Close")
	}
	select {
	case err := <-c.workerErrs:
		return nil, fmt.Errorf("cluster: worker failed: %w", err)
	default:
	}
	n := c.cfg.Workers
	res := &ps.StepResult{Step: c.step}
	asm := c.recv.Reassembler()
	// Partials from earlier rounds can never complete (their remaining
	// packets were scheduled drops); release them so a silent worker cannot
	// grow server memory.
	asm.DropStale(c.step)

	// Broadcast phase. Suspected workers are included — a straggler that
	// recovers can rejoin the round. UDP writes to a live socket never
	// block, so sequential sends are fine.
	for id, s := range c.modelSenders {
		if err := s.SendModel(&transport.ModelMsg{Step: c.step, Params: c.params}); err != nil {
			return nil, fmt.Errorf("cluster: model broadcast to worker %d at step %d: %w", id, c.step, err)
		}
	}

	// The server evaluates every worker's drop schedule itself: expected
	// packet arrivals and known-lost coordinate counts per slot.
	dim := c.params.Dim()
	per := c.cfg.Codec.CoordsPerPacket(c.cfg.MTU)
	pktCount := (dim + per - 1) / per
	if pktCount == 0 {
		pktCount = 1
	}
	expectPkts := make([]int, n)
	lostCoords := make([]int, n)
	for id := 0; id < n; id++ {
		drop := udpDropSchedule(c.cfg.Seed, c.step, id, pktCount, c.cfg.DropRate)
		expectPkts[id] = pktCount
		for p, d := range drop {
			if !d {
				continue
			}
			expectPkts[id]--
			w := dim - p*per
			if w > per {
				w = per
			}
			lostCoords[id] += w
		}
	}

	grads := make([]tensor.Vector, n)
	losses := make([]float64, n)
	got := make([]bool, n)     // slot holds a gradient (received or recouped)
	hasLoss := make([]bool, n) // the worker's loss metadata actually arrived
	dropped := make([]bool, n) // slot settled by the DropGradient policy

	// Slots whose every packet is scheduled to drop can never arrive:
	// recoup them up front (whole-gradient recoup, like a timed-out slot).
	for id := 0; id < n; id++ {
		if expectPkts[id] > 0 {
			continue
		}
		if v := c.recoupSlot(id); v != nil {
			grads[id] = v
			got[id] = true
		} else {
			dropped[id] = true
		}
	}

	// Collection phase: pump packets into the reassembler, slotting by
	// self-declared worker id. A slot settles when its gradient completes,
	// or — under loss — the moment all its surviving packets are in and the
	// known-lost coordinates are recouped. Datagrams are unauthenticated,
	// so anything malformed (out-of-range ids, wrong dimension, stale or
	// future steps, duplicates after settlement) is ignored, never fatal: a
	// single hostile datagram must not take the round down.
	outstanding := func() int {
		m := 0
		for id := 0; id < n; id++ {
			if !got[id] && !dropped[id] && !c.suspected[id] {
				m++
			}
		}
		return m
	}
	deadline := time.Now().Add(c.cfg.RoundTimeout)
	for outstanding() > 0 {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			break
		}
		pkt, err := c.recv.RecvPacket(remaining)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				break
			}
			return nil, fmt.Errorf("cluster: gradient receive at step %d: %w", c.step, err)
		}
		id := pkt.Worker
		if id < 0 || id >= n || pkt.Step != c.step || pkt.Dim != dim {
			continue
		}
		if got[id] || dropped[id] {
			continue // duplicate delivery after settlement: protocol-normal
		}
		if msg, done := asm.Offer(pkt); done {
			grads[id] = msg.Grad
			losses[id] = msg.Loss
			got[id], hasLoss[id] = true, true
			delete(c.suspected, id) // recovered straggler rejoins the quorum
		} else if missing, ok := asm.Missing(id, c.step); ok && missing == lostCoords[id] {
			c.settleLost(asm, id, grads, losses, got, hasLoss, dropped)
			if got[id] {
				delete(c.suspected, id)
			}
		}
	}

	// Deadline: the round proceeds with whatever arrived (the paper's
	// bounded waiting). Missing workers are suspected and not waited for in
	// later rounds, so one unresponsive node costs one timeout, not one per
	// round. Their slots — empty or partial — are recouped per the policy.
	for id := 0; id < n; id++ {
		if got[id] || dropped[id] {
			continue
		}
		c.suspected[id] = true
		if _, pending := asm.Missing(id, c.step); pending {
			c.settleLost(asm, id, grads, losses, got, hasLoss, dropped)
			continue
		}
		if v := c.recoupSlot(id); v != nil {
			grads[id] = v
			got[id] = true
		}
	}

	// Aggregation input in worker-id order — accept order is a race, and
	// floating-point summation is order-sensitive.
	received := make([]tensor.Vector, 0, n)
	for id := 0; id < n; id++ {
		if got[id] {
			received = append(received, grads[id])
		}
	}
	res.Received = len(received)

	// Mean honest loss (diagnostic only; Byzantine losses are excluded, as
	// are slots whose loss metadata never arrived).
	var lossSum float64
	var lossN int
	for id := 0; id < n; id++ {
		if !hasLoss[id] {
			continue
		}
		if _, byz := c.cfg.Byzantine[id]; byz {
			continue
		}
		lossSum += losses[id]
		lossN++
	}
	if lossN > 0 {
		res.Loss = lossSum / float64(lossN)
	}

	// Aggregation + descent phase, mirroring the TCP backend: a round whose
	// survivor count violates the GAR's quorum is skipped, not deadlocked.
	agg, err := gar.AggregateInto(c.ws, c.cfg.GAR, received)
	if err != nil {
		if errors.Is(err, gar.ErrTooFewWorkers) || errors.Is(err, gar.ErrNoGradients) {
			res.Skipped = true
			c.step++
			return res, nil
		}
		return nil, fmt.Errorf("cluster: aggregation at step %d: %w", c.step, err)
	}
	opt.Regularize(agg, c.params, c.cfg.L1, c.cfg.L2)
	c.cfg.Optimizer.Step(c.step, c.params, agg)
	c.server.SetParamsVector(c.params)
	c.step++
	return res, nil
}

// settleLost resolves worker id's partial gradient whose remaining
// coordinates are presumed lost, per the recoup policy: DropGradient
// discards it, FillNaN and FillRandom force-complete it — the fill keyed on
// (seed, step, id) and applied in ascending coordinate order, so the values
// are a pure function of the configuration and the set of missing
// coordinates.
func (c *UDPCluster) settleLost(asm *transport.Reassembler, id int, grads []tensor.Vector, losses []float64, got, hasLoss, dropped []bool) {
	switch c.cfg.Recoup {
	case transport.FillNaN:
		msg, ok := asm.FlushFill(id, c.step, func(int) float64 { return math.NaN() })
		if !ok {
			return
		}
		grads[id], losses[id] = msg.Grad, msg.Loss
		got[id], hasLoss[id] = true, true
	case transport.FillRandom:
		rng := rand.New(rand.NewSource(ps.RecoupSeed(c.cfg.Seed, c.step, id)))
		msg, ok := asm.FlushFill(id, c.step, func(int) float64 { return rng.NormFloat64() })
		if !ok {
			return
		}
		grads[id], losses[id] = msg.Grad, msg.Loss
		got[id], hasLoss[id] = true, true
	default: // DropGradient
		asm.Discard(id, c.step)
		dropped[id] = true
	}
}

// recoupSlot produces the stand-in gradient for a slot with no packets at
// all (every packet scheduled to drop, or a worker that missed the round
// deadline entirely), per the configured recoup policy. nil means the slot
// is dropped. Identical in construction to the TCP backend's timed-out-slot
// recoup: a deterministic function of (seed, step, worker id).
func (c *UDPCluster) recoupSlot(id int) tensor.Vector {
	switch c.cfg.Recoup {
	case transport.FillNaN:
		v := tensor.NewVector(c.params.Dim())
		for i := range v {
			v[i] = math.NaN()
		}
		return v
	case transport.FillRandom:
		rng := rand.New(rand.NewSource(ps.RecoupSeed(c.cfg.Seed, c.step, id)))
		v := tensor.NewVector(c.params.Dim())
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	default: // DropGradient: proceed without the slot
		return nil
	}
}

// Model returns the server's evaluation replica, synchronised with the
// current parameters.
func (c *UDPCluster) Model() *nn.Network { return c.server }

// Params returns a copy of the current model parameters.
func (c *UDPCluster) Params() tensor.Vector { return c.params.Clone() }

// StepCount returns the number of rounds run so far.
func (c *UDPCluster) StepCount() int { return c.step }

// Close unblocks every worker by closing its model endpoint, waits for the
// worker goroutines, and releases the remaining sockets. It is idempotent.
func (c *UDPCluster) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if !c.started {
		if c.recv != nil {
			c.recv.Close()
		}
		return nil
	}
	for _, r := range c.modelRecvs {
		r.Close()
	}
	c.workerWG.Wait()
	for _, s := range c.modelSenders {
		s.Close()
	}
	for _, s := range c.gradSenders {
		s.Close()
	}
	return c.recv.Close()
}
