package cluster

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"time"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// UDPClusterConfig describes a socket-distributed synchronous deployment
// whose gradients travel real UDP datagrams — the lossyMPI deployment of
// §3.3: one parameter server, n worker goroutines, every gradient chunked
// into MTU-sized packets, and an artificial per-packet drop schedule standing
// in for the paper's tc-based loss injection. Lost coordinates are recouped
// by the configured policy and absorbed by the Byzantine-resilient GAR
// upstairs, which is the paper's headline systems bet.
type UDPClusterConfig struct {
	// Addr is the server's gradient-endpoint bind address ("127.0.0.1:0"
	// picks a free port). Each worker additionally binds its own model
	// endpoint on a kernel-chosen port.
	Addr string
	// WorkerBindHost, when set, is the host each worker binds its model
	// endpoint on. When empty the host is derived from the worker's
	// gradient-dial interface toward Addr — the interface that can reach the
	// server can be reached by it — instead of the hardcoded loopback the
	// backend used to pin, which silently confined deployments to one host.
	WorkerBindHost string
	// ModelFactory builds the network replicas.
	ModelFactory func() *nn.Network
	// Workers is n.
	Workers int
	// GAR aggregates each round.
	GAR gar.GAR
	// Optimizer applies updates.
	Optimizer opt.Optimizer
	// Batch is the per-worker mini-batch.
	Batch int
	// Train provides worker samplers.
	Train *data.Dataset
	// Codec selects the wire coordinate width (zero value = lossless
	// float64, which is what the bit-for-bit parity guarantee needs).
	Codec transport.Codec
	// MTU is the datagram payload budget; zero means transport.DefaultMTU.
	MTU int
	// RoundTimeout bounds the collection phase. Zero means 30 seconds. With
	// artificial loss the deadline almost never fires: the drop schedule is
	// a shared pure function of (seed, step, worker), so the server knows
	// exactly which packets will never arrive and recoups a slot the moment
	// its surviving packets are all in. The timeout only pays for genuinely
	// unresponsive workers, as on the TCP backend.
	RoundTimeout time.Duration
	// DropRate is the per-packet artificial loss probability in [0, 1),
	// applied to worker→server gradient datagrams. Which packets drop is
	// decided by udpDropSchedule — keyed on (Seed, step, worker), never on
	// a per-sender stream — so lossy rounds are deterministic by
	// construction.
	DropRate float64
	// ModelDropRate is the per-packet artificial loss probability in
	// [0, 1) on server→worker model broadcasts — footnote 12's unreliable
	// model channel. Which packets drop is decided by modelDropSchedule
	// (keyed on ps.ModelDropSeed(Seed, step, worker)) evaluated at BOTH
	// endpoints: the server drops before the write, and the worker knows
	// exactly which model packets can never arrive, settling a torn
	// broadcast the moment its survivors are in — no deadline. At 0 the
	// model channel is loss-free and rounds are bit-identical to the
	// pre-lossy-model behaviour.
	ModelDropRate float64
	// ModelRecoup selects the worker-side policy for a torn model
	// broadcast: ModelRecoupSkip (default) consumes the survivors and
	// submits nothing for the round (the server, evaluating the same
	// schedule, recoups the slot without waiting); ModelRecoupStale trains
	// on the worker's last complete model and submits a gradient tagged
	// with that stale step, which the server accepts into the current
	// round — the staleness regime a Byzantine-resilient GAR must absorb.
	ModelRecoup ModelRecoupPolicy
	// Recoup selects the policy for coordinates lost in flight and for
	// slots that miss the round deadline: DropGradient (default) discards
	// the gradient, FillNaN marks lost coordinates NaN (the GAR must
	// contain them), FillRandom substitutes seed-derived random values —
	// the AggregaThor way. All three are deterministic functions of
	// (Seed, step, worker id).
	Recoup transport.RecoupPolicy
	// Byzantine maps worker ids to attack names (same semantics as the TCP
	// backend; omniscient attacks recompute honest peers from the shared
	// seed).
	Byzantine map[int]string
	// Unresponsive marks worker ids that receive broadcasts but never
	// submit a gradient.
	Unresponsive map[int]bool
	// Seed is the run seed; sampler, attack, drop-schedule and recoup
	// randomness all derive from it through the shared ps formulas.
	Seed int64
	// L1, L2 are the regularisation weights.
	L1, L2 float64
	// Async configures asynchronous bounded-staleness rounds. The slow
	// schedule is evaluated at both endpoints (ps.SlowSeed), so the server
	// knows which step tag every slot will carry — a round settles the
	// moment the scheduled quorum is in, with no deadline involved. Async
	// rounds require a loss-free model channel (ModelDropRate 0): the
	// staleness regime is driven by the slow schedule, not by torn
	// broadcasts, so an expected tag of -1 unambiguously means a scheduled
	// drop that must never be recouped.
	Async ps.AsyncConfig
	// Churn configures the deterministic worker crash/rejoin schedule
	// (ps.ChurnSeed, evaluated at both endpoints): a crashing worker closes
	// its gradient sender abruptly and re-dials through the bounded backoff
	// ladder at its scheduled rejoin round; the server, replaying the same
	// schedule, drops crashed/down slots without waiting and skips rounds
	// whose live membership falls under the GAR's safety bound. Churn
	// requires a loss-free model channel (ModelDropRate 0) and is
	// incompatible with asynchronous rounds and unresponsive workers.
	Churn ps.ChurnConfig
}

// ModelRecoupPolicy selects what a worker does about a torn model broadcast
// (some packets scheduled to drop on the downlink).
type ModelRecoupPolicy int

const (
	// ModelRecoupSkip consumes the surviving packets and submits nothing
	// for the round. The server, evaluating the same schedule, knows not
	// to wait and recoups the slot per the gradient Recoup policy.
	ModelRecoupSkip ModelRecoupPolicy = iota
	// ModelRecoupStale trains on the last complete model the worker holds
	// and submits a gradient tagged with that stale step; the server
	// accepts it into the current round.
	ModelRecoupStale
)

// String implements fmt.Stringer.
func (p ModelRecoupPolicy) String() string {
	switch p {
	case ModelRecoupSkip:
		return "skip"
	case ModelRecoupStale:
		return "stale"
	default:
		return fmt.Sprintf("ModelRecoupPolicy(%d)", int(p))
	}
}

// udpWorkerIdleTimeout bounds a worker's wait for the next model broadcast.
// The normal exit path is the server closing the worker's model socket; the
// timeout is a backstop against a server that vanished without Close.
const udpWorkerIdleTimeout = time.Hour

// udpPaceBurst/udpPaceDelay rate-limit every cluster sender: after each
// 128 KB of datagram payload the sender sleeps 1 ms so the receiver drains
// its kernel buffer. At the paper scale (d = 1.75M ≈ 14 MB of datagrams per
// transfer) an unpaced burst overflows any realistic SO_RCVBUF and the
// kernel silently discards the excess — the wedge the bounded broadcast
// wait then has to clean up. Pacing changes timing only, never content.
const (
	udpPaceBurst = 128 << 10
	udpPaceDelay = time.Millisecond
)

// UDPCluster is a running lossy-datagram deployment that implements
// ps.Trainer: Start binds the sockets and launches the workers, then each
// Step broadcasts the model, collects id-slotted gradients packet by packet
// through the transport reassembler, recoups scheduled losses per the
// policy, aggregates and applies the optimizer.
type UDPCluster struct {
	cfg          UDPClusterConfig
	recv         *transport.UDPReceiver   // gradient endpoint (server)
	modelRecvs   []*transport.UDPReceiver // per-worker model endpoints
	modelSenders []*transport.UDPSender   // server → worker model channels
	gradSenders  []*transport.UDPSender   // worker → server gradient channels
	gradMu       sync.Mutex               // guards gradSenders slots (churn re-dials swap them)
	workerWG     sync.WaitGroup
	workerErrs   chan error

	// membership replays the churn schedule server-side (nil without churn):
	// phases per round, scheduled-rejoin admissions, and the crash/rejoin
	// counters that flow into StepResult.
	membership *ps.MembershipTracker

	server *nn.Network
	params tensor.Vector
	ws     *gar.Workspace // per-cluster aggregation scratch arena
	step   int
	// modelPktScratch is the broadcast split scratch, reused every round.
	modelPktScratch []transport.Packet

	// suspected marks workers that missed a round deadline and are no
	// longer waited for (a completed gradient for the current step
	// re-admits them).
	suspected map[int]bool

	// lastComplete tracks, per worker, the last step whose model broadcast
	// was scheduled loss-free end to end (-1 before the first one). The
	// worker tracks the same quantity from the same schedule, which is how
	// the server knows the exact step a stale submission will be tagged
	// with. The counters can transiently diverge outside the deterministic
	// contract — a genuine kernel drop makes the worker record a scheduled-
	// complete broadcast as lost — in which case the worker's submissions
	// are filtered (wrong tag) and its slots recouped until the next fully
	// delivered complete broadcast resynchronises both sides; sender pacing
	// keeps that window rare.
	lastComplete []int

	started bool
	closed  bool
}

var _ ps.Trainer = (*UDPCluster)(nil)

// NewUDPCluster validates the configuration and builds the (not yet
// listening) cluster.
func NewUDPCluster(cfg UDPClusterConfig) (*UDPCluster, error) {
	if cfg.ModelFactory == nil || cfg.GAR == nil || cfg.Optimizer == nil || cfg.Train == nil {
		return nil, errors.New("cluster: UDPCluster config missing required field")
	}
	if cfg.Workers <= 0 || cfg.Batch <= 0 {
		return nil, fmt.Errorf("cluster: bad sizes workers=%d batch=%d", cfg.Workers, cfg.Batch)
	}
	if cfg.DropRate < 0 || cfg.DropRate >= 1 {
		return nil, fmt.Errorf("cluster: drop rate %v out of [0,1)", cfg.DropRate)
	}
	if cfg.ModelDropRate < 0 || cfg.ModelDropRate >= 1 {
		return nil, fmt.Errorf("cluster: model drop rate %v out of [0,1)", cfg.ModelDropRate)
	}
	if cfg.ModelRecoup != ModelRecoupSkip && cfg.ModelRecoup != ModelRecoupStale {
		return nil, fmt.Errorf("cluster: unknown model recoup policy %v", cfg.ModelRecoup)
	}
	if cfg.MTU == 0 {
		cfg.MTU = transport.DefaultMTU
	}
	// Lower bound first: an MTU below header+one-coordinate would make
	// CoordsPerPacket clamp to 1 and every datagram silently exceed the
	// configured budget.
	if cfg.MTU < cfg.Codec.MinMTU() || cfg.MTU > 65507 {
		return nil, fmt.Errorf("cluster: mtu %d outside [%d, 65507]", cfg.MTU, cfg.Codec.MinMTU())
	}
	if cfg.RoundTimeout <= 0 {
		cfg.RoundTimeout = 30 * time.Second
	}
	if info, ok := cfg.GAR.(gar.ByzantineInfo); ok {
		if cfg.Workers < info.MinWorkers() {
			return nil, fmt.Errorf("cluster: %s(f=%d) needs %d workers, got %d",
				cfg.GAR.Name(), info.F(), info.MinWorkers(), cfg.Workers)
		}
	}
	for _, id := range sortedIDs(cfg.Byzantine) {
		name := cfg.Byzantine[id]
		if id < 0 || id >= cfg.Workers {
			return nil, fmt.Errorf("cluster: Byzantine worker id %d outside [0, %d)", id, cfg.Workers)
		}
		atk, err := attack.New(name)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", id, err)
		}
		// The omniscient oracle recomputes honest gradients from the shared
		// seed, which assumes every honest worker samples once per round on
		// the broadcast model. Lossy model broadcasts break that: each
		// honest worker follows its own downlink schedule and may skip a
		// round or train on a stale model, so an informed attack would
		// silently forge from wrong oracles. Reject the combination.
		if inf, ok := atk.(attack.Informed); ok && inf.RequiresHonest() && cfg.ModelDropRate > 0 {
			return nil, fmt.Errorf("cluster: informed attack %q (ModelDropRate %v): %w", name, cfg.ModelDropRate, ps.ErrInformedModelLoss)
		}
	}
	for _, id := range sortedIDs(cfg.Unresponsive) {
		if id < 0 || id >= cfg.Workers {
			return nil, fmt.Errorf("cluster: unresponsive worker id %d outside [0, %d)", id, cfg.Workers)
		}
	}
	if err := cfg.Async.Validate(cfg.Workers); err != nil {
		return nil, err
	}
	if err := rejectInformedWithSlow(cfg.Byzantine, cfg.Async); err != nil {
		return nil, err
	}
	if cfg.Async.Enabled() && cfg.ModelDropRate > 0 {
		return nil, fmt.Errorf("cluster: %w (ModelDropRate %v)", ps.ErrAsyncModelLoss, cfg.ModelDropRate)
	}
	if err := cfg.Churn.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	if cfg.Churn.Enabled() {
		if cfg.Async.Enabled() {
			return nil, fmt.Errorf("cluster: %w (quorum %d with churn rate %v)",
				ps.ErrChurnAsync, cfg.Async.EffectiveQuorum(cfg.Workers), cfg.Churn.Rate)
		}
		if cfg.ModelDropRate > 0 {
			return nil, fmt.Errorf("cluster: %w (ModelDropRate %v with churn rate %v)",
				ps.ErrChurnModelLoss, cfg.ModelDropRate, cfg.Churn.Rate)
		}
		if ids := sortedIDs(cfg.Unresponsive); len(ids) > 0 {
			return nil, fmt.Errorf("cluster: unresponsive worker %d cannot follow a churn schedule (rate %v): it would neither crash nor rejoin on cue",
				ids[0], cfg.Churn.Rate)
		}
		if err := rejectInformedWithChurn(cfg.Byzantine, cfg.Churn); err != nil {
			return nil, err
		}
	}
	c := &UDPCluster{
		cfg:          cfg,
		server:       cfg.ModelFactory(),
		workerErrs:   make(chan error, cfg.Workers),
		suspected:    map[int]bool{},
		lastComplete: make([]int, cfg.Workers),
		ws:           gar.NewWorkspace(),
	}
	for i := range c.lastComplete {
		c.lastComplete[i] = -1
	}
	if cfg.Churn.Enabled() {
		c.membership = ps.NewMembershipTracker(cfg.Churn, cfg.Seed, cfg.Workers)
	}
	c.params = c.server.ParamsVector()
	return c, nil
}

// setGradSender swaps worker id's gradient-sender slot — nil while the churn
// schedule holds the worker down, a fresh backoff-dialled sender on rejoin —
// so Close releases whichever socket the worker last held.
func (c *UDPCluster) setGradSender(id int, s *transport.UDPSender) {
	c.gradMu.Lock()
	defer c.gradMu.Unlock()
	c.gradSenders[id] = s
}

// workerSpec extracts the backend-independent worker description (shared
// with the TCP backend — see worker.go).
func (cfg *UDPClusterConfig) workerSpec() workerSpec {
	return workerSpec{
		ModelFactory: cfg.ModelFactory,
		Train:        cfg.Train,
		Batch:        cfg.Batch,
		Workers:      cfg.Workers,
		Byzantine:    cfg.Byzantine,
		Unresponsive: cfg.Unresponsive,
		Seed:         cfg.Seed,
		Async:        cfg.Async,
	}
}

// udpDropSchedule returns the artificial-loss mask for the count packets of
// worker's gradient at step: mask[i] is true when packet i is dropped before
// the socket write. The mask is a pure function of (seed, step, worker) —
// both endpoints evaluate it, the worker to drop and the server to know
// which packets will never arrive — which is what makes lossy rounds
// deterministic (byte-identical campaign JSON at any drop rate) and
// deadline-free (a slot is recouped the moment its surviving packets are all
// in, not when a timer fires).
func udpDropSchedule(seed int64, step, worker, count int, rate float64) []bool {
	return scheduleMask(ps.DropSeed(seed, step, worker), count, rate)
}

// modelDropSchedule is udpDropSchedule's downlink twin: the artificial-loss
// mask for the count packets of the model broadcast to worker at step,
// keyed on ps.ModelDropSeed so both endpoints can evaluate it — the server
// to drop before the write, the worker to settle a torn broadcast the
// moment its scheduled survivors are in (footnote 12's unreliable model
// channel, made deterministic and deadline-free the same way the uplink
// was).
func modelDropSchedule(seed int64, step, worker, count int, rate float64) []bool {
	return scheduleMask(ps.ModelDropSeed(seed, step, worker), count, rate)
}

// scheduleMask draws one deterministic drop mask from a derived seed — the
// single implementation behind both drop schedules, so uplink and downlink
// loss semantics can never drift apart.
func scheduleMask(seed int64, count int, rate float64) []bool {
	mask := make([]bool, count)
	if rate <= 0 {
		return mask
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range mask {
		mask[i] = rng.Float64() < rate
	}
	return mask
}

// Start binds the server's gradient endpoint and one model endpoint per
// worker, then launches the worker goroutines. It must be called exactly
// once before Step.
func (c *UDPCluster) Start() error {
	if c.started {
		return errors.New("cluster: Start called twice")
	}
	if c.closed {
		return errors.New("cluster: Start after Close")
	}
	recv, err := transport.ListenUDP(c.cfg.Addr, c.cfg.Codec, c.cfg.Recoup, c.cfg.Seed)
	if err != nil {
		return err
	}
	c.recv = recv
	// The deployment's exact dimension is known: pin it, so a spoofed
	// header can neither allocate beyond it nor evict a pending partial.
	recv.Reassembler().SetExpectDim(c.params.Dim())
	bindHost := c.cfg.WorkerBindHost
	for id := 0; id < c.cfg.Workers; id++ {
		// Gradient loss is injected by the shared schedule, not the
		// sender's own rng: drop rate 0 on the sender. Dialled first so the
		// worker's model endpoint can bind the same interface the kernel
		// routes toward the server — the old hardcoded "127.0.0.1:0" bind
		// silently confined the backend to one host.
		//aggrevet:lineage drop rate 0: the sender's rng is never drawn, loss comes from the shared seeded schedule
		gsend, err := transport.DialUDP(recv.Addr(), c.cfg.Codec, c.cfg.MTU, 0, 0)
		if err != nil {
			c.abortStart()
			return err
		}
		gsend.SetPacing(udpPaceBurst, udpPaceDelay)
		c.gradSenders = append(c.gradSenders, gsend)
		if bindHost == "" {
			host, _, err := net.SplitHostPort(gsend.LocalAddr())
			if err != nil {
				c.abortStart()
				return fmt.Errorf("cluster: derive worker bind host from %q: %w", gsend.LocalAddr(), err)
			}
			bindHost = host
		}
		//aggrevet:lineage drop rate 0: the receiver's rng is never drawn, loss comes from the shared seeded schedule
		mrecv, err := transport.ListenUDP(net.JoinHostPort(bindHost, "0"), c.cfg.Codec, transport.DropGradient, 0)
		if err != nil {
			c.abortStart()
			return err
		}
		mrecv.Reassembler().SetExpectDim(c.params.Dim())
		c.modelRecvs = append(c.modelRecvs, mrecv)
		// Model loss is injected by the shared modelDropSchedule, not the
		// sender's own rng: drop rate 0 on the sender.
		//aggrevet:lineage drop rate 0: the sender's rng is never drawn, model loss comes from the shared seeded schedule
		msend, err := transport.DialUDP(mrecv.Addr(), c.cfg.Codec, c.cfg.MTU, 0, 0)
		if err != nil {
			c.abortStart()
			return err
		}
		msend.SetPacing(udpPaceBurst, udpPaceDelay)
		c.modelSenders = append(c.modelSenders, msend)
	}
	workers := make([]*clusterWorker, c.cfg.Workers)
	for id := 0; id < c.cfg.Workers; id++ {
		w, err := newClusterWorker(id, c.cfg.workerSpec())
		if err != nil {
			c.abortStart()
			return err
		}
		workers[id] = w
	}
	dim := c.params.Dim()
	for id := 0; id < c.cfg.Workers; id++ {
		c.workerWG.Add(1)
		go func(id int) {
			defer c.workerWG.Done()
			if err := c.runWorker(workers[id], c.modelRecvs[id], c.gradSenders[id], dim); err != nil {
				c.workerErrs <- fmt.Errorf("worker %d: %w", id, err)
			}
		}(id)
	}
	c.started = true
	return nil
}

// abortStart releases every socket a failed Start opened. No worker
// goroutine has launched yet when it runs, so there is nothing to wait for.
func (c *UDPCluster) abortStart() {
	c.closed = true
	for _, s := range c.gradSenders {
		s.Close()
	}
	for _, s := range c.modelSenders {
		s.Close()
	}
	for _, r := range c.modelRecvs {
		r.Close()
	}
	c.recv.Close()
}

// runWorker is the worker main loop: model broadcasts in (possibly torn by
// the shared downlink schedule), scheduled-loss gradient datagrams out,
// until the server closes the model socket. dim is the deployment's model
// dimension, read once under Start so the goroutine never touches the
// server's live parameter vector.
func (c *UDPCluster) runWorker(w *clusterWorker, mrecv *transport.UDPReceiver, send *transport.UDPSender, dim int) error {
	pktCount := c.cfg.Codec.PacketsPerTransfer(dim, c.cfg.MTU)
	var schedule func(step int) []bool
	if c.cfg.ModelDropRate > 0 {
		schedule = func(step int) []bool {
			return modelDropSchedule(c.cfg.Seed, step, w.id, pktCount, c.cfg.ModelDropRate)
		}
	}
	if c.cfg.Churn.Enabled() {
		// The server never broadcasts to a down worker, and the worker
		// replays the same schedule — so down steps are fully-scheduled-away
		// broadcasts the collector skips silently. Without this the collector
		// would stash the rejoin broadcast as a future step and sit out the
		// whole BroadcastTimeout waiting for a down-step broadcast that by
		// construction never comes. Only BOUNDED downtime is scheduled away:
		// a permanently-down worker's phase is ChurnDown for every later
		// step, and skipping those would spin the collector's advance loop
		// forever instead of letting the worker exit on its final crash
		// event. (Churn composes with gradient loss only; the churn ×
		// model-loss guard keeps ModelDropRate at zero here.)
		allDropped := make([]bool, pktCount)
		for i := range allDropped {
			allDropped[i] = true
		}
		schedule = func(step int) []bool {
			if c.cfg.Churn.Phase(c.cfg.Seed, step, w.id) == ps.ChurnDown &&
				!c.cfg.Churn.Permanent(c.cfg.Seed, step, w.id) {
				return allDropped
			}
			return nil
		}
	}
	col := transport.NewModelCollector(mrecv, transport.ModelCollectorConfig{
		Dim:              dim,
		MTU:              c.cfg.MTU,
		Codec:            c.cfg.Codec,
		Schedule:         schedule,
		BroadcastTimeout: c.cfg.RoundTimeout,
		IdleTimeout:      udpWorkerIdleTimeout,
	})
	lastStep := -1 // last complete model held (mirrors the server's lastComplete)
	var lastParams tensor.Vector
	var pktScratch []transport.Packet // split scratch, reused every round
	churn := c.cfg.Churn.Enabled()
	for {
		ev, err := col.Next()
		if err != nil {
			return nil // socket closed by the server (or idle timeout): termination
		}
		if churn {
			switch c.cfg.Churn.Phase(c.cfg.Seed, ev.Step, w.id) {
			case ps.ChurnCrash:
				// Scheduled crash: tear the gradient sender down abruptly,
				// submitting nothing. The model endpoint stays bound — it is
				// the worker's stable address — but the server, replaying
				// the same schedule, stops broadcasting to it while down.
				send.Close()
				send = nil
				c.setGradSender(w.id, nil)
				if c.cfg.Churn.Permanent(c.cfg.Seed, ev.Step, w.id) {
					return nil // rejoin budget exhausted: gone for good
				}
				continue
			case ps.ChurnDown:
				continue // defensive: no broadcast reaches a down worker
			}
			// Live or rejoining without a sender (the rejoin round itself,
			// or recovery from a missed rejoin broadcast): re-dial through
			// the bounded backoff ladder before submitting.
			if send == nil {
				fresh, _, err := dialUDPWithBackoff(c.recv.Addr(), c.cfg.Codec, c.cfg.MTU)
				if err != nil {
					return err
				}
				fresh.SetPacing(udpPaceBurst, udpPaceDelay)
				send = fresh
				c.setGradSender(w.id, fresh)
			}
		}
		var model *transport.ModelMsg
		switch {
		case ev.Complete:
			lastStep, lastParams = ev.Step, ev.Params
			model = &transport.ModelMsg{Step: ev.Step, Params: ev.Params}
		case ev.Torn && c.cfg.ModelRecoup == ModelRecoupStale && lastStep >= 0:
			// Stale recoup: train on the last complete model; the gradient
			// is tagged with the stale step and the server — which knows
			// the same schedule — accepts it into the current round.
			model = &transport.ModelMsg{Step: lastStep, Params: lastParams}
		default:
			// Skip policy, a torn broadcast before any complete model, or
			// a genuinely lost one: consume and submit nothing. The server
			// recoups the slot (per schedule for the first two, per round
			// deadline for the last).
			continue
		}
		if c.cfg.Unresponsive[w.id] {
			continue // consume the broadcast, never answer (crashed node)
		}
		// roundSubmission resolves the asynchronous slow schedule (retaining
		// the broadcast model, training stale, or sitting the round out); in
		// lockstep it is a plain submission. Async requires a loss-free model
		// channel, so here model.Step == ev.Step always — the two staleness
		// regimes never compose.
		msg := w.roundSubmission(model)
		if msg == nil {
			continue // scheduled too-stale: the worker sits the round out
		}
		pktScratch = c.cfg.Codec.SplitInto(pktScratch[:0], msg, c.cfg.MTU)
		// The uplink schedule stays keyed on the round (ev.Step), not the
		// stale tag, so two stale submissions off the same model never
		// reuse a drop mask. SendPackets applies the mask and moves the
		// survivors through the sender's arena in sendmmsg batches.
		drop := udpDropSchedule(c.cfg.Seed, ev.Step, w.id, len(pktScratch), c.cfg.DropRate)
		if err := send.SendPackets(pktScratch, drop); err != nil {
			return err
		}
	}
}

// Step runs one synchronous round over the datagram sockets.
func (c *UDPCluster) Step() (*ps.StepResult, error) {
	if !c.started {
		return nil, errors.New("cluster: Step before Start")
	}
	if c.closed {
		return nil, errors.New("cluster: Step after Close")
	}
	select {
	case err := <-c.workerErrs:
		return nil, fmt.Errorf("cluster: worker failed: %w", err)
	default:
	}
	n := c.cfg.Workers
	res := &ps.StepResult{Step: c.step}
	asm := c.recv.Reassembler()
	// Partials from earlier rounds can never complete (their remaining
	// packets were scheduled drops); release them so a silent worker cannot
	// grow server memory.
	asm.DropStale(c.step)

	// Churn schedule: the same ps.ChurnSeed evaluation the workers perform.
	// The gradient channel is connectionless, so there is no handshake to
	// observe — scheduled rejoins are self-admitted through the tracker
	// (attempts 1: on the scheduled path the backoff dialer's first attempt
	// succeeds) and the verdict is asserted. Crashed and down workers' slots
	// are dropped by design: never awaited, never recouped.
	var phases []ps.ChurnPhase
	if c.membership != nil {
		phases = c.membership.BeginRound(c.step)
		for id := 0; id < n; id++ {
			if phases[id] != ps.ChurnRejoin {
				continue
			}
			if v := c.membership.Admit(id, c.step, 1); v != ps.RejoinAdmit {
				return nil, fmt.Errorf("cluster: scheduled rejoin of worker %d at step %d rejected: %v", id, c.step, v)
			}
			delete(c.suspected, id)
		}
		res.Crashes = c.membership.RoundCrashes()
		res.Rejoins = c.membership.RoundRejoins()
		res.ReconnectAttempts = c.membership.RoundReconnectAttempts()
	}

	dim := c.params.Dim()
	per := c.cfg.Codec.CoordsPerPacket(c.cfg.MTU)
	pktCount := c.cfg.Codec.PacketsPerTransfer(dim, c.cfg.MTU)

	// Downlink schedule: which model packets reach which worker, and —
	// from the same pure function the workers evaluate — the step each
	// worker's submission for this round will be tagged with: the current
	// step after a complete broadcast, the worker's last complete step
	// after a torn one under ModelRecoupStale, or none at all (-1) when
	// the worker cannot submit (skip policy, no complete model yet, or a
	// broadcast with no surviving packet, which the worker never even
	// learns happened). Note stale tags repeat across consecutive torn
	// rounds, so the reassembler key (worker, tag) is only unique per
	// round on the scheduled path; a gradient packet delayed across a
	// round deadline (already the non-deterministic contingency) can seed
	// the next same-tagged partial with stale metadata, in which case that
	// slot settles through the recoup fill and the GAR absorbs it like any
	// other corrupted gradient.
	async := c.cfg.Async.Enabled()
	modelDrop := make([][]bool, n)
	expectTag := make([]int, n)
	for id := 0; id < n; id++ {
		modelDrop[id] = modelDropSchedule(c.cfg.Seed, c.step, id, pktCount, c.cfg.ModelDropRate)
		if phases != nil && !churnParticipates(phases[id]) {
			// Crashed this round (receives the broadcast, submits nothing)
			// or down (no broadcast at all): the slot can never fill.
			expectTag[id] = -1
			continue
		}
		if async {
			// Asynchronous rounds: the slow schedule — not the (loss-free)
			// model channel — decides each slot's tag: the current step for a
			// fresh worker, an older one for a scheduled-slow worker training
			// on its retained model, -1 when the scheduled lag breaches τ and
			// the worker sits the round out.
			expectTag[id] = c.cfg.Async.ExpectedTag(c.cfg.Seed, c.step, id)
			if expectTag[id] < 0 {
				res.DroppedStale++
			}
			continue
		}
		surv := transport.CountSurvivors(modelDrop[id], pktCount)
		switch {
		case surv == pktCount:
			expectTag[id] = c.step
			c.lastComplete[id] = c.step
		case surv > 0 && c.cfg.ModelRecoup == ModelRecoupStale && c.lastComplete[id] >= 0:
			expectTag[id] = c.lastComplete[id]
		default:
			expectTag[id] = -1
		}
	}

	// Broadcast phase. Suspected workers are included — a straggler that
	// recovers can rejoin the round. Scheduled downlink drops are applied
	// before the write (SendPackets takes the mask), mirroring the uplink
	// design. Paced writes to a live socket never block for long, so
	// sequential sends are fine.
	c.modelPktScratch = c.cfg.Codec.SplitInto(c.modelPktScratch[:0], &transport.GradientMsg{
		Worker: transport.ModelWorkerID, Step: c.step, Grad: c.params,
	}, c.cfg.MTU)
	for id, s := range c.modelSenders {
		if phases != nil && phases[id] == ps.ChurnDown {
			continue // down worker: no broadcast (a crashing one still gets its last)
		}
		if err := s.SendPackets(c.modelPktScratch, modelDrop[id]); err != nil {
			return nil, fmt.Errorf("cluster: model broadcast to worker %d at step %d: %w", id, c.step, err)
		}
	}

	// The server evaluates every worker's uplink drop schedule itself:
	// expected packet arrivals and known-lost coordinate counts per slot.
	// Workers that cannot submit this round expect zero packets.
	expectPkts := make([]int, n)
	lostCoords := make([]int, n)
	for id := 0; id < n; id++ {
		if expectTag[id] < 0 {
			continue
		}
		drop := udpDropSchedule(c.cfg.Seed, c.step, id, pktCount, c.cfg.DropRate)
		expectPkts[id] = pktCount
		for p, d := range drop {
			if !d {
				continue
			}
			expectPkts[id]--
			w := dim - p*per
			if w > per {
				w = per
			}
			lostCoords[id] += w
		}
	}

	grads := make([]tensor.Vector, n)
	losses := make([]float64, n)
	got := make([]bool, n)     // slot holds a gradient (received or recouped)
	hasLoss := make([]bool, n) // the worker's loss metadata actually arrived
	dropped := make([]bool, n) // slot settled by the DropGradient policy

	// Slots whose every packet is scheduled to drop can never arrive:
	// recoup them up front (whole-gradient recoup, like a timed-out slot).
	// A slot the asynchronous schedule dropped as too stale is settled
	// without recoup — the server proceeds as if the worker does not exist
	// this round, which is the whole point of the quorum design.
	for id := 0; id < n; id++ {
		if expectPkts[id] > 0 {
			continue
		}
		if async && expectTag[id] < 0 {
			dropped[id] = true
			continue
		}
		if phases != nil && !churnParticipates(phases[id]) {
			dropped[id] = true // scheduled crash/down: dropped by design, never recouped
			continue
		}
		if v := c.recoupSlot(id); v != nil {
			grads[id] = v
			got[id] = true
		} else {
			dropped[id] = true
		}
	}

	// Collection phase: pump packets into the reassembler, slotting by
	// self-declared worker id. A slot settles when its gradient completes,
	// or — under loss — the moment all its surviving packets are in and the
	// known-lost coordinates are recouped. Datagrams are unauthenticated,
	// so anything malformed (out-of-range ids, wrong dimension, stale or
	// future steps, duplicates after settlement) is ignored, never fatal: a
	// single hostile datagram must not take the round down.
	outstanding := func() int {
		m := 0
		for id := 0; id < n; id++ {
			if !got[id] && !dropped[id] && !c.suspected[id] {
				m++
			}
		}
		return m
	}
	deadline := roundDeadline(c.cfg.RoundTimeout)
	for outstanding() > 0 {
		remaining := untilDeadline(deadline)
		if remaining <= 0 {
			break
		}
		pkt, err := c.recv.RecvPacket(remaining)
		if err != nil {
			if errors.Is(err, transport.ErrTimeout) {
				break
			}
			return nil, fmt.Errorf("cluster: gradient receive at step %d: %w", c.step, err)
		}
		id := pkt.Worker
		if id < 0 || id >= n || expectTag[id] < 0 || pkt.Step != expectTag[id] || pkt.Dim != dim {
			continue
		}
		if got[id] || dropped[id] {
			continue // duplicate delivery after settlement: protocol-normal
		}
		if msg, done := asm.Offer(pkt); done {
			grads[id] = msg.Grad
			losses[id] = msg.Loss
			got[id], hasLoss[id] = true, true
			delete(c.suspected, id) // recovered straggler rejoins the quorum
		} else if missing, ok := asm.Missing(id, expectTag[id]); ok && missing == lostCoords[id] {
			c.settleLost(asm, id, expectTag[id], grads, losses, got, hasLoss, dropped)
			if got[id] {
				delete(c.suspected, id)
			}
		}
	}

	// Deadline: the round proceeds with whatever arrived (the paper's
	// bounded waiting). Missing workers are suspected and not waited for in
	// later rounds, so one unresponsive node costs one timeout, not one per
	// round. Their slots — empty or partial — are recouped per the policy.
	for id := 0; id < n; id++ {
		if got[id] || dropped[id] {
			continue
		}
		c.suspected[id] = true
		if _, pending := asm.Missing(id, expectTag[id]); pending {
			c.settleLost(asm, id, expectTag[id], grads, losses, got, hasLoss, dropped)
			continue
		}
		if v := c.recoupSlot(id); v != nil {
			grads[id] = v
			got[id] = true
		}
	}

	// Aggregation input in worker-id order — accept order is a race, and
	// floating-point summation is order-sensitive.
	received := make([]tensor.Vector, 0, n)
	for id := 0; id < n; id++ {
		if got[id] {
			received = append(received, grads[id])
			// Stale counts only slots carrying an actual stale-tagged
			// submission (arrived or fill-completed from its partial) —
			// hasLoss distinguishes those from wholly recouped slots,
			// which contain no worker gradient at all. The two staleness
			// regimes are mutually exclusive, so under async the same
			// condition counts scheduled slow-worker admissions instead.
			if hasLoss[id] && expectTag[id] >= 0 && expectTag[id] != c.step {
				if async {
					res.AdmittedStale++
				} else {
					res.Stale++
				}
			}
		}
	}
	res.Received = len(received)

	// Mean honest loss (diagnostic only; Byzantine losses are excluded, as
	// are slots whose loss metadata never arrived).
	var lossSum float64
	var lossN int
	for id := 0; id < n; id++ {
		if !hasLoss[id] {
			continue
		}
		if _, byz := c.cfg.Byzantine[id]; byz {
			continue
		}
		lossSum += losses[id]
		lossN++
	}
	if lossN > 0 {
		res.Loss = lossSum / float64(lossN)
	}

	// Quorum gate: an asynchronous round below the scheduled quorum is
	// skipped rather than waited on, mirroring the other backends.
	if async && len(received) < c.cfg.Async.EffectiveQuorum(n) {
		res.Skipped = true
		c.step++
		return res, nil
	}

	// Below-bound gate: when churn shrinks live membership under the GAR's
	// Byzantine safety bound (n_live < MinWorkers, e.g. 2f+3 for the
	// Krum family), aggregating would be unsafe — the rule's resilience
	// proof no longer holds for the configured f. The round is skipped
	// explicitly, without calling the GAR, and counted.
	if c.membership != nil {
		if info, ok := c.cfg.GAR.(gar.ByzantineInfo); ok && c.membership.Live() < info.MinWorkers() {
			res.BelowBound = true
			res.Skipped = true
			c.step++
			return res, nil
		}
	}

	// Aggregation + descent phase, mirroring the TCP backend: a round whose
	// survivor count violates the GAR's quorum is skipped, not deadlocked.
	agg, err := gar.AggregateInto(c.ws, c.cfg.GAR, received)
	if err != nil {
		if errors.Is(err, gar.ErrTooFewWorkers) || errors.Is(err, gar.ErrNoGradients) {
			res.Skipped = true
			c.step++
			return res, nil
		}
		return nil, fmt.Errorf("cluster: aggregation at step %d: %w", c.step, err)
	}
	opt.Regularize(agg, c.params, c.cfg.L1, c.cfg.L2)
	c.cfg.Optimizer.Step(c.step, c.params, agg)
	c.server.SetParamsVector(c.params)
	c.step++
	return res, nil
}

// settleLost resolves worker id's partial gradient whose remaining
// coordinates are presumed lost, per the recoup policy: DropGradient
// discards it, FillNaN and FillRandom force-complete it — the fill keyed on
// (seed, round, id) and applied in ascending coordinate order, so the
// values are a pure function of the configuration and the set of missing
// coordinates. tag is the step the submission is tagged with (the round
// itself, or the worker's stale model step under lossy model broadcasts) —
// the reassembler key; the recoup seed always keys on the round.
func (c *UDPCluster) settleLost(asm *transport.Reassembler, id, tag int, grads []tensor.Vector, losses []float64, got, hasLoss, dropped []bool) {
	switch c.cfg.Recoup {
	case transport.FillNaN:
		msg, ok := asm.FlushFill(id, tag, func(int) float64 { return math.NaN() })
		if !ok {
			return
		}
		grads[id], losses[id] = msg.Grad, msg.Loss
		got[id], hasLoss[id] = true, true
	case transport.FillRandom:
		rng := rand.New(rand.NewSource(ps.RecoupSeed(c.cfg.Seed, c.step, id)))
		msg, ok := asm.FlushFill(id, tag, func(int) float64 { return rng.NormFloat64() })
		if !ok {
			return
		}
		grads[id], losses[id] = msg.Grad, msg.Loss
		got[id], hasLoss[id] = true, true
	default: // DropGradient
		asm.Discard(id, tag)
		dropped[id] = true
	}
}

// recoupSlot produces the stand-in gradient for a slot with no packets at
// all (every packet scheduled to drop, or a worker that missed the round
// deadline entirely), per the configured recoup policy. nil means the slot
// is dropped. Identical in construction to the TCP backend's timed-out-slot
// recoup: a deterministic function of (seed, step, worker id).
func (c *UDPCluster) recoupSlot(id int) tensor.Vector {
	switch c.cfg.Recoup {
	case transport.FillNaN:
		v := tensor.NewVector(c.params.Dim())
		for i := range v {
			v[i] = math.NaN()
		}
		return v
	case transport.FillRandom:
		rng := rand.New(rand.NewSource(ps.RecoupSeed(c.cfg.Seed, c.step, id)))
		v := tensor.NewVector(c.params.Dim())
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	default: // DropGradient: proceed without the slot
		return nil
	}
}

// Model returns the server's evaluation replica, synchronised with the
// current parameters.
func (c *UDPCluster) Model() *nn.Network { return c.server }

// Params returns a copy of the current model parameters.
func (c *UDPCluster) Params() tensor.Vector { return c.params.Clone() }

// StepCount returns the number of rounds run so far.
func (c *UDPCluster) StepCount() int { return c.step }

// Close unblocks every worker by closing its model endpoint, waits for the
// worker goroutines, and releases the remaining sockets. It is idempotent.
func (c *UDPCluster) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if !c.started {
		if c.recv != nil {
			c.recv.Close()
		}
		return nil
	}
	for _, r := range c.modelRecvs {
		r.Close()
	}
	c.workerWG.Wait()
	for _, s := range c.modelSenders {
		s.Close()
	}
	// Under churn a slot holds whichever sender the worker last dialled, or
	// nil while the schedule had it down when the run ended.
	c.gradMu.Lock()
	for _, s := range c.gradSenders {
		if s != nil {
			s.Close()
		}
	}
	c.gradMu.Unlock()
	return c.recv.Close()
}
