package cluster

import "time"

// This file is the package's wall-clock seam: the ONLY place in
// internal/cluster allowed to read host time, and the only cluster file on
// aggrevet's wallclock allowlist. Round deadlines and failure-report waits
// are liveness bounds — they decide when to stop waiting, never what a
// round computes: every recouped or skipped slot is settled by the seeded
// schedules (ps.DropSeed, ps.SlowSeed, ...), so results stay pure functions
// of the run seed even though these timers fire at host-dependent moments.
// New wall-clock needs in this package must thread through helpers here
// rather than call package time directly.

// roundDeadline returns the wall-clock instant at which the current
// collection round stops waiting for stragglers.
func roundDeadline(timeout time.Duration) time.Time {
	return time.Now().Add(timeout)
}

// untilDeadline returns how long remains before a roundDeadline instant.
func untilDeadline(deadline time.Time) time.Duration {
	return time.Until(deadline)
}

// newRoundTimer arms the round-timeout timer for a collection loop.
func newRoundTimer(timeout time.Duration) *time.Timer {
	return time.NewTimer(timeout)
}

// failureReportWindow bounds the wait for a failing worker goroutine to
// report its root-cause error after its connection drops.
func failureReportWindow(d time.Duration) <-chan time.Time {
	return time.After(d)
}

// reconnectPause sleeps one rung of the reconnect backoff ladder — pacing
// between a crashed worker's dial attempts. Liveness only: which rounds a
// worker misses is decided by the churn schedule (ps.ChurnSeed), never by
// how long a reconnect took.
func reconnectPause(d time.Duration) {
	time.Sleep(d)
}
