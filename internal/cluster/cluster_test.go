package cluster

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/transport"
)

func TestParseSpec(t *testing.T) {
	s, err := ParseSpec(`{"ps": ["127.0.0.1:7000"], "workers": ["127.0.0.1:7001", "127.0.0.1:7002"]}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Tasks(JobWorkers)) != 2 {
		t.Fatalf("workers %v", s.Tasks(JobWorkers))
	}
	if got := s.JobNames(); got[0] != "ps" || got[1] != "workers" {
		t.Fatalf("job names %v", got)
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"ps": []}`,
		`{"ps": [""]}`,
		`{"ps": ["a:1"], "workers": ["a:1"]}`, // duplicate address
	}
	for _, raw := range cases {
		if _, err := ParseSpec(raw); err == nil {
			t.Fatalf("spec %q accepted", raw)
		}
	}
}

func TestDeviceString(t *testing.T) {
	d := Device{Job: "workers", Task: 3, Kind: GPU}
	if got := d.String(); got != "/job:workers/task:3/device:gpu" {
		t.Fatalf("device path %q", got)
	}
}

func TestRoundRobinPolicy(t *testing.T) {
	devs := []Device{{Task: 0}, {Task: 1}, {Task: 2}}
	p := &RoundRobin{}
	got := []int{
		p.Assign("a", devs).Task,
		p.Assign("b", devs).Task,
		p.Assign("c", devs).Task,
		p.Assign("d", devs).Task,
	}
	want := []int{0, 1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round robin order %v", got)
		}
	}
}

func TestPreferGPUPolicy(t *testing.T) {
	cpuOnly := []Device{{Task: 0, Kind: CPU}, {Task: 1, Kind: CPU}}
	mixed := []Device{{Task: 0, Kind: CPU}, {Task: 1, Kind: GPU}}
	p := PreferGPU{}
	if got := p.Assign("g", cpuOnly); got.Task != 0 {
		t.Fatalf("cpu fallback picked task %d", got.Task)
	}
	if got := p.Assign("g", mixed); got.Task != 1 || got.Kind != GPU {
		t.Fatalf("gpu preference picked %v", got)
	}
}

func TestAllocate(t *testing.T) {
	spec, err := ParseSpec(`{"ps": ["h0:7000"], "workers": ["h1:7000", "h2:7000"], "eval": ["h3:7000"]}`)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(spec, &RoundRobin{}, 4, map[string][]bool{JobWorkers: {true, false}})
	if err != nil {
		t.Fatal(err)
	}
	if alloc["variables"].Job != JobPS || alloc["aggregation"].Job != JobPS {
		t.Fatal("server ops must land on ps")
	}
	if alloc["accuracy"].Job != JobEval {
		t.Fatal("accuracy must land on eval")
	}
	// 4 worker gradient ops spread over 2 tasks round-robin.
	w0 := alloc["worker_0/gradient"]
	w2 := alloc["worker_2/gradient"]
	if w0.Task != w2.Task {
		t.Fatal("round robin should reuse task 0 for workers 0 and 2")
	}
	if alloc["worker_0/gradient"].Kind != GPU {
		t.Fatal("worker task 0 was declared GPU")
	}
	if got := alloc["worker_1/gradient"].Task; got != 1 {
		t.Fatalf("worker 1 on task %d", got)
	}
}

func TestAllocateMissingJobs(t *testing.T) {
	spec := &Spec{Jobs: map[string][]string{"ps": {"h:1"}}}
	if _, err := Allocate(spec, &RoundRobin{}, 1, nil); err == nil {
		t.Fatal("missing workers job accepted")
	}
}

func TestAllocateEvalDefaultsToPS(t *testing.T) {
	spec, err := ParseSpec(`{"ps": ["h0:1"], "workers": ["h1:1"]}`)
	if err != nil {
		t.Fatal(err)
	}
	alloc, err := Allocate(spec, &RoundRobin{}, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if alloc["accuracy"].Job != JobPS {
		t.Fatal("eval must co-locate with ps when absent")
	}
}

func TestPolicyNames(t *testing.T) {
	if (&RoundRobin{}).Name() != "round-robin" || (PreferGPU{}).Name() != "prefer-gpu" {
		t.Fatal("policy names")
	}
	if !strings.Contains((Device{Job: "ps"}).String(), "cpu") {
		t.Fatal("default device kind must be cpu")
	}
}

// Full socket-distributed training over localhost: model broadcasts and
// gradients all travel real TCP connections, the GAR aggregates, and the
// model learns.
func TestTCPTrainEndToEnd(t *testing.T) {
	ds := data.SyntheticFeatures(300, 10, 3, 41)
	ds.MinMaxScale()
	train, test := ds.Split(0.8)
	factory := func() *nn.Network {
		return nn.NewMLP(10, []int{16}, 3, rand.New(rand.NewSource(42)))
	}
	params, err := TCPTrain(TCPTrainConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      5,
		GAR:          gar.NewMultiKrum(1),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
		Train:        train,
		Steps:        120,
		RoundTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	model := factory()
	model.SetParamsVector(params)
	if acc := model.Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("TCP-distributed training accuracy %v", acc)
	}
}

func TestTCPTrainFloat32Wire(t *testing.T) {
	ds := data.SyntheticFeatures(200, 8, 2, 43)
	ds.MinMaxScale()
	train, test := ds.Split(0.8)
	factory := func() *nn.Network {
		return nn.NewMLP(8, []int{12}, 2, rand.New(rand.NewSource(44)))
	}
	params, err := TCPTrain(TCPTrainConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      3,
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        16,
		Train:        train,
		Steps:        80,
		Codec:        transport.Codec{Float32: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	model := factory()
	model.SetParamsVector(params)
	if acc := model.Accuracy(test.X, test.Y); acc < 0.7 {
		t.Fatalf("float32-wire training accuracy %v", acc)
	}
}

func TestTCPTrainValidation(t *testing.T) {
	if _, err := TCPTrain(TCPTrainConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	ds := data.SyntheticFeatures(50, 4, 2, 45)
	cfg := TCPTrainConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: func() *nn.Network { return nn.NewMLP(4, nil, 2, rand.New(rand.NewSource(1))) },
		Workers:      0,
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        8,
		Train:        ds,
		Steps:        1,
	}
	if _, err := TCPTrain(cfg); err == nil {
		t.Fatal("zero workers accepted")
	}
}
