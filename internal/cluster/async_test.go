package cluster

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// asyncFixture is the shared dataset/model of the async cluster tests — the
// same shape as the Byzantine matrix so results stay comparable.
func asyncFixture() (*data.Dataset, *data.Dataset, func() *nn.Network) {
	ds := data.SyntheticFeatures(300, 10, 3, 50)
	ds.MinMaxScale()
	train, test := ds.Split(0.8)
	factory := func() *nn.Network {
		return nn.NewMLP(10, []int{16}, 3, rand.New(rand.NewSource(51)))
	}
	return train, test, factory
}

// socketCluster is the surface both socket backends share in these tests.
type socketCluster interface {
	Start() error
	Step() (*ps.StepResult, error)
	Params() tensor.Vector
	Close() error
}

func newSocketCluster(t *testing.T, backend string, train *data.Dataset,
	factory func() *nn.Network, async ps.AsyncConfig, byz map[int]string) socketCluster {
	t.Helper()
	switch backend {
	case "tcp":
		cl, err := NewTCPCluster(TCPClusterConfig{
			Addr:         "127.0.0.1:0",
			ModelFactory: factory,
			Workers:      7,
			GAR:          gar.Median{},
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
			Batch:        32,
			Train:        train,
			Byzantine:    byz,
			Seed:         13,
			Async:        async,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	case "udp":
		cl, err := NewUDPCluster(UDPClusterConfig{
			Addr:         "127.0.0.1:0",
			ModelFactory: factory,
			Workers:      7,
			GAR:          gar.Median{},
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
			Batch:        32,
			Train:        train,
			Byzantine:    byz,
			Seed:         13,
			Async:        async,
		})
		if err != nil {
			t.Fatal(err)
		}
		return cl
	default:
		t.Fatalf("unknown backend %q", backend)
		return nil
	}
}

// TestAsyncLockstepParitySockets: on both socket backends, an async
// configuration demanding every slot fresh (Quorum = n, no slow schedule)
// must reproduce the plain synchronous trajectory bit-for-bit, round by
// round, with zero staleness counted — the socket half of the tentpole's
// lockstep-parity contract.
func TestAsyncLockstepParitySockets(t *testing.T) {
	for _, backend := range []string{"tcp", "udp"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			train, _, factory := asyncFixture()
			plain := newSocketCluster(t, backend, train, factory, ps.AsyncConfig{}, nil)
			async := newSocketCluster(t, backend, train, factory, ps.AsyncConfig{Quorum: 7}, nil)
			for _, cl := range []socketCluster{plain, async} {
				if err := cl.Start(); err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
			}
			for step := 0; step < 15; step++ {
				rp, err := plain.Step()
				if err != nil {
					t.Fatal(err)
				}
				ra, err := async.Step()
				if err != nil {
					t.Fatal(err)
				}
				if ra.AdmittedStale != 0 || ra.DroppedStale != 0 || ra.Skipped {
					t.Fatalf("step %d: quorum-n async counted staleness or skipped: %+v", step, ra)
				}
				if rp.Received != ra.Received {
					t.Fatalf("step %d: received %d vs %d", step, rp.Received, ra.Received)
				}
				p, a := plain.Params(), async.Params()
				for i := range p {
					if math.Float64bits(p[i]) != math.Float64bits(a[i]) {
						t.Fatalf("step %d: parameter %d diverged between plain and quorum-n async", step, i)
					}
				}
			}
		})
	}
}

// TestAsyncSlowCrossBackendParity is the determinism keystone of the async
// design: with a slow-worker schedule active, the in-process cluster, the TCP
// cluster and the (loss-free) UDP cluster must walk the same trajectory —
// identical per-round counters, bit-identical losses and parameters — because
// every endpoint evaluates the same pure schedule off the same run seed.
func TestAsyncSlowCrossBackendParity(t *testing.T) {
	const (
		n      = 7
		seed   = int64(13)
		rounds = 25
	)
	async := ps.AsyncConfig{Quorum: 5, Staleness: 2, SlowRate: 0.3}
	train, _, factory := asyncFixture()

	workers := make([]ps.WorkerConfig, n)
	for i := range workers {
		workers[i] = ps.WorkerConfig{
			Sampler: data.NewUniformSampler(train, ps.SamplerSeed(seed, i)),
			Seed:    seed + int64(i),
		}
	}
	inproc, err := ps.New(ps.Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.Median{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
		Seed:         seed,
		Async:        async,
	})
	if err != nil {
		t.Fatal(err)
	}
	tcp := newSocketCluster(t, "tcp", train, factory, async, nil)
	udp := newSocketCluster(t, "udp", train, factory, async, nil)
	for _, cl := range []socketCluster{tcp, udp} {
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
	}

	staleTotal, droppedTotal := 0, 0
	for step := 0; step < rounds; step++ {
		ri, err := inproc.Step()
		if err != nil {
			t.Fatal(err)
		}
		rt, err := tcp.Step()
		if err != nil {
			t.Fatal(err)
		}
		ru, err := udp.Step()
		if err != nil {
			t.Fatal(err)
		}
		for _, pair := range []struct {
			name string
			got  *ps.StepResult
		}{{"tcp", rt}, {"udp", ru}} {
			if pair.got.Received != ri.Received || pair.got.Skipped != ri.Skipped ||
				pair.got.AdmittedStale != ri.AdmittedStale || pair.got.DroppedStale != ri.DroppedStale {
				t.Fatalf("step %d: %s counters %+v diverge from in-process %+v", step, pair.name, pair.got, ri)
			}
			if math.Float64bits(pair.got.Loss) != math.Float64bits(ri.Loss) {
				t.Fatalf("step %d: %s mean loss %v diverges from in-process %v", step, pair.name, pair.got.Loss, ri.Loss)
			}
		}
		pi, pt, pu := inproc.Params(), tcp.Params(), udp.Params()
		for i := range pi {
			if math.Float64bits(pi[i]) != math.Float64bits(pt[i]) || math.Float64bits(pi[i]) != math.Float64bits(pu[i]) {
				t.Fatalf("step %d: parameter %d diverged across backends", step, i)
			}
		}
		staleTotal += ri.AdmittedStale
		droppedTotal += ri.DroppedStale
	}
	if staleTotal == 0 || droppedTotal == 0 {
		t.Fatalf("schedule admitted %d stale and dropped %d slots over %d rounds; need both > 0 (dead fixture)",
			staleTotal, droppedTotal, rounds)
	}
}

// TestUDPAsyncByzantineStalenessMatrix is the hostile end of the async design:
// {multi-krum, median, bulyan} × {reversed, non-finite} × τ ∈ {1, 3} over real
// UDP sockets with 10% seeded packet loss, fill-random recoup and a
// slow-worker schedule. Every round's counters must match an independent
// evaluation of the two schedules (slow + drop), and training must still
// converge despite hostile gradients, lost coordinates AND stale updates
// hitting the same GAR.
func TestUDPAsyncByzantineStalenessMatrix(t *testing.T) {
	const (
		n    = 7
		seed = int64(13)
		// bulyan (f=1) needs all 7 slots, so it only aggregates on rounds the
		// slow schedule leaves intact (~48% at τ=1); 300 steps leave it ~145
		// aggregating rounds, comparable to the synchronous matrix's 100.
		steps    = 300
		mtu      = 256
		dropRate = 0.10
		quorum   = 6
	)
	train, test, factory := asyncFixture()
	dim := factory().ParamsVector().Dim()
	pktCount := transport.Codec{}.PacketsPerTransfer(dim, mtu)
	for _, ruleName := range []string{"multi-krum", "median", "bulyan"} {
		for _, atk := range []string{"reversed", "non-finite"} {
			for _, tau := range []int{1, 3} {
				ruleName, atk, tau := ruleName, atk, tau
				t.Run(ruleName+"/"+atk+"/tau="+string(rune('0'+tau)), func(t *testing.T) {
					t.Parallel()
					rule, err := gar.New(ruleName, 1)
					if err != nil {
						t.Fatal(err)
					}
					minWorkers := 0
					if info, ok := rule.(gar.ByzantineInfo); ok {
						minWorkers = info.MinWorkers()
					}
					async := ps.AsyncConfig{Quorum: quorum, Staleness: tau, SlowRate: 0.2}
					cl, err := NewUDPCluster(UDPClusterConfig{
						Addr:         "127.0.0.1:0",
						ModelFactory: factory,
						Workers:      n,
						GAR:          rule,
						// Stale updates at the synchronous matrix's rate 0.3
						// oscillate late in the run; 0.2 stays stable under
						// every τ here.
						Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}},
						Batch:     32,
						Train:     train,
						Byzantine: map[int]string{6: atk},
						DropRate:  dropRate,
						Recoup:    transport.FillRandom,
						MTU:       mtu,
						Seed:      seed,
						Async:     async,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := cl.Start(); err != nil {
						t.Fatal(err)
					}
					defer cl.Close()
					staleTotal, droppedTotal, aggregated := 0, 0, 0
					for s := 0; s < steps; s++ {
						// Independent prediction from the two pure schedules:
						// a slot sits out when its scheduled lag breaches τ;
						// fill-random recoups every other slot, but only slots
						// with at least one surviving uplink packet carry an
						// actual (possibly stale-tagged) worker submission.
						wantDropped, wantStale := 0, 0
						for id := 0; id < n; id++ {
							tag := async.ExpectedTag(seed, s, id)
							if tag < 0 {
								wantDropped++
								continue
							}
							if tag < s {
								mask := udpDropSchedule(seed, s, id, pktCount, dropRate)
								if transport.CountSurvivors(mask, pktCount) > 0 {
									wantStale++
								}
							}
						}
						wantReceived := n - wantDropped
						wantSkipped := wantReceived < quorum || wantReceived < minWorkers
						sr, err := cl.Step()
						if err != nil {
							t.Fatal(err)
						}
						if sr.DroppedStale != wantDropped || sr.AdmittedStale != wantStale {
							t.Fatalf("step %d: counters stale=%d dropped=%d, schedules say %d/%d",
								s, sr.AdmittedStale, sr.DroppedStale, wantStale, wantDropped)
						}
						if sr.Received != wantReceived {
							t.Fatalf("step %d: received %d, schedules say %d", s, sr.Received, wantReceived)
						}
						if sr.Skipped != wantSkipped {
							t.Fatalf("step %d: skipped=%v with %d received (quorum %d, %s needs %d)",
								s, sr.Skipped, sr.Received, quorum, ruleName, minWorkers)
						}
						staleTotal += sr.AdmittedStale
						droppedTotal += sr.DroppedStale
						if !sr.Skipped {
							aggregated++
						}
					}
					if staleTotal == 0 || droppedTotal == 0 {
						t.Fatalf("schedule admitted %d stale / dropped %d over %d steps; matrix ran vacuously",
							staleTotal, droppedTotal, steps)
					}
					params := cl.Params()
					if !params.IsFinite() {
						t.Fatalf("%s let non-finite parameters through under %s with τ=%d", ruleName, atk, tau)
					}
					model := factory()
					model.SetParamsVector(params)
					if acc := model.Accuracy(test.X, test.Y); acc < 0.7 {
						t.Fatalf("%s under %s with τ=%d converged to accuracy %v after %d aggregating rounds",
							ruleName, atk, tau, acc, aggregated)
					}
				})
			}
		}
	}
}

// TestAsyncClusterConstructorGating: both socket constructors must reject the
// configurations the async design cannot honour — informed attacks alongside
// a slow-worker schedule (the omniscient oracle assumes fresh peers), invalid
// async parameters, and (UDP only) composing the slow schedule with lossy
// model broadcasts.
func TestAsyncClusterConstructorGating(t *testing.T) {
	train, _, factory := asyncFixture()
	tcpCfg := func(async ps.AsyncConfig, byz map[int]string) TCPClusterConfig {
		return TCPClusterConfig{
			Addr: "127.0.0.1:0", ModelFactory: factory, Workers: 7,
			GAR: gar.Median{}, Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
			Batch: 32, Train: train, Byzantine: byz, Seed: 13, Async: async,
		}
	}
	udpCfg := func(async ps.AsyncConfig, byz map[int]string) UDPClusterConfig {
		return UDPClusterConfig{
			Addr: "127.0.0.1:0", ModelFactory: factory, Workers: 7,
			GAR: gar.Median{}, Optimizer: &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
			Batch: 32, Train: train, Byzantine: byz, Seed: 13, Async: async,
		}
	}
	both := func(name string, async ps.AsyncConfig, byz map[int]string, wantOK bool) {
		t.Helper()
		_, errTCP := NewTCPCluster(tcpCfg(async, byz))
		_, errUDP := NewUDPCluster(udpCfg(async, byz))
		if wantOK && (errTCP != nil || errUDP != nil) {
			t.Errorf("%s: unexpectedly rejected (tcp: %v, udp: %v)", name, errTCP, errUDP)
		}
		if !wantOK && (errTCP == nil || errUDP == nil) {
			t.Errorf("%s: accepted by tcp=%v udp=%v, want both to reject", name, errTCP == nil, errUDP == nil)
		}
	}
	slow := ps.AsyncConfig{Quorum: 5, Staleness: 2, SlowRate: 0.3}
	both("valid slow schedule", slow, nil, true)
	both("informed attack with slow schedule", slow, map[int]string{6: "little-is-enough"}, false)
	both("informed attack with quorum only", ps.AsyncConfig{Quorum: 5}, map[int]string{6: "little-is-enough"}, true)
	both("non-informed attack with slow schedule", slow, map[int]string{6: "reversed"}, true)
	both("quorum above n", ps.AsyncConfig{Quorum: 8}, nil, false)
	both("slow rate without staleness", ps.AsyncConfig{Quorum: 5, SlowRate: 0.3}, nil, false)

	cfg := udpCfg(slow, nil)
	cfg.ModelDropRate = 0.1
	cfg.ModelRecoup = ModelRecoupStale
	if _, err := NewUDPCluster(cfg); err == nil {
		t.Error("UDP accepted a slow schedule composed with lossy model broadcasts")
	}
}
