package cluster

import (
	"math/rand"
	"testing"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/transport"
)

// TestUDPClusterByzantineMatrix is the end-to-end lossy distributed matrix:
// {multi-krum, median} × {non-finite, reversed} over real UDP sockets at 10%
// seeded packet loss with fill-random recoup, one Byzantine worker among
// seven. This is the paper's headline configuration — hostile gradients AND
// lost coordinates absorbed by the same Byzantine-resilient GAR — and the
// assertion is twofold: the server never panics on the adversarial datagram
// stream, and training still converges on the recouped rounds.
func TestUDPClusterByzantineMatrix(t *testing.T) {
	newRule := func(name string) gar.GAR {
		rule, err := gar.New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		return rule
	}
	for _, rule := range []string{"multi-krum", "median"} {
		for _, atk := range []string{"non-finite", "reversed"} {
			rule, atk := rule, atk
			t.Run(rule+"/"+atk, func(t *testing.T) {
				t.Parallel()
				ds := data.SyntheticFeatures(300, 10, 3, 50)
				ds.MinMaxScale()
				train, test := ds.Split(0.8)
				factory := func() *nn.Network {
					return nn.NewMLP(10, []int{16}, 3, rand.New(rand.NewSource(51)))
				}
				cl, err := NewUDPCluster(UDPClusterConfig{
					Addr:         "127.0.0.1:0",
					ModelFactory: factory,
					Workers:      7,
					GAR:          newRule(rule),
					Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
					Batch:        32,
					Train:        train,
					Byzantine:    map[int]string{6: atk},
					DropRate:     0.10,
					Recoup:       transport.FillRandom,
					MTU:          256, // several packets per gradient: loss really bites
					Seed:         13,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := cl.Start(); err != nil {
					t.Fatal(err)
				}
				defer cl.Close()
				for i := 0; i < 100; i++ {
					sr, err := cl.Step()
					if err != nil {
						t.Fatal(err)
					}
					if sr.Received != 7 {
						t.Fatalf("round %d received %d gradients, want 7 (fill-random recoups every slot)", i, sr.Received)
					}
				}
				params := cl.Params()
				if !params.IsFinite() {
					t.Fatalf("%s let non-finite parameters through under %s at 10%% loss", rule, atk)
				}
				model := factory()
				model.SetParamsVector(params)
				if acc := model.Accuracy(test.X, test.Y); acc < 0.7 {
					t.Fatalf("%s under %s at 10%% loss converged to accuracy %v", rule, atk, acc)
				}
			})
		}
	}
}
