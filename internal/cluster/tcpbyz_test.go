package cluster

import (
	"math/rand"
	"testing"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
)

// Byzantine workers over real sockets: the forged gradients (including
// non-finite payloads) travel the actual wire protocol, and the robust GAR
// at the server still trains the model.
func TestTCPTrainSurvivesByzantineWorkers(t *testing.T) {
	ds := data.SyntheticFeatures(300, 10, 3, 50)
	ds.MinMaxScale()
	train, test := ds.Split(0.8)
	factory := func() *nn.Network {
		return nn.NewMLP(10, []int{16}, 3, rand.New(rand.NewSource(51)))
	}
	params, err := TCPTrain(TCPTrainConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      9,
		GAR:          gar.NewMultiKrum(2),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
		Train:        train,
		Steps:        120,
		Byzantine:    map[int]string{2: "non-finite", 6: "random"},
	})
	if err != nil {
		t.Fatal(err)
	}
	model := factory()
	model.SetParamsVector(params)
	if !params.IsFinite() {
		t.Fatal("parameters non-finite after NaN attack over sockets")
	}
	if acc := model.Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("accuracy %v under socket-level attack", acc)
	}
}

// The control: the same Byzantine workers against plain averaging destroy
// training (the aggregated gradient goes non-finite immediately).
func TestTCPTrainAveragingFallsToByzantine(t *testing.T) {
	ds := data.SyntheticFeatures(200, 8, 2, 52)
	ds.MinMaxScale()
	train, _ := ds.Split(0.8)
	factory := func() *nn.Network {
		return nn.NewMLP(8, []int{12}, 2, rand.New(rand.NewSource(53)))
	}
	params, err := TCPTrain(TCPTrainConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      5,
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        16,
		Train:        train,
		Steps:        10,
		Byzantine:    map[int]string{1: "non-finite"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if params.IsFinite() {
		t.Fatal("averaging should have been poisoned by the NaN worker")
	}
}

func TestTCPTrainUnknownAttackFailsLoudly(t *testing.T) {
	ds := data.SyntheticFeatures(50, 4, 2, 54)
	factory := func() *nn.Network {
		return nn.NewMLP(4, nil, 2, rand.New(rand.NewSource(55)))
	}
	// Attack names are validated at cluster construction, before any
	// socket is opened — the run must error, not hang (bounded waiting).
	_, err := TCPTrain(TCPTrainConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      2,
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        8,
		Train:        ds,
		Steps:        3,
		Byzantine:    map[int]string{0: "no-such-attack"},
	})
	if err == nil {
		t.Fatal("unknown attack should fail the run")
	}
}
