package cluster

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
)

// churnDeployment builds the 7-worker TCP fixture for the churn tests: the
// Byzantine-matrix task with a crash/rejoin schedule layered on.
func churnDeployment(t *testing.T, rule gar.GAR, byz map[int]string, churn ps.ChurnConfig, seed int64) (*TCPCluster, *data.Dataset, func() *nn.Network) {
	t.Helper()
	ds := data.SyntheticFeatures(300, 10, 3, 50)
	ds.MinMaxScale()
	train, test := ds.Split(0.8)
	factory := func() *nn.Network {
		return nn.NewMLP(10, []int{16}, 3, rand.New(rand.NewSource(51)))
	}
	cl, err := NewTCPCluster(TCPClusterConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      7,
		GAR:          rule,
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.15}},
		Batch:        32,
		Train:        train,
		Byzantine:    byz,
		Churn:        churn,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cl, test, factory
}

// churnExpectation replays the schedule the way both endpoints do and returns
// the exact counter totals a run must report: crashes, rejoins, and the
// rounds where live membership falls below minWorkers (0 disables the bound).
func churnExpectation(churn ps.ChurnConfig, seed int64, steps, n, minWorkers int) (crashes, rejoins, below int) {
	for s := 0; s < steps; s++ {
		live := 0
		for w := 0; w < n; w++ {
			switch churn.Phase(seed, s, w) {
			case ps.ChurnCrash:
				crashes++
			case ps.ChurnRejoin:
				rejoins++
				live++
			case ps.ChurnLive:
				live++
			}
		}
		if minWorkers > 0 && live < minWorkers {
			below++
		}
	}
	return crashes, rejoins, below
}

// TestTCPClusterChurnConvergence is the tentpole's end-to-end cell: a churn
// schedule crashes workers mid-run (abrupt socket teardown), they reconnect
// through the backoff dialer at their scheduled rejoin rounds, and training
// under multi-krum with a Byzantine worker still converges. The crash/rejoin
// counters reported by StepResults must equal the independent schedule
// replay exactly — they are pure functions of the seed, not of socket
// timing.
func TestTCPClusterChurnConvergence(t *testing.T) {
	churn := ps.ChurnConfig{Rate: 0.03, DownSteps: 2, MaxRejoins: 5}
	const seed, steps = 13, 100
	rule := gar.NewMultiKrum(1)
	minWorkers := rule.MinWorkers()
	wantCrashes, wantRejoins, wantBelow := churnExpectation(churn, seed, steps, 7, minWorkers)
	if wantCrashes == 0 || wantRejoins == 0 {
		t.Fatalf("dead fixture: schedule has %d crashes / %d rejoins", wantCrashes, wantRejoins)
	}
	if wantBelow != 0 {
		t.Fatalf("fixture drift: convergence cell must stay above the safety bound, got %d below-bound rounds", wantBelow)
	}

	cl, test, factory := churnDeployment(t, rule, map[int]string{6: "reversed"}, churn, seed)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var crashes, rejoins, attempts, below int
	for i := 0; i < steps; i++ {
		res, err := cl.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		crashes += res.Crashes
		rejoins += res.Rejoins
		attempts += res.ReconnectAttempts
		if res.BelowBound {
			below++
		}
	}
	if crashes != wantCrashes || rejoins != wantRejoins || below != wantBelow {
		t.Fatalf("counters diverge from schedule replay: crashes %d (want %d), rejoins %d (want %d), belowBound %d (want %d)",
			crashes, wantCrashes, rejoins, wantRejoins, below, wantBelow)
	}
	if attempts != rejoins {
		t.Fatalf("reconnect attempts %d != rejoins %d: a scheduled reconnect should dial exactly once", attempts, rejoins)
	}
	params := cl.Params()
	if !params.IsFinite() {
		t.Fatal("non-finite parameters after churn run")
	}
	model := factory()
	model.SetParamsVector(params)
	if acc := model.Accuracy(test.X, test.Y); acc < 0.7 {
		t.Fatalf("churn run converged to accuracy %v, want >= 0.7", acc)
	}
}

// TestTCPClusterChurnBelowBound forces live membership under multi-krum's
// 2f+3 safety bound: those rounds must be skipped explicitly (BelowBound +
// Skipped, GAR never consulted) rather than aggregated unsafely or
// deadlocked, and the skip count must match the schedule replay.
func TestTCPClusterChurnBelowBound(t *testing.T) {
	churn := ps.ChurnConfig{Rate: 0.08, DownSteps: 2, MaxRejoins: 2}
	const seed, steps = 13, 30
	rule := gar.NewMultiKrum(1)
	_, _, wantBelow := churnExpectation(churn, seed, steps, 7, rule.MinWorkers())
	if wantBelow == 0 {
		t.Fatal("dead fixture: schedule never falls below the safety bound")
	}

	cl, _, _ := churnDeployment(t, rule, nil, churn, seed)
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	below := 0
	for i := 0; i < steps; i++ {
		res, err := cl.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if res.BelowBound {
			if !res.Skipped {
				t.Fatalf("step %d: below-bound round not marked skipped", i)
			}
			below++
		}
	}
	if below != wantBelow {
		t.Fatalf("belowBound rounds %d, want %d from schedule replay", below, wantBelow)
	}
	if !cl.Params().IsFinite() {
		t.Fatal("non-finite parameters after below-bound run")
	}
}

// TestTCPClusterChurnDeterministicRounds pins reproducibility under churn:
// same seed, same schedule, bit-identical parameters; a different seed takes
// a different trajectory.
func TestTCPClusterChurnDeterministicRounds(t *testing.T) {
	churn := ps.ChurnConfig{Rate: 0.05, DownSteps: 2, MaxRejoins: 3}
	const steps = 40
	run := func(seed int64) tensor.Vector {
		cl, _, _ := churnDeployment(t, gar.NewMultiKrum(1), nil, churn, seed)
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		for i := 0; i < steps; i++ {
			if _, err := cl.Step(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, i, err)
			}
		}
		return cl.Params()
	}
	a, b, c := run(13), run(13), run(14)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("same seed, same churn schedule: parameters diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical parameters: churn seed not threading")
	}
}

// TestTCPClusterChurnGuards pins the loud construction-time incompatibility
// errors: churn × async, churn × unresponsive workers, churn × informed
// attacks, and malformed churn parameters.
func TestTCPClusterChurnGuards(t *testing.T) {
	base := func() TCPClusterConfig {
		return TCPClusterConfig{
			Addr:         "127.0.0.1:0",
			ModelFactory: func() *nn.Network { return nn.NewMLP(4, nil, 2, rand.New(rand.NewSource(1))) },
			Workers:      7,
			GAR:          gar.NewMultiKrum(1),
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
			Batch:        4,
			Train:        data.SyntheticFeatures(40, 4, 2, 3),
			Churn:        ps.ChurnConfig{Rate: 0.1, DownSteps: 2, MaxRejoins: 1},
			Seed:         7,
		}
	}
	t.Run("async", func(t *testing.T) {
		cfg := base()
		cfg.Async = ps.AsyncConfig{Quorum: 5, Staleness: 1, SlowRate: 0.2}
		_, err := NewTCPCluster(cfg)
		if !errors.Is(err, ps.ErrChurnAsync) {
			t.Fatalf("want ps.ErrChurnAsync, got %v", err)
		}
	})
	t.Run("unresponsive", func(t *testing.T) {
		cfg := base()
		cfg.Unresponsive = map[int]bool{3: true}
		_, err := NewTCPCluster(cfg)
		if err == nil || !strings.Contains(err.Error(), "unresponsive") {
			t.Fatalf("want unresponsive × churn rejection, got %v", err)
		}
	})
	t.Run("informed attack", func(t *testing.T) {
		cfg := base()
		cfg.Byzantine = map[int]string{6: "omniscient"}
		_, err := NewTCPCluster(cfg)
		if err == nil || !strings.Contains(err.Error(), "churn") {
			t.Fatalf("want informed × churn rejection, got %v", err)
		}
	})
	t.Run("blind attack allowed", func(t *testing.T) {
		cfg := base()
		cfg.Byzantine = map[int]string{6: "reversed"}
		cl, err := NewTCPCluster(cfg)
		if err != nil {
			t.Fatalf("blind attack must be compatible with churn: %v", err)
		}
		cl.Close()
	})
	t.Run("bad rate", func(t *testing.T) {
		cfg := base()
		cfg.Churn.Rate = 1.0
		if _, err := NewTCPCluster(cfg); err == nil {
			t.Fatal("want churn rate validation error")
		}
	})
	t.Run("bad downSteps", func(t *testing.T) {
		cfg := base()
		cfg.Churn.DownSteps = 0
		if _, err := NewTCPCluster(cfg); err == nil {
			t.Fatal("want churn downSteps validation error")
		}
	})
}

// TestTCPClusterAbruptDisconnectSettlesViaRecoup is the regression test for
// a worker vanishing between receiving a broadcast and submitting its
// gradient (no churn schedule — a genuine abrupt disconnect): the reader's
// error must mark the worker dead and let the round settle through the
// recoup policy immediately, not wedge until RoundTimeout, and later rounds
// must keep training on the survivors.
func TestTCPClusterAbruptDisconnectSettlesViaRecoup(t *testing.T) {
	const crashStep = 3
	ds := data.SyntheticFeatures(120, 6, 3, 9)
	ds.MinMaxScale()
	train, _ := ds.Split(0.8)
	cl, err := NewTCPCluster(TCPClusterConfig{
		Addr:            "127.0.0.1:0",
		ModelFactory:    func() *nn.Network { return nn.NewMLP(6, []int{8}, 3, rand.New(rand.NewSource(10))) },
		Workers:         5,
		GAR:             gar.Median{},
		Optimizer:       &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:           8,
		Train:           train,
		RoundTimeout:    30 * time.Second,
		Seed:            21,
		testAbruptClose: map[int]int{2: crashStep},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.Start(); err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 8; i++ {
		start := time.Now()
		res, err := cl.Step()
		if err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if elapsed := time.Since(start); i >= crashStep && elapsed > 5*time.Second {
			t.Fatalf("step %d took %v: abrupt disconnect wedged the round toward RoundTimeout", i, elapsed)
		}
		want := 5
		if i >= crashStep {
			want = 4 // DropGradient recoup: the dead slot is dropped
		}
		if res.Received != want {
			t.Fatalf("step %d received %d gradients, want %d", i, res.Received, want)
		}
	}
	if !cl.Params().IsFinite() {
		t.Fatal("non-finite parameters after abrupt-disconnect run")
	}
}
