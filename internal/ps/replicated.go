package ps

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sync"

	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/tensor"
)

// ReplicatedCluster implements the paper's §6 proposal for removing the
// trusted-server assumption: the parameter server is state-machine
// replicated. Each replica holds the parameters and runs the same
// deterministic GAR + optimizer; each step every replica proposes its model
// to the workers, and a worker adopts the value endorsed by more than 2/3 of
// the replicas ("use the model that has been sent by 2/3 of the replicas").
// Because the server computation is deterministic, correct replicas always
// propose bit-identical models, so a Byzantine minority of replicas cannot
// steer the workers.
type ReplicatedCluster struct {
	cfg        ReplicatedConfig
	replicas   []*serverReplica
	workers    []*nn.Network
	rngs       []*rand.Rand
	byzReplica map[int]bool
	ws         *gar.Workspace // shared aggregation scratch arena
	step       int
}

type serverReplica struct {
	params    tensor.Vector
	optimizer opt.Optimizer
	model     *nn.Network
}

// ReplicatedConfig assembles a replicated-server deployment.
type ReplicatedConfig struct {
	// ModelFactory builds network replicas (servers and workers).
	ModelFactory func() *nn.Network
	// ServerReplicas is the replication degree R; tolerating b Byzantine
	// replicas requires R ≥ 3b+1.
	ServerReplicas int
	// ByzantineReplicas lists server replica ids that propose garbage
	// models every step.
	ByzantineReplicas []int
	// Workers lists the n workers (gradient-level attacks supported).
	Workers []WorkerConfig
	// GAR aggregates worker gradients — identical on every replica.
	GAR gar.GAR
	// OptimizerFactory builds one optimizer per replica (each replica
	// carries its own deterministic optimizer state).
	OptimizerFactory func() opt.Optimizer
	// Batch is the per-worker mini-batch size.
	Batch int
	// Seed drives Byzantine-replica noise.
	Seed int64
}

// ErrNoModelQuorum is returned when no model value reaches the 2/3 quorum —
// more Byzantine replicas than the deployment tolerates.
var ErrNoModelQuorum = errors.New("ps: no 2/3 model quorum among server replicas")

// NewReplicated validates and assembles the replicated deployment.
func NewReplicated(cfg ReplicatedConfig) (*ReplicatedCluster, error) {
	if cfg.ModelFactory == nil || cfg.GAR == nil || cfg.OptimizerFactory == nil {
		return nil, errors.New("ps: replicated config missing required field")
	}
	if cfg.ServerReplicas < 1 {
		return nil, fmt.Errorf("ps: need at least one server replica, got %d", cfg.ServerReplicas)
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("ps: at least one worker is required")
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("ps: batch size %d", cfg.Batch)
	}
	byz := map[int]bool{}
	for _, r := range cfg.ByzantineReplicas {
		if r < 0 || r >= cfg.ServerReplicas {
			return nil, fmt.Errorf("ps: byzantine replica %d out of range", r)
		}
		byz[r] = true
	}
	if 3*len(byz) >= cfg.ServerReplicas {
		return nil, fmt.Errorf("ps: %d Byzantine replicas need R >= %d, got %d",
			len(byz), 3*len(byz)+1, cfg.ServerReplicas)
	}
	c := &ReplicatedCluster{cfg: cfg, byzReplica: byz, ws: gar.NewWorkspace()}
	c.replicas = make([]*serverReplica, cfg.ServerReplicas)
	for r := range c.replicas {
		model := cfg.ModelFactory()
		c.replicas[r] = &serverReplica{
			params:    model.ParamsVector(),
			optimizer: cfg.OptimizerFactory(),
			model:     model,
		}
	}
	c.workers = make([]*nn.Network, len(cfg.Workers))
	c.rngs = make([]*rand.Rand, len(cfg.Workers))
	for i := range cfg.Workers {
		c.workers[i] = cfg.ModelFactory()
		c.rngs[i] = rand.New(rand.NewSource(cfg.Seed + int64(i)*104729))
	}
	return c, nil
}

// paramsFingerprint hashes the exact bit pattern of a parameter vector
// (NaN payloads canonicalised) for the workers' majority vote.
func paramsFingerprint(v tensor.Vector) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		bits := math.Float64bits(x)
		if math.IsNaN(x) {
			bits = math.Float64bits(math.NaN())
		}
		for i := 0; i < 8; i++ {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// Step runs one synchronous round of the replicated deployment.
func (c *ReplicatedCluster) Step() (*StepResult, error) {
	res := &StepResult{Step: c.step}
	r := c.cfg.ServerReplicas
	quorum := 2*r/3 + 1

	// Proposal phase: every replica broadcasts its model; Byzantine
	// replicas broadcast fresh garbage.
	proposals := make([]tensor.Vector, r)
	byzRng := rand.New(rand.NewSource(c.cfg.Seed ^ int64(c.step)*7919))
	for i, rep := range c.replicas {
		if c.byzReplica[i] {
			garbage := tensor.NewVector(rep.params.Dim())
			for j := range garbage {
				garbage[j] = byzRng.NormFloat64() * 1e6
			}
			proposals[i] = garbage
			continue
		}
		proposals[i] = rep.params
	}

	// Vote phase: workers adopt the value proposed by > 2/3 of replicas.
	counts := map[uint64][]int{}
	for i, p := range proposals {
		fp := paramsFingerprint(p)
		counts[fp] = append(counts[fp], i)
	}
	var agreed tensor.Vector
	//aggrevet:ordered quorum > 2n/3, so at most one fingerprint bucket can reach it; the pick is order-independent
	for _, idxs := range counts {
		if len(idxs) >= quorum {
			agreed = proposals[idxs[0]]
			break
		}
	}
	if agreed == nil {
		return nil, ErrNoModelQuorum
	}
	// Snapshot: `agreed` aliases one replica's live parameter buffer, and
	// the descent phase below mutates replica buffers in sequence.
	agreed = agreed.Clone()

	// Compute phase (honest gradients in parallel, as in Cluster.Step).
	n := len(c.cfg.Workers)
	honest := make([]tensor.Vector, n)
	losses := make([]float64, n)
	hasLoss := make([]bool, n)
	var wg sync.WaitGroup
	for i := range c.cfg.Workers {
		w := &c.cfg.Workers[i]
		if w.Silent || w.Sampler == nil {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replica := c.workers[i]
			replica.SetParamsVector(agreed)
			x, y := c.cfg.Workers[i].Sampler.Sample(c.cfg.Batch)
			loss, grad := replica.Gradient(x, y)
			honest[i] = grad.Clone()
			losses[i] = loss
			hasLoss[i] = true
		}(i)
	}
	wg.Wait()

	var received []tensor.Vector
	for i := range c.cfg.Workers {
		if honest[i] != nil {
			received = append(received, honest[i])
		}
		if hasLoss[i] {
			res.Loss += losses[i]
		}
	}
	if len(received) > 0 {
		res.Loss /= float64(len(received))
	}
	res.Received = len(received)

	// Descent phase: every correct replica applies the same deterministic
	// GAR + optimizer, so they stay in lockstep.
	agg, err := gar.AggregateInto(c.ws, c.cfg.GAR, received)
	if err != nil {
		if errors.Is(err, gar.ErrTooFewWorkers) || errors.Is(err, gar.ErrNoGradients) {
			res.Skipped = true
			c.step++
			return res, nil
		}
		return nil, fmt.Errorf("ps: replicated aggregation at step %d: %w", c.step, err)
	}
	for i, rep := range c.replicas {
		if c.byzReplica[i] {
			continue // its state is irrelevant; it lies anyway
		}
		// Each replica owns its params; apply the shared gradient.
		copy(rep.params, agreed)
		rep.optimizer.Step(c.step, rep.params, agg)
		rep.model.SetParamsVector(rep.params)
	}
	c.step++
	return res, nil
}

// Model returns the evaluation model of the first correct replica.
func (c *ReplicatedCluster) Model() *nn.Network {
	for i, rep := range c.replicas {
		if !c.byzReplica[i] {
			return rep.model
		}
	}
	return c.replicas[0].model
}

// CorrectReplicasAgree reports whether all correct replicas hold
// bit-identical parameters (the state-machine-replication invariant).
func (c *ReplicatedCluster) CorrectReplicasAgree() bool {
	var first tensor.Vector
	for i, rep := range c.replicas {
		if c.byzReplica[i] {
			continue
		}
		if first == nil {
			first = rep.params
			continue
		}
		if paramsFingerprint(rep.params) != paramsFingerprint(first) {
			return false
		}
	}
	return true
}

// StepCount returns the number of rounds run.
func (c *ReplicatedCluster) StepCount() int { return c.step }
