package ps

import (
	"testing"
)

func TestChurnConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  ChurnConfig
		ok   bool
	}{
		{"zero value", ChurnConfig{}, true},
		{"enabled", ChurnConfig{Rate: 0.1, DownSteps: 2, MaxRejoins: 3}, true},
		{"enabled no rejoins", ChurnConfig{Rate: 0.1, DownSteps: 1}, true},
		{"negative rate", ChurnConfig{Rate: -0.1, DownSteps: 1}, false},
		{"rate one", ChurnConfig{Rate: 1, DownSteps: 1}, false},
		{"enabled zero downSteps", ChurnConfig{Rate: 0.1}, false},
		{"negative downSteps", ChurnConfig{Rate: 0.1, DownSteps: -1}, false},
		{"negative maxRejoins", ChurnConfig{Rate: 0.1, DownSteps: 1, MaxRejoins: -1}, false},
		{"knobs without rate", ChurnConfig{DownSteps: 2}, false},
		{"rejoins without rate", ChurnConfig{MaxRejoins: 1}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error, got nil", c.name)
		}
	}
}

// TestChurnSchedulePureFunction pins the schedule's structural invariants
// over a long horizon: determinism, no crashes at step 0, downtime of
// exactly DownSteps rounds, rejoin budgets enforced, and — the dead-fixture
// guard — that the chosen rate actually exercises crashes, rejoins and a
// permanent departure.
func TestChurnSchedulePureFunction(t *testing.T) {
	cfg := ChurnConfig{Rate: 0.15, DownSteps: 3, MaxRejoins: 2}
	const seed, workers, steps = 29, 7, 300

	crashes, rejoins, permanents := 0, 0, 0
	for w := 0; w < workers; w++ {
		if got := cfg.Phase(seed, 0, w); got != ChurnLive {
			t.Fatalf("worker %d: phase at step 0 = %v, want live", w, got)
		}
		lastCrash := -1
		rejoinsSeen := 0
		for s := 0; s <= steps; s++ {
			phase := cfg.Phase(seed, s, w)
			if phase != cfg.Phase(seed, s, w) {
				t.Fatalf("worker %d step %d: phase not deterministic", w, s)
			}
			switch phase {
			case ChurnCrash:
				crashes++
				if lastCrash >= 0 && s < lastCrash+cfg.DownSteps {
					t.Fatalf("worker %d: crash at %d inside downtime of crash at %d", w, s, lastCrash)
				}
				lastCrash = s
			case ChurnRejoin:
				rejoins++
				rejoinsSeen++
				if lastCrash < 0 || s != lastCrash+cfg.DownSteps {
					t.Fatalf("worker %d: rejoin at %d, want exactly %d after crash at %d",
						w, s, cfg.DownSteps, lastCrash)
				}
				if rejoinsSeen > cfg.MaxRejoins {
					t.Fatalf("worker %d: %d rejoins exceed budget %d", w, rejoinsSeen, cfg.MaxRejoins)
				}
			case ChurnDown:
				if lastCrash < 0 {
					t.Fatalf("worker %d: down at %d without a crash", w, s)
				}
			}
		}
		if cfg.Permanent(seed, steps, w) {
			permanents++
			if rejoinsSeen != cfg.MaxRejoins {
				t.Fatalf("worker %d: permanent after %d rejoins, want budget %d spent",
					w, rejoinsSeen, cfg.MaxRejoins)
			}
		}
	}
	if crashes == 0 || rejoins == 0 {
		t.Fatalf("dead fixture: crashes=%d rejoins=%d — rate never exercised", crashes, rejoins)
	}
	if permanents == 0 {
		t.Fatalf("dead fixture: no worker exhausted its rejoin budget over %d steps", steps)
	}
	if disabled := (ChurnConfig{}); disabled.Phase(seed, 5, 0) != ChurnLive {
		t.Fatal("disabled churn must report every worker live")
	}
}

// TestMembershipTrackerMatchesReplay cross-checks the tracker's incremental
// state machine against the pure replay at every (step, worker).
func TestMembershipTrackerMatchesReplay(t *testing.T) {
	cfg := ChurnConfig{Rate: 0.2, DownSteps: 2, MaxRejoins: 1}
	const seed, workers, steps = 71, 5, 120

	tr := NewMembershipTracker(cfg, seed, workers)
	for s := 0; s <= steps; s++ {
		phases := tr.BeginRound(s)
		live := 0
		for w := 0; w < workers; w++ {
			want := cfg.Phase(seed, s, w)
			if phases[w] != want {
				t.Fatalf("step %d worker %d: tracker phase %v, replay %v", s, w, phases[w], want)
			}
			if phases[w] == ChurnLive || phases[w] == ChurnRejoin {
				live++
			}
			if phases[w] == ChurnRejoin {
				if v := tr.Admit(w, s, 1); v != RejoinAdmit {
					t.Fatalf("step %d worker %d: scheduled rejoin verdict %v", s, w, v)
				}
			}
		}
		if tr.Live() != live {
			t.Fatalf("step %d: Live() = %d, want %d", s, tr.Live(), live)
		}
		if tr.PendingRejoins() != 0 {
			t.Fatalf("step %d: %d rejoins still pending after admitting all", s, tr.PendingRejoins())
		}
	}
	if tr.Crashes() == 0 || tr.Rejoins() == 0 {
		t.Fatalf("dead fixture: crashes=%d rejoins=%d", tr.Crashes(), tr.Rejoins())
	}
	if tr.ReconnectAttempts() != tr.Rejoins() {
		t.Fatalf("scheduled path: reconnectAttempts %d != rejoins %d", tr.ReconnectAttempts(), tr.Rejoins())
	}
}

// TestMembershipTrackerAdmission scripts every rejoin verdict against a
// schedule walked to its first rejoin round.
func TestMembershipTrackerAdmission(t *testing.T) {
	cfg := ChurnConfig{Rate: 0.25, DownSteps: 2, MaxRejoins: 2}
	const seed, workers = 17, 6

	tr := NewMembershipTracker(cfg, seed, workers)
	rejoinStep, rejoinWorker := -1, -1
	for s := 0; s <= 200 && rejoinStep < 0; s++ {
		phases := tr.BeginRound(s)
		for w, p := range phases {
			if p == ChurnRejoin {
				rejoinStep, rejoinWorker = s, w
				break
			}
		}
	}
	if rejoinStep < 0 {
		t.Fatal("dead fixture: no rejoin within 200 steps")
	}

	if v := tr.Admit(-1, rejoinStep, 1); v != RejoinRejectUnknownWorker {
		t.Fatalf("negative id: %v", v)
	}
	if v := tr.Admit(workers, rejoinStep, 1); v != RejoinRejectUnknownWorker {
		t.Fatalf("out-of-range id: %v", v)
	}
	if v := tr.Admit(rejoinWorker, rejoinStep-1, 1); v != RejoinRejectWrongStep {
		t.Fatalf("stale step: %v", v)
	}
	if v := tr.Admit(rejoinWorker, rejoinStep, 0); v != RejoinRejectBadAttempts {
		t.Fatalf("zero attempts: %v", v)
	}
	liveWorker := -1
	for w := 0; w < workers; w++ {
		if w != rejoinWorker && cfg.Phase(seed, rejoinStep, w) == ChurnLive {
			liveWorker = w
			break
		}
	}
	if liveWorker >= 0 {
		if v := tr.Admit(liveWorker, rejoinStep, 1); v != RejoinRejectNotScheduled {
			t.Fatalf("live worker rejoin: %v", v)
		}
	}
	if tr.Rejoins() != 0 || tr.ReconnectAttempts() != 0 {
		t.Fatalf("rejections mutated counters: rejoins=%d attempts=%d", tr.Rejoins(), tr.ReconnectAttempts())
	}
	if v := tr.Admit(rejoinWorker, rejoinStep, 1); v != RejoinAdmit {
		t.Fatalf("scheduled rejoin: %v", v)
	}
	if v := tr.Admit(rejoinWorker, rejoinStep, 1); v != RejoinRejectDuplicate {
		t.Fatalf("double admit: %v", v)
	}
	if tr.Rejoins() != 1 || tr.RoundRejoins() != 1 || tr.ReconnectAttempts() != 1 {
		t.Fatalf("counters after one admit: rejoins=%d round=%d attempts=%d",
			tr.Rejoins(), tr.RoundRejoins(), tr.ReconnectAttempts())
	}
}

// FuzzMembershipTracker fuzzes the tracker's invariants against arbitrary
// configurations and handshake sequences: the incremental state machine must
// agree with the pure replay at every (step, worker), no worker is admitted
// twice in a round or before its scheduled downtime elapses, and the
// counters always agree with the verdicts issued.
func FuzzMembershipTracker(f *testing.F) {
	f.Add([]byte{3, 40, 2, 1, 9, 30, 0, 1, 2, 3})
	f.Add([]byte{7, 70, 1, 0, 200, 50, 5, 5, 0, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 6 {
			return
		}
		n := int(data[0])%8 + 2
		cfg := ChurnConfig{
			Rate:       float64(1+int(data[1])%90) / 100,
			DownSteps:  1 + int(data[2])%4,
			MaxRejoins: int(data[3]) % 3,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generated config invalid: %v", err)
		}
		seed := int64(data[4])
		steps := 1 + int(data[5])%40
		script := data[6:]

		tr := NewMembershipTracker(cfg, seed, n)
		lastCrash := make([]int, n)
		for w := range lastCrash {
			lastCrash[w] = -1
		}
		wantCrashes, wantRejoins, wantAttempts := 0, 0, 0
		for s := 0; s <= steps; s++ {
			phases := tr.BeginRound(s)
			for w := 0; w < n; w++ {
				if want := cfg.Phase(seed, s, w); phases[w] != want {
					t.Fatalf("step %d worker %d: tracker %v, replay %v", s, w, phases[w], want)
				}
				switch phases[w] {
				case ChurnCrash:
					wantCrashes++
					lastCrash[w] = s
				case ChurnRejoin:
					if lastCrash[w] < 0 || s != lastCrash[w]+cfg.DownSteps {
						t.Fatalf("step %d worker %d: rejoin before downSteps %d elapsed (crash at %d)",
							s, w, cfg.DownSteps, lastCrash[w])
					}
				}
			}

			// Scripted handshakes: arbitrary (worker, step offset,
			// attempts) triples, then the legitimate admissions.
			admitted := make([]bool, n)
			for len(script) >= 3 {
				b0, b1, b2 := script[0], script[1], script[2]
				script = script[3:]
				worker := int(b0) - 2
				step := s - 2 + int(b1)%5
				attempts := int(b2) - 1
				before := tr.Rejoins()
				v := tr.Admit(worker, step, attempts)
				legit := worker >= 0 && worker < n && step == s &&
					attempts >= 1 && phases[worker] == ChurnRejoin &&
					!admitted[worker]
				if legit != (v == RejoinAdmit) {
					t.Fatalf("step %d: handshake (worker %d step %d attempts %d) verdict %v, legit=%v",
						s, worker, step, attempts, v, legit)
				}
				if v == RejoinAdmit {
					admitted[worker] = true
					wantRejoins++
					wantAttempts += attempts
				} else if tr.Rejoins() != before {
					t.Fatalf("step %d: rejection %v mutated rejoin counter", s, v)
				}
				if b0%4 == 0 {
					break // vary how many scripted handshakes land per round
				}
			}
			for w := 0; w < n; w++ {
				if phases[w] != ChurnRejoin {
					continue
				}
				switch v := tr.Admit(w, s, 1); v {
				case RejoinAdmit:
					if admitted[w] {
						t.Fatalf("step %d worker %d: double admit accepted", s, w)
					}
					wantRejoins++
					wantAttempts++
				case RejoinRejectDuplicate:
					if !admitted[w] {
						t.Fatalf("step %d worker %d: duplicate verdict without prior admit", s, w)
					}
				default:
					t.Fatalf("step %d worker %d: scheduled rejoin verdict %v", s, w, v)
				}
				if v := tr.Admit(w, s, 1); v != RejoinRejectDuplicate {
					t.Fatalf("step %d worker %d: double admit verdict %v", s, w, v)
				}
			}
			if tr.PendingRejoins() != 0 {
				t.Fatalf("step %d: pending rejoins after admitting all scheduled", s)
			}
		}
		if tr.Crashes() != wantCrashes {
			t.Fatalf("crashes %d, want %d (phases observed)", tr.Crashes(), wantCrashes)
		}
		if tr.Rejoins() != wantRejoins {
			t.Fatalf("rejoins %d, want %d (admits issued)", tr.Rejoins(), wantRejoins)
		}
		if tr.ReconnectAttempts() != wantAttempts {
			t.Fatalf("reconnectAttempts %d, want %d", tr.ReconnectAttempts(), wantAttempts)
		}
	})
}
