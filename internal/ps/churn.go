package ps

import (
	"errors"
	"fmt"
	"math/rand"
)

// Worker churn: the deterministic crash/rejoin schedule and its membership
// tracker. A seeded per-(step, worker) schedule (ChurnSeed) crashes live
// workers mid-run — the socket backends tear the worker's connections down
// abruptly — and schedules each crash's rejoin a fixed number of rounds
// later, up to a per-worker rejoin budget. Like the drop and slow-worker
// schedules, the churn schedule is a pure function of the run seed evaluated
// at BOTH endpoints: the worker knows when to crash and when its rejoin
// round arrives; the server knows exactly which slots can never be filled,
// so a round settles the moment the live membership's gradients are in —
// no deadline waits — and the crash/rejoin counters in campaign JSON are
// byte-reproducible.

// Named incompatibilities, wrapped with layer context by cluster, core and
// scenario validation (the churn twins of the async × model-loss guard).
var (
	// ErrChurnAsync rejects combining the churn schedule with asynchronous
	// quorum rounds: each regime defines its own reason a slot stays empty
	// (scheduled staleness vs scheduled downtime), and deadline-free
	// settlement requires that a missing gradient mean exactly one thing.
	ErrChurnAsync = errors.New("worker churn is incompatible with asynchronous quorum rounds: a missing slot must mean exactly one thing")
	// ErrChurnModelLoss rejects combining the churn schedule with lossy
	// model broadcasts: a worker that misses a broadcast must be able to
	// conclude it was down, not that the broadcast tore — otherwise the two
	// schedules disagree about which round the worker rejoins on.
	ErrChurnModelLoss = errors.New("worker churn is incompatible with lossy model broadcasts: a skipped broadcast must mean a down worker, not a torn one")
)

// ChurnConfig configures the deterministic worker crash/rejoin schedule on
// the socket backends. The zero value disables churn.
type ChurnConfig struct {
	// Rate is the per-(step, worker) probability that a live worker
	// crashes at a round, drawn from ChurnSeed. 0 disables churn; draws
	// start at step 1 (a worker must have identified itself on the wire
	// before its first crash).
	Rate float64
	// DownSteps is how many rounds a crashed worker stays down: a crash at
	// step s schedules the rejoin at step s+DownSteps. Must be >= 1 when
	// churn is enabled.
	DownSteps int
	// MaxRejoins caps how many times one worker may rejoin. Once a
	// worker's budget is spent, its next crash is permanent: it never
	// rejoins and its slot is dropped for the rest of the run.
	MaxRejoins int
}

// Enabled reports whether the churn schedule is active.
func (c ChurnConfig) Enabled() bool { return c.Rate > 0 }

// Validate checks the churn parameters for internal consistency.
func (c ChurnConfig) Validate() error {
	if c.Rate < 0 || c.Rate >= 1 {
		return fmt.Errorf("ps: churn rate must be in [0, 1), got %v", c.Rate)
	}
	if c.DownSteps < 0 {
		return fmt.Errorf("ps: churn downSteps must be >= 0, got %d", c.DownSteps)
	}
	if c.MaxRejoins < 0 {
		return fmt.Errorf("ps: churn maxRejoins must be >= 0, got %d", c.MaxRejoins)
	}
	if c.Enabled() && c.DownSteps < 1 {
		return fmt.Errorf("ps: churn with rate %v needs downSteps >= 1 (a crash must cost at least one round)", c.Rate)
	}
	if !c.Enabled() && (c.DownSteps != 0 || c.MaxRejoins != 0) {
		return fmt.Errorf("ps: churn downSteps/maxRejoins (%d/%d) without a crash rate; set rate > 0 or zero them", c.DownSteps, c.MaxRejoins)
	}
	return nil
}

// ChurnPhase is one worker's membership phase at one round.
type ChurnPhase int

const (
	// ChurnLive: the worker is up and submits normally this round.
	ChurnLive ChurnPhase = iota
	// ChurnCrash: the schedule crashes the worker this round — it receives
	// the broadcast, tears its sockets down without submitting, and its
	// slot is dropped (never recouped, never awaited).
	ChurnCrash
	// ChurnDown: the worker is down this round; the server neither
	// broadcasts to it nor waits for its slot.
	ChurnDown
	// ChurnRejoin: the worker's scheduled rejoin round — it reconnects
	// through the backoff dialer, re-handshakes, receives the current
	// broadcast model and submits normally.
	ChurnRejoin
)

func (p ChurnPhase) String() string {
	switch p {
	case ChurnLive:
		return "live"
	case ChurnCrash:
		return "crash"
	case ChurnDown:
		return "down"
	case ChurnRejoin:
		return "rejoin"
	default:
		return fmt.Sprintf("ChurnPhase(%d)", int(p))
	}
}

// churnCrashDraw evaluates the seeded crash draw for one live worker at one
// step. Keyed per (step, worker) — never a per-worker stream — so both
// endpoints can evaluate it independently.
func churnCrashDraw(runSeed int64, step, worker int, rate float64) bool {
	rng := rand.New(rand.NewSource(ChurnSeed(runSeed, step, worker)))
	return rng.Float64() < rate
}

// replay walks one worker's crash/rejoin timeline from step 0 and returns
// its phase at step plus whether it is permanently down at that point. A
// worker's timeline depends only on its own draws, so replay is exact at
// both endpoints: crash draws happen only while live (and never at step 0 or
// on the rejoin round itself), a crash with rejoin budget left schedules the
// rejoin DownSteps rounds later, and a crash past the budget is final.
func (c ChurnConfig) replay(runSeed int64, step, worker int) (ChurnPhase, bool) {
	if !c.Enabled() {
		return ChurnLive, false
	}
	rejoins := 0
	down := false
	permanent := false
	rejoinStep := 0
	for s := 0; s <= step; s++ {
		phase := ChurnLive
		switch {
		case down && !permanent && s == rejoinStep:
			down = false
			phase = ChurnRejoin
		case down:
			phase = ChurnDown
		case s > 0 && churnCrashDraw(runSeed, s, worker, c.Rate):
			phase = ChurnCrash
			down = true
			if rejoins < c.MaxRejoins {
				rejoins++
				rejoinStep = s + c.DownSteps
			} else {
				permanent = true
			}
		}
		if s == step {
			return phase, permanent
		}
	}
	return ChurnLive, false
}

// Phase returns one worker's membership phase at one step — the pure
// schedule function both endpoints evaluate. The MembershipTracker's
// incremental state machine must agree with this replay at every
// (step, worker); the fuzz target cross-checks the two implementations.
func (c ChurnConfig) Phase(runSeed int64, step, worker int) ChurnPhase {
	phase, _ := c.replay(runSeed, step, worker)
	return phase
}

// Permanent reports whether the worker is permanently down at step (its
// rejoin budget was already spent when it last crashed). A crashing worker
// uses this to decide between exiting for good and starting the reconnect
// dialer.
func (c ChurnConfig) Permanent(runSeed int64, step, worker int) bool {
	_, permanent := c.replay(runSeed, step, worker)
	return permanent
}

// RejoinVerdict is the typed outcome of one rejoin handshake offered to the
// MembershipTracker — the membership twin of the quorum tracker's Admission.
type RejoinVerdict int

const (
	// RejoinAdmit: the worker is scheduled to rejoin this round and its
	// handshake is the first — it is re-admitted to the membership.
	RejoinAdmit RejoinVerdict = iota
	// RejoinRejectUnknownWorker: the handshake names a worker id outside
	// the cluster.
	RejoinRejectUnknownWorker
	// RejoinRejectWrongStep: the handshake's step tag is not the current
	// round.
	RejoinRejectWrongStep
	// RejoinRejectNotScheduled: the worker is not scheduled to rejoin this
	// round — it is live, mid-downtime (an early rejoin), or permanently
	// down.
	RejoinRejectNotScheduled
	// RejoinRejectDuplicate: the worker was already admitted this round.
	RejoinRejectDuplicate
	// RejoinRejectBadAttempts: the handshake reported a non-positive dial
	// attempt count.
	RejoinRejectBadAttempts
)

func (v RejoinVerdict) String() string {
	switch v {
	case RejoinAdmit:
		return "admit"
	case RejoinRejectUnknownWorker:
		return "reject-unknown-worker"
	case RejoinRejectWrongStep:
		return "reject-wrong-step"
	case RejoinRejectNotScheduled:
		return "reject-not-scheduled"
	case RejoinRejectDuplicate:
		return "reject-duplicate"
	case RejoinRejectBadAttempts:
		return "reject-bad-attempts"
	default:
		return fmt.Sprintf("RejoinVerdict(%d)", int(v))
	}
}

// MembershipTracker is the server-side state machine for the churn schedule
// — the membership twin of QuorumTracker. It is pure and I/O-free: the
// server calls BeginRound once per round to advance the schedule and learn
// each worker's phase, offers rejoin handshakes to Admit for a typed
// verdict, and reads the per-round and run-total counters that flow into
// StepResult and campaign JSON. Only admissions mutate admission state;
// rejected handshakes leave the tracker untouched.
type MembershipTracker struct {
	cfg  ChurnConfig
	seed int64
	n    int

	step        int
	begun       bool
	down        []bool
	permanent   []bool
	rejoinStep  []int
	rejoinsUsed []int
	phases      []ChurnPhase
	admitted    []bool

	crashes           int
	rejoins           int
	reconnectAttempts int
	roundCrashes      int
	roundRejoins      int
	roundAttempts     int
}

// NewMembershipTracker builds the tracker for a run of n workers under cfg.
// The caller must have validated cfg.
func NewMembershipTracker(cfg ChurnConfig, runSeed int64, n int) *MembershipTracker {
	return &MembershipTracker{
		cfg:         cfg,
		seed:        runSeed,
		n:           n,
		down:        make([]bool, n),
		permanent:   make([]bool, n),
		rejoinStep:  make([]int, n),
		rejoinsUsed: make([]int, n),
		phases:      make([]ChurnPhase, n),
		admitted:    make([]bool, n),
	}
}

// BeginRound advances the schedule to round step and returns each worker's
// phase. Rounds must advance one at a time from step 0; the returned slice
// is valid until the next BeginRound. The incremental state must agree with
// ChurnConfig.Phase at every (step, worker) — asserted by the unit tests and
// the fuzz target.
func (t *MembershipTracker) BeginRound(step int) []ChurnPhase {
	want := 0
	if t.begun {
		want = t.step + 1
	}
	if step != want {
		panic(fmt.Sprintf("ps: MembershipTracker.BeginRound(%d) out of order, want round %d", step, want))
	}
	t.step = step
	t.begun = true
	t.roundCrashes, t.roundRejoins, t.roundAttempts = 0, 0, 0
	for w := 0; w < t.n; w++ {
		t.admitted[w] = false
		switch {
		case t.down[w] && !t.permanent[w] && step == t.rejoinStep[w]:
			t.down[w] = false
			t.phases[w] = ChurnRejoin
		case t.down[w]:
			t.phases[w] = ChurnDown
		case step > 0 && churnCrashDraw(t.seed, step, w, t.cfg.Rate):
			t.phases[w] = ChurnCrash
			t.down[w] = true
			t.crashes++
			t.roundCrashes++
			if t.rejoinsUsed[w] < t.cfg.MaxRejoins {
				t.rejoinsUsed[w]++
				t.rejoinStep[w] = step + t.cfg.DownSteps
			} else {
				t.permanent[w] = true
			}
		default:
			t.phases[w] = ChurnLive
		}
	}
	return t.phases
}

// Admit offers one rejoin handshake (worker id, the round it claims to
// rejoin at, and the dial attempts its reconnect took) and returns the typed
// verdict. Only RejoinAdmit mutates the tracker.
func (t *MembershipTracker) Admit(worker, step, attempts int) RejoinVerdict {
	if worker < 0 || worker >= t.n {
		return RejoinRejectUnknownWorker
	}
	if !t.begun || step != t.step {
		return RejoinRejectWrongStep
	}
	if t.phases[worker] != ChurnRejoin {
		return RejoinRejectNotScheduled
	}
	if t.admitted[worker] {
		return RejoinRejectDuplicate
	}
	if attempts < 1 {
		return RejoinRejectBadAttempts
	}
	t.admitted[worker] = true
	t.rejoins++
	t.roundRejoins++
	t.reconnectAttempts += attempts
	t.roundAttempts += attempts
	return RejoinAdmit
}

// Live returns the number of workers that participate in the current round
// (phase live or rejoin) — the n_live the GAR safety bound is checked
// against.
func (t *MembershipTracker) Live() int {
	live := 0
	for w := 0; w < t.n; w++ {
		if t.phases[w] == ChurnLive || t.phases[w] == ChurnRejoin {
			live++
		}
	}
	return live
}

// PendingRejoins returns how many scheduled rejoins this round still await
// their handshake.
func (t *MembershipTracker) PendingRejoins() int {
	pending := 0
	for w := 0; w < t.n; w++ {
		if t.phases[w] == ChurnRejoin && !t.admitted[w] {
			pending++
		}
	}
	return pending
}

// Churned reports whether the worker has crashed at least once so far —
// used by the TCP backend to tell a scheduled connection teardown from a
// genuine failure when a reader error surfaces.
func (t *MembershipTracker) Churned(worker int) bool {
	return t.down[worker] || t.permanent[worker] || t.rejoinsUsed[worker] > 0
}

// Crashes returns the run-total crash count.
func (t *MembershipTracker) Crashes() int { return t.crashes }

// Rejoins returns the run-total admitted-rejoin count.
func (t *MembershipTracker) Rejoins() int { return t.rejoins }

// ReconnectAttempts returns the run-total reconnect dial attempts reported
// by admitted handshakes. On the scheduled path every rejoin dials exactly
// once, so this equals Rejoins — asserted by the counter tests.
func (t *MembershipTracker) ReconnectAttempts() int { return t.reconnectAttempts }

// RoundCrashes returns the crash count of the current round.
func (t *MembershipTracker) RoundCrashes() int { return t.roundCrashes }

// RoundRejoins returns the admitted-rejoin count of the current round.
func (t *MembershipTracker) RoundRejoins() int { return t.roundRejoins }

// RoundReconnectAttempts returns the reconnect attempts admitted this round.
func (t *MembershipTracker) RoundReconnectAttempts() int { return t.roundAttempts }
