package ps

import (
	"fmt"
	"math/rand"
)

// AsyncConfig describes the asynchronous bounded-staleness round mode: the
// server aggregates as soon as a quorum of fresh-enough gradients is in,
// instead of blocking on all n slots. "Fresh enough" means tagged at most
// Staleness steps behind the current round; which workers lag (and by how
// much) is decided by the deterministic SlowSeed schedule, evaluated at both
// endpoints, so the admitted-gradient set per aggregation is a pure function
// of the run seed. The zero value means lockstep: every worker fresh, every
// slot required — byte-identical to a run without the mode.
type AsyncConfig struct {
	// Quorum is the minimum number of gradients (fresh or admitted-stale)
	// that must reach the server for the round to aggregate; rounds below
	// quorum are skipped. 0 means n (all slots), i.e. lockstep strictness.
	Quorum int

	// Staleness is the bound τ: a gradient tagged up to τ steps behind the
	// current round is admitted (and counted), older ones are dropped and
	// counted. 0 admits only fresh gradients.
	Staleness int

	// SlowRate is the per-(step, worker) probability that the SlowSeed
	// schedule marks a worker slow this round. A slow worker trains on a
	// model it retained 1..τ steps ago and submits with that older tag; a
	// worker whose scheduled lag exceeds τ sits the round out entirely.
	SlowRate float64
}

// Enabled reports whether any asynchronous behaviour is configured.
func (a AsyncConfig) Enabled() bool {
	return a.Quorum > 0 || a.Staleness > 0 || a.SlowRate > 0
}

// Validate checks the configuration against the cluster size.
func (a AsyncConfig) Validate(workers int) error {
	if a.Quorum < 0 {
		return fmt.Errorf("ps: Quorum must be >= 0, got %d", a.Quorum)
	}
	if a.Quorum > workers {
		return fmt.Errorf("ps: Quorum %d exceeds worker count %d", a.Quorum, workers)
	}
	if a.Staleness < 0 {
		return fmt.Errorf("ps: Staleness must be >= 0, got %d", a.Staleness)
	}
	if a.SlowRate < 0 || a.SlowRate >= 1 {
		return fmt.Errorf("ps: SlowRate must be in [0, 1), got %v", a.SlowRate)
	}
	if a.SlowRate > 0 && a.Staleness == 0 {
		return fmt.Errorf("ps: SlowRate %v needs Staleness >= 1 (a slow worker lags at least one step)", a.SlowRate)
	}
	return nil
}

// EffectiveQuorum resolves the configured quorum against the cluster size:
// 0 means every slot.
func (a AsyncConfig) EffectiveQuorum(workers int) int {
	if a.Quorum == 0 {
		return workers
	}
	return a.Quorum
}

// Lag evaluates the slow-worker schedule for one (step, worker): 0 means the
// worker is fresh this round, k >= 1 means it trains on the model from step
// step-k. The draw is keyed on SlowSeed so both endpoints agree without
// communicating; the lag is clamped to the steps that actually exist, so
// early rounds are fresh by construction. A drawn lag may exceed Staleness
// (by exactly one) — that worker's gradient would be too stale to admit, and
// ExpectedTag reports it as dropped.
func (a AsyncConfig) Lag(runSeed int64, step, worker int) int {
	if a.SlowRate <= 0 || step == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(SlowSeed(runSeed, step, worker)))
	if rng.Float64() >= a.SlowRate {
		return 0
	}
	lag := 1 + rng.Intn(a.Staleness+1)
	if lag > step {
		lag = step
	}
	return lag
}

// ExpectedTag resolves the schedule to the step tag worker's gradient will
// carry this round, or -1 when the scheduled lag exceeds the staleness bound
// — that worker sits the round out (no sample, no compute, no send) and the
// server counts the slot as dropped-too-stale without waiting for it.
func (a AsyncConfig) ExpectedTag(runSeed int64, step, worker int) int {
	lag := a.Lag(runSeed, step, worker)
	if lag > a.Staleness {
		return -1
	}
	return step - lag
}

// Admission classifies one gradient arrival against the quorum tracker's
// expectations.
type Admission int

const (
	// AdmitFresh admits a gradient tagged with the current round.
	AdmitFresh Admission = iota
	// AdmitStale admits a gradient tagged within the staleness bound, as
	// scheduled for that worker.
	AdmitStale
	// RejectDuplicate rejects a second arrival for an already-admitted slot.
	RejectDuplicate
	// RejectTooStale rejects a tag older than the staleness bound.
	RejectTooStale
	// RejectWrongTag rejects a tag inside the staleness window that does not
	// match the worker's scheduled tag (or any future tag).
	RejectWrongTag
	// RejectUnknownWorker rejects a worker id outside [0, n).
	RejectUnknownWorker
)

// String renders the admission verdict for diagnostics.
func (a Admission) String() string {
	switch a {
	case AdmitFresh:
		return "admit-fresh"
	case AdmitStale:
		return "admit-stale"
	case RejectDuplicate:
		return "reject-duplicate"
	case RejectTooStale:
		return "reject-too-stale"
	case RejectWrongTag:
		return "reject-wrong-tag"
	case RejectUnknownWorker:
		return "reject-unknown-worker"
	default:
		return fmt.Sprintf("admission(%d)", int(a))
	}
}

// QuorumTracker drives staleness admission for one asynchronous round. It is
// constructed from the schedule's expected tag per worker (-1 = scheduled
// too-stale, the slot will never fill) and admits arrivals one at a time;
// the round may aggregate once QuorumMet and stops waiting once Settled.
// The tracker is deliberately free of I/O so arbitrary arrival sequences can
// be fuzzed against its invariants.
type QuorumTracker struct {
	step      int
	staleness int
	quorum    int
	expect    []int
	admitted  []bool

	admittedCount int
	admittedStale int
	droppedStale  int
}

// NewQuorumTracker builds the tracker for one round. expect holds the
// scheduled step tag per worker (from AsyncConfig.ExpectedTag); slots whose
// tag is -1 are counted dropped-too-stale immediately — the schedule says
// their gradients would breach the staleness bound, so the server never
// waits for them.
func NewQuorumTracker(step int, expect []int, quorum, staleness int) *QuorumTracker {
	t := &QuorumTracker{
		step:      step,
		staleness: staleness,
		quorum:    quorum,
		expect:    expect,
		admitted:  make([]bool, len(expect)),
	}
	for _, tag := range expect {
		if tag < 0 {
			t.droppedStale++
		}
	}
	return t
}

// Admit classifies one (worker, tag) arrival. Only AdmitFresh and AdmitStale
// mutate the tracker; every rejection leaves it unchanged.
func (t *QuorumTracker) Admit(worker, tag int) Admission {
	if worker < 0 || worker >= len(t.expect) {
		return RejectUnknownWorker
	}
	if t.admitted[worker] {
		return RejectDuplicate
	}
	if tag < t.step-t.staleness {
		return RejectTooStale
	}
	if tag != t.expect[worker] {
		return RejectWrongTag
	}
	t.admitted[worker] = true
	t.admittedCount++
	if tag == t.step {
		return AdmitFresh
	}
	t.admittedStale++
	return AdmitStale
}

// Admitted reports how many slots have been admitted so far.
func (t *QuorumTracker) Admitted() int { return t.admittedCount }

// AdmittedStale reports how many admitted slots carried an older tag.
func (t *QuorumTracker) AdmittedStale() int { return t.admittedStale }

// DroppedStale reports how many slots the schedule dropped as too stale.
func (t *QuorumTracker) DroppedStale() int { return t.droppedStale }

// QuorumMet reports whether enough slots are admitted to aggregate.
func (t *QuorumTracker) QuorumMet() bool { return t.admittedCount >= t.quorum }

// Settled reports whether every slot that can still arrive has been
// admitted — the round has nothing left to wait for.
func (t *QuorumTracker) Settled() bool {
	return t.admittedCount+t.droppedStale == len(t.expect)
}
