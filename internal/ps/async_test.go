package ps

import (
	"math"
	"testing"

	"aggregathor/internal/attack"
	"aggregathor/internal/gar"
	"aggregathor/internal/opt"
)

func TestAsyncConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     AsyncConfig
		workers int
		ok      bool
	}{
		{"zero value (lockstep)", AsyncConfig{}, 7, true},
		{"quorum only", AsyncConfig{Quorum: 5}, 7, true},
		{"quorum equals n", AsyncConfig{Quorum: 7}, 7, true},
		{"full slow config", AsyncConfig{Quorum: 5, Staleness: 2, SlowRate: 0.3}, 7, true},
		{"staleness without slow", AsyncConfig{Staleness: 3}, 7, true},
		{"negative quorum", AsyncConfig{Quorum: -1}, 7, false},
		{"quorum above n", AsyncConfig{Quorum: 8}, 7, false},
		{"negative staleness", AsyncConfig{Staleness: -1}, 7, false},
		{"negative slow rate", AsyncConfig{SlowRate: -0.1, Staleness: 1}, 7, false},
		{"slow rate one", AsyncConfig{SlowRate: 1.0, Staleness: 1}, 7, false},
		{"slow without staleness", AsyncConfig{SlowRate: 0.3}, 7, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate(tc.workers)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpectedly rejected: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
	if (AsyncConfig{}).Enabled() {
		t.Error("zero-value AsyncConfig reports Enabled")
	}
	for _, cfg := range []AsyncConfig{{Quorum: 1}, {Staleness: 1}, {SlowRate: 0.1, Staleness: 1}} {
		if !cfg.Enabled() {
			t.Errorf("%+v should report Enabled", cfg)
		}
	}
	if got := (AsyncConfig{}).EffectiveQuorum(7); got != 7 {
		t.Errorf("zero quorum resolves to %d, want all 7 slots", got)
	}
	if got := (AsyncConfig{Quorum: 5}).EffectiveQuorum(7); got != 5 {
		t.Errorf("explicit quorum resolves to %d, want 5", got)
	}
}

// TestAsyncSchedulePureFunction pins the slow-worker schedule's contract: Lag
// is a pure function of (seed, step, worker), bounded by the staleness
// window, zero at step 0 and clamped to the steps that exist; ExpectedTag is
// -1 exactly when the drawn lag breaches τ and step-lag otherwise.
func TestAsyncSchedulePureFunction(t *testing.T) {
	cfg := AsyncConfig{Quorum: 5, Staleness: 2, SlowRate: 0.4}
	const seed = int64(99)
	slowSeen, droppedSeen := false, false
	for step := 0; step < 200; step++ {
		for worker := 0; worker < 7; worker++ {
			lag := cfg.Lag(seed, step, worker)
			if lag != cfg.Lag(seed, step, worker) {
				t.Fatalf("Lag(%d, %d) is not deterministic", step, worker)
			}
			if step == 0 && lag != 0 {
				t.Fatalf("step 0 drew lag %d; no earlier model exists", lag)
			}
			if lag < 0 || lag > cfg.Staleness+1 || lag > step {
				t.Fatalf("Lag(%d, %d) = %d outside [0, min(τ+1, step)]", step, worker, lag)
			}
			tag := cfg.ExpectedTag(seed, step, worker)
			switch {
			case lag > cfg.Staleness:
				droppedSeen = true
				if tag != -1 {
					t.Fatalf("lag %d > τ=%d at (%d, %d) but tag %d != -1", lag, cfg.Staleness, step, worker, tag)
				}
			default:
				if lag > 0 {
					slowSeen = true
				}
				if tag != step-lag {
					t.Fatalf("tag %d at (%d, %d), want step-lag = %d", tag, step, worker, step-lag)
				}
			}
		}
	}
	if !slowSeen {
		t.Fatal("SlowRate 0.4 over 200 steps never drew an admissible slow worker")
	}
	if !droppedSeen {
		t.Fatal("SlowRate 0.4 over 200 steps never drew a too-stale lag")
	}
	// SlowRate 0 (or a pure-quorum config) is fresh everywhere.
	lockstep := AsyncConfig{Quorum: 7}
	for step := 0; step < 50; step++ {
		for worker := 0; worker < 7; worker++ {
			if tag := lockstep.ExpectedTag(seed, step, worker); tag != step {
				t.Fatalf("quorum-only config drew tag %d at step %d; every worker must be fresh", tag, step)
			}
		}
	}
}

// TestQuorumTrackerAdmission scripts one round against the tracker: every
// verdict in the Admission enum, the quorum transition, and settlement.
func TestQuorumTrackerAdmission(t *testing.T) {
	// step 5, τ=2: expected tags one fresh, one lag-1, one lag-2, one
	// scheduled drop, one fresh.
	expect := []int{5, 4, 3, -1, 5}
	tr := NewQuorumTracker(5, expect, 3, 2)
	if tr.DroppedStale() != 1 {
		t.Fatalf("construction counted %d dropped slots, want 1", tr.DroppedStale())
	}
	if tr.QuorumMet() || tr.Settled() {
		t.Fatal("empty tracker reports quorum met or settled")
	}
	steps := []struct {
		worker, tag int
		want        Admission
	}{
		{0, 5, AdmitFresh},
		{0, 5, RejectDuplicate},
		{1, 4, AdmitStale},
		{2, 2, RejectTooStale},  // 2 < step-τ = 3
		{2, 4, RejectWrongTag},  // in-window but not worker 2's scheduled tag
		{3, 5, RejectWrongTag},  // scheduled-dropped slot never admits
		{-1, 5, RejectUnknownWorker},
		{5, 5, RejectUnknownWorker},
		{2, 3, AdmitStale},
		{4, 5, AdmitFresh},
	}
	for i, s := range steps {
		if got := tr.Admit(s.worker, s.tag); got != s.want {
			t.Fatalf("arrival %d (worker %d, tag %d): verdict %v, want %v", i, s.worker, s.tag, got, s.want)
		}
	}
	if tr.Admitted() != 4 || tr.AdmittedStale() != 2 || tr.DroppedStale() != 1 {
		t.Fatalf("counters admitted=%d stale=%d dropped=%d, want 4/2/1",
			tr.Admitted(), tr.AdmittedStale(), tr.DroppedStale())
	}
	if !tr.QuorumMet() {
		t.Fatal("4 admitted >= quorum 3 but QuorumMet is false")
	}
	if !tr.Settled() {
		t.Fatal("every fillable slot admitted but Settled is false")
	}
	for _, a := range []Admission{AdmitFresh, AdmitStale, RejectDuplicate,
		RejectTooStale, RejectWrongTag, RejectUnknownWorker, Admission(42)} {
		if a.String() == "" {
			t.Fatalf("Admission(%d) renders empty", int(a))
		}
	}
}

// TestAsyncLockstepBitIdentical is the parity half of the tentpole contract:
// an async configuration demanding every slot fresh (Quorum = n, τ = 0, no
// slow schedule) must walk exactly the plain cluster's trajectory, round by
// round, bit for bit.
func TestAsyncLockstepBitIdentical(t *testing.T) {
	build := func(async AsyncConfig) *Cluster {
		train, _, factory := testFixture(31)
		c, err := New(Config{
			ModelFactory: factory,
			Workers:      honestWorkers(train, 7),
			GAR:          gar.NewMultiKrum(1),
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.2}},
			Batch:        16,
			Seed:         77,
			Async:        async,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	plain := build(AsyncConfig{})
	async := build(AsyncConfig{Quorum: 7})
	for step := 0; step < 20; step++ {
		rp, err := plain.Step()
		if err != nil {
			t.Fatal(err)
		}
		ra, err := async.Step()
		if err != nil {
			t.Fatal(err)
		}
		if ra.AdmittedStale != 0 || ra.DroppedStale != 0 {
			t.Fatalf("step %d: lockstep-strict async counted stale slots: %+v", step, ra)
		}
		if rp.Received != ra.Received || rp.Skipped != ra.Skipped || rp.Loss != ra.Loss {
			t.Fatalf("step %d: round results diverged: %+v vs %+v", step, rp, ra)
		}
		p, a := plain.Params(), async.Params()
		for i := range p {
			if math.Float64bits(p[i]) != math.Float64bits(a[i]) {
				t.Fatalf("step %d: param %d diverged between plain and quorum-n async", step, i)
			}
		}
	}
}

// TestAsyncSlowScheduleCountersExact drives a slow-scheduled cluster and
// checks every round's counters against an independent evaluation of the
// schedule — admitted-stale, dropped-too-stale, received and the quorum skip
// are all pure functions of the seed, and the model must move exactly on the
// non-skipped rounds.
func TestAsyncSlowScheduleCountersExact(t *testing.T) {
	async := AsyncConfig{Quorum: 5, Staleness: 2, SlowRate: 0.4}
	const seed, n, steps = int64(7), 7, 60
	train, _, factory := testFixture(32)
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      honestWorkers(train, n),
		GAR:          gar.Median{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        8,
		Seed:         seed,
		Async:        async,
	})
	if err != nil {
		t.Fatal(err)
	}
	staleRounds, droppedRounds, skippedRounds := 0, 0, 0
	for step := 0; step < steps; step++ {
		wantStale, wantDropped := 0, 0
		for id := 0; id < n; id++ {
			tag := async.ExpectedTag(seed, step, id)
			switch {
			case tag < 0:
				wantDropped++
			case tag < step:
				wantStale++
			}
		}
		wantReceived := n - wantDropped
		wantSkipped := wantReceived < async.Quorum
		before := c.Params()
		res, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.AdmittedStale != wantStale || res.DroppedStale != wantDropped {
			t.Fatalf("step %d: counters stale=%d dropped=%d, schedule says %d/%d",
				step, res.AdmittedStale, res.DroppedStale, wantStale, wantDropped)
		}
		if res.Received != wantReceived {
			t.Fatalf("step %d: received %d, schedule says %d", step, res.Received, wantReceived)
		}
		if res.Skipped != wantSkipped {
			t.Fatalf("step %d: skipped=%v with %d received against quorum %d",
				step, res.Skipped, res.Received, async.Quorum)
		}
		after := c.Params()
		moved := false
		for i := range before {
			if before[i] != after[i] {
				moved = true
				break
			}
		}
		if moved == res.Skipped {
			t.Fatalf("step %d: skipped=%v but parameters moved=%v", step, res.Skipped, moved)
		}
		if wantStale > 0 {
			staleRounds++
		}
		if wantDropped > 0 {
			droppedRounds++
		}
		if wantSkipped {
			skippedRounds++
		}
	}
	// The schedule must actually exercise all three behaviours at this rate,
	// otherwise the assertions above ran vacuously.
	if staleRounds == 0 || droppedRounds == 0 || skippedRounds == 0 {
		t.Fatalf("schedule exercised stale=%d dropped=%d skipped=%d rounds; need all > 0 (dead fixture)",
			staleRounds, droppedRounds, skippedRounds)
	}
	if !c.Params().IsFinite() {
		t.Fatal("parameters went non-finite under the slow schedule")
	}
}

// TestAsyncInformedAttackRejected pins the informed-attack × slow-schedule
// incompatibility: an attack that recomputes honest gradients assumes every
// peer trained fresh, which a slow schedule breaks, so construction must fail
// — but the same attack stays available under a pure quorum config (no slow
// schedule, every submission fresh).
func TestAsyncInformedAttackRejected(t *testing.T) {
	train, _, factory := testFixture(33)
	build := func(async AsyncConfig) error {
		workers := honestWorkers(train, 7)
		workers[6].Attack = attack.NegativeSum{}
		_, err := New(Config{
			ModelFactory: factory,
			Workers:      workers,
			GAR:          gar.NewMultiKrum(1),
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
			Batch:        8,
			Seed:         5,
			Async:        async,
		})
		return err
	}
	if err := build(AsyncConfig{Quorum: 5, Staleness: 2, SlowRate: 0.3}); err == nil {
		t.Fatal("informed attack accepted alongside a slow-worker schedule")
	}
	if err := build(AsyncConfig{Quorum: 5}); err != nil {
		t.Fatalf("informed attack rejected under a pure quorum config: %v", err)
	}
	if err := build(AsyncConfig{}); err != nil {
		t.Fatalf("informed attack rejected in lockstep: %v", err)
	}
}

// FuzzQuorumAdmission fuzzes arbitrary arrival sequences against the
// tracker's invariants: no double admission, no admission outside the
// staleness window or off the scheduled tag, rejections never mutate state,
// and the quorum/settlement/counter readouts stay consistent with the
// verdicts it handed out.
func FuzzQuorumAdmission(f *testing.F) {
	f.Add([]byte{6, 2, 9, 4, 0, 1, 2, 3, 9, 9, 0, 9, 1, 8, 2, 7, 5, 9})
	f.Add([]byte{1, 0, 0, 1, 0, 0, 0})
	f.Add([]byte{15, 3, 19, 16, 0, 1, 2, 3, 4, 4, 3, 2, 1, 0, 200, 0, 7, 19})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := int(data[0]%16) + 1
		staleness := int(data[1] % 4)
		step := int(data[2] % 24)
		quorum := int(data[3]) % (n + 1)
		data = data[4:]
		if len(data) < n {
			return
		}
		// Expected tags in the shape the schedule produces: step-lag for an
		// admissible lag (clamped to the steps that exist), -1 for a
		// scheduled drop.
		expect := make([]int, n)
		wantDropped := 0
		for i := 0; i < n; i++ {
			lag := int(data[i]) % (staleness + 2)
			if lag > step {
				lag = step
			}
			if lag > staleness {
				expect[i] = -1
				wantDropped++
			} else {
				expect[i] = step - lag
			}
		}
		data = data[n:]

		tr := NewQuorumTracker(step, expect, quorum, staleness)
		if tr.DroppedStale() != wantDropped {
			t.Fatalf("construction: dropped %d, schedule has %d negative tags", tr.DroppedStale(), wantDropped)
		}
		admitted := make([]bool, n)
		admitCount, staleCount := 0, 0
		for len(data) >= 2 {
			worker := int(data[0]) - 2 // exercise out-of-range ids on both sides
			tag := step - 4 + int(data[1]%10)
			data = data[2:]
			before := tr.Admitted()
			v := tr.Admit(worker, tag)
			switch v {
			case AdmitFresh, AdmitStale:
				if worker < 0 || worker >= n {
					t.Fatalf("admitted out-of-range worker %d", worker)
				}
				if admitted[worker] {
					t.Fatalf("worker %d admitted twice", worker)
				}
				if tag != expect[worker] {
					t.Fatalf("worker %d admitted with tag %d, scheduled %d", worker, tag, expect[worker])
				}
				if tag < step-staleness {
					t.Fatalf("admitted tag %d beyond the staleness bound (step %d, τ %d)", tag, step, staleness)
				}
				if (v == AdmitFresh) != (tag == step) {
					t.Fatalf("verdict %v for tag %d at step %d", v, tag, step)
				}
				admitted[worker] = true
				admitCount++
				if v == AdmitStale {
					staleCount++
				}
				if tr.Admitted() != before+1 {
					t.Fatalf("admission did not increment the count: %d -> %d", before, tr.Admitted())
				}
			case RejectDuplicate:
				if worker < 0 || worker >= n || !admitted[worker] {
					t.Fatalf("duplicate verdict for never-admitted worker %d", worker)
				}
			case RejectUnknownWorker:
				if worker >= 0 && worker < n {
					t.Fatalf("in-range worker %d rejected as unknown", worker)
				}
			case RejectTooStale:
				if tag >= step-staleness {
					t.Fatalf("in-window tag %d rejected as too stale (step %d, τ %d)", tag, step, staleness)
				}
			case RejectWrongTag:
				if worker < 0 || worker >= n || tag == expect[worker] {
					t.Fatalf("scheduled tag %d for worker %d rejected as wrong", tag, worker)
				}
			default:
				t.Fatalf("unknown verdict %v", v)
			}
			if v != AdmitFresh && v != AdmitStale && tr.Admitted() != before {
				t.Fatalf("rejection %v mutated the tracker", v)
			}
			if tr.QuorumMet() != (admitCount >= quorum) {
				t.Fatalf("QuorumMet %v with %d admitted against quorum %d", tr.QuorumMet(), admitCount, quorum)
			}
			if tr.Settled() != (admitCount+wantDropped == n) {
				t.Fatalf("Settled %v with %d admitted + %d dropped of %d slots", tr.Settled(), admitCount, wantDropped, n)
			}
		}
		if tr.Admitted() != admitCount || tr.AdmittedStale() != staleCount || tr.DroppedStale() != wantDropped {
			t.Fatalf("final counters %d/%d/%d, verdicts say %d/%d/%d",
				tr.Admitted(), tr.AdmittedStale(), tr.DroppedStale(), admitCount, staleCount, wantDropped)
		}
	})
}
