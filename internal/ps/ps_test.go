package ps

import (
	"math/rand"
	"testing"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// testFixture builds a small learnable task and a model factory for it.
func testFixture(seed int64) (train, test *data.Dataset, factory func() *nn.Network) {
	ds := data.SyntheticFeatures(400, 12, 4, seed)
	ds.MinMaxScale()
	train, test = ds.Split(0.8)
	factory = func() *nn.Network {
		return nn.NewMLP(12, []int{24}, 4, rand.New(rand.NewSource(seed)))
	}
	return train, test, factory
}

func honestWorkers(train *data.Dataset, n int) []WorkerConfig {
	ws := make([]WorkerConfig, n)
	for i := range ws {
		ws[i] = WorkerConfig{
			Sampler: data.NewUniformSampler(train, int64(100+i)),
			Seed:    int64(i),
		}
	}
	return ws
}

func TestNewValidation(t *testing.T) {
	train, _, factory := testFixture(1)
	base := Config{
		ModelFactory: factory,
		Workers:      honestWorkers(train, 7),
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        16,
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.ModelFactory = nil
	if _, err := New(bad); err == nil {
		t.Fatal("missing factory accepted")
	}
	bad = base
	bad.Workers = nil
	if _, err := New(bad); err == nil {
		t.Fatal("no workers accepted")
	}
	bad = base
	bad.GAR = nil
	if _, err := New(bad); err == nil {
		t.Fatal("missing GAR accepted")
	}
	bad = base
	bad.Optimizer = nil
	if _, err := New(bad); err == nil {
		t.Fatal("missing optimizer accepted")
	}
	bad = base
	bad.Batch = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero batch accepted")
	}
	bad = base
	bad.GAR = gar.NewBulyan(4) // needs 19 workers
	if _, err := New(bad); err == nil {
		t.Fatal("undersized cluster for bulyan accepted")
	}
}

func TestHonestTrainingConverges(t *testing.T) {
	train, test, factory := testFixture(2)
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      honestWorkers(train, 5),
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
	})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if first.Received != 5 || first.Skipped {
		t.Fatalf("first step: %+v", first)
	}
	for i := 0; i < 150; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("accuracy %v after training, want > 0.6", acc)
	}
	if c.StepCount() != 151 {
		t.Fatalf("step count %d", c.StepCount())
	}
}

func TestMultiKrumTrainingUnderAttack(t *testing.T) {
	train, test, factory := testFixture(3)
	workers := honestWorkers(train, 9)
	// f=2 Byzantine workers with large random gradients.
	workers[3].Attack = attack.Random{Scale: 100}
	workers[7].Attack = attack.Random{Scale: 100}
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(2),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("multi-krum accuracy %v under attack, want > 0.6", acc)
	}
}

func TestAveragingDivergesUnderAttack(t *testing.T) {
	train, test, factory := testFixture(4)
	workers := honestWorkers(train, 9)
	// NegativeSum cancels the entire honest contribution under plain
	// averaging: the applied gradient is exactly zero every round.
	workers[0].Attack = attack.NegativeSum{}
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.Average{},
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// One poisoned worker destroys plain averaging: accuracy stays near
	// chance (0.25 for 4 classes).
	if acc := c.Model().Accuracy(test.X, test.Y); acc > 0.5 {
		t.Fatalf("averaging should fail under attack, got accuracy %v", acc)
	}
}

func TestNaNAttackSurvivedByMultiKrum(t *testing.T) {
	train, test, factory := testFixture(5)
	workers := honestWorkers(train, 9)
	workers[2].Attack = attack.NonFinite{}
	workers[5].Attack = attack.NonFinite{Mode: "+inf"}
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(2),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Params().IsFinite() {
		t.Fatal("parameters went non-finite under NaN attack")
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("accuracy %v under NaN attack", acc)
	}
}

func TestVanillaHijackDestroysTraining(t *testing.T) {
	train, _, factory := testFixture(6)
	workers := honestWorkers(train, 5)
	workers[1].HijackParams = true
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(1), // even a robust GAR cannot save Vanilla
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        16,
		Mode:         Vanilla,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hijacked || !c.Hijacked() {
		t.Fatal("vanilla server must accept the hijack")
	}
}

func TestPatchedServerRefusesHijack(t *testing.T) {
	train, test, factory := testFixture(7)
	workers := honestWorkers(train, 5)
	workers[1].HijackParams = true
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(1),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        16,
		Mode:         Patched,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 120; i++ {
		res, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Hijacked {
			t.Fatal("patched server accepted a hijack")
		}
	}
	if c.Hijacked() {
		t.Fatal("patched server recorded a hijack")
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("accuracy %v with refused hijacks", acc)
	}
}

func TestRemoteAssignModes(t *testing.T) {
	train, _, factory := testFixture(8)
	build := func(mode SecurityMode) *Cluster {
		c, err := New(Config{
			ModelFactory: factory,
			Workers:      honestWorkers(train, 3),
			GAR:          gar.Average{},
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
			Batch:        8,
			Mode:         mode,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	patched := build(Patched)
	if err := patched.RemoteAssign(tensor.NewVector(patched.Params().Dim())); err == nil {
		t.Fatal("patched server accepted remote assign")
	}
	vanilla := build(Vanilla)
	zero := tensor.NewVector(vanilla.Params().Dim())
	if err := vanilla.RemoteAssign(zero); err != nil {
		t.Fatal(err)
	}
	if vanilla.Params().Norm() != 0 {
		t.Fatal("remote assign did not take effect")
	}
	if err := vanilla.RemoteAssign(tensor.NewVector(1)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestSilentWorkersSkipRoundsWhenQuorumLost(t *testing.T) {
	train, _, factory := testFixture(9)
	workers := honestWorkers(train, 7)
	// Multi-Krum f=2 needs n >= 7; silence 3 workers so only 4 arrive.
	workers[1].Silent = true
	workers[3].Silent = true
	workers[5].Silent = true
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(2),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	before := c.Params()
	res, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Skipped {
		t.Fatalf("round with 4 of 7 gradients must skip for multi-krum(f=2): %+v", res)
	}
	after := c.Params()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("skipped round must not move parameters")
		}
	}
}

func TestSilentWorkersToleratedWhenQuorumHolds(t *testing.T) {
	train, _, factory := testFixture(10)
	workers := honestWorkers(train, 9)
	workers[8].Silent = true // 8 arrive, multi-krum f=2 needs 7
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(2),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Step()
	if err != nil {
		t.Fatal(err)
	}
	if res.Skipped || res.Received != 8 {
		t.Fatalf("round should proceed with 8 gradients: %+v", res)
	}
}

func TestLossyPipesWithRobustGAR(t *testing.T) {
	train, test, factory := testFixture(11)
	workers := honestWorkers(train, 9)
	// Lossy UDP links on f=2 of the workers, random-fill recoup.
	for _, i := range []int{0, 4} {
		workers[i].Pipe = transport.NewLossyPipe(transport.Codec{}, 512, 0.10, transport.FillRandom, int64(50+i))
	}
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(2),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 250; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("accuracy %v over lossy links", acc)
	}
}

func TestCorruptedDataWorkerFig7(t *testing.T) {
	train, test, factory := testFixture(12)
	workers := honestWorkers(train, 7)
	workers[2].Sampler = &data.CorruptedSampler{
		Inner:      data.NewUniformSampler(train, 200),
		Corruption: data.GarbagePixels{Scale: 1000, Rng: rand.New(rand.NewSource(13))},
	}
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(1),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}},
		Batch:        32,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("accuracy %v with corrupted-data worker", acc)
	}
}

func TestStepDeterminism(t *testing.T) {
	run := func() tensor.Vector {
		train, _, factory := testFixture(14)
		c, err := New(Config{
			ModelFactory: factory,
			Workers:      honestWorkers(train, 5),
			GAR:          gar.NewMultiKrum(1),
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
			Batch:        16,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return c.Params()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("training is nondeterministic at param %d", i)
		}
	}
}

func TestL2RegularizationShrinksWeights(t *testing.T) {
	train, _, factory := testFixture(15)
	run := func(l2 float64) float64 {
		c, err := New(Config{
			ModelFactory: factory,
			Workers:      honestWorkers(train, 3),
			GAR:          gar.Average{},
			Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
			Batch:        16,
			L2:           l2,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := c.Step(); err != nil {
				t.Fatal(err)
			}
		}
		return c.Params().Norm()
	}
	if reg, unreg := run(0.01), run(0); reg >= unreg {
		t.Fatalf("L2 must shrink weights: %v vs %v", reg, unreg)
	}
}

func TestLossyDropGradientSkipsWhenQuorumLost(t *testing.T) {
	// All links drop whole gradients at a savage rate: many rounds must be
	// skipped (no quorum) without deadlock or error, and the parameters
	// must hold still on skipped rounds — the bounded-wait behaviour.
	// Whole-gradient survival under drop-gradient is (1-p)^packets; the
	// ~400-parameter model splits into ~14 packets at MTU 256, so p=0.02
	// keeps per-link survival ≈75% — most rounds gather a quorum of 5,
	// some do not.
	train, _, factory := testFixture(60)
	workers := honestWorkers(train, 7)
	for i := range workers {
		workers[i].Pipe = transport.NewLossyPipe(transport.Codec{}, 256, 0.02, transport.DropGradient, int64(i))
	}
	c, err := New(Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          gar.NewMultiKrum(1),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        8,
	})
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for i := 0; i < 30; i++ {
		before := c.Params()
		res, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped {
			skipped++
			after := c.Params()
			for j := range before {
				if before[j] != after[j] {
					t.Fatal("skipped round moved parameters")
				}
			}
		}
	}
	if skipped == 0 {
		t.Fatal("25% packet loss with drop-gradient should skip rounds")
	}
	if skipped == 30 {
		t.Fatal("some rounds should still gather a quorum")
	}
}
