package ps

import "aggregathor/internal/nn"

// Trainer is the minimal surface a training driver needs from an assembled
// deployment: advance one synchronous round and evaluate the current model.
// Every cluster flavour in this package implements it — as does the
// socket-distributed cluster.TCPCluster — which is what lets one loop
// (core's runTraining, the scenario campaign engine) drive a plain parameter
// server, a replicated server, a Draco deployment or a real TCP deployment
// uniformly.
type Trainer interface {
	// Step runs one synchronous round.
	Step() (*StepResult, error)
	// Model returns the evaluation replica, synchronised with the current
	// parameters.
	Model() *nn.Network
}

var (
	_ Trainer = (*Cluster)(nil)
	_ Trainer = (*ReplicatedCluster)(nil)
	_ Trainer = (*DracoCluster)(nil)
)
