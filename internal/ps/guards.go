package ps

import "errors"

// Named cross-axis incompatibilities, wrapped with layer context by every
// config layer that can express both axes (see ErrChurnAsync and
// ErrChurnModelLoss in churn.go for the churn pair). Each sentinel is one
// row of the guard-parity matrix (internal/analysis/guard_matrix.txt): the
// guardparity analyzer finds the layers referencing it and diagnoses any
// layer that could compose the axes but does not reject them, so a guard
// hand-replicated across layers can no longer silently fall out of sync.
var (
	// ErrAsyncModelLoss rejects combining asynchronous quorum rounds with
	// lossy model broadcasts: they are two distinct staleness regimes — the
	// slow schedule vs torn broadcasts — and an unfillable slot has to mean
	// exactly one thing.
	ErrAsyncModelLoss = errors.New("asynchronous quorum rounds are incompatible with lossy model broadcasts: the slow schedule, not torn broadcasts, decides staleness")
	// ErrInformedSlow rejects combining an informed attack with the slow
	// schedule: the attack recomputes the honest workers' gradients from
	// the broadcast model, which assumes every peer trained fresh, and a
	// slow-worker schedule breaks that oracle.
	ErrInformedSlow = errors.New("informed attacks are incompatible with a slow-worker schedule: the honest-gradient oracle assumes every peer trained fresh")
	// ErrInformedChurn rejects combining an informed attack with the churn
	// schedule: the shared-seed oracle assumes every honest worker samples
	// once per round, and it cannot track membership while crashed workers'
	// sampler streams pause.
	ErrInformedChurn = errors.New("informed attacks are incompatible with a churn schedule: the shared-seed oracle cannot track membership")
	// ErrInformedModelLoss rejects combining an informed attack with lossy
	// model broadcasts: each honest worker then follows its own downlink
	// schedule and may train on a stale model, so the attack would silently
	// forge from wrong oracles.
	ErrInformedModelLoss = errors.New("informed attacks are incompatible with lossy model broadcasts: exact honest-gradient oracles need every peer on the broadcast model")
)
