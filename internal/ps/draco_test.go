package ps

import (
	"math/rand"
	"testing"

	"aggregathor/internal/data"
	"aggregathor/internal/draco"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
)

func dracoFixture(t *testing.T, n, f int, byz []int, scheme draco.Scheme) (*DracoCluster, *data.Dataset) {
	t.Helper()
	ds := data.SyntheticFeatures(400, 12, 4, 21)
	ds.MinMaxScale()
	train, test := ds.Split(0.8)
	plan, err := draco.NewPlan(n, f, scheme)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewDraco(DracoConfig{
		ModelFactory: func() *nn.Network {
			return nn.NewMLP(12, []int{24}, 4, rand.New(rand.NewSource(22)))
		},
		Plan:             plan,
		Optimizer:        &opt.SGD{Schedule: opt.Fixed{Rate: 0.3}, Momentum: 0.9},
		Batch:            32,
		DataSeed:         23,
		Dataset:          data.SharedBatch{DS: train},
		ByzantineWorkers: byz,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, test
}

func TestDracoValidation(t *testing.T) {
	plan, err := draco.NewPlan(3, 1, draco.Repetition)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDraco(DracoConfig{Plan: plan}); err == nil {
		t.Fatal("missing fields accepted")
	}
	ds := data.SyntheticFeatures(40, 4, 2, 1)
	cfg := DracoConfig{
		ModelFactory: func() *nn.Network { return nn.NewMLP(4, nil, 2, rand.New(rand.NewSource(1))) },
		Plan:         plan,
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        4,
		Dataset:      data.SharedBatch{DS: ds},
	}
	if _, err := NewDraco(cfg); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := cfg
	bad.ByzantineWorkers = []int{5}
	if _, err := NewDraco(bad); err == nil {
		t.Fatal("out-of-range Byzantine worker accepted")
	}
	bad = cfg
	bad.ByzantineWorkers = []int{0, 1}
	if _, err := NewDraco(bad); err == nil {
		t.Fatal("too many Byzantine workers accepted")
	}
}

func TestDracoHonestTraining(t *testing.T) {
	c, test := dracoFixture(t, 6, 1, nil, draco.Repetition)
	for i := 0; i < 120; i++ {
		res, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped {
			t.Fatalf("honest draco round skipped at step %d", i)
		}
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("draco accuracy %v", acc)
	}
	if c.StepCount() != 120 {
		t.Fatalf("step count %d", c.StepCount())
	}
}

func TestDracoSurvivesReversedGradientWorker(t *testing.T) {
	c, test := dracoFixture(t, 6, 1, []int{2}, draco.Repetition)
	for i := 0; i < 120; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("draco accuracy %v with Byzantine worker", acc)
	}
}

func TestDracoCyclicSurvivesByzantine(t *testing.T) {
	c, test := dracoFixture(t, 5, 1, []int{1}, draco.Cyclic)
	for i := 0; i < 80; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.55 {
		t.Fatalf("cyclic draco accuracy %v with Byzantine worker", acc)
	}
}

func TestDracoMatchesPlainTrainingWhenHonest(t *testing.T) {
	// With no Byzantine workers, Draco decode = mean of group gradients —
	// training must make the same kind of progress as plain averaging.
	c, test := dracoFixture(t, 3, 1, nil, draco.Repetition)
	initial := c.Model().Accuracy(test.X, test.Y)
	for i := 0; i < 100; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	final := c.Model().Accuracy(test.X, test.Y)
	if final <= initial {
		t.Fatalf("no progress: %v -> %v", initial, final)
	}
}

func TestSharedBatchDeterminism(t *testing.T) {
	ds := data.SyntheticFeatures(50, 4, 2, 30)
	sb := data.SharedBatch{DS: ds}
	x1, y1 := sb.GroupBatch(2, 7, 8, 99)
	x2, y2 := sb.GroupBatch(2, 7, 8, 99)
	for i := range y1 {
		if y1[i] != y2[i] {
			t.Fatal("group batch must be deterministic")
		}
	}
	for i := range x1.Data {
		if x1.Data[i] != x2.Data[i] {
			t.Fatal("group batch data must be deterministic")
		}
	}
	// Different group or step must (generically) differ.
	x3, _ := sb.GroupBatch(3, 7, 8, 99)
	same := true
	for i := range x1.Data {
		if x1.Data[i] != x3.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different groups got identical batches")
	}
}
