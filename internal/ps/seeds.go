package ps

// Seed derivation for per-worker randomness. Every deployment flavour — the
// in-process Cluster, the socket-distributed cluster.TCPCluster and the core
// experiment runner — must derive worker sampler and attack seeds from the
// run seed through these two functions. Threading the same formulas through
// both backends is what makes an in-process run and a socket-distributed run
// of the same configuration produce identical gradient streams (and lets the
// wire-parity tests catch any drift).

// SamplerSeed derives the data-sampler seed for one worker from the run seed.
func SamplerSeed(runSeed int64, worker int) int64 {
	return runSeed + int64(worker)*31 + 1
}

// AttackSeed derives the Byzantine attack RNG seed for one worker from the
// run seed. It composes the per-worker config seed used by core (runSeed +
// worker) with the stride New applies on top of WorkerConfig.Seed (worker ×
// 7919), so rand.New(rand.NewSource(AttackSeed(s, i))) observes the same
// stream as worker i's rng inside an in-process Cluster built by core.
func AttackSeed(runSeed int64, worker int) int64 {
	return runSeed + int64(worker) + int64(worker)*7919
}

// RecoupSeed derives the RNG seed for recouping one worker's slot at one
// step (the FillRandom stand-in for a gradient that missed the round
// deadline). Keyed per (step, worker) so a recouped round is a pure function
// of the run seed, independent of which rounds before it timed out.
func RecoupSeed(runSeed int64, step, worker int) int64 {
	return runSeed ^ (int64(step)*1000003 + int64(worker)*7907)
}

// DropSeed derives the RNG seed for the artificial packet-loss schedule of
// one worker's gradient at one step on the lossy UDP backend. Keyed per
// (step, worker) — never a per-sender stream — so the set of dropped packets
// is a pure function of the run configuration that BOTH endpoints can
// evaluate: the worker to drop before the socket write, the server to know
// exactly which packets will never arrive (which is what makes lossy rounds
// both deterministic and deadline-free).
func DropSeed(runSeed int64, step, worker int) int64 {
	return runSeed ^ (int64(step)*999983 + int64(worker)*6007 + 11)
}

// ModelDropSeed derives the RNG seed for the artificial packet-loss schedule
// of the server→worker model broadcast at one step on the lossy UDP backend
// (footnote 12's unreliable model channel). Like DropSeed it is keyed per
// (step, worker) and evaluated at BOTH endpoints: the server drops the
// scheduled packets before the socket write, and the worker therefore knows
// exactly which model packets can never arrive — it settles a torn broadcast
// the moment its surviving packets are in, with no deadline. The 1<<62
// offset keeps the downlink seed disjoint from DropSeed's for every
// reachable (step, worker): two linear forms alone collide on a lattice
// (e.g. step 60 / worker 3 under the un-offset constants), which would
// make a round's model drop mask bit-identical to its gradient drop mask.
func ModelDropSeed(runSeed int64, step, worker int) int64 {
	return runSeed ^ (int64(step)*1000033 + int64(worker)*5003 + 23 + 1<<62)
}

// ChurnSeed derives the RNG seed for the worker crash/rejoin schedule at one
// (step, worker) — the membership twin of DropSeed and SlowSeed. The schedule
// decides which live workers crash this round and is evaluated at BOTH
// endpoints: the worker to know when to tear its sockets down (and when its
// scheduled rejoin round arrives), the server to know exactly which slots
// will never be filled — so a round settles the moment the live membership's
// gradients are in, with no deadline, and the crash/rejoin/below-bound
// counters stay pure functions of the run seed. The 1<<60 offset keeps the
// stream disjoint from DropSeed's, ModelDropSeed's and SlowSeed's lattices,
// and the primes are fresh so no (step, worker) pair aliases another
// schedule.
func ChurnSeed(runSeed int64, step, worker int) int64 {
	return runSeed ^ (int64(step)*1000151 + int64(worker)*6983 + 41 + 1<<60)
}

// SlowSeed derives the RNG seed for the asynchronous-round slow-worker
// schedule at one (step, worker). The schedule decides which workers lag this
// round (and by how many steps) and is evaluated at BOTH endpoints — the
// worker to know which historical model to train on (or to sit the round out
// entirely), the server to know exactly which step tag each slot will carry
// and which slots will never be filled. That shared knowledge is what lets an
// asynchronous round settle the moment the scheduled quorum is in, with no
// deadline, and keeps the admitted-gradient set a pure function of the run
// seed. The 1<<61 offset keeps the stream disjoint from DropSeed's and
// ModelDropSeed's lattices, and the primes are fresh so no (step, worker)
// pair aliases another schedule.
func SlowSeed(runSeed int64, step, worker int) int64 {
	return runSeed ^ (int64(step)*1000121 + int64(worker)*4999 + 37 + 1<<61)
}
