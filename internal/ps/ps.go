// Package ps implements the synchronous parameter-server training loop of
// the paper (§3.1–3.2): the server broadcasts the model, every worker —
// honest or Byzantine — submits a gradient for the step, the configured GAR
// aggregates, and the optimizer applies the descent update.
//
// Two behaviours from the paper's systems contribution are modelled
// explicitly:
//
//   - Security mode. Vanilla TensorFlow lets any node execute operations
//     anywhere in the cluster, so a single Byzantine worker can overwrite
//     the shared parameters regardless of the GAR. Vanilla mode reproduces
//     that vulnerability; Patched mode (the paper's TensorFlow code patch:
//     "ps" jobs discard remote graph definitions/executions) refuses remote
//     writes.
//
//   - Bounded waiting. TensorFlow waits indefinitely for non-responding
//     nodes (incompatible with Byzantine workers); here the collection phase
//     simply proceeds with whatever gradients the links delivered, and a
//     round whose survivor count violates the GAR's requirement is skipped
//     rather than deadlocked.
package ps

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"aggregathor/internal/attack"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/tensor"
	"aggregathor/internal/transport"
)

// SecurityMode selects whether the server accepts remote parameter writes.
type SecurityMode int

const (
	// Patched is the AggregaThor default: only gradient pushes accepted.
	Patched SecurityMode = iota
	// Vanilla reproduces the TensorFlow vulnerability: any worker may
	// overwrite the shared parameters.
	Vanilla
)

// ErrForbidden is returned by remote writes in Patched mode.
var ErrForbidden = errors.New("ps: remote parameter write forbidden (patched server)")

// WorkerConfig describes one worker node.
type WorkerConfig struct {
	// Sampler provides the worker's mini-batches (possibly corrupted —
	// the Figure 7 data-poisoning path).
	Sampler data.Sampler
	// Attack, when non-nil, makes the worker Byzantine at the gradient
	// level: it submits Attack.Forge(...) instead of its honest gradient.
	Attack attack.Attack
	// HijackParams makes the worker attempt a remote parameter overwrite
	// every step (succeeds only against a Vanilla server).
	HijackParams bool
	// Silent makes the worker never submit a gradient (crash/withhold).
	Silent bool
	// Pipe is the data-plane link to the server; nil means a perfect
	// (TCP-like) link.
	Pipe transport.Pipe
	// Seed drives the worker's attack randomness.
	Seed int64
}

// Config assembles a training cluster.
type Config struct {
	// ModelFactory builds one network replica; called once for the server
	// and once per worker (in-graph replication: identical structure,
	// server-owned parameters).
	ModelFactory func() *nn.Network
	// Workers lists the n worker nodes.
	Workers []WorkerConfig
	// GAR is the gradient aggregation rule.
	GAR gar.GAR
	// Optimizer applies aggregated gradients (RMSProp lr=1e-3 in the
	// paper's evaluation).
	Optimizer opt.Optimizer
	// Batch is the per-worker mini-batch size.
	Batch int
	// Mode selects the security behaviour (Patched by default).
	Mode SecurityMode
	// L1, L2 are the regularisation weights.
	L1, L2 float64
	// Seed is the run seed the deterministic schedules (SlowSeed) are keyed
	// on. Only consulted when Async is enabled.
	Seed int64
	// Async configures asynchronous bounded-staleness rounds; the zero
	// value is lockstep and leaves every code path byte-identical.
	Async AsyncConfig
}

// Cluster is an assembled synchronous training deployment.
type Cluster struct {
	cfg      Config
	server   *nn.Network // parameter authority + evaluation replica
	params   tensor.Vector
	replicas []*nn.Network
	rngs     []*rand.Rand
	ws       *gar.Workspace // per-trainer aggregation scratch arena
	history  []tensor.Vector // model snapshots per round, ring of τ+1 (async)
	step     int
	hijacked bool
}

// StepResult reports one synchronous round.
type StepResult struct {
	// Step is the model-update index of this round (before increment).
	Step int
	// Loss is the mean training loss over honest workers this round.
	Loss float64
	// Received is how many gradients survived the links.
	Received int
	// Skipped is true when the round could not aggregate (too few
	// survivors for the GAR) and the model was left unchanged.
	Skipped bool
	// Hijacked is true when a Byzantine worker overwrote the parameters
	// this round (Vanilla mode only).
	Hijacked bool
	// Stale counts slots settled this round from a stale-model submission:
	// on the lossy-model UDP backend, a worker whose broadcast was torn
	// trained on its last complete model and the server accepted the
	// resulting gradient into the current round (ModelRecoupStale).
	Stale int
	// AdmittedStale counts slots aggregated this round whose gradient was
	// computed against a model up to τ steps old, per the asynchronous
	// slow-worker schedule.
	AdmittedStale int
	// DroppedStale counts slots the asynchronous schedule dropped this
	// round because the scheduled lag exceeded the staleness bound τ; the
	// server never waits for (or recoups) these.
	DroppedStale int
	// Crashes counts workers the churn schedule crashed this round: each
	// received the broadcast, tore its sockets down without submitting,
	// and its slot was dropped (never awaited, never recouped).
	Crashes int
	// Rejoins counts workers re-admitted to the membership this round per
	// the churn schedule, after reconnecting through the backoff dialer.
	Rejoins int
	// ReconnectAttempts sums the dial attempts behind this round's
	// admitted rejoins. On the scheduled path every rejoin dials exactly
	// once, so this equals Rejoins.
	ReconnectAttempts int
	// BelowBound is true when the round was skipped because live
	// membership fell below the GAR's Byzantine safety bound (n_live <
	// MinWorkers, e.g. 2f+3 for Krum-family rules): the server refuses to
	// aggregate unsafely and leaves the model unchanged (Skipped is also
	// set).
	BelowBound bool
}

// New validates the configuration and builds the cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.ModelFactory == nil {
		return nil, errors.New("ps: ModelFactory is required")
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("ps: at least one worker is required")
	}
	if cfg.GAR == nil {
		return nil, errors.New("ps: GAR is required")
	}
	if cfg.Optimizer == nil {
		return nil, errors.New("ps: Optimizer is required")
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("ps: batch size %d", cfg.Batch)
	}
	if info, ok := cfg.GAR.(gar.ByzantineInfo); ok {
		if len(cfg.Workers) < info.MinWorkers() {
			return nil, fmt.Errorf("ps: %s(f=%d) needs %d workers, got %d",
				cfg.GAR.Name(), info.F(), info.MinWorkers(), len(cfg.Workers))
		}
	}
	if err := cfg.Async.Validate(len(cfg.Workers)); err != nil {
		return nil, err
	}
	if cfg.Async.SlowRate > 0 {
		// An informed attack recomputes the honest workers' gradients from
		// the broadcast model, which assumes every peer trained fresh; a
		// slow schedule breaks that oracle, so the combination is rejected
		// (mirroring the informed × lossy-model-broadcast rule).
		for i, w := range cfg.Workers {
			if inf, ok := w.Attack.(attack.Informed); ok && inf.RequiresHonest() {
				return nil, fmt.Errorf("ps: attack %q on worker %d (SlowRate %v): %w",
					w.Attack.Name(), i, cfg.Async.SlowRate, ErrInformedSlow)
			}
		}
	}
	c := &Cluster{cfg: cfg, server: cfg.ModelFactory(), ws: gar.NewWorkspace()}
	if cfg.Async.Enabled() && cfg.Async.Staleness > 0 {
		c.history = make([]tensor.Vector, cfg.Async.Staleness+1)
	}
	c.params = c.server.ParamsVector()
	c.replicas = make([]*nn.Network, len(cfg.Workers))
	c.rngs = make([]*rand.Rand, len(cfg.Workers))
	for i, w := range cfg.Workers {
		if w.Sampler == nil && w.Attack == nil && !w.Silent {
			return nil, fmt.Errorf("ps: worker %d has no sampler and no attack", i)
		}
		c.replicas[i] = cfg.ModelFactory()
		if c.replicas[i].NumParams() != c.server.NumParams() {
			return nil, fmt.Errorf("ps: worker %d replica dimension %d != server %d",
				i, c.replicas[i].NumParams(), c.server.NumParams())
		}
		c.rngs[i] = rand.New(rand.NewSource(w.Seed + int64(i)*7919))
	}
	return c, nil
}

// Step runs one synchronous round.
func (c *Cluster) Step() (*StepResult, error) {
	n := len(c.cfg.Workers)
	res := &StepResult{Step: c.step}

	// Hijack phase: in Vanilla mode a Byzantine worker's remote write
	// lands before aggregation even starts (this is how the TensorFlow
	// distributed example shares parameters).
	for i, w := range c.cfg.Workers {
		if !w.HijackParams {
			continue
		}
		garbage := tensor.NewVector(c.params.Dim())
		for j := range garbage {
			garbage[j] = c.rngs[i].NormFloat64() * 1e3
		}
		if err := c.RemoteAssign(garbage); err == nil {
			res.Hijacked = true
		}
	}

	// Asynchronous schedule: resolve each worker's step tag for this round
	// (c.step = fresh, older = train on the retained model and submit with
	// that tag, -1 = the scheduled lag breaches τ and the worker sits the
	// round out) and retain the round's broadcast model so stale workers of
	// later rounds can train on it. Both sides of the socket backends
	// evaluate the same schedule, so this loop is the single source of truth
	// for which slots a round waits on.
	var expect []int
	if c.cfg.Async.Enabled() {
		expect = make([]int, n)
		for i := range expect {
			expect[i] = c.cfg.Async.ExpectedTag(c.cfg.Seed, c.step, i)
			if expect[i] < 0 {
				res.DroppedStale++
			}
		}
	}
	if len(c.history) > 0 {
		c.history[c.step%len(c.history)] = c.params.Clone()
	}

	// Broadcast + honest compute phase (parallel, one goroutine per
	// worker, each on its own replica).
	honest := make([]tensor.Vector, n)
	losses := make([]float64, n)
	hasLoss := make([]bool, n)
	var wg sync.WaitGroup
	for i := range c.cfg.Workers {
		w := &c.cfg.Workers[i]
		if w.Silent || w.Sampler == nil {
			continue
		}
		if expect != nil && expect[i] < 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			replica := c.replicas[i]
			params := c.params
			if expect != nil && expect[i] < c.step {
				params = c.history[expect[i]%len(c.history)]
			}
			replica.SetParamsVector(params)
			x, y := c.cfg.Workers[i].Sampler.Sample(c.cfg.Batch)
			loss, grad := replica.Gradient(x, y)
			honest[i] = grad.Clone()
			losses[i] = loss
			hasLoss[i] = true
		}(i)
	}
	wg.Wait()

	// Forge phase: Byzantine workers see every correct gradient (§3.1's
	// omniscient adversary) before crafting their submission.
	var correct []tensor.Vector
	for i, w := range c.cfg.Workers {
		if w.Attack == nil && honest[i] != nil {
			correct = append(correct, honest[i])
		}
	}
	submissions := make([]*transport.GradientMsg, n)
	byzCount := 0
	for _, w := range c.cfg.Workers {
		if w.Attack != nil {
			byzCount++
		}
	}
	for i := range c.cfg.Workers {
		w := &c.cfg.Workers[i]
		if w.Silent {
			continue
		}
		tag := c.step
		if expect != nil {
			if expect[i] < 0 {
				continue
			}
			tag = expect[i]
		}
		var g tensor.Vector
		if w.Attack != nil {
			g = w.Attack.Forge(&attack.Context{
				Step:   tag,
				Honest: correct,
				Own:    honest[i],
				N:      n,
				F:      byzCount,
				Dim:    c.params.Dim(),
				Rng:    c.rngs[i],
			})
		} else {
			g = honest[i]
		}
		if g == nil {
			continue
		}
		submissions[i] = &transport.GradientMsg{Worker: i, Step: tag, Grad: g}
	}

	// Collection phase: every submission traverses its link.
	var received []tensor.Vector
	for i, msg := range submissions {
		if msg == nil {
			continue
		}
		pipe := c.cfg.Workers[i].Pipe
		if pipe == nil {
			pipe = transport.PerfectPipe{}
		}
		out, ok := pipe.Transfer(msg)
		if !ok {
			continue
		}
		if out.Step < c.step {
			res.AdmittedStale++
		}
		received = append(received, out.Grad)
	}
	res.Received = len(received)

	// Mean honest loss (diagnostic only; Byzantine losses are excluded).
	var lossSum float64
	var lossN int
	for i := range losses {
		if hasLoss[i] && c.cfg.Workers[i].Attack == nil {
			lossSum += losses[i]
			lossN++
		}
	}
	if lossN > 0 {
		res.Loss = lossSum / float64(lossN)
	}

	// Quorum gate: an asynchronous round whose survivor count falls below
	// the scheduled quorum is skipped (the model is left unchanged) rather
	// than waited on — stragglers never gate the round.
	if c.cfg.Async.Enabled() && len(received) < c.cfg.Async.EffectiveQuorum(n) {
		res.Skipped = true
		c.step++
		return res, nil
	}

	// Aggregation + descent phase. The workspace-backed kernels reuse the
	// cluster's scratch arena, so the steady-state aggregation performs no
	// heap allocations; agg aliases the workspace and is consumed (applied
	// to the params) before the next round touches it.
	agg, err := gar.AggregateInto(c.ws, c.cfg.GAR, received)
	if err != nil {
		if errors.Is(err, gar.ErrTooFewWorkers) || errors.Is(err, gar.ErrNoGradients) {
			res.Skipped = true
			c.step++
			return res, nil
		}
		return nil, fmt.Errorf("ps: aggregation failed at step %d: %w", c.step, err)
	}
	opt.Regularize(agg, c.params, c.cfg.L1, c.cfg.L2)
	c.cfg.Optimizer.Step(c.step, c.params, agg)
	c.server.SetParamsVector(c.params)
	c.step++
	return res, nil
}

// RemoteAssign is the remote parameter-write RPC: a Vanilla server applies
// it (the TensorFlow vulnerability), a Patched server refuses.
func (c *Cluster) RemoteAssign(params tensor.Vector) error {
	if c.cfg.Mode != Vanilla {
		return ErrForbidden
	}
	if params.Dim() != c.params.Dim() {
		return fmt.Errorf("ps: remote assign dimension %d, want %d", params.Dim(), c.params.Dim())
	}
	copy(c.params, params)
	c.server.SetParamsVector(c.params)
	c.hijacked = true
	return nil
}

// Params returns a copy of the current model parameters.
func (c *Cluster) Params() tensor.Vector { return c.params.Clone() }

// SetParams overwrites the model parameters (checkpoint restore / warm
// start). Unlike RemoteAssign this is a local trusted-operator action and is
// permitted in any security mode.
func (c *Cluster) SetParams(v tensor.Vector) error {
	if v.Dim() != c.params.Dim() {
		return fmt.Errorf("ps: SetParams dimension %d, want %d", v.Dim(), c.params.Dim())
	}
	copy(c.params, v)
	c.server.SetParamsVector(c.params)
	return nil
}

// Model returns the server's evaluation replica, synchronised with the
// current parameters.
func (c *Cluster) Model() *nn.Network { return c.server }

// StepCount returns the number of rounds run so far.
func (c *Cluster) StepCount() int { return c.step }

// Hijacked reports whether any remote write has ever succeeded.
func (c *Cluster) Hijacked() bool { return c.hijacked }
