package ps

import (
	"errors"
	"testing"

	"aggregathor/internal/gar"
	"aggregathor/internal/opt"
)

func TestReplicatedValidation(t *testing.T) {
	train, _, factory := testFixture(33)
	base := ReplicatedConfig{
		ModelFactory:   factory,
		ServerReplicas: 4,
		Workers:        honestWorkers(train, 5),
		GAR:            gar.Average{},
		OptimizerFactory: func() opt.Optimizer {
			return &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}}
		},
		Batch: 8,
	}
	if _, err := NewReplicated(base); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.GAR = nil
	if _, err := NewReplicated(bad); err == nil {
		t.Fatal("missing GAR accepted")
	}
	bad = base
	bad.ServerReplicas = 0
	if _, err := NewReplicated(bad); err == nil {
		t.Fatal("zero replicas accepted")
	}
	bad = base
	bad.ByzantineReplicas = []int{9}
	if _, err := NewReplicated(bad); err == nil {
		t.Fatal("out-of-range Byzantine replica accepted")
	}
	bad = base
	bad.ByzantineReplicas = []int{0, 1} // 2 byz need R >= 7
	if _, err := NewReplicated(bad); err == nil {
		t.Fatal("too many Byzantine replicas accepted")
	}
}

func TestReplicatedHonestTrainingAgrees(t *testing.T) {
	train, test, factory := testFixture(34)
	c, err := NewReplicated(ReplicatedConfig{
		ModelFactory:   factory,
		ServerReplicas: 3,
		Workers:        honestWorkers(train, 7),
		GAR:            gar.NewMultiKrum(1),
		OptimizerFactory: func() opt.Optimizer {
			return &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}, Momentum: 0.9}
		},
		Batch: 32,
		Seed:  35,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		res, err := c.Step()
		if err != nil {
			t.Fatal(err)
		}
		if res.Skipped {
			t.Fatalf("honest replicated round skipped at step %d", i)
		}
	}
	if !c.CorrectReplicasAgree() {
		t.Fatal("correct replicas diverged (SMR invariant broken)")
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("replicated training accuracy %v", acc)
	}
	if c.StepCount() != 150 {
		t.Fatalf("step count %d", c.StepCount())
	}
}

func TestReplicatedSurvivesByzantineReplica(t *testing.T) {
	train, test, factory := testFixture(36)
	c, err := NewReplicated(ReplicatedConfig{
		ModelFactory:      factory,
		ServerReplicas:    4,
		ByzantineReplicas: []int{2},
		Workers:           honestWorkers(train, 7),
		GAR:               gar.NewMultiKrum(1),
		OptimizerFactory: func() opt.Optimizer {
			return &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}, Momentum: 0.9}
		},
		Batch: 32,
		Seed:  37,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if !c.CorrectReplicasAgree() {
		t.Fatal("correct replicas diverged under a Byzantine replica")
	}
	if acc := c.Model().Accuracy(test.X, test.Y); acc < 0.6 {
		t.Fatalf("accuracy %v with a lying server replica", acc)
	}
}

func TestReplicatedQuorumLossDetected(t *testing.T) {
	// Build a 4-replica cluster, then mark two replicas Byzantine by hand
	// (bypassing the constructor's guard) — the quorum must fail loudly
	// rather than let a forged model through.
	train, _, factory := testFixture(38)
	c, err := NewReplicated(ReplicatedConfig{
		ModelFactory:      factory,
		ServerReplicas:    4,
		ByzantineReplicas: []int{0},
		Workers:           honestWorkers(train, 5),
		GAR:               gar.Average{},
		OptimizerFactory: func() opt.Optimizer {
			return &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}}
		},
		Batch: 8,
		Seed:  39,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.byzReplica[1] = true // now 2 of 4 lie; quorum is 2*4/3+1 = 3 > 2 honest
	if _, err := c.Step(); !errors.Is(err, ErrNoModelQuorum) {
		t.Fatalf("want ErrNoModelQuorum, got %v", err)
	}
}

func TestReplicatedMatchesSingleServer(t *testing.T) {
	// With everything honest and deterministic, a replicated deployment
	// must produce the same model as the plain single-server cluster.
	train, _, factory := testFixture(40)
	single, err := New(Config{
		ModelFactory: factory,
		Workers:      honestWorkers(train, 5),
		GAR:          gar.NewMultiKrum(1),
		Optimizer:    &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}},
		Batch:        16,
	})
	if err != nil {
		t.Fatal(err)
	}
	replicated, err := NewReplicated(ReplicatedConfig{
		ModelFactory:   factory,
		ServerReplicas: 3,
		Workers:        honestWorkers(train, 5),
		GAR:            gar.NewMultiKrum(1),
		OptimizerFactory: func() opt.Optimizer {
			return &opt.SGD{Schedule: opt.Fixed{Rate: 0.1}}
		},
		Batch: 16,
		Seed:  41,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, err := single.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := replicated.Step(); err != nil {
			t.Fatal(err)
		}
	}
	a := single.Params()
	b := replicated.Model().ParamsVector()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replicated model diverged from single-server at param %d: %v vs %v", i, a[i], b[i])
		}
	}
}
