package ps

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"aggregathor/internal/draco"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/tensor"
)

// DracoConfig assembles the Draco comparison deployment (Chen et al. 2018):
// workers are partitioned into redundancy groups that evaluate identical
// mini-batches, and the server majority-votes each group instead of running
// a robust GAR.
type DracoConfig struct {
	// ModelFactory builds one network replica (as in Config).
	ModelFactory func() *nn.Network
	// Plan is the redundancy assignment (n, f, repetition/cyclic).
	Plan *draco.Plan
	// Optimizer applies decoded gradients.
	Optimizer opt.Optimizer
	// Batch is the per-group mini-batch size.
	Batch int
	// DataSeed derives the shared per-group samplers: group members MUST
	// see identical data — the agreement-on-ordering requirement the
	// paper criticises as incompatible with private datasets.
	DataSeed int64
	// Dataset provides group batches.
	Dataset DracoDataset
	// ByzantineWorkers lists worker ids that corrupt their submissions
	// (the reversed-gradient adversary with momentum, per the paper's
	// Draco setup).
	ByzantineWorkers []int
	// AttackMagnitude scales the corruption (default 100).
	AttackMagnitude float64
}

// DracoDataset is the minimal dataset access Draco's shared-batch scheme
// needs: deterministic batch i for seed s, identical across group members.
type DracoDataset interface {
	// GroupBatch returns the mini-batch for (group, step) — the same
	// bytes for every member of the group.
	GroupBatch(group, step, batch int, seed int64) (*tensor.Matrix, []int)
}

// DracoCluster runs the Draco training loop.
type DracoCluster struct {
	cfg      DracoConfig
	server   *nn.Network
	params   tensor.Vector
	replicas []*nn.Network
	rng      *rand.Rand
	byz      map[int]bool
	step     int
}

// NewDraco validates and assembles a Draco deployment.
func NewDraco(cfg DracoConfig) (*DracoCluster, error) {
	if cfg.ModelFactory == nil || cfg.Plan == nil || cfg.Optimizer == nil || cfg.Dataset == nil {
		return nil, errors.New("ps: draco config missing required field")
	}
	if cfg.Batch <= 0 {
		return nil, fmt.Errorf("ps: draco batch size %d", cfg.Batch)
	}
	byz := map[int]bool{}
	for _, w := range cfg.ByzantineWorkers {
		if w < 0 || w >= cfg.Plan.N {
			return nil, fmt.Errorf("ps: draco byzantine worker %d out of range", w)
		}
		byz[w] = true
	}
	if len(byz) > cfg.Plan.F {
		return nil, fmt.Errorf("ps: %d Byzantine workers exceed Draco tolerance f=%d", len(byz), cfg.Plan.F)
	}
	c := &DracoCluster{
		cfg:    cfg,
		server: cfg.ModelFactory(),
		rng:    rand.New(rand.NewSource(cfg.DataSeed ^ 0x5eed)),
		byz:    byz,
	}
	c.params = c.server.ParamsVector()
	c.replicas = make([]*nn.Network, cfg.Plan.N)
	for i := range c.replicas {
		c.replicas[i] = cfg.ModelFactory()
	}
	return c, nil
}

// Step runs one Draco round: each group's members compute the group batch
// gradient on their replicas (identical results for honest members),
// Byzantine members corrupt theirs, and the server majority-decodes.
func (c *DracoCluster) Step() (*StepResult, error) {
	groups := c.cfg.Plan.Groups()
	res := &StepResult{Step: c.step}
	submissions := make([][]tensor.Vector, len(groups))
	mag := c.cfg.AttackMagnitude
	if mag == 0 {
		mag = 100
	}

	// With cyclic assignment one worker serves several groups but owns a
	// single replica, so computation is serialised per worker (not
	// globally) with one mutex per worker id.
	workerMu := make([]sync.Mutex, c.cfg.Plan.N)
	var statsMu sync.Mutex
	var lossSum float64
	var lossN int
	var wg sync.WaitGroup
	for g, members := range groups {
		submissions[g] = make([]tensor.Vector, len(members))
		for slot, w := range members {
			wg.Add(1)
			go func(g, slot, w int) {
				defer wg.Done()
				x, y := c.cfg.Dataset.GroupBatch(g, c.step, c.cfg.Batch, c.cfg.DataSeed)
				workerMu[w].Lock()
				replica := c.replicas[w]
				replica.SetParamsVector(c.params)
				loss, grad := replica.Gradient(x, y)
				gcopy := grad.Clone()
				workerMu[w].Unlock()
				if c.byz[w] {
					gcopy.Scale(-mag) // reversed-gradient adversary
				} else {
					statsMu.Lock()
					lossSum += loss
					lossN++
					statsMu.Unlock()
				}
				submissions[g][slot] = gcopy
			}(g, slot, w)
		}
	}
	wg.Wait()
	if lossN > 0 {
		res.Loss = lossSum / float64(lossN)
	}
	for _, subs := range submissions {
		res.Received += len(subs)
	}

	decoded, err := c.cfg.Plan.Decode(submissions)
	if err != nil {
		if errors.Is(err, draco.ErrNoMajority) {
			res.Skipped = true
			c.step++
			return res, nil
		}
		return nil, fmt.Errorf("ps: draco decode at step %d: %w", c.step, err)
	}
	c.cfg.Optimizer.Step(c.step, c.params, decoded.Gradient)
	c.server.SetParamsVector(c.params)
	c.step++
	return res, nil
}

// Params returns a copy of the current parameters.
func (c *DracoCluster) Params() tensor.Vector { return c.params.Clone() }

// Model returns the synchronised evaluation replica.
func (c *DracoCluster) Model() *nn.Network { return c.server }

// StepCount returns the number of rounds run.
func (c *DracoCluster) StepCount() int { return c.step }
