package tensor

import (
	"math/rand"
	"testing"
)

func TestMatMulSmall(t *testing.T) {
	a := NewMatrix(2, 3)
	copy(a.Data, []float64{1, 2, 3, 4, 5, 6})
	b := NewMatrix(3, 2)
	copy(b.Data, []float64{7, 8, 9, 10, 11, 12})
	out := NewMatrix(2, 2)
	MatMul(out, a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if out.Data[i] != w {
			t.Fatalf("MatMul[%d]: got %v, want %v", i, out.Data[i], w)
		}
	}
}

func TestMatMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MatMul(NewMatrix(2, 2), NewMatrix(2, 3), NewMatrix(2, 2))
}

func randMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func naiveMatMul(a, b *Matrix) *Matrix {
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func matricesClose(t *testing.T, got, want *Matrix, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape (%d,%d) vs (%d,%d)", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if !almostEqual(got.Data[i], want.Data[i], 1e-9) {
			t.Fatalf("%s: element %d: got %v, want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 20; iter++ {
		r, k, c := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		a, b := randMatrix(rng, r, k), randMatrix(rng, k, c)
		out := NewMatrix(r, c)
		MatMul(out, a, b)
		matricesClose(t, out, naiveMatMul(a, b), "MatMul")
	}
}

func TestMatMulTransA(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for iter := 0; iter < 20; iter++ {
		r, k, c := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		a, b := randMatrix(rng, k, r), randMatrix(rng, k, c)
		out := NewMatrix(r, c)
		MatMulTransA(out, a, b)
		// Reference: transpose a by hand.
		at := NewMatrix(r, k)
		for i := 0; i < k; i++ {
			for j := 0; j < r; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		matricesClose(t, out, naiveMatMul(at, b), "MatMulTransA")
	}
}

func TestMatMulTransB(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 20; iter++ {
		r, k, c := rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(6)+1
		a, b := randMatrix(rng, r, k), randMatrix(rng, c, k)
		out := NewMatrix(r, c)
		MatMulTransB(out, a, b)
		bt := NewMatrix(k, c)
		for i := 0; i < c; i++ {
			for j := 0; j < k; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		matricesClose(t, out, naiveMatMul(a, bt), "MatMulTransB")
	}
}

func TestAddRowVectorAndColumnSums(t *testing.T) {
	m := NewMatrix(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	m.AddRowVector(Vector{10, 20})
	if m.At(0, 0) != 11 || m.At(1, 1) != 24 {
		t.Fatalf("AddRowVector: got %v", m.Data)
	}
	sums := m.ColumnSums()
	if sums[0] != 24 || sums[1] != 46 {
		t.Fatalf("ColumnSums: got %v", sums)
	}
}

func TestMatrixRowView(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Row(1).Fill(5)
	if m.At(1, 0) != 5 || m.At(0, 0) != 0 {
		t.Fatal("Row must be a mutable view of only that row")
	}
}

func TestMatrixClone(t *testing.T) {
	m := NewMatrix(1, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone aliases original storage")
	}
}
