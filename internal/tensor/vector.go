// Package tensor provides the flat numeric substrate used throughout the
// AggregaThor reproduction: dense float64 vectors and matrices, distance
// kernels, NaN-aware reductions, and small selection utilities.
//
// Gradient aggregation rules (package gar) operate on flat vectors, so this
// package is deliberately biased toward contiguous []float64 operations with
// explicit handling of non-finite values (NaN, ±Inf): a distance involving a
// non-finite coordinate saturates to +Inf rather than poisoning downstream
// comparisons.
package tensor

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector. The zero value is an empty vector.
type Vector []float64

// NewVector returns a zero-filled vector of dimension d.
func NewVector(d int) Vector { return make(Vector, d) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Dim returns the dimension (length) of v.
func (v Vector) Dim() int { return len(v) }

// Fill sets every coordinate of v to x.
func (v Vector) Fill(x float64) {
	for i := range v {
		v[i] = x
	}
}

// Zero sets every coordinate of v to 0.
func (v Vector) Zero() { v.Fill(0) }

// Add accumulates w into v coordinate-wise. It panics on dimension mismatch.
func (v Vector) Add(w Vector) {
	mustSameDim(v, w)
	for i := range v {
		v[i] += w[i]
	}
}

// Sub subtracts w from v coordinate-wise. It panics on dimension mismatch.
func (v Vector) Sub(w Vector) {
	mustSameDim(v, w)
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale multiplies every coordinate of v by a.
func (v Vector) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Axpy computes v += a*w (the BLAS axpy kernel). It panics on dimension
// mismatch.
func (v Vector) Axpy(a float64, w Vector) {
	mustSameDim(v, w)
	for i := range v {
		v[i] += a * w[i]
	}
}

// Dot returns the inner product of v and w. It panics on dimension mismatch.
func (v Vector) Dot(w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.SquaredNorm()) }

// SquaredNorm returns the squared Euclidean norm of v.
func (v Vector) SquaredNorm() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return s
}

// SquaredDistance returns the squared Euclidean distance between v and w.
// If any coordinate of either vector is non-finite the result is +Inf: a
// Byzantine gradient carrying NaN or ±Inf must rank as maximally distant, not
// contaminate comparisons with NaN.
func SquaredDistance(v, w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	if math.IsNaN(s) {
		return math.Inf(1)
	}
	return s
}

// Distance returns the Euclidean distance between v and w with the same
// non-finite saturation as SquaredDistance.
func Distance(v, w Vector) float64 { return math.Sqrt(SquaredDistance(v, w)) }

// IsFinite reports whether every coordinate of v is finite.
func (v Vector) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// CountNonFinite returns the number of NaN or ±Inf coordinates in v.
func (v Vector) CountNonFinite() int {
	n := 0
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			n++
		}
	}
	return n
}

// Mean returns the arithmetic mean of the coordinates of v, or 0 for an
// empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Max returns the maximum coordinate of v, or -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum coordinate of v, or +Inf for an empty vector.
func (v Vector) Min() float64 {
	m := math.Inf(1)
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}

// Clamp limits every coordinate of v to [lo, hi].
func (v Vector) Clamp(lo, hi float64) {
	for i, x := range v {
		if x < lo {
			v[i] = lo
		} else if x > hi {
			v[i] = hi
		}
	}
}

// Mean returns the coordinate-wise mean of vs into a fresh vector.
// It panics if vs is empty or dimensions mismatch.
func Mean(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("tensor: Mean of empty vector set")
	}
	out := NewVector(len(vs[0]))
	MeanInto(out, vs)
	return out
}

// MeanInto computes the coordinate-wise mean of vs into out, allocation
// free. It panics if vs is empty or dimensions mismatch.
func MeanInto(out Vector, vs []Vector) {
	if len(vs) == 0 {
		panic("tensor: MeanInto of empty vector set")
	}
	out.Zero()
	for _, v := range vs {
		out.Add(v)
	}
	out.Scale(1 / float64(len(vs)))
}

// WeightedMean returns sum_i w_i*v_i / sum_i w_i. It panics if the weight and
// vector counts differ, vs is empty, or the weights sum to zero.
func WeightedMean(vs []Vector, ws []float64) Vector {
	if len(vs) == 0 {
		panic("tensor: WeightedMean of empty vector set")
	}
	if len(vs) != len(ws) {
		panic(fmt.Sprintf("tensor: WeightedMean got %d vectors but %d weights", len(vs), len(ws)))
	}
	var total float64
	out := NewVector(len(vs[0]))
	for i, v := range vs {
		out.Axpy(ws[i], v)
		total += ws[i]
	}
	if total == 0 {
		panic("tensor: WeightedMean weights sum to zero")
	}
	out.Scale(1 / total)
	return out
}

// NaNMean returns the coordinate-wise mean of vs ignoring NaN entries, the
// "selective averaging" kernel from §3.3 of the paper. A coordinate that is
// NaN in every vector yields 0 (no information received — treat as a null
// update for that coordinate). The pass is tiled and parallelised by the
// column engine.
func NaNMean(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("tensor: NaNMean of empty vector set")
	}
	d := len(vs[0])
	for _, v := range vs {
		if len(v) != d {
			panic("tensor: NaNMean dimension mismatch")
		}
	}
	out := NewVector(d)
	var e ColumnEngine
	e.Run(out, vs, 0, NaNMeanKernel, true)
	return out
}

func mustSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("tensor: dimension mismatch %d != %d", len(v), len(w)))
	}
}
