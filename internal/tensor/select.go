package tensor

import (
	"math"
	"sort"
)

// ArgsortAscending returns the indexes of xs ordered by ascending value.
// NaN values sort last (they compare as "greater than everything"), so a
// Byzantine score of NaN can never win a smallest-score selection.
func ArgsortAscending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		xa, xb := xs[idx[a]], xs[idx[b]]
		if math.IsNaN(xa) {
			return false
		}
		if math.IsNaN(xb) {
			return true
		}
		return xa < xb
	})
	return idx
}

// SmallestK returns the indexes of the k smallest values in xs (NaN last,
// ties by ascending index — the ArgsortAscending order). It panics if k is
// out of range. Hot paths with caller-provided scratch should use
// SmallestKInto; this convenience form allocates the index slice.
func SmallestK(xs []float64, k int) []int {
	if k < 0 || k > len(xs) {
		panic("tensor: SmallestK k out of range")
	}
	return SmallestKInto(make([]int, len(xs)), xs, k)
}

// ArgMin returns the index of the smallest value in xs (NaN treated as +Inf).
// It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("tensor: ArgMin of empty slice")
	}
	best := 0
	bestV := math.Inf(1)
	for i, x := range xs {
		if !math.IsNaN(x) && x < bestV {
			best, bestV = i, x
		}
	}
	return best
}

// Median returns the median of xs, averaging the two middle values for even
// lengths. NaN entries are ignored; if every entry is NaN the result is NaN.
// It panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("tensor: Median of empty slice")
	}
	scratch := make([]float64, len(xs))
	copy(scratch, xs)
	return MedianInPlace(scratch)
}

// midpoint averages a and b without overflowing near ±MaxFloat64.
func midpoint(a, b float64) float64 { return a/2 + b/2 }

// MedianInPlace is Median without the defensive copy: it partially reorders
// xs (a deterministic selection, not a full sort). Use it on scratch buffers
// in hot loops — it is the median kernel behind the coordinate-wise rules.
func MedianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		panic("tensor: MedianInPlace of empty slice")
	}
	// NaNs are swapped out once so the selection runs NaN-free with plain
	// < compares; the clean median sits at rank m/2 (and m/2−1 for even m)
	// of the remaining values.
	nn := moveNaNsFront(xs)
	clean := xs[nn:]
	if len(clean) == 0 {
		return math.NaN()
	}
	return medianCleanSelect(clean)
}

// medianCleanSelect computes the median of NaN-free xs by deterministic
// selection, partially reordering xs.
func medianCleanSelect(clean []float64) float64 {
	m := len(clean)
	pos := m / 2
	partialSelectNoNaN(clean, pos+1)
	prefix := clean[:pos+1]
	if m%2 == 1 {
		hi := prefix[0]
		for _, x := range prefix[1:] {
			if hi < x {
				hi = x
			}
		}
		return hi
	}
	// Even m: the two largest values of the prefix are the two middles
	// (m ≥ 2 guarantees the prefix holds at least two values, so the -Inf
	// seeds can only survive when the middles really are -Inf).
	hi1, hi2 := math.Inf(-1), math.Inf(-1) // hi1 ≥ hi2
	for _, x := range prefix {
		if hi1 < x {
			hi2 = hi1
			hi1 = x
		} else if hi2 < x {
			hi2 = x
		}
	}
	return midpoint(hi2, hi1)
}

// ClosestToPivot returns the indexes of the k values in xs closest to pivot
// by absolute difference. Non-finite distances rank last. It panics if k is
// out of range. Hot paths should use ClosestToPivotInto with caller scratch.
func ClosestToPivot(xs []float64, pivot float64, k int) []int {
	if k < 0 || k > len(xs) {
		panic("tensor: ClosestToPivot k out of range")
	}
	return ClosestToPivotInto(make([]int, len(xs)), make([]float64, len(xs)), xs, pivot, k)
}

// CoordinateMedian returns the coordinate-wise median of vs, the Median GAR
// kernel (Xie et al. 2018). The pass is tiled and parallelised by the column
// engine. It panics if vs is empty or dimensions mismatch.
func CoordinateMedian(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("tensor: CoordinateMedian of empty vector set")
	}
	d := len(vs[0])
	for _, v := range vs {
		if len(v) != d {
			panic("tensor: CoordinateMedian dimension mismatch")
		}
	}
	out := NewVector(d)
	var e ColumnEngine
	e.Run(out, vs, 0, MedianKernel, true)
	return out
}

// TrimmedMean returns the coordinate-wise mean of vs after discarding the b
// largest and b smallest values in each coordinate (Yin et al. 2018). The
// pass is tiled and parallelised by the column engine. It panics if
// 2b >= len(vs).
func TrimmedMean(vs []Vector, b int) Vector {
	if len(vs) == 0 {
		panic("tensor: TrimmedMean of empty vector set")
	}
	if 2*b >= len(vs) {
		panic("tensor: TrimmedMean requires 2b < n")
	}
	out := NewVector(len(vs[0]))
	var e ColumnEngine
	e.Run(out, vs, b, TrimmedMeanKernel, true)
	return out
}
