package tensor

import (
	"math"
	"sort"
)

// ArgsortAscending returns the indexes of xs ordered by ascending value.
// NaN values sort last (they compare as "greater than everything"), so a
// Byzantine score of NaN can never win a smallest-score selection.
func ArgsortAscending(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		xa, xb := xs[idx[a]], xs[idx[b]]
		if math.IsNaN(xa) {
			return false
		}
		if math.IsNaN(xb) {
			return true
		}
		return xa < xb
	})
	return idx
}

// SmallestK returns the indexes of the k smallest values in xs (NaN last).
// It panics if k is out of range.
func SmallestK(xs []float64, k int) []int {
	if k < 0 || k > len(xs) {
		panic("tensor: SmallestK k out of range")
	}
	return ArgsortAscending(xs)[:k]
}

// ArgMin returns the index of the smallest value in xs (NaN treated as +Inf).
// It panics on an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		panic("tensor: ArgMin of empty slice")
	}
	best := 0
	bestV := math.Inf(1)
	for i, x := range xs {
		if !math.IsNaN(x) && x < bestV {
			best, bestV = i, x
		}
	}
	return best
}

// Median returns the median of xs, averaging the two middle values for even
// lengths. NaN entries are ignored; if every entry is NaN the result is NaN.
// It panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("tensor: Median of empty slice")
	}
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	mid := len(clean) / 2
	if len(clean)%2 == 1 {
		return clean[mid]
	}
	return midpoint(clean[mid-1], clean[mid])
}

// midpoint averages a and b without overflowing near ±MaxFloat64.
func midpoint(a, b float64) float64 { return a/2 + b/2 }

// MedianInPlace is Median without the defensive copy: it sorts xs. Use it on
// scratch buffers in hot loops (Bulyan's coordinate-wise pass).
func MedianInPlace(xs []float64) float64 {
	if len(xs) == 0 {
		panic("tensor: MedianInPlace of empty slice")
	}
	sort.Float64s(xs) // NaNs sort to the front in sort.Float64s
	// Skip leading NaNs.
	lo := 0
	for lo < len(xs) && math.IsNaN(xs[lo]) {
		lo++
	}
	if lo == len(xs) {
		return math.NaN()
	}
	clean := xs[lo:]
	mid := len(clean) / 2
	if len(clean)%2 == 1 {
		return clean[mid]
	}
	return midpoint(clean[mid-1], clean[mid])
}

// ClosestToPivot returns the indexes of the k values in xs closest to pivot
// by absolute difference. Non-finite distances rank last. It panics if k is
// out of range.
func ClosestToPivot(xs []float64, pivot float64, k int) []int {
	if k < 0 || k > len(xs) {
		panic("tensor: ClosestToPivot k out of range")
	}
	dist := make([]float64, len(xs))
	for i, x := range xs {
		d := math.Abs(x - pivot)
		if math.IsNaN(d) {
			d = math.Inf(1)
		}
		dist[i] = d
	}
	return SmallestK(dist, k)
}

// CoordinateMedian returns the coordinate-wise median of vs, the Median GAR
// kernel (Xie et al. 2018). It panics if vs is empty or dimensions mismatch.
func CoordinateMedian(vs []Vector) Vector {
	if len(vs) == 0 {
		panic("tensor: CoordinateMedian of empty vector set")
	}
	d := len(vs[0])
	out := NewVector(d)
	col := make([]float64, len(vs))
	for j := 0; j < d; j++ {
		for i, v := range vs {
			if len(v) != d {
				panic("tensor: CoordinateMedian dimension mismatch")
			}
			col[i] = v[j]
		}
		out[j] = MedianInPlace(col)
	}
	return out
}

// TrimmedMean returns the coordinate-wise mean of vs after discarding the b
// largest and b smallest values in each coordinate (Yin et al. 2018). It
// panics if 2b >= len(vs).
func TrimmedMean(vs []Vector, b int) Vector {
	if len(vs) == 0 {
		panic("tensor: TrimmedMean of empty vector set")
	}
	if 2*b >= len(vs) {
		panic("tensor: TrimmedMean requires 2b < n")
	}
	d := len(vs[0])
	out := NewVector(d)
	col := make([]float64, len(vs))
	for j := 0; j < d; j++ {
		for i, v := range vs {
			col[i] = v[j]
		}
		sort.Float64s(col)
		var s float64
		kept := col[b : len(col)-b]
		for _, x := range kept {
			s += x
		}
		out[j] = s / float64(len(kept))
	}
	return out
}
