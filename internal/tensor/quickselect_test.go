package tensor

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"testing"
)

// eqFloat treats all NaNs as one equivalence class and is otherwise exact
// (distinguishing ±0 is not required by the kernels' contract).
func eqFloat(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b
}

// adversarialSlice draws a value slice whose entries are NaN/±Inf with the
// given probability — the Byzantine column shapes the kernels must survive.
func adversarialSlice(rng *rand.Rand, n int, pBad float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch {
		case rng.Float64() < pBad:
			switch rng.Intn(3) {
			case 0:
				xs[i] = math.NaN()
			case 1:
				xs[i] = math.Inf(1)
			default:
				xs[i] = math.Inf(-1)
			}
		case rng.Float64() < 0.3:
			// Duplicate-heavy region to exercise tie handling.
			xs[i] = float64(rng.Intn(4))
		default:
			xs[i] = rng.NormFloat64()
		}
	}
	return xs
}

// medianSortRef is the previous sort-based median: sort with NaN first,
// skip NaNs, midpoint the middles.
func medianSortRef(xs []float64) float64 {
	clean := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return math.NaN()
	}
	sort.Float64s(clean)
	mid := len(clean) / 2
	if len(clean)%2 == 1 {
		return clean[mid]
	}
	return midpoint(clean[mid-1], clean[mid])
}

func TestMedianInPlaceMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(40)
		pBad := 0.0
		if trial%3 == 1 {
			pBad = 0.2
		} else if trial%3 == 2 {
			pBad = 0.9
		}
		xs := adversarialSlice(rng, n, pBad)
		want := medianSortRef(xs)
		got := MedianInPlace(append([]float64(nil), xs...))
		if !eqFloat(got, want) {
			t.Fatalf("trial %d: MedianInPlace=%v want %v for %v", trial, got, want, xs)
		}
	}
}

// trimmedMeanSortRef is the previous sort-based per-coordinate trim kernel.
func trimmedMeanSortRef(col []float64, b int) float64 {
	xs := append([]float64(nil), col...)
	sort.Float64s(xs)
	kept := xs[b : len(xs)-b]
	var s float64
	for _, x := range kept {
		s += x
	}
	return s / float64(len(kept))
}

func TestTrimmedMeanKernelMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		n := 3 + rng.Intn(37)
		b := rng.Intn((n+1)/2 - 1 + 1)
		if 2*b >= n {
			b = (n - 1) / 2
		}
		pBad := []float64{0, 0.2, 0.9}[trial%3]
		xs := adversarialSlice(rng, n, pBad)
		want := trimmedMeanSortRef(xs, b)
		ctx := &ColumnKernelCtx{Col: append([]float64(nil), xs...)}
		if trial%2 == 0 {
			ctx.Net = SortNetPairs(n)
		}
		got := TrimmedMeanKernel(ctx, 0, b)
		if !eqFloat(got, want) {
			t.Fatalf("trial %d: TrimmedMeanKernel(b=%d)=%v want %v for %v", trial, b, got, want, xs)
		}
	}
}

func TestSmallestKIntoMatchesArgsort(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dst := make([]int, 64)
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(40)
		k := rng.Intn(n + 1)
		xs := adversarialSlice(rng, n, []float64{0, 0.3}[trial%2])
		want := ArgsortAscending(xs)[:k]
		got := SmallestKInto(dst, xs, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: SmallestKInto(k=%d)=%v want %v for %v", trial, k, got, want, xs)
			}
		}
	}
}

// closestToPivotRef is the previous allocation-heavy implementation.
func closestToPivotRef(xs []float64, pivot float64, k int) []int {
	dist := make([]float64, len(xs))
	for i, x := range xs {
		d := math.Abs(x - pivot)
		if math.IsNaN(d) {
			d = math.Inf(1)
		}
		dist[i] = d
	}
	return ArgsortAscending(dist)[:k]
}

func TestClosestToPivotIntoMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	dst := make([]int, 64)
	dscratch := make([]float64, 64)
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(40)
		k := rng.Intn(n + 1)
		xs := adversarialSlice(rng, n, []float64{0, 0.3}[trial%2])
		pivot := rng.NormFloat64()
		want := closestToPivotRef(xs, pivot, k)
		got := ClosestToPivotInto(dst, dscratch, xs, pivot, k)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ClosestToPivotInto=%v want %v", trial, got, want)
			}
		}
	}
}

func TestSelectSmallestFloatMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(60)
		k := rng.Intn(n + 1)
		xs := adversarialSlice(rng, n, []float64{0, 0.3}[trial%2])
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		got := append([]float64(nil), xs...)
		SelectSmallestFloat(got, k)
		for i := 0; i < k; i++ {
			if !eqFloat(got[i], want[i]) {
				t.Fatalf("trial %d: prefix %d: got %v want %v", trial, i, got[:k], want[:k])
			}
		}
	}
}

func TestSortFloatsMatchesSortPackage(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(200)
		xs := adversarialSlice(rng, n, []float64{0, 0.3}[trial%2])
		want := append([]float64(nil), xs...)
		sort.Float64s(want)
		got := append([]float64(nil), xs...)
		SortFloats(got)
		for i := range want {
			if !eqFloat(got[i], want[i]) {
				t.Fatalf("trial %d: position %d: got %v want %v", trial, i, got, want)
			}
		}
	}
}

func TestSortNetSortsEverySupportedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for n := 0; n <= maxSortNet; n++ {
		pairs := SortNetPairs(n)
		for _, pr := range pairs {
			if pr[0] >= pr[1] || pr[1] >= n {
				t.Fatalf("n=%d: invalid pair %v", n, pr)
			}
		}
		for trial := 0; trial < 50; trial++ {
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = float64(rng.Intn(8)) // duplicate-heavy
			}
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			ApplySortNet(xs, pairs)
			for i := range want {
				if xs[i] != want[i] {
					t.Fatalf("n=%d trial %d: network produced %v want %v", n, trial, xs, want)
				}
			}
		}
	}
}

func TestPartialSelectFloatPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(80)
		k := rng.Intn(n + 1)
		xs := adversarialSlice(rng, n, []float64{0, 0.3}[trial%2])
		PartialSelectFloat(xs, k)
		for i := 0; i < k; i++ {
			for j := k; j < n; j++ {
				if lessFloat(xs[j], xs[i]) {
					t.Fatalf("trial %d: xs[%d]=%v < xs[%d]=%v after select k=%d", trial, j, xs[j], i, xs[i], k)
				}
			}
		}
	}
}

// setGOMAXPROCS sets GOMAXPROCS for the duration of the test.
func setGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestColumnEngineGOMAXPROCSParity proves the blocked column pass is
// scheduler-independent: the same kernels over the same vectors produce
// bit-identical output at GOMAXPROCS=1 and GOMAXPROCS=8, sequential or
// parallel, for a dimension well past the parallel threshold.
func TestColumnEngineGOMAXPROCSParity(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	const n, d = 19, 3 * colParallelMin
	vs := make([]Vector, n)
	for i := range vs {
		v := NewVector(d)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		if i == 3 {
			v[7] = math.NaN()
			v[d-1] = math.Inf(1)
		}
		vs[i] = v
	}
	run := func(procs int, parallel bool, kernel ColumnKernel, arg int) Vector {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		out := NewVector(d)
		var e ColumnEngine
		e.Run(out, vs, arg, kernel, parallel)
		return out
	}
	kernels := []struct {
		name   string
		kernel ColumnKernel
		arg    int
	}{
		{"median", MedianKernel, 0},
		{"trimmed-mean", TrimmedMeanKernel, 4},
		{"nan-mean", NaNMeanKernel, 0},
		{"mean-around-median", MeanAroundMedianKernel, 11},
	}
	for _, k := range kernels {
		base := run(1, false, k.kernel, k.arg)
		for _, procs := range []int{1, 8} {
			got := run(procs, true, k.kernel, k.arg)
			for j := range base {
				if !eqFloat(got[j], base[j]) {
					t.Fatalf("%s: GOMAXPROCS=%d parallel diverges at %d: %v vs %v",
						k.name, procs, j, got[j], base[j])
				}
			}
		}
	}
}
