package tensor

import "math"

// This file implements the deterministic selection kernels that replace the
// full sorts in the aggregation hot path. The GAR column kernels (median,
// trimmed mean, mean-around-median) and the Krum/Bulyan scoring loops only
// ever need a handful of order statistics out of each n-value column or
// score row, so an O(n) selection beats the previous O(n log n)
// interface-dispatched sort.Float64s by a wide margin — and, unlike
// sort.SliceStable, needs no per-call closure or index allocations.
//
// Determinism: pivots are the median of three fixed positions, so the
// partition sequence — and therefore the exact output permutation — is a
// pure function of the input. No randomness, no scheduler dependence.
//
// Value ordering matches sort.Float64s: NaN compares before every other
// value. Index-based selections (SmallestKInto) instead use the
// ArgsortAscending order: NaN last, ties broken by ascending index, which is
// exactly what the previous sort.SliceStable-based implementation produced.

// smallSelect is the sub-range size below which selection falls back to a
// direct insertion sort: partitioning below this size costs more than the
// insertion pass it saves. Columns at the paper's n≈19 scale are instead
// handled branchlessly by the sorting network (sortnet.go) — data-dependent
// branches on random data mispredict once per element, which is what makes
// comparison sorts slow at tiny n, not the op count.
const smallSelect = 24

// lessFloat is the sort.Float64s ordering: NaN sorts before everything.
func lessFloat(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// insertionSortFloat sorts xs ascending in the lessFloat order.
func insertionSortFloat(xs []float64) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && lessFloat(x, xs[j]) {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// insertionSortNoNaN is insertionSortFloat for NaN-free input: the plain <
// compare is one branch instead of three, which halves the cost of the
// n≈19 column sorts that dominate the coordinate-wise rules. For NaN-free
// data lessFloat and < agree, so the output permutation is identical.
func insertionSortNoNaN(xs []float64) {
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && x < xs[j] {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// moveNaNsFront swap-partitions the NaN entries of xs to the front and
// returns their count. Every kernel that needs sort.Float64s's NaN-first
// rank arithmetic calls this once and then runs the NaN-free selection on
// the clean suffix; the multiset of clean values (hence every selected
// order statistic) is unchanged.
func moveNaNsFront(xs []float64) int {
	nn := 0
	for i, x := range xs {
		if x != x {
			xs[i], xs[nn] = xs[nn], xs[i]
			nn++
		}
	}
	return nn
}

// partialSelectNoNaN is PartialSelectFloat for NaN-free input.
func partialSelectNoNaN(xs []float64, k int) {
	if k <= 0 || k >= len(xs) {
		return
	}
	lo, hi := 0, len(xs)
	for {
		if hi-lo <= smallSelect {
			insertionSortNoNaN(xs[lo:hi])
			return
		}
		a, b, c := xs[lo], xs[(lo+hi)/2], xs[hi-1]
		if b < a {
			a, b = b, a
		}
		if c < b {
			b = c
			if b < a {
				b = a
			}
		}
		p := b
		lt, i, gt := lo, lo, hi
		for i < gt {
			x := xs[i]
			switch {
			case x < p:
				xs[i], xs[lt] = xs[lt], xs[i]
				lt++
				i++
			case p < x:
				gt--
				xs[i], xs[gt] = xs[gt], xs[i]
			default:
				i++
			}
		}
		switch {
		case k <= lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return
		}
	}
}

// selectSmallestNoNaN rearranges NaN-free xs so that xs[:k] holds the k
// smallest values sorted ascending.
func selectSmallestNoNaN(xs []float64, k int) {
	if k < 0 {
		k = 0
	}
	if k > len(xs) {
		k = len(xs)
	}
	partialSelectNoNaN(xs, k)
	insertionSortNoNaN(xs[:k])
}

// medianOf3Float returns the middle of a, b, c in the lessFloat order.
func medianOf3Float(a, b, c float64) float64 {
	if lessFloat(b, a) {
		a, b = b, a
	}
	if lessFloat(c, b) {
		b = c
		if lessFloat(b, a) {
			b = a
		}
	}
	return b
}

// PartialSelectFloat rearranges xs so that xs[:k] holds the k smallest
// values (lessFloat order, unordered within the prefix) and xs[k:] the rest.
// It is an in-place deterministic quickselect with a three-way partition, so
// duplicate-heavy and ±Inf-saturated inputs (Byzantine distance rows) keep
// linear behaviour. k out of [0, len(xs)] is clipped.
func PartialSelectFloat(xs []float64, k int) {
	if k <= 0 || k >= len(xs) {
		return
	}
	lo, hi := 0, len(xs)
	for {
		if hi-lo <= smallSelect {
			insertionSortFloat(xs[lo:hi])
			return
		}
		p := medianOf3Float(xs[lo], xs[(lo+hi)/2], xs[hi-1])
		// Three-way partition of xs[lo:hi] around the pivot value p:
		// [lo,lt) < p, [lt,gt) == p, [gt,hi) > p.
		lt, i, gt := lo, lo, hi
		for i < gt {
			x := xs[i]
			switch {
			case lessFloat(x, p):
				xs[i], xs[lt] = xs[lt], xs[i]
				lt++
				i++
			case lessFloat(p, x):
				gt--
				xs[i], xs[gt] = xs[gt], xs[i]
			default:
				i++
			}
		}
		switch {
		case k <= lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return // the boundary falls inside the equal-to-pivot run
		}
	}
}

// SelectSmallestFloat rearranges xs so that xs[:k] holds the k smallest
// values sorted ascending (lessFloat order). The suffix order is unspecified.
// NaN-free inputs (one O(n) scan detects them) take a fast path with plain
// < compares.
func SelectSmallestFloat(xs []float64, k int) {
	if k < 0 {
		k = 0
	}
	if k > len(xs) {
		k = len(xs)
	}
	hasNaN := false
	for _, x := range xs {
		if x != x {
			hasNaN = true
			break
		}
	}
	if !hasNaN {
		partialSelectNoNaN(xs, k)
		insertionSortNoNaN(xs[:k])
		return
	}
	PartialSelectFloat(xs, k)
	insertionSortFloat(xs[:k])
}

// SortFloats sorts xs ascending in the sort.Float64s order (NaN before every
// other value) without allocating: a deterministic median-of-3 quicksort
// with three-way partitioning, recursing into the smaller side.
func SortFloats(xs []float64) {
	for len(xs) > smallSelect {
		p := medianOf3Float(xs[0], xs[len(xs)/2], xs[len(xs)-1])
		lt, i, gt := 0, 0, len(xs)
		for i < gt {
			x := xs[i]
			switch {
			case lessFloat(x, p):
				xs[i], xs[lt] = xs[lt], xs[i]
				lt++
				i++
			case lessFloat(p, x):
				gt--
				xs[i], xs[gt] = xs[gt], xs[i]
			default:
				i++
			}
		}
		if lt < len(xs)-gt {
			SortFloats(xs[:lt])
			xs = xs[gt:]
		} else {
			SortFloats(xs[gt:])
			xs = xs[:lt]
		}
	}
	insertionSortFloat(xs)
}

// idxLess is the ArgsortAscending order over indexes into xs: ascending
// value with NaN last, ties broken by ascending index (the stability rule of
// the previous sort.SliceStable implementation).
func idxLess(xs []float64, a, b int) bool {
	va, vb := xs[a], xs[b]
	if math.IsNaN(va) {
		if math.IsNaN(vb) {
			return a < b
		}
		return false
	}
	if math.IsNaN(vb) {
		return true
	}
	if va != vb {
		return va < vb
	}
	return a < b
}

// insertionSortIdx sorts idx by idxLess.
func insertionSortIdx(idx []int, xs []float64) {
	for i := 1; i < len(idx); i++ {
		x := idx[i]
		j := i - 1
		for j >= 0 && idxLess(xs, x, idx[j]) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = x
	}
}

// partialSelectIdx rearranges idx so that idx[:k] holds the k smallest
// indexes in the idxLess order. Because idxLess is a strict total order
// (index tie-break), a plain two-way partition terminates without an
// equal-run bucket.
func partialSelectIdx(idx []int, xs []float64, k int) {
	if k <= 0 || k >= len(idx) {
		return
	}
	lo, hi := 0, len(idx)
	for {
		if hi-lo <= smallSelect {
			insertionSortIdx(idx[lo:hi], xs)
			return
		}
		// Median-of-3 pivot index in idxLess order.
		a, b, c := idx[lo], idx[(lo+hi)/2], idx[hi-1]
		if idxLess(xs, b, a) {
			a, b = b, a
		}
		if idxLess(xs, c, b) {
			b = c
			if idxLess(xs, b, a) {
				b = a
			}
		}
		p := b
		lt, i, gt := lo, lo, hi
		for i < gt {
			x := idx[i]
			switch {
			case idxLess(xs, x, p):
				idx[i], idx[lt] = idx[lt], idx[i]
				lt++
				i++
			case idxLess(xs, p, x):
				gt--
				idx[i], idx[gt] = idx[gt], idx[i]
			default:
				i++ // only the pivot index itself compares equal
			}
		}
		switch {
		case k <= lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return
		}
	}
}

// idxLessNoNaN is idxLess for NaN-free value slices: ascending value, ties
// by ascending index.
func idxLessNoNaN(xs []float64, a, b int) bool {
	va, vb := xs[a], xs[b]
	if va != vb {
		return va < vb
	}
	return a < b
}

// insertionSortIdxNoNaN sorts idx by idxLessNoNaN.
func insertionSortIdxNoNaN(idx []int, xs []float64) {
	for i := 1; i < len(idx); i++ {
		x := idx[i]
		j := i - 1
		for j >= 0 && idxLessNoNaN(xs, x, idx[j]) {
			idx[j+1] = idx[j]
			j--
		}
		idx[j+1] = x
	}
}

// partialSelectIdxNoNaN is partialSelectIdx for NaN-free value slices.
func partialSelectIdxNoNaN(idx []int, xs []float64, k int) {
	if k <= 0 || k >= len(idx) {
		return
	}
	lo, hi := 0, len(idx)
	for {
		if hi-lo <= smallSelect {
			insertionSortIdxNoNaN(idx[lo:hi], xs)
			return
		}
		a, b, c := idx[lo], idx[(lo+hi)/2], idx[hi-1]
		if idxLessNoNaN(xs, b, a) {
			a, b = b, a
		}
		if idxLessNoNaN(xs, c, b) {
			b = c
			if idxLessNoNaN(xs, b, a) {
				b = a
			}
		}
		p := b
		lt, i, gt := lo, lo, hi
		for i < gt {
			x := idx[i]
			switch {
			case idxLessNoNaN(xs, x, p):
				idx[i], idx[lt] = idx[lt], idx[i]
				lt++
				i++
			case idxLessNoNaN(xs, p, x):
				gt--
				idx[i], idx[gt] = idx[gt], idx[i]
			default:
				i++
			}
		}
		switch {
		case k <= lt:
			hi = lt
		case k >= gt:
			lo = gt
		default:
			return
		}
	}
}

// smallestKIntoNoNaN is SmallestKInto for value slices known to be NaN-free
// (score rows, |x−pivot| distance scratch): the two-branch comparator makes
// the index selection roughly twice as cheap.
func smallestKIntoNoNaN(dst []int, xs []float64, k int) []int {
	dst = dst[:len(xs)]
	for i := range dst {
		dst[i] = i
	}
	partialSelectIdxNoNaN(dst, xs, k)
	insertionSortIdxNoNaN(dst[:k], xs)
	return dst[:k]
}

// SmallestKInto writes the indexes of the k smallest values of xs into dst
// and returns dst[:k], ordered exactly like SmallestK: ascending value, NaN
// last, ties by ascending index. dst must have capacity for len(xs) entries;
// no allocation is performed.
func SmallestKInto(dst []int, xs []float64, k int) []int {
	if k < 0 || k > len(xs) {
		panic("tensor: SmallestKInto k out of range")
	}
	hasNaN := false
	for _, x := range xs {
		if x != x {
			hasNaN = true
			break
		}
	}
	if !hasNaN {
		return smallestKIntoNoNaN(dst, xs, k)
	}
	dst = dst[:len(xs)]
	for i := range dst {
		dst[i] = i
	}
	partialSelectIdx(dst, xs, k)
	insertionSortIdx(dst[:k], xs)
	return dst[:k]
}

// ClosestToPivotInto is the allocation-free ClosestToPivot: it writes the
// |x−pivot| distances into dscratch (capacity ≥ len(xs)) and the selected
// indexes into dst, returning dst[:k] in the same order ClosestToPivot
// produces.
func ClosestToPivotInto(dst []int, dscratch []float64, xs []float64, pivot float64, k int) []int {
	if k < 0 || k > len(xs) {
		panic("tensor: ClosestToPivotInto k out of range")
	}
	dscratch = dscratch[:len(xs)]
	for i, x := range xs {
		d := math.Abs(x - pivot)
		if math.IsNaN(d) {
			d = math.Inf(1)
		}
		dscratch[i] = d
	}
	// dscratch is NaN-free by construction (NaN distances saturate to
	// +Inf above), so the fast index selection applies unconditionally.
	return smallestKIntoNoNaN(dst, dscratch, k)
}
