package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file implements the persistent worker pool behind every parallel
// sweep of the aggregation engine (the blocked distance sweep, the
// row-streaming distance reference, the blocked column pass). The previous
// scheme spawned fresh goroutines on every call — at campaign scale that is
// hundreds of thousands of spawns, each paying stack allocation and
// scheduler handoff on the hot aggregation path. The pool starts
// GOMAXPROCS−1 long-lived workers on first use; a ParallelFor hands them an
// index range through an unbuffered channel and joins the sweep itself, so
// a busy pool degrades to the caller doing more of the work rather than
// blocking, and an idle machine parks the workers on a channel receive.

// poolTask is one ParallelFor invocation: a shared atomic index counter
// drained by the caller and every helper that picked the task up.
type poolTask struct {
	fn   func(worker, index int)
	ids  atomic.Int64 // next helper worker id (caller is 0)
	next atomic.Int64 // next index to claim
	n    int
	wg   sync.WaitGroup
}

// drain claims indexes until the range is exhausted.
func (t *poolTask) drain(worker int) {
	for {
		i := int(t.next.Add(1)) - 1
		if i >= t.n {
			return
		}
		t.fn(worker, i)
	}
}

var (
	poolOnce  sync.Once
	poolTasks chan *poolTask
)

// startPool launches the long-lived helpers. GOMAXPROCS−1 of them: the
// caller of every ParallelFor is the remaining worker.
func startPool() {
	poolTasks = make(chan *poolTask)
	for i := 1; i < runtime.GOMAXPROCS(0); i++ {
		go func() {
			for t := range poolTasks {
				t.drain(int(t.ids.Add(1)))
				t.wg.Done()
			}
		}()
	}
}

// ParallelFor runs fn(worker, index) for every index in [0, n), spread
// over at most workers concurrent goroutines from the persistent pool (the
// caller counts as one and always participates). Worker ids are dense in
// [0, workers) and each id is held by exactly one goroutine for the call's
// duration, so fn may index per-worker scratch by worker. Helpers are
// recruited without blocking: when the pool is busy the caller simply
// drains more of the range itself. The index→worker assignment is
// scheduling-dependent; callers must make fn(i) independent of which
// worker runs it (every engine sweep writes disjoint outputs per index).
func ParallelFor(n, workers int, fn func(worker, index int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	poolOnce.Do(startPool)
	t := &poolTask{fn: fn, n: n}
	for h := 1; h < workers; h++ {
		t.wg.Add(1)
		select {
		case poolTasks <- t:
			continue
		default:
		}
		// No helper free right now: stop recruiting and get to work.
		t.wg.Done()
		break
	}
	t.drain(0)
	t.wg.Wait()
}
