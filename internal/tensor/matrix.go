package tensor

import "fmt"

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-filled Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("tensor: NewMatrix negative dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, x float64) { m.Data[i*m.Cols+j] = x }

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MatMul computes out = a·b. Shapes must satisfy a.Cols == b.Rows,
// out.Rows == a.Rows and out.Cols == b.Cols; out is overwritten.
// The k-inner loop is ordered for sequential access on b (ikj ordering),
// which is the standard cache-friendly layout for row-major data.
func MatMul(out, a, b *Matrix) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch (%dx%d)·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransA computes out = aᵀ·b where a is stored untransposed.
func MatMulTransA(out, a, b *Matrix) {
	if a.Rows != b.Rows || out.Rows != a.Cols || out.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulTransA shape mismatch (%dx%d)ᵀ·(%dx%d)->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for i := range out.Data {
		out.Data[i] = 0
	}
	for k := 0; k < a.Rows; k++ {
		arow := a.Data[k*a.Cols : (k+1)*a.Cols]
		brow := b.Data[k*b.Cols : (k+1)*b.Cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Data[i*out.Cols : (i+1)*out.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransB computes out = a·bᵀ where b is stored untransposed.
func MatMulTransB(out, a, b *Matrix) {
	if a.Cols != b.Cols || out.Rows != a.Rows || out.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulTransB shape mismatch (%dx%d)·(%dx%d)ᵀ->(%dx%d)",
			a.Rows, a.Cols, b.Rows, b.Cols, out.Rows, out.Cols))
	}
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for j := 0; j < b.Rows; j++ {
			brow := b.Data[j*b.Cols : (j+1)*b.Cols]
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
}

// AddRowVector adds v to every row of m (broadcast add, used for biases).
func (m *Matrix) AddRowVector(v Vector) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVector dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		row.Add(v)
	}
}

// ColumnSums returns the per-column sum of m (used for bias gradients).
func (m *Matrix) ColumnSums() Vector {
	out := NewVector(m.Cols)
	for i := 0; i < m.Rows; i++ {
		out.Add(m.Row(i))
	}
	return out
}
