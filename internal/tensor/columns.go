package tensor

import (
	"math"
	"runtime"
)

// This file implements the blocked column-pass engine shared by every
// coordinate-wise aggregation rule (median, trimmed mean, NaN-mean,
// mean-around-median, Bulyan's second phase). Instead of walking all n
// vectors once per coordinate — n strided cache misses per output value —
// the engine gathers a tile of colTileCoords coordinates × n values with one
// sequential pass over each vector, then runs the per-coordinate kernel on
// the cache-resident tile. Tiles are independent, so the pass parallelises
// over fixed tile indexes with bit-identical output regardless of
// GOMAXPROCS: each output coordinate is written by exactly one kernel
// invocation on exactly the same gathered column.

const (
	// colTileCoords is the tile width: 128 coordinates × n≈19 workers × 8
	// bytes ≈ 19KB, sized to keep the gathered tile L1-resident.
	colTileCoords = 128
	// colParallelMin is the dimension below which the pass stays on the
	// calling goroutine: spawning workers costs more than the pass itself
	// and the sequential path is what the zero-allocation contract covers.
	colParallelMin = 1 << 14
)

// ColumnKernelCtx is the per-worker scratch handed to a ColumnKernel. All
// slices have length n (the number of input vectors) except Col, which is
// the gathered column itself. Kernels may freely mutate every buffer.
type ColumnKernelCtx struct {
	// Col holds the n values of the current coordinate, Col[i] = vs[i][j].
	Col []float64
	// Tmp is a second n-value buffer for kernels that need a pristine copy
	// of Col after a mutating selection (mean-around-median).
	Tmp []float64
	// Dist is distance scratch for ClosestToPivotInto.
	Dist []float64
	// Idx is index scratch for SmallestKInto / ClosestToPivotInto.
	Idx []int
	// Net is the n-input sorting network (nil when n > maxSortNet):
	// kernels sort NaN-free columns branchlessly with it.
	Net [][2]int
}

// ColumnKernel computes one output coordinate from the gathered column
// ctx.Col. arg carries the rule parameter (trim width, keep count, …) so
// kernels can be package-level functions — converting those to func values
// does not allocate, which keeps the steady-state column pass at zero heap
// allocations.
type ColumnKernel func(ctx *ColumnKernelCtx, j int, arg int) float64

// ColumnEngine owns the reusable tile and scratch buffers of a blocked
// column pass. The zero value is ready to use; buffers grow on demand and
// are retained across runs, so a warm engine performs no allocations.
// An engine must not be shared by concurrent Run calls.
type ColumnEngine struct {
	tiles []float64
	tmp   []float64
	dist  []float64
	idx   []int
	ctxs  []ColumnKernelCtx
	netN  int
	net   [][2]int
	// nets caches the sorting network per column size: composite rules
	// (generic BULYAN) cycle n every call as their candidate set shrinks,
	// and rebuilding the network on each size change would break the
	// zero-allocation contract.
	nets [][][2]int
}

// ensure sizes the scratch for w workers over n-vector columns.
func (e *ColumnEngine) ensure(w, n int) {
	if need := w * colTileCoords * n; cap(e.tiles) < need {
		e.tiles = make([]float64, need)
	}
	if need := w * n; cap(e.tmp) < need {
		e.tmp = make([]float64, need)
		e.dist = make([]float64, need)
		e.idx = make([]int, need)
	}
	if cap(e.ctxs) < w {
		e.ctxs = make([]ColumnKernelCtx, w)
	}
	if e.netN != n {
		e.net = nil
		if n <= maxSortNet {
			if e.nets == nil {
				e.nets = make([][][2]int, maxSortNet+1)
			}
			if e.nets[n] == nil {
				e.nets[n] = SortNetPairs(n)
			}
			e.net = e.nets[n]
		}
		e.netN = n
	}
	e.ctxs = e.ctxs[:w]
	for i := range e.ctxs {
		e.ctxs[i] = ColumnKernelCtx{
			Tmp:  e.tmp[i*n : (i+1)*n],
			Dist: e.dist[i*n : (i+1)*n],
			Idx:  e.idx[i*n : (i+1)*n],
			Net:  e.net,
		}
	}
}

// Run executes kernel over every coordinate of vs, writing out[j] for each.
// vs must be non-empty with uniform dimension len(out). When parallel is
// true and the dimension is large enough the tiles are spread across
// GOMAXPROCS goroutines; the output is bit-identical either way.
func (e *ColumnEngine) Run(out Vector, vs []Vector, arg int, kernel ColumnKernel, parallel bool) {
	d := len(out)
	n := len(vs)
	if d == 0 {
		return
	}
	nTiles := (d + colTileCoords - 1) / colTileCoords
	workers := runtime.GOMAXPROCS(0)
	if workers > nTiles {
		workers = nTiles
	}
	if !parallel || workers <= 1 || d < colParallelMin {
		e.ensure(1, n)
		for t := 0; t < nTiles; t++ {
			e.runTile(&e.ctxs[0], e.tiles[:colTileCoords*n], out, vs, t, arg, kernel)
		}
		return
	}
	e.ensure(workers, n)
	ParallelFor(nTiles, workers, func(w, t int) {
		tile := e.tiles[w*colTileCoords*n : (w+1)*colTileCoords*n]
		e.runTile(&e.ctxs[w], tile, out, vs, t, arg, kernel)
	})
}

// runTile gathers tile t and applies the kernel to each of its columns.
func (e *ColumnEngine) runTile(ctx *ColumnKernelCtx, tile []float64, out Vector, vs []Vector, t, arg int, kernel ColumnKernel) {
	n := len(vs)
	lo := t * colTileCoords
	hi := lo + colTileCoords
	if hi > len(out) {
		hi = len(out)
	}
	for i, v := range vs {
		blk := v[lo:hi]
		for jj, x := range blk {
			tile[jj*n+i] = x
		}
	}
	for jj := 0; jj < hi-lo; jj++ {
		ctx.Col = tile[jj*n : (jj+1)*n]
		out[lo+jj] = kernel(ctx, lo+jj, arg)
	}
}

// The shared column kernels. Each reproduces its previous sort-based
// counterpart bit-for-bit (same candidate multiset, same ascending summation
// order), which is what keeps the campaign byte-reproducibility and
// socket-parity suites unchanged across the selection rewrite.

// MedianKernel is the coordinate-wise median: the Median GAR. NaN-free
// columns (the overwhelmingly common case) sort branchlessly on the fixed
// network; NaN-laced ones fall back to the selection path.
func MedianKernel(ctx *ColumnKernelCtx, _ int, _ int) float64 {
	col := ctx.Col
	nn := moveNaNsFront(col)
	clean := col[nn:]
	m := len(clean)
	if m == 0 {
		return math.NaN()
	}
	if nn == 0 && ctx.Net != nil {
		ApplySortNet(col, ctx.Net)
		if m%2 == 1 {
			return col[m/2]
		}
		return midpoint(col[m/2-1], col[m/2])
	}
	return medianCleanSelect(clean)
}

// TrimmedMeanKernel drops the arg smallest and arg largest values (NaN
// ordered first, as sort.Float64s does) and averages the rest in ascending
// order: the TrimmedMean GAR.
func TrimmedMeanKernel(ctx *ColumnKernelCtx, _ int, b int) float64 {
	col := ctx.Col
	n := len(col)
	nn := moveNaNsFront(col)
	if nn > b {
		// NaNs rank first, so they spill past the low trim into the
		// kept window: the sort-based reference sums them, yielding NaN.
		return math.NaN()
	}
	if nn == 0 && ctx.Net != nil {
		ApplySortNet(col, ctx.Net)
		var s float64
		for _, x := range col[b : n-b] {
			s += x
		}
		return s / float64(n-2*b)
	}
	// The kept window is ranks [b, n−b) of the NaN-first sorted column;
	// with nn NaNs swapped out that is ranks [b−nn, n−b−nn) of the clean
	// values. Select the window, then sort only it and sum ascending.
	clean := col[nn:]
	lo, hi := b-nn, n-b-nn
	partialSelectNoNaN(clean, hi)
	partialSelectNoNaN(clean[:hi], lo)
	kept := clean[lo:hi]
	insertionSortNoNaN(kept)
	var s float64
	for _, x := range kept {
		s += x
	}
	return s / float64(len(kept))
}

// NaNMeanKernel averages the non-NaN values of the column (0 when every
// value is NaN): the §3.3 selective-averaging GAR.
func NaNMeanKernel(ctx *ColumnKernelCtx, _ int, _ int) float64 {
	var s float64
	var n int
	for _, x := range ctx.Col {
		if !math.IsNaN(x) {
			s += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}

// MeanAroundMedianKernel averages the arg values closest to the column
// median, skipping non-finite values (median fallback when none are finite,
// 0 when the median itself is NaN): the MeanAroundMedian GAR and Bulyan's
// second phase.
func MeanAroundMedianKernel(ctx *ColumnKernelCtx, _ int, keep int) float64 {
	col := ctx.Col
	tmp := ctx.Tmp[:len(col)]
	copy(tmp, col)
	nn := moveNaNsFront(tmp)
	clean := tmp[nn:]
	m := len(clean)
	if m == 0 {
		return 0 // every value NaN: the median is NaN, a null update
	}
	var med float64
	if nn == 0 && ctx.Net != nil {
		ApplySortNet(tmp, ctx.Net)
		if m%2 == 1 {
			med = tmp[m/2]
		} else {
			med = midpoint(tmp[m/2-1], tmp[m/2])
		}
	} else {
		med = medianCleanSelect(clean)
	}
	if math.IsNaN(med) {
		// The median itself can compute to NaN without any NaN input:
		// midpoint(-Inf, +Inf). No usable pivot exists, so emit the
		// null update rather than let NaN reach the parameters.
		return 0
	}
	closest := ClosestToPivotInto(ctx.Idx, ctx.Dist, col, med, keep)
	var s float64
	var cnt int
	for _, idx := range closest {
		x := col[idx]
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			s += x
			cnt++
		}
	}
	if cnt == 0 {
		return med
	}
	return s / float64(cnt)
}
