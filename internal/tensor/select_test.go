package tensor

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestArgsortAscending(t *testing.T) {
	idx := ArgsortAscending([]float64{3, 1, 2})
	if idx[0] != 1 || idx[1] != 2 || idx[2] != 0 {
		t.Fatalf("got %v", idx)
	}
}

func TestArgsortNaNLast(t *testing.T) {
	idx := ArgsortAscending([]float64{math.NaN(), 1, math.NaN(), 0})
	if idx[0] != 3 || idx[1] != 1 {
		t.Fatalf("finite values should sort first: %v", idx)
	}
	// Both NaN positions must be at the end.
	last := map[int]bool{idx[2]: true, idx[3]: true}
	if !last[0] || !last[2] {
		t.Fatalf("NaN indexes should be last: %v", idx)
	}
}

func TestArgsortStable(t *testing.T) {
	idx := ArgsortAscending([]float64{1, 1, 1})
	if idx[0] != 0 || idx[1] != 1 || idx[2] != 2 {
		t.Fatalf("ties must preserve input order: %v", idx)
	}
}

func TestSmallestK(t *testing.T) {
	idx := SmallestK([]float64{5, 1, 4, 2}, 2)
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("got %v", idx)
	}
}

func TestSmallestKOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SmallestK([]float64{1}, 2)
}

func TestArgMin(t *testing.T) {
	if got := ArgMin([]float64{3, -1, 2}); got != 1 {
		t.Fatalf("got %d, want 1", got)
	}
	if got := ArgMin([]float64{math.NaN(), 5}); got != 1 {
		t.Fatalf("NaN must not win: got %d", got)
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"single", []float64{7}, 7},
		{"with-nan", []float64{math.NaN(), 1, 3}, 2},
		{"negatives", []float64{-5, -1, -3}, -3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Median(tc.xs); got != tc.want {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
		})
	}
}

func TestMedianAllNaN(t *testing.T) {
	if got := Median([]float64{math.NaN(), math.NaN()}); !math.IsNaN(got) {
		t.Fatalf("got %v, want NaN", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("Median mutated input: %v", xs)
	}
}

func TestMedianInPlaceMatchesMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 100; iter++ {
		n := rng.Intn(9) + 1
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		want := Median(xs)
		got := MedianInPlace(append([]float64(nil), xs...))
		if !almostEqual(got, want, 1e-12) {
			t.Fatalf("mismatch: got %v, want %v for %v", got, want, xs)
		}
	}
}

func TestClosestToPivot(t *testing.T) {
	idx := ClosestToPivot([]float64{0, 9, 5, 4}, 4.4, 2)
	got := map[int]bool{idx[0]: true, idx[1]: true}
	if !got[3] || !got[2] {
		t.Fatalf("want indexes {2,3}, got %v", idx)
	}
}

func TestClosestToPivotNaNLast(t *testing.T) {
	idx := ClosestToPivot([]float64{math.NaN(), 1, 100}, 1, 2)
	for _, i := range idx {
		if i == 0 {
			t.Fatalf("NaN entry selected among closest: %v", idx)
		}
	}
}

func TestCoordinateMedian(t *testing.T) {
	got := CoordinateMedian([]Vector{{1, 10}, {2, 30}, {3, 20}})
	if got[0] != 2 || got[1] != 20 {
		t.Fatalf("got %v", got)
	}
}

func TestTrimmedMean(t *testing.T) {
	// With b=1, trim {0} and {100}, average {1,2,3}.
	got := TrimmedMean([]Vector{{0}, {1}, {2}, {3}, {100}}, 1)
	if got[0] != 2 {
		t.Fatalf("got %v, want 2", got[0])
	}
}

func TestTrimmedMeanPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TrimmedMean([]Vector{{1}, {2}}, 1)
}

// Property: the median lies between min and max of the finite values.
func TestQuickMedianBounded(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		finite := xs[:0:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				finite = append(finite, x)
			}
		}
		if len(finite) == 0 {
			return true
		}
		m := Median(finite)
		lo, hi := finite[0], finite[0]
		for _, x := range finite {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return m >= lo && m <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: SmallestK returns exactly the k values that a full sort would.
func TestQuickSmallestKAgreesWithSort(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		n := rng.Intn(20) + 1
		k := rng.Intn(n + 1)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(rng.Intn(10))
		}
		idx := SmallestK(xs, k)
		picked := make([]float64, k)
		for i, j := range idx {
			picked[i] = xs[j]
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		sort.Float64s(picked)
		for i := 0; i < k; i++ {
			if picked[i] != sorted[i] {
				t.Fatalf("SmallestK mismatch at %d: %v vs %v", i, picked, sorted[:k])
			}
		}
	}
}

// Property: TrimmedMean output is bounded by the untrimmed min/max.
func TestQuickTrimmedMeanBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 100; iter++ {
		n := rng.Intn(8) + 3
		b := rng.Intn((n - 1) / 2)
		vs := make([]Vector, n)
		for i := range vs {
			vs[i] = Vector{rng.NormFloat64() * 10}
		}
		got := TrimmedMean(vs, b)[0]
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vs {
			lo = math.Min(lo, v[0])
			hi = math.Max(hi, v[0])
		}
		if got < lo || got > hi {
			t.Fatalf("TrimmedMean %v outside [%v,%v]", got, lo, hi)
		}
	}
}
