package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestVectorAddSubScale(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	v.Add(w)
	if v[0] != 5 || v[1] != 7 || v[2] != 9 {
		t.Fatalf("Add: got %v", v)
	}
	v.Sub(w)
	if v[0] != 1 || v[1] != 2 || v[2] != 3 {
		t.Fatalf("Sub: got %v", v)
	}
	v.Scale(2)
	if v[0] != 2 || v[1] != 4 || v[2] != 6 {
		t.Fatalf("Scale: got %v", v)
	}
}

func TestVectorAxpy(t *testing.T) {
	v := Vector{1, 1}
	v.Axpy(3, Vector{2, -1})
	if v[0] != 7 || v[1] != -2 {
		t.Fatalf("Axpy: got %v", v)
	}
}

func TestVectorDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Dot(v); got != 25 {
		t.Fatalf("Dot: got %v, want 25", got)
	}
	if got := v.Norm(); got != 5 {
		t.Fatalf("Norm: got %v, want 5", got)
	}
	if got := v.SquaredNorm(); got != 25 {
		t.Fatalf("SquaredNorm: got %v, want 25", got)
	}
}

func TestVectorDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	v := Vector{1}
	v.Add(Vector{1, 2})
}

func TestSquaredDistance(t *testing.T) {
	v := Vector{0, 0}
	w := Vector{3, 4}
	if got := SquaredDistance(v, w); got != 25 {
		t.Fatalf("SquaredDistance: got %v, want 25", got)
	}
	if got := Distance(v, w); got != 5 {
		t.Fatalf("Distance: got %v, want 5", got)
	}
}

func TestSquaredDistanceNonFiniteSaturates(t *testing.T) {
	cases := []struct {
		name string
		v, w Vector
	}{
		{"nan-left", Vector{math.NaN(), 0}, Vector{0, 0}},
		{"nan-right", Vector{0, 0}, Vector{0, math.NaN()}},
		{"inf-left", Vector{math.Inf(1), 0}, Vector{0, 0}},
		{"inf-both-cancel", Vector{math.Inf(1), 0}, Vector{math.Inf(1), 0}},
		{"neg-inf", Vector{math.Inf(-1), 0}, Vector{0, 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SquaredDistance(tc.v, tc.w)
			if !math.IsInf(got, 1) {
				t.Fatalf("got %v, want +Inf", got)
			}
		})
	}
}

func TestIsFiniteAndCount(t *testing.T) {
	if !(Vector{1, 2, 3}).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	v := Vector{1, math.NaN(), math.Inf(1), math.Inf(-1)}
	if v.IsFinite() {
		t.Fatal("non-finite vector reported finite")
	}
	if got := v.CountNonFinite(); got != 3 {
		t.Fatalf("CountNonFinite: got %d, want 3", got)
	}
}

func TestMeanOfVectors(t *testing.T) {
	got := Mean([]Vector{{1, 2}, {3, 4}, {5, 6}})
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("Mean: got %v", got)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Mean(nil)
}

func TestWeightedMean(t *testing.T) {
	got := WeightedMean([]Vector{{0}, {10}}, []float64{1, 3})
	if !almostEqual(got[0], 7.5, 1e-12) {
		t.Fatalf("WeightedMean: got %v, want 7.5", got[0])
	}
}

func TestNaNMean(t *testing.T) {
	nan := math.NaN()
	got := NaNMean([]Vector{{1, nan, nan}, {3, 2, nan}})
	if got[0] != 2 {
		t.Fatalf("coordinate 0: got %v, want 2", got[0])
	}
	if got[1] != 2 {
		t.Fatalf("coordinate 1: got %v, want 2 (NaN skipped)", got[1])
	}
	if got[2] != 0 {
		t.Fatalf("coordinate 2: got %v, want 0 (all NaN)", got[2])
	}
}

func TestVectorMinMaxMeanClamp(t *testing.T) {
	v := Vector{-2, 0, 5}
	if v.Min() != -2 || v.Max() != 5 {
		t.Fatalf("Min/Max: got %v/%v", v.Min(), v.Max())
	}
	if v.Mean() != 1 {
		t.Fatalf("Mean: got %v, want 1", v.Mean())
	}
	v.Clamp(-1, 3)
	if v[0] != -1 || v[2] != 3 {
		t.Fatalf("Clamp: got %v", v)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Fatal("Clone aliases original storage")
	}
}

// Property: distance is symmetric and non-negative.
func TestQuickDistanceSymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		v, w := Vector(a[:n]), Vector(b[:n])
		d1, d2 := SquaredDistance(v, w), SquaredDistance(w, v)
		return d1 == d2 && d1 >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the mean of identical vectors is that vector.
func TestQuickMeanOfIdentical(t *testing.T) {
	f := func(xs []float64, kRaw uint8) bool {
		if len(xs) == 0 {
			return true
		}
		k := int(kRaw%5) + 1
		vs := make([]Vector, k)
		for i := range vs {
			vs[i] = Vector(xs).Clone()
		}
		got := Mean(vs)
		for j := range xs {
			if math.IsNaN(xs[j]) || math.Abs(xs[j]) > math.MaxFloat64/float64(k+1) {
				continue // summing k copies would overflow
			}
			if !almostEqual(got[j], xs[j], 1e-9*(1+math.Abs(xs[j]))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: triangle inequality for Distance over finite vectors.
func TestQuickTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		d := rng.Intn(20) + 1
		a, b, c := NewVector(d), NewVector(d), NewVector(d)
		for j := 0; j < d; j++ {
			a[j], b[j], c[j] = rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()
		}
		if Distance(a, c) > Distance(a, b)+Distance(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v %v %v", a, b, c)
		}
	}
}
