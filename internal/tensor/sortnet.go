package tensor

// Branchless sorting networks for the tiny per-coordinate columns of the
// GAR kernels. At the paper's n≈19 worker count a comparison sort spends
// most of its time in branch mispredictions — random data mispredicts about
// once per element per pass — so the column kernels instead replay a fixed
// Batcher odd-even merge network whose compare-exchange sequence depends
// only on n: each step is two loads, a min, a max and two stores, with no
// data-dependent control flow at all. The pair list is built once per n and
// cached by the column engine, so steady-state sorting performs no
// allocations and, being a fixed sequence, is trivially deterministic.

// maxSortNet is the largest column size served by a network: the
// O(n log²n) compare-exchange count overtakes partition-based selection
// beyond this.
const maxSortNet = 64

// SortNetPairs returns the compare-exchange pairs of Batcher's odd-even
// merge sorting network for n inputs (the arbitrary-n iterative form).
// Applying the pairs in order with compare-exchange sorts any n values.
func SortNetPairs(n int) [][2]int {
	var pairs [][2]int
	for p := 1; p < n; p *= 2 {
		for k := p; k >= 1; k /= 2 {
			for j := k % p; j+k < n; j += 2 * k {
				for i := 0; i < k && i+j+k < n; i++ {
					lo, hi := i+j, i+j+k
					if lo/(2*p) == hi/(2*p) {
						pairs = append(pairs, [2]int{lo, hi})
					}
				}
			}
		}
	}
	return pairs
}

// ApplySortNet sorts xs ascending by replaying the network pairs. The
// min/max builtins order -0 before +0 and are only NaN-correct on NaN-free
// input, which is what the kernels guarantee (NaNs are swapped out first).
func ApplySortNet(xs []float64, pairs [][2]int) {
	for _, pr := range pairs {
		a, b := xs[pr[0]], xs[pr[1]]
		xs[pr[0]] = min(a, b)
		xs[pr[1]] = max(a, b)
	}
}
