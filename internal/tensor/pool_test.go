package tensor

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestParallelForCoversEveryIndexOnce pins the pool's scheduling contract:
// every index in [0, n) runs exactly once, for ranges smaller and larger
// than the worker count, repeatedly on the same (persistent) pool.
func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 17, 1000} {
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0), 64} {
			for rep := 0; rep < 3; rep++ {
				counts := make([]atomic.Int32, n)
				ParallelFor(n, workers, func(_, i int) {
					counts[i].Add(1)
				})
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("n=%d workers=%d rep=%d: index %d ran %d times", n, workers, rep, i, got)
					}
				}
			}
		}
	}
}

// TestParallelForWorkerIDsAreExclusive pins the per-worker-scratch
// contract: worker ids stay in [0, workers) and no two goroutines hold the
// same id concurrently (each id's invocations are serial), so callers may
// index mutable scratch by worker id.
func TestParallelForWorkerIDsAreExclusive(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		t.Skip("needs GOMAXPROCS >= 2")
	}
	const n = 512
	busy := make([]atomic.Int32, workers)
	ParallelFor(n, workers, func(w, i int) {
		if w < 0 || w >= workers {
			t.Errorf("worker id %d outside [0, %d)", w, workers)
			return
		}
		if busy[w].Add(1) != 1 {
			t.Errorf("worker id %d held by two goroutines at once", w)
		}
		for k := 0; k < 100; k++ { // widen the overlap window
			_ = k
		}
		busy[w].Add(-1)
	})
}

// TestParallelForPropagatesToOutput is the end-to-end shape: a parallel
// square over a shared output slice with disjoint per-index writes.
func TestParallelForPropagatesToOutput(t *testing.T) {
	const n = 4096
	out := make([]int, n)
	ParallelFor(n, runtime.GOMAXPROCS(0), func(_, i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}
