package draco

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(2, 1, Repetition); err == nil {
		t.Fatal("n=2 f=1 should fail (needs n >= 3)")
	}
	if _, err := NewPlan(5, -1, Repetition); err == nil {
		t.Fatal("negative f should fail")
	}
	if _, err := NewPlan(5, 1, Scheme(9)); err == nil {
		t.Fatal("unknown scheme should fail")
	}
	p, err := NewPlan(9, 1, Repetition)
	if err != nil {
		t.Fatal(err)
	}
	if p.Redundancy() != 3 {
		t.Fatalf("redundancy %d, want 3", p.Redundancy())
	}
}

func TestRepetitionGroups(t *testing.T) {
	p, err := NewPlan(9, 1, Repetition)
	if err != nil {
		t.Fatal(err)
	}
	groups := p.Groups()
	if len(groups) != 3 {
		t.Fatalf("got %d groups, want 3", len(groups))
	}
	seen := map[int]bool{}
	for _, g := range groups {
		if len(g) != 3 {
			t.Fatalf("group size %d, want 3", len(g))
		}
		for _, w := range g {
			if seen[w] {
				t.Fatalf("worker %d in two repetition groups", w)
			}
			seen[w] = true
		}
	}
}

func TestRepetitionLeftoverWorkersIdle(t *testing.T) {
	p, err := NewPlan(10, 1, Repetition) // r=3, 3 groups, worker 9 idle
	if err != nil {
		t.Fatal(err)
	}
	if p.NumGroups() != 3 {
		t.Fatalf("NumGroups %d, want 3", p.NumGroups())
	}
	if p.WorkerLoad(9) != 0 {
		t.Fatalf("leftover worker load %d, want 0", p.WorkerLoad(9))
	}
	if p.WorkerLoad(0) != 1 {
		t.Fatalf("member load %d, want 1", p.WorkerLoad(0))
	}
}

func TestCyclicGroups(t *testing.T) {
	p, err := NewPlan(5, 1, Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	groups := p.Groups()
	if len(groups) != 5 {
		t.Fatalf("got %d groups, want 5", len(groups))
	}
	// Group 4 wraps: {4, 0, 1}.
	g4 := groups[4]
	if g4[0] != 4 || g4[1] != 0 || g4[2] != 1 {
		t.Fatalf("group 4 = %v", g4)
	}
	if p.WorkerLoad(2) != 3 {
		t.Fatalf("cyclic worker load %d, want r=3", p.WorkerLoad(2))
	}
}

func TestDecodeHonest(t *testing.T) {
	p, err := NewPlan(6, 1, Repetition) // 2 groups of 3
	if err != nil {
		t.Fatal(err)
	}
	g0 := tensor.Vector{1, 2}
	g1 := tensor.Vector{3, 4}
	dec, err := p.Decode([][]tensor.Vector{
		{g0, g0.Clone(), g0.Clone()},
		{g1, g1.Clone(), g1.Clone()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gradient[0] != 2 || dec.Gradient[1] != 3 {
		t.Fatalf("decoded %v, want [2 3]", dec.Gradient)
	}
	if len(dec.SuspectWorkers) != 0 {
		t.Fatalf("suspects %v, want none", dec.SuspectWorkers)
	}
}

func TestDecodeOutvotesByzantine(t *testing.T) {
	p, err := NewPlan(3, 1, Repetition)
	if err != nil {
		t.Fatal(err)
	}
	honest := tensor.Vector{1, 1}
	evil := tensor.Vector{-100, 50}
	dec, err := p.Decode([][]tensor.Vector{{honest, evil, honest.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gradient[0] != 1 || dec.Gradient[1] != 1 {
		t.Fatalf("decoded %v, want honest [1 1]", dec.Gradient)
	}
	if len(dec.SuspectWorkers) != 1 || dec.SuspectWorkers[0] != 1 {
		t.Fatalf("suspects %v, want [1]", dec.SuspectWorkers)
	}
}

func TestDecodeDetectsSilentWorker(t *testing.T) {
	p, err := NewPlan(3, 1, Repetition)
	if err != nil {
		t.Fatal(err)
	}
	honest := tensor.Vector{2}
	dec, err := p.Decode([][]tensor.Vector{{honest, nil, honest.Clone()}})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Gradient[0] != 2 {
		t.Fatalf("decoded %v", dec.Gradient)
	}
	if len(dec.SuspectWorkers) != 1 || dec.SuspectWorkers[0] != 1 {
		t.Fatalf("suspects %v, want [1]", dec.SuspectWorkers)
	}
}

func TestDecodeNoMajority(t *testing.T) {
	p, err := NewPlan(3, 1, Repetition)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Decode([][]tensor.Vector{{
		{1}, {2}, {3}, // three distinct values: no f+1 majority
	}})
	if !errors.Is(err, ErrNoMajority) {
		t.Fatalf("want ErrNoMajority, got %v", err)
	}
}

func TestDecodeShapeErrors(t *testing.T) {
	p, err := NewPlan(3, 1, Repetition)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Decode(nil); err == nil {
		t.Fatal("want group-count error")
	}
	if _, err := p.Decode([][]tensor.Vector{{{1}}}); err == nil {
		t.Fatal("want member-count error")
	}
}

func TestNaNPayloadCannotSplitVote(t *testing.T) {
	// Two honest NaN-bearing submissions must fingerprint identically even
	// with different NaN payload bits.
	a := tensor.Vector{math.NaN()}
	b := tensor.Vector{math.Float64frombits(0x7ff8000000000001)} // NaN, different payload
	if fingerprint(a) != fingerprint(b) {
		t.Fatal("NaN payloads split the vote")
	}
}

func TestCyclicDecodeWithScatteredByzantine(t *testing.T) {
	// n=7, f=1, cyclic: every group has 3 members; one Byzantine worker
	// (id 2) corrupts every group it belongs to, but is outvoted 2-1.
	p, err := NewPlan(7, 1, Cyclic)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	groups := p.Groups()
	truth := make([]tensor.Vector, len(groups))
	subs := make([][]tensor.Vector, len(groups))
	for g, members := range groups {
		truth[g] = tensor.Vector{rng.NormFloat64()}
		subs[g] = make([]tensor.Vector, len(members))
		for slot, w := range members {
			if w == 2 {
				subs[g][slot] = tensor.Vector{999}
			} else {
				subs[g][slot] = truth[g].Clone()
			}
		}
	}
	dec, err := p.Decode(subs)
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.Mean(truth)
	if math.Abs(dec.Gradient[0]-want[0]) > 1e-12 {
		t.Fatalf("decoded %v, want %v", dec.Gradient[0], want[0])
	}
	if len(dec.SuspectWorkers) != 1 || dec.SuspectWorkers[0] != 2 {
		t.Fatalf("suspects %v, want [2]", dec.SuspectWorkers)
	}
}

func TestSchemeString(t *testing.T) {
	if Repetition.String() != "repetition" || Cyclic.String() != "cyclic" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Fatal("unknown scheme formatting wrong")
	}
}
