// Package draco implements the Draco baseline (Chen et al. 2018) that the
// paper compares against: Byzantine resilience through algorithmic
// redundancy instead of robust aggregation. Every mini-batch is evaluated by
// r = 2f+1 workers and the parameter server majority-votes each group, so a
// correct result survives as long as at most f group members lie.
//
// The paper's critique, reproduced here: Draco requires (a) r× more gradient
// computation per step, (b) agreement on dataset ordering (workers in a
// group must see the same data points), which breaks learning on private
// data, and (c) a decode pass that is linear in n.
package draco

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"aggregathor/internal/tensor"
)

// Scheme selects the redundant assignment topology.
type Scheme int

const (
	// Repetition partitions workers into ⌊n/r⌋ disjoint groups; each
	// group evaluates one shared mini-batch. The paper reports this as
	// the better-performing variant ("we use the repetition method
	// because it gives better results than the cyclic one").
	Repetition Scheme = iota
	// Cyclic assigns batch g to workers g, g+1, …, g+r−1 (mod n): n
	// overlapping groups, every worker computes r gradients.
	Cyclic
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case Repetition:
		return "repetition"
	case Cyclic:
		return "cyclic"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Plan describes a Draco deployment: n workers tolerating f Byzantine ones
// with redundancy r = 2f+1.
type Plan struct {
	N      int
	F      int
	Scheme Scheme
}

// NewPlan validates and returns a Draco plan. Draco requires n ≥ 2f+1.
func NewPlan(n, f int, scheme Scheme) (*Plan, error) {
	if f < 0 {
		return nil, fmt.Errorf("draco: f must be non-negative, got %d", f)
	}
	r := 2*f + 1
	if n < r {
		return nil, fmt.Errorf("draco: n=%d < required 2f+1=%d", n, r)
	}
	if scheme != Repetition && scheme != Cyclic {
		return nil, fmt.Errorf("draco: unknown scheme %v", scheme)
	}
	return &Plan{N: n, F: f, Scheme: scheme}, nil
}

// Redundancy returns r = 2f+1, the per-batch computation multiplier.
func (p *Plan) Redundancy() int { return 2*p.F + 1 }

// NumGroups returns the number of voting groups (= distinct mini-batches
// evaluated per step).
func (p *Plan) NumGroups() int {
	if p.Scheme == Repetition {
		return p.N / p.Redundancy()
	}
	return p.N
}

// Groups returns, for each group, the ids of the workers that evaluate its
// batch.
func (p *Plan) Groups() [][]int {
	r := p.Redundancy()
	groups := make([][]int, p.NumGroups())
	if p.Scheme == Repetition {
		for g := range groups {
			members := make([]int, r)
			for i := 0; i < r; i++ {
				members[i] = g*r + i
			}
			groups[g] = members
		}
		return groups
	}
	for g := range groups {
		members := make([]int, r)
		for i := 0; i < r; i++ {
			members[i] = (g + i) % p.N
		}
		groups[g] = members
	}
	return groups
}

// WorkerLoad returns how many mini-batch gradients worker w computes per
// step: 1 for repetition members (0 for leftover workers), r for cyclic.
func (p *Plan) WorkerLoad(w int) int {
	if w < 0 || w >= p.N {
		return 0
	}
	if p.Scheme == Repetition {
		if w >= p.NumGroups()*p.Redundancy() {
			return 0 // leftover worker, idle under repetition
		}
		return 1
	}
	return p.Redundancy()
}

// ErrNoMajority is wrapped when some group has no value submitted by a
// strict majority of its members — more than f liars, outside the Draco
// contract.
var ErrNoMajority = errors.New("draco: no majority in group")

// Decoded is the result of one Draco decode pass.
type Decoded struct {
	// Gradient is the average of the per-group majority gradients.
	Gradient tensor.Vector
	// SuspectWorkers lists worker ids whose submission disagreed with
	// their group majority — detected Byzantine behaviour, a capability
	// robust GARs do not have.
	SuspectWorkers []int
}

// Decode majority-votes each group and averages the winners. submissions is
// indexed [group][memberSlot] aligned with Groups(); a nil vector means the
// member did not report (counted as disagreeing). Voting is exact-match on
// the bit pattern: correct members computed on identical data with identical
// parameters, so honest submissions agree bit-for-bit.
func (p *Plan) Decode(submissions [][]tensor.Vector) (*Decoded, error) {
	groups := p.Groups()
	if len(submissions) != len(groups) {
		return nil, fmt.Errorf("draco: got %d group submissions, want %d", len(submissions), len(groups))
	}
	var winners []tensor.Vector
	suspects := map[int]bool{}
	for g, subs := range submissions {
		members := groups[g]
		if len(subs) != len(members) {
			return nil, fmt.Errorf("draco: group %d has %d submissions, want %d", g, len(subs), len(members))
		}
		counts := map[uint64][]int{} // vector fingerprint -> member slots
		for slot, v := range subs {
			if v == nil {
				continue
			}
			counts[fingerprint(v)] = append(counts[fingerprint(v)], slot)
		}
		need := p.F + 1 // strict majority of r = 2f+1
		var winSlots []int
		for _, slots := range counts {
			if len(slots) >= need {
				winSlots = slots
				break
			}
		}
		if winSlots == nil {
			return nil, fmt.Errorf("%w %d (need %d matching of %d)", ErrNoMajority, g, need, len(members))
		}
		winners = append(winners, subs[winSlots[0]])
		agreed := map[int]bool{}
		for _, s := range winSlots {
			agreed[s] = true
		}
		for slot := range subs {
			if !agreed[slot] {
				suspects[members[slot]] = true
			}
		}
	}
	out := &Decoded{Gradient: tensor.Mean(winners)}
	for w := range suspects {
		out.SuspectWorkers = append(out.SuspectWorkers, w)
	}
	sortInts(out.SuspectWorkers)
	return out, nil
}

// fingerprint hashes the exact bit pattern of v. NaN payloads hash to a
// canonical quiet-NaN so a Byzantine worker cannot split the vote by varying
// NaN payload bits.
func fingerprint(v tensor.Vector) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		bits := math.Float64bits(x)
		if math.IsNaN(x) {
			bits = math.Float64bits(math.NaN())
		}
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		buf[2] = byte(bits >> 16)
		buf[3] = byte(bits >> 24)
		buf[4] = byte(bits >> 32)
		buf[5] = byte(bits >> 40)
		buf[6] = byte(bits >> 48)
		buf[7] = byte(bits >> 56)
		h.Write(buf[:])
	}
	return h.Sum64()
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
