package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrDet polices error-string determinism. The scenario engine records
// every per-cell failure into campaign JSON via out.Error = err.Error(), so
// an error message is result bytes: two runs of the same seed must produce
// the same string. Three fmt verbs break that contract in an fmt.Errorf
// call on a critical package:
//
//   - %p (and pointer formatting generally) prints a heap address that
//     changes every run;
//   - %v / %s on a map-typed argument formats a map — keys are sorted, but
//     the element formatting may itself recurse into nondeterministic
//     values, and the message shape silently changes with map contents;
//   - %v / %s on an error-typed argument flattens a sentinel into plain
//     text: use %w instead, so errors.Is keeps working across layers and
//     the wrapped message stays the sentinel's stable string.
//
// Justify an intentional exception with //aggrevet:errfmt (for example an
// error string that provably never reaches a Result).
var ErrDet = &Analyzer{
	Name: "errdet",
	Doc: "error strings are campaign result bytes: fmt.Errorf on critical " +
		"packages must not use %p, must not format maps, and must wrap " +
		"error-typed arguments with %w rather than flatten them with %v/%s",
	Directive: "errfmt",
	Run:       runErrDet,
}

func runErrDet(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isPkgCall(pass, call, "fmt", "Errorf") || len(call.Args) == 0 {
				return true
			}
			format, ok := stringConstant(pass, call.Args[0])
			if !ok {
				return true
			}
			verbs, ok := parseVerbs(format)
			if !ok {
				return true // indexed args or malformed format: vet's problem
			}
			args := call.Args[1:]
			for _, v := range verbs {
				if v.verb == 'p' {
					pass.Reportf(call.Args[0].Pos(),
						"%%p formats a heap address into an error string; addresses differ across runs and leak into campaign JSON — format a stable identity instead or justify with //aggrevet:errfmt")
					continue
				}
				if v.argIndex < 0 || v.argIndex >= len(args) {
					continue
				}
				arg := args[v.argIndex]
				t := pass.TypeOf(arg)
				if t == nil {
					continue
				}
				switch {
				case (v.verb == 'v' || v.verb == 's') && isMapType(t):
					pass.Reportf(arg.Pos(),
						"formatting a map into an error string: the message shape depends on map contents and recursively formatted values may not be deterministic — format an explicit sorted projection or justify with //aggrevet:errfmt")
				case (v.verb == 'v' || v.verb == 's') && isErrorType(t):
					pass.Reportf(arg.Pos(),
						"error-typed argument flattened with %%%c: wrap with %%w so sentinel identity survives for errors.Is across layers", v.verb)
				}
			}
			return true
		})
	}
}

// verb is one parsed format verb with the flattened argument slot it
// consumes (-1 when it consumes none, e.g. %%).
type verb struct {
	verb     rune
	argIndex int
}

// parseVerbs extracts the verbs of a fmt format string in argument order.
// Width/precision stars consume argument slots. Explicit argument indexes
// (%[1]d) abort the parse.
func parseVerbs(format string) ([]verb, bool) {
	var out []verb
	arg := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		// flags
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		// width
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				arg++
			}
			i++
		}
		// precision
		if i < len(format) && format[i] == '.' {
			i++
			for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
				if format[i] == '*' {
					arg++
				}
				i++
			}
		}
		if i >= len(format) {
			break
		}
		switch format[i] {
		case '%':
			out = append(out, verb{verb: '%', argIndex: -1})
		case '[':
			return nil, false
		default:
			out = append(out, verb{verb: rune(format[i]), argIndex: arg})
			arg++
		}
	}
	return out, true
}

// stringConstant evaluates expr to its constant string value when possible.
func stringConstant(pass *Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isPkgCall reports whether call is pkg.name(...) for a stdlib package.
func isPkgCall(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// errorIface is the universe error interface, for Implements checks.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}
