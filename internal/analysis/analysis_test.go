package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// --- fixture harness -------------------------------------------------------

// wantMarker introduces an expectation comment: `// want "regex"` (one or
// more Go-quoted or backquoted regexes) at the end of the line a diagnostic
// must land on.
var (
	wantMarker  = regexp.MustCompile(`// want (.+)$`)
	wantLiteral = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// parseWants scans a fixture package directory for expectation comments.
func parseWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(raw), "\n") {
			m := wantMarker.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			lits := wantLiteral.FindAllStringSubmatch(m[1], -1)
			if len(lits) == 0 {
				t.Fatalf("%s:%d: want marker with no quoted regex", path, i+1)
			}
			for _, lit := range lits {
				text := lit[1]
				if text == "" {
					text = lit[2]
				}
				re, err := regexp.Compile(text)
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", path, i+1, text, err)
				}
				wants = append(wants, &expectation{file: path, line: i + 1, re: re})
			}
		}
	}
	return wants
}

// checkFixture runs one analyzer over one fixture package and requires its
// diagnostics to match the want comments exactly — every want hit, no
// diagnostic unaccounted for.
func checkFixture(t *testing.T, a *Analyzer, fixture string, allowFiles []string) {
	t.Helper()
	rel := "./testdata/src/" + fixture
	pkgs, err := Load(".", rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages for %s, want 1", len(pkgs), rel)
	}
	diags := RunSuite([]ScopedAnalyzer{{Analyzer: a, allowFiles: allowFiles}}, pkgs)
	wants := parseWants(t, filepath.Join("testdata", "src", fixture))

	var unexpected []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || filepath.Base(w.file) != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, d.String())
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic: %s", u)
	}
}

func TestMapOrderFixture(t *testing.T)   { checkFixture(t, MapOrder, "maporder", nil) }
func TestSeededRandFixture(t *testing.T) { checkFixture(t, SeededRand, "seededrand", nil) }
func TestSortDetFixture(t *testing.T)    { checkFixture(t, SortDet, "sortdet", nil) }
func TestHotAllocFixture(t *testing.T)   { checkFixture(t, HotAlloc, "hotalloc", nil) }
func TestDirectivesFixture(t *testing.T) { checkFixture(t, MapOrder, "directives", nil) }
func TestSeedFlowFixture(t *testing.T)   { checkFixture(t, SeedFlow, "seedflow", nil) }
func TestSelectDetFixture(t *testing.T)  { checkFixture(t, SelectDet, "selectdet", nil) }
func TestGoroLeakFixture(t *testing.T)   { checkFixture(t, GoroLeak, "goroleak", nil) }
func TestErrDetFixture(t *testing.T)     { checkFixture(t, ErrDet, "errdet", nil) }

// TestGuardParityFixture drives the cross-package analyzer over its four
// fixture layers against a fixture golden that encodes one of each failure
// mode: an undeclared parity hole (core), golden drift (scenario now
// enforces a guard its row omits), a stale row naming a ghost sentinel, a
// declared "!ps" hole (quiet) and an exactly-matching row (quiet).
func TestGuardParityFixture(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/guardparity/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 4 {
		t.Fatalf("loaded %d fixture layers, want 4", len(pkgs))
	}
	golden, err := filepath.Abs("testdata/src/guardparity/guard_matrix.golden")
	if err != nil {
		t.Fatal(err)
	}
	guardMatrixOverride = golden
	defer func() { guardMatrixOverride = "" }()

	diags := RunSuite([]ScopedAnalyzer{{Analyzer: GuardParity}}, pkgs)
	want := []string{
		`guard matrix drift: churn×async (ps.ErrChurnAsync) is now enforced at scenario`,
		`guard parity hole: churn×async (ps.ErrChurnAsync) is enforced at [scenario cluster] but core can express both axes`,
		`stale golden row: matrix declares guard churn×model-loss (ps.ErrChurnModelLoss)`,
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Log(d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	for _, w := range want {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
				break
			}
		}
		if !found {
			for _, d := range diags {
				t.Log(d)
			}
			t.Fatalf("no diagnostic contains %q", w)
		}
	}
}

// TestGuardParityFixtureRender pins the golden syntax the -guard-matrix
// mode emits: rows sorted by axis pair, enforced layers in chain order, and
// computed "!" hole markers for expected-but-unenforced layers.
func TestGuardParityFixtureRender(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/guardparity/...")
	if err != nil {
		t.Fatal(err)
	}
	got := RenderGuardMatrix(pkgs)
	for _, row := range []string{
		"churn×async (ps.ErrChurnAsync): scenario !core cluster !ps\n",
		"informed×slow (ps.ErrInformedSlow): cluster ps\n",
	} {
		if !strings.Contains(got, row) {
			t.Fatalf("rendered matrix missing row %q:\n%s", row, got)
		}
	}
}

// TestGuardParityGoldenMissing pins the bootstrap diagnostic: sentinels
// with no committed matrix demand a -write run instead of silently passing.
func TestGuardParityGoldenMissing(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/guardparity/...")
	if err != nil {
		t.Fatal(err)
	}
	guardMatrixOverride = filepath.Join(t.TempDir(), "absent.txt")
	defer func() { guardMatrixOverride = "" }()
	diags := RunSuite([]ScopedAnalyzer{{Analyzer: GuardParity}}, pkgs)
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "golden matrix missing") {
		t.Fatalf("want the single golden-missing diagnostic, got %v", diags)
	}
}

// TestDirectivesAccessor pins the -directives audit surface: every
// //aggrevet: comment of the fixture comes back in position order with its
// name and justification text.
func TestDirectivesAccessor(t *testing.T) {
	pkgs, err := Load(".", "./testdata/src/directives")
	if err != nil {
		t.Fatal(err)
	}
	ds := pkgs[0].Directives()
	if len(ds) != 4 {
		t.Fatalf("got %d directives, want 4", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i].Pos.Line <= ds[i-1].Pos.Line {
			t.Fatalf("directives out of position order: %v", ds)
		}
	}
	last := ds[len(ds)-1]
	if last.Name != "ordered" || !strings.Contains(last.Justification, "order-independent reduction") {
		t.Fatalf("unexpected final directive: %+v", last)
	}
}

// TestDefaultSuiteHasTenAnalyzers pins the suite composition after the v2
// expansion: five per-package passes and five module/dataflow passes, with
// no duplicate names or directive collisions.
func TestDefaultSuiteHasTenAnalyzers(t *testing.T) {
	suite := DefaultSuite()
	if len(suite) != 10 {
		t.Fatalf("default suite has %d analyzers, want 10", len(suite))
	}
	names := map[string]bool{}
	directives := map[string]bool{}
	perPkg, module := 0, 0
	for _, s := range suite {
		a := s.Analyzer
		if names[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if a.Directive != "" {
			if directives[a.Directive] {
				t.Fatalf("duplicate directive %q", a.Directive)
			}
			directives[a.Directive] = true
		}
		switch {
		case a.Run != nil && a.RunModule == nil:
			perPkg++
		case a.RunModule != nil && a.Run == nil:
			module++
		default:
			t.Fatalf("analyzer %q must set exactly one of Run and RunModule", a.Name)
		}
	}
	if perPkg != 8 || module != 2 {
		t.Fatalf("suite split per-package=%d module=%d, want 8 and 2", perPkg, module)
	}
}

// TestWallClockFixture runs the wallclock fixture with allowed.go standing
// in for a deadline/pacing seam file, then re-runs without the allowlist
// and requires exactly the seam's reads to surface — proving the allowlist
// is what keeps them silent.
func TestWallClockFixture(t *testing.T) {
	allow := []string{"testdata/src/wallclock/allowed.go"}
	checkFixture(t, WallClock, "wallclock", allow)

	pkgs, err := Load(".", "./testdata/src/wallclock")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunSuite([]ScopedAnalyzer{{Analyzer: WallClock}}, pkgs)
	var inSeam []string
	for _, d := range diags {
		if filepath.Base(d.Pos.Filename) == "allowed.go" {
			inSeam = append(inSeam, d.Message)
		}
	}
	if len(inSeam) != 2 {
		t.Fatalf("running without the allowlist should surface the 2 seam reads in allowed.go, got %d:\n%s",
			len(inSeam), strings.Join(inSeam, "\n"))
	}
}

// --- the real repo ---------------------------------------------------------

// TestRepoIsClean is the contract: the default suite over the whole module
// reports nothing. Every intentional violation in the tree is expected to
// carry a justification directive instead of relying on this test's
// tolerance.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages from the module; the pattern is wrong", len(pkgs))
	}
	diags := RunSuite(DefaultSuite(), pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Fatalf("aggrevet found %d finding(s) on the repo; fix them or justify with //aggrevet: directives", len(diags))
	}
}

// TestSuiteScopesExcludeNonCriticalPackages pins the scoping: maporder must
// not police packages outside the determinism-critical set (internal/nn
// ranges maps freely), while policing all five critical ones.
func TestSuiteScopesExcludeNonCriticalPackages(t *testing.T) {
	var mapOrder ScopedAnalyzer
	for _, s := range DefaultSuite() {
		if s.Analyzer == MapOrder {
			mapOrder = s
		}
	}
	if mapOrder.Analyzer == nil {
		t.Fatal("maporder missing from the default suite")
	}
	for _, pkg := range criticalPackages {
		if !mapOrder.AppliesTo("aggregathor/" + pkg) {
			t.Errorf("maporder must police %s", pkg)
		}
	}
	for _, pkg := range []string{"aggregathor/internal/nn", "aggregathor/internal/gar", "aggregathor/cmd/bench"} {
		if mapOrder.AppliesTo(pkg) {
			t.Errorf("maporder must not police %s", pkg)
		}
	}
}

// --- reintroducing a shipped bug must fail the lint ------------------------

// TestReintroducedUnsortedFlushIsCaught copies the module to a scratch dir,
// reintroduces the PR 3 flushAny bug shape (an unsorted range over the
// reassembler's pending map) in internal/transport, and requires
// `aggrevet ./internal/transport` to fail with a maporder diagnostic — the
// acceptance check that the CI lint job guards the contract.
func TestReintroducedUnsortedFlushIsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("copies the module and shells out to the go tool")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	copyModule(t, root, scratch)

	bug := `package transport

// flushAnyUnsorted reintroduces the PR 3 bug shape: flushing whichever
// partial the randomized map order visits first.
func (r *UDPReceiver) flushAnyUnsorted() (*GradientMsg, error) {
	for key := range r.asm.pending {
		if msg, ok := r.asm.Flush(key[0], key[1]); ok {
			return msg, nil
		}
	}
	return nil, ErrTimeout
}
`
	if err := os.WriteFile(filepath.Join(scratch, "internal", "transport", "reintroduced.go"), []byte(bug), 0o644); err != nil {
		t.Fatal(err)
	}

	pkgs, err := Load(scratch, "./internal/transport")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunSuite(DefaultSuite(), pkgs)
	found := false
	for _, d := range diags {
		if d.Analyzer == "maporder" && filepath.Base(d.Pos.Filename) == "reintroduced.go" {
			found = true
		}
	}
	if !found {
		var lines []string
		for _, d := range diags {
			lines = append(lines, d.String())
		}
		t.Fatalf("reintroduced unsorted map range in internal/transport was not caught; diagnostics:\n%s",
			strings.Join(lines, "\n"))
	}
}

// copyModule copies the module tree (sans VCS metadata and scratch output)
// for an isolated lint run.
func copyModule(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if rel == "." {
			return nil
		}
		base := filepath.Base(rel)
		if d.IsDir() {
			if base == ".git" || base == ".github" {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), raw, 0o644)
	})
	if err != nil {
		t.Fatalf("copying module: %v", err)
	}
}

// Silence unused-helper linters for fmt (used in debugging sessions).
var _ = fmt.Sprintf
