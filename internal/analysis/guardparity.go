package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// GuardParity reconciles the cross-axis rejection guards across the four
// config layers (internal/ps, internal/cluster, internal/core,
// internal/scenario). Two incompatible knobs — churn × async, informed ×
// slow, async × model-loss — must be rejected at every layer that can
// express both, or a spec that one layer would refuse slides through
// another and surfaces as a per-cell Result.Error deep inside a campaign.
// PRs 7 and 9 replicated these guards by hand; this analyzer machine-checks
// the replication.
//
// A guard is visible to the analyzer when it wraps a named sentinel — a
// package-level `var Err<AxisA><AxisB> = errors.New(...)` whose name parses
// into two or more known axis tokens (Churn, Async, ModelLoss, Informed,
// Slow). A layer enforces the guard when it references the sentinel
// (fmt.Errorf("...: %w", ps.ErrChurnAsync) or errors.Is). Inline
// fmt.Errorf guards are invisible by design: promote them to a sentinel so
// every layer shares one rejection identity.
//
// The axis × layer matrix is committed as a golden file
// (internal/analysis/guard_matrix.txt, regenerated with `aggrevet
// -guard-matrix -write`). For each guard the analyzer computes the expected
// layer set — the layers whose source mentions both axes' config markers —
// and diagnoses:
//
//   - a guard enforced at one expected layer but missing at another, unless
//     the golden row declares the hole with a reviewed "!layer" marker;
//   - drift between the computed matrix and the committed golden (both
//     directions), so adding or removing a guard is always a visible,
//     reviewable golden diff;
//   - stale golden rows and stale hole markers.
var GuardParity = &Analyzer{
	Name: "guardparity",
	Doc: "cross-layer guard parity: every axis-pair rejection sentinel must " +
		"be enforced at each config layer that can express both axes, and " +
		"the axis × layer matrix must match the committed golden file",
	RunModule: runGuardParity,
}

// GuardMatrixFile is the committed golden matrix, relative to the module
// root; cmd/aggrevet's -guard-matrix mode reads and regenerates it.
const GuardMatrixFile = "internal/analysis/guard_matrix.txt"

// guardMatrixOverride redirects the golden lookup in fixture tests.
var guardMatrixOverride string

// guardLayers are the four config layers, in validation-chain order
// (outermost spec first).
var guardLayers = []string{"scenario", "core", "cluster", "ps"}

// axisTokens maps each camel-case axis token (longest first, for greedy
// sentinel-name parsing) to its display name.
var axisTokens = []struct{ token, display string }{
	{"ModelLoss", "model-loss"},
	{"Informed", "informed"},
	{"Churn", "churn"},
	{"Async", "async"},
	{"Slow", "slow"},
}

// axisMarkers are the identifiers whose presence in a layer's source means
// the layer can express the axis — and therefore must guard its forbidden
// combinations.
var axisMarkers = map[string][]string{
	"churn":      {"ChurnConfig", "ChurnRate", "churnEnabled"},
	"async":      {"AsyncConfig", "Quorum", "Staleness"},
	"model-loss": {"ModelDropRate"},
	"informed":   {"Informed"},
	"slow":       {"SlowRate", "SlowWorkers"},
}

// guardSentinel is one discovered axis-pair sentinel.
type guardSentinel struct {
	key      string // "pkgpath.ErrName"
	name     string // "ps.ErrChurnAsync" (short package qualifier)
	axes     []string
	declPos  token.Position
	enforced map[string]bool // layer → referenced
}

// display renders the canonical axis-pair label, e.g. "churn×async".
func (g *guardSentinel) display() string { return strings.Join(g.axes, "×") }

// guardMatrix is the computed axis × layer matrix plus per-layer axis
// presence.
type guardMatrix struct {
	guards []*guardSentinel
	// axisPresent[layer][axis] — whether the layer's source mentions the
	// axis's config markers.
	axisPresent map[string]map[string]bool
	// layerFound records which of the four layers were actually loaded, so
	// a partial load (aggrevet ./internal/cluster) does not report the
	// other layers as holes.
	layerFound map[string]bool
}

// expected returns the layers that can express both of g's axes, among the
// loaded ones.
func (m *guardMatrix) expected(g *guardSentinel) []string {
	var out []string
	for _, layer := range guardLayers {
		if !m.layerFound[layer] {
			continue
		}
		all := true
		for _, ax := range g.axes {
			if !m.axisPresent[layer][ax] {
				all = false
				break
			}
		}
		if all {
			out = append(out, layer)
		}
	}
	return out
}

// layerOf maps a package path to its guard layer name, or "".
func layerOf(pkgPath string) string {
	for _, layer := range guardLayers {
		if pkgPath == layer || strings.HasSuffix(pkgPath, "/"+layer) {
			return layer
		}
	}
	return ""
}

// parseGuardAxes parses a sentinel name (without the "Err" prefix) into its
// axis display names; ok only when the whole name is axis tokens and there
// are at least two.
func parseGuardAxes(name string) (axes []string, ok bool) {
	rest := name
	for rest != "" {
		matched := false
		for _, t := range axisTokens {
			if strings.HasPrefix(rest, t.token) {
				axes = append(axes, t.display)
				rest = rest[len(t.token):]
				matched = true
				break
			}
		}
		if !matched {
			return nil, false
		}
	}
	return axes, len(axes) >= 2
}

// buildGuardMatrix discovers sentinels and their per-layer references.
func buildGuardMatrix(mod *Module) *guardMatrix {
	m := &guardMatrix{
		axisPresent: map[string]map[string]bool{},
		layerFound:  map[string]bool{},
	}
	byKey := map[string]*guardSentinel{}

	// Pass 1: sentinel declarations (any loaded package) and axis markers +
	// layer discovery.
	for _, pkg := range mod.Pkgs {
		layer := layerOf(pkg.PkgPath)
		if layer != "" {
			m.layerFound[layer] = true
			if m.axisPresent[layer] == nil {
				m.axisPresent[layer] = map[string]bool{}
			}
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if layer != "" {
					for axis, markers := range axisMarkers {
						for _, marker := range markers {
							if id.Name == marker {
								m.axisPresent[layer][axis] = true
							}
						}
					}
				}
				obj, isDef := pkg.Info.Defs[id]
				if !isDef || obj == nil {
					return true
				}
				v, isVar := obj.(*types.Var)
				if !isVar || v.Parent() != pkg.Types.Scope() || !strings.HasPrefix(id.Name, "Err") {
					return true
				}
				axes, okAxes := parseGuardAxes(strings.TrimPrefix(id.Name, "Err"))
				if !okAxes {
					return true
				}
				g := &guardSentinel{
					key:      pkg.PkgPath + "." + id.Name,
					name:     pkg.Name + "." + id.Name,
					axes:     axes,
					declPos:  pkg.Fset.Position(id.Pos()),
					enforced: map[string]bool{},
				}
				byKey[g.key] = g
				m.guards = append(m.guards, g)
				return true
			})
		}
	}
	sort.Slice(m.guards, func(i, j int) bool { return m.guards[i].display() < m.guards[j].display() })

	// Pass 2: sentinel references per layer. Cross-package uses resolve to
	// importer objects, so match by (package path, name).
	for _, pkg := range mod.Pkgs {
		layer := layerOf(pkg.PkgPath)
		if layer == "" {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj, isUse := pkg.Info.Uses[id]
				if !isUse || obj == nil || obj.Pkg() == nil {
					return true
				}
				if g, found := byKey[obj.Pkg().Path()+"."+obj.Name()]; found {
					g.enforced[layer] = true
				}
				return true
			})
		}
	}
	return m
}

// goldenRow is one parsed golden-matrix line.
type goldenRow struct {
	display  string
	sentinel string
	enforced map[string]bool
	holes    map[string]bool
	line     int
}

// parseGuardGolden parses the committed matrix. Line grammar:
//
//	churn×async (ps.ErrChurnAsync): cluster core scenario !ps
func parseGuardGolden(raw string) (map[string]*goldenRow, error) {
	rows := map[string]*goldenRow{}
	for i, line := range strings.Split(raw, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		head, layers, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("line %d: missing ':'", i+1)
		}
		name, sentinel, found := strings.Cut(strings.TrimSpace(head), " ")
		if !found || !strings.HasPrefix(sentinel, "(") || !strings.HasSuffix(sentinel, ")") {
			return nil, fmt.Errorf("line %d: want \"axes (pkg.ErrName): layers\"", i+1)
		}
		row := &goldenRow{
			display:  name,
			sentinel: strings.Trim(sentinel, "()"),
			enforced: map[string]bool{},
			holes:    map[string]bool{},
			line:     i + 1,
		}
		for _, l := range strings.Fields(layers) {
			if hole, ok := strings.CutPrefix(l, "!"); ok {
				row.holes[hole] = true
			} else {
				row.enforced[l] = true
			}
		}
		rows[row.sentinel] = row
	}
	return rows, nil
}

// renderGuardRow formats one matrix row in golden syntax: enforced layers in
// chain order, then "!" hole markers for expected-but-unenforced layers.
func renderGuardRow(m *guardMatrix, g *guardSentinel) string {
	var cells []string
	expected := map[string]bool{}
	for _, l := range m.expected(g) {
		expected[l] = true
	}
	for _, layer := range guardLayers {
		if g.enforced[layer] {
			cells = append(cells, layer)
		} else if expected[layer] {
			cells = append(cells, "!"+layer)
		}
	}
	return fmt.Sprintf("%s (%s): %s", g.display(), g.name, strings.Join(cells, " "))
}

// RenderGuardMatrix computes the axis × layer matrix over the loaded
// packages and renders it in golden-file syntax — the `aggrevet
// -guard-matrix` output. Hole markers ("!layer") flag expected layers with
// no guard; committing one is an explicit, reviewable acceptance.
func RenderGuardMatrix(pkgs []*Package) string {
	m := buildGuardMatrix(NewModule(pkgs))
	var b strings.Builder
	b.WriteString("# aggrevet guard-parity matrix: config-axis pairs × the layers rejecting them.\n")
	b.WriteString("# A \"!layer\" marker declares a reviewed hole: the layer can express both axes\n")
	b.WriteString("# but intentionally delegates the rejection. Regenerate with:\n")
	b.WriteString("#   go run ./cmd/aggrevet -guard-matrix -write\n")
	for _, g := range m.guards {
		b.WriteString(renderGuardRow(m, g))
		b.WriteByte('\n')
	}
	return b.String()
}

// goldenPath resolves the committed matrix location for this module.
func goldenPath(mod *Module) string {
	if guardMatrixOverride != "" {
		return guardMatrixOverride
	}
	return filepath.Join(mod.Root, filepath.FromSlash(GuardMatrixFile))
}

func runGuardParity(mp *ModulePass) {
	m := buildGuardMatrix(mp.Module)
	path := goldenPath(mp.Module)
	goldenPos := token.Position{Filename: path, Line: 1}

	raw, err := os.ReadFile(path)
	if err != nil {
		if len(m.guards) == 0 {
			return // nothing to reconcile, nothing committed: clean
		}
		mp.ReportAt(goldenPos,
			"guard-parity golden matrix missing; generate it with `aggrevet -guard-matrix -write` and review the rows")
		return
	}
	golden, perr := parseGuardGolden(string(raw))
	if perr != nil {
		mp.ReportAt(goldenPos, "guard-parity golden matrix unparseable: %v", perr)
		return
	}

	for _, g := range m.guards {
		row := golden[g.name]
		if row == nil {
			mp.ReportAt(g.declPos,
				"guard %s (%s) is not declared in the golden matrix %s; regenerate with `aggrevet -guard-matrix -write` and review",
				g.display(), g.name, GuardMatrixFile)
			row = &goldenRow{enforced: map[string]bool{}, holes: map[string]bool{}}
		}
		expected := map[string]bool{}
		for _, l := range m.expected(g) {
			expected[l] = true
		}
		for _, layer := range guardLayers {
			if !m.layerFound[layer] {
				continue
			}
			switch {
			case g.enforced[layer] && !row.enforced[layer] && golden[g.name] != nil:
				mp.ReportAt(g.declPos,
					"guard matrix drift: %s (%s) is now enforced at %s but the golden row does not list it; regenerate the matrix",
					g.display(), g.name, layer)
			case !g.enforced[layer] && row.enforced[layer]:
				mp.ReportAt(g.declPos,
					"guard matrix drift: golden declares %s (%s) enforced at %s but no reference to the sentinel was found there",
					g.display(), g.name, layer)
			case !g.enforced[layer] && expected[layer] && !row.holes[layer]:
				mp.ReportAt(g.declPos,
					"guard parity hole: %s (%s) is enforced at [%s] but %s can express both axes and does not reference the sentinel; add the guard or declare the hole (\"!%s\") in %s",
					g.display(), g.name, strings.Join(sortedLayerSet(g.enforced), " "), layer, layer, GuardMatrixFile)
			case g.enforced[layer] && row.holes[layer]:
				mp.ReportAt(g.declPos,
					"stale hole marker: golden declares \"!%s\" for %s (%s) but the layer now enforces the guard; regenerate the matrix",
					layer, g.display(), g.name)
			}
		}
	}

	// Golden rows whose sentinel no longer exists (or is no longer a
	// recognizable axis-pair guard).
	names := map[string]bool{}
	for _, g := range m.guards {
		names[g.name] = true
	}
	keys := make([]string, 0, len(golden))
	for k := range golden {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !names[k] {
			mp.ReportAt(token.Position{Filename: path, Line: golden[k].line},
				"stale golden row: matrix declares guard %s (%s) but no such sentinel exists; regenerate the matrix",
				golden[k].display, k)
		}
	}
}

func sortedLayerSet(set map[string]bool) []string {
	var out []string
	for _, layer := range guardLayers {
		if set[layer] {
			out = append(out, layer)
		}
	}
	if len(out) == 0 {
		out = []string{"no layer"}
	}
	return out
}
