// Package ps is the innermost layer of the guardparity fixture: it declares
// the axis config types (the markers the analyzer keys layer capability on)
// and the guard sentinels, and enforces the informed × slow guard itself.
package ps

import (
	"errors"
	"fmt"
)

// Guard sentinels: names camel-parse into axis pairs.
var (
	ErrChurnAsync   = errors.New("churn x async")
	ErrInformedSlow = errors.New("informed x slow")
)

// ChurnConfig / AsyncConfig are the axis markers for churn and async.
type ChurnConfig struct{ Rate float64 }
type AsyncConfig struct{ Quorum int }

// Config mentions the informed and slow markers too.
type Config struct {
	Churn    ChurnConfig
	Async    AsyncConfig
	SlowRate float64
	Informed bool
}

// Validate enforces informed × slow at this layer; churn × async is
// delegated to the outer layers (the fixture golden declares "!ps").
func Validate(cfg Config) error {
	if cfg.Informed && cfg.SlowRate > 0 {
		return fmt.Errorf("ps: %w", ErrInformedSlow)
	}
	return nil
}
