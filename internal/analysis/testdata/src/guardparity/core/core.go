// Package core is the fixture's parity hole: it can express churn and async
// (both markers appear) but never references ps.ErrChurnAsync, and the
// golden does not declare the hole — guardparity must object.
package core

import (
	ps "aggregathor/internal/analysis/testdata/src/guardparity/ps"
)

// Config exposes the churn and async axes without the informed/slow pair.
type Config struct {
	Churn ps.ChurnConfig
	Async ps.AsyncConfig
}

// Validate checks nothing cross-axis — the hole under test.
func Validate(cfg Config) error {
	return nil
}
