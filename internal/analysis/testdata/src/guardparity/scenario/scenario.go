// Package scenario is the fixture's drift case: it enforces churn × async,
// but the golden row does not list the scenario layer yet — guardparity
// must demand a regeneration.
package scenario

import (
	"fmt"

	ps "aggregathor/internal/analysis/testdata/src/guardparity/ps"
)

// Spec exposes the churn and async axes.
type Spec struct {
	Churn ps.ChurnConfig
	Async ps.AsyncConfig
}

// Validate enforces churn × async at the spec level.
func (s Spec) Validate() error {
	if s.Churn.Rate > 0 && s.Async.Quorum > 0 {
		return fmt.Errorf("scenario: %w", ps.ErrChurnAsync)
	}
	return nil
}
