// Package cluster is the fixture layer that enforces both guards: it can
// express every axis and references both sentinels.
package cluster

import (
	"fmt"

	ps "aggregathor/internal/analysis/testdata/src/guardparity/ps"
)

// Config mirrors the ps axis surface.
type Config struct {
	Churn    ps.ChurnConfig
	Async    ps.AsyncConfig
	SlowRate float64
	Informed bool
}

// Validate enforces churn × async and informed × slow.
func Validate(cfg Config) error {
	if cfg.Churn.Rate > 0 && cfg.Async.Quorum > 0 {
		return fmt.Errorf("cluster: %w", ps.ErrChurnAsync)
	}
	if cfg.Informed && cfg.SlowRate > 0 {
		return fmt.Errorf("cluster: %w", ps.ErrInformedSlow)
	}
	return nil
}
