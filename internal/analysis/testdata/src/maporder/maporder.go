// Package maporder is the maporder analyzer fixture: positive cases mirror
// the shipped PR 3 flushAny bug (flushing partials in map order), negative
// cases exercise the sorted-keys idiom, the clear idiom, slice ranges and
// the //aggrevet:ordered justification.
package maporder

import "sort"

type partial struct{ coords []float64 }

// FlushAnyBug reproduces the PR 3 regression: the first flushable partial
// is picked in map iteration order, so *which* gradient a deadline flush
// recoups differs run to run.
func FlushAnyBug(pending map[int]*partial) *partial {
	for _, p := range pending { // want `range over map pending iterates in nondeterministic order`
		if len(p.coords) > 0 {
			return p
		}
	}
	return nil
}

// SummaryBug prints standings in map order — the scenario report shape.
func SummaryBug(standings map[string]int, out *[]string) {
	for name := range standings { // want `range over map standings iterates in nondeterministic order`
		*out = append(*out, name)
	}
}

// SortedFlush is the compliant version: collect keys (exempt collection
// loop), sort, then walk the slice.
func SortedFlush(pending map[int]*partial) *partial {
	keys := make([]int, 0, len(pending))
	for k := range pending {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if p := pending[k]; len(p.coords) > 0 {
			return p
		}
	}
	return nil
}

// CollectPairs appends into TWO slices: more than the single collection
// append, so the exemption does not apply and the range is flagged.
func CollectPairs(m map[int]string) (ks []int, vs []string) {
	for k, v := range m { // want `range over map m iterates in nondeterministic order`
		ks = append(ks, k)
		vs = append(vs, v)
	}
	return ks, vs
}

// Clear uses the order-independent delete idiom.
func Clear(m map[int]*partial) {
	for k := range m {
		delete(m, k)
	}
}

// Justified carries an audit-trail annotation.
func Justified(counters map[string]int) int {
	total := 0
	//aggrevet:ordered summing values is an order-independent reduction
	for _, v := range counters {
		total += v
	}
	return total
}

// SliceRange never triggers: slices iterate in index order.
func SliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
