// Package directives is the directive-hygiene fixture: unknown names,
// missing justifications and stale suppressions are themselves diagnosed,
// so the audit trail cannot rot.
package directives

// Typo: "orderd" is not a directive; the map range below it is NOT
// suppressed and fires on its own.
func Typo(m map[int]int) int {
	total := 0
	//aggrevet:orderd summing is order-independent // want `unknown directive "//aggrevet:orderd"`
	for _, v := range m { // want `range over map m iterates in nondeterministic order`
		total += v
	}
	return total
}

// Bare: a directive with no justification is rejected — the audit trail
// must say WHY the invariant is safe to break here.
func Bare(m map[int]int) int {
	total := 0
	//aggrevet:ordered // want `needs a justification`
	for _, v := range m {
		total += v
	}
	return total
}

// Stale: the directive suppresses nothing (slices range deterministically)
// and must be deleted, not left to mislead the next reader.
func Stale(xs []int) int {
	total := 0
	//aggrevet:ordered slices are fine anyway // want `stale //aggrevet:ordered directive`
	for _, v := range xs {
		total += v
	}
	return total
}

// Used: a well-formed, consumed directive is silent.
func Used(m map[int]int) int {
	total := 0
	//aggrevet:ordered summing values is an order-independent reduction
	for _, v := range m {
		total += v
	}
	return total
}
