// Package sortdet is the sortdet analyzer fixture: sort.Slice fires,
// sort.SliceStable and justified total-order comparators do not.
package sortdet

import "sort"

type standing struct {
	name string
	mean float64
}

// RankBug is the scenario-report shape: an unstable sort whose comparator
// ties on equal means, leaving the order input-dependent.
func RankBug(ranked []*standing) {
	sort.Slice(ranked, func(i, j int) bool { // want `sort.Slice is tie-unstable on a result path`
		return ranked[i].mean > ranked[j].mean
	})
}

// RankStable uses the stable sort — compliant.
func RankStable(ranked []*standing) {
	sort.SliceStable(ranked, func(i, j int) bool {
		return ranked[i].mean > ranked[j].mean
	})
}

// RankJustified keeps sort.Slice but documents comparator totality.
func RankJustified(ranked []*standing) {
	//aggrevet:stable names are unique, so the two-level comparator is a total order
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].mean != ranked[j].mean {
			return ranked[i].mean > ranked[j].mean
		}
		return ranked[i].name < ranked[j].name
	})
}

// PlainSorts on ordered element types are total by construction — fine.
func PlainSorts(xs []int, ss []string) {
	sort.Ints(xs)
	sort.Strings(ss)
}
