// Package errdet is the errdet analyzer fixture: fmt.Errorf calls whose
// output would differ across identically-seeded runs (heap addresses, map
// formatting) or flatten sentinel identity (%v on an error) fire; stable
// formats and %w wrapping stay silent.
package errdet

import (
	"errors"
	"fmt"
)

// ErrBad stands in for a layer sentinel.
var ErrBad = errors.New("bad")

// PointerVerb formats a heap address into a would-be Result.Error.
func PointerVerb(p *int) error {
	return fmt.Errorf("at %p", p) // want `%p formats a heap address into an error string`
}

// MapFormat formats a whole map into the message.
func MapFormat(m map[string]int) error {
	return fmt.Errorf("state: %v", m) // want `formatting a map into an error string`
}

// FlattenedSentinel loses errors.Is identity.
func FlattenedSentinel(err error) error {
	return fmt.Errorf("round 3: %v", err) // want `error-typed argument flattened with %v: wrap with %w`
}

// FlattenedString is the %s spelling of the same bug.
func FlattenedString() error {
	return fmt.Errorf("round 3: %s", ErrBad) // want `error-typed argument flattened with %s: wrap with %w`
}

// Wrapped preserves the sentinel.
func Wrapped(err error) error {
	return fmt.Errorf("round 3: %w", err)
}

// StableFormat interpolates deterministic values only.
func StableFormat(worker int, rate float64) error {
	return fmt.Errorf("worker %d rate %v exceeds quorum", worker, rate)
}

// WidthStar checks the verb parser's argument accounting: the star consumes
// a slot, so err still lands on %w.
func WidthStar(n int, err error) error {
	return fmt.Errorf("pad %*d: %w", n, 0, err)
}

// Justified documents a reviewed exception.
func Justified(m map[string]int) error {
	//aggrevet:errfmt fixture: the map has exactly one key by construction
	return fmt.Errorf("state: %v", m)
}
