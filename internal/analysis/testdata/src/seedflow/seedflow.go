// Package seedflow is the seedflow analyzer fixture: values reaching a
// seed-demanding slot (rand source constructors, seed-named parameters, and
// parameters that demand transitively through the interprocedural fixpoint)
// must trace back to the run seed; literals and wall-clock reads fire.
package seedflow

import (
	"math/rand"
	"time"
)

// SamplerSeed stands in for the ps.*Seed helper family.
func SamplerSeed(runSeed int64, worker int) int64 {
	return runSeed*31 + int64(worker)
}

// newStream's parameter is demanded by name; the obligation sits with its
// callers.
func newStream(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// mix's parameter is NOT seed-named: it becomes demanded only through the
// backward fixpoint, because entropy flows into rand.NewSource.
func mix(entropy int64) *rand.Rand {
	return rand.New(rand.NewSource(entropy))
}

// mixTwice pushes the demand one more hop up the call chain.
func mixTwice(x int64) *rand.Rand {
	return mix(x + 1)
}

// Good derives the stream from the run seed through the helper chain.
func Good(runSeed int64, worker int) *rand.Rand {
	return newStream(SamplerSeed(runSeed, worker))
}

// GoodLocals carries lineage through a chain of local assignments.
func GoodLocals(runSeed int64) *rand.Rand {
	base := runSeed + 1
	derived := base * 31
	return newStream(derived)
}

// GoodTwoHops satisfies the propagated demand two calls away from the rand
// construction.
func GoodTwoHops(runSeed int64) *rand.Rand {
	return mixTwice(runSeed)
}

// BadLiteral bakes a constant into a name-demanded slot.
func BadLiteral() *rand.Rand {
	return newStream(42) // want `literal seed argument 0 of newStream bakes in a constant stream`
}

// BadTwoHops bakes a constant two hops from the rand construction — only
// the interprocedural fixpoint can see this one.
func BadTwoHops() *rand.Rand {
	return mixTwice(1234) // want `literal seed argument 0 of mixTwice bakes in a constant stream`
}

// BadClock seeds from the wall clock, the canonical irreproducible seed.
func BadClock() *rand.Rand {
	return newStream(time.Now().UnixNano()) // want `wall-clock-derived seed argument 0 of newStream has no lineage to the run seed`
}

// nodeID is stable per host but ties the stream to nothing reproducible.
func nodeID() int64 { return 12345 }

// BadDirect hands the rand constructor a value with no seed lineage. (An
// argument mentioning one of the enclosing function's parameters would
// instead push the obligation to the callers — see mix/mixTwice.)
func BadDirect() *rand.Rand {
	return rand.New(rand.NewSource(nodeID())) // want `seed argument 0 of rand.NewSource has no lineage to the run seed`
}

// Justified is intentional and carries the audit directive.
func Justified() *rand.Rand {
	//aggrevet:lineage fixture: the constant stream is intentional here
	return newStream(7)
}
