package wallclock

import "time"

// This file plays the role of a deadline/pacing seam (cluster's clock.go):
// the suite test runs the analyzer with allowed.go on the wallclock
// allowlist, so its reads carry no want expectations.

// SeamNow is the allowlisted clock read.
func SeamNow() time.Time { return time.Now() }

// SeamSleep is the allowlisted pacing sleep.
func SeamSleep(d time.Duration) { time.Sleep(d) }
