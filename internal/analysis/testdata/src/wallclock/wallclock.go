// Package wallclock is the wallclock analyzer fixture: wall-clock reads
// fire; duration arithmetic, time-value methods and justified deadline
// reads do not. The allowlist path is exercised separately by the suite
// test (allowed.go is configured as an allowlisted file there).
package wallclock

import "time"

// DeadlineBug mirrors PR 5's schedule memoization race: a result-path
// branch keyed on host time.
func DeadlineBug(results []float64) []float64 {
	start := time.Now() // want `time.Now reads the wall clock`
	out := results
	if time.Since(start) > time.Millisecond { // want `time.Since reads the wall clock`
		out = out[:0]
	}
	return out
}

// PacingBug sleeps on what should be a deterministic path.
func PacingBug() {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the wall clock`
}

// TimerBug arms host-clock timers.
func TimerBug() {
	t := time.NewTimer(time.Second) // want `time.NewTimer reads the wall clock`
	defer t.Stop()
	<-time.After(time.Millisecond) // want `time.After reads the wall clock`
}

// Justified is an annotated liveness bound: it decides when to stop
// waiting, never what a round computes.
func Justified() time.Time {
	//aggrevet:wallclock liveness deadline only; the recouped slots are settled by the seeded schedule
	return time.Now().Add(time.Second)
}

// DurationMath only manipulates durations and time values — fine.
func DurationMath(deadline time.Time, d time.Duration) (time.Time, bool) {
	later := deadline.Add(2 * d)
	return later, later.After(deadline)
}
