// Package selectdet is the selectdet analyzer fixture: selects with two or
// more receive cases fire (the runtime picks uniformly at random when both
// are ready); receive+default polls, receive+send pairs and justified
// selects stay silent.
package selectdet

// TwoReceives races two receives — a scheduler coin-flip when both ready.
func TwoReceives(a, b chan int) int {
	select { // want `select has 2 receive cases`
	case x := <-a:
		return x
	case y := <-b:
		return y
	}
}

// ThreeReceives counts every receive arm.
func ThreeReceives(a, b chan int, stop chan struct{}) int {
	select { // want `select has 3 receive cases`
	case x := <-a:
		return x
	case y := <-b:
		return y
	case <-stop:
		return 0
	}
}

// ReceiveDefault is a poll: resolution is determined by channel state.
func ReceiveDefault(a chan int) int {
	select {
	case x := <-a:
		return x
	default:
		return 0
	}
}

// ReceiveSend pairs one receive with one send — one receive case only.
func ReceiveSend(a, b chan int) int {
	select {
	case x := <-a:
		return x
	case b <- 1:
		return 0
	}
}

// Justified carries the result-invariance argument in place.
func Justified(a, b chan struct{}) {
	//aggrevet:select fixture: both arms are idempotent wakeups, order is unobservable
	select {
	case <-a:
	case <-b:
	}
}
