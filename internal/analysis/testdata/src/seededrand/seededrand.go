// Package seededrand is the seededrand analyzer fixture: global math/rand
// draws and magic-literal seeds fire; seeds derived from *Seed helpers or
// named seed values do not.
package seededrand

import "math/rand"

// SamplerSeed stands in for the ps.*Seed helper family.
func SamplerSeed(runSeed int64, worker int) int64 {
	return runSeed + int64(worker)*31 + 1
}

// GlobalDraw uses the shared runtime-seeded stream — never reproducible.
func GlobalDraw(n int) int {
	return rand.Intn(n) // want `global rand.Intn draws from the shared runtime-seeded stream`
}

// GlobalShuffle also rides the global stream.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global rand.Shuffle draws from the shared runtime-seeded stream`
}

// MagicSeed bakes in a literal: nothing ties the stream to the run seed.
func MagicSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand.NewSource seed 42 is not derived from the run seed`
}

// UnrelatedSeed derives the stream from a value that names no seed.
func UnrelatedSeed(step int) *rand.Rand {
	return rand.New(rand.NewSource(int64(step) * 7919)) // want `rand.NewSource seed .* is not derived from the run seed`
}

// HelperSeed derives the stream from the *Seed helper family — compliant.
func HelperSeed(runSeed int64, worker int) *rand.Rand {
	return rand.New(rand.NewSource(SamplerSeed(runSeed, worker)))
}

// NamedSeed derives the stream from a threaded config seed — compliant.
func NamedSeed(cfg struct{ Seed int64 }, worker int) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed + int64(worker)*104729))
}

// Justified documents an intentionally unseeded stream.
func Justified() *rand.Rand {
	//aggrevet:seeded fixture-only: exercising the justification path
	return rand.New(rand.NewSource(7))
}

// InstanceDraws on an explicit *rand.Rand are fine: the construction site
// is where the seed was policed.
func InstanceDraws(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}
