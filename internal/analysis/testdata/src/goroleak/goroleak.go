// Package goroleak is the goroleak analyzer fixture: goroutines with no
// visible join fire; WaitGroup membership, shutdown observation (ctx.Done
// or a package-closed channel) and spawner-awaited completion closes stay
// silent.
package goroleak

import (
	"context"
	"sync"
)

// inbox is closed by Stop — the package's shutdown protocol.
var inbox = make(chan int)

// Stop terminates every goroutine draining inbox.
func Stop() { close(inbox) }

// WaitGroupJoined is the canonical Add/Done pairing.
func WaitGroupJoined(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// CtxJoined observes ctx.Done in its loop.
func CtxJoined(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-work:
				_ = v
			}
		}
	}()
}

// RangeJoined ranges over the package-closed inbox: Stop terminates it.
func RangeJoined() {
	go func() {
		for v := range inbox {
			_ = v
		}
	}()
}

// pump drains the package-closed inbox.
func pump() {
	for v := range inbox {
		_ = v
	}
}

// DirectCallJoined spawns a named same-package function whose body joins.
func DirectCallJoined() {
	go pump()
}

// CompletionJoined blocks until the goroutine closes its completion channel.
func CompletionJoined() {
	done := make(chan struct{})
	go func() {
		close(done)
	}()
	<-done
}

// Leaks drains a channel nobody closes: no join, no shutdown.
func Leaks(work chan int) {
	go func() { // want `goroutine has no visible join`
		for v := range work {
			_ = v
		}
	}()
}

// LeakySender blocks forever if nobody receives.
func LeakySender(out chan int) {
	go func() { // want `goroutine has no visible join`
		out <- 1
	}()
}

// Indirect spawns a callee whose body the analyzer cannot see.
func Indirect(f func()) {
	go f() // want `goroutine runs an indirect callee`
}

// JustifiedSingleton documents a process-lifetime goroutine.
func JustifiedSingleton() {
	//aggrevet:goro fixture: process-lifetime singleton reaped at exit
	go func() {
		select {}
	}()
}
