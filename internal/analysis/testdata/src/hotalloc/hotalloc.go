// Package hotalloc is the hotalloc analyzer fixture: allocation sites
// inside hot-path functions (AggregateInto, AppendPacket) fire; the same
// shapes in cold functions, preallocated-capacity appends with a
// justification, and literals written straight into append slots do not.
package hotalloc

type workspace struct {
	picked []float64
	out    []byte
}

type rule struct{}

// AggregateInto is a hot workspace kernel by name.
func (rule) AggregateInto(ws *workspace, grads [][]float64) []float64 {
	scratch := make([]float64, len(grads)) // want `make in hot function AggregateInto allocates`
	for i, g := range grads {
		scratch[i] = g[0]
	}
	acc := &workspace{} // want `composite literal in hot function AggregateInto may escape and allocate`
	_ = acc
	cmp := func(i, j int) bool { return scratch[i] < scratch[j] } // want `func literal in hot function AggregateInto heap-allocates its captures`
	_ = cmp
	ws.picked = ws.picked[:0]
	for _, g := range grads {
		ws.picked = append(ws.picked, g[0]) // want `append in hot function AggregateInto may grow and allocate`
	}
	return ws.picked
}

type packet struct {
	worker int
	coords []float64
}

type codec struct{}

// AppendPacket is the packet-encode hot path by name. The grow path is
// justified (amortized arena growth), the literal rides an append slot.
func (codec) AppendPacket(ws *workspace, pkts []packet, p []float64) []packet {
	need := len(p) * 8
	if cap(ws.out)-len(ws.out) < need {
		//aggrevet:alloc arena grow path, amortized to zero over a campaign
		grown := make([]byte, len(ws.out), len(ws.out)+need)
		copy(grown, ws.out)
		ws.out = grown
	}
	//aggrevet:alloc appends within the ensured scratch capacity
	return append(pkts, packet{worker: 0, coords: p})
}

// ColdPath is not a hot function: identical shapes stay silent.
func ColdPath(grads [][]float64) []float64 {
	scratch := make([]float64, 0, len(grads))
	for _, g := range grads {
		scratch = append(scratch, g[0])
	}
	return scratch
}
