// Package analysis is aggrevet's self-contained static-analysis framework:
// a miniature go/analysis built on nothing but the standard library's
// go/parser and go/types (packages are loaded through `go list -export
// -json`, so the module stays zero-dependency).
//
// The repo's reproducibility contract — byte-identical campaign JSON across
// reruns and backends — rests on invariants that the type system cannot
// express: no unordered map iteration on result paths, no wall-clock reads
// outside the opt-in timing seams, all randomness derived from the ps.*Seed
// helpers, zero allocations in workspace kernels. Each analyzer in this
// package machine-checks one of those invariants; cmd/aggrevet drives them
// over ./... on every push.
//
// Intentional violations are justified in place with a suppression
// directive, one per invariant:
//
//	//aggrevet:ordered   <why this map iteration is order-independent>
//	//aggrevet:wallclock <why this wall-clock read cannot leak into results>
//	//aggrevet:seeded    <why this RNG seed is deterministic>
//	//aggrevet:stable    <why this comparator is a total order>
//	//aggrevet:alloc     <why this allocation is amortized or cold>
//
// A directive suppresses matching diagnostics on its own line and on the
// line directly below it (so it can trail the offending statement or sit on
// its own line above). The justification text is mandatory, unknown
// directive names are themselves diagnosed, and a directive that suppresses
// nothing is reported as stale — the set of directives in the tree is a
// grep-able audit trail of every intentionally nondeterministic line.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer checks one invariant of the reproducibility contract. It is
// either per-package (Run set: one pass per package, no cross-package view)
// or module-wide (RunModule set: one pass over the whole loaded module, for
// invariants that live in interprocedural dataflow or cross-package
// structure — seed lineage, guard parity).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "maporder".
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Directive is the suppression directive name that justifies an
	// intentional violation, e.g. "ordered" for //aggrevet:ordered. Empty
	// for analyzers whose findings have no per-site suppression (guard
	// parity is accepted through the golden matrix instead).
	Directive string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
	// RunModule inspects the whole module at once. Exactly one of Run and
	// RunModule is set.
	RunModule func(*ModulePass)
}

// A ModulePass is one module-wide analyzer's view of the loaded module.
// Reportf attributes each finding to the owning package for directive
// suppression and honours the analyzer's package scope, so module analyzers
// may traverse everything and report only where they police.
type ModulePass struct {
	Analyzer *Analyzer
	Module   *Module

	scope      ScopedAnalyzer
	diags      *[]Diagnostic
	usedByPkg  map[*Package]map[string]bool
	reportedAt map[string]bool
}

// Reportf reports a finding at pos (a position inside one of the module's
// files) unless the owning package is out of the analyzer's scope, the file
// is allowlisted, or the line carries the analyzer's suppression directive.
func (mp *ModulePass) Reportf(fset *token.FileSet, pos token.Pos, format string, args ...any) {
	pkg := mp.Module.PackageOf(fset, pos)
	if pkg == nil {
		return
	}
	if !mp.scope.AppliesTo(pkg.PkgPath) {
		return
	}
	position := pkg.Fset.Position(pos)
	if mp.scope.Allowed(position.Filename) {
		return
	}
	if mp.Analyzer.Directive != "" {
		if key, ok := pkg.directiveAt(position, mp.Analyzer.Directive); ok {
			mp.usedByPkg[pkg][key] = true
			return
		}
	}
	mp.reportAt(position, format, args...)
}

// ReportAt reports a finding at an explicit position, bypassing scope and
// directive lookup — for diagnostics that do not anchor to a source line
// (golden-file drift, a matrix row with no declaration site).
func (mp *ModulePass) ReportAt(position token.Position, format string, args ...any) {
	mp.reportAt(position, format, args...)
}

func (mp *ModulePass) reportAt(position token.Position, format string, args ...any) {
	d := Diagnostic{
		Pos:      position,
		Analyzer: mp.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	// Module analyzers can reach the same finding through several call
	// paths; report each (position, message) once.
	key := d.String()
	if mp.reportedAt[key] {
		return
	}
	mp.reportedAt[key] = true
	*mp.diags = append(*mp.diags, d)
}

// A Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// allowFiles holds filename suffixes (slash-separated, e.g.
	// "internal/cluster/clock.go") inside which this analyzer stays
	// silent — the per-file allowlist for invariants that need a small
	// number of opt-in sites (wall-clock deadline/pacing files).
	allowFiles []string

	diags *[]Diagnostic
	// used records directives consulted by Reportf, keyed file:line, so
	// the suite can flag stale directives afterwards.
	used map[string]bool
}

// A Diagnostic is one finding: position, owning analyzer and a message that
// ends with a one-line fix hint.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf reports a finding at pos unless the line (or the line above it)
// carries this analyzer's suppression directive. A consulted directive is
// marked used whether or not other findings share it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allowed(position.Filename) {
		return
	}
	if key, ok := p.Pkg.directiveAt(position, p.Analyzer.Directive); ok {
		p.used[key] = true
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowed reports whether filename is on this pass's file allowlist.
func (p *Pass) allowed(filename string) bool {
	slashed := strings.ReplaceAll(filename, "\\", "/")
	for _, suffix := range p.allowFiles {
		if strings.HasSuffix(slashed, suffix) {
			return true
		}
	}
	return false
}

// TypeOf returns the type of expr in this package, or nil.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(expr)
}

// ObjectOf resolves an identifier to its object (use or def), or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if obj := p.Pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Pkg.Info.Defs[id]
}

// DirectivePrefix introduces every suppression comment.
const DirectivePrefix = "//aggrevet:"

// directive is one parsed //aggrevet:name comment.
type directive struct {
	pos           token.Position
	name          string
	justification string
}

// parseDirectives extracts every //aggrevet: comment in the package,
// indexed by file:line for suppression lookup.
func parseDirectives(fset *token.FileSet, files []*ast.File) map[string]directive {
	out := map[string]directive{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, DirectivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, DirectivePrefix)
				// A nested " // " starts trailing commentary (fixture want
				// markers, editor annotations) — not justification text.
				if i := strings.Index(rest, " // "); i >= 0 {
					rest = rest[:i]
				}
				name, justification, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				out[directiveKey(pos.Filename, pos.Line)] = directive{
					pos:           pos,
					name:          name,
					justification: strings.TrimSpace(justification),
				}
			}
		}
	}
	return out
}

// A DirectiveInfo is one //aggrevet: suppression comment as seen by audit
// tooling (`aggrevet -directives`).
type DirectiveInfo struct {
	Pos           token.Position
	Name          string
	Justification string
}

// Directives returns every //aggrevet: comment in the package in position
// order — the package's slice of the repo-wide audit trail of intentionally
// nondeterministic lines.
func (pkg *Package) Directives() []DirectiveInfo {
	out := make([]DirectiveInfo, 0, len(pkg.directives))
	for _, d := range pkg.directives {
		out = append(out, DirectiveInfo{Pos: d.pos, Name: d.name, Justification: d.justification})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Line < out[j].Pos.Line
	})
	return out
}

func directiveKey(filename string, line int) string {
	return fmt.Sprintf("%s:%d", filename, line)
}

// directiveAt looks for a directive named name on pos's line or the line
// above it and returns its key when found.
func (pkg *Package) directiveAt(pos token.Position, name string) (key string, ok bool) {
	for _, line := range []int{pos.Line, pos.Line - 1} {
		k := directiveKey(pos.Filename, line)
		if d, found := pkg.directives[k]; found && d.name == name {
			return k, true
		}
	}
	return "", false
}

// knownDirectives is the set of valid suppression names; it is derived from
// the analyzers registered in the default suite plus any extra passed to
// checkDirectives.
func knownDirectives(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{}
	for _, a := range analyzers {
		if a.Directive != "" {
			known[a.Directive] = true
		}
	}
	return known
}

// checkDirectives diagnoses malformed and stale suppression comments in one
// package after every analyzer has run: unknown directive names (typos
// would otherwise silently suppress nothing), empty justifications (the
// audit trail must say WHY), and directives that no analyzer consulted
// (stale suppressions rot into misinformation). ranFor reports whether the
// directive's analyzer actually ran over the given file, so a directive is
// only "stale" where its analyzer looked.
func checkDirectives(pkg *Package, analyzers []*Analyzer, used map[string]bool, ranFor func(directiveName, filename string) bool) []Diagnostic {
	known := knownDirectives(analyzers)
	var diags []Diagnostic
	keys := make([]string, 0, len(pkg.directives))
	for k := range pkg.directives {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		d := pkg.directives[k]
		switch {
		case !known[d.name]:
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "aggrevet",
				Message: fmt.Sprintf("unknown directive %q; valid names: %s",
					DirectivePrefix+d.name, strings.Join(sortedKeys(known), ", ")),
			})
		case d.justification == "":
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "aggrevet",
				Message: fmt.Sprintf("%s%s needs a justification: say why this line may break the invariant",
					DirectivePrefix, d.name),
			})
		case !used[k] && ranFor(d.name, d.pos.Filename):
			diags = append(diags, Diagnostic{
				Pos:      d.pos,
				Analyzer: "aggrevet",
				Message: fmt.Sprintf("stale %s%s directive: it suppresses no diagnostic; delete it",
					DirectivePrefix, d.name),
			})
		}
	}
	return diags
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SortDiagnostics orders findings by file, line, column, then analyzer, so
// driver output is deterministic no matter the package walk order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}
