package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	// ModRoot is the filesystem root of the owning module (empty when the
	// go tool reports none) — where module-level golden files live.
	ModRoot string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives map[string]directive
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Incomplete bool
	Error      *struct{ Err string }
	Module     *struct{ Path, Dir string }
}

// Load lists the packages matching patterns from dir with `go list -export
// -json -deps`, then parses and type-checks each matched (non-dependency)
// package from source, importing its dependencies from the compiler export
// data the list step produced. Test files are not loaded: the contract the
// analyzers enforce binds shipped code; tests exercise nondeterminism on
// purpose.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, fmt.Errorf("analysis: go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		exportFile, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data listed for %q", path)
		}
		return os.Open(exportFile)
	})

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goList shells out to the go tool — the one allowed subprocess, which keeps
// the module itself free of analysis dependencies — and decodes its JSON
// stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go %v: %v\n%s", args, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var listed []*listedPackage
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// typecheck parses one package's non-test files and runs go/types over them
// with dependencies resolved from export data.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
	}
	modRoot := ""
	if lp.Module != nil {
		modRoot = lp.Module.Dir
	}
	return &Package{
		PkgPath:    lp.ImportPath,
		Name:       lp.Name,
		Dir:        lp.Dir,
		ModRoot:    modRoot,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		directives: parseDirectives(fset, files),
	}, nil
}
