package analysis

import (
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map in determinism-critical packages. Go
// randomizes map iteration order per run, so any map range on a path that
// feeds results, wire traffic or log output is a reproducibility bug — the
// class that produced PR 3's random-order flushAny flush.
//
// Two idioms are recognized as safe and exempted:
//
//   - key collection: a body that only appends the key (and/or value) to a
//     slice, which the surrounding code then sorts — the canonical
//     deterministic map walk;
//   - map clearing: a body that is exactly `delete(m, k)` on the ranged
//     map, which the spec defines to work and is order-independent.
//
// Anything else needs the keys sorted first or an //aggrevet:ordered
// justification explaining why iteration order cannot be observed.
var MapOrder = &Analyzer{
	Name:      "maporder",
	Directive: "ordered",
	Doc: "flags range statements over maps on determinism-critical paths: " +
		"map iteration order is randomized per run, so it must never reach " +
		"results, the wire, or output",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if isKeyCollectionLoop(rs) || isMapClearLoop(rs) {
				return true
			}
			p.Reportf(rs.For,
				"range over map %s iterates in nondeterministic order; collect the keys into a slice and sort it first, or justify with %sordered",
				exprString(p.Pkg, rs.X), DirectivePrefix)
			return true
		})
	}
}

// isKeyCollectionLoop reports whether the range body does nothing but append
// loop variables to one slice: `for k := range m { keys = append(keys, k) }`
// (or k, v appended together). The order of the resulting slice is still
// random, but the only reason to collect keys like this is to sort them —
// and if the caller forgets, the consuming range is over a slice the
// analyzer cannot prove sorted, which is exactly what code review is for;
// the invariant here is that no map-ordered effect happens inside the loop.
func isKeyCollectionLoop(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) < 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	// append's first argument must be the assignment target, and every
	// appended element must be one of the loop variables.
	if !sameIdentPath(call.Args[0], assign.Lhs[0]) {
		return false
	}
	for _, arg := range call.Args[1:] {
		if !sameIdentPath(arg, rs.Key) && !sameIdentPath(arg, rs.Value) {
			return false
		}
	}
	return true
}

// isMapClearLoop reports whether the body is exactly `delete(m, k)` on the
// ranged map with the ranged key — the order-independent clear idiom.
func isMapClearLoop(rs *ast.RangeStmt) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	es, ok := rs.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "delete" {
		return false
	}
	return sameIdentPath(call.Args[0], rs.X) && sameIdentPath(call.Args[1], rs.Key)
}

// sameIdentPath reports whether a and b are the same identifier or the same
// dotted selector path, textually.
func sameIdentPath(a, b ast.Expr) bool {
	sa, oka := identPath(a)
	sb, okb := identPath(b)
	return oka && okb && sa == sb
}

func identPath(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := identPath(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// exprString renders an expression compactly for diagnostics.
func exprString(pkg *Package, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, pkg.Fset, e); err != nil {
		return "<expr>"
	}
	s := b.String()
	if len(s) > 40 {
		s = s[:37] + "..."
	}
	return s
}
