package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module is the whole-module view the interprocedural analyzers (seedflow,
// guardparity) run over: every loaded package plus a cross-package function
// index and a call graph. Per-package analyzers see one package at a time;
// the bugs that shipped in PRs 3, 7 and 9 lived in dataflow and structure
// that spans packages, which is what this index makes visible.
type Module struct {
	Pkgs []*Package
	// Root is the module's filesystem root (where committed golden files
	// like the guard-parity matrix live).
	Root string

	// funcs indexes every function and method declaration in the loaded
	// packages by its stable key (see funcKey).
	funcs map[string]*ModuleFunc
	// pkgByFile maps each parsed file's name to its owning package, for
	// attributing module-level diagnostics to the right directive table.
	pkgByFile map[string]*Package
}

// A ModuleFunc is one function or method declaration with its owning package.
type ModuleFunc struct {
	Key  string
	Decl *ast.FuncDecl
	Pkg  *Package
	Obj  *types.Func
}

// NewModule indexes the loaded packages. Packages type-check their
// dependencies from export data, so the *types.Func object a caller resolves
// is distinct from the object of the callee's own source load; the index is
// therefore keyed by (import path, receiver, name), which both sides agree
// on.
func NewModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		funcs:     map[string]*ModuleFunc{},
		pkgByFile: map[string]*Package{},
	}
	for _, pkg := range pkgs {
		if m.Root == "" {
			m.Root = pkg.ModRoot
		}
		for _, f := range pkg.Files {
			m.pkgByFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := funcObjKey(obj)
				m.funcs[key] = &ModuleFunc{Key: key, Decl: fd, Pkg: pkg, Obj: obj}
			}
		}
	}
	return m
}

// FuncOf resolves a called function object (possibly imported via export
// data) to its source declaration in the module, or nil for functions
// outside the loaded set (stdlib, unexported dependencies).
func (m *Module) FuncOf(obj *types.Func) *ModuleFunc {
	if obj == nil {
		return nil
	}
	return m.funcs[funcObjKey(obj)]
}

// Funcs returns every indexed declaration in deterministic key order.
func (m *Module) Funcs() []*ModuleFunc {
	keys := make([]string, 0, len(m.funcs))
	for k := range m.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*ModuleFunc, 0, len(keys))
	for _, k := range keys {
		out = append(out, m.funcs[k])
	}
	return out
}

// PackageOf returns the package owning the file at pos, or nil.
func (m *Module) PackageOf(fset *token.FileSet, pos token.Pos) *Package {
	return m.pkgByFile[fset.Position(pos).Filename]
}

// funcObjKey builds the stable cross-load key for a function object:
// "pkgpath.(Recv).Name" for methods, "pkgpath.Name" for functions.
func funcObjKey(obj *types.Func) string {
	var b strings.Builder
	if pkg := obj.Pkg(); pkg != nil {
		b.WriteString(pkg.Path())
	}
	b.WriteByte('.')
	if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
		b.WriteByte('(')
		b.WriteString(recvTypeName(sig.Recv().Type()))
		b.WriteString(").")
	}
	b.WriteString(obj.Name())
	return b.String()
}

// recvTypeName names a receiver type without its package qualifier.
func recvTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		return "*" + recvTypeName(ptr.Elem())
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// CalleeOf resolves a call expression inside pkg to the called function
// object, looking through method values and selector calls. Calls to
// builtins, function-typed variables and interface methods return nil.
func CalleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
