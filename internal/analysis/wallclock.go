package analysis

import (
	"go/ast"
	"go/types"
)

// wallclockFuncs are the package time functions that observe or depend on
// the host wall clock. Conversions and constructors that only manipulate
// duration values (time.Duration, time.Unix, ...) are fine; reading "now"
// in any form is not.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock flags wall-clock reads (time.Now, time.Since, time.Until,
// time.Sleep and the timer constructors) outside the explicit allowlist of
// deadline/pacing files. A wall-clock read on a result path makes output a
// function of host load — the class of bug behind PR 5's schedule
// memoization race with time.Now deadlines. Campaign timing that WANTS wall
// time opts in through measuredAggWallNs, which lives outside the
// determinism-critical packages.
var WallClock = &Analyzer{
	Name:      "wallclock",
	Directive: "wallclock",
	Doc: "flags wall-clock reads outside the deadline/pacing allowlist: " +
		"results must be pure functions of the run seed, never of host time",
	Run: runWallClock,
}

func runWallClock(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := p.ObjectOf(sel.Sel)
			fn, ok := obj.(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // method on a time value, not a clock read
			}
			if !wallclockFuncs[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(),
				"time.%s reads the wall clock on a determinism-critical path; route it through the package's clock seam (an allowlisted deadline/pacing file) or justify with %swallclock",
				fn.Name(), DirectivePrefix)
			return true
		})
	}
}
