package analysis

import "strings"

// criticalPackages are the determinism-critical packages: everything a
// campaign result flows through on its way from gradient to JSON byte.
// These paths must be pure functions of the spec and seeds.
var criticalPackages = []string{
	"internal/ps",
	"internal/cluster",
	"internal/transport",
	"internal/scenario",
	"internal/core",
}

// hotAllocPackages hold the zero-allocation kernels policed by HotAlloc.
var hotAllocPackages = []string{
	"internal/gar",
	"internal/transport",
}

// seededRandPackages extend the critical set with internal/data: dataset
// synthesis and sampling seed the gradient streams, so an unseeded RNG
// there breaks reproducibility one layer earlier.
var seededRandPackages = append([]string{"internal/data"}, criticalPackages...)

// goroutinePackages are the packages whose goroutines GoroLeak polices: the
// three that spawn concurrent machinery on campaign paths. A leaked
// goroutine outlives its round and races the next one — the class of bug
// the PR 9 accept-loop shutdown work was about.
var goroutinePackages = []string{
	"internal/ps",
	"internal/cluster",
	"internal/transport",
}

// guardLayerPackages are the four config layers whose cross-axis rejection
// guards GuardParity reconciles.
var guardLayerPackages = []string{
	"internal/ps",
	"internal/cluster",
	"internal/core",
	"internal/scenario",
}

// wallclockAllowFiles is the explicit allowlist of deadline/pacing files —
// the only places in the critical packages permitted to read the wall
// clock. Keep this list a handful of files: new wall-clock needs should
// thread through internal/cluster/clock.go (the cluster seam) rather than
// grow it.
var wallclockAllowFiles = []string{
	"internal/cluster/clock.go",   // the cluster deadline/timer seam
	"internal/transport/udp.go",   // socket deadlines + send pacing
	"internal/transport/model.go", // bounded per-broadcast genuine-loss wait
	"internal/core/wait.go",       // example polling helper (not on a result path)
}

// A ScopedAnalyzer pairs an analyzer with the package set it polices and
// any per-file allowlist.
type ScopedAnalyzer struct {
	Analyzer *Analyzer
	// pkgSuffixes are import-path suffixes the analyzer runs on; empty
	// means every package.
	pkgSuffixes []string
	// allowFiles are filename suffixes the analyzer skips.
	allowFiles []string
}

// AppliesTo reports whether the analyzer polices pkgPath.
func (s ScopedAnalyzer) AppliesTo(pkgPath string) bool {
	if len(s.pkgSuffixes) == 0 {
		return true
	}
	for _, suffix := range s.pkgSuffixes {
		if strings.HasSuffix(pkgPath, suffix) {
			return true
		}
	}
	return false
}

// Allowed reports whether filename is allowlisted for this analyzer.
func (s ScopedAnalyzer) Allowed(filename string) bool {
	slashed := strings.ReplaceAll(filename, "\\", "/")
	for _, suffix := range s.allowFiles {
		if strings.HasSuffix(slashed, suffix) {
			return true
		}
	}
	return false
}

// DefaultSuite is the aggrevet configuration: the ten analyzers scoped to
// the packages whose invariants they enforce. Five are per-package syntax
// checks (PR 8); five are the v2 dataflow and cross-package structure
// checks — seedflow (interprocedural seed lineage), guardparity (cross-layer
// rejection matrix), selectdet (deterministic select resolution), goroleak
// (joined goroutines) and errdet (deterministic error strings).
func DefaultSuite() []ScopedAnalyzer {
	return []ScopedAnalyzer{
		{Analyzer: MapOrder, pkgSuffixes: criticalPackages},
		{Analyzer: WallClock, pkgSuffixes: criticalPackages, allowFiles: wallclockAllowFiles},
		{Analyzer: SeededRand, pkgSuffixes: seededRandPackages},
		{Analyzer: SortDet, pkgSuffixes: criticalPackages},
		{Analyzer: HotAlloc, pkgSuffixes: hotAllocPackages},
		{Analyzer: SeedFlow, pkgSuffixes: seededRandPackages},
		{Analyzer: GuardParity, pkgSuffixes: guardLayerPackages},
		{Analyzer: SelectDet, pkgSuffixes: criticalPackages},
		{Analyzer: GoroLeak, pkgSuffixes: goroutinePackages},
		{Analyzer: ErrDet, pkgSuffixes: criticalPackages},
	}
}

// RunSuite executes every applicable analyzer of the suite over the loaded
// packages and returns the findings sorted by position — including the
// directive hygiene checks (unknown names, missing justifications, stale
// suppressions). Per-package analyzers run one pass per in-scope package;
// module analyzers run once over a Module index of everything loaded.
func RunSuite(suite []ScopedAnalyzer, pkgs []*Package) []Diagnostic {
	var analyzers []*Analyzer
	for _, s := range suite {
		analyzers = append(analyzers, s.Analyzer)
	}

	var diags []Diagnostic
	usedByPkg := map[*Package]map[string]bool{}
	ranDirectivesByPkg := map[*Package]map[string][]ScopedAnalyzer{}
	for _, pkg := range pkgs {
		usedByPkg[pkg] = map[string]bool{}
		ranDirectivesByPkg[pkg] = map[string][]ScopedAnalyzer{}
	}

	// Per-package passes.
	for _, pkg := range pkgs {
		for _, s := range suite {
			if s.Analyzer.Run == nil || !s.AppliesTo(pkg.PkgPath) {
				continue
			}
			ranDirectivesByPkg[pkg][s.Analyzer.Directive] = append(ranDirectivesByPkg[pkg][s.Analyzer.Directive], s)
			pass := &Pass{
				Analyzer:   s.Analyzer,
				Pkg:        pkg,
				allowFiles: s.allowFiles,
				diags:      &diags,
				used:       usedByPkg[pkg],
			}
			s.Analyzer.Run(pass)
		}
	}

	// Module passes.
	var module *Module
	for _, s := range suite {
		if s.Analyzer.RunModule == nil {
			continue
		}
		if module == nil {
			module = NewModule(pkgs)
		}
		for _, pkg := range pkgs {
			if s.Analyzer.Directive != "" && s.AppliesTo(pkg.PkgPath) {
				ranDirectivesByPkg[pkg][s.Analyzer.Directive] = append(ranDirectivesByPkg[pkg][s.Analyzer.Directive], s)
			}
		}
		mp := &ModulePass{
			Analyzer:   s.Analyzer,
			Module:     module,
			scope:      s,
			diags:      &diags,
			usedByPkg:  usedByPkg,
			reportedAt: map[string]bool{},
		}
		s.Analyzer.RunModule(mp)
	}

	// Directive hygiene, with every pass's consultations merged.
	for _, pkg := range pkgs {
		ran := ranDirectivesByPkg[pkg]
		diags = append(diags, checkDirectives(pkg, analyzers, usedByPkg[pkg],
			func(directiveName, filename string) bool {
				for _, s := range ran[directiveName] {
					if !s.Allowed(filename) {
						return true
					}
				}
				return false
			})...)
	}
	SortDiagnostics(diags)
	return diags
}

// RunAnalyzer executes one analyzer (with directive hygiene limited to its
// own directive) over the packages — the entry point fixture tests use.
func RunAnalyzer(a *Analyzer, pkgs []*Package) []Diagnostic {
	return RunSuite([]ScopedAnalyzer{{Analyzer: a}}, pkgs)
}
