package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// randPackages are the import paths whose use is policed.
var randPackages = map[string]bool{
	"math/rand":    true,
	"math/rand/v2": true,
}

// randSourceCtors are the rand functions that bake a seed into a stream;
// their seed argument must be derived from the run seed.
var randSourceCtors = map[string]bool{
	"NewSource":  true, // math/rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// SeededRand enforces that every random stream on a determinism-critical
// path is derived from the run seed. Two shapes are flagged:
//
//   - any use of a math/rand (or rand/v2) package-level function or
//     variable: the global stream is seeded from runtime entropy and shared
//     across goroutines, so its draws are never reproducible;
//   - rand.New / rand.NewSource (and the v2 constructors) whose seed
//     expression does not mention a seed: no call to a *Seed helper (the
//     ps.SamplerSeed family) and no identifier or field named like a seed.
//
// The textual heuristic is deliberate: the contract is that seeds are
// derived from the ps.*Seed helpers or threaded config seeds, and every
// compliant call site names its seed. A magic literal or an unrelated
// variable fails the check and either gets derived properly or justified
// with //aggrevet:seeded.
var SeededRand = &Analyzer{
	Name:      "seededrand",
	Directive: "seeded",
	Doc: "flags global math/rand use and RNG constructions whose seed is " +
		"not derived from the run seed (a ps.*Seed helper or a named seed)",
	Run: runSeededRand,
}

func runSeededRand(p *Pass) {
	// Seed arguments of flagged constructors are handled at the call site;
	// remember the constructor idents so the global-use walk skips them.
	ctorIdents := map[*ast.Ident]bool{}

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn := p.randFunc(sel)
			if fn == nil {
				return true
			}
			if !randSourceCtors[fn.Name()] && fn.Name() != "New" {
				return true
			}
			ctorIdents[sel.Sel] = true
			if fn.Name() == "New" {
				// rand.New(src): when src is itself a policed constructor
				// call it is checked on its own visit; any other source
				// expression must name its seed directly.
				if len(call.Args) == 1 {
					if inner, ok := call.Args[0].(*ast.CallExpr); ok {
						if isel, ok := inner.Fun.(*ast.SelectorExpr); ok {
							if f := p.randFunc(isel); f != nil && randSourceCtors[f.Name()] {
								return true
							}
						}
					}
				}
			}
			for _, arg := range call.Args {
				if !seedDerived(arg) {
					p.Reportf(call.Pos(),
						"rand.%s seed %s is not derived from the run seed; derive it from a ps.*Seed helper (or a named seed value) or justify with %sseeded",
						fn.Name(), exprString(p.Pkg, arg), DirectivePrefix)
					break
				}
			}
			return true
		})
	}

	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || ctorIdents[sel.Sel] {
				return true
			}
			obj := p.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || !randPackages[obj.Pkg().Path()] {
				return true
			}
			switch fn := obj.(type) {
			case *types.Func:
				if fn.Type().(*types.Signature).Recv() != nil {
					return true // method on an explicit *rand.Rand value
				}
			case *types.Var:
				// package-level state feeding the global stream
			default:
				return true // type names (rand.Rand, rand.Source) are fine
			}
			if randSourceCtors[obj.Name()] || obj.Name() == "New" {
				return true // constructors are policed above
			}
			p.Reportf(sel.Pos(),
				"global rand.%s draws from the shared runtime-seeded stream; use a rand.New(rand.NewSource(...)) instance derived from the run seed or justify with %sseeded",
				obj.Name(), DirectivePrefix)
			return true
		})
	}
}

// randFunc resolves sel to a math/rand package-level function, or nil.
func (p *Pass) randFunc(sel *ast.SelectorExpr) *types.Func {
	fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || !randPackages[fn.Pkg().Path()] {
		return nil
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// seedDerived reports whether expr mentions a seed: a call to any function
// whose name ends in "Seed" (the ps helper family), or an identifier /
// field selection whose name contains "seed".
func seedDerived(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name, ok := calleeName(x); ok && strings.HasSuffix(name, "Seed") {
				found = true
			}
		case *ast.Ident:
			if strings.Contains(strings.ToLower(x.Name), "seed") {
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeName(call *ast.CallExpr) (string, bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}
