package analysis

import (
	"go/ast"
	"go/types"
)

// GoroLeak requires every goroutine spawned in the concurrency packages
// (internal/ps, internal/cluster, internal/transport) to have a visible
// join or shutdown path. A goroutine with neither outlives its round and
// races the next one — reads a reset workspace, double-closes a rebuilt
// channel, or delivers a stale gradient into a fresh quorum. The PR 9
// accept-loop shutdown bug was exactly a goroutine nobody joined.
//
// A `go` statement passes when its body (the spawned function literal, or
// for `go f(...)` the resolved declaration of f) exhibits one of:
//
//  1. WaitGroup membership — it calls Done() on a sync.WaitGroup (usually
//     `defer wg.Done()`), so some Wait() observes its exit;
//  2. shutdown observation — it receives from ctx.Done() or from / ranges
//     over a channel that the same package close()s, so closing that
//     channel terminates it;
//  3. completion signal — it close()s a channel that the spawning function
//     receives from, so the spawner blocks until it is finished.
//
// Anything else needs an //aggrevet:goro justification saying who reaps
// the goroutine (process-lifetime singleton, joined by the OS on exit, ...).
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every go statement in the concurrency packages must reach a join " +
		"(WaitGroup Done, shutdown channel/ctx observed in body, or a " +
		"completion channel the spawner receives from) or carry an " +
		"//aggrevet:goro justification",
	Directive: "goro",
	Run:       runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	closed := packageClosedChans(pass)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				body := goBody(pass, g)
				if body == nil {
					// Indirect call (method value, function variable): the
					// body is out of reach, so demand a justification.
					pass.Reportf(g.Pos(),
						"goroutine runs an indirect callee; aggrevet cannot see a join — justify with //aggrevet:goro or spawn a function literal")
					return true
				}
				if goroutineJoined(pass, fd, body, closed) {
					return true
				}
				pass.Reportf(g.Pos(),
					"goroutine has no visible join: no WaitGroup Done, no shutdown channel or ctx.Done() observed, no completion close() the spawner waits on; add one or justify with //aggrevet:goro")
				return true
			})
		}
	}
}

// goBody resolves the function body a go statement runs: the literal's body,
// or for a direct call to a same-package function, that function's body.
func goBody(pass *Pass, g *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body
	}
	if fn := CalleeOf(pass.Pkg, g.Call); fn != nil && fn.Pkg() == pass.Pkg.Types {
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && pass.Pkg.Info.Defs[fd.Name] == fn {
					return fd.Body
				}
			}
		}
	}
	return nil
}

// goroutineJoined reports whether body exhibits one of the three join
// patterns relative to the enclosing declaration encl.
func goroutineJoined(pass *Pass, encl *ast.FuncDecl, body *ast.BlockStmt, closed map[types.Object]bool) bool {
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			// Pattern 1: wg.Done().
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isNamedType(pass.TypeOf(sel.X), "sync", "WaitGroup") {
					joined = true
				}
			}
			// Pattern 3: close(ch) with the spawner receiving <-ch.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if obj := chanObj(pass, n.Args[0]); obj != nil && enclReceivesFrom(pass, encl, obj) {
					joined = true
				}
			}
		case *ast.UnaryExpr:
			// Pattern 2a: <-ctx.Done(), or 2b: receive from a channel this
			// package close()s.
			if receiveObservesShutdown(pass, n, closed) {
				joined = true
			}
		case *ast.RangeStmt:
			// Pattern 2b: range over a closed-by-this-package channel.
			if _, ok := pass.TypeOf(n.X).Underlying().(*types.Chan); ok {
				if obj := chanObj(pass, n.X); obj != nil && closed[obj] {
					joined = true
				}
			}
		}
		return !joined
	})
	return joined
}

// receiveObservesShutdown reports whether a unary receive reads a shutdown
// signal: ctx.Done() or a channel the package close()s.
func receiveObservesShutdown(pass *Pass, u *ast.UnaryExpr, closed map[types.Object]bool) bool {
	recvToken := "<-"
	if u.Op.String() != recvToken {
		return false
	}
	if call, ok := u.X.(*ast.CallExpr); ok {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return isNamedType(pass.TypeOf(sel.X), "context", "Context")
		}
		return false
	}
	obj := chanObj(pass, u.X)
	return obj != nil && closed[obj]
}

// packageClosedChans collects every object passed to close() anywhere in the
// package — the channels whose closure is this package's shutdown protocol.
func packageClosedChans(pass *Pass) map[types.Object]bool {
	closed := map[types.Object]bool{}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" {
				if obj := chanObj(pass, call.Args[0]); obj != nil {
					closed[obj] = true
				}
			}
			return true
		})
	}
	return closed
}

// chanObj resolves a channel expression (ident, field selector) to its
// variable object for identity comparison across sites in one package load.
func chanObj(pass *Pass, expr ast.Expr) types.Object {
	switch e := expr.(type) {
	case *ast.Ident:
		return pass.ObjectOf(e)
	case *ast.SelectorExpr:
		if sel, ok := pass.Pkg.Info.Selections[e]; ok {
			return sel.Obj()
		}
		return pass.Pkg.Info.Uses[e.Sel]
	}
	return nil
}

// enclReceivesFrom reports whether the enclosing declaration contains a
// receive (unary or select comm) from the given channel object.
func enclReceivesFrom(pass *Pass, encl *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(encl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			if chanObj(pass, u.X) == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type path.name.
func isNamedType(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == path
}
