package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SeedFlow is the interprocedural seed-lineage taint analyzer. The
// reproducibility contract says every random stream on a campaign path is a
// pure function of the run seed; the per-package SeededRand pass checks the
// textual shape of each rand construction, but it cannot see a literal that
// flows into a seed slot two calls away. SeedFlow can: it computes, module
// wide, the set of function parameters that must be seed-derived (the
// "demand set") and then checks every call site's argument against an
// intra-procedural taint walk.
//
// Demand seeding:
//
//   - every parameter whose name mentions "seed" (the ps.*Seed helper
//     family, schedule constructors, sampler factories) demands a
//     seed-derived argument;
//   - the seed arguments of math/rand's NewSource / NewPCG / NewChaCha8
//     demand one;
//   - demand propagates backwards through calls: if parameter p of f flows
//     into a demanded slot inside f, then p itself becomes demanded, and
//     f's callers are checked — through as many hops as it takes.
//
// An argument satisfies a demanded slot when it traces back to the run
// seed: it mentions a seed-named identifier or field, calls a *Seed helper,
// reads a local assigned from such a value (transitively), or is itself a
// demanded parameter of the enclosing function (the obligation then sits
// with that function's callers). An untainted literal, a wall-clock-derived
// expression (time.Now().UnixNano() is the classic irreproducible seed) or
// any other untraceable value is a finding, justified — when intentional —
// with //aggrevet:lineage.
var SeedFlow = &Analyzer{
	Name:      "seedflow",
	Directive: "lineage",
	Doc: "interprocedural taint: every value reaching a seed-demanding slot " +
		"(rand source constructors, *Seed helpers, schedule constructors) " +
		"must trace back to the run seed through calls, fields and locals",
	RunModule: runSeedFlow,
}

// seedDemand is the module-wide demand set: for each indexed function, which
// parameter indices must receive seed-derived arguments.
type seedDemand map[string][]bool

// runSeedFlow computes the demand fixpoint, then reports every call argument
// that reaches a demanded slot without seed lineage.
func runSeedFlow(mp *ModulePass) {
	demand := seedDemand{}
	funcs := mp.Module.Funcs()

	// Round 0: name-declared demand. A parameter named like a seed is a
	// declaration of intent no matter where the function lives.
	for _, fn := range funcs {
		params := funcParams(fn.Decl)
		var mask []bool
		for i, p := range params {
			if nameMentionsSeed(p.name) {
				if mask == nil {
					mask = make([]bool, len(params))
				}
				mask[i] = true
			}
		}
		if mask != nil {
			demand[fn.Key] = mask
		}
	}

	// Fixpoint: propagate demand backwards through call arguments that are
	// plain parameter references.
	for changed := true; changed; {
		changed = false
		for _, fn := range funcs {
			fa := newFlowAnalysis(fn, demand)
			for _, site := range fa.demandedSites(mp.Module) {
				if fa.tainted(site.arg) {
					continue
				}
				for _, pi := range fa.paramsMentioned(site.arg) {
					mask := demand[fn.Key]
					if mask == nil {
						mask = make([]bool, len(funcParams(fn.Decl)))
						demand[fn.Key] = mask
					}
					if !mask[pi] {
						mask[pi] = true
						changed = true
					}
				}
			}
		}
	}

	// Report pass: at the fixpoint, any demanded argument that is neither
	// tainted nor covered by a (now-demanded) enclosing parameter has no
	// seed lineage.
	for _, fn := range funcs {
		fa := newFlowAnalysis(fn, demand)
		for _, site := range fa.demandedSites(mp.Module) {
			if fa.tainted(site.arg) {
				continue
			}
			if len(fa.paramsMentioned(site.arg)) > 0 {
				continue // obligation moved to the callers of fn
			}
			mp.Reportf(fn.Pkg.Fset, site.arg.Pos(),
				"%s argument %d of %s %s; derive it from the run seed (a ps.*Seed helper or a seed-carrying config field) or justify with %slineage",
				describeUntainted(fn.Pkg, site.arg), site.index, site.callee, untaintedVerb(site.arg), DirectivePrefix)
		}
	}
}

// param is one declared parameter name.
type funcParam struct{ name string }

// funcParams flattens a declaration's parameter list (grouped names expand
// to one entry each; unnamed parameters keep an empty name).
func funcParams(fd *ast.FuncDecl) []funcParam {
	var out []funcParam
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			out = append(out, funcParam{})
			continue
		}
		for _, n := range field.Names {
			out = append(out, funcParam{name: n.Name})
		}
	}
	return out
}

func nameMentionsSeed(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

// demandSite is one call argument occupying a demanded slot.
type demandSite struct {
	arg    ast.Expr
	index  int
	callee string
}

// flowAnalysis is the intra-procedural taint state for one function body.
type flowAnalysis struct {
	fn     *ModuleFunc
	demand seedDemand
	// taintedLocals are the names of local variables assigned (directly or
	// transitively) from seed-derived expressions.
	taintedLocals map[string]bool
	// demandedParams are the enclosing function's own demanded parameter
	// names — assumed tainted inside the body (callers carry the proof).
	demandedParams map[string]bool
	sites          []demandSite
	sitesBuilt     bool
}

func newFlowAnalysis(fn *ModuleFunc, demand seedDemand) *flowAnalysis {
	fa := &flowAnalysis{
		fn:             fn,
		demand:         demand,
		taintedLocals:  map[string]bool{},
		demandedParams: map[string]bool{},
	}
	params := funcParams(fn.Decl)
	if mask := demand[fn.Key]; mask != nil {
		for i, on := range mask {
			if on && i < len(params) && params[i].name != "" {
				fa.demandedParams[params[i].name] = true
			}
		}
	}
	if fn.Decl.Body != nil {
		fa.propagateLocals()
	}
	return fa
}

// propagateLocals runs the local-assignment taint fixpoint: a variable
// assigned from a tainted expression is tainted, and taint flows through
// chains of locals regardless of statement order (loops re-enter bodies).
func (fa *flowAnalysis) propagateLocals() {
	for changed := true; changed; {
		changed = false
		ast.Inspect(fa.fn.Decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name == "_" || fa.taintedLocals[id.Name] {
						continue
					}
					var rhs ast.Expr
					if len(x.Rhs) == len(x.Lhs) {
						rhs = x.Rhs[i]
					} else if len(x.Rhs) == 1 {
						rhs = x.Rhs[0]
					}
					if rhs != nil && fa.tainted(rhs) {
						fa.taintedLocals[id.Name] = true
						changed = true
					}
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if name.Name == "_" || fa.taintedLocals[name.Name] {
						continue
					}
					var rhs ast.Expr
					if len(x.Values) == len(x.Names) {
						rhs = x.Values[i]
					} else if len(x.Values) == 1 {
						rhs = x.Values[0]
					}
					if rhs != nil && fa.tainted(rhs) {
						fa.taintedLocals[name.Name] = true
						changed = true
					}
				}
			}
			return true
		})
	}
}

// tainted reports whether expr carries seed lineage: a seed-named
// identifier or field anywhere inside it, a *Seed helper call, a tainted
// local, or a demanded parameter of the enclosing function.
func (fa *flowAnalysis) tainted(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if nameMentionsSeed(x.Name) || fa.taintedLocals[x.Name] || fa.demandedParams[x.Name] {
				found = true
			}
		case *ast.SelectorExpr:
			if nameMentionsSeed(x.Sel.Name) {
				found = true
			}
		case *ast.CallExpr:
			if name, ok := calleeName(x); ok && strings.HasSuffix(name, "Seed") {
				found = true
			}
		}
		return !found
	})
	return found
}

// paramsMentioned returns the indices of the enclosing function's parameters
// referenced anywhere inside expr, sorted.
func (fa *flowAnalysis) paramsMentioned(expr ast.Expr) []int {
	params := funcParams(fa.fn.Decl)
	byName := map[string]int{}
	for i, p := range params {
		if p.name != "" && p.name != "_" {
			byName[p.name] = i
		}
	}
	seen := map[int]bool{}
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if i, isParam := byName[id.Name]; isParam && !fa.shadowed(id) {
				seen[i] = true
			}
		}
		return true
	})
	out := make([]int, 0, len(seen))
	for i := range seen {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// shadowed reports whether id resolves to something other than the
// enclosing function's parameter object (a shadowing local, a field).
func (fa *flowAnalysis) shadowed(id *ast.Ident) bool {
	obj, ok := fa.fn.Pkg.Info.Uses[id]
	if !ok {
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return true
	}
	// A parameter object's position sits inside the declaration's type.
	return !v.IsField() && !posWithin(v.Pos(), fa.fn.Decl.Type.Pos(), fa.fn.Decl.Type.End())
}

func posWithin(p, lo, hi token.Pos) bool { return p >= lo && p <= hi }

// demandedSites collects every call argument in the function body that
// occupies a demanded slot: a slot of an indexed module function with
// demand, or a math/rand source constructor's seed argument.
func (fa *flowAnalysis) demandedSites(mod *Module) []demandSite {
	if fa.sitesBuilt {
		return fa.sites
	}
	fa.sitesBuilt = true
	if fa.fn.Decl.Body == nil {
		return nil
	}
	ast.Inspect(fa.fn.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := CalleeOf(fa.fn.Pkg, call)
		if callee == nil {
			return true
		}
		if callee.Pkg() != nil && randPackages[callee.Pkg().Path()] && randSourceCtors[callee.Name()] {
			for i, arg := range call.Args {
				fa.sites = append(fa.sites, demandSite{arg: arg, index: i, callee: "rand." + callee.Name()})
			}
			return true
		}
		mask := fa.demand[funcObjKey(callee)]
		if mask == nil {
			return true
		}
		for i, arg := range call.Args {
			if i < len(mask) && mask[i] {
				fa.sites = append(fa.sites, demandSite{arg: arg, index: i, callee: callee.Name()})
			}
		}
		return true
	})
	return fa.sites
}

// describeUntainted classifies the failure for the diagnostic: a literal, a
// wall-clock read, or a generic untraceable value.
func describeUntainted(pkg *Package, arg ast.Expr) string {
	switch {
	case isWallClockDerived(pkg, arg):
		return "wall-clock-derived seed"
	case isLiteralExpr(arg):
		return "literal seed"
	default:
		return "seed"
	}
}

func untaintedVerb(arg ast.Expr) string {
	if isLiteralExpr(arg) {
		return "bakes in a constant stream independent of the run seed"
	}
	return "has no lineage to the run seed"
}

// isLiteralExpr reports whether expr is built purely from literals and
// operators (a constant with no seed lineage).
func isLiteralExpr(expr ast.Expr) bool {
	ok := true
	ast.Inspect(expr, func(n ast.Node) bool {
		switch n.(type) {
		case nil, *ast.BasicLit, *ast.UnaryExpr, *ast.BinaryExpr, *ast.ParenExpr:
			return true
		case *ast.Ident, *ast.CallExpr, *ast.SelectorExpr, *ast.IndexExpr:
			ok = false
			return false
		}
		return true
	})
	return ok
}

// isWallClockDerived reports whether expr reads the wall clock anywhere
// (time.Now and friends) — the canonical irreproducible seed source.
func isWallClockDerived(pkg *Package, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if obj, okObj := pkg.Info.Uses[sel.Sel].(*types.Func); okObj &&
			obj.Pkg() != nil && obj.Pkg().Path() == "time" && wallclockFuncs[obj.Name()] {
			found = true
		}
		return !found
	})
	return found
}
