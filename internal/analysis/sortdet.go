package analysis

import (
	"go/ast"
	"go/types"
)

// SortDet flags sort.Slice on determinism-critical paths. sort.Slice is an
// unstable sort: elements the comparator considers equal land in an order
// that depends on the input permutation — which, after a map range or a
// network race, is not reproducible. The fix is sort.SliceStable over a
// deterministic input order, or a comparator that breaks every tie with a
// total key (justified with //aggrevet:stable).
var SortDet = &Analyzer{
	Name:      "sortdet",
	Directive: "stable",
	Doc: "flags sort.Slice on result-bearing paths: unstable sorting turns " +
		"comparator ties into input-order dependence; use sort.SliceStable " +
		"or a total comparator key",
	Run: runSortDet,
}

func runSortDet(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" || fn.Name() != "Slice" {
				return true
			}
			p.Reportf(call.Pos(),
				"sort.Slice is tie-unstable on a result path; use sort.SliceStable, or make the comparator a total order and justify with %sstable",
				DirectivePrefix)
			return true
		})
	}
}
