package analysis

import (
	"go/ast"
)

// hotFuncNames are the functions that form the zero-allocation hot paths:
// every WorkspaceGAR kernel (AggregateInto, enforced at runtime by
// TestWorkspaceZeroSteadyStateAllocs) and the packet encode path that PR 6
// drove to 0 allocs/packet. The gcflags=-m escape baseline (see cmd/aggrevet
// -escape) covers what this syntactic pass cannot see — allocations the
// compiler introduces for escaping locals.
var hotFuncNames = map[string]bool{
	"AggregateInto": true, // gar workspace kernels
	"AppendPacket":  true, // transport zero-copy packet encode
	"SplitInto":     true, // transport gradient → packet slicing
	"putCoords":     true, // transport coordinate encode
	"getCoords":     true, // transport coordinate decode
}

// HotAlloc flags allocation sites inside the hot functions: make, new,
// composite literals, growing appends and closures (a func literal that
// captures state heap-allocates on every call — PR 6's closure-per-flush
// bug). Amortized or cold allocations (workspace arena growth) are
// justified in place with //aggrevet:alloc, which doubles as the index of
// every spot the zero-alloc tests must cover.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Directive: "alloc",
	Doc: "flags allocation sites (make/new/append/composite literals/" +
		"closures) inside zero-allocation hot-path functions",
	Run: runHotAlloc,
}

func runHotAlloc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hotFuncNames[fd.Name.Name] {
				continue
			}
			checkHotBody(p, fd)
		}
	}
}

func checkHotBody(p *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	// A composite literal written directly into an append slot is stored
	// in the destination slice's backing array, not separately allocated;
	// the append itself is the (already flagged) potential allocation.
	inAppendSlot := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			fn, ok := x.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			// Only the builtins: a shadowing local would resolve to a
			// non-nil *types.Func with a package.
			if obj := p.ObjectOf(fn); obj != nil && obj.Pkg() != nil {
				return true
			}
			switch fn.Name {
			case "make", "new":
				p.Reportf(x.Pos(),
					"%s in hot function %s allocates; reuse a workspace/arena buffer or justify with %salloc",
					fn.Name, name, DirectivePrefix)
			case "append":
				p.Reportf(x.Pos(),
					"append in hot function %s may grow and allocate; ensure capacity up front via the workspace or justify with %salloc",
					name, DirectivePrefix)
				for _, arg := range x.Args[1:] {
					if lit, ok := arg.(*ast.CompositeLit); ok {
						inAppendSlot[lit] = true
					}
				}
			}
		case *ast.CompositeLit:
			if inAppendSlot[x] {
				return true // elements may still allocate; keep walking
			}
			p.Reportf(x.Pos(),
				"composite literal in hot function %s may escape and allocate; hoist it onto the workspace/receiver or justify with %salloc",
				name, DirectivePrefix)
			return false
		case *ast.FuncLit:
			p.Reportf(x.Pos(),
				"func literal in hot function %s heap-allocates its captures per call; hoist the state onto a struct method or justify with %salloc",
				name, DirectivePrefix)
			return false // inner allocations belong to the flagged closure
		}
		return true
	})
}
