package analysis

import (
	"go/ast"
)

// SelectDet polices select statements on result paths. When two receive
// cases are simultaneously ready, the runtime picks one uniformly at random
// — a documented scheduler coin-flip, and therefore a reproducibility leak
// if the chosen order can influence campaign bytes. The PR 9 churn work hit
// exactly this class: a rejoin racing a deadline tick.
//
// Any select with two or more receive cases in a critical package must
// carry an //aggrevet:select justification explaining why the resolution
// order is result-invariant (the cases commute, one arm only fires after a
// round is sealed, the select is off the result path entirely, ...).
// Single-receive selects — including receive+default polls and
// receive+send — resolve deterministically given the channel states and
// need no justification.
var SelectDet = &Analyzer{
	Name: "selectdet",
	Doc: "selects with ≥2 receive cases resolve by scheduler coin-flip when " +
		"both are ready; each such select on a result path needs an " +
		"//aggrevet:select justification that the order is result-invariant",
	Directive: "select",
	Run:       runSelectDet,
}

func runSelectDet(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectStmt)
			if !ok {
				return true
			}
			receives := 0
			for _, clause := range sel.Body.List {
				comm, ok := clause.(*ast.CommClause)
				if !ok || comm.Comm == nil {
					continue // default case
				}
				if isReceiveComm(comm.Comm) {
					receives++
				}
			}
			if receives >= 2 {
				pass.Reportf(sel.Pos(),
					"select has %d receive cases: when several are ready the runtime picks uniformly at random; justify result-invariance with //aggrevet:select or restructure",
					receives)
			}
			return true
		})
	}
}

// isReceiveComm reports whether a select communication op is a receive
// (`<-ch`, `v := <-ch`, `v, ok := <-ch`) rather than a send.
func isReceiveComm(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		_, ok := s.X.(*ast.UnaryExpr)
		return ok
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return false
		}
		_, ok := s.Rhs[0].(*ast.UnaryExpr)
		return ok
	}
	return false
}
