// Package simnet is the discrete-event cluster cost model standing in for
// the paper's Grid5000 testbed: 20 nodes (2× Intel Xeon E5-2630, 10 Gbps
// Ethernet). It assigns simulated durations to the three phases of a
// synchronous parameter-server round — worker gradient computation, gradient
// transfer over a shared link (TCP with Mathis-model congestion collapse
// under loss, or lossy UDP at full rate), and server-side aggregation — and
// advances a simulated clock.
//
// Aggregation cost is *measured*, not modelled: the configured GAR really
// runs on vectors of the experiment's dimension and its wall time feeds the
// clock (see MeasureAggregation). Compute and network are analytic, so
// experiments are fast and deterministic while the relative GAR overheads —
// the quantity the paper reports — are real.
package simnet

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"aggregathor/internal/gar"
	"aggregathor/internal/tensor"
)

// Protocol selects the transport cost model.
type Protocol int

const (
	// TCP is the reliable default (gRPC-like): full bandwidth at zero
	// loss, Mathis-model collapse under packet drops.
	TCP Protocol = iota
	// UDP is the lossyMPI transport: full bandwidth regardless of loss
	// (lost packets are simply gone; the data-plane effect is modelled by
	// package transport).
	UDP
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// Config is the cluster cost model.
type Config struct {
	// Workers is n, the number of worker nodes.
	Workers int
	// Dim is the gradient dimension d used for transfer and aggregation
	// cost.
	Dim int
	// BytesPerCoord is the wire size of one coordinate (4 for float32,
	// the TensorFlow default; 8 for float64).
	BytesPerCoord int
	// FlopsPerSample is the forward+backward cost of one training sample.
	FlopsPerSample float64
	// WorkerFlops is the effective per-node FLOP/s (compute throughput).
	WorkerFlops float64
	// WorkerSkew is the relative spread of per-worker speed (0 =
	// homogeneous; 0.1 = ±10% assigned deterministically per worker id).
	WorkerSkew float64
	// LinkBandwidth is the shared network bandwidth in bits/s.
	LinkBandwidth float64
	// RTT is the round-trip time used by the TCP loss model.
	RTT time.Duration
	// Protocol selects TCP or UDP costing.
	Protocol Protocol
	// DropRate is the packet loss probability in [0, 1).
	DropRate float64
	// AggTime is the per-round aggregation duration (use
	// MeasureAggregation for a real measurement).
	AggTime time.Duration
	// GradsPerWorker is how many mini-batch gradients each worker
	// computes per step (1 normally, r = 2f+1 for Draco-cyclic).
	GradsPerWorker int
	// DecodeTime is additional per-round server work (Draco's
	// linear-in-n decode), zero otherwise.
	DecodeTime time.Duration
}

// Grid5000 returns the paper's testbed defaults for n workers and gradient
// dimension d: 10 Gbps shared Ethernet, float32 wire format, ~50 GFLOP/s
// effective per node.
func Grid5000(workers, dim int) Config {
	return Config{
		Workers:        workers,
		Dim:            dim,
		BytesPerCoord:  4,
		FlopsPerSample: 2e8, // Table-1 CNN forward+backward, per sample
		WorkerFlops:    50e9,
		LinkBandwidth:  10e9,
		RTT:            200 * time.Microsecond,
		Protocol:       TCP,
		GradsPerWorker: 1,
	}
}

// Round is the simulated duration of one synchronous training step.
type Round struct {
	// Compute is the slowest worker's gradient computation time.
	Compute time.Duration
	// Transfer is the model broadcast plus gradient collection time on
	// the shared link.
	Transfer time.Duration
	// Aggregate is the server-side GAR (+ decode) time.
	Aggregate time.Duration
}

// Total returns the full round duration.
func (r Round) Total() time.Duration { return r.Compute + r.Transfer + r.Aggregate }

// workerSpeed returns the deterministic speed factor of worker w in
// [1-skew, 1+skew].
func (c *Config) workerSpeed(w int) float64 {
	if c.WorkerSkew == 0 {
		return 1
	}
	// Spread workers evenly over the skew interval by id; deterministic
	// so repeated rounds cost the same.
	frac := float64(w)/math.Max(1, float64(c.Workers-1))*2 - 1
	return 1 + frac*c.WorkerSkew
}

// ComputeTime returns the gradient computation time of worker w for a
// mini-batch (GradsPerWorker multiplies the work, per Draco).
func (c *Config) ComputeTime(w, batch int) time.Duration {
	if c.WorkerFlops <= 0 {
		return 0
	}
	grads := c.GradsPerWorker
	if grads <= 0 {
		grads = 1
	}
	flops := c.FlopsPerSample * float64(batch) * float64(grads)
	secs := flops / (c.WorkerFlops * c.workerSpeed(w))
	return time.Duration(secs * float64(time.Second))
}

// EffectiveBandwidth returns the usable shared-link bandwidth in bits/s
// under the configured protocol and drop rate. TCP follows the Mathis model
// (throughput ≤ MSS·C / (RTT·√p)); UDP keeps the raw link rate but delivers
// only (1-p) of the packets — the paper's speed argument for lossyMPI.
func (c *Config) EffectiveBandwidth() float64 {
	if c.Protocol == UDP || c.DropRate <= 0 {
		return c.LinkBandwidth
	}
	const (
		mssBits = 1460 * 8
		mathisC = 1.22
	)
	rttSecs := c.RTT.Seconds()
	if rttSecs <= 0 {
		rttSecs = 100e-6
	}
	mathis := mssBits * mathisC / (rttSecs * math.Sqrt(c.DropRate))
	return math.Min(c.LinkBandwidth, mathis)
}

// TransferTime returns the shared-link time to broadcast the model to n
// workers and collect n·GradsPerWorker gradients of dimension Dim.
func (c *Config) TransferTime() time.Duration {
	grads := c.GradsPerWorker
	if grads <= 0 {
		grads = 1
	}
	perVector := float64(c.Dim * c.BytesPerCoord * 8)
	totalBits := perVector * float64(c.Workers) * float64(1+grads)
	bw := c.EffectiveBandwidth()
	if bw <= 0 {
		return 0
	}
	secs := totalBits / bw
	// Each round pays at least one RTT of protocol latency on TCP.
	if c.Protocol == TCP {
		secs += c.RTT.Seconds()
	}
	return time.Duration(secs * float64(time.Second))
}

// SimulateRound returns the cost of one synchronous step with the given
// mini-batch size: slowest worker compute + shared transfer + aggregation.
func (c *Config) SimulateRound(batch int) Round {
	var slowest time.Duration
	for w := 0; w < c.Workers; w++ {
		if t := c.ComputeTime(w, batch); t > slowest {
			slowest = t
		}
	}
	return Round{
		Compute:   slowest,
		Transfer:  c.TransferTime(),
		Aggregate: c.AggTime + c.DecodeTime,
	}
}

// Clock is the simulated time accumulator for one experiment.
type Clock struct {
	now time.Duration
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d (negative d panics).
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("simnet: negative clock advance")
	}
	c.now += d
}

// MeasureAggregation times the GAR on synthetic worker gradients of the
// given dimension: rounds executions on freshly drawn Gaussian vectors, the
// median wall time. This is the "measured aggregation" input to Config.
func MeasureAggregation(g gar.GAR, n, dim, rounds int, seed int64) (time.Duration, error) {
	if rounds < 1 {
		rounds = 1
	}
	rng := rand.New(rand.NewSource(seed))
	grads := make([]tensor.Vector, n)
	for i := range grads {
		v := tensor.NewVector(dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		grads[i] = v
	}
	times := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		start := time.Now()
		if _, err := g.Aggregate(grads); err != nil {
			return 0, fmt.Errorf("simnet: measuring %s: %w", g.Name(), err)
		}
		times[r] = time.Since(start).Seconds()
	}
	med := tensor.Median(times)
	return time.Duration(med * float64(time.Second)), nil
}

// ModelAggregation returns an analytic aggregation cost for fast experiments
// and huge dimensions (Figure 5b's 25.5M-parameter ResNet50). Each rule's
// asymptotic shape follows its algorithm; the constants are calibrated so
// that at the paper's evaluation point (n=19, f=4, d=1.75M, b=250 on the
// Grid5000 profile) the headline numbers reproduce: MULTI-KRUM ≈ +19% and
// BULYAN ≈ +43% per-round overhead over the vanilla baseline, the framework
// Average ≈ +7%, and Draco's decode sits an order of magnitude above the
// TensorFlow-based systems independent of f. Real Go-kernel measurements
// (MeasureAggregation) have different constants — notably coordinate-wise
// median is slower than MULTI-KRUM in pure Go — which is recorded in
// EXPERIMENTS.md.
func ModelAggregation(name string, n, f, dim int) time.Duration {
	nf, df := float64(n), float64(dim)
	m := float64(n - f - 2)
	if m < 1 {
		m = 1
	}
	var secs float64
	switch name {
	case "average", "selective-average":
		secs = 2.1e-9 * nf * df
	case "median", "trimmed-mean":
		secs = 2.5e-9 * nf * math.Log2(math.Max(2, nf)) * df
	case "krum", "multi-krum":
		// O(n²d) distances + averaging the m selected gradients: the
		// second term is why a larger declared f (smaller m) buys a
		// slightly higher throughput (§4.2).
		secs = 2.4e-10*nf*nf*df*1.5 + 2.1e-9*m*df
	case "bulyan":
		theta := float64(n - 2*f)
		if theta < 1 {
			theta = 1
		}
		// Distances once (the reuse optimisation), then θ rescoring
		// iterations and the coordinate-wise median/average pass.
		secs = 2.4e-10*nf*nf*df*1.5 + 7.9e-10*theta*nf*df
	case "draco":
		// Majority-vote decode, linear in n·d with a large constant
		// ("the encoding and decoding time of Draco can be several
		// times larger than the computation time of ordinary SGD").
		secs = 1.66e-7 * nf * df
	default:
		secs = 2.1e-9 * nf * df
	}
	return time.Duration(secs * float64(time.Second))
}
