package simnet

import (
	"testing"
	"time"

	"aggregathor/internal/gar"
)

func TestComputeTimeScalesWithBatch(t *testing.T) {
	cfg := Grid5000(4, 1000)
	t1 := cfg.ComputeTime(0, 10)
	t2 := cfg.ComputeTime(0, 20)
	if t2 <= t1 {
		t.Fatalf("compute time must grow with batch: %v vs %v", t1, t2)
	}
	if t2 < t1*2-time.Nanosecond || t2 > t1*2+time.Nanosecond {
		t.Fatalf("compute time not linear in batch: %v vs 2x%v", t2, t1)
	}
}

func TestComputeTimeDracoMultiplier(t *testing.T) {
	cfg := Grid5000(4, 1000)
	base := cfg.ComputeTime(0, 10)
	cfg.GradsPerWorker = 9 // Draco r = 2f+1 with f=4
	if got := cfg.ComputeTime(0, 10); got < base*8 {
		t.Fatalf("Draco multiplier not applied: %v vs base %v", got, base)
	}
}

func TestWorkerSkewSpread(t *testing.T) {
	cfg := Grid5000(10, 1000)
	cfg.WorkerSkew = 0.2
	fast := cfg.ComputeTime(9, 100) // worker 9 gets speed 1.2
	slow := cfg.ComputeTime(0, 100) // worker 0 gets speed 0.8
	if fast >= slow {
		t.Fatalf("skewed workers should differ: fast %v, slow %v", fast, slow)
	}
	cfg.WorkerSkew = 0
	a, b := cfg.ComputeTime(0, 100), cfg.ComputeTime(9, 100)
	if a != b {
		t.Fatal("homogeneous workers must match")
	}
}

func TestEffectiveBandwidthTCPNoLoss(t *testing.T) {
	cfg := Grid5000(4, 1000)
	if got := cfg.EffectiveBandwidth(); got != cfg.LinkBandwidth {
		t.Fatalf("no-loss TCP bandwidth %v, want link rate %v", got, cfg.LinkBandwidth)
	}
}

func TestEffectiveBandwidthTCPCollapsesUnderLoss(t *testing.T) {
	cfg := Grid5000(4, 1000)
	cfg.DropRate = 0.10
	lossy := cfg.EffectiveBandwidth()
	if lossy >= cfg.LinkBandwidth/10 {
		t.Fatalf("TCP at 10%% loss should collapse: got %v of %v", lossy, cfg.LinkBandwidth)
	}
	cfg.DropRate = 0.01
	milder := cfg.EffectiveBandwidth()
	if milder <= lossy {
		t.Fatal("lower loss must give higher TCP bandwidth")
	}
}

func TestEffectiveBandwidthUDPIgnoresLoss(t *testing.T) {
	cfg := Grid5000(4, 1000)
	cfg.Protocol = UDP
	cfg.DropRate = 0.10
	if got := cfg.EffectiveBandwidth(); got != cfg.LinkBandwidth {
		t.Fatalf("UDP bandwidth %v, want full link rate", got)
	}
}

// The Figure-8(b) mechanism: at 10% loss, a UDP round is much faster than a
// TCP round for the same payload.
func TestUDPRoundBeatsTCPUnderLoss(t *testing.T) {
	tcp := Grid5000(19, 1_750_000)
	tcp.DropRate = 0.10
	udp := tcp
	udp.Protocol = UDP
	tTCP := tcp.TransferTime()
	tUDP := udp.TransferTime()
	if tUDP*6 > tTCP {
		t.Fatalf("UDP should be >6x faster under 10%% loss: udp %v, tcp %v", tUDP, tTCP)
	}
}

func TestTransferTimeGrowsWithWorkersAndDim(t *testing.T) {
	small := Grid5000(4, 1000)
	bigN := Grid5000(16, 1000)
	bigD := Grid5000(4, 100000)
	if bigN.TransferTime() <= small.TransferTime() {
		t.Fatal("transfer must grow with workers")
	}
	if bigD.TransferTime() <= small.TransferTime() {
		t.Fatal("transfer must grow with dimension")
	}
}

func TestSimulateRoundComposition(t *testing.T) {
	cfg := Grid5000(8, 1_750_000)
	cfg.AggTime = 50 * time.Millisecond
	cfg.DecodeTime = 10 * time.Millisecond
	r := cfg.SimulateRound(100)
	if r.Aggregate != 60*time.Millisecond {
		t.Fatalf("aggregate %v, want 60ms", r.Aggregate)
	}
	if r.Total() != r.Compute+r.Transfer+r.Aggregate {
		t.Fatal("total must be the sum of phases")
	}
	if r.Compute <= 0 || r.Transfer <= 0 {
		t.Fatalf("degenerate round %+v", r)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatal("fresh clock must read 0")
	}
	c.Advance(time.Second)
	c.Advance(500 * time.Millisecond)
	if c.Now() != 1500*time.Millisecond {
		t.Fatalf("clock %v", c.Now())
	}
}

func TestClockNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var c Clock
	c.Advance(-time.Second)
}

func TestMeasureAggregation(t *testing.T) {
	g, err := gar.New("multi-krum", 1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := MeasureAggregation(g, 7, 1000, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatalf("measured duration %v", d)
	}
}

func TestMeasureAggregationPropagatesErrors(t *testing.T) {
	g, err := gar.New("bulyan", 4) // needs n >= 19
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MeasureAggregation(g, 5, 100, 1, 1); err == nil {
		t.Fatal("want error from undersized cluster")
	}
}

// The cost-model ordering matches the paper's Figure 4 at the evaluation
// scale: average < multi-krum < median < bulyan (their measured aggregation
// shares were 27% multi-krum, 35% median, 52% bulyan).
func TestModelAggregationOrdering(t *testing.T) {
	n, f, d := 19, 4, 1_750_000
	avg := ModelAggregation("average", n, f, d)
	med := ModelAggregation("median", n, f, d)
	mk := ModelAggregation("multi-krum", n, f, d)
	bl := ModelAggregation("bulyan", n, f, d)
	if !(avg < mk && mk < med && med < bl) {
		t.Fatalf("ordering violated: avg=%v mk=%v med=%v bulyan=%v", avg, mk, med, bl)
	}
	dr := ModelAggregation("draco", n, f, d)
	if dr < 5*bl {
		t.Fatalf("draco decode (%v) should dwarf bulyan aggregation (%v)", dr, bl)
	}
}

// The paper's headline calibration point: at n=19, f=4, d=1.75M, b=250,
// MULTI-KRUM costs ≈19% and BULYAN ≈43% over the no-aggregation baseline.
func TestModelAggregationHeadlineOverheads(t *testing.T) {
	n, f, d := 19, 4, 1_756_426
	base := Grid5000(n, d)
	round := base.SimulateRound(250)
	baseline := (round.Compute + round.Transfer).Seconds()
	mk := ModelAggregation("multi-krum", n, f, d).Seconds() / baseline
	bl := ModelAggregation("bulyan", n, f, d).Seconds() / baseline
	if mk < 0.12 || mk > 0.30 {
		t.Fatalf("multi-krum overhead %.3f, want ≈0.19", mk)
	}
	if bl < 0.30 || bl > 0.60 {
		t.Fatalf("bulyan overhead %.3f, want ≈0.43", bl)
	}
	if !(mk < bl) {
		t.Fatal("multi-krum must be cheaper than bulyan")
	}
}

// A larger declared f yields a (weakly) cheaper aggregation for both rules —
// the counter-intuitive throughput gain of §4.2.
func TestModelAggregationFBenefit(t *testing.T) {
	n, d := 19, 1_750_000
	if ModelAggregation("multi-krum", n, 4, d) > ModelAggregation("multi-krum", n, 1, d) {
		t.Fatal("multi-krum should not get more expensive with larger f")
	}
	if ModelAggregation("bulyan", n, 4, d) >= ModelAggregation("bulyan", n, 1, d) {
		t.Fatal("bulyan must get cheaper with larger f (fewer iterations)")
	}
}

func TestModelAggregationUnknownFallsBack(t *testing.T) {
	if ModelAggregation("mystery", 10, 1, 100) <= 0 {
		t.Fatal("fallback cost must be positive")
	}
}

func TestProtocolString(t *testing.T) {
	if TCP.String() != "tcp" || UDP.String() != "udp" {
		t.Fatal("protocol names")
	}
	if Protocol(7).String() != "Protocol(7)" {
		t.Fatal("unknown protocol formatting")
	}
}

// Figure 5(a) shape: with a costly GAR, adding workers eventually yields
// diminishing throughput relative to plain averaging.
func TestThroughputShapeGARGap(t *testing.T) {
	dim := 1_750_000
	batchesPerSec := func(n int, aggName string, f int) float64 {
		cfg := Grid5000(n, dim)
		cfg.AggTime = ModelAggregation(aggName, n, f, dim)
		r := cfg.SimulateRound(100)
		return float64(n) / r.Total().Seconds()
	}
	// At n=4 the GARs are close; at n=18 bulyan lags multi-krum lags
	// average.
	gapSmall := batchesPerSec(4, "average", 0) - batchesPerSec(4, "bulyan", 0)
	gapBig := batchesPerSec(18, "average", 0) - batchesPerSec(18, "bulyan", 0)
	if gapBig <= gapSmall {
		t.Fatalf("GAR gap must widen with workers: %v -> %v", gapSmall, gapBig)
	}
	if batchesPerSec(18, "multi-krum", 4) <= batchesPerSec(18, "bulyan", 2) {
		t.Fatal("multi-krum should outpace bulyan at scale")
	}
}

func TestGrid5000Defaults(t *testing.T) {
	cfg := Grid5000(19, 1_756_426)
	if cfg.Workers != 19 || cfg.Dim != 1_756_426 {
		t.Fatalf("shape fields %+v", cfg)
	}
	if cfg.LinkBandwidth != 10e9 {
		t.Fatal("testbed is 10 Gbps Ethernet")
	}
	if cfg.BytesPerCoord != 4 {
		t.Fatal("wire format defaults to float32")
	}
	if cfg.Protocol != TCP || cfg.DropRate != 0 {
		t.Fatal("default transport must be reliable TCP")
	}
	if cfg.GradsPerWorker != 1 {
		t.Fatal("one gradient per worker per step by default")
	}
}

func TestTransferTimeIncludesRTTOnTCP(t *testing.T) {
	tcp := Grid5000(1, 1)
	udp := tcp
	udp.Protocol = UDP
	// With a 1-coordinate payload the transfer is dominated by the
	// protocol latency: TCP pays an RTT, UDP does not.
	if tcp.TransferTime() <= udp.TransferTime() {
		t.Fatalf("TCP (%v) must pay RTT over UDP (%v)", tcp.TransferTime(), udp.TransferTime())
	}
}
