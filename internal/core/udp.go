package core

import (
	"errors"
	"fmt"

	"aggregathor/internal/cluster"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/transport"
)

// ErrUDPUnsupported is returned for udp-backend configs that request
// features only the in-process simulator implements.
var ErrUDPUnsupported = errors.New("core: option not supported with the udp backend")

// runUDP executes one experiment on the lossy datagram-distributed backend:
// a cluster.UDPCluster on localhost, every model broadcast and gradient
// travelling real UDP sockets with seeded per-packet drop injection and
// §3.3 recoup of the lost coordinates, driven round-by-round by the same
// training loop as the other deployments. At DropRate 0 a udp run reproduces
// the in-process (and tcp) trajectories bit-for-bit; at DropRate > 0 the
// run stays a pure function of the configuration because the drop schedule
// and the recoup values are keyed on (seed, step, worker).
func runUDP(cfg Config) (*Result, error) {
	wire, err := transport.ParseWireFormat(cfg.WireFormat)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return runSocketBackend(cfg, ErrUDPUnsupported,
		func(factory func() *nn.Network, train *data.Dataset, rule gar.GAR, optimizer opt.Optimizer) (socketCluster, error) {
			return cluster.NewUDPCluster(cluster.UDPClusterConfig{
				Addr:          "127.0.0.1:0",
				Codec:         wire,
				ModelFactory:  factory,
				Workers:       cfg.Workers,
				GAR:           rule,
				Optimizer:     optimizer,
				Batch:         cfg.Batch,
				Train:         train,
				RoundTimeout:  cfg.RoundTimeout,
				DropRate:      cfg.DropRate,
				Recoup:        cfg.Recoup,
				ModelDropRate: cfg.ModelDropRate,
				ModelRecoup:   cfg.ModelRecoup,
				Byzantine:     cfg.Attacks,
				Seed:          cfg.Seed,
				L1:            cfg.L1,
				L2:            cfg.L2,
				Async:         cfg.asyncConfig(),
				Churn:         cfg.churnConfig(),
			})
		})
}
