// Package core is the AggregaThor framework facade: it wires the substrates
// (data, nn, gar, attack, draco, ps, transport, simnet, metrics) into one
// experiment runner mirroring the original runner.py command surface —
// experiment (model+dataset), aggregator, optimizer, learning rate, worker
// count, declared f, attacks, lossy links — and produces the accuracy /
// throughput / latency series that regenerate the paper's figures.
package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"aggregathor/internal/attack"
	"aggregathor/internal/cluster"
	"aggregathor/internal/data"
	"aggregathor/internal/draco"
	"aggregathor/internal/gar"
	"aggregathor/internal/metrics"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/simnet"
	"aggregathor/internal/transport"
)

// Experiment is a model+dataset preset (the --experiment flag).
type Experiment struct {
	// Name is the preset name.
	Name string
	// Make builds the train set, test set and a model factory from a
	// seed.
	Make func(seed int64) (train, test *data.Dataset, factory func() *nn.Network)
	// CostDim is the gradient dimension fed to the time model (the
	// paper-scale model this preset stands in for).
	CostDim int
	// FlopsPerSample is the per-sample compute cost for the time model.
	FlopsPerSample float64
}

// Experiments returns the built-in presets, sorted by name:
//
//   - "features-mlp": flat synthetic features + small MLP (fast; stands in
//     for the CIFAR CNN at Table-1 cost scale).
//   - "mnist": synthetic 28×28 images + MLP (the runner.py quickstart).
//   - "cnnet": synthetic 12×12 images + small CNN.
//   - "cifar-cnn": synthetic 32×32×3 + the full Table-1 CNN (slow; real
//     1.75M-parameter training).
func Experiments() []Experiment {
	exps := []Experiment{
		{
			Name: "features-mlp",
			Make: func(seed int64) (*data.Dataset, *data.Dataset, func() *nn.Network) {
				ds := data.SyntheticFeatures(1200, 24, 10, seed)
				ds.MinMaxScale()
				train, test := ds.Split(5.0 / 6.0)
				return train, test, func() *nn.Network {
					return nn.NewMLP(24, []int{48}, 10, rand.New(rand.NewSource(seed)))
				}
			},
			CostDim:        1_756_426, // Table-1 CNN
			FlopsPerSample: nn.CIFARCNNFlopsPerSample,
		},
		{
			Name: "mnist",
			Make: func(seed int64) (*data.Dataset, *data.Dataset, func() *nn.Network) {
				ds := data.SyntheticMNIST(1200, seed)
				ds.MinMaxScale()
				train, test := ds.Split(5.0 / 6.0)
				return train, test, func() *nn.Network {
					return nn.NewMLP(28*28, []int{64}, 10, rand.New(rand.NewSource(seed)))
				}
			},
			CostDim:        28*28*64 + 64 + 64*10 + 10,
			FlopsPerSample: 2 * 3 * (28*28*64 + 64*10),
		},
		{
			Name: "cnnet",
			Make: func(seed int64) (*data.Dataset, *data.Dataset, func() *nn.Network) {
				ds := data.Generate(data.Config{
					Samples: 900,
					Classes: 10,
					Shape:   nn.Shape{H: 12, W: 12, C: 1},
					Noise:   0.25,
					Seed:    seed,
				})
				ds.MinMaxScale()
				train, test := ds.Split(5.0 / 6.0)
				return train, test, func() *nn.Network {
					return nn.NewSmallCNN(nn.Shape{H: 12, W: 12, C: 1}, 10, rand.New(rand.NewSource(seed)))
				}
			},
			CostDim:        1_756_426,
			FlopsPerSample: nn.CIFARCNNFlopsPerSample,
		},
		{
			Name: "cifar-cnn",
			Make: func(seed int64) (*data.Dataset, *data.Dataset, func() *nn.Network) {
				ds := data.SyntheticCIFAR(600, seed)
				ds.MinMaxScale()
				train, test := ds.Split(5.0 / 6.0)
				return train, test, func() *nn.Network {
					return nn.NewCIFARCNN(rand.New(rand.NewSource(seed)))
				}
			},
			CostDim:        1_756_426,
			FlopsPerSample: nn.CIFARCNNFlopsPerSample,
		},
	}
	sort.SliceStable(exps, func(i, j int) bool { return exps[i].Name < exps[j].Name })
	return exps
}

// LookupExperiment resolves a preset by name.
func LookupExperiment(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	var names []string
	for _, e := range Experiments() {
		names = append(names, e.Name)
	}
	return Experiment{}, fmt.Errorf("core: unknown experiment %q (available: %v)", name, names)
}

// Backend names for Config.Backend.
const (
	// BackendInProcess is the default simulated deployment: workers are
	// method calls on in-process replicas, links are transport.Pipe values.
	BackendInProcess = "in-process"
	// BackendTCP is the socket-distributed deployment: workers are
	// goroutines speaking the binary wire protocol over real localhost TCP
	// connections (cluster.TCPCluster), driven by the same training loop.
	BackendTCP = "tcp"
	// BackendUDP is the lossy socket-distributed deployment: gradients are
	// chunked into real UDP datagrams (cluster.UDPCluster) with seeded
	// per-packet drop injection and §3.3 recoup of the lost coordinates —
	// the paper's lossyMPI channel over actual sockets.
	BackendUDP = "udp"
)

// Config is a full experiment description (the runner.py command line).
type Config struct {
	// Experiment is the model+dataset preset name.
	Experiment string
	// Backend selects the deployment substrate: "" or "in-process" for the
	// simulated cluster, "tcp" for the socket-distributed cluster, "udp"
	// for the lossy datagram-distributed cluster (DropRate and Recoup then
	// apply to the real gradient datagrams instead of in-process pipes).
	Backend string
	// Aggregator is the GAR name ("average", "median", "multi-krum",
	// "bulyan", ... or "draco" for the comparison baseline).
	Aggregator string
	// F is the declared Byzantine tolerance.
	F int
	// Workers is n (19 in the paper's evaluation).
	Workers int
	// Batch is the per-worker mini-batch size.
	Batch int
	// Optimizer is the update rule name (paper default "rmsprop").
	Optimizer string
	// LR is the initial learning rate (paper default 1e-3).
	LR float64
	// L1, L2 are regularisation weights.
	L1, L2 float64
	// Steps is the number of model updates to run.
	Steps int
	// EvalEvery evaluates test accuracy every k steps (default 10).
	EvalEvery int
	// Attacks assigns gradient-level attacks to worker ids.
	Attacks map[int]string
	// CorruptData lists worker ids whose samplers are poisoned
	// (Figure 7's corrupted-data worker).
	CorruptData []int
	// Vanilla selects the unpatched (vulnerable) server mode.
	Vanilla bool
	// HijackWorkers lists worker ids attempting remote parameter writes.
	HijackWorkers []int
	// UDPLinks is how many worker links use the lossy UDP transport.
	UDPLinks int
	// WireFormat selects the coordinate width on lossy links: "" or
	// "float64" (the default, lossless full-precision coordinates) or
	// "float32" (half the bytes per gradient — the paper's TensorFlow
	// deployments ship float32 tensors). The axis covers both the udp
	// backend's real datagrams and the in-process lossy pipes selected by
	// UDPLinks; reliable deployments (in-process method calls, tcp) always
	// carry float64 and reject a "float32" request instead of silently
	// ignoring it. Note the in-process lossy pipe historically hardwired
	// float32 while the udp backend defaulted to float64; both now follow
	// this one knob, defaulting to float64.
	WireFormat string
	// DropRate is the artificial packet drop probability on UDP links.
	DropRate float64
	// Recoup selects the lost-coordinate policy on UDP links.
	Recoup transport.RecoupPolicy
	// ModelDropRate is the artificial per-packet drop probability on
	// server→worker model broadcasts (footnote 12's unreliable model
	// channel). Only the udp backend implements a lossy model channel;
	// every other deployment rejects a non-zero value.
	ModelDropRate float64
	// ModelRecoup selects the worker-side policy for torn model
	// broadcasts on the udp backend: skip the round, or train on the last
	// complete model and submit a stale-tagged gradient.
	ModelRecoup cluster.ModelRecoupPolicy
	// Quorum, when positive, enables asynchronous rounds: the server
	// aggregates as soon as that many gradients (fresh or admitted-stale)
	// are in, instead of blocking on all n slots; rounds below quorum are
	// skipped. 0 means all n workers (lockstep strictness).
	Quorum int
	// Staleness is the asynchronous staleness bound τ: gradients tagged up
	// to τ steps behind the round are admitted, older ones dropped and
	// counted.
	Staleness int
	// SlowWorkers is the per-(step, worker) probability that the
	// deterministic ps.SlowSeed schedule marks a worker slow — it then
	// trains on a model 1..τ steps old (or sits the round out when its lag
	// breaches τ). Evaluated at both endpoints, so asynchronous runs stay a
	// pure function of the seed.
	SlowWorkers float64
	// ChurnRate, when positive, enables the deterministic worker-churn
	// schedule on the socket backends: each live worker draws a seeded
	// per-(step, worker) crash probability, tears its sockets down
	// abruptly when it fires, and rejoins ChurnDownSteps rounds later
	// through the bounded-backoff dialer, at most ChurnMaxRejoins times
	// before staying gone. Both endpoints replay the same ps.ChurnSeed
	// schedule, so which rounds each worker misses — and every
	// crash/rejoin counter — is a pure function of the seed. Requires
	// backend "tcp" or "udp"; incompatible with asynchronous rounds and
	// lossy model broadcasts (one unfillable slot must mean one thing).
	ChurnRate float64
	// ChurnDownSteps is how many rounds a crashed worker stays away
	// before its scheduled rejoin (required > 0 when ChurnRate > 0).
	ChurnDownSteps int
	// ChurnMaxRejoins caps how many times one worker may rejoin; a crash
	// past the cap is permanent (required > 0 when ChurnRate > 0).
	ChurnMaxRejoins int
	// Protocol switches the time model between TCP and UDP costing.
	Protocol simnet.Protocol
	// RTT overrides the simulated link round-trip time when positive
	// (the latency axis of scenario sweeps); zero keeps the Grid5000
	// default.
	RTT time.Duration
	// RoundTimeout bounds the collection phase of a tcp-backend round
	// (real wall-clock time, not the simulated clock); zero keeps the
	// cluster default of 30 seconds.
	RoundTimeout time.Duration
	// Seed drives all randomness.
	Seed int64
	// MeasureAgg measures real GAR wall time for the clock (one
	// measurement per run); when false the analytic model is used.
	MeasureAgg bool
	// ServerReplicas > 1 state-machine-replicates the parameter server
	// (§6's untrusted-server extension); workers adopt the 2/3-majority
	// model. ByzantineReplicas marks lying replicas.
	ServerReplicas    int
	ByzantineReplicas []int
	// CheckpointPath, when set, persists the model every CheckpointEvery
	// steps (default: at the end only) and the run resumes from the file
	// if it already exists.
	CheckpointPath  string
	CheckpointEvery int
}

// Result is one experiment's output series.
type Result struct {
	// Config echoes the experiment configuration.
	Config Config
	// AccuracyVsTime is top-1 accuracy against the simulated clock.
	AccuracyVsTime metrics.Series
	// AccuracyVsStep is top-1 accuracy against model updates.
	AccuracyVsStep metrics.Series
	// LossVsStep is mean honest training loss per evaluation point.
	LossVsStep metrics.Series
	// FinalAccuracy is the last evaluation.
	FinalAccuracy float64
	// Breakdown is the per-epoch latency decomposition (Figure 4).
	Breakdown metrics.Breakdown
	// Throughput is the aggregator-side gradient rate (Figure 5).
	Throughput metrics.Throughput
	// Diverged is true when parameters went non-finite (vanilla
	// TensorFlow's fate under attack).
	Diverged bool
	// Hijacked is true when a remote parameter write succeeded.
	Hijacked bool
	// SkippedRounds counts rounds lost to the GAR quorum check.
	SkippedRounds int
	// StaleGradients counts gradients accepted from stale-model
	// submissions across the run (udp backend with lossy model broadcasts
	// under the stale recoup policy).
	StaleGradients int
	// AdmittedStale counts gradients aggregated across the run that were
	// computed against a model up to τ steps old, per the asynchronous
	// slow-worker schedule.
	AdmittedStale int
	// DroppedTooStale counts slots the asynchronous schedule dropped
	// because the scheduled lag exceeded the staleness bound τ.
	DroppedTooStale int
	// Crashes counts scheduled worker crashes across the run (socket
	// backends with churn enabled).
	Crashes int
	// Rejoins counts scheduled rejoins the membership tracker admitted.
	Rejoins int
	// ReconnectAttempts counts dial attempts rejoining workers spent in
	// the bounded backoff ladder (equal to Rejoins on a loopback fabric
	// where every first attempt lands).
	ReconnectAttempts int
	// BelowBoundRounds counts rounds skipped because churn left fewer
	// live workers than the GAR's Byzantine-resilience bound n ≥ 2f+3.
	BelowBoundRounds int
	// ResumedFromStep is the checkpointed step index the run warm-started
	// from (0 for a fresh run).
	ResumedFromStep int
	// ModelDim is the trained model's parameter count (the dimension real
	// aggregation wall-time measurements should use).
	ModelDim int
}

// asyncConfig maps the experiment-level asynchronous-round knobs onto the
// parameter service's AsyncConfig — the single translation every backend
// shares.
func (c *Config) asyncConfig() ps.AsyncConfig {
	return ps.AsyncConfig{Quorum: c.Quorum, Staleness: c.Staleness, SlowRate: c.SlowWorkers}
}

// churnConfig maps the experiment-level churn knobs onto the parameter
// service's ChurnConfig — the single translation both socket backends share.
func (c *Config) churnConfig() ps.ChurnConfig {
	return ps.ChurnConfig{Rate: c.ChurnRate, DownSteps: c.ChurnDownSteps, MaxRejoins: c.ChurnMaxRejoins}
}

// applyDefaults fills unset fields with the paper's evaluation defaults.
func (c *Config) applyDefaults() {
	if c.Experiment == "" {
		c.Experiment = "features-mlp"
	}
	if c.Aggregator == "" {
		c.Aggregator = "multi-krum"
	}
	if c.Workers == 0 {
		c.Workers = 19
	}
	if c.Batch == 0 {
		c.Batch = 100
	}
	if c.Optimizer == "" {
		c.Optimizer = "rmsprop"
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.EvalEvery == 0 {
		c.EvalEvery = 10
	}
}

// buildWorkers assembles the worker list from the experiment description:
// samplers (possibly corrupted), gradient attacks, hijack flags, and lossy
// UDP pipes on the first UDPLinks workers.
func buildWorkers(cfg Config, train *data.Dataset) ([]ps.WorkerConfig, error) {
	corrupt := map[int]bool{}
	for _, w := range cfg.CorruptData {
		corrupt[w] = true
	}
	hijack := map[int]bool{}
	for _, w := range cfg.HijackWorkers {
		hijack[w] = true
	}
	workers := make([]ps.WorkerConfig, cfg.Workers)
	for i := range workers {
		var sampler data.Sampler = data.NewUniformSampler(train, ps.SamplerSeed(cfg.Seed, i))
		if corrupt[i] {
			sampler = &data.CorruptedSampler{
				Inner: sampler,
				Corruption: data.GarbagePixels{
					Scale: 100,
					Rng:   rand.New(rand.NewSource(cfg.Seed + int64(i))),
				},
			}
		}
		workers[i] = ps.WorkerConfig{
			Sampler:      sampler,
			Seed:         cfg.Seed + int64(i),
			HijackParams: hijack[i],
		}
		if name, ok := cfg.Attacks[i]; ok {
			atk, err := attack.New(name)
			if err != nil {
				return nil, err
			}
			workers[i].Attack = atk
		}
		if i < cfg.UDPLinks {
			// The pipe codec follows the WireFormat axis (default float64,
			// matching the udp backend) rather than the historical
			// hardwired float32.
			wire, err := transport.ParseWireFormat(cfg.WireFormat)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			workers[i].Pipe = transport.NewLossyPipe(
				wire, transport.DefaultMTU,
				cfg.DropRate, cfg.Recoup, cfg.Seed+int64(i)*17+5)
		}
	}
	return workers, nil
}

// Run executes one experiment.
func Run(cfg Config) (*Result, error) {
	cfg.applyDefaults()
	// Lossy model broadcasts exist only on the udp backend: the in-process
	// simulator and the tcp backend deliver models reliably, and silently
	// running the config loss-free would masquerade as the lossy-model
	// sweep the caller asked for.
	if cfg.Backend != BackendUDP && (cfg.ModelDropRate != 0 || cfg.ModelRecoup != cluster.ModelRecoupSkip) {
		return nil, fmt.Errorf("core: lossy model broadcasts (ModelDropRate/ModelRecoup) need backend %q, got %q",
			BackendUDP, cfg.Backend)
	}
	// Asynchronous rounds and lossy model broadcasts are two distinct
	// staleness regimes — the slow schedule vs torn broadcasts — and they
	// must not compose: an unfillable slot has to mean exactly one thing.
	if cfg.asyncConfig().Enabled() {
		if cfg.ModelDropRate != 0 || cfg.ModelRecoup != cluster.ModelRecoupSkip {
			return nil, fmt.Errorf("core: %w (Quorum/Staleness/SlowWorkers with ModelDropRate/ModelRecoup)", ps.ErrAsyncModelLoss)
		}
		if cfg.Aggregator == "draco" || cfg.ServerReplicas > 1 {
			return nil, errors.New("core: asynchronous rounds are not supported on the draco or replicated deployments")
		}
	}
	// Worker churn exists only where there are real sockets to tear down:
	// the in-process simulator has no connections to crash, and silently
	// running a churn config churn-free would masquerade as the robustness
	// sweep the caller asked for. The regime conflicts are re-checked by the
	// cluster constructors; naming them here gives scenario cells the same
	// loud failure without ever opening a socket.
	if err := cfg.churnConfig().Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if cfg.churnConfig().Enabled() {
		if cfg.Backend != BackendTCP && cfg.Backend != BackendUDP {
			return nil, fmt.Errorf("core: worker churn (ChurnRate/ChurnDownSteps/ChurnMaxRejoins) needs backend %q or %q, got %q",
				BackendTCP, BackendUDP, cfg.Backend)
		}
		if cfg.asyncConfig().Enabled() {
			return nil, fmt.Errorf("core: %w", ps.ErrChurnAsync)
		}
		if cfg.ModelDropRate != 0 || cfg.ModelRecoup != cluster.ModelRecoupSkip {
			return nil, fmt.Errorf("core: %w", ps.ErrChurnModelLoss)
		}
	}
	// The wire format is a lossy-link property: only the udp backend and
	// the in-process lossy pipes have a wire at all. A "float32" request on
	// a reliable deployment would silently train on float64 tensors, so it
	// is rejected the same way lossy model broadcasts are.
	wire, err := transport.ParseWireFormat(cfg.WireFormat)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if wire.Float32 && cfg.Backend != BackendUDP && cfg.UDPLinks == 0 {
		return nil, fmt.Errorf("core: wire format %q needs backend %q or UDPLinks > 0, got backend %q",
			transport.WireFloat32, BackendUDP, cfg.Backend)
	}
	switch cfg.Backend {
	case "", BackendInProcess:
	case BackendTCP:
		return runTCP(cfg)
	case BackendUDP:
		return runUDP(cfg)
	default:
		return nil, fmt.Errorf("core: unknown backend %q (want %s|%s|%s)",
			cfg.Backend, BackendInProcess, BackendTCP, BackendUDP)
	}
	if cfg.Aggregator == "draco" {
		return runDraco(cfg)
	}
	if cfg.ServerReplicas > 1 {
		return runReplicated(cfg)
	}
	exp, err := LookupExperiment(cfg.Experiment)
	if err != nil {
		return nil, err
	}
	train, test, factory := exp.Make(cfg.Seed)

	// "tf" is the vanilla TensorFlow baseline: plain averaging with no
	// framework aggregation cost on the clock (the paper's Average-GAR
	// deployment of AggregaThor costs ≈7% more than this baseline).
	aggName := cfg.Aggregator
	tfBaseline := aggName == "tf"
	if tfBaseline {
		aggName = "average"
	}
	rule, err := gar.New(aggName, cfg.F)
	if err != nil {
		return nil, err
	}
	optimizer, err := opt.New(cfg.Optimizer, opt.Fixed{Rate: cfg.LR})
	if err != nil {
		return nil, err
	}

	workers, err := buildWorkers(cfg, train)
	if err != nil {
		return nil, err
	}

	mode := ps.Patched
	if cfg.Vanilla {
		mode = ps.Vanilla
	}
	cl, err := ps.New(ps.Config{
		ModelFactory: factory,
		Workers:      workers,
		GAR:          rule,
		Optimizer:    optimizer,
		Batch:        cfg.Batch,
		Mode:         mode,
		L1:           cfg.L1,
		L2:           cfg.L2,
		Seed:         cfg.Seed,
		Async:        cfg.asyncConfig(),
	})
	if err != nil {
		return nil, err
	}

	round, err := simulatedRound(cfg, exp, rule, aggName, tfBaseline)
	if err != nil {
		return nil, err
	}

	res := &Result{Config: cfg}
	res.seriesNames(cfg.Aggregator)
	res.breakdown(cfg.Aggregator, round)

	// Checkpoint restore (warm start) when a checkpoint file exists.
	if cfg.CheckpointPath != "" {
		if step, params, err := nn.LoadCheckpointFile(cfg.CheckpointPath); err == nil {
			if err := cl.SetParams(params); err != nil {
				return nil, fmt.Errorf("core: restoring checkpoint: %w", err)
			}
			res.ResumedFromStep = step
		}
	}

	checkpoint := func(step int) error {
		if cfg.CheckpointPath == "" {
			return nil
		}
		return nn.SaveCheckpointFile(cfg.CheckpointPath, step, cl.Params())
	}
	hooks := loopHooks{
		finite:      func() bool { return cl.Params().IsFinite() },
		checkpoint:  checkpoint,
		resumedFrom: res.ResumedFromStep,
	}
	if err := runTraining(cfg, cl, test, round, res, hooks); err != nil {
		return nil, err
	}
	if err := checkpoint(res.ResumedFromStep + cfg.Steps); err != nil {
		return nil, err
	}
	return res, nil
}

// simulatedRound builds the paper-scale time model for one experiment — this
// experiment's cost profile on the Grid5000-like cluster, with aggregation
// time measured on real GAR execution or taken from the analytic model — and
// simulates one round. Both the in-process and the tcp backend cost their
// simulated clock through this one function, so identical configurations get
// identical time series on either backend.
func simulatedRound(cfg Config, exp Experiment, rule gar.GAR, aggName string, tfBaseline bool) (simnet.Round, error) {
	sim := simnet.Grid5000(cfg.Workers, exp.CostDim)
	sim.FlopsPerSample = exp.FlopsPerSample
	sim.Protocol = cfg.Protocol
	sim.DropRate = cfg.DropRate
	if cfg.RTT > 0 {
		sim.RTT = cfg.RTT
	}
	switch {
	case tfBaseline:
		sim.AggTime = 0
	case cfg.MeasureAgg:
		measured, err := simnet.MeasureAggregation(rule, cfg.Workers, exp.CostDim, 1, cfg.Seed)
		if err != nil {
			return simnet.Round{}, err
		}
		sim.AggTime = measured
	default:
		sim.AggTime = simnet.ModelAggregation(aggName, cfg.Workers, cfg.F, exp.CostDim)
	}
	return sim.SimulateRound(cfg.Batch), nil
}

// runReplicated executes the §6 replicated-server deployment: R server
// replicas, workers adopting the 2/3-majority model each round.
func runReplicated(cfg Config) (*Result, error) {
	if cfg.UDPLinks > 0 || cfg.Vanilla || len(cfg.HijackWorkers) > 0 {
		return nil, errors.New("core: option not supported with a replicated server")
	}
	exp, err := LookupExperiment(cfg.Experiment)
	if err != nil {
		return nil, err
	}
	train, test, factory := exp.Make(cfg.Seed)
	rule, err := gar.New(cfg.Aggregator, cfg.F)
	if err != nil {
		return nil, err
	}
	workers, err := buildWorkers(cfg, train)
	if err != nil {
		return nil, err
	}
	// Validate the optimizer name before handing out a factory.
	if _, err := opt.New(cfg.Optimizer, opt.Fixed{Rate: cfg.LR}); err != nil {
		return nil, err
	}
	cl, err := ps.NewReplicated(ps.ReplicatedConfig{
		ModelFactory:      factory,
		ServerReplicas:    cfg.ServerReplicas,
		ByzantineReplicas: cfg.ByzantineReplicas,
		Workers:           workers,
		GAR:               rule,
		OptimizerFactory: func() opt.Optimizer {
			o, _ := opt.New(cfg.Optimizer, opt.Fixed{Rate: cfg.LR})
			return o
		},
		Batch: cfg.Batch,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	sim := simnet.Grid5000(cfg.Workers, exp.CostDim)
	sim.FlopsPerSample = exp.FlopsPerSample
	sim.AggTime = simnet.ModelAggregation(cfg.Aggregator, cfg.Workers, cfg.F, exp.CostDim)
	round := sim.SimulateRound(cfg.Batch)

	res := &Result{Config: cfg}
	res.seriesNames(cfg.Aggregator + "-replicated")
	res.breakdown(cfg.Aggregator+"-replicated", round)
	if err := runTraining(cfg, cl, test, round, res, loopHooks{}); err != nil {
		return nil, err
	}
	return res, nil
}

// ErrDracoUnsupported is returned for Draco configs that request features
// the baseline does not implement.
var ErrDracoUnsupported = errors.New("core: option not supported with draco")

// runDraco executes the Draco comparison baseline with repetition coding.
func runDraco(cfg Config) (*Result, error) {
	if cfg.UDPLinks > 0 || cfg.Vanilla || len(cfg.HijackWorkers) > 0 {
		return nil, ErrDracoUnsupported
	}
	exp, err := LookupExperiment(cfg.Experiment)
	if err != nil {
		return nil, err
	}
	train, test, factory := exp.Make(cfg.Seed)
	optimizer, err := opt.New(cfg.Optimizer, opt.Fixed{Rate: cfg.LR})
	if err != nil {
		return nil, err
	}
	plan, err := draco.NewPlan(cfg.Workers, cfg.F, draco.Repetition)
	if err != nil {
		return nil, err
	}
	var byz []int
	for w := range cfg.Attacks {
		byz = append(byz, w)
	}
	sort.Ints(byz)
	cl, err := ps.NewDraco(ps.DracoConfig{
		ModelFactory:     factory,
		Plan:             plan,
		Optimizer:        optimizer,
		Batch:            cfg.Batch,
		DataSeed:         cfg.Seed,
		Dataset:          data.SharedBatch{DS: train},
		ByzantineWorkers: byz,
	})
	if err != nil {
		return nil, err
	}

	sim := simnet.Grid5000(cfg.Workers, exp.CostDim)
	sim.FlopsPerSample = exp.FlopsPerSample
	// Under the repetition scheme each worker computes one gradient per
	// step (the cluster computes 2f+1× more gradients per *effective*
	// batch); the dominant cost is the linear-in-n decode, which is why
	// the paper observes Draco's throughput to be f-insensitive and an
	// order of magnitude below the TensorFlow-based systems.
	sim.GradsPerWorker = 1
	sim.DecodeTime = simnet.ModelAggregation("draco", cfg.Workers, cfg.F, exp.CostDim)
	round := sim.SimulateRound(cfg.Batch)

	res := &Result{Config: cfg}
	res.seriesNames("draco")
	res.breakdown("draco", round)
	if err := runTraining(cfg, cl, test, round, res, loopHooks{}); err != nil {
		return nil, err
	}
	return res, nil
}

// ThroughputScan runs the Figure-5 sweep: batches/sec as a function of
// worker count for one aggregator, using the analytic time model (no
// training — the paper's throughput metric is purely systems-side).
func ThroughputScan(aggregator string, f int, workerCounts []int, dim int, flopsPerSample float64, batch int) map[int]float64 {
	out := make(map[int]float64, len(workerCounts))
	for _, n := range workerCounts {
		sim := simnet.Grid5000(n, dim)
		sim.FlopsPerSample = flopsPerSample
		switch aggregator {
		case "tf":
			// vanilla baseline: no aggregation cost on the clock
		case "draco":
			sim.DecodeTime = simnet.ModelAggregation("draco", n, f, dim)
		default:
			sim.AggTime = simnet.ModelAggregation(aggregator, n, f, dim)
		}
		round := sim.SimulateRound(batch)
		out[n] = float64(n) / round.Total().Seconds()
	}
	return out
}

