package core

import (
	"errors"
	"testing"

	"aggregathor/internal/metrics"
)

// assertSeriesEqual requires two metric series to match point-for-point,
// bit-exactly: the tcp backend's whole value proposition is that a socket
// round reproduces the in-process round, not merely approximates it.
func assertSeriesEqual(t *testing.T, name string, a, b metrics.Series) {
	t.Helper()
	if len(a.Points) != len(b.Points) {
		t.Fatalf("%s: %d points vs %d", name, len(a.Points), len(b.Points))
	}
	for i := range a.Points {
		p, q := a.Points[i], b.Points[i]
		if p.Step != q.Step || p.Time != q.Time || p.Value != q.Value {
			t.Fatalf("%s: point %d diverged: %+v vs %+v", name, i, p, q)
		}
	}
}

// TestTCPBackendMatchesInProcessTrajectories is the end-to-end
// reproducibility gate for the socket backend: with identical seeds the
// loss/accuracy trajectories of a tcp run must equal the in-process run's
// bit-for-bit — honest cells and Byzantine cells alike. The float64 wire
// codec is lossless and the worker sampler/attack seeds derive from the run
// seed through the shared ps formulas, so any divergence is a bug, not
// noise.
func TestTCPBackendMatchesInProcessTrajectories(t *testing.T) {
	cases := []struct {
		name    string
		attacks map[int]string
	}{
		{name: "honest"},
		{name: "blind-byzantine", attacks: map[int]string{6: "reversed"}},
		{name: "omniscient-byzantine", attacks: map[int]string{6: "omniscient"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Experiment: "features-mlp",
				Aggregator: "multi-krum",
				F:          1,
				Workers:    7,
				Batch:      16,
				Steps:      12,
				EvalEvery:  4,
				LR:         5e-3,
				Seed:       3,
				Attacks:    tc.attacks,
			}
			inproc, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Backend = BackendTCP
			dist, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSeriesEqual(t, "accuracy-vs-step", inproc.AccuracyVsStep, dist.AccuracyVsStep)
			assertSeriesEqual(t, "accuracy-vs-time", inproc.AccuracyVsTime, dist.AccuracyVsTime)
			assertSeriesEqual(t, "loss-vs-step", inproc.LossVsStep, dist.LossVsStep)
			if inproc.FinalAccuracy != dist.FinalAccuracy {
				t.Fatalf("final accuracy %v vs %v", inproc.FinalAccuracy, dist.FinalAccuracy)
			}
			if inproc.SkippedRounds != dist.SkippedRounds {
				t.Fatalf("skipped rounds %d vs %d", inproc.SkippedRounds, dist.SkippedRounds)
			}
			if inproc.Breakdown != dist.Breakdown {
				t.Fatalf("latency breakdown diverged: %+v vs %+v", inproc.Breakdown, dist.Breakdown)
			}
		})
	}
}

// TestTCPBackendRejectsSimulatorOnlyOptions pins the unsupported-option
// surface: simulator-only features must fail loudly instead of silently
// running in-process.
func TestTCPBackendRejectsSimulatorOnlyOptions(t *testing.T) {
	base := Config{Backend: BackendTCP, Workers: 3, Steps: 2, Batch: 4, Aggregator: "average"}
	mutate := []func(*Config){
		func(c *Config) { c.UDPLinks = 1 },
		func(c *Config) { c.Vanilla = true },
		func(c *Config) { c.HijackWorkers = []int{0} },
		func(c *Config) { c.CorruptData = []int{0} },
		func(c *Config) { c.CheckpointPath = "x.ckpt" },
		func(c *Config) { c.ServerReplicas = 3 },
		func(c *Config) { c.Aggregator = "draco" },
		func(c *Config) { c.DropRate = 0.1 },
	}
	for i, m := range mutate {
		cfg := base
		m(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrTCPUnsupported) {
			t.Fatalf("case %d: want ErrTCPUnsupported, got %v", i, err)
		}
	}
	if _, err := Run(Config{Backend: "grpc"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}
