package core

import (
	"strings"
	"testing"
)

// TestAsyncLockstepMatchesPlainAcrossBackends: at the experiment level, an
// async configuration demanding every slot fresh (Quorum = n) must reproduce
// the plain run's trajectories bit-for-bit on every backend, with zero
// staleness surfaced in the result.
func TestAsyncLockstepMatchesPlainAcrossBackends(t *testing.T) {
	for _, backend := range []string{BackendInProcess, BackendTCP, BackendUDP} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			base := Config{
				Experiment: "features-mlp",
				Backend:    backend,
				Aggregator: "median",
				F:          1,
				Workers:    7,
				Batch:      16,
				Steps:      8,
				EvalEvery:  4,
				LR:         5e-3,
				Seed:       13,
			}
			plain, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			asyncCfg := base
			asyncCfg.Quorum = 7
			async, err := Run(asyncCfg)
			if err != nil {
				t.Fatal(err)
			}
			if async.AdmittedStale != 0 || async.DroppedTooStale != 0 {
				t.Fatalf("quorum-n async surfaced staleness: admitted %d, dropped %d",
					async.AdmittedStale, async.DroppedTooStale)
			}
			assertSeriesEqual(t, "accuracy-vs-step", plain.AccuracyVsStep, async.AccuracyVsStep)
			assertSeriesEqual(t, "loss-vs-step", plain.LossVsStep, async.LossVsStep)
			if plain.FinalAccuracy != async.FinalAccuracy {
				t.Fatalf("final accuracy %v vs %v", plain.FinalAccuracy, async.FinalAccuracy)
			}
			if plain.SkippedRounds != async.SkippedRounds {
				t.Fatalf("skipped rounds %d vs %d", plain.SkippedRounds, async.SkippedRounds)
			}
		})
	}
}

// TestAsyncConfigGating: the experiment layer must reject every combination
// the async design cannot honour, with an error naming the conflict rather
// than a silently wrong run.
func TestAsyncConfigGating(t *testing.T) {
	base := Config{
		Experiment: "features-mlp",
		Aggregator: "median",
		Workers:    7,
		Batch:      16,
		Steps:      4,
		EvalEvery:  2,
		LR:         5e-3,
		Seed:       13,
	}
	cases := []struct {
		name string
		edit func(*Config)
		want string
	}{
		{"lossy model broadcasts", func(c *Config) {
			c.Backend = BackendUDP
			c.Quorum = 6
			c.ModelDropRate = 0.1
		}, "incompatible"},
		{"draco deployment", func(c *Config) {
			c.Aggregator = "draco"
			c.Quorum = 6
		}, "not supported"},
		{"replicated server", func(c *Config) {
			c.ServerReplicas = 3
			c.Quorum = 6
		}, "not supported"},
		{"slow workers without staleness", func(c *Config) {
			c.Quorum = 6
			c.SlowWorkers = 0.3
		}, "staleness"},
		{"quorum above n", func(c *Config) {
			c.Quorum = 8
		}, "quorum"},
	}
	for _, tc := range cases {
		cfg := base
		tc.edit(&cfg)
		_, err := Run(cfg)
		if err == nil {
			t.Errorf("%s: invalid configuration ran", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), tc.want) {
			t.Errorf("%s: error %q does not name the conflict (%q)", tc.name, err, tc.want)
		}
	}
}

// TestAsyncSlowRunSurfacesExactCounters: a slow-scheduled in-process run must
// report run totals that exactly match an independent evaluation of the
// schedule over every step — including skipped rounds, whose per-round
// staleness still counts toward the totals.
func TestAsyncSlowRunSurfacesExactCounters(t *testing.T) {
	const (
		workers = 7
		steps   = 30
		seed    = int64(13)
	)
	cfg := Config{
		Experiment:  "features-mlp",
		Aggregator:  "average",
		Workers:     workers,
		Batch:       16,
		Steps:       steps,
		EvalEvery:   10,
		LR:          5e-3,
		Seed:        seed,
		Quorum:      5,
		Staleness:   2,
		SlowWorkers: 0.4,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	async := cfg.asyncConfig()
	wantStale, wantDropped, wantSkipped := 0, 0, 0
	for s := 0; s < steps; s++ {
		received := workers
		for id := 0; id < workers; id++ {
			tag := async.ExpectedTag(seed, s, id)
			switch {
			case tag < 0:
				wantDropped++
				received--
			case tag < s:
				wantStale++
			}
		}
		if received < cfg.Quorum {
			wantSkipped++
		}
	}
	if res.AdmittedStale != wantStale || res.DroppedTooStale != wantDropped {
		t.Fatalf("run totals admitted=%d dropped=%d, schedule says %d/%d",
			res.AdmittedStale, res.DroppedTooStale, wantStale, wantDropped)
	}
	if res.SkippedRounds != wantSkipped {
		t.Fatalf("run skipped %d rounds, schedule says %d", res.SkippedRounds, wantSkipped)
	}
	if wantStale == 0 || wantDropped == 0 {
		t.Fatalf("schedule produced stale=%d dropped=%d; the counter assertions ran vacuously", wantStale, wantDropped)
	}
	if res.Diverged {
		t.Fatal("slow-scheduled run diverged")
	}
}
