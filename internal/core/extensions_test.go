package core

import (
	"path/filepath"
	"testing"
)

func TestRunReplicatedServer(t *testing.T) {
	res, err := Run(Config{
		Workers: 7, F: 1, Aggregator: "multi-krum",
		Optimizer: "momentum", LR: 0.1, Batch: 32,
		Steps: 150, EvalEvery: 50, Seed: 20,
		ServerReplicas:    4,
		ByzantineReplicas: []int{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.35 {
		t.Fatalf("replicated-server accuracy %v", res.FinalAccuracy)
	}
	if res.Breakdown.Name != "multi-krum-replicated" {
		t.Fatalf("breakdown name %q", res.Breakdown.Name)
	}
}

func TestRunReplicatedValidation(t *testing.T) {
	// Too many Byzantine replicas for the replication degree.
	_, err := Run(Config{
		Workers: 5, Aggregator: "average",
		Steps: 1, Seed: 21,
		ServerReplicas:    3,
		ByzantineReplicas: []int{0, 1},
	})
	if err == nil {
		t.Fatal("2 Byzantine of 3 replicas accepted")
	}
	// Unsupported option combinations fail loudly.
	_, err = Run(Config{
		Workers: 5, Aggregator: "average", Steps: 1,
		ServerReplicas: 3, UDPLinks: 1,
	})
	if err == nil {
		t.Fatal("UDP links with replicated server accepted")
	}
}

func TestRunCheckpointAndResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "model.ckpt")
	first, err := Run(Config{
		Workers: 5, F: 1, Aggregator: "multi-krum",
		Optimizer: "momentum", LR: 0.1, Batch: 16,
		Steps: 40, EvalEvery: 20, Seed: 22,
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.ResumedFromStep != 0 {
		t.Fatalf("fresh run reported resume from %d", first.ResumedFromStep)
	}

	// Second run resumes from the saved parameters and keeps improving.
	second, err := Run(Config{
		Workers: 5, F: 1, Aggregator: "multi-krum",
		Optimizer: "momentum", LR: 0.1, Batch: 16,
		Steps: 40, EvalEvery: 20, Seed: 22,
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if second.ResumedFromStep != 40 {
		t.Fatalf("resume step %d, want 40", second.ResumedFromStep)
	}
	start, ok := second.AccuracyVsStep.Points[0], true
	if !ok || start.Value < first.FinalAccuracy-0.1 {
		t.Fatalf("resumed run starts at %v, first run ended at %v",
			start.Value, first.FinalAccuracy)
	}
}

func TestRunCheckpointEvery(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "periodic.ckpt")
	_, err := Run(Config{
		Workers: 3, Aggregator: "average",
		Optimizer: "sgd", LR: 0.1, Batch: 8,
		Steps: 10, EvalEvery: 5, Seed: 23,
		CheckpointPath:  ckpt,
		CheckpointEvery: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The final checkpoint must exist and carry the final step index.
	res2, err := Run(Config{
		Workers: 3, Aggregator: "average",
		Optimizer: "sgd", LR: 0.1, Batch: 8,
		Steps: 1, EvalEvery: 1, Seed: 23,
		CheckpointPath: ckpt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ResumedFromStep != 10 {
		t.Fatalf("resume step %d, want 10", res2.ResumedFromStep)
	}
}

func TestRunWithMedianFamilyAggregators(t *testing.T) {
	for _, agg := range []string{"geometric-median", "mean-around-median", "trimmed-mean"} {
		res, err := Run(Config{
			Workers: 7, F: 1, Aggregator: agg,
			Optimizer: "momentum", LR: 0.1, Batch: 32,
			Steps: 100, EvalEvery: 50, Seed: 24,
			Attacks: map[int]string{3: "random"},
		})
		if err != nil {
			t.Fatalf("%s: %v", agg, err)
		}
		// Chance is 0.1; each weak rule must survive one blind attacker.
		if res.FinalAccuracy < 0.3 {
			t.Fatalf("%s accuracy %v under attack", agg, res.FinalAccuracy)
		}
	}
}

func TestAllPresetsProduceTrainableModels(t *testing.T) {
	// Every preset must generate consistent datasets and a model whose
	// gradient matches its parameter dimension — including one real
	// forward/backward through the full Table-1 CNN.
	for _, e := range Experiments() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			train, test, factory := e.Make(99)
			if train.Len() == 0 || test.Len() == 0 {
				t.Fatal("empty split")
			}
			if train.Shape.Flat() != train.X.Cols {
				t.Fatalf("shape %v vs X cols %d", train.Shape, train.X.Cols)
			}
			model := factory()
			if model.InShape().Flat() != train.X.Cols {
				t.Fatalf("model input %v vs data %d", model.InShape(), train.X.Cols)
			}
			x, y := train.Batch([]int{0, 1})
			loss, grad := model.Gradient(x, y)
			if loss <= 0 || grad.Dim() != model.NumParams() {
				t.Fatalf("loss=%v gradDim=%d params=%d", loss, grad.Dim(), model.NumParams())
			}
			if !grad.IsFinite() {
				t.Fatal("non-finite gradient")
			}
			if e.CostDim <= 0 || e.FlopsPerSample <= 0 {
				t.Fatal("missing cost profile")
			}
		})
	}
}

func TestThroughputScanTFBaseline(t *testing.T) {
	counts := []int{2, 18}
	tf := ThroughputScan("tf", 0, counts, 1_756_426, 2e8, 100)
	avg := ThroughputScan("average", 0, counts, 1_756_426, 2e8, 100)
	if tf[18] <= avg[18] {
		t.Fatalf("tf (%v) must beat framework averaging (%v): no aggregation cost", tf[18], avg[18])
	}
}
