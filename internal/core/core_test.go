package core

import (
	"errors"
	"testing"

	"aggregathor/internal/simnet"
	"aggregathor/internal/transport"
)

func TestExperimentsListed(t *testing.T) {
	exps := Experiments()
	if len(exps) < 4 {
		t.Fatalf("want >= 4 presets, got %d", len(exps))
	}
	for i := 1; i < len(exps); i++ {
		if exps[i-1].Name >= exps[i].Name {
			t.Fatal("presets must be sorted")
		}
	}
	for _, name := range []string{"features-mlp", "mnist", "cnnet", "cifar-cnn"} {
		if _, err := LookupExperiment(name); err != nil {
			t.Fatalf("LookupExperiment(%q): %v", name, err)
		}
	}
	if _, err := LookupExperiment("imagenet"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunDefaultsAndConvergence(t *testing.T) {
	res, err := Run(Config{
		Workers: 9, F: 2, Aggregator: "multi-krum",
		Optimizer: "momentum", LR: 0.1, Batch: 32,
		Steps: 150, EvalEvery: 25, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("final accuracy %v", res.FinalAccuracy)
	}
	if res.AccuracyVsTime.Len() == 0 || res.AccuracyVsStep.Len() == 0 {
		t.Fatal("series empty")
	}
	last, _ := res.AccuracyVsTime.Last()
	if last.Time <= 0 {
		t.Fatal("simulated clock did not advance")
	}
	if res.Diverged || res.Hijacked {
		t.Fatalf("unexpected flags: %+v", res)
	}
	if res.Throughput.BatchesPerSecond() <= 0 {
		t.Fatal("throughput not recorded")
	}
}

func TestRunUnknownNames(t *testing.T) {
	if _, err := Run(Config{Experiment: "nope", Steps: 1}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := Run(Config{Aggregator: "nope", Steps: 1}); err == nil {
		t.Fatal("unknown aggregator accepted")
	}
	if _, err := Run(Config{Optimizer: "nope", Steps: 1, Workers: 3, Aggregator: "average"}); err == nil {
		t.Fatal("unknown optimizer accepted")
	}
	if _, err := Run(Config{Attacks: map[int]string{0: "nope"}, Workers: 3, Aggregator: "average", Steps: 1}); err == nil {
		t.Fatal("unknown attack accepted")
	}
}

// Figure 7 shape: corrupted-data worker destroys averaging but not
// AggregaThor.
func TestRunCorruptedDataFig7(t *testing.T) {
	base := Config{
		Workers: 7, Batch: 32, Optimizer: "momentum", LR: 0.1,
		Steps: 300, EvalEvery: 50, Seed: 2,
		CorruptData: []int{3},
	}
	avg := base
	avg.Aggregator = "average"
	avgRes, err := Run(avg)
	if err != nil {
		t.Fatal(err)
	}
	robust := base
	robust.Aggregator = "multi-krum"
	robust.F = 1
	robRes, err := Run(robust)
	if err != nil {
		t.Fatal(err)
	}
	// Chance is 0.1 on the 10-class task.
	if robRes.FinalAccuracy < 0.35 {
		t.Fatalf("multi-krum accuracy %v under corrupted data", robRes.FinalAccuracy)
	}
	if avgRes.FinalAccuracy >= robRes.FinalAccuracy {
		t.Fatalf("averaging (%v) should underperform multi-krum (%v) under corruption",
			avgRes.FinalAccuracy, robRes.FinalAccuracy)
	}
}

// Vanilla server + hijacking worker: the §3.2 vulnerability.
func TestRunVanillaHijack(t *testing.T) {
	res, err := Run(Config{
		Workers: 5, Aggregator: "multi-krum", F: 1,
		Optimizer: "momentum", LR: 0.1, Batch: 16,
		Steps: 30, EvalEvery: 10, Seed: 3,
		Vanilla: true, HijackWorkers: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hijacked {
		t.Fatal("vanilla run must record the hijack")
	}
	if res.FinalAccuracy > 0.4 {
		t.Fatalf("hijacked training should not learn, accuracy %v", res.FinalAccuracy)
	}
}

func TestRunPatchedRefusesHijack(t *testing.T) {
	res, err := Run(Config{
		Workers: 7, Aggregator: "multi-krum", F: 1,
		Optimizer: "momentum", LR: 0.1, Batch: 32,
		Steps: 300, EvalEvery: 50, Seed: 3,
		HijackWorkers: []int{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hijacked {
		t.Fatal("patched run must refuse the hijack")
	}
	// Chance is 0.1 on the 10-class task; 0.35 demonstrates learning
	// proceeded despite the refused hijack attempts.
	if res.FinalAccuracy < 0.35 {
		t.Fatalf("accuracy %v", res.FinalAccuracy)
	}
}

// Figure 8 shape: UDP links with random-fill recoup still converge under a
// robust GAR.
func TestRunUDPLossyLinks(t *testing.T) {
	res, err := Run(Config{
		Workers: 9, Aggregator: "multi-krum", F: 2,
		Optimizer: "momentum", LR: 0.1, Batch: 32,
		Steps: 300, EvalEvery: 50, Seed: 4,
		UDPLinks: 2, DropRate: 0.10, Recoup: transport.FillRandom,
		Protocol: simnet.UDP,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Chance is 0.1; lossy links with random recoup still learn.
	if res.FinalAccuracy < 0.4 {
		t.Fatalf("accuracy %v over lossy UDP", res.FinalAccuracy)
	}
}

// UDP vs TCP costing under loss: same training, UDP clock runs faster.
func TestRunProtocolAffectsClockUnderLoss(t *testing.T) {
	base := Config{
		Workers: 5, Aggregator: "average",
		Optimizer: "sgd", LR: 0.1, Batch: 16,
		Steps: 20, EvalEvery: 10, Seed: 5,
		DropRate: 0.10,
	}
	tcp := base
	tcp.Protocol = simnet.TCP
	tcpRes, err := Run(tcp)
	if err != nil {
		t.Fatal(err)
	}
	udp := base
	udp.Protocol = simnet.UDP
	udp.UDPLinks = 1
	udp.Recoup = transport.FillRandom
	udpRes, err := Run(udp)
	if err != nil {
		t.Fatal(err)
	}
	tcpLast, _ := tcpRes.AccuracyVsTime.Last()
	udpLast, _ := udpRes.AccuracyVsTime.Last()
	if udpLast.Time >= tcpLast.Time {
		t.Fatalf("UDP clock (%v) should beat TCP clock (%v) at 10%% loss", udpLast.Time, tcpLast.Time)
	}
}

func TestRunDracoBaseline(t *testing.T) {
	res, err := Run(Config{
		Workers: 9, F: 1, Aggregator: "draco",
		Optimizer: "momentum", LR: 0.1, Batch: 32,
		Steps: 100, EvalEvery: 25, Seed: 6,
		Attacks: map[int]string{4: "reversed"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy < 0.5 {
		t.Fatalf("draco accuracy %v", res.FinalAccuracy)
	}
	if res.Breakdown.Name != "draco" {
		t.Fatal("missing draco breakdown")
	}
}

func TestRunDracoUnsupportedOptions(t *testing.T) {
	_, err := Run(Config{Aggregator: "draco", Workers: 9, F: 1, UDPLinks: 1, Steps: 1})
	if !errors.Is(err, ErrDracoUnsupported) {
		t.Fatalf("want ErrDracoUnsupported, got %v", err)
	}
}

// The paper's headline overheads: multi-krum and bulyan cost more wall-clock
// per step than plain averaging, bulyan most of all.
func TestRunOverheadOrdering(t *testing.T) {
	timeOf := func(agg string, f int) float64 {
		res, err := Run(Config{
			Workers: 19, F: f, Aggregator: agg,
			Optimizer: "sgd", LR: 0.2, Batch: 16,
			Steps: 10, EvalEvery: 5, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		last, _ := res.AccuracyVsTime.Last()
		return last.Time.Seconds()
	}
	avg := timeOf("average", 0)
	mk := timeOf("multi-krum", 4)
	bl := timeOf("bulyan", 4)
	if !(avg < mk && mk < bl) {
		t.Fatalf("overhead ordering violated: avg=%v mk=%v bulyan=%v", avg, mk, bl)
	}
}

func TestThroughputScanShapes(t *testing.T) {
	counts := []int{2, 6, 10, 14, 18}
	tf := ThroughputScan("average", 0, counts, 1_756_426, 2e8, 100)
	bl := ThroughputScan("bulyan", 2, counts, 1_756_426, 2e8, 100)
	draco := ThroughputScan("draco", 4, counts, 1_756_426, 2e8, 100)
	// Throughput grows with workers for the cheap GAR.
	if tf[18] <= tf[2] {
		t.Fatal("average throughput should grow with workers")
	}
	// Bulyan lags average at scale.
	if bl[18] >= tf[18] {
		t.Fatalf("bulyan (%v) should lag average (%v) at 18 workers", bl[18], tf[18])
	}
	// Draco sits far below the TensorFlow-based systems.
	if draco[18] >= tf[18]/4 {
		t.Fatalf("draco (%v) should sit far below average (%v)", draco[18], tf[18])
	}
}

func TestMeasuredAggregationPath(t *testing.T) {
	res, err := Run(Config{
		Experiment: "features-mlp",
		Workers:    7, F: 1, Aggregator: "multi-krum",
		Optimizer: "sgd", LR: 0.2, Batch: 8,
		Steps: 5, EvalEvery: 5, Seed: 8,
		MeasureAgg: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Breakdown.Aggregation <= 0 {
		t.Fatal("measured aggregation time missing")
	}
}
