package core

import (
	"errors"
	"testing"

	"aggregathor/internal/cluster"
	"aggregathor/internal/transport"
)

// TestUDPBackendMatchesInProcessTrajectories is the end-to-end
// reproducibility gate for the lossy-datagram backend: at DropRate 0 the
// loss/accuracy trajectories of a udp run must equal the in-process run's
// bit-for-bit — honest cells and Byzantine cells alike (the analogue of
// TestTCPBackendMatchesInProcessTrajectories). Every datagram arrives, the
// float64 wire codec is lossless, the worker seeds derive from the run seed
// through the shared ps formulas, and gradients are slotted by worker id, so
// any divergence is a bug, not noise.
func TestUDPBackendMatchesInProcessTrajectories(t *testing.T) {
	cases := []struct {
		name    string
		attacks map[int]string
	}{
		{name: "honest"},
		{name: "blind-byzantine", attacks: map[int]string{6: "reversed"}},
		{name: "omniscient-byzantine", attacks: map[int]string{6: "omniscient"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Experiment: "features-mlp",
				Aggregator: "multi-krum",
				F:          1,
				Workers:    7,
				Batch:      16,
				Steps:      12,
				EvalEvery:  4,
				LR:         5e-3,
				Seed:       3,
				Attacks:    tc.attacks,
			}
			inproc, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Backend = BackendUDP
			dist, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertSeriesEqual(t, "accuracy-vs-step", inproc.AccuracyVsStep, dist.AccuracyVsStep)
			assertSeriesEqual(t, "accuracy-vs-time", inproc.AccuracyVsTime, dist.AccuracyVsTime)
			assertSeriesEqual(t, "loss-vs-step", inproc.LossVsStep, dist.LossVsStep)
			if inproc.FinalAccuracy != dist.FinalAccuracy {
				t.Fatalf("final accuracy %v vs %v", inproc.FinalAccuracy, dist.FinalAccuracy)
			}
			if inproc.SkippedRounds != dist.SkippedRounds {
				t.Fatalf("skipped rounds %d vs %d", inproc.SkippedRounds, dist.SkippedRounds)
			}
			if inproc.Breakdown != dist.Breakdown {
				t.Fatalf("latency breakdown diverged: %+v vs %+v", inproc.Breakdown, dist.Breakdown)
			}
		})
	}
}

// TestUDPBackendLossyDeterministic pins run-level reproducibility under real
// loss: two udp runs at 10% drop with the same seed produce identical
// results, and the loss series is populated (the wire carries the loss
// metadata — it used to arrive as 0 over datagrams).
func TestUDPBackendLossyDeterministic(t *testing.T) {
	cfg := Config{
		Experiment: "features-mlp",
		Backend:    BackendUDP,
		Aggregator: "multi-krum",
		F:          1,
		Workers:    7,
		Batch:      16,
		Steps:      10,
		EvalEvery:  5,
		LR:         5e-3,
		Seed:       11,
		DropRate:   0.10,
		Recoup:     transport.FillRandom,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, "accuracy-vs-step", a.AccuracyVsStep, b.AccuracyVsStep)
	assertSeriesEqual(t, "loss-vs-step", a.LossVsStep, b.LossVsStep)
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("final accuracy %v vs %v across identical lossy runs", a.FinalAccuracy, b.FinalAccuracy)
	}
	last, ok := a.LossVsStep.Last()
	if !ok || last.Value == 0 {
		t.Fatalf("loss series empty or zero over the lossy wire: %+v ok=%v", last, ok)
	}
}

// TestUDPBackendRejectsSimulatorOnlyOptions pins the unsupported-option
// surface: simulator-only features must fail loudly instead of silently
// running in-process.
func TestUDPBackendRejectsSimulatorOnlyOptions(t *testing.T) {
	base := Config{Backend: BackendUDP, Workers: 3, Steps: 2, Batch: 4, Aggregator: "average"}
	mutate := []func(*Config){
		func(c *Config) { c.UDPLinks = 1 },
		func(c *Config) { c.Vanilla = true },
		func(c *Config) { c.HijackWorkers = []int{0} },
		func(c *Config) { c.CorruptData = []int{0} },
		func(c *Config) { c.CheckpointPath = "x.ckpt" },
		func(c *Config) { c.ServerReplicas = 3 },
		func(c *Config) { c.Aggregator = "draco" },
	}
	for i, m := range mutate {
		cfg := base
		m(&cfg)
		if _, err := Run(cfg); !errors.Is(err, ErrUDPUnsupported) {
			t.Fatalf("case %d: want ErrUDPUnsupported, got %v", i, err)
		}
	}
}

// TestModelLossRejectedOffUDPBackend pins the config-plumbing validation:
// lossy model broadcasts are a udp-backend feature, and every other
// deployment must fail loudly instead of silently running the model
// channel loss-free.
func TestModelLossRejectedOffUDPBackend(t *testing.T) {
	for i, backend := range []string{"", BackendInProcess, BackendTCP} {
		cfg := Config{Backend: backend, Workers: 3, Steps: 2, Batch: 4,
			Aggregator: "average", ModelDropRate: 0.1}
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: backend %q accepted ModelDropRate", i, backend)
		}
		cfg = Config{Backend: backend, Workers: 3, Steps: 2, Batch: 4,
			Aggregator: "average", ModelRecoup: cluster.ModelRecoupStale}
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: backend %q accepted ModelRecoup", i, backend)
		}
	}
}

// TestUDPBackendModelLossDeterministic pins run-level reproducibility of
// the footnote-12 channel at the core layer: two runs with 10% loss on
// both the model downlink and the gradient uplink under the stale policy
// produce identical series, and stale gradients are actually reported.
func TestUDPBackendModelLossDeterministic(t *testing.T) {
	cfg := Config{
		Experiment:    "features-mlp",
		Backend:       BackendUDP,
		Aggregator:    "multi-krum",
		F:             1,
		Workers:       7,
		Batch:         16,
		Steps:         10,
		EvalEvery:     5,
		LR:            5e-3,
		Seed:          11,
		DropRate:      0.10,
		Recoup:        transport.FillRandom,
		ModelDropRate: 0.10,
		ModelRecoup:   cluster.ModelRecoupStale,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, "accuracy-vs-step", a.AccuracyVsStep, b.AccuracyVsStep)
	assertSeriesEqual(t, "loss-vs-step", a.LossVsStep, b.LossVsStep)
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("final accuracy %v vs %v across identical lossy-model runs", a.FinalAccuracy, b.FinalAccuracy)
	}
	if a.StaleGradients == 0 {
		t.Fatal("10% model loss under the stale policy reported no stale gradients")
	}
	if a.StaleGradients != b.StaleGradients {
		t.Fatalf("stale gradient counts %d vs %d across identical runs", a.StaleGradients, b.StaleGradients)
	}
}
