package core

import (
	"testing"

	"aggregathor/internal/transport"
)

// TestWireFormatRejectedOffLossyLinks pins the config-plumbing validation
// for the wire-format axis: only deployments with a lossy wire (the udp
// backend, or in-process lossy pipes via UDPLinks) have a coordinate width
// to choose, and a "float32" request anywhere else must fail loudly rather
// than silently training on float64 tensors. Unknown names fail everywhere.
func TestWireFormatRejectedOffLossyLinks(t *testing.T) {
	for i, backend := range []string{"", BackendInProcess, BackendTCP} {
		cfg := Config{Backend: backend, Workers: 3, Steps: 2, Batch: 4,
			Aggregator: "average", WireFormat: transport.WireFloat32}
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: backend %q accepted wire format float32 without lossy links", i, backend)
		}
	}
	for i, backend := range []string{"", BackendInProcess, BackendTCP, BackendUDP} {
		cfg := Config{Backend: backend, Workers: 3, Steps: 2, Batch: 4,
			Aggregator: "average", WireFormat: "float16"}
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: backend %q accepted unknown wire format", i, backend)
		}
	}
}

// TestWireFormatFloat64IsExplicitDefault pins that naming the default
// ("float64") is a no-op: the run equals the empty-string run bit-for-bit
// on every backend that accepts it.
func TestWireFormatFloat64IsExplicitDefault(t *testing.T) {
	cfg := Config{
		Experiment: "features-mlp",
		Backend:    BackendUDP,
		Aggregator: "median",
		Workers:    5,
		Batch:      16,
		Steps:      6,
		EvalEvery:  3,
		LR:         5e-3,
		Seed:       7,
		DropRate:   0.10,
		Recoup:     transport.FillRandom,
	}
	implicit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.WireFormat = transport.WireFloat64
	explicit, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, "accuracy-vs-step", implicit.AccuracyVsStep, explicit.AccuracyVsStep)
	assertSeriesEqual(t, "loss-vs-step", implicit.LossVsStep, explicit.LossVsStep)
	if implicit.FinalAccuracy != explicit.FinalAccuracy {
		t.Fatalf("final accuracy %v vs %v between implicit and explicit float64",
			implicit.FinalAccuracy, explicit.FinalAccuracy)
	}
}

// TestUDPBackendFloat32ByzantineSmoke is the float32 Byzantine smoke cell:
// {multi-krum, median} × {reversed, non-finite} over real UDP datagrams at
// 10% loss on the float32 wire. Each cell must converge (the GAR discards
// the attacker despite quantisation), stay finite, and reproduce
// bit-identically across reruns — the float32 rounding is deterministic.
func TestUDPBackendFloat32ByzantineSmoke(t *testing.T) {
	for _, agg := range []string{"multi-krum", "median"} {
		for _, atk := range []string{"reversed", "non-finite"} {
			t.Run(agg+"/"+atk, func(t *testing.T) {
				cfg := Config{
					Experiment: "features-mlp",
					Backend:    BackendUDP,
					Aggregator: agg,
					F:          1,
					Workers:    7,
					Batch:      16,
					Steps:      8,
					EvalEvery:  4,
					LR:         5e-3,
					Seed:       13,
					DropRate:   0.10,
					Recoup:     transport.FillRandom,
					WireFormat: transport.WireFloat32,
					Attacks:    map[int]string{6: atk},
				}
				a, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if a.Diverged {
					t.Fatalf("%s diverged under %s on the float32 wire", agg, atk)
				}
				b, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertSeriesEqual(t, "accuracy-vs-step", a.AccuracyVsStep, b.AccuracyVsStep)
				assertSeriesEqual(t, "loss-vs-step", a.LossVsStep, b.LossVsStep)
				if a.FinalAccuracy != b.FinalAccuracy {
					t.Fatalf("final accuracy %v vs %v across identical float32 runs",
						a.FinalAccuracy, b.FinalAccuracy)
				}
			})
		}
	}
}

// TestInProcessLossyPipeFollowsWireFormat pins the codec-consistency fix:
// the in-process lossy pipe historically hardwired float32 while the udp
// backend defaulted to float64. Both now follow the WireFormat axis, so an
// in-process UDPLinks run and a float32 run must differ (the width knob is
// live) and each must be deterministic.
func TestInProcessLossyPipeFollowsWireFormat(t *testing.T) {
	cfg := Config{
		Experiment: "features-mlp",
		Aggregator: "median",
		Workers:    5,
		Batch:      16,
		Steps:      8,
		EvalEvery:  4,
		LR:         5e-3,
		Seed:       9,
		UDPLinks:   5,
		DropRate:   0.10,
		Recoup:     transport.FillRandom,
	}
	f64a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f64b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertSeriesEqual(t, "loss-vs-step", f64a.LossVsStep, f64b.LossVsStep)

	cfg.WireFormat = transport.WireFloat32
	f32, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := f64a.FinalAccuracy == f32.FinalAccuracy
	for i, p := range f64a.LossVsStep.Points {
		if i < len(f32.LossVsStep.Points) && p.Value != f32.LossVsStep.Points[i].Value {
			same = false
		}
	}
	if same {
		t.Fatal("float32 pipes produced the exact float64 trajectory: the wire-format knob is dead")
	}
}
