package core

import (
	"fmt"

	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
	"aggregathor/internal/ps"
	"aggregathor/internal/tensor"
)

// socketCluster is what a socket-distributed deployment owes the shared
// runner beyond the ps.Trainer surface: lifecycle and parameter access for
// the divergence hook.
type socketCluster interface {
	ps.Trainer
	Start() error
	Close() error
	Params() tensor.Vector
}

// runSocketBackend executes one experiment on a socket-distributed backend
// (tcp or udp): it rejects the simulator-only options, resolves the
// experiment, rule and optimizer, builds the cluster through the
// backend-specific constructor, and drives it with the same training loop
// and simulated clock as the in-process deployments.
func runSocketBackend(
	cfg Config,
	unsupported error,
	build func(factory func() *nn.Network, train *data.Dataset, rule gar.GAR, optimizer opt.Optimizer) (socketCluster, error),
) (*Result, error) {
	if cfg.UDPLinks > 0 || cfg.Vanilla || len(cfg.HijackWorkers) > 0 ||
		len(cfg.CorruptData) > 0 || cfg.CheckpointPath != "" ||
		cfg.ServerReplicas > 1 || cfg.Aggregator == "draco" {
		return nil, unsupported
	}
	exp, err := LookupExperiment(cfg.Experiment)
	if err != nil {
		return nil, err
	}
	train, test, factory := exp.Make(cfg.Seed)

	aggName := cfg.Aggregator
	tfBaseline := aggName == "tf"
	if tfBaseline {
		aggName = "average"
	}
	rule, err := gar.New(aggName, cfg.F)
	if err != nil {
		return nil, err
	}
	optimizer, err := opt.New(cfg.Optimizer, opt.Fixed{Rate: cfg.LR})
	if err != nil {
		return nil, err
	}

	cl, err := build(factory, train, rule, optimizer)
	if err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	defer cl.Close()

	round, err := simulatedRound(cfg, exp, rule, aggName, tfBaseline)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg}
	res.seriesNames(cfg.Aggregator)
	res.breakdown(cfg.Aggregator, round)
	hooks := loopHooks{
		finite: func() bool { return cl.Params().IsFinite() },
	}
	if err := runTraining(cfg, cl, test, round, res, hooks); err != nil {
		return nil, fmt.Errorf("core: %s backend: %w", cfg.Backend, err)
	}
	return res, nil
}
