package core

import (
	"aggregathor/internal/data"
	"aggregathor/internal/metrics"
	"aggregathor/internal/ps"
	"aggregathor/internal/simnet"
)

// loopHooks carries the optional per-deployment behaviours of the training
// loop. The zero value disables all of them.
type loopHooks struct {
	// finite, when non-nil, is polled after every round; returning false
	// marks the result diverged and stops the run (vanilla TensorFlow's
	// fate under attack).
	finite func() bool
	// checkpoint, when non-nil, is called with the absolute step index
	// after every CheckpointEvery rounds.
	checkpoint func(step int) error
	// resumedFrom offsets checkpoint step indexes after a warm start.
	resumedFrom int
}

// runTraining drives cfg.Steps synchronous rounds of t against the simulated
// clock, recording the accuracy/loss/throughput series into res. It is the
// single training loop behind every deployment flavour (plain, replicated,
// Draco) and the entry point the scenario campaign engine reuses.
func runTraining(cfg Config, t ps.Trainer, test *data.Dataset, round simnet.Round, res *Result, hooks loopHooks) error {
	res.ModelDim = t.Model().NumParams()
	var clock simnet.Clock
	evaluate := func(step int, loss float64) {
		acc := t.Model().Accuracy(test.X, test.Y)
		res.AccuracyVsTime.Add(clock.Now(), step, acc)
		res.AccuracyVsStep.Add(clock.Now(), step, acc)
		res.LossVsStep.Add(clock.Now(), step, loss)
		res.FinalAccuracy = acc
	}
	evaluate(0, 0)
	for step := 0; step < cfg.Steps; step++ {
		sr, err := t.Step()
		if err != nil {
			return err
		}
		clock.Advance(round.Total())
		res.Throughput.Observe(sr.Received, round.Total())
		if sr.Skipped {
			res.SkippedRounds++
		}
		res.StaleGradients += sr.Stale
		res.AdmittedStale += sr.AdmittedStale
		res.DroppedTooStale += sr.DroppedStale
		res.Crashes += sr.Crashes
		res.Rejoins += sr.Rejoins
		res.ReconnectAttempts += sr.ReconnectAttempts
		if sr.BelowBound {
			res.BelowBoundRounds++
		}
		if sr.Hijacked {
			res.Hijacked = true
		}
		if hooks.finite != nil && !hooks.finite() {
			res.Diverged = true
			break
		}
		if (step+1)%cfg.EvalEvery == 0 || step == cfg.Steps-1 {
			evaluate(step+1, sr.Loss)
		}
		if hooks.checkpoint != nil && cfg.CheckpointEvery > 0 && (step+1)%cfg.CheckpointEvery == 0 {
			if err := hooks.checkpoint(hooks.resumedFrom + step + 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// seriesNames labels the three metric series of one result.
func (r *Result) seriesNames(prefix string) {
	r.AccuracyVsTime.Name = prefix + "/accuracy-vs-time"
	r.AccuracyVsStep.Name = prefix + "/accuracy-vs-step"
	r.LossVsStep.Name = prefix + "/loss-vs-step"
}

// breakdown fills the Figure-4 latency decomposition from a simulated round.
func (r *Result) breakdown(name string, round simnet.Round) {
	r.Breakdown = metrics.Breakdown{
		Name:        name,
		ComputeComm: round.Compute + round.Transfer,
		Aggregation: round.Aggregate,
	}
}
