package core

import (
	"errors"

	"aggregathor/internal/cluster"
	"aggregathor/internal/data"
	"aggregathor/internal/gar"
	"aggregathor/internal/nn"
	"aggregathor/internal/opt"
)

// ErrTCPUnsupported is returned for tcp-backend configs that request
// features only the in-process simulator implements.
var ErrTCPUnsupported = errors.New("core: option not supported with the tcp backend")

// runTCP executes one experiment on the socket-distributed backend: a
// cluster.TCPCluster on localhost, every model broadcast and gradient
// travelling the binary wire protocol over real TCP connections, driven
// round-by-round by the same training loop as the in-process deployments.
// Worker seeds derive from the run seed through the shared ps formulas, so a
// tcp run and an in-process run of the same configuration produce identical
// loss/accuracy trajectories. A positive DropRate is rejected: TCP is a
// reliable transport, and silently running the config loss-free would
// masquerade as the lossy sweep the caller asked for (use the udp backend
// or UDPLinks).
func runTCP(cfg Config) (*Result, error) {
	if cfg.DropRate > 0 {
		return nil, ErrTCPUnsupported
	}
	return runSocketBackend(cfg, ErrTCPUnsupported,
		func(factory func() *nn.Network, train *data.Dataset, rule gar.GAR, optimizer opt.Optimizer) (socketCluster, error) {
			return cluster.NewTCPCluster(cluster.TCPClusterConfig{
				Addr:         "127.0.0.1:0",
				ModelFactory: factory,
				Workers:      cfg.Workers,
				GAR:          rule,
				Optimizer:    optimizer,
				Batch:        cfg.Batch,
				Train:        train,
				RoundTimeout: cfg.RoundTimeout,
				Byzantine:    cfg.Attacks,
				Recoup:       cfg.Recoup,
				Seed:         cfg.Seed,
				L1:           cfg.L1,
				L2:           cfg.L2,
				Async:        cfg.asyncConfig(),
				Churn:        cfg.churnConfig(),
			})
		})
}
