package core

import (
	"errors"
	"fmt"

	"aggregathor/internal/cluster"
	"aggregathor/internal/gar"
	"aggregathor/internal/opt"
)

// ErrTCPUnsupported is returned for tcp-backend configs that request
// features only the in-process simulator implements.
var ErrTCPUnsupported = errors.New("core: option not supported with the tcp backend")

// runTCP executes one experiment on the socket-distributed backend: a
// cluster.TCPCluster on localhost, every model broadcast and gradient
// travelling the binary wire protocol over real TCP connections, driven
// round-by-round by the same training loop as the in-process deployments.
// Worker seeds derive from the run seed through the shared ps formulas, so a
// tcp run and an in-process run of the same configuration produce identical
// loss/accuracy trajectories.
func runTCP(cfg Config) (*Result, error) {
	if cfg.UDPLinks > 0 || cfg.Vanilla || len(cfg.HijackWorkers) > 0 ||
		len(cfg.CorruptData) > 0 || cfg.CheckpointPath != "" ||
		cfg.ServerReplicas > 1 || cfg.Aggregator == "draco" {
		return nil, ErrTCPUnsupported
	}
	exp, err := LookupExperiment(cfg.Experiment)
	if err != nil {
		return nil, err
	}
	train, test, factory := exp.Make(cfg.Seed)

	aggName := cfg.Aggregator
	tfBaseline := aggName == "tf"
	if tfBaseline {
		aggName = "average"
	}
	rule, err := gar.New(aggName, cfg.F)
	if err != nil {
		return nil, err
	}
	optimizer, err := opt.New(cfg.Optimizer, opt.Fixed{Rate: cfg.LR})
	if err != nil {
		return nil, err
	}

	cl, err := cluster.NewTCPCluster(cluster.TCPClusterConfig{
		Addr:         "127.0.0.1:0",
		ModelFactory: factory,
		Workers:      cfg.Workers,
		GAR:          rule,
		Optimizer:    optimizer,
		Batch:        cfg.Batch,
		Train:        train,
		RoundTimeout: cfg.RoundTimeout,
		Byzantine:    cfg.Attacks,
		Recoup:       cfg.Recoup,
		Seed:         cfg.Seed,
		L1:           cfg.L1,
		L2:           cfg.L2,
	})
	if err != nil {
		return nil, err
	}
	if err := cl.Start(); err != nil {
		return nil, err
	}
	defer cl.Close()

	round, err := simulatedRound(cfg, exp, rule, aggName, tfBaseline)
	if err != nil {
		return nil, err
	}
	res := &Result{Config: cfg}
	res.seriesNames(cfg.Aggregator)
	res.breakdown(cfg.Aggregator, round)
	hooks := loopHooks{
		finite: func() bool { return cl.Params().IsFinite() },
	}
	if err := runTraining(cfg, cl, test, round, res, hooks); err != nil {
		return nil, fmt.Errorf("core: tcp backend: %w", err)
	}
	return res, nil
}
