package core

import "time"

// This file is core's wall-clock seam and the only core file on aggrevet's
// wallclock allowlist. Wait never touches a result path: it is a
// convenience for examples and deploy tooling that poll an external
// condition (a socket opening, a checkpoint appearing) with a liveness
// bound.

// Wait is a tiny helper for examples that poll a condition with a deadline.
func Wait(cond func() bool, timeout, poll time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(poll)
	}
	return cond()
}
