package nn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"aggregathor/internal/tensor"
)

// Checkpoint wire format: magic u32 | version u8 | step u64 | dim u64 |
// float64 coords (little endian). The original runner exposes
// --checkpoint-period / --checkpoint-delta; this is the equivalent
// persistence layer.
const (
	checkpointMagic   = 0xA66C4B90
	checkpointVersion = 1
)

// ErrBadCheckpoint is wrapped on malformed checkpoint data.
var ErrBadCheckpoint = errors.New("nn: malformed checkpoint")

// SaveCheckpoint writes the parameter vector and its step index to w.
func SaveCheckpoint(w io.Writer, step int, params tensor.Vector) error {
	bw := bufio.NewWriter(w)
	var hdr [4 + 1 + 8 + 8]byte
	binary.LittleEndian.PutUint32(hdr[0:], checkpointMagic)
	hdr[4] = checkpointVersion
	binary.LittleEndian.PutUint64(hdr[5:], uint64(step))
	binary.LittleEndian.PutUint64(hdr[13:], uint64(params.Dim()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: writing checkpoint header: %w", err)
	}
	var buf [8]byte
	for _, x := range params {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("nn: writing checkpoint body: %w", err)
		}
	}
	return bw.Flush()
}

// LoadCheckpoint reads a checkpoint written by SaveCheckpoint.
func LoadCheckpoint(r io.Reader) (step int, params tensor.Vector, err error) {
	br := bufio.NewReader(r)
	var hdr [4 + 1 + 8 + 8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: header: %v", ErrBadCheckpoint, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != checkpointMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrBadCheckpoint)
	}
	if hdr[4] != checkpointVersion {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, hdr[4])
	}
	step = int(binary.LittleEndian.Uint64(hdr[5:]))
	dim := binary.LittleEndian.Uint64(hdr[13:])
	const maxDim = 1 << 31 // refuse absurd allocations from corrupt headers
	if dim > maxDim {
		return 0, nil, fmt.Errorf("%w: dimension %d exceeds limit", ErrBadCheckpoint, dim)
	}
	params = tensor.NewVector(int(dim))
	var buf [8]byte
	for i := range params {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, nil, fmt.Errorf("%w: truncated body at coord %d: %v", ErrBadCheckpoint, i, err)
		}
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
	}
	return step, params, nil
}

// SaveCheckpointFile writes a checkpoint atomically (tmp + rename).
func SaveCheckpointFile(path string, step int, params tensor.Vector) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("nn: creating checkpoint: %w", err)
	}
	if err := SaveCheckpoint(f, step, params); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nn: closing checkpoint: %w", err)
	}
	return os.Rename(tmp, path)
}

// LoadCheckpointFile reads a checkpoint file.
func LoadCheckpointFile(path string) (step int, params tensor.Vector, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, fmt.Errorf("nn: opening checkpoint: %w", err)
	}
	defer f.Close()
	return LoadCheckpoint(f)
}
