package nn

import (
	"math"

	"aggregathor/internal/tensor"
)

// Tanh is the hyperbolic-tangent activation.
type Tanh struct {
	shape Shape
	out   []float64 // cached activations for the backward pass
}

// NewTanh builds a Tanh over the given sample shape.
func NewTanh(shape Shape) *Tanh { return &Tanh{shape: shape} }

// Name implements Layer.
func (t *Tanh) Name() string { return "tanh" }

// OutShape implements Layer.
func (t *Tanh) OutShape() Shape { return t.shape }

// NumParams implements Layer.
func (t *Tanh) NumParams() int { return 0 }

// Forward implements Layer.
func (t *Tanh) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = math.Tanh(v)
	}
	if cap(t.out) < len(out.Data) {
		t.out = make([]float64, len(out.Data))
	}
	t.out = t.out[:len(out.Data)]
	copy(t.out, out.Data)
	return out
}

// Backward implements Layer: d tanh(x)/dx = 1 − tanh²(x).
func (t *Tanh) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	gradIn := gradOut.Clone()
	for i := range gradIn.Data {
		y := t.out[i]
		gradIn.Data[i] *= 1 - y*y
	}
	return gradIn
}

// Params implements Layer.
func (t *Tanh) Params() []tensor.Vector { return nil }

// Grads implements Layer.
func (t *Tanh) Grads() []tensor.Vector { return nil }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	shape Shape
	out   []float64
}

// NewSigmoid builds a Sigmoid over the given sample shape.
func NewSigmoid(shape Shape) *Sigmoid { return &Sigmoid{shape: shape} }

// Name implements Layer.
func (s *Sigmoid) Name() string { return "sigmoid" }

// OutShape implements Layer.
func (s *Sigmoid) OutShape() Shape { return s.shape }

// NumParams implements Layer.
func (s *Sigmoid) NumParams() int { return 0 }

// Forward implements Layer.
func (s *Sigmoid) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := x.Clone()
	for i, v := range out.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if cap(s.out) < len(out.Data) {
		s.out = make([]float64, len(out.Data))
	}
	s.out = s.out[:len(out.Data)]
	copy(s.out, out.Data)
	return out
}

// Backward implements Layer: dσ/dx = σ(1−σ).
func (s *Sigmoid) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	gradIn := gradOut.Clone()
	for i := range gradIn.Data {
		y := s.out[i]
		gradIn.Data[i] *= y * (1 - y)
	}
	return gradIn
}

// Params implements Layer.
func (s *Sigmoid) Params() []tensor.Vector { return nil }

// Grads implements Layer.
func (s *Sigmoid) Grads() []tensor.Vector { return nil }
