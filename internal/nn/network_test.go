package nn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"aggregathor/internal/tensor"
)

// numericalGradient estimates dLoss/dParam by central differences over the
// network's flat parameter vector.
func numericalGradient(n *Network, x *tensor.Matrix, labels []int, eps float64) tensor.Vector {
	params := n.ParamsVector()
	grad := tensor.NewVector(params.Dim())
	for i := range params {
		orig := params[i]
		params[i] = orig + eps
		n.SetParamsVector(params)
		lp := n.Loss(x, labels)
		params[i] = orig - eps
		n.SetParamsVector(params)
		lm := n.Loss(x, labels)
		params[i] = orig
		grad[i] = (lp - lm) / (2 * eps)
	}
	n.SetParamsVector(params)
	return grad
}

func checkGradients(t *testing.T, n *Network, x *tensor.Matrix, labels []int, tol float64) {
	t.Helper()
	_, analytic := n.Gradient(x, labels)
	numeric := numericalGradient(n, x, labels, 1e-5)
	if analytic.Dim() != numeric.Dim() {
		t.Fatalf("gradient dims %d vs %d", analytic.Dim(), numeric.Dim())
	}
	for i := range analytic {
		diff := math.Abs(analytic[i] - numeric[i])
		scale := 1 + math.Abs(analytic[i]) + math.Abs(numeric[i])
		if diff/scale > tol {
			t.Fatalf("gradient mismatch at %d: analytic %v vs numeric %v", i, analytic[i], numeric[i])
		}
	}
}

func randBatch(rng *rand.Rand, rows, cols, classes int) (*tensor.Matrix, []int) {
	x := tensor.NewMatrix(rows, cols)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	y := make([]int, rows)
	for i := range y {
		y[i] = rng.Intn(classes)
	}
	return x, y
}

func TestDenseGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := NewNetwork(FlatShape(4), NewDense(4, 3, rng))
	x, y := randBatch(rng, 5, 4, 3)
	checkGradients(t, n, x, y, 1e-6)
}

func TestMLPGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := NewMLP(6, []int{8, 5}, 3, rng)
	x, y := randBatch(rng, 4, 6, 3)
	checkGradients(t, n, x, y, 1e-5)
}

func TestConvGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := Shape{H: 5, W: 5, C: 2}
	conv := NewConv2D(in, 3, 3, 3, 1, Same, rng)
	flat := NewFlatten(conv.OutShape())
	n := NewNetwork(in, conv, flat, NewDense(flat.OutShape().Flat(), 2, rng))
	x, y := randBatch(rng, 2, in.Flat(), 2)
	checkGradients(t, n, x, y, 1e-5)
}

func TestConvValidPaddingGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := Shape{H: 6, W: 6, C: 1}
	conv := NewConv2D(in, 3, 3, 2, 2, Valid, rng)
	flat := NewFlatten(conv.OutShape())
	n := NewNetwork(in, conv, flat, NewDense(flat.OutShape().Flat(), 2, rng))
	x, y := randBatch(rng, 2, in.Flat(), 2)
	checkGradients(t, n, x, y, 1e-5)
}

func TestMaxPoolGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	in := Shape{H: 6, W: 6, C: 2}
	conv := NewConv2D(in, 3, 3, 2, 1, Same, rng)
	pool := NewMaxPool2D(conv.OutShape(), 3, 2, Same)
	flat := NewFlatten(pool.OutShape())
	n := NewNetwork(in, conv, pool, flat, NewDense(flat.OutShape().Flat(), 2, rng))
	x, y := randBatch(rng, 2, in.Flat(), 2)
	checkGradients(t, n, x, y, 1e-5)
}

func TestReLUNetworkGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := NewNetwork(FlatShape(4),
		NewDense(4, 6, rng), NewReLU(FlatShape(6)), NewDense(6, 3, rng))
	// Offset inputs away from ReLU kinks for a clean finite-difference.
	x, y := randBatch(rng, 3, 4, 3)
	checkGradients(t, n, x, y, 1e-4)
}

func TestConvOutputShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name         string
		in           Shape
		k, stride    int
		pad          Padding
		wantH, wantW int
	}{
		{"same-s1", Shape{32, 32, 3}, 5, 1, Same, 32, 32},
		{"same-s2", Shape{32, 32, 3}, 3, 2, Same, 16, 16},
		{"valid-s1", Shape{32, 32, 3}, 5, 1, Valid, 28, 28},
		{"valid-s2", Shape{7, 7, 1}, 3, 2, Valid, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := NewConv2D(tc.in, tc.k, tc.k, 4, tc.stride, tc.pad, rng)
			got := c.OutShape()
			if got.H != tc.wantH || got.W != tc.wantW || got.C != 4 {
				t.Fatalf("got %v, want %dx%dx4", got, tc.wantH, tc.wantW)
			}
		})
	}
}

func TestPoolOutputShapes(t *testing.T) {
	p := NewMaxPool2D(Shape{32, 32, 64}, 3, 2, Same)
	if got := p.OutShape(); got.H != 16 || got.W != 16 || got.C != 64 {
		t.Fatalf("pool1 out %v, want 16x16x64", got)
	}
	p2 := NewMaxPool2D(p.OutShape(), 3, 2, Same)
	if got := p2.OutShape(); got.H != 8 || got.W != 8 || got.C != 64 {
		t.Fatalf("pool2 out %v, want 8x8x64", got)
	}
}

// Table 1: the CIFAR CNN must have the paper's ≈1.75M parameters.
func TestTable1CNNParamCount(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := NewCIFARCNN(rng)
	const want = 4864 + 102464 + (4096*384 + 384) + (384*192 + 192) + (192*10 + 10)
	if n.NumParams() != want {
		t.Fatalf("param count %d, want %d", n.NumParams(), want)
	}
	if n.NumParams() < 1_700_000 || n.NumParams() > 1_800_000 {
		t.Fatalf("param count %d outside Table 1's ~1.75M", n.NumParams())
	}
}

func TestTable1CNNForwardBackwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := NewCIFARCNN(rng)
	x, y := randBatch(rng, 2, 32*32*3, 10)
	loss, grad := n.Gradient(x, y)
	if math.IsNaN(loss) || loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	if grad.Dim() != n.NumParams() {
		t.Fatalf("grad dim %d, want %d", grad.Dim(), n.NumParams())
	}
	if !grad.IsFinite() {
		t.Fatal("non-finite gradient")
	}
}

func TestParamsVectorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := NewMLP(5, []int{7}, 3, rng)
	v := n.ParamsVector()
	v2 := v.Clone()
	for i := range v2 {
		v2[i] = float64(i)
	}
	n.SetParamsVector(v2)
	got := n.ParamsVector()
	for i := range got {
		if got[i] != float64(i) {
			t.Fatalf("round trip failed at %d", i)
		}
	}
}

func TestSetParamsVectorWrongDimPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := NewMLP(3, nil, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	n.SetParamsVector(tensor.NewVector(1))
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.NewMatrix(1, 3)
	copy(logits.Data, []float64{1, 2, 3})
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	// p(2) = e^3/(e^1+e^2+e^3) ≈ 0.665
	wantLoss := -math.Log(math.Exp(3) / (math.Exp(1) + math.Exp(2) + math.Exp(3)))
	if math.Abs(loss-wantLoss) > 1e-12 {
		t.Fatalf("loss %v, want %v", loss, wantLoss)
	}
	var sum float64
	for _, g := range grad.Row(0) {
		sum += g
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("softmax gradient rows must sum to 0, got %v", sum)
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := tensor.NewMatrix(1, 2)
	copy(logits.Data, []float64{1000, -1000})
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestSoftmaxBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SoftmaxCrossEntropy(tensor.NewMatrix(1, 2), []int{5})
}

func TestPredictAndAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	n := NewNetwork(FlatShape(2), NewDense(2, 2, rng))
	// Force weights so class = argmax(x).
	n.SetParamsVector(tensor.Vector{10, 0, 0, 10, 0, 0})
	x := tensor.NewMatrix(2, 2)
	copy(x.Data, []float64{1, 0, 0, 1})
	pred := n.Predict(x)
	if pred[0] != 0 || pred[1] != 1 {
		t.Fatalf("pred %v", pred)
	}
	if acc := n.Accuracy(x, []int{0, 1}); acc != 1 {
		t.Fatalf("accuracy %v, want 1", acc)
	}
	if acc := n.Accuracy(x, []int{1, 1}); acc != 0.5 {
		t.Fatalf("accuracy %v, want 0.5", acc)
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := NewMLP(4, []int{16}, 3, rng)
	// Learnable toy task: class = argmax of first 3 inputs.
	x := tensor.NewMatrix(60, 4)
	y := make([]int, 60)
	for i := 0; i < 60; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		best := 0
		for j := 1; j < 3; j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		y[i] = best
	}
	initial := n.Loss(x, y)
	params := n.ParamsVector()
	for step := 0; step < 200; step++ {
		_, grad := n.Gradient(x, y)
		params.Axpy(-0.5, grad)
		n.SetParamsVector(params)
	}
	final := n.Loss(x, y)
	if final >= initial*0.5 {
		t.Fatalf("training did not reduce loss: %v -> %v", initial, final)
	}
	if acc := n.Accuracy(x, y); acc < 0.8 {
		t.Fatalf("train accuracy %v < 0.8", acc)
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := NewDropout(FlatShape(1000), 0.5, rng)
	x := tensor.NewMatrix(1, 1000)
	for i := range x.Data {
		x.Data[i] = 1
	}
	eval := d.Forward(x, false)
	for _, v := range eval.Data {
		if v != 1 {
			t.Fatal("dropout must be identity at eval time")
		}
	}
	train := d.Forward(x, true)
	zeros := 0
	for _, v := range train.Data {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 350 || zeros > 650 {
		t.Fatalf("dropout zeroed %d of 1000 at rate 0.5", zeros)
	}
}

func TestDropoutBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(FlatShape(1), 1.0, rand.New(rand.NewSource(0)))
}

func TestNetworkSummaryMentionsLayers(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	n := NewCIFARCNN(rng)
	s := n.Summary()
	for _, want := range []string{"conv2d", "maxpool", "dense", "total", "1756426"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestSmallCNNTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	in := Shape{H: 8, W: 8, C: 1}
	n := NewSmallCNN(in, 2, rng)
	// Task: class 1 iff top-left quadrant is bright.
	x := tensor.NewMatrix(40, in.Flat())
	y := make([]int, 40)
	for i := 0; i < 40; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.Float64() * 0.1
		}
		if i%2 == 1 {
			for yy := 0; yy < 4; yy++ {
				for xx := 0; xx < 4; xx++ {
					row[yy*8+xx] = 1
				}
			}
			y[i] = 1
		}
	}
	params := n.ParamsVector()
	for step := 0; step < 60; step++ {
		_, grad := n.Gradient(x, y)
		params.Axpy(-0.3, grad)
		n.SetParamsVector(params)
	}
	if acc := n.Accuracy(x, y); acc < 0.9 {
		t.Fatalf("small CNN accuracy %v < 0.9", acc)
	}
}

func TestResNet50Constants(t *testing.T) {
	if ResNet50ParamCount < 23_000_000 || ResNet50ParamCount > 26_000_000 {
		t.Fatalf("ResNet50 param count %d implausible", ResNet50ParamCount)
	}
	if ResNet50FlopsPerSample <= CIFARCNNFlopsPerSample {
		t.Fatal("ResNet50 must cost more than the CIFAR CNN")
	}
}
