package nn

import (
	"math/rand"
)

// NewCIFARCNN builds the paper's Table-1 convolutional network for 32×32×3
// inputs:
//
//	Conv1 5×5×64 stride 1 (SAME) → ReLU → Pool1 3×3 stride 2 (SAME)
//	Conv2 5×5×64 stride 1 (SAME) → ReLU → Pool2 3×3 stride 2 (SAME)
//	FC 384 → ReLU → FC 192 → ReLU → FC 10
//
// Total ≈ 1.75M parameters (asserted by test against Table 1).
func NewCIFARCNN(rng *rand.Rand) *Network {
	in := Shape{H: 32, W: 32, C: 3}
	conv1 := NewConv2D(in, 5, 5, 64, 1, Same, rng)
	pool1 := NewMaxPool2D(conv1.OutShape(), 3, 2, Same)
	conv2 := NewConv2D(pool1.OutShape(), 5, 5, 64, 1, Same, rng)
	pool2 := NewMaxPool2D(conv2.OutShape(), 3, 2, Same)
	flat := NewFlatten(pool2.OutShape())
	fc1 := NewDense(flat.OutShape().Flat(), 384, rng)
	fc2 := NewDense(384, 192, rng)
	fc3 := NewDense(192, 10, rng)
	return NewNetwork(in,
		conv1, NewReLU(conv1.OutShape()), pool1,
		conv2, NewReLU(conv2.OutShape()), pool2,
		flat,
		fc1, NewReLU(FlatShape(384)),
		fc2, NewReLU(FlatShape(192)),
		fc3,
	)
}

// NewSmallCNN builds a scaled-down convolutional network for fast tests and
// experiments: inH×inW×inC input, one conv block, two dense layers.
func NewSmallCNN(in Shape, classes int, rng *rand.Rand) *Network {
	conv := NewConv2D(in, 3, 3, 8, 1, Same, rng)
	pool := NewMaxPool2D(conv.OutShape(), 2, 2, Same)
	flat := NewFlatten(pool.OutShape())
	fc1 := NewDense(flat.OutShape().Flat(), 32, rng)
	fc2 := NewDense(32, classes, rng)
	return NewNetwork(in,
		conv, NewReLU(conv.OutShape()), pool,
		flat,
		fc1, NewReLU(FlatShape(32)),
		fc2,
	)
}

// NewMLP builds a fully connected network: in → hidden... → classes with
// ReLU between layers. It is the default fast experiment model ("mnist" in
// the original runner).
func NewMLP(in int, hidden []int, classes int, rng *rand.Rand) *Network {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(prev, h, rng), NewReLU(FlatShape(h)))
		prev = h
	}
	layers = append(layers, NewDense(prev, classes, rng))
	return NewNetwork(FlatShape(in), layers...)
}

// ResNet50ParamCount is the parameter count of the ResNet50 model used for
// Figure 5(b). The network itself is not instantiated — the throughput
// experiment needs only the gradient dimension d and the per-batch compute
// cost, both supplied to the simulator (see internal/simnet).
const ResNet50ParamCount = 25_557_032

// ResNet50FlopsPerSample approximates the forward+backward FLOPs of ResNet50
// on one 224×224 image (≈3.8 GFLOPs forward ×3 for backward), feeding the
// Figure 5(b) cost model.
const ResNet50FlopsPerSample = 3.8e9 * 3

// CIFARCNNFlopsPerSample approximates the forward+backward FLOPs of the
// Table-1 CNN on one 32×32 image: conv1 ≈ 2·(32·32·64·75), conv2 ≈
// 2·(16·16·64·1600), dense ≈ 2·1.65M, ×3 for backward.
const CIFARCNNFlopsPerSample = (2*(32*32*64*75) + 2*(16*16*64*1600) + 2*1_650_000) * 3
