package nn

import (
	"fmt"
	"math"
	"math/rand"

	"aggregathor/internal/tensor"
)

// Padding selects the spatial padding rule.
type Padding int

const (
	// Same pads so that out = ceil(in/stride), the TensorFlow "SAME" rule.
	Same Padding = iota
	// Valid applies no padding.
	Valid
)

// Conv2D is a 2-D convolution with channel-last layout, implemented via
// im2col + matrix multiply (the standard CPU lowering).
type Conv2D struct {
	in         Shape
	kh, kw     int
	stride     int
	outC       int
	padding    Padding
	outH, outW int
	padT, padL int

	w  *tensor.Matrix // (kh*kw*inC) x outC
	b  tensor.Vector  // outC
	gw *tensor.Matrix
	gb tensor.Vector

	lastCols []*tensor.Matrix // per-sample im2col buffers from Forward
	lastRows int
}

// NewConv2D builds a convolution layer with He-normal initialisation.
func NewConv2D(in Shape, kh, kw, outC, stride int, padding Padding, rng *rand.Rand) *Conv2D {
	if stride < 1 {
		panic("nn: conv stride must be >= 1")
	}
	c := &Conv2D{in: in, kh: kh, kw: kw, stride: stride, outC: outC, padding: padding}
	switch padding {
	case Same:
		c.outH, c.padT, _ = samePaddingDims(in.H, kh, stride)
		c.outW, c.padL, _ = samePaddingDims(in.W, kw, stride)
	case Valid:
		c.outH = validPadding(in.H, kh, stride)
		c.outW = validPadding(in.W, kw, stride)
	default:
		panic(fmt.Sprintf("nn: unknown padding %d", padding))
	}
	patch := kh * kw * in.C
	c.w = tensor.NewMatrix(patch, outC)
	c.b = tensor.NewVector(outC)
	c.gw = tensor.NewMatrix(patch, outC)
	c.gb = tensor.NewVector(outC)
	std := math.Sqrt(2 / float64(patch))
	for i := range c.w.Data {
		c.w.Data[i] = rng.NormFloat64() * std
	}
	return c
}

func samePaddingDims(in, k, s int) (out, padBegin, padEnd int) {
	return samePadding(in, k, s)
}

// Name implements Layer.
func (c *Conv2D) Name() string {
	return fmt.Sprintf("conv2d(%dx%dx%d/%d)", c.kh, c.kw, c.outC, c.stride)
}

// OutShape implements Layer.
func (c *Conv2D) OutShape() Shape { return Shape{H: c.outH, W: c.outW, C: c.outC} }

// NumParams implements Layer.
func (c *Conv2D) NumParams() int { return c.kh*c.kw*c.in.C*c.outC + c.outC }

// im2col expands one sample (flat H*W*C row) into a (outH*outW) x
// (kh*kw*inC) patch matrix.
func (c *Conv2D) im2col(sample tensor.Vector) *tensor.Matrix {
	patch := c.kh * c.kw * c.in.C
	cols := tensor.NewMatrix(c.outH*c.outW, patch)
	inW, inC := c.in.W, c.in.C
	for oy := 0; oy < c.outH; oy++ {
		for ox := 0; ox < c.outW; ox++ {
			row := cols.Row(oy*c.outW + ox)
			idx := 0
			baseY := oy*c.stride - c.padT
			baseX := ox*c.stride - c.padL
			for ky := 0; ky < c.kh; ky++ {
				y := baseY + ky
				if y < 0 || y >= c.in.H {
					idx += c.kw * inC
					continue
				}
				for kx := 0; kx < c.kw; kx++ {
					x := baseX + kx
					if x < 0 || x >= c.in.W {
						idx += inC
						continue
					}
					src := (y*inW + x) * inC
					copy(row[idx:idx+inC], sample[src:src+inC])
					idx += inC
				}
			}
		}
	}
	return cols
}

// col2im scatters a patch-matrix gradient back onto a flat sample gradient.
func (c *Conv2D) col2im(cols *tensor.Matrix, dst tensor.Vector) {
	inW, inC := c.in.W, c.in.C
	for oy := 0; oy < c.outH; oy++ {
		for ox := 0; ox < c.outW; ox++ {
			row := cols.Row(oy*c.outW + ox)
			idx := 0
			baseY := oy*c.stride - c.padT
			baseX := ox*c.stride - c.padL
			for ky := 0; ky < c.kh; ky++ {
				y := baseY + ky
				if y < 0 || y >= c.in.H {
					idx += c.kw * inC
					continue
				}
				for kx := 0; kx < c.kw; kx++ {
					x := baseX + kx
					if x < 0 || x >= c.in.W {
						idx += inC
						continue
					}
					dstOff := (y*inW + x) * inC
					for ch := 0; ch < inC; ch++ {
						dst[dstOff+ch] += row[idx+ch]
					}
					idx += inC
				}
			}
		}
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != c.in.Flat() {
		panic(fmt.Sprintf("nn: conv expects %d inputs, got %d", c.in.Flat(), x.Cols))
	}
	c.lastRows = x.Rows
	c.lastCols = make([]*tensor.Matrix, x.Rows)
	out := tensor.NewMatrix(x.Rows, c.outH*c.outW*c.outC)
	prod := tensor.NewMatrix(c.outH*c.outW, c.outC)
	for s := 0; s < x.Rows; s++ {
		cols := c.im2col(x.Row(s))
		c.lastCols[s] = cols
		tensor.MatMul(prod, cols, c.w)
		prod.AddRowVector(c.b)
		copy(out.Row(s), prod.Data)
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	for i := range c.gw.Data {
		c.gw.Data[i] = 0
	}
	c.gb.Zero()
	gradIn := tensor.NewMatrix(c.lastRows, c.in.Flat())
	patch := c.kh * c.kw * c.in.C
	dOut := tensor.NewMatrix(c.outH*c.outW, c.outC)
	dCols := tensor.NewMatrix(c.outH*c.outW, patch)
	gwAcc := tensor.NewMatrix(patch, c.outC)
	for s := 0; s < c.lastRows; s++ {
		copy(dOut.Data, gradOut.Row(s))
		// Parameter gradients: gw += colsᵀ·dOut, gb += colsum(dOut).
		tensor.MatMulTransA(gwAcc, c.lastCols[s], dOut)
		for i, v := range gwAcc.Data {
			c.gw.Data[i] += v
		}
		c.gb.Add(dOut.ColumnSums())
		// Input gradient: dCols = dOut·wᵀ, scattered by col2im.
		tensor.MatMulTransB(dCols, dOut, c.w)
		c.col2im(dCols, gradIn.Row(s))
	}
	return gradIn
}

// Params implements Layer.
func (c *Conv2D) Params() []tensor.Vector {
	return []tensor.Vector{tensor.Vector(c.w.Data), c.b}
}

// Grads implements Layer.
func (c *Conv2D) Grads() []tensor.Vector {
	return []tensor.Vector{tensor.Vector(c.gw.Data), c.gb}
}

// MaxPool2D is a max-pooling layer with channel-last layout.
type MaxPool2D struct {
	in         Shape
	k, stride  int
	padding    Padding
	outH, outW int
	padT, padL int
	argmax     []int // flat input index winning each output position
	lastRows   int
}

// NewMaxPool2D builds a k×k max-pool with the given stride.
func NewMaxPool2D(in Shape, k, stride int, padding Padding) *MaxPool2D {
	p := &MaxPool2D{in: in, k: k, stride: stride, padding: padding}
	switch padding {
	case Same:
		p.outH, p.padT, _ = samePadding(in.H, k, stride)
		p.outW, p.padL, _ = samePadding(in.W, k, stride)
	case Valid:
		p.outH = validPadding(in.H, k, stride)
		p.outW = validPadding(in.W, k, stride)
	default:
		panic(fmt.Sprintf("nn: unknown padding %d", padding))
	}
	return p
}

// Name implements Layer.
func (p *MaxPool2D) Name() string { return fmt.Sprintf("maxpool(%dx%d/%d)", p.k, p.k, p.stride) }

// OutShape implements Layer.
func (p *MaxPool2D) OutShape() Shape { return Shape{H: p.outH, W: p.outW, C: p.in.C} }

// NumParams implements Layer.
func (p *MaxPool2D) NumParams() int { return 0 }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != p.in.Flat() {
		panic(fmt.Sprintf("nn: maxpool expects %d inputs, got %d", p.in.Flat(), x.Cols))
	}
	p.lastRows = x.Rows
	outFlat := p.outH * p.outW * p.in.C
	if cap(p.argmax) < x.Rows*outFlat {
		p.argmax = make([]int, x.Rows*outFlat)
	}
	p.argmax = p.argmax[:x.Rows*outFlat]
	out := tensor.NewMatrix(x.Rows, outFlat)
	inW, inC := p.in.W, p.in.C
	for s := 0; s < x.Rows; s++ {
		sample := x.Row(s)
		orow := out.Row(s)
		amax := p.argmax[s*outFlat : (s+1)*outFlat]
		for oy := 0; oy < p.outH; oy++ {
			for ox := 0; ox < p.outW; ox++ {
				baseY := oy*p.stride - p.padT
				baseX := ox*p.stride - p.padL
				for ch := 0; ch < inC; ch++ {
					best := math.Inf(-1)
					bestIdx := -1
					for ky := 0; ky < p.k; ky++ {
						y := baseY + ky
						if y < 0 || y >= p.in.H {
							continue
						}
						for kx := 0; kx < p.k; kx++ {
							xx := baseX + kx
							if xx < 0 || xx >= p.in.W {
								continue
							}
							idx := (y*inW+xx)*inC + ch
							if sample[idx] > best {
								best = sample[idx]
								bestIdx = idx
							}
						}
					}
					o := (oy*p.outW+ox)*inC + ch
					if bestIdx < 0 {
						orow[o] = 0
						amax[o] = -1
					} else {
						orow[o] = best
						amax[o] = bestIdx
					}
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	gradIn := tensor.NewMatrix(p.lastRows, p.in.Flat())
	outFlat := p.outH * p.outW * p.in.C
	for s := 0; s < p.lastRows; s++ {
		grow := gradOut.Row(s)
		irow := gradIn.Row(s)
		amax := p.argmax[s*outFlat : (s+1)*outFlat]
		for o, idx := range amax {
			if idx >= 0 {
				irow[idx] += grow[o]
			}
		}
	}
	return gradIn
}

// Params implements Layer.
func (p *MaxPool2D) Params() []tensor.Vector { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []tensor.Vector { return nil }
