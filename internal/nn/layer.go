package nn

import (
	"fmt"
	"math"
	"math/rand"

	"aggregathor/internal/tensor"
)

// Layer is one differentiable stage of a network. Forward runs the batch
// through the layer; Backward consumes the loss gradient with respect to the
// layer output and returns the gradient with respect to the layer input,
// writing parameter gradients as a side effect (overwriting, not
// accumulating, per call).
type Layer interface {
	// Name identifies the layer for diagnostics and Table-1 printing.
	Name() string
	// OutShape returns the output sample shape.
	OutShape() Shape
	// NumParams returns the number of trainable scalars.
	NumParams() int
	// Forward computes the layer output for a batch (rows = samples).
	// train toggles training-only behaviour (dropout).
	Forward(x *tensor.Matrix, train bool) *tensor.Matrix
	// Backward computes the input gradient from the output gradient.
	// It must be called after Forward on the same batch.
	Backward(gradOut *tensor.Matrix) *tensor.Matrix
	// Params returns views (not copies) of the trainable parameter
	// blocks; writing through them updates the layer.
	Params() []tensor.Vector
	// Grads returns views of the parameter gradient blocks, aligned with
	// Params.
	Grads() []tensor.Vector
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	in, out int
	w       *tensor.Matrix // in x out
	b       tensor.Vector  // out
	gw      *tensor.Matrix
	gb      tensor.Vector
	lastX   *tensor.Matrix
}

// NewDense builds a Dense layer with He-normal initialisation from rng.
func NewDense(in, out int, rng *rand.Rand) *Dense {
	d := &Dense{
		in: in, out: out,
		w:  tensor.NewMatrix(in, out),
		b:  tensor.NewVector(out),
		gw: tensor.NewMatrix(in, out),
		gb: tensor.NewVector(out),
	}
	std := math.Sqrt(2 / float64(in))
	for i := range d.w.Data {
		d.w.Data[i] = rng.NormFloat64() * std
	}
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("dense(%d->%d)", d.in, d.out) }

// OutShape implements Layer.
func (d *Dense) OutShape() Shape { return FlatShape(d.out) }

// NumParams implements Layer.
func (d *Dense) NumParams() int { return d.in*d.out + d.out }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if x.Cols != d.in {
		panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.in, x.Cols))
	}
	d.lastX = x
	out := tensor.NewMatrix(x.Rows, d.out)
	tensor.MatMul(out, x, d.w)
	out.AddRowVector(d.b)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	tensor.MatMulTransA(d.gw, d.lastX, gradOut)
	copy(d.gb, gradOut.ColumnSums())
	gradIn := tensor.NewMatrix(gradOut.Rows, d.in)
	tensor.MatMulTransB(gradIn, gradOut, d.w)
	return gradIn
}

// Params implements Layer.
func (d *Dense) Params() []tensor.Vector {
	return []tensor.Vector{tensor.Vector(d.w.Data), d.b}
}

// Grads implements Layer.
func (d *Dense) Grads() []tensor.Vector {
	return []tensor.Vector{tensor.Vector(d.gw.Data), d.gb}
}

// ReLU is the rectified linear activation.
type ReLU struct {
	shape Shape
	mask  []bool
}

// NewReLU builds a ReLU over the given sample shape.
func NewReLU(shape Shape) *ReLU { return &ReLU{shape: shape} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// OutShape implements Layer.
func (r *ReLU) OutShape() Shape { return r.shape }

// NumParams implements Layer.
func (r *ReLU) NumParams() int { return 0 }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := x.Clone()
	if cap(r.mask) < len(out.Data) {
		r.mask = make([]bool, len(out.Data))
	}
	r.mask = r.mask[:len(out.Data)]
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = 0
			r.mask[i] = false
		} else {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	gradIn := gradOut.Clone()
	for i := range gradIn.Data {
		if !r.mask[i] {
			gradIn.Data[i] = 0
		}
	}
	return gradIn
}

// Params implements Layer.
func (r *ReLU) Params() []tensor.Vector { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []tensor.Vector { return nil }

// Flatten reinterprets an image shape as a flat feature vector. With the
// row-major per-sample layout this is a no-op on data; only the declared
// shape changes.
type Flatten struct {
	in Shape
}

// NewFlatten builds a Flatten over the given input shape.
func NewFlatten(in Shape) *Flatten { return &Flatten{in: in} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// OutShape implements Layer.
func (f *Flatten) OutShape() Shape { return FlatShape(f.in.Flat()) }

// NumParams implements Layer.
func (f *Flatten) NumParams() int { return 0 }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Matrix, train bool) *tensor.Matrix { return x }

// Backward implements Layer.
func (f *Flatten) Backward(gradOut *tensor.Matrix) *tensor.Matrix { return gradOut }

// Params implements Layer.
func (f *Flatten) Params() []tensor.Vector { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []tensor.Vector { return nil }

// Dropout zeroes activations with probability Rate at train time, scaling
// the survivors by 1/(1-Rate) (inverted dropout); it is the identity at
// evaluation time.
type Dropout struct {
	shape Shape
	rate  float64
	rng   *rand.Rand
	mask  []float64
}

// NewDropout builds a Dropout layer. rate must be in [0, 1).
func NewDropout(shape Shape, rate float64, rng *rand.Rand) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %v out of [0,1)", rate))
	}
	return &Dropout{shape: shape, rate: rate, rng: rng}
}

// Name implements Layer.
func (d *Dropout) Name() string { return fmt.Sprintf("dropout(%.2f)", d.rate) }

// OutShape implements Layer.
func (d *Dropout) OutShape() Shape { return d.shape }

// NumParams implements Layer.
func (d *Dropout) NumParams() int { return 0 }

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	if !train || d.rate == 0 {
		d.mask = nil
		return x
	}
	out := x.Clone()
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]float64, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	keep := 1 - d.rate
	for i := range out.Data {
		if d.rng.Float64() < d.rate {
			d.mask[i] = 0
			out.Data[i] = 0
		} else {
			d.mask[i] = 1 / keep
			out.Data[i] *= d.mask[i]
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(gradOut *tensor.Matrix) *tensor.Matrix {
	if d.mask == nil {
		return gradOut
	}
	gradIn := gradOut.Clone()
	for i := range gradIn.Data {
		gradIn.Data[i] *= d.mask[i]
	}
	return gradIn
}

// Params implements Layer.
func (d *Dropout) Params() []tensor.Vector { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []tensor.Vector { return nil }
