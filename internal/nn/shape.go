// Package nn is the from-scratch neural-network substrate standing in for
// TensorFlow: dense and convolutional layers with backpropagation, the
// paper's Table-1 CNN (≈1.75M parameters), softmax cross-entropy, and flat
// parameter/gradient views the parameter server and the GARs operate on.
//
// Data layout: activations travel as tensor.Matrix values with one row per
// sample; image rows are flattened height×width×channels (channel-last, the
// TensorFlow convention).
package nn

import "fmt"

// Shape describes an activation tensor for one sample. Dense layers use
// {1, 1, C} with C the feature width.
type Shape struct {
	H, W, C int
}

// Flat returns the flattened per-sample dimension H*W*C.
func (s Shape) Flat() int { return s.H * s.W * s.C }

// String implements fmt.Stringer.
func (s Shape) String() string { return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C) }

// FlatShape returns the dense shape {1,1,n}.
func FlatShape(n int) Shape { return Shape{H: 1, W: 1, C: n} }

// samePadding returns the total SAME padding for one spatial axis given
// input extent in, kernel k and stride s (the TensorFlow rule:
// out = ceil(in/s), pad = max((out-1)*s + k - in, 0)).
func samePadding(in, k, s int) (out, padBegin, padEnd int) {
	out = (in + s - 1) / s
	total := (out-1)*s + k - in
	if total < 0 {
		total = 0
	}
	padBegin = total / 2
	padEnd = total - padBegin
	return out, padBegin, padEnd
}

// validPadding returns the output extent for VALID (no) padding.
func validPadding(in, k, s int) int {
	if in < k {
		return 0
	}
	return (in-k)/s + 1
}
