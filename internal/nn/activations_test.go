package nn

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

func TestTanhForward(t *testing.T) {
	layer := NewTanh(FlatShape(3))
	x := tensor.NewMatrix(1, 3)
	copy(x.Data, []float64{0, 1, -1})
	out := layer.Forward(x, true)
	if out.Data[0] != 0 {
		t.Fatalf("tanh(0) = %v", out.Data[0])
	}
	if math.Abs(out.Data[1]-math.Tanh(1)) > 1e-15 {
		t.Fatalf("tanh(1) = %v", out.Data[1])
	}
	if out.Data[2] != -out.Data[1] {
		t.Fatal("tanh must be odd")
	}
}

func TestSigmoidForward(t *testing.T) {
	layer := NewSigmoid(FlatShape(2))
	x := tensor.NewMatrix(1, 2)
	copy(x.Data, []float64{0, 100})
	out := layer.Forward(x, true)
	if out.Data[0] != 0.5 {
		t.Fatalf("sigmoid(0) = %v", out.Data[0])
	}
	if math.Abs(out.Data[1]-1) > 1e-12 {
		t.Fatalf("sigmoid(100) = %v", out.Data[1])
	}
}

func TestTanhNetworkGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	n := NewNetwork(FlatShape(4),
		NewDense(4, 6, rng), NewTanh(FlatShape(6)), NewDense(6, 3, rng))
	x, y := randBatch(rng, 3, 4, 3)
	checkGradients(t, n, x, y, 1e-5)
}

func TestSigmoidNetworkGradientCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n := NewNetwork(FlatShape(4),
		NewDense(4, 6, rng), NewSigmoid(FlatShape(6)), NewDense(6, 3, rng))
	x, y := randBatch(rng, 3, 4, 3)
	checkGradients(t, n, x, y, 1e-5)
}

func TestActivationLayerContracts(t *testing.T) {
	for _, l := range []Layer{NewTanh(FlatShape(5)), NewSigmoid(FlatShape(5))} {
		if l.NumParams() != 0 || l.Params() != nil || l.Grads() != nil {
			t.Fatalf("%s must be parameterless", l.Name())
		}
		if l.OutShape().Flat() != 5 {
			t.Fatalf("%s shape wrong", l.Name())
		}
	}
}

func TestTanhMLPTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	n := NewNetwork(FlatShape(4),
		NewDense(4, 16, rng), NewTanh(FlatShape(16)), NewDense(16, 2, rng))
	x := tensor.NewMatrix(40, 4)
	y := make([]int, 40)
	for i := 0; i < 40; i++ {
		row := x.Row(i)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		if row[0]+row[1] > 0 {
			y[i] = 1
		}
	}
	params := n.ParamsVector()
	for step := 0; step < 150; step++ {
		_, grad := n.Gradient(x, y)
		params.Axpy(-0.5, grad)
		n.SetParamsVector(params)
	}
	if acc := n.Accuracy(x, y); acc < 0.85 {
		t.Fatalf("tanh MLP accuracy %v", acc)
	}
}
