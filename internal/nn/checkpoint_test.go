package nn

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"aggregathor/internal/tensor"
)

func TestCheckpointRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := tensor.NewVector(1000)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, 42, params); err != nil {
		t.Fatal(err)
	}
	step, got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if step != 42 {
		t.Fatalf("step %d, want 42", step)
	}
	for i := range params {
		if got[i] != params[i] {
			t.Fatalf("coord %d mismatch", i)
		}
	}
}

func TestCheckpointPreservesNonFinite(t *testing.T) {
	params := tensor.Vector{math.NaN(), math.Inf(1), math.Inf(-1)}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, 0, params); err != nil {
		t.Fatal(err)
	}
	_, got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got[0]) || !math.IsInf(got[1], 1) || !math.IsInf(got[2], -1) {
		t.Fatalf("non-finite coords mangled: %v", got)
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		make([]byte, 21), // zero magic
	}
	for i, raw := range cases {
		if _, _, err := LoadCheckpoint(bytes.NewReader(raw)); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("case %d: want ErrBadCheckpoint, got %v", i, err)
		}
	}
}

func TestCheckpointRejectsTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, 1, tensor.Vector{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:buf.Len()-8]
	if _, _, err := LoadCheckpoint(bytes.NewReader(raw)); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("want ErrBadCheckpoint, got %v", err)
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	params := tensor.Vector{1.5, -2.5, 3.5}
	if err := SaveCheckpointFile(path, 7, params); err != nil {
		t.Fatal(err)
	}
	step, got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if step != 7 || got.Dim() != 3 || got[0] != 1.5 {
		t.Fatalf("round trip got step=%d params=%v", step, got)
	}
}

func TestCheckpointFileMissing(t *testing.T) {
	if _, _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "nope.ckpt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestCheckpointRestoresNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n1 := NewMLP(6, []int{8}, 3, rng)
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, 9, n1.ParamsVector()); err != nil {
		t.Fatal(err)
	}
	n2 := NewMLP(6, []int{8}, 3, rand.New(rand.NewSource(99)))
	_, params, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n2.SetParamsVector(params)
	x, y := randBatch(rand.New(rand.NewSource(3)), 4, 6, 3)
	if n1.Loss(x, y) != n2.Loss(x, y) {
		t.Fatal("restored network differs from original")
	}
}
