package nn

import (
	"fmt"
	"math"
	"strings"

	"aggregathor/internal/tensor"
)

// Network is a feed-forward stack of layers with flat parameter/gradient
// views, the unit of state the parameter server replicates to workers.
type Network struct {
	inShape Shape
	layers  []Layer
	dim     int
}

// NewNetwork assembles a network over the given input shape. The caller is
// responsible for layer shape compatibility (checked at first Forward).
func NewNetwork(in Shape, layers ...Layer) *Network {
	n := &Network{inShape: in, layers: layers}
	for _, l := range layers {
		n.dim += l.NumParams()
	}
	return n
}

// InShape returns the per-sample input shape.
func (n *Network) InShape() Shape { return n.inShape }

// Layers returns the layer stack (read-only by convention).
func (n *Network) Layers() []Layer { return n.layers }

// NumParams returns the total trainable parameter count d.
func (n *Network) NumParams() int { return n.dim }

// Forward runs a batch through the network and returns the logits.
func (n *Network) Forward(x *tensor.Matrix, train bool) *tensor.Matrix {
	out := x
	for _, l := range n.layers {
		out = l.Forward(out, train)
	}
	return out
}

// Backward propagates the loss gradient through the stack, filling each
// layer's parameter gradients.
func (n *Network) Backward(gradOut *tensor.Matrix) {
	g := gradOut
	for i := len(n.layers) - 1; i >= 0; i-- {
		g = n.layers[i].Backward(g)
	}
}

// ParamsVector copies all parameters into one flat vector of length
// NumParams, in layer order.
func (n *Network) ParamsVector() tensor.Vector {
	out := tensor.NewVector(n.dim)
	off := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			copy(out[off:off+len(p)], p)
			off += len(p)
		}
	}
	return out
}

// SetParamsVector loads a flat parameter vector into the layers. It panics
// on dimension mismatch.
func (n *Network) SetParamsVector(v tensor.Vector) {
	if v.Dim() != n.dim {
		panic(fmt.Sprintf("nn: SetParamsVector dimension %d, want %d", v.Dim(), n.dim))
	}
	off := 0
	for _, l := range n.layers {
		for _, p := range l.Params() {
			copy(p, v[off:off+len(p)])
			off += len(p)
		}
	}
}

// GradsVector copies all parameter gradients into one flat vector aligned
// with ParamsVector.
func (n *Network) GradsVector() tensor.Vector {
	out := tensor.NewVector(n.dim)
	off := 0
	for _, l := range n.layers {
		for _, g := range l.Grads() {
			copy(out[off:off+len(g)], g)
			off += len(g)
		}
	}
	return out
}

// Gradient computes the mini-batch loss and fills the flat gradient: one
// worker step (forward, softmax cross-entropy, backward).
func (n *Network) Gradient(x *tensor.Matrix, labels []int) (loss float64, grad tensor.Vector) {
	logits := n.Forward(x, true)
	loss, dLogits := SoftmaxCrossEntropy(logits, labels)
	n.Backward(dLogits)
	return loss, n.GradsVector()
}

// Loss computes the mean loss of a batch without touching gradients.
func (n *Network) Loss(x *tensor.Matrix, labels []int) float64 {
	logits := n.Forward(x, false)
	loss, _ := SoftmaxCrossEntropy(logits, labels)
	return loss
}

// Predict returns the argmax class for each row of x.
func (n *Network) Predict(x *tensor.Matrix) []int {
	logits := n.Forward(x, false)
	out := make([]int, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}

// Accuracy returns the top-1 accuracy of the network on (x, labels) — the
// paper's "top-1 cross-accuracy" metric.
func (n *Network) Accuracy(x *tensor.Matrix, labels []int) float64 {
	if x.Rows == 0 {
		return 0
	}
	pred := n.Predict(x)
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(pred))
}

// Summary renders a Table-1-style parameter table of the network.
func (n *Network) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %-12s %12s\n", "layer", "output", "params")
	fmt.Fprintf(&b, "%-22s %-12s %12s\n", "input", n.inShape.String(), "0")
	for _, l := range n.layers {
		fmt.Fprintf(&b, "%-22s %-12s %12d\n", l.Name(), l.OutShape().String(), l.NumParams())
	}
	fmt.Fprintf(&b, "%-22s %-12s %12d\n", "total", "", n.NumParams())
	return b.String()
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits against
// integer labels and the gradient with respect to the logits
// ((softmax−onehot)/batch), using the max-shift for numerical stability.
func SoftmaxCrossEntropy(logits *tensor.Matrix, labels []int) (float64, *tensor.Matrix) {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: %d logit rows vs %d labels", logits.Rows, len(labels)))
	}
	grad := tensor.NewMatrix(logits.Rows, logits.Cols)
	var total float64
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		grow := grad.Row(i)
		maxv := row.Max()
		var sum float64
		for j, v := range row {
			e := math.Exp(v - maxv)
			grow[j] = e
			sum += e
		}
		label := labels[i]
		if label < 0 || label >= logits.Cols {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, logits.Cols))
		}
		p := grow[label] / sum
		total += -math.Log(math.Max(p, 1e-300))
		inv := 1 / (sum * float64(logits.Rows))
		for j := range grow {
			grow[j] *= inv
		}
		grow[label] -= 1 / float64(logits.Rows)
	}
	return total / float64(logits.Rows), grad
}
