package attack

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/gar"
	"aggregathor/internal/tensor"
)

func testCtx(rng *rand.Rand, nHonest, d int) *Context {
	honest := make([]tensor.Vector, nHonest)
	for i := range honest {
		v := tensor.NewVector(d)
		for j := range v {
			v[j] = 1 + rng.NormFloat64()*0.1
		}
		honest[i] = v
	}
	var own tensor.Vector
	if nHonest > 0 {
		own = honest[0].Clone()
	}
	return &Context{
		Step:   3,
		Honest: honest,
		Own:    own,
		N:      nHonest + 2,
		F:      2,
		Dim:    d,
		Rng:    rng,
	}
}

func TestRandomForge(t *testing.T) {
	ctx := testCtx(rand.New(rand.NewSource(1)), 5, 16)
	v := Random{}.Forge(ctx)
	if v.Dim() != 16 {
		t.Fatalf("dim %d, want 16", v.Dim())
	}
	if v.Norm() < 10 {
		t.Fatalf("random attack suspiciously small: %v", v.Norm())
	}
}

func TestReversedForge(t *testing.T) {
	ctx := testCtx(rand.New(rand.NewSource(2)), 5, 8)
	v := Reversed{Magnitude: 10}.Forge(ctx)
	for j := range v {
		if v[j] != -10*ctx.Own[j] {
			t.Fatalf("coord %d: got %v, want %v", j, v[j], -10*ctx.Own[j])
		}
	}
}

func TestReversedWithoutOwnFallsBackToMean(t *testing.T) {
	ctx := testCtx(rand.New(rand.NewSource(3)), 4, 4)
	ctx.Own = nil
	v := Reversed{Magnitude: 1}.Forge(ctx)
	mean := tensor.Mean(ctx.Honest)
	for j := range v {
		if math.Abs(v[j]+mean[j]) > 1e-12 {
			t.Fatalf("coord %d: got %v, want %v", j, v[j], -mean[j])
		}
	}
}

func TestReversedDoesNotMutateOwn(t *testing.T) {
	ctx := testCtx(rand.New(rand.NewSource(4)), 3, 4)
	before := ctx.Own.Clone()
	Reversed{}.Forge(ctx)
	for j := range before {
		if ctx.Own[j] != before[j] {
			t.Fatal("Own mutated by Reversed")
		}
	}
}

func TestNegativeSum(t *testing.T) {
	ctx := testCtx(rand.New(rand.NewSource(5)), 3, 4)
	v := NegativeSum{}.Forge(ctx)
	want := tensor.NewVector(4)
	for _, g := range ctx.Honest {
		want.Add(g)
	}
	for j := range v {
		if math.Abs(v[j]+want[j]) > 1e-12 {
			t.Fatalf("coord %d mismatch", j)
		}
	}
}

func TestNonFiniteModes(t *testing.T) {
	ctx := testCtx(rand.New(rand.NewSource(6)), 2, 8)
	cases := []struct {
		mode  string
		check func(float64) bool
	}{
		{"", math.IsNaN},
		{"nan", math.IsNaN},
		{"+inf", func(x float64) bool { return math.IsInf(x, 1) }},
		{"-inf", func(x float64) bool { return math.IsInf(x, -1) }},
		{"mixed", func(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) }},
	}
	for _, tc := range cases {
		t.Run("mode="+tc.mode, func(t *testing.T) {
			v := NonFinite{Mode: tc.mode}.Forge(ctx)
			for j, x := range v {
				if !tc.check(x) {
					t.Fatalf("coord %d = %v does not match mode %q", j, x, tc.mode)
				}
			}
		})
	}
}

func TestMimicCopiesTarget(t *testing.T) {
	ctx := testCtx(rand.New(rand.NewSource(7)), 4, 4)
	v := Mimic{Target: 2}.Forge(ctx)
	for j := range v {
		if v[j] != ctx.Honest[2][j] {
			t.Fatal("mimic did not copy target")
		}
	}
	v[0] = 999
	if ctx.Honest[2][0] == 999 {
		t.Fatal("mimic aliases the honest gradient")
	}
}

func TestLittleIsEnoughStaysNearMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ctx := testCtx(rng, 10, 16)
	v := LittleIsEnough{Z: 1.5}.Forge(ctx)
	mean := tensor.Mean(ctx.Honest)
	// Shift must be bounded by z*sigma per coordinate (sigma ~ 0.1).
	for j := range v {
		if math.Abs(v[j]-mean[j]) > 1.5*0.5 {
			t.Fatalf("coord %d shifted too far: %v vs %v", j, v[j], mean[j])
		}
	}
}

// The headline threat: the omniscient attack defeats plain averaging and
// meaningfully shifts a weak GAR's target coordinate, while BULYAN's
// coordinate-wise phase pins the output to the honest range.
func TestOmniscientSelectedByKrumButBoundedByBulyan(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, f, d := 19, 4, 64
	honest := make([]tensor.Vector, n-f)
	for i := range honest {
		v := tensor.NewVector(d)
		for j := range v {
			v[j] = 1 + rng.NormFloat64()*0.2
		}
		honest[i] = v
	}
	ctx := &Context{Honest: honest, N: n, F: f, Dim: d, Rng: rng}
	atk := Omniscient{TargetCoord: 0}
	grads := append([]tensor.Vector{}, honest...)
	for i := 0; i < f; i++ {
		grads = append(grads, atk.Forge(ctx))
	}

	// The forged vector is close enough to the crowd to be selected by
	// MULTI-KRUM at least sometimes (it matches the mean in d-1 coords).
	mk := gar.NewMultiKrum(f)
	sel, err := mk.Select(grads)
	if err != nil {
		t.Fatal(err)
	}
	byzSelected := 0
	for _, idx := range sel {
		if idx >= n-f {
			byzSelected++
		}
	}
	if byzSelected == 0 {
		t.Fatal("omniscient attack was never selected by Multi-Krum; attack lost its leeway")
	}

	// Bulyan bounds the attacked coordinate to the honest range.
	bl := gar.NewBulyan(f)
	out, err := bl.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, g := range honest {
		lo = math.Min(lo, g[0])
		hi = math.Max(hi, g[0])
	}
	if out[0] < lo || out[0] > hi {
		t.Fatalf("Bulyan coordinate 0 escaped honest range: %v not in [%v, %v]", out[0], lo, hi)
	}

	// Multi-Krum's output on the attacked coordinate is dragged below the
	// honest minimum scaled by the attack budget — the weak-resilience gap.
	weak, err := mk.Aggregate(grads)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("honest range [%v, %v], multi-krum=%v bulyan=%v", lo, hi, weak[0], out[0])
}

func TestOmniscientRotatingTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ctx := testCtx(rng, 6, 8)
	atk := Omniscient{TargetCoord: -1}
	ctx.Step = 5
	v := atk.Forge(ctx)
	mean := tensor.Mean(ctx.Honest)
	// Only coordinate 5%8 = 5 deviates from the mean.
	for j := range v {
		if j == 5 {
			if v[j] == mean[j] {
				t.Fatal("target coordinate not attacked")
			}
			continue
		}
		if math.Abs(v[j]-mean[j]) > 1e-12 {
			t.Fatalf("non-target coordinate %d deviated", j)
		}
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range []string{
		"random", "reversed", "negative-sum", "non-finite",
		"mimic", "little-is-enough", "omniscient",
	} {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Fatalf("Name mismatch for %q: %q", name, a.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("want error for unknown attack")
	}
	names := Names()
	if len(names) < 7 {
		t.Fatalf("expected at least 7 attacks, got %v", names)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Register("random", func() Attack { return Random{} })
}

func TestAttacksEmptyHonestSafe(t *testing.T) {
	ctx := &Context{Dim: 4, Rng: rand.New(rand.NewSource(11))}
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		v := a.Forge(ctx)
		if v.Dim() != 4 {
			t.Fatalf("%s: dim %d, want 4", name, v.Dim())
		}
	}
}
