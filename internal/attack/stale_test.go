package attack

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

func TestStaleFirstStepIsZero(t *testing.T) {
	ctx := testCtx(rand.New(rand.NewSource(20)), 4, 6)
	s := &Stale{}
	v := s.Forge(ctx)
	if v.Norm() != 0 {
		t.Fatalf("first forge must be the null vector, got %v", v)
	}
}

func TestStaleReplaysPreviousMean(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := &Stale{}
	ctx1 := testCtx(rng, 4, 6)
	mean1 := tensor.Mean(ctx1.Honest)
	s.Forge(ctx1) // records mean1

	ctx2 := testCtx(rng, 4, 6) // different honest gradients
	v := s.Forge(ctx2)
	for j := range v {
		if math.Abs(v[j]-mean1[j]) > 1e-12 {
			t.Fatalf("coord %d: replay %v, want previous mean %v", j, v[j], mean1[j])
		}
	}
}

func TestStaleOutputIsIndependentCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	s := &Stale{}
	s.Forge(testCtx(rng, 3, 4))
	v := s.Forge(testCtx(rng, 3, 4))
	v[0] = 1e9
	w := s.Forge(testCtx(rng, 3, 4))
	if w[0] == 1e9 {
		t.Fatal("forged vectors alias internal state")
	}
}

func TestStaleRegistered(t *testing.T) {
	a, err := New("stale")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "stale" {
		t.Fatalf("name %q", a.Name())
	}
	// Two forges through the registry instance must exercise the stateful
	// path without panicking on an empty context.
	ctx := &Context{Dim: 3, Rng: rand.New(rand.NewSource(23))}
	a.Forge(ctx)
	a.Forge(ctx)
}
