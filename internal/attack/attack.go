// Package attack implements the Byzantine worker behaviours used to evaluate
// AggregaThor: blind gradient corruption (random, reversed, non-finite) and
// the informed adversaries of the paper's threat model (§3.1) — colluding
// workers with access to every correct gradient that craft legitimate-looking
// but harmful vectors (§4.3, El Mhamdi et al.'s dimensional-leeway attack).
//
// An Attack forges the gradient a Byzantine worker submits at one step. The
// threat model gives the adversary the correct workers' gradients, so Forge
// receives them; blind attacks ignore that field.
package attack

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"aggregathor/internal/tensor"
)

// Context carries everything the paper's adversary is assumed to know at one
// step: the gradients of the correct workers (arbitrarily fast channels let
// the colluders collect them before the server does), the gradient the
// Byzantine worker would have computed honestly, and the cluster shape.
type Context struct {
	// Step is the current model-update index.
	Step int
	// Honest holds the correct workers' gradients for this step. Blind
	// attacks ignore it; omniscient attacks require it.
	Honest []tensor.Vector
	// Own is the gradient this worker would have submitted if honest.
	// May be nil for attacks that do not need it.
	Own tensor.Vector
	// N and F describe the cluster: total workers and Byzantine workers.
	N, F int
	// Dim is the model dimension d.
	Dim int
	// Rng is the adversary's seeded randomness source.
	Rng *rand.Rand
}

// Attack forges the vector one Byzantine worker submits. Implementations
// must not mutate the context's gradients.
type Attack interface {
	// Name returns the registry name of the attack.
	Name() string
	// Forge returns the Byzantine gradient for this step.
	Forge(ctx *Context) tensor.Vector
}

// Informed marks attacks whose Forge requires Context.Honest to be exactly
// the set of gradients the honest workers submit this round — the paper's
// omniscient-family adversaries. Deployments that cannot provide that
// guarantee (e.g. the udp backend with lossy model broadcasts, where each
// honest worker follows its own downlink schedule and may skip a round or
// train on a stale model) must reject these attacks rather than silently
// forging from wrong oracles. Attacks that merely use Honest as a fallback
// when Own is absent (Reversed) are not Informed.
type Informed interface {
	Attack
	// RequiresHonest reports that Forge depends on the honest gradients.
	RequiresHonest() bool
}

// Random submits large Gaussian noise, the classic blind poisoning attack:
// a single such worker is enough to derail plain averaging.
type Random struct {
	// Scale multiplies the standard normal draw; 0 means the default 100.
	Scale float64
}

// Name implements Attack.
func (Random) Name() string { return "random" }

// Forge implements Attack.
func (a Random) Forge(ctx *Context) tensor.Vector {
	scale := a.Scale
	if scale == 0 {
		scale = 100
	}
	v := tensor.NewVector(ctx.Dim)
	for i := range v {
		v[i] = ctx.Rng.NormFloat64() * scale
	}
	return v
}

// Reversed submits the negated, amplified honest gradient — the "reversed
// gradient adversary" used by Draco's evaluation and adopted by the paper's
// comparison (§4.1).
type Reversed struct {
	// Magnitude is the amplification factor; 0 means the default 100.
	Magnitude float64
}

// Name implements Attack.
func (Reversed) Name() string { return "reversed" }

// Forge implements Attack.
func (a Reversed) Forge(ctx *Context) tensor.Vector {
	mag := a.Magnitude
	if mag == 0 {
		mag = 100
	}
	var base tensor.Vector
	switch {
	case ctx.Own != nil:
		base = ctx.Own.Clone()
	case len(ctx.Honest) > 0:
		base = tensor.Mean(ctx.Honest)
	default:
		base = tensor.NewVector(ctx.Dim)
	}
	base.Scale(-mag)
	return base
}

// NegativeSum submits minus the sum of the honest gradients, attempting to
// cancel the whole round's progress under plain averaging.
type NegativeSum struct{}

// Name implements Attack.
func (NegativeSum) Name() string { return "negative-sum" }

// RequiresHonest implements Informed: the forged sum is built from the
// honest gradients.
func (NegativeSum) RequiresHonest() bool { return true }

// Forge implements Attack.
func (NegativeSum) Forge(ctx *Context) tensor.Vector {
	out := tensor.NewVector(ctx.Dim)
	for _, g := range ctx.Honest {
		out.Add(g)
	}
	out.Scale(-1)
	return out
}

// NonFinite submits NaN or ±Inf coordinates — "a crucial feature when facing
// actual malicious workers" that the paper's GAR implementations must absorb.
type NonFinite struct {
	// Mode selects the payload: "nan" (default), "+inf", "-inf" or
	// "mixed" (random non-finite per coordinate).
	Mode string
}

// Name implements Attack.
func (NonFinite) Name() string { return "non-finite" }

// Forge implements Attack.
func (a NonFinite) Forge(ctx *Context) tensor.Vector {
	v := tensor.NewVector(ctx.Dim)
	fill := func(i int) float64 {
		switch a.Mode {
		case "+inf":
			return math.Inf(1)
		case "-inf":
			return math.Inf(-1)
		case "mixed":
			switch ctx.Rng.Intn(3) {
			case 0:
				return math.Inf(1)
			case 1:
				return math.Inf(-1)
			default:
				return math.NaN()
			}
		default:
			return math.NaN()
		}
	}
	for i := range v {
		v[i] = fill(i)
	}
	return v
}

// Mimic replays a correct worker's gradient, the stealthiest possible
// behaviour: undetectable by construction and harmless in isolation, it
// exists to verify robust GARs do not over-penalise plausible vectors.
type Mimic struct {
	// Target is the honest gradient index to copy; clamped into range.
	Target int
}

// Name implements Attack.
func (Mimic) Name() string { return "mimic" }

// RequiresHonest implements Informed: the copied target is an honest
// gradient.
func (Mimic) RequiresHonest() bool { return true }

// Forge implements Attack.
func (a Mimic) Forge(ctx *Context) tensor.Vector {
	if len(ctx.Honest) == 0 {
		return tensor.NewVector(ctx.Dim)
	}
	t := a.Target
	if t < 0 || t >= len(ctx.Honest) {
		t = 0
	}
	return ctx.Honest[t].Clone()
}

// LittleIsEnough implements the "a little is enough" style attack: submit
// the honest mean shifted by z standard deviations per coordinate. Small z
// keeps the vector within the selection envelope of weak GARs while steadily
// biasing convergence — the §4.3 "legitimate but harmful" vector.
type LittleIsEnough struct {
	// Z is the per-coordinate shift in honest standard deviations;
	// 0 means the default 1.5.
	Z float64
}

// Name implements Attack.
func (LittleIsEnough) Name() string { return "little-is-enough" }

// RequiresHonest implements Informed: the perturbation is scaled to the
// honest gradients' coordinate spread.
func (LittleIsEnough) RequiresHonest() bool { return true }

// Forge implements Attack.
func (a LittleIsEnough) Forge(ctx *Context) tensor.Vector {
	z := a.Z
	if z == 0 {
		z = 1.5
	}
	if len(ctx.Honest) == 0 {
		return tensor.NewVector(ctx.Dim)
	}
	mean := tensor.Mean(ctx.Honest)
	std := coordinateStd(ctx.Honest, mean)
	for j := range mean {
		mean[j] -= z * std[j]
	}
	return mean
}

// Omniscient implements the dimensional-leeway attack of El Mhamdi et al.
// (the paper's Figure 9): the colluders submit the honest mean with a single
// coordinate deviated by the selection budget — roughly the honest workers'
// disagreement amplified by √d — steering convergence toward a bad optimum
// while remaining inside the acceptance cone of weakly Byzantine-resilient
// GARs.
type Omniscient struct {
	// TargetCoord is the attacked coordinate; -1 rotates over coordinates
	// by step. The zero value targets coordinate 0.
	TargetCoord int
	// Budget scales the deviation relative to the honest disagreement;
	// 0 means the default 1.0 (stay within the provable leeway).
	Budget float64
}

// Name implements Attack.
func (Omniscient) Name() string { return "omniscient" }

// RequiresHonest implements Informed: the dimensional leeway is computed
// from the honest gradients.
func (Omniscient) RequiresHonest() bool { return true }

// Forge implements Attack.
func (a Omniscient) Forge(ctx *Context) tensor.Vector {
	if len(ctx.Honest) == 0 {
		return tensor.NewVector(ctx.Dim)
	}
	budget := a.Budget
	if budget == 0 {
		budget = 1.0
	}
	mean := tensor.Mean(ctx.Honest)
	// Honest disagreement: average distance of an honest gradient to the
	// mean. The dimensional leeway lets the attacker spend this entire
	// budget on a single coordinate — the Figure 9 construction.
	var disagreement float64
	for _, g := range ctx.Honest {
		disagreement += tensor.Distance(g, mean)
	}
	disagreement /= float64(len(ctx.Honest))

	// Solve the Krum selection inequality for the deviation ε. The f
	// colluders submit identical vectors at distance √(h²+ε²) from each
	// honest gradient (h ≈ disagreement) but distance 0 from each other,
	// so with k = n−f−2 scored neighbours an attacker needs
	//   (k−f+1)(h²+ε²) ≤ k·2h²   (honest pairs sit ≈ √2·h apart)
	// giving ε² ≤ (2k/(k−f+1) − 1)·h². A 0.9 safety factor keeps the
	// forged vector strictly inside the acceptance region.
	k := ctx.N - ctx.F - 2
	if k < 1 {
		k = 1
	}
	den := k - ctx.F + 1
	if den < 1 {
		den = 1
	}
	ratio := 2*float64(k)/float64(den) - 1
	if ratio < 0.25 {
		ratio = 0.25
	}
	eps := budget * 0.9 * math.Sqrt(ratio) * disagreement

	target := a.TargetCoord
	if target == -1 {
		target = ctx.Step % ctx.Dim
	}
	if target < 0 || target >= ctx.Dim {
		target = 0
	}
	mean[target] -= eps
	return mean
}

// Stale replays the honest mean of the *previous* step — a subtle
// staleness/replay attack: the vector is perfectly plausible (it was a
// correct aggregate one step ago) yet systematically lags the optimisation,
// dragging convergence. Robust GARs accept it (it sits inside the honest
// cloud), which is correct behaviour: staleness of one step is within the
// gradient-noise envelope the convergence analysis already absorbs.
type Stale struct {
	last []float64
}

// Name implements Attack.
func (*Stale) Name() string { return "stale" }

// RequiresHonest implements Informed: the replayed gradients are captured
// from the honest workers.
func (*Stale) RequiresHonest() bool { return true }

// Forge implements Attack.
func (s *Stale) Forge(ctx *Context) tensor.Vector {
	var replay tensor.Vector
	if s.last != nil && len(s.last) == ctx.Dim {
		replay = tensor.Vector(s.last).Clone()
	} else {
		replay = tensor.NewVector(ctx.Dim)
	}
	if len(ctx.Honest) > 0 {
		mean := tensor.Mean(ctx.Honest)
		s.last = append(s.last[:0], mean...)
	}
	return replay
}

// coordinateStd returns the per-coordinate standard deviation of vs around
// the provided mean.
func coordinateStd(vs []tensor.Vector, mean tensor.Vector) tensor.Vector {
	d := mean.Dim()
	out := tensor.NewVector(d)
	if len(vs) < 2 {
		return out
	}
	for _, v := range vs {
		for j := 0; j < d; j++ {
			diff := v[j] - mean[j]
			out[j] += diff * diff
		}
	}
	for j := 0; j < d; j++ {
		out[j] = math.Sqrt(out[j] / float64(len(vs)-1))
	}
	return out
}

// Factory builds an Attack from a registry name.
type Factory func() Attack

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named attack factory; duplicate or empty names panic.
func Register(name string, factory Factory) {
	if name == "" || factory == nil {
		panic("attack: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("attack: duplicate registration of %q", name))
	}
	registry[name] = factory
}

// New builds the named attack.
func New(name string) (Attack, error) {
	registryMu.RLock()
	factory, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("attack: unknown attack %q (available: %v)", name, Names())
	}
	return factory(), nil
}

// Names returns the sorted registered attack names.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	Register("random", func() Attack { return Random{} })
	Register("reversed", func() Attack { return Reversed{} })
	Register("negative-sum", func() Attack { return NegativeSum{} })
	Register("non-finite", func() Attack { return NonFinite{} })
	Register("mimic", func() Attack { return Mimic{} })
	Register("little-is-enough", func() Attack { return LittleIsEnough{} })
	Register("omniscient", func() Attack { return Omniscient{} })
	Register("stale", func() Attack { return &Stale{} })
}
