package transport

import (
	"math/rand"
)

// Pipe models the data-plane effect of a worker→server gradient transfer.
// The simulated cluster uses a Pipe per link; the time cost of the link is
// accounted separately by package simnet (time plane and data plane are
// decoupled, as in the paper's evaluation).
type Pipe interface {
	// Transfer delivers a gradient through the link. ok=false means the
	// whole gradient was lost (DropGradient policy with at least one
	// dropped packet). The returned message may alias the input when the
	// link is perfect.
	Transfer(m *GradientMsg) (out *GradientMsg, ok bool)
}

// PerfectPipe delivers gradients unchanged — the reliable TCP path.
type PerfectPipe struct{}

// Transfer implements Pipe.
func (PerfectPipe) Transfer(m *GradientMsg) (*GradientMsg, bool) { return m, true }

// LossyPipe chunks each gradient into MTU-sized packets, drops each packet
// independently with probability DropRate, and reassembles with the
// configured recoup policy — the in-memory equivalent of the lossyMPI UDP
// endpoint (package-level loss model identical to the socket path in
// udp.go).
type LossyPipe struct {
	codec    Codec
	mtu      int
	dropRate float64
	policy   RecoupPolicy
	rng      *rand.Rand
	asm      *Reassembler

	// Stats
	packetsSent    int
	packetsDropped int
	gradientsLost  int
}

// NewLossyPipe builds a lossy link. dropRate must be in [0, 1).
func NewLossyPipe(codec Codec, mtu int, dropRate float64, policy RecoupPolicy, seed int64) *LossyPipe {
	if dropRate < 0 || dropRate >= 1 {
		panic("transport: drop rate out of [0, 1)")
	}
	if mtu <= 0 {
		mtu = DefaultMTU
	}
	rng := rand.New(rand.NewSource(seed))
	return &LossyPipe{
		codec:    codec,
		mtu:      mtu,
		dropRate: dropRate,
		policy:   policy,
		rng:      rng,
		asm:      NewReassembler(policy, rng),
	}
}

// Transfer implements Pipe: encode→split→drop→shuffle→reassemble→recoup,
// exercising the same codec and reassembly code as the real UDP endpoint.
func (l *LossyPipe) Transfer(m *GradientMsg) (*GradientMsg, bool) {
	packets := l.codec.Split(m, l.mtu)
	l.packetsSent += len(packets)
	surviving := make([]Packet, 0, len(packets))
	for _, p := range packets {
		if l.rng.Float64() < l.dropRate {
			l.packetsDropped++
			continue
		}
		surviving = append(surviving, p)
	}
	// Out-of-order delivery: UDP gives no ordering guarantee; the
	// self-describing offsets must make order irrelevant.
	l.rng.Shuffle(len(surviving), func(i, j int) {
		surviving[i], surviving[j] = surviving[j], surviving[i]
	})
	var out *GradientMsg
	for i := range surviving {
		// Round-trip through the wire encoding so float32 width and
		// header validation are exercised too.
		raw := l.codec.EncodePacket(&surviving[i])
		p, err := l.codec.DecodePacket(raw)
		if err != nil {
			// A corrupted self-encoded packet is a programming
			// error, not a runtime condition.
			panic(err)
		}
		if msg, done := l.asm.Offer(p); done {
			out = msg
		}
	}
	if out != nil {
		return out, true
	}
	// Deadline: the step is over, recoup what we can.
	msg, ok := l.asm.Flush(m.Worker, m.Step)
	if !ok {
		l.gradientsLost++
		return nil, false
	}
	return msg, true
}

// Stats reports packets sent/dropped and whole gradients lost so far.
func (l *LossyPipe) Stats() (sent, dropped, lost int) {
	return l.packetsSent, l.packetsDropped, l.gradientsLost
}
