package transport

import (
	"math"
	"math/rand"
	"testing"

	"aggregathor/internal/tensor"
)

func TestReassemblerCompletesInOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Codec{}
	m := &GradientMsg{Worker: 1, Step: 2, Grad: randVec(rng, 300)}
	asm := NewReassembler(DropGradient, nil)
	packets := c.Split(m, 256)
	var got *GradientMsg
	for i := range packets {
		msg, done := asm.Offer(&packets[i])
		if done {
			if i != len(packets)-1 {
				t.Fatalf("completed early at packet %d of %d", i, len(packets))
			}
			got = msg
		}
	}
	if got == nil {
		t.Fatal("gradient never completed")
	}
	for i := range m.Grad {
		if got.Grad[i] != m.Grad[i] {
			t.Fatalf("coord %d mismatch", i)
		}
	}
	if asm.Pending() != 0 {
		t.Fatal("state leaked after completion")
	}
}

func TestReassemblerOutOfOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Codec{}
	m := &GradientMsg{Worker: 4, Step: 9, Grad: randVec(rng, 500)}
	packets := c.Split(m, 128)
	rng.Shuffle(len(packets), func(i, j int) { packets[i], packets[j] = packets[j], packets[i] })
	asm := NewReassembler(FillNaN, nil)
	var got *GradientMsg
	for i := range packets {
		if msg, done := asm.Offer(&packets[i]); done {
			got = msg
		}
	}
	if got == nil {
		t.Fatal("out-of-order delivery failed to complete")
	}
	for i := range m.Grad {
		if got.Grad[i] != m.Grad[i] {
			t.Fatalf("coord %d mismatch under reordering", i)
		}
	}
}

func TestReassemblerDuplicatePacketsHarmless(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Codec{}
	m := &GradientMsg{Worker: 1, Step: 1, Grad: randVec(rng, 64)}
	packets := c.Split(m, 128)
	asm := NewReassembler(DropGradient, nil)
	// Deliver the first packet twice before the rest.
	if _, done := asm.Offer(&packets[0]); done {
		t.Fatal("premature completion")
	}
	if _, done := asm.Offer(&packets[0]); done && len(packets) > 1 {
		t.Fatal("duplicate completed the gradient")
	}
	var got *GradientMsg
	for i := 1; i < len(packets); i++ {
		if msg, done := asm.Offer(&packets[i]); done {
			got = msg
		}
	}
	if len(packets) > 1 && got == nil {
		t.Fatal("gradient never completed after duplicates")
	}
}

// TestReassemblerConflictingDimNoCrash is the regression test for the
// remote-crash bug: a Byzantine worker sending two individually
// self-consistent packets for the same (worker, step) key but with
// conflicting Dim values used to index the first packet's arrival mask out
// of range — one hostile datagram panicked the server. Conflicting packets
// now evict and rebuild the partial (see the spoof-censorship tests for
// why) — the property under test here is that neither ordering can crash or
// corrupt, and that the honest stream still completes once re-offered.
func TestReassemblerConflictingDimNoCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := Codec{}
	m := &GradientMsg{Worker: 3, Step: 7, Grad: randVec(rng, 100)}
	packets := c.Split(m, 256)
	if len(packets) < 2 {
		t.Fatalf("need >= 2 packets, got %d", len(packets))
	}
	asm := NewReassembler(FillNaN, nil)
	if _, done := asm.Offer(&packets[0]); done {
		t.Fatal("premature completion")
	}
	// Self-consistent hostile packet: same key, larger Dim, range far
	// outside the honest partial's mask. Before the conflict check this
	// indexed out of range; now it evicts and rebuilds — either way it must
	// not complete a gradient or crash.
	hostile := &Packet{Worker: 3, Step: 7, Dim: 1000, Offset: 900, Coords: randVec(rng, 50)}
	if _, done := asm.Offer(hostile); done {
		t.Fatal("hostile packet completed a gradient")
	}
	// Opposite ordering on a fresh key: large partial pending, then a
	// smaller conflicting Dim arrives. The newcomer evicts the pending
	// partial and stands alone — it happens to be complete, which is fine:
	// it delivers its own (self-consistent) gradient, not a hybrid of the
	// two, and crucially nothing indexes out of range.
	big := &Packet{Worker: 5, Step: 7, Dim: 1000, Offset: 0, Coords: randVec(rng, 50)}
	smaller := &Packet{Worker: 5, Step: 7, Dim: 10, Offset: 0, Coords: randVec(rng, 10)}
	if _, done := asm.Offer(big); done {
		t.Fatal("premature completion")
	}
	if msg, done := asm.Offer(smaller); done {
		if len(msg.Grad) != 10 {
			t.Fatalf("evict-rebuild delivered a hybrid gradient of dim %d", len(msg.Grad))
		}
		for i := range msg.Grad {
			if msg.Grad[i] != smaller.Coords[i] {
				t.Fatalf("coord %d of rebuilt gradient corrupted", i)
			}
		}
	} else {
		t.Fatal("complete rebuilt gradient was not delivered")
	}
	if asm.Evictions() == 0 {
		t.Fatal("conflicting packets did not count as evictions")
	}
	// The honest stream completes once every honest packet is offered after
	// the hostile ones (the eviction cost packets[0]; re-offer it).
	var got *GradientMsg
	for i := 1; i < len(packets); i++ {
		if msg, done := asm.Offer(&packets[i]); done {
			got = msg
		}
	}
	if got != nil {
		t.Fatal("completed while packets[0]'s range was still missing post-eviction")
	}
	if msg, done := asm.Offer(&packets[0]); done {
		got = msg
	}
	if got == nil {
		t.Fatal("honest gradient never completed after hostile packets")
	}
	for i := range m.Grad {
		if got.Grad[i] != m.Grad[i] {
			t.Fatalf("coord %d corrupted by hostile packets", i)
		}
	}
}

// TestReassemblerSpoofCannotCensorHonestWorker is the failing-first
// regression test for the spoof-censorship bug: a Byzantine peer spoofing
// ONE datagram under an honest worker's (worker, step) key — with garbage
// Loss metadata, ahead of the honest burst — used to pin the partial's
// metadata, so every genuine packet was rejected as a "metadata conflict"
// and the honest gradient was recouped as lost. One datagram censored an
// honest worker for the round, violating the f-Byzantine budget. With
// evict-and-rebuild the first honest packet evicts the spoof and the honest
// gradient completes untouched.
func TestReassemblerSpoofCannotCensorHonestWorker(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := Codec{}
	m := &GradientMsg{Worker: 2, Step: 4, Loss: 0.5, Grad: randVec(rng, 100)}
	packets := c.Split(m, 256)
	asm := NewReassembler(DropGradient, nil)
	// The spoof races ahead of the honest burst: same key and Dim, garbage
	// Loss, attacker-chosen coords.
	spoof := &Packet{Worker: 2, Step: 4, Loss: 999.25, Dim: 100, Offset: 0,
		Coords: randVec(rng, 10)}
	if _, done := asm.Offer(spoof); done {
		t.Fatal("spoof completed a gradient")
	}
	var got *GradientMsg
	for i := range packets {
		if msg, done := asm.Offer(&packets[i]); done {
			got = msg
		}
	}
	if got == nil {
		t.Fatal("spoofed datagram censored the honest gradient")
	}
	if got.Loss != m.Loss {
		t.Fatalf("delivered loss %v, want the honest %v", got.Loss, m.Loss)
	}
	for i := range m.Grad {
		if got.Grad[i] != m.Grad[i] {
			t.Fatalf("coord %d corrupted by the spoof", i)
		}
	}
	if asm.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", asm.Evictions())
	}
}

// TestReassemblerSetExpectDim: pinning the deployment's exact dimension
// rejects every packet claiming any other Dim before it can touch (or
// evict) reassembly state, closing the Dim axis of header spoofing
// entirely.
func TestReassemblerSetExpectDim(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := Codec{}
	m := &GradientMsg{Worker: 1, Step: 3, Grad: randVec(rng, 100)}
	packets := c.Split(m, 256)
	asm := NewReassembler(DropGradient, nil)
	asm.SetExpectDim(100)
	if _, done := asm.Offer(&packets[0]); done {
		t.Fatal("premature completion")
	}
	// Wrong-dim spoof: with the pin it cannot evict the honest partial.
	spoof := &Packet{Worker: 1, Step: 3, Dim: 50, Offset: 0, Coords: randVec(rng, 10)}
	if _, done := asm.Offer(spoof); done {
		t.Fatal("wrong-dim spoof completed a gradient")
	}
	if asm.Evictions() != 0 {
		t.Fatalf("wrong-dim spoof evicted the pinned-dim partial (evictions=%d)", asm.Evictions())
	}
	var got *GradientMsg
	for i := 1; i < len(packets); i++ {
		if msg, done := asm.Offer(&packets[i]); done {
			got = msg
		}
	}
	if got == nil {
		t.Fatal("honest gradient never completed under SetExpectDim")
	}
}

// TestReassemblerBoundsClaimedDim: the header's Dim field is
// attacker-controlled, and the reassembler sizes its partial state by it — a
// spoofed Dim near 2³² used to make the first Offer allocate tens of
// gigabytes and abort the process. Dimensions beyond the bound are rejected
// as malformed without allocating; tightening the bound to the deployment's
// real dimension keeps honest traffic working.
func TestReassemblerBoundsClaimedDim(t *testing.T) {
	asm := NewReassembler(DropGradient, nil)
	huge := &Packet{Worker: 1, Step: 1, Dim: 1<<31 - 1, Offset: 0, Coords: tensor.Vector{1}}
	if _, done := asm.Offer(huge); done {
		t.Fatal("huge-dim packet completed a gradient")
	}
	if asm.Pending() != 0 {
		t.Fatal("huge-dim packet allocated partial state")
	}

	asm.SetMaxDim(100)
	over := &Packet{Worker: 1, Step: 1, Dim: 101, Offset: 0, Coords: tensor.Vector{1}}
	if _, done := asm.Offer(over); done || asm.Pending() != 0 {
		t.Fatal("packet over the tightened bound was admitted")
	}
	rng := rand.New(rand.NewSource(25))
	c := Codec{}
	m := &GradientMsg{Worker: 2, Step: 2, Grad: randVec(rng, 100)}
	var got *GradientMsg
	for _, p := range c.Split(m, 256) {
		if msg, done := asm.Offer(&p); done {
			got = msg
		}
	}
	if got == nil {
		t.Fatal("gradient at exactly the bound failed to assemble")
	}
}

// TestReassemblerRejectsMalformedRange covers hand-built packets that never
// went through DecodePacket's range validation: they must be dropped, not
// indexed.
func TestReassemblerRejectsMalformedRange(t *testing.T) {
	asm := NewReassembler(DropGradient, nil)
	for _, p := range []*Packet{
		{Worker: 1, Step: 1, Dim: 10, Offset: 8, Coords: tensor.Vector{1, 2, 3}},
		{Worker: 1, Step: 1, Dim: 10, Offset: -1, Coords: tensor.Vector{1}},
		{Worker: 1, Step: 1, Dim: -5, Offset: 0, Coords: tensor.Vector{}},
	} {
		if _, done := asm.Offer(p); done {
			t.Fatalf("malformed packet %+v completed a gradient", p)
		}
	}
	if asm.Pending() != 0 {
		t.Fatal("malformed packets left partial state behind")
	}
}

// TestReassemblerCarriesLoss pins the wire bugfix: the loss metadata repeated
// in every packet header must survive reassembly on the complete path, the
// policy flush path and the explicit FlushFill path (it used to be silently
// rebuilt as 0, diverging UDP loss trajectories from TCP and in-process).
func TestReassemblerCarriesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := Codec{}
	m := &GradientMsg{Worker: 2, Step: 5, Loss: 0.8125, Grad: randVec(rng, 100)}
	packets := c.Split(m, 128)
	if len(packets) < 2 {
		t.Fatalf("need >= 2 packets, got %d", len(packets))
	}

	asm := NewReassembler(FillNaN, nil)
	var got *GradientMsg
	for i := range packets {
		if msg, done := asm.Offer(&packets[i]); done {
			got = msg
		}
	}
	if got == nil || got.Loss != 0.8125 {
		t.Fatalf("complete path lost the loss metadata: %+v", got)
	}

	asm.Offer(&packets[0])
	if msg, ok := asm.Flush(2, 5); !ok || msg.Loss != 0.8125 {
		t.Fatalf("policy flush lost the loss metadata: %+v", msg)
	}

	asm.Offer(&packets[0])
	if msg, ok := asm.FlushFill(2, 5, func(int) float64 { return 0 }); !ok || msg.Loss != 0.8125 {
		t.Fatalf("FlushFill lost the loss metadata: %+v", msg)
	}
}

// TestReassemblerRejectsConflictingLoss: the repeated metadata rule covers
// the loss field too — packets disagreeing with the pending partial's loss
// bits are malformed. NaN losses compare by bit pattern, so an honest NaN
// loss still assembles.
func TestReassemblerRejectsConflictingLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := Codec{}
	m := &GradientMsg{Worker: 1, Step: 1, Loss: 2.5, Grad: randVec(rng, 100)}
	packets := c.Split(m, 128)
	asm := NewReassembler(FillNaN, nil)
	asm.Offer(&packets[0])
	forged := packets[1]
	forged.Loss = -99
	if _, done := asm.Offer(&forged); done {
		t.Fatal("conflicting-loss packet completed a gradient")
	}
	if missing, ok := asm.Missing(1, 1); !ok || missing != 100-len(packets[0].Coords) {
		t.Fatalf("forged packet mutated the partial: missing=%d ok=%v", missing, ok)
	}

	nan := &GradientMsg{Worker: 9, Step: 9, Loss: math.NaN(), Grad: randVec(rng, 100)}
	npk := c.Split(nan, 128)
	var got *GradientMsg
	for i := range npk {
		if msg, done := asm.Offer(&npk[i]); done {
			got = msg
		}
	}
	if got == nil || !math.IsNaN(got.Loss) {
		t.Fatalf("NaN-loss gradient failed to assemble: %+v", got)
	}
}

// TestFlushFillDeterministicOrder pins that FlushFill visits missing
// coordinates in ascending order — the property cluster recoup relies on to
// make seed-derived fill values reproducible.
func TestFlushFillDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := Codec{}
	m := &GradientMsg{Worker: 4, Step: 2, Grad: randVec(rng, 120)}
	packets := c.Split(m, 128)
	if len(packets) < 3 {
		t.Fatalf("need >= 3 packets, got %d", len(packets))
	}
	asm := NewReassembler(DropGradient, nil)
	asm.Offer(&packets[1]) // only the middle packet arrives
	var visited []int
	msg, ok := asm.FlushFill(4, 2, func(coord int) float64 {
		visited = append(visited, coord)
		return float64(coord)
	})
	if !ok {
		t.Fatal("FlushFill must deliver a pending partial")
	}
	for i := 1; i < len(visited); i++ {
		if visited[i] <= visited[i-1] {
			t.Fatalf("fill order not ascending: %v", visited)
		}
	}
	for _, coord := range visited {
		if msg.Grad[coord] != float64(coord) {
			t.Fatalf("fill value misplaced at %d", coord)
		}
	}
	off := packets[1].Offset
	for i, x := range packets[1].Coords {
		if msg.Grad[off+i] != x {
			t.Fatalf("received coordinate %d altered", off+i)
		}
	}
}

// TestDiscardAndMissing covers the explicit settle API used by the UDP
// cluster backend.
func TestDiscardAndMissing(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c := Codec{}
	m := &GradientMsg{Worker: 6, Step: 3, Grad: randVec(rng, 100)}
	packets := c.Split(m, 128)
	asm := NewReassembler(FillNaN, nil)
	if _, ok := asm.Missing(6, 3); ok {
		t.Fatal("Missing reported a partial before any packet")
	}
	asm.Offer(&packets[0])
	if missing, ok := asm.Missing(6, 3); !ok || missing != 100-len(packets[0].Coords) {
		t.Fatalf("missing=%d ok=%v", missing, ok)
	}
	if !asm.Discard(6, 3) {
		t.Fatal("Discard must report a pending partial")
	}
	if asm.Pending() != 0 {
		t.Fatal("Discard must release the partial")
	}
	if asm.Discard(6, 3) {
		t.Fatal("Discard with nothing pending must report false")
	}
	if _, ok := asm.FlushFill(6, 3, func(int) float64 { return 0 }); ok {
		t.Fatal("FlushFill with nothing pending must report !ok")
	}
}

func TestFlushFillNaN(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Codec{}
	m := &GradientMsg{Worker: 2, Step: 3, Grad: randVec(rng, 100)}
	packets := c.Split(m, 128)
	if len(packets) < 2 {
		t.Fatalf("need >= 2 packets, got %d", len(packets))
	}
	asm := NewReassembler(FillNaN, nil)
	asm.Offer(&packets[0]) // lose the rest
	msg, ok := asm.Flush(2, 3)
	if !ok {
		t.Fatal("FillNaN flush must deliver")
	}
	nans := 0
	for i, x := range msg.Grad {
		if math.IsNaN(x) {
			nans++
		} else if x != m.Grad[i] {
			t.Fatalf("received coordinate %d altered", i)
		}
	}
	wantLost := 100 - len(packets[0].Coords)
	if nans != wantLost {
		t.Fatalf("%d NaN coords, want %d", nans, wantLost)
	}
}

func TestFlushFillRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := Codec{}
	m := &GradientMsg{Worker: 1, Step: 1, Grad: randVec(rng, 100)}
	packets := c.Split(m, 128)
	asm := NewReassembler(FillRandom, rand.New(rand.NewSource(6)))
	asm.Offer(&packets[0])
	msg, ok := asm.Flush(1, 1)
	if !ok {
		t.Fatal("FillRandom flush must deliver")
	}
	if msg.Grad.CountNonFinite() != 0 {
		t.Fatal("FillRandom must produce finite coordinates")
	}
}

func TestFlushDropGradient(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := Codec{}
	m := &GradientMsg{Worker: 1, Step: 1, Grad: randVec(rng, 100)}
	packets := c.Split(m, 128)
	asm := NewReassembler(DropGradient, nil)
	asm.Offer(&packets[0])
	if _, ok := asm.Flush(1, 1); ok {
		t.Fatal("DropGradient flush must not deliver")
	}
	if asm.Pending() != 0 {
		t.Fatal("flush must release state even when dropping")
	}
}

func TestFlushNothingPending(t *testing.T) {
	asm := NewReassembler(FillNaN, nil)
	if _, ok := asm.Flush(1, 1); ok {
		t.Fatal("flush with nothing pending must report !ok")
	}
}

func TestFillRandomWithoutRngPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewReassembler(FillRandom, nil)
}

func TestDropStale(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := Codec{}
	asm := NewReassembler(FillNaN, nil)
	for step := 0; step < 5; step++ {
		m := &GradientMsg{Worker: 1, Step: step, Grad: randVec(rng, 100)}
		packets := c.Split(m, 128)
		asm.Offer(&packets[0]) // leave all partial
	}
	if asm.Pending() != 5 {
		t.Fatalf("pending %d, want 5", asm.Pending())
	}
	if dropped := asm.DropStale(3); dropped != 3 {
		t.Fatalf("dropped %d, want 3", dropped)
	}
	if asm.Pending() != 2 {
		t.Fatalf("pending %d after DropStale, want 2", asm.Pending())
	}
}

func TestRecoupPolicyString(t *testing.T) {
	if DropGradient.String() != "drop-gradient" ||
		FillNaN.String() != "fill-nan" ||
		FillRandom.String() != "fill-random" {
		t.Fatal("policy names wrong")
	}
	if RecoupPolicy(9).String() != "RecoupPolicy(9)" {
		t.Fatal("unknown policy formatting")
	}
}

func TestLossyPipePerfectWhenNoDrop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pipe := NewLossyPipe(Codec{}, DefaultMTU, 0, DropGradient, 1)
	m := &GradientMsg{Worker: 1, Step: 1, Grad: randVec(rng, 2000)}
	out, ok := pipe.Transfer(m)
	if !ok {
		t.Fatal("lossless transfer dropped the gradient")
	}
	for i := range m.Grad {
		if out.Grad[i] != m.Grad[i] {
			t.Fatalf("coord %d altered", i)
		}
	}
}

func TestLossyPipeDropGradientLosesWholeGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	pipe := NewLossyPipe(Codec{}, 256, 0.3, DropGradient, 2)
	lost, delivered := 0, 0
	for step := 0; step < 50; step++ {
		m := &GradientMsg{Worker: 1, Step: step, Grad: randVec(rng, 1000)}
		if _, ok := pipe.Transfer(m); ok {
			delivered++
		} else {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("30% packet loss on ~34 packets/gradient must lose gradients")
	}
	sent, dropped, lostStat := pipe.Stats()
	if sent == 0 || dropped == 0 || lostStat != lost {
		t.Fatalf("stats sent=%d dropped=%d lost=%d (observed %d)", sent, dropped, lostStat, lost)
	}
	_ = delivered
}

func TestLossyPipeFillNaNDeliversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pipe := NewLossyPipe(Codec{}, 256, 0.3, FillNaN, 3)
	for step := 0; step < 20; step++ {
		m := &GradientMsg{Worker: 1, Step: step, Grad: randVec(rng, 1000)}
		out, ok := pipe.Transfer(m)
		if !ok {
			t.Fatal("FillNaN must always deliver")
		}
		for i, x := range out.Grad {
			if !math.IsNaN(x) && x != m.Grad[i] {
				t.Fatalf("step %d coord %d: survived coordinate altered", step, i)
			}
		}
	}
}

func TestLossyPipeFillRandomFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	pipe := NewLossyPipe(Codec{}, 256, 0.3, FillRandom, 4)
	for step := 0; step < 20; step++ {
		m := &GradientMsg{Worker: 1, Step: step, Grad: randVec(rng, 1000)}
		out, ok := pipe.Transfer(m)
		if !ok {
			t.Fatal("FillRandom must always deliver")
		}
		if out.Grad.CountNonFinite() != 0 {
			t.Fatal("FillRandom output must be finite")
		}
	}
}

func TestLossyPipeDropRateStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pipe := NewLossyPipe(Codec{}, 256, 0.1, FillNaN, 5)
	for step := 0; step < 100; step++ {
		m := &GradientMsg{Worker: 1, Step: step, Grad: randVec(rng, 1000)}
		pipe.Transfer(m)
	}
	sent, dropped, _ := pipe.Stats()
	rate := float64(dropped) / float64(sent)
	if rate < 0.07 || rate > 0.13 {
		t.Fatalf("observed drop rate %v, configured 0.10", rate)
	}
}

func TestLossyPipeBadDropRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewLossyPipe(Codec{}, 0, 1.0, FillNaN, 1)
}

func TestPerfectPipeAliases(t *testing.T) {
	m := &GradientMsg{Grad: tensor.Vector{1}}
	out, ok := PerfectPipe{}.Transfer(m)
	if !ok || out != m {
		t.Fatal("perfect pipe must pass through")
	}
}

// Property: split → shuffle → reassemble is the identity for any MTU and
// dimension (no loss).
func TestQuickSplitReassembleIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for iter := 0; iter < 60; iter++ {
		d := rng.Intn(3000) + 1
		mtu := rng.Intn(1400) + 64
		c := Codec{Float32: iter%2 == 0}
		grad := make(tensor.Vector, d)
		for i := range grad {
			grad[i] = float64(float32(rng.NormFloat64())) // float32-safe values
		}
		m := &GradientMsg{Worker: iter, Step: iter * 3, Grad: grad}
		packets := c.Split(m, mtu)
		rng.Shuffle(len(packets), func(i, j int) { packets[i], packets[j] = packets[j], packets[i] })
		asm := NewReassembler(DropGradient, nil)
		var got *GradientMsg
		for i := range packets {
			raw := c.EncodePacket(&packets[i])
			p, err := c.DecodePacket(raw)
			if err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
			if msg, done := asm.Offer(p); done {
				got = msg
			}
		}
		if got == nil {
			t.Fatalf("iter %d: gradient never completed (d=%d mtu=%d)", iter, d, mtu)
		}
		for i := range grad {
			if got.Grad[i] != grad[i] {
				t.Fatalf("iter %d coord %d mismatch", iter, i)
			}
		}
	}
}
