//go:build linux

package transport

// Syscall numbers for the batched datagram path. The stdlib syscall table
// for linux/amd64 predates sendmmsg (Linux 3.0), so both numbers are pinned
// here; they are ABI-frozen per architecture.
const (
	sysSendmmsg = 307
	sysRecvmmsg = 299
)
