package transport

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"aggregathor/internal/tensor"
)

// FuzzDecodePacket feeds arbitrary bytes to the datagram decoder under both
// wire widths: it must never panic, whatever it accepts must re-encode to
// the exact input bytes (decode is the inverse of encode on its image), and
// anything accepted under one width must be rejected by the opposite-width
// codec with ErrWireFormat — the loud mismatch the width byte exists for.
func FuzzDecodePacket(f *testing.F) {
	for _, c := range []Codec{{Float32: true}, {Float32: false}} {
		msg := &GradientMsg{Worker: 3, Step: 41, Grad: tensor.Vector{1.5, -2.25, math.Pi, 0}}
		for _, p := range c.Split(msg, 64) {
			f.Add(c.EncodePacket(&p), c.Float32)
		}
		empty := &GradientMsg{Worker: 0, Step: 0, Grad: tensor.Vector{}}
		for _, p := range c.Split(empty, DefaultMTU) {
			f.Add(c.EncodePacket(&p), c.Float32)
		}
	}
	f.Add([]byte{}, true)
	f.Add([]byte{0xA7, 0x06, 0x6E, 0xA6}, false)             // magic, truncated
	f.Add(bytes.Repeat([]byte{0xFF}, packetHeaderLen), true) // header-sized garbage

	f.Fuzz(func(t *testing.T, data []byte, float32Wire bool) {
		c := Codec{Float32: float32Wire}
		p, err := c.DecodePacket(data)
		if err != nil {
			if p != nil {
				t.Fatal("decoder returned both a packet and an error")
			}
			return
		}
		if p.Offset < 0 || p.Offset+len(p.Coords) > p.Dim {
			t.Fatalf("accepted packet with range [%d,%d) outside dim %d", p.Offset, p.Offset+len(p.Coords), p.Dim)
		}
		re := c.EncodePacket(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode->encode not the identity:\n in  %x\n out %x", data, re)
		}
		other := Codec{Float32: !float32Wire}
		if _, err := other.DecodePacket(data); !errors.Is(err, ErrWireFormat) {
			t.Fatalf("opposite-width decode: want ErrWireFormat, got %v", err)
		}
	})
}

// FuzzDecodeGradient covers the whole-message framing the TCP path uses,
// under both wire widths, including the cross-width rejection property.
func FuzzDecodeGradient(f *testing.F) {
	for _, c := range []Codec{{Float32: true}, {Float32: false}} {
		f.Add(c.EncodeGradient(&GradientMsg{Worker: 1, Step: 9, Grad: tensor.Vector{0.5, -0.5}}), c.Float32)
		f.Add(c.EncodeGradient(&GradientMsg{Grad: tensor.Vector{}}), c.Float32)
	}
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, data []byte, float32Wire bool) {
		c := Codec{Float32: float32Wire}
		m, err := c.DecodeGradient(data)
		if err != nil {
			return
		}
		re := c.EncodeGradient(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode->encode not the identity:\n in  %x\n out %x", data, re)
		}
		other := Codec{Float32: !float32Wire}
		if _, err := other.DecodeGradient(data); !errors.Is(err, ErrWireFormat) {
			t.Fatalf("opposite-width decode: want ErrWireFormat, got %v", err)
		}
	})
}

// FuzzReassembler feeds arbitrary *sequences* of datagrams through the
// decode→reassemble pipeline — the exact surface a Byzantine worker reaches
// on the UDP path. Single-packet decode fuzzing (FuzzDecodePacket) cannot
// reach the cross-packet state: the conflicting-Dim crash needed two
// individually valid packets sharing a (worker, step) key, which is the
// seeded crasher below. The reassembler must never panic, every completed
// gradient must be self-consistent, and pending state must stay bounded by
// the number of distinct keys offered.
func FuzzReassembler(f *testing.F) {
	c := Codec{Float32: true}
	// Seed: a legitimate split, interleaved across two workers.
	var legit []byte
	for _, worker := range []int{0, 1} {
		msg := &GradientMsg{Worker: worker, Step: 3, Loss: 0.5, Grad: tensor.Vector{1, 2, 3, 4, 5, 6, 7, 8}}
		for _, p := range c.Split(msg, 64) {
			legit = appendChunk(legit, c.EncodePacket(&p))
		}
	}
	f.Add(legit)
	// Seed: model-tagged (ModelWorkerID) sequences — the worker-side model
	// endpoint path: one complete broadcast, one torn broadcast, and
	// spoofed packets claiming distinct future steps (each used to pin a
	// model-sized partial on the worker with nothing ever evicting it).
	var models []byte
	model := &GradientMsg{Worker: ModelWorkerID, Step: 7, Loss: 0, Grad: tensor.Vector{1, 2, 3, 4, 5, 6, 7, 8}}
	for _, p := range c.Split(model, 64) {
		models = appendChunk(models, c.EncodePacket(&p))
	}
	torn := &GradientMsg{Worker: ModelWorkerID, Step: 8, Grad: tensor.Vector{9, 8, 7, 6, 5, 4, 3, 2}}
	for i, p := range c.Split(torn, 64) {
		if i == 0 {
			continue // the "scheduled drop": first packet never sent
		}
		models = appendChunk(models, c.EncodePacket(&p))
	}
	for step := 100; step < 104; step++ {
		spoof := &Packet{Worker: ModelWorkerID, Step: step, Dim: 4096, Offset: 0, Coords: tensor.Vector{1}}
		models = appendChunk(models, c.EncodePacket(spoof))
	}
	f.Add(models)
	// Seed: the conflicting-Dim crasher — two self-consistent packets, same
	// key, different dims (the second used to index out of range).
	small := &Packet{Worker: 1, Step: 1, Dim: 4, Offset: 0, Coords: tensor.Vector{1, 2}}
	large := &Packet{Worker: 1, Step: 1, Dim: 4096, Offset: 4000, Coords: tensor.Vector{9, 9, 9}}
	f.Add(appendChunk(appendChunk(nil, c.EncodePacket(small)), c.EncodePacket(large)))
	f.Add(appendChunk(appendChunk(nil, c.EncodePacket(large)), c.EncodePacket(small)))
	// Seed: raw garbage chunks.
	f.Add(appendChunk(appendChunk(nil, []byte("garbage")), bytes.Repeat([]byte{0xFF}, packetHeaderLen)))

	f.Fuzz(func(t *testing.T, data []byte) {
		asm := NewReassembler(FillNaN, nil)
		asm.SetMaxDim(1 << 16) // the allocation bound itself is under test
		keys := map[[2]int]bool{}
		for len(data) >= 2 {
			n := int(data[0])<<8 | int(data[1])
			data = data[2:]
			if n > len(data) {
				n = len(data)
			}
			chunk := data[:n]
			data = data[n:]
			p, err := c.DecodePacket(chunk)
			if err != nil {
				continue
			}
			keys[[2]int{p.Worker, p.Step}] = true
			msg, done := asm.Offer(p)
			if done {
				if msg == nil {
					t.Fatal("done with nil message")
				}
				if len(msg.Grad) != p.Dim {
					t.Fatalf("completed gradient dim %d, packet dim %d", len(msg.Grad), p.Dim)
				}
				if msg.Worker != p.Worker || msg.Step != p.Step {
					t.Fatalf("completed gradient key (%d,%d) from packet (%d,%d)",
						msg.Worker, msg.Step, p.Worker, p.Step)
				}
			}
			if asm.Pending() > len(keys) {
				t.Fatalf("pending %d exceeds %d distinct keys", asm.Pending(), len(keys))
			}
		}
		// Every partial must flush or discard cleanly, whatever arrived.
		for key := range keys {
			asm.Flush(key[0], key[1])
		}
		if asm.Pending() != 0 {
			t.Fatalf("%d partials leaked after flushing every key", asm.Pending())
		}
	})
}

// appendChunk length-prefixes one datagram in the fuzz corpus encoding
// (u16 big-endian length, then the bytes).
func appendChunk(dst, chunk []byte) []byte {
	dst = append(dst, byte(len(chunk)>>8), byte(len(chunk)))
	return append(dst, chunk...)
}

// TestPacketRoundTripAllWidths pins the encode→decode→encode identity on
// structured packets (the property -fuzz explores from arbitrary bytes).
func TestPacketRoundTripAllWidths(t *testing.T) {
	for _, c := range []Codec{{Float32: true}, {Float32: false}} {
		msg := &GradientMsg{Worker: 7, Step: 1 << 30, Grad: tensor.NewVector(301)}
		for i := range msg.Grad {
			msg.Grad[i] = float64(i) * 0.25
		}
		msg.Grad[0] = math.NaN()
		msg.Grad[1] = math.Inf(1)
		for _, p := range c.Split(msg, DefaultMTU) {
			raw := c.EncodePacket(&p)
			got, err := c.DecodePacket(raw)
			if err != nil {
				t.Fatalf("float32=%v: %v", c.Float32, err)
			}
			if got.Worker != p.Worker || got.Step != p.Step || got.Dim != p.Dim || got.Offset != p.Offset {
				t.Fatalf("float32=%v: header changed: %+v vs %+v", c.Float32, got, p)
			}
			if !bytes.Equal(c.EncodePacket(got), raw) {
				t.Fatalf("float32=%v: re-encode differs", c.Float32)
			}
		}
	}
}
