package transport

import (
	"bytes"
	"math"
	"testing"

	"aggregathor/internal/tensor"
)

// FuzzDecodePacket feeds arbitrary bytes to the datagram decoder under both
// wire widths: it must never panic, and whatever it accepts must re-encode to
// the exact input bytes (decode is the inverse of encode on its image).
func FuzzDecodePacket(f *testing.F) {
	for _, c := range []Codec{{Float32: true}, {Float32: false}} {
		msg := &GradientMsg{Worker: 3, Step: 41, Grad: tensor.Vector{1.5, -2.25, math.Pi, 0}}
		for _, p := range c.Split(msg, 64) {
			f.Add(c.EncodePacket(&p), c.Float32)
		}
		empty := &GradientMsg{Worker: 0, Step: 0, Grad: tensor.Vector{}}
		for _, p := range c.Split(empty, DefaultMTU) {
			f.Add(c.EncodePacket(&p), c.Float32)
		}
	}
	f.Add([]byte{}, true)
	f.Add([]byte{0xA7, 0x06, 0x6E, 0xA6}, false)             // magic, truncated
	f.Add(bytes.Repeat([]byte{0xFF}, packetHeaderLen), true) // header-sized garbage

	f.Fuzz(func(t *testing.T, data []byte, float32Wire bool) {
		c := Codec{Float32: float32Wire}
		p, err := c.DecodePacket(data)
		if err != nil {
			if p != nil {
				t.Fatal("decoder returned both a packet and an error")
			}
			return
		}
		if p.Offset < 0 || p.Offset+len(p.Coords) > p.Dim {
			t.Fatalf("accepted packet with range [%d,%d) outside dim %d", p.Offset, p.Offset+len(p.Coords), p.Dim)
		}
		re := c.EncodePacket(p)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode->encode not the identity:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeGradient covers the whole-message framing the TCP path uses.
func FuzzDecodeGradient(f *testing.F) {
	for _, c := range []Codec{{Float32: true}, {Float32: false}} {
		f.Add(c.EncodeGradient(&GradientMsg{Worker: 1, Step: 9, Grad: tensor.Vector{0.5, -0.5}}), c.Float32)
		f.Add(c.EncodeGradient(&GradientMsg{Grad: tensor.Vector{}}), c.Float32)
	}
	f.Add([]byte{}, true)
	f.Fuzz(func(t *testing.T, data []byte, float32Wire bool) {
		c := Codec{Float32: float32Wire}
		m, err := c.DecodeGradient(data)
		if err != nil {
			return
		}
		re := c.EncodeGradient(m)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode->encode not the identity:\n in  %x\n out %x", data, re)
		}
	})
}

// TestPacketRoundTripAllWidths pins the encode→decode→encode identity on
// structured packets (the property -fuzz explores from arbitrary bytes).
func TestPacketRoundTripAllWidths(t *testing.T) {
	for _, c := range []Codec{{Float32: true}, {Float32: false}} {
		msg := &GradientMsg{Worker: 7, Step: 1 << 30, Grad: tensor.NewVector(301)}
		for i := range msg.Grad {
			msg.Grad[i] = float64(i) * 0.25
		}
		msg.Grad[0] = math.NaN()
		msg.Grad[1] = math.Inf(1)
		for _, p := range c.Split(msg, DefaultMTU) {
			raw := c.EncodePacket(&p)
			got, err := c.DecodePacket(raw)
			if err != nil {
				t.Fatalf("float32=%v: %v", c.Float32, err)
			}
			if got.Worker != p.Worker || got.Step != p.Step || got.Dim != p.Dim || got.Offset != p.Offset {
				t.Fatalf("float32=%v: header changed: %+v vs %+v", c.Float32, got, p)
			}
			if !bytes.Equal(c.EncodePacket(got), raw) {
				t.Fatalf("float32=%v: re-encode differs", c.Float32)
			}
		}
	}
}
