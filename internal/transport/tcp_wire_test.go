package transport

import (
	"errors"
	"testing"

	"aggregathor/internal/tensor"
)

// TestTCPMixedWidthPeersRejectLoudly pins the wire-format negotiation
// contract on the reliable path: a dialer and listener configured with
// different coordinate widths must fail loudly with ErrWireFormat on the
// first frame — never silently mis-decode, and never report a generic
// framing error that hides the configuration mismatch. Both directions of
// the mismatch are covered, for both gradient and model frames.
func TestTCPMixedWidthPeersRejectLoudly(t *testing.T) {
	cases := []struct {
		name     string
		listener Codec
		dialer   Codec
	}{
		{"f64-listener_f32-dialer", Codec{}, Codec{Float32: true}},
		{"f32-listener_f64-dialer", Codec{Float32: true}, Codec{}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			ln, err := ListenTCP("127.0.0.1:0", tc.listener)
			if err != nil {
				t.Fatal(err)
			}
			defer ln.Close()

			sendErr := make(chan error, 1)
			go func() {
				peer, err := DialTCP(ln.Addr(), tc.dialer)
				if err != nil {
					sendErr <- err
					return
				}
				defer peer.Close()
				if err := peer.SendGradient(&GradientMsg{Worker: 2, Step: 5, Grad: tensor.Vector{1, 2, 3}}); err != nil {
					sendErr <- err
					return
				}
				sendErr <- peer.SendModel(&ModelMsg{Step: 5, Params: tensor.Vector{4, 5}})
			}()

			conn, err := ln.Accept()
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()

			_, gradErr := conn.RecvGradient()
			if !errors.Is(gradErr, ErrWireFormat) {
				t.Fatalf("gradient from mixed-width peer: want ErrWireFormat, got %v", gradErr)
			}
			// ErrWireFormat unwraps to ErrBadFrame so existing malformed-input
			// handling catches it too.
			if !errors.Is(gradErr, ErrBadFrame) {
				t.Fatalf("ErrWireFormat must unwrap to ErrBadFrame, got %v", gradErr)
			}
			if _, err := conn.RecvModel(); !errors.Is(err, ErrWireFormat) {
				t.Fatalf("model from mixed-width peer: want ErrWireFormat, got %v", err)
			}
			if err := <-sendErr; err != nil {
				t.Fatalf("mixed-width send side failed before decode: %v", err)
			}
		})
	}
}
