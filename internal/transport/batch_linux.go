//go:build linux && (amd64 || arm64)

// Batched datagram I/O via sendmmsg/recvmmsg. One syscall moves up to a
// whole batch of datagrams, collapsing the ~1.2k syscalls of a paper-scale
// (d = 1.75M) gradient transfer by the batch factor. The raw syscalls are
// driven through the net poller's RawConn so read deadlines and non-blocking
// semantics keep working exactly as for ReadFromUDP/Write; the portable
// fallback in batch_portable.go keeps other platforms on the one-datagram
// path with the same interface.
package transport

import (
	"fmt"
	"net"
	"syscall"
	"unsafe"
)

// batchedSyscalls reports whether this platform batches datagram syscalls
// (surfaced in benchmarks so an unbatched fallback row is labelled honestly).
const batchedSyscalls = true

// mmsgHdr mirrors struct mmsghdr. Go pads the struct to the alignment of
// the embedded Msghdr (8 bytes on amd64/arm64), matching the C layout.
type mmsgHdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// sendBatcher writes batches of datagrams on a connected UDP socket with
// sendmmsg. All bookkeeping — arrays, the in-flight cursor, and the ready
// callback handed to the poller — lives on the struct and is built once,
// so a steady-state Send performs zero allocations (a closure over locals
// would heap-allocate on every flush).
type sendBatcher struct {
	rc   syscall.RawConn
	hdrs []mmsgHdr
	iovs []syscall.Iovec

	sent, total int
	opErr       error
	ready       func(fd uintptr) bool
}

func newSendBatcher(conn *net.UDPConn, maxBatch int) (*sendBatcher, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("transport: raw conn: %w", err)
	}
	b := &sendBatcher{
		rc:   rc,
		hdrs: make([]mmsgHdr, maxBatch),
		iovs: make([]syscall.Iovec, maxBatch),
	}
	for i := range b.hdrs {
		// Connected socket: no destination name, one iovec per datagram.
		b.hdrs[i].hdr.Iov = &b.iovs[i]
		b.hdrs[i].hdr.Iovlen = 1
	}
	b.ready = b.writeReady
	return b, nil
}

// writeReady is the poller callback: push the remaining batch, parking on
// EAGAIN until the socket is writable again.
func (b *sendBatcher) writeReady(fd uintptr) bool {
	for b.sent < b.total {
		n, _, errno := syscall.Syscall6(sysSendmmsg, fd,
			uintptr(unsafe.Pointer(&b.hdrs[b.sent])), uintptr(b.total-b.sent), 0, 0, 0)
		if errno == syscall.EAGAIN {
			return false // wait for writability, then retry
		}
		if errno != 0 {
			b.opErr = errno
			return true
		}
		b.sent += int(n)
	}
	return true
}

// Send writes every buffer as one datagram, in order, using as few
// sendmmsg calls as possible. len(bufs) must not exceed the maxBatch the
// batcher was built with.
func (b *sendBatcher) Send(bufs [][]byte) error {
	for i, buf := range bufs {
		b.iovs[i].Base = &buf[0]
		b.iovs[i].Len = uint64(len(buf))
	}
	b.sent, b.total, b.opErr = 0, len(bufs), nil
	err := b.rc.Write(b.ready)
	if err == nil {
		err = b.opErr
	}
	if err != nil {
		return fmt.Errorf("transport: udp sendmmsg: %w", err)
	}
	return nil
}

// recvBatcher reads batches of datagrams with recvmmsg into a preallocated
// buffer arena. The read honours the conn's read deadline through the
// poller (rc.Read returns the deadline error exactly like ReadFromUDP).
type recvBatcher struct {
	rc    syscall.RawConn
	hdrs  []mmsgHdr
	iovs  []syscall.Iovec
	arena []byte
	slot  int // bytes per datagram slot

	got   int
	opErr error
	ready func(fd uintptr) bool
}

func newRecvBatcher(conn *net.UDPConn, maxBatch, bufSize int) (*recvBatcher, error) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("transport: raw conn: %w", err)
	}
	b := &recvBatcher{
		rc:    rc,
		hdrs:  make([]mmsgHdr, maxBatch),
		iovs:  make([]syscall.Iovec, maxBatch),
		arena: make([]byte, maxBatch*bufSize),
		slot:  bufSize,
	}
	for i := range b.hdrs {
		b.iovs[i].Base = &b.arena[i*bufSize]
		b.iovs[i].Len = uint64(bufSize)
		b.hdrs[i].hdr.Iov = &b.iovs[i]
		b.hdrs[i].hdr.Iovlen = 1
	}
	b.ready = b.readReady
	return b, nil
}

// readReady is the poller callback: drain one recvmmsg batch, parking on
// EAGAIN until the socket is readable or the deadline fires.
func (b *recvBatcher) readReady(fd uintptr) bool {
	n, _, errno := syscall.Syscall6(sysRecvmmsg, fd,
		uintptr(unsafe.Pointer(&b.hdrs[0])), uintptr(len(b.hdrs)),
		uintptr(syscall.MSG_DONTWAIT), 0, 0)
	if errno == syscall.EAGAIN {
		return false // nothing queued: wait for readability or deadline
	}
	if errno != 0 {
		b.opErr = errno
		return true
	}
	b.got = int(n)
	return true
}

// Recv blocks until at least one datagram arrives or the conn's read
// deadline passes, then drains up to maxBatch datagrams in one recvmmsg.
// Datagram i is Datagram(i), valid until the next Recv. The callback state
// lives on the struct so a steady-state Recv performs zero allocations.
func (b *recvBatcher) Recv() (int, error) {
	b.got, b.opErr = 0, nil
	err := b.rc.Read(b.ready)
	if err == nil {
		err = b.opErr
	}
	if err != nil {
		return 0, fmt.Errorf("transport: udp recvmmsg: %w", err)
	}
	return b.got, nil
}

// Datagram returns the i-th datagram of the last Recv.
func (b *recvBatcher) Datagram(i int) []byte {
	return b.arena[i*b.slot : i*b.slot+int(b.hdrs[i].n)]
}
