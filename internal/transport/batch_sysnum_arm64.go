//go:build linux

package transport

// Syscall numbers for the batched datagram path on linux/arm64 (the unified
// asm-generic table); ABI-frozen per architecture.
const (
	sysSendmmsg = 269
	sysRecvmmsg = 243
)
