package transport

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"aggregathor/internal/tensor"
)

func randVec(rng *rand.Rand, d int) tensor.Vector {
	v := tensor.NewVector(d)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestGradientRoundTripFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := Codec{}
	m := &GradientMsg{Worker: 7, Step: 42, Loss: 0.734375, Grad: randVec(rng, 100)}
	got, err := c.DecodeGradient(c.EncodeGradient(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != 7 || got.Step != 42 || got.Loss != 0.734375 {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range m.Grad {
		if got.Grad[i] != m.Grad[i] {
			t.Fatalf("float64 codec must be lossless; coord %d: %v vs %v", i, got.Grad[i], m.Grad[i])
		}
	}
}

func TestGradientRoundTripFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Codec{Float32: true}
	m := &GradientMsg{Worker: 1, Step: 2, Loss: 1.0 / 3.0, Grad: randVec(rng, 50)}
	got, err := c.DecodeGradient(c.EncodeGradient(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Loss != m.Loss {
		t.Fatalf("loss metadata must stay 8-byte even on the float32 wire: %v vs %v", got.Loss, m.Loss)
	}
	for i := range m.Grad {
		if math.Abs(got.Grad[i]-m.Grad[i]) > 1e-6*(1+math.Abs(m.Grad[i])) {
			t.Fatalf("float32 precision loss too large at %d", i)
		}
	}
}

func TestModelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := Codec{}
	m := &ModelMsg{Step: 9, Params: randVec(rng, 64)}
	got, err := c.DecodeModel(c.EncodeModel(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != 9 || got.Params.Dim() != 64 {
		t.Fatalf("header mismatch: step=%d dim=%d", got.Step, got.Params.Dim())
	}
	for i := range m.Params {
		if got.Params[i] != m.Params[i] {
			t.Fatal("model codec must be lossless")
		}
	}
}

func TestCodecPreservesNonFinite(t *testing.T) {
	c := Codec{}
	m := &GradientMsg{Grad: tensor.Vector{math.NaN(), math.Inf(1), math.Inf(-1), 0}}
	got, err := c.DecodeGradient(c.EncodeGradient(m))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Grad[0]) || !math.IsInf(got.Grad[1], 1) || !math.IsInf(got.Grad[2], -1) {
		t.Fatalf("non-finite coords mangled: %v", got.Grad)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	c := Codec{}
	cases := [][]byte{
		nil,
		{1, 2, 3},
		make([]byte, 30), // zero magic
	}
	for i, buf := range cases {
		if _, err := c.DecodeGradient(buf); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("case %d: want ErrBadFrame, got %v", i, err)
		}
		if _, err := c.DecodeModel(buf); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("model case %d: want ErrBadFrame, got %v", i, err)
		}
	}
}

func TestDecodeRejectsTruncatedBody(t *testing.T) {
	c := Codec{}
	buf := c.EncodeGradient(&GradientMsg{Grad: tensor.Vector{1, 2, 3}})
	if _, err := c.DecodeGradient(buf[:len(buf)-4]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame, got %v", err)
	}
}

func TestDecodeRejectsWrongType(t *testing.T) {
	c := Codec{}
	grad := c.EncodeGradient(&GradientMsg{Grad: tensor.Vector{1}})
	if _, err := c.DecodeModel(grad); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("model decoder accepted gradient frame: %v", err)
	}
}

func TestQuickCodecRoundTrip(t *testing.T) {
	c := Codec{}
	f := func(worker uint16, step uint16, coords []float64) bool {
		m := &GradientMsg{Worker: int(worker), Step: int(step), Grad: coords}
		got, err := c.DecodeGradient(c.EncodeGradient(m))
		if err != nil {
			return false
		}
		if got.Worker != m.Worker || got.Step != m.Step || got.Grad.Dim() != len(coords) {
			return false
		}
		for i := range coords {
			a, b := got.Grad[i], coords[i]
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitCoversAllCoordinates(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := Codec{Float32: true}
	m := &GradientMsg{Worker: 3, Step: 5, Grad: randVec(rng, 1000)}
	packets := c.Split(m, 128)
	covered := make([]bool, 1000)
	for _, p := range packets {
		if p.Worker != 3 || p.Step != 5 || p.Dim != 1000 {
			t.Fatalf("packet header mismatch: %+v", p)
		}
		for i := range p.Coords {
			if covered[p.Offset+i] {
				t.Fatalf("coordinate %d covered twice", p.Offset+i)
			}
			covered[p.Offset+i] = true
		}
	}
	for i, ok := range covered {
		if !ok {
			t.Fatalf("coordinate %d not covered", i)
		}
	}
}

func TestSplitRespectsMTU(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := Codec{}
	m := &GradientMsg{Grad: randVec(rng, 5000)}
	for _, p := range c.Split(m, DefaultMTU) {
		if size := len(c.EncodePacket(&p)); size > DefaultMTU {
			t.Fatalf("packet of %d bytes exceeds MTU %d", size, DefaultMTU)
		}
	}
}

func TestPacketRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := Codec{}
	p := Packet{Worker: 2, Step: 11, Dim: 100, Offset: 40, Coords: randVec(rng, 10)}
	got, err := c.DecodePacket(c.EncodePacket(&p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Worker != 2 || got.Step != 11 || got.Dim != 100 || got.Offset != 40 {
		t.Fatalf("packet header mismatch: %+v", got)
	}
	for i := range p.Coords {
		if got.Coords[i] != p.Coords[i] {
			t.Fatal("packet payload mismatch")
		}
	}
}

func TestDecodePacketRejectsBadRange(t *testing.T) {
	c := Codec{}
	p := Packet{Worker: 1, Step: 1, Dim: 5, Offset: 4, Coords: tensor.Vector{1, 2}}
	if _, err := c.DecodePacket(c.EncodePacket(&p)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("want ErrBadFrame for out-of-range packet, got %v", err)
	}
}

func TestCoordsPerPacket(t *testing.T) {
	if got := (Codec{Float32: true}).CoordsPerPacket(DefaultMTU); got != (DefaultMTU-packetHeaderLen)/4 {
		t.Fatalf("float32 coords/packet = %d", got)
	}
	if got := (Codec{}).CoordsPerPacket(10); got != 1 {
		t.Fatalf("tiny MTU must still carry one coordinate, got %d", got)
	}
}
