package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// maxFrameBytes bounds a single TCP frame (1 GiB) so a malicious peer cannot
// force an arbitrary allocation with a forged length prefix.
const maxFrameBytes = 1 << 30

// TCPConn is a reliable, length-prefixed message connection — the stand-in
// for TensorFlow's gRPC channel. Each frame is u32 little-endian length
// followed by a codec-encoded message.
type TCPConn struct {
	conn  net.Conn
	codec Codec
}

// DialTCP connects to a listening peer.
func DialTCP(addr string, codec Codec) (*TCPConn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &TCPConn{conn: conn, codec: codec}, nil
}

// TCPListener accepts TCPConn peers.
type TCPListener struct {
	ln    net.Listener
	codec Codec
}

// ListenTCP starts a listener on addr (use "127.0.0.1:0" for tests).
func ListenTCP(addr string, codec Codec) (*TCPListener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &TCPListener{ln: ln, codec: codec}, nil
}

// Addr returns the bound address.
func (l *TCPListener) Addr() string { return l.ln.Addr().String() }

// Accept waits for the next peer.
func (l *TCPListener) Accept() (*TCPConn, error) {
	conn, err := l.ln.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return &TCPConn{conn: conn, codec: l.codec}, nil
}

// Close stops the listener.
func (l *TCPListener) Close() error { return l.ln.Close() }

func (c *TCPConn) writeFrame(body []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := c.conn.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: write frame header: %w", err)
	}
	if _, err := c.conn.Write(body); err != nil {
		return fmt.Errorf("transport: write frame body: %w", err)
	}
	return nil
}

func (c *TCPConn) readFrame() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(c.conn, hdr[:]); err != nil {
		return nil, fmt.Errorf("transport: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return nil, fmt.Errorf("%w: frame length %d exceeds limit", ErrBadFrame, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(c.conn, body); err != nil {
		return nil, fmt.Errorf("transport: read frame body: %w", err)
	}
	return body, nil
}

// SendGradient writes one gradient message.
func (c *TCPConn) SendGradient(m *GradientMsg) error {
	return c.writeFrame(c.codec.EncodeGradient(m))
}

// RecvGradient reads one gradient message.
func (c *TCPConn) RecvGradient() (*GradientMsg, error) {
	body, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	return c.codec.DecodeGradient(body)
}

// SendModel writes one model broadcast.
func (c *TCPConn) SendModel(m *ModelMsg) error {
	return c.writeFrame(c.codec.EncodeModel(m))
}

// RecvModel reads one model broadcast.
func (c *TCPConn) RecvModel() (*ModelMsg, error) {
	body, err := c.readFrame()
	if err != nil {
		return nil, err
	}
	return c.codec.DecodeModel(body)
}

// Close shuts the connection down.
func (c *TCPConn) Close() error { return c.conn.Close() }
