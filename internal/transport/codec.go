// Package transport implements the communication layer of the reproduction:
// binary wire codecs for model and gradient messages, a reliable TCP
// transport (the gRPC stand-in), the lossyMPI-style UDP transport — gradient
// chunking into datagrams with self-describing sequence headers, deadline
// reassembly, and the three §3.3 recoup policies for lost coordinates — and
// an in-memory lossy pipe used by the simulator for deterministic
// packet-drop experiments.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"aggregathor/internal/tensor"
)

// Wire format constants.
const (
	// Magic tags every AggregaThor frame and datagram.
	Magic = 0xA66E06A7
	// Version is the current wire version. Version 2 inserted the 8-byte
	// loss metadata field into the gradient frame; version 3 carried the
	// same field through the datagram packet header, so gradients shipped
	// over lossy UDP keep their loss metadata (previously the datagram path
	// silently rebuilt messages with Loss 0); version 4 added the
	// coordinate-width byte to every frame and datagram header, so a codec
	// mismatch between endpoints surfaces as ErrWireFormat instead of a
	// silent 100% "loss" (a float32-encoded packet used to fail the float64
	// receiver's length check and be dropped as malformed). A peer speaking
	// an older version is rejected with a clean version-mismatch error
	// instead of misparsing the frame.
	Version = 4

	msgModel    = 1
	msgGradient = 2
)

// ErrBadFrame is wrapped by decoders on malformed input.
var ErrBadFrame = errors.New("transport: malformed frame")

// ErrWireFormat is wrapped by decoders when a frame is well-formed but
// carries a different coordinate width than the local codec — the two
// endpoints disagree on wireFormat. It unwraps to ErrBadFrame too, so
// lenient paths that skip malformed Byzantine datagrams keep working, while
// callers that want the mismatch loud can match it specifically.
var ErrWireFormat = fmt.Errorf("%w: coordinate width mismatch", ErrBadFrame)

// Canonical wireFormat axis values (scenario/cluster/core configuration).
const (
	// WireFloat64 is the lossless 8-byte coordinate wire — the default.
	WireFloat64 = "float64"
	// WireFloat32 is the half-width 4-byte coordinate wire (the TensorFlow
	// default the paper ships over its lossyMPI channel).
	WireFloat32 = "float32"
)

// ParseWireFormat maps a wireFormat axis value to its codec. The empty
// string selects the float64 default: lossless, and the width every backend
// shares unless the scenario opts into compression.
func ParseWireFormat(s string) (Codec, error) {
	switch s {
	case "", WireFloat64:
		return Codec{}, nil
	case WireFloat32:
		return Codec{Float32: true}, nil
	default:
		return Codec{}, fmt.Errorf("transport: unknown wire format %q (want %q or %q)",
			s, WireFloat64, WireFloat32)
	}
}

// WireName returns the canonical wireFormat axis value for the codec.
func (c Codec) WireName() string {
	if c.Float32 {
		return WireFloat32
	}
	return WireFloat64
}

// checkWidth validates a frame's coordinate-width byte against the codec:
// widths other than 4 or 8 are malformed, a well-formed width that differs
// from the codec's is a wire-format mismatch.
func (c Codec) checkWidth(w byte) error {
	if w != 4 && w != 8 {
		return fmt.Errorf("%w: unknown coordinate width %d", ErrBadFrame, w)
	}
	if int(w) != c.BytesPerCoord() {
		return fmt.Errorf("%w: frame carries %d-byte coords, codec expects %d",
			ErrWireFormat, w, c.BytesPerCoord())
	}
	return nil
}

// GradientMsg is one worker's gradient submission for one step.
type GradientMsg struct {
	Worker int
	Step   int
	// Loss is the worker's training loss on the mini-batch that produced
	// the gradient — diagnostic metadata the server aggregates into the
	// per-round mean honest loss. It travels at full 8-byte width even on
	// the float32 coordinate wire (it is metadata, like Step).
	Loss float64
	Grad tensor.Vector
}

// ModelMsg is the server's parameter broadcast for one step.
type ModelMsg struct {
	Step   int
	Params tensor.Vector
}

// Codec converts vectors to wire bytes. Float32 halves the wire size (the
// TensorFlow default); Float64 is lossless.
type Codec struct {
	// Float32 selects the 4-byte wire coordinate format.
	Float32 bool
}

// BytesPerCoord returns the wire size of one coordinate.
func (c Codec) BytesPerCoord() int {
	if c.Float32 {
		return 4
	}
	return 8
}

func (c Codec) putCoords(dst []byte, v tensor.Vector) {
	if c.Float32 {
		for i, x := range v {
			binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(float32(x)))
		}
		return
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(x))
	}
}

func (c Codec) getCoords(src []byte, v tensor.Vector) {
	if c.Float32 {
		for i := range v {
			v[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:])))
		}
		return
	}
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// EncodeGradient renders a gradient message as a framed byte slice:
// magic u32 | version u8 | type u8 | width u8 | worker u32 | step u64 |
// loss f64 | dim u32 | coords.
func (c Codec) EncodeGradient(m *GradientMsg) []byte {
	buf := make([]byte, 4+1+1+1+4+8+8+4+len(m.Grad)*c.BytesPerCoord())
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	buf[5] = msgGradient
	buf[6] = byte(c.BytesPerCoord())
	binary.LittleEndian.PutUint32(buf[7:], uint32(m.Worker))
	binary.LittleEndian.PutUint64(buf[11:], uint64(m.Step))
	binary.LittleEndian.PutUint64(buf[19:], math.Float64bits(m.Loss))
	binary.LittleEndian.PutUint32(buf[27:], uint32(len(m.Grad)))
	c.putCoords(buf[31:], m.Grad)
	return buf
}

// DecodeGradient parses EncodeGradient output.
func (c Codec) DecodeGradient(buf []byte) (*GradientMsg, error) {
	if len(buf) < 31 {
		return nil, fmt.Errorf("%w: gradient frame too short (%d bytes)", ErrBadFrame, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, buf[4])
	}
	if buf[5] != msgGradient {
		return nil, fmt.Errorf("%w: not a gradient frame (type %d)", ErrBadFrame, buf[5])
	}
	if err := c.checkWidth(buf[6]); err != nil {
		return nil, err
	}
	dim := int(binary.LittleEndian.Uint32(buf[27:]))
	want := 31 + dim*c.BytesPerCoord()
	if len(buf) != want {
		return nil, fmt.Errorf("%w: gradient frame %d bytes, want %d", ErrBadFrame, len(buf), want)
	}
	m := &GradientMsg{
		Worker: int(binary.LittleEndian.Uint32(buf[7:])),
		Step:   int(binary.LittleEndian.Uint64(buf[11:])),
		Loss:   math.Float64frombits(binary.LittleEndian.Uint64(buf[19:])),
		Grad:   tensor.NewVector(dim),
	}
	c.getCoords(buf[31:], m.Grad)
	return m, nil
}

// EncodeModel renders a model broadcast:
// magic u32 | version u8 | type u8 | width u8 | step u64 | dim u32 | coords.
func (c Codec) EncodeModel(m *ModelMsg) []byte {
	buf := make([]byte, 4+1+1+1+8+4+len(m.Params)*c.BytesPerCoord())
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	buf[5] = msgModel
	buf[6] = byte(c.BytesPerCoord())
	binary.LittleEndian.PutUint64(buf[7:], uint64(m.Step))
	binary.LittleEndian.PutUint32(buf[15:], uint32(len(m.Params)))
	c.putCoords(buf[19:], m.Params)
	return buf
}

// DecodeModel parses EncodeModel output.
func (c Codec) DecodeModel(buf []byte) (*ModelMsg, error) {
	if len(buf) < 19 {
		return nil, fmt.Errorf("%w: model frame too short (%d bytes)", ErrBadFrame, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, buf[4])
	}
	if buf[5] != msgModel {
		return nil, fmt.Errorf("%w: not a model frame (type %d)", ErrBadFrame, buf[5])
	}
	if err := c.checkWidth(buf[6]); err != nil {
		return nil, err
	}
	dim := int(binary.LittleEndian.Uint32(buf[15:]))
	want := 19 + dim*c.BytesPerCoord()
	if len(buf) != want {
		return nil, fmt.Errorf("%w: model frame %d bytes, want %d", ErrBadFrame, len(buf), want)
	}
	m := &ModelMsg{
		Step:   int(binary.LittleEndian.Uint64(buf[7:])),
		Params: tensor.NewVector(dim),
	}
	c.getCoords(buf[19:], m.Params)
	return m, nil
}
