// Package transport implements the communication layer of the reproduction:
// binary wire codecs for model and gradient messages, a reliable TCP
// transport (the gRPC stand-in), the lossyMPI-style UDP transport — gradient
// chunking into datagrams with self-describing sequence headers, deadline
// reassembly, and the three §3.3 recoup policies for lost coordinates — and
// an in-memory lossy pipe used by the simulator for deterministic
// packet-drop experiments.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"aggregathor/internal/tensor"
)

// Wire format constants.
const (
	// Magic tags every AggregaThor frame and datagram.
	Magic = 0xA66E06A7
	// Version is the current wire version. Version 2 inserted the 8-byte
	// loss metadata field into the gradient frame; version 3 carried the
	// same field through the datagram packet header, so gradients shipped
	// over lossy UDP keep their loss metadata (previously the datagram path
	// silently rebuilt messages with Loss 0). A peer speaking an older
	// version is rejected with a clean version-mismatch error instead of
	// misparsing the frame.
	Version = 3

	msgModel    = 1
	msgGradient = 2
)

// ErrBadFrame is wrapped by decoders on malformed input.
var ErrBadFrame = errors.New("transport: malformed frame")

// GradientMsg is one worker's gradient submission for one step.
type GradientMsg struct {
	Worker int
	Step   int
	// Loss is the worker's training loss on the mini-batch that produced
	// the gradient — diagnostic metadata the server aggregates into the
	// per-round mean honest loss. It travels at full 8-byte width even on
	// the float32 coordinate wire (it is metadata, like Step).
	Loss float64
	Grad tensor.Vector
}

// ModelMsg is the server's parameter broadcast for one step.
type ModelMsg struct {
	Step   int
	Params tensor.Vector
}

// Codec converts vectors to wire bytes. Float32 halves the wire size (the
// TensorFlow default); Float64 is lossless.
type Codec struct {
	// Float32 selects the 4-byte wire coordinate format.
	Float32 bool
}

// BytesPerCoord returns the wire size of one coordinate.
func (c Codec) BytesPerCoord() int {
	if c.Float32 {
		return 4
	}
	return 8
}

func (c Codec) putCoords(dst []byte, v tensor.Vector) {
	if c.Float32 {
		for i, x := range v {
			binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(float32(x)))
		}
		return
	}
	for i, x := range v {
		binary.LittleEndian.PutUint64(dst[i*8:], math.Float64bits(x))
	}
}

func (c Codec) getCoords(src []byte, v tensor.Vector) {
	if c.Float32 {
		for i := range v {
			v[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:])))
		}
		return
	}
	for i := range v {
		v[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// EncodeGradient renders a gradient message as a framed byte slice:
// magic u32 | version u8 | type u8 | worker u32 | step u64 | loss f64 |
// dim u32 | coords.
func (c Codec) EncodeGradient(m *GradientMsg) []byte {
	buf := make([]byte, 4+1+1+4+8+8+4+len(m.Grad)*c.BytesPerCoord())
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	buf[5] = msgGradient
	binary.LittleEndian.PutUint32(buf[6:], uint32(m.Worker))
	binary.LittleEndian.PutUint64(buf[10:], uint64(m.Step))
	binary.LittleEndian.PutUint64(buf[18:], math.Float64bits(m.Loss))
	binary.LittleEndian.PutUint32(buf[26:], uint32(len(m.Grad)))
	c.putCoords(buf[30:], m.Grad)
	return buf
}

// DecodeGradient parses EncodeGradient output.
func (c Codec) DecodeGradient(buf []byte) (*GradientMsg, error) {
	if len(buf) < 30 {
		return nil, fmt.Errorf("%w: gradient frame too short (%d bytes)", ErrBadFrame, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, buf[4])
	}
	if buf[5] != msgGradient {
		return nil, fmt.Errorf("%w: not a gradient frame (type %d)", ErrBadFrame, buf[5])
	}
	dim := int(binary.LittleEndian.Uint32(buf[26:]))
	want := 30 + dim*c.BytesPerCoord()
	if len(buf) != want {
		return nil, fmt.Errorf("%w: gradient frame %d bytes, want %d", ErrBadFrame, len(buf), want)
	}
	m := &GradientMsg{
		Worker: int(binary.LittleEndian.Uint32(buf[6:])),
		Step:   int(binary.LittleEndian.Uint64(buf[10:])),
		Loss:   math.Float64frombits(binary.LittleEndian.Uint64(buf[18:])),
		Grad:   tensor.NewVector(dim),
	}
	c.getCoords(buf[30:], m.Grad)
	return m, nil
}

// EncodeModel renders a model broadcast:
// magic u32 | version u8 | type u8 | step u64 | dim u32 | coords.
func (c Codec) EncodeModel(m *ModelMsg) []byte {
	buf := make([]byte, 4+1+1+8+4+len(m.Params)*c.BytesPerCoord())
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	buf[4] = Version
	buf[5] = msgModel
	binary.LittleEndian.PutUint64(buf[6:], uint64(m.Step))
	binary.LittleEndian.PutUint32(buf[14:], uint32(len(m.Params)))
	c.putCoords(buf[18:], m.Params)
	return buf
}

// DecodeModel parses EncodeModel output.
func (c Codec) DecodeModel(buf []byte) (*ModelMsg, error) {
	if len(buf) < 18 {
		return nil, fmt.Errorf("%w: model frame too short (%d bytes)", ErrBadFrame, len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFrame)
	}
	if buf[4] != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFrame, buf[4])
	}
	if buf[5] != msgModel {
		return nil, fmt.Errorf("%w: not a model frame (type %d)", ErrBadFrame, buf[5])
	}
	dim := int(binary.LittleEndian.Uint32(buf[14:]))
	want := 18 + dim*c.BytesPerCoord()
	if len(buf) != want {
		return nil, fmt.Errorf("%w: model frame %d bytes, want %d", ErrBadFrame, len(buf), want)
	}
	m := &ModelMsg{
		Step:   int(binary.LittleEndian.Uint64(buf[6:])),
		Params: tensor.NewVector(dim),
	}
	c.getCoords(buf[18:], m.Params)
	return m, nil
}
